# Tier-1 verification is `make ci` (build + vet + test).
GO ?= go

.PHONY: build test test-short test-race vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the multi-second stress soaks (logbuf ring stress, randomized
# crash/recovery rounds) for a fast inner loop.
test-short:
	$(GO) test -short ./...

# Race-checks the concurrency-heavy packages: the log manager, the log
# buffer variants, and the transaction engine.
test-race:
	$(GO) test -race -short ./internal/core ./internal/logbuf ./internal/txn ./internal/logdev

vet:
	$(GO) vet ./...

ci: build vet test
