# Tier-1 verification is `make ci` (build + vet + docs + test + bench smoke).
GO ?= go

.PHONY: build test test-short test-race vet docs bench-smoke soak-smoke soak fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the multi-second stress soaks (logbuf ring stress, randomized
# crash/recovery rounds) for a fast inner loop.
test-short:
	$(GO) test -short ./...

# Race-checks the concurrency-heavy packages: the log manager and
# multi-log coordinator, the log buffer variants, the transaction
# engine, the buffer pool's eviction/pin machinery in storage, the wire
# server/client (one goroutine per connection plus writer and ack
# callbacks), the public API's partitioned-engine tests (concurrent
# workers over N flush daemons, plus the cloud-tier restore tests with
# the archiver and retention daemons running), the PITR replay paths in
# recovery, and the simulator-vs-engine cross-check in distlog.
test-race:
	$(GO) test -race -short . ./internal/core ./internal/logbuf ./internal/txn ./internal/logdev ./internal/recovery ./internal/storage ./internal/wire ./internal/distlog

vet:
	$(GO) vet ./...

# Documentation lint: formatting, vet, every example and command builds,
# and the godoc-coverage check — exported identifiers in EVERY internal
# package must carry doc comments.
docs: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) build ./examples/... ./cmd/...
	$(GO) run ./cmd/doccheck \
		./internal/bench ./internal/core ./internal/distlog \
		./internal/fsutil ./internal/lockmgr ./internal/logbuf \
		./internal/logdev ./internal/logrec ./internal/lsn \
		./internal/metrics ./internal/recovery ./internal/soak \
		./internal/storage ./internal/txn ./internal/vfs \
		./internal/wire ./internal/workload

# Small-scale perf smoke: vet plus a quick aetherbench run that
# refreshes BENCH_pr10.json, so the perf trajectory (throughput, sweep
# fsyncs/duration, larger-than-memory miss rate, demand steals vs
# cleaner writes, cold-scan speedup and prefetch hit rate, partition
# scaling, restore latency via cloud snapshots, network-path TPS over
# real client processes) is tracked on every CI pass — the fresh run's
# demand-steal rate and net TPS are diffed against the committed
# baseline, failing on regression, with a 0.30 prefetch-hit-rate floor
# on the scan scenario, a 0.5 flushes/commit ceiling on the pipelined
# network runs, a zero-lost-acks requirement, a 1.5x committed-bytes/s
# floor on the 4-partition log (vs 1 log over the same simulated device
# class), a 0.25 dependency-stall-rate ceiling on its flush passes, and
# a 1.2x floor on point-in-time restore through the newest snapshot vs
# a full from-genesis raw replay. The heavier bench assertions in the
# test suite respect -short, keeping tier-1 fast.
bench-smoke: vet
	$(GO) run ./cmd/aetherbench -quick -json -baseline BENCH_pr10.json

# Crash-storm smoke: fixed-seed runs of the fault-injection soak
# harness — 25 power-cut/recover cycles across every fault point
# (group-commit, journal, pagefile, watermark, manifest, archive),
# each cycle's recovered state checked against the committed-ops
# model, then 15 more against a 3-partition log whose profile adds the
# partition-flush point (one log's fsync dies while the others keep
# hardening; recovery's merge verifies no flush dependency was
# violated), then 15 with the opt-in remote-archive point: the cold
# store becomes a cloud object store that survives power cuts, and
# cycles tear uploads mid-object or open outage windows — recovery must
# never lose a committed transaction to a torn upload nor recycle a
# parked segment before its bytes are durably remote. Fast enough for
# every CI pass; `make soak` is the long form.
soak-smoke:
	$(GO) run ./cmd/aethersoak -cycles 25 -seed 1
	$(GO) run ./cmd/aethersoak -cycles 15 -seed 2 -log-partitions 3
	$(GO) run ./cmd/aethersoak -cycles 15 -seed 3 -points remote-archive,group-commit

# Long crash storm for release qualification / bug hunting. Pick a
# fresh seed to explore new fault schedules; a failure prints the seed
# that replays it.
soak: SEED ?= 1
soak:
	$(GO) run ./cmd/aethersoak -cycles 500 -seed $(SEED)

# Short coverage-guided fuzz runs over the hostile-input decoders: the
# wire protocol's frames and requests, and the cloud tier's object
# envelope (segment, indexed pack, snapshot) — none may panic,
# over-allocate, or round-trip asymmetrically. Ten seconds per target
# is enough to exercise the mutation corpus on every CI pass; run
# `go test -fuzz` by hand with a longer -fuzztime to dig.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzRequestRoundTrip$$' -fuzztime 10s
	$(GO) test ./internal/logdev -run '^$$' -fuzz '^FuzzCompactedIndex$$' -fuzztime 10s

ci: build vet docs test test-race bench-smoke soak-smoke fuzz-smoke
