package aether

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/metrics"
	"aether/internal/recovery"
	"aether/internal/storage"
	"aether/internal/txn"
	"aether/internal/vfs"
)

// BufferVariant selects the log-buffer insert algorithm (§5 of the
// paper).
type BufferVariant int

const (
	// BufferBaseline is the single-mutex log buffer (Algorithm 1).
	BufferBaseline BufferVariant = iota
	// BufferC uses consolidation-array backoff (Algorithm 2).
	BufferC
	// BufferD uses decoupled buffer fill (Algorithm 3).
	BufferD
	// BufferCD is the paper's hybrid design (§5.3) — the default.
	BufferCD
	// BufferCDME adds delegated buffer release (Algorithm 4, §A.3).
	BufferCDME
)

func (v BufferVariant) internal() logbuf.Variant {
	switch v {
	case BufferBaseline:
		return logbuf.VariantBaseline
	case BufferC:
		return logbuf.VariantC
	case BufferD:
		return logbuf.VariantD
	case BufferCDME:
		return logbuf.VariantCDME
	default:
		return logbuf.VariantCD
	}
}

// CommitMode selects the commit protocol (§3–§4).
type CommitMode int

const (
	// CommitPipelined is flush pipelining with early lock release — the
	// paper's headline safe protocol and the default.
	CommitPipelined CommitMode = iota
	// CommitSync is the traditional blocking commit holding locks
	// through the flush.
	CommitSync
	// CommitSyncELR blocks for durability but releases locks at insert.
	CommitSyncELR
	// CommitAsync acknowledges before durability (unsafe; provided for
	// comparison, exactly as the paper discusses).
	CommitAsync
)

func (m CommitMode) internal() txn.CommitMode {
	switch m {
	case CommitSync:
		return txn.CommitSync
	case CommitSyncELR:
		return txn.CommitSyncELR
	case CommitAsync:
		return txn.CommitAsync
	default:
		return txn.CommitPipelined
	}
}

// DeviceProfile selects the simulated log device class (§3.2).
type DeviceProfile int

const (
	// DeviceMemory has no added latency (ramdisk).
	DeviceMemory DeviceProfile = iota
	// DeviceFlash adds 100µs per sync.
	DeviceFlash
	// DeviceFastDisk adds 1ms per sync.
	DeviceFastDisk
	// DeviceSlowDisk adds 10ms per sync.
	DeviceSlowDisk
)

func (d DeviceProfile) internal() logdev.Profile {
	switch d {
	case DeviceFlash:
		return logdev.ProfileFlash
	case DeviceFastDisk:
		return logdev.ProfileFastDisk
	case DeviceSlowDisk:
		return logdev.ProfileSlowDisk
	default:
		return logdev.ProfileMemory
	}
}

// Options configures a database.
type Options struct {
	// LogPath, if set, stores the write-ahead log in a real file (or,
	// with SegmentSize set, a directory of segment files); otherwise an
	// in-memory device with Device's latency profile is used (the
	// paper's methodology). A file-backed database also keeps a
	// persistent page archive next to the log (LogPath+".pages", or
	// LogPath/pages for a segmented log): pages cleaned out of the
	// dirty-page table at a checkpoint are recovered from the archive,
	// not the log.
	LogPath string
	// SegmentSize, if > 0, stores the log on a segmented device: the
	// append-only stream is spread over fixed-size segments, and every
	// Checkpoint recycles the segments behind the release horizon, so
	// both the disk footprint and restart-recovery work stay bounded.
	// With LogPath set, LogPath names a directory holding the segment
	// files plus a persistent page archive (pages/) — the recycled
	// log's data lives on as archived page images.
	SegmentSize int64
	// ArchiveDir, if set (requires SegmentSize > 0), enables log
	// archiving: dead segments are copied and fsynced into this
	// cold-storage directory by a background archiver goroutine before
	// their slots are recycled, so the hot log stays bounded while the
	// full history remains restorable (RestoreTail, logdump). The
	// conventional location for a file-backed log is
	// filepath.Join(LogPath, "archive"). A partitioned database
	// (LogPartitions >= 2) keeps one archive lane per partition
	// (ArchiveDir/p0, ArchiveDir/p1, …).
	ArchiveDir string
	// RemoteStore, if set (requires SegmentSize > 0; mutually exclusive
	// with ArchiveDir), archives dead segments into an S3-style object
	// store instead of a local directory: the cloud log tier. Every
	// object carries a self-validating envelope, so torn uploads are
	// detected and re-shipped; a failed upload leaves the segment
	// parked on the hot device (its slot is never recycled until the
	// store durably holds it) and the background archiver retries with
	// backoff. A partitioned database keeps one key-prefix lane per
	// partition (p0/, p1/, …). Use NewMemObjectStore for tests or
	// NewDirObjectStore for a directory-backed store; any ObjectStore
	// implementation works. Enables DB.RestoreTo point-in-time
	// recovery and, with SnapshotEveryBytes, snapshot-anchored
	// retention.
	RemoteStore ObjectStore
	// CompactSegments, with RemoteStore set, packs runs of at least
	// this many contiguous raw segment objects into one larger
	// immutable indexed pack object (background compaction; default 4).
	CompactSegments int
	// SnapshotEveryBytes, with RemoteStore set on a single
	// (unpartitioned) log, cuts a materialized snapshot object — page
	// images plus the undo stash of in-flight transactions — every
	// time this many new log bytes have hardened. Snapshots anchor
	// retention (RetainSnapshots) and make RestoreTo cost proportional
	// to the distance from the nearest snapshot instead of total
	// history. 0 disables snapshots and pruning. Partitioned logs
	// ignore it: their pages interleave across lanes, so the cloud
	// tier keeps their full history (compaction still runs).
	SnapshotEveryBytes int64
	// RetainSnapshots, with SnapshotEveryBytes > 0, keeps only the
	// newest N snapshot objects: older snapshots, and every log object
	// wholly below the oldest survivor's cut, are pruned. The oldest
	// retained cut becomes the retention floor — RestoreTo below it
	// fails with ErrRestorePruned; everything at or above it stays
	// restorable. 0 keeps every snapshot (nothing is ever pruned).
	RetainSnapshots int
	// LogPartitions, if >= 2, shards the write-ahead log across that
	// many independent log devices — one flush daemon, group-commit
	// stream, durable watermark and archiver lane each — with every
	// record carrying a global sequence stamp and inter-log flush
	// dependencies physically enforced (a younger record whose page was
	// last updated on another log never hardens before that older
	// record does; see ARCHITECTURE.md "Partitioned logging"). Each
	// transaction homes on one partition — by default the page space of
	// its first update modulo LogPartitions, so table-partitioned
	// workloads stay log-local — and its commit waits only on that
	// partition. 0 and 1 are byte-for-byte the unpartitioned engine.
	// File-backed partitioned logs require SegmentSize; LogPath then
	// names a directory holding p0/ … pN-1/ plus the shared
	// pagefile.db. The partition count is part of the on-disk layout:
	// reopen with the same value.
	LogPartitions int
	// RoutePartition overrides the home-partition routing rule
	// (meaningful only with LogPartitions >= 2): given a transaction ID
	// and the page space of the transaction's first logged update, it
	// returns the home partition index. Must be pure and
	// goroutine-safe. Nil uses space modulo LogPartitions.
	RoutePartition func(txnID uint64, space uint32) int
	// Device is the simulated device class for in-memory logs.
	Device DeviceProfile
	// Buffer selects the log-buffer algorithm. Default BufferCD.
	Buffer BufferVariant
	// Mode is the default commit protocol for Tx.Commit. Default
	// CommitPipelined.
	Mode CommitMode
	// CheckpointEveryBytes, if > 0, runs the background incremental
	// checkpointer: a goroutine takes a fuzzy checkpoint — page-cleaning
	// sweep, log truncation and all — every time roughly this many bytes
	// have been appended to the log. The log stays bounded (Stats.LogBase
	// keeps advancing) with zero Checkpoint() calls and zero commit-path
	// stalls; explicit Checkpoint() calls remain allowed and serialize
	// with it.
	CheckpointEveryBytes int64
	// CachePages, if > 0, bounds the buffer pool: at most this many
	// pages stay resident in RAM, and the rest live in the database
	// file, faulted in on demand (CRC-verified) and evicted by a clock
	// policy to make room. A clean victim is evicted by simply dropping
	// its frame; a dirty victim must first be written back WAL-correctly
	// (log forced up to its pageLSN, image through the double-write
	// journal) — by the background cleaner ahead of demand when
	// CleanerPages is armed, or by the faulting caller itself (a demand
	// steal) when not. 0 leaves the store fully memory-resident (the
	// original behavior). Databases larger than RAM become usable at the
	// cost of page-fault I/O on cache misses.
	CachePages int
	// CacheBytes expresses the same budget in bytes (rounded down to
	// whole 8KiB pages, minimum one). Ignored when CachePages is set.
	CacheBytes int64
	// CleanerPages, if > 0 (meaningful only with a bounded cache), arms
	// the background page cleaner: a goroutine that pre-cleans dirty,
	// unpinned, cold pages — forcing the log, then batching the images
	// through the double-write journal with O(1) fsyncs per pass —
	// whenever fewer than this many frames are free or clean. Faults
	// under memory pressure then find clean victims and eviction is a
	// frame drop; demand steals (Stats.StealWrites) drop to near zero.
	// A good default is half the cache budget.
	CleanerPages int
	// CleanerInterval is the cleaner's polling cadence (default 2ms).
	// Demand steals also nudge the cleaner awake immediately, so this
	// only bounds how stale its headroom view can get between bursts.
	CleanerInterval time.Duration
	// PrefetchDepth, if > 0 (meaningful only with a bounded cache), arms
	// sequential read-ahead: when page faults form a sequential run — a
	// table scan, the rebuild walk after a reopen — up to this many pages
	// are read from the database file ahead of demand, concurrently, so
	// the scan streams instead of paying one synchronous read per page.
	// Prefetched frames are charged against the cache budget but never
	// evict dirty pages, so read-ahead cannot push out the working set. A
	// good default is 16–64.
	PrefetchDepth int
	// DeadlockTimeout bounds lock waits (default 500ms).
	DeadlockTimeout time.Duration
	// DisableSLI turns off speculative lock inheritance.
	DisableSLI bool
	// fs, if non-nil, substitutes the filesystem every durable layer
	// (segments, MANIFEST, watermark, pagefile, journal, archives) runs
	// on — the fault-injection hook for crash tests. Unexported: only
	// in-package tests and the soak harness (via its own wiring) may
	// inject it; production code always runs on the real filesystem.
	fs vfs.FS
}

// fsOrOS resolves the injected filesystem, defaulting to the real one.
func (o Options) fsOrOS() vfs.FS {
	if o.fs != nil {
		return o.fs
	}
	return vfs.OS{}
}

// crashSim is implemented by in-memory log devices that can simulate
// power loss (Crash support).
type crashSim interface {
	CrashFreeze()
	Remount()
}

// DB is an open database.
type DB struct {
	opts     Options
	dev      logdev.Device
	memDev   crashSim               // non-nil only for in-memory devices
	segDev   *logdev.Segmented      // non-nil only with Options.SegmentSize
	archiver logdev.Archiver        // non-nil with Options.ArchiveDir or RemoteStore
	remote   *logdev.RemoteArchiver // non-nil only with Options.RemoteStore

	// Partitioned mode (Options.LogPartitions >= 2) uses the slices
	// instead; the single-device fields above stay nil.
	devs      []logdev.Device
	memDevs   []crashSim
	segDevs   []*logdev.Segmented
	archivers []logdev.Archiver
	remotes   []*logdev.RemoteArchiver

	archive storage.Archive
	eng     *txn.Engine
	tables  []string
}

// Open creates (or reopens, for a file-backed log with existing
// contents) a database. Reopening runs ARIES recovery; the caller must
// re-create tables in the original order afterwards (CreateTable), and
// table contents reappear automatically.
func Open(opts Options) (*DB, error) {
	if opts.ArchiveDir != "" && opts.SegmentSize <= 0 {
		return nil, errors.New("aether: Options.ArchiveDir requires Options.SegmentSize (only segmented logs archive dead segments)")
	}
	if opts.RemoteStore != nil && opts.SegmentSize <= 0 {
		return nil, errors.New("aether: Options.RemoteStore requires Options.SegmentSize (only segmented logs archive dead segments)")
	}
	if opts.RemoteStore != nil && opts.ArchiveDir != "" {
		return nil, errors.New("aether: Options.RemoteStore and Options.ArchiveDir are mutually exclusive (one cold store per log)")
	}
	if opts.LogPartitions >= 2 {
		return openMulti(opts)
	}
	db := &DB{opts: opts}
	switch {
	case opts.LogPath != "" && opts.SegmentSize > 0:
		if err := checkSingleLayout(opts.fsOrOS(), opts.LogPath); err != nil {
			return nil, err
		}
		s, err := logdev.OpenSegmentedDirFS(opts.fsOrOS(), opts.LogPath, opts.SegmentSize)
		if err != nil {
			return nil, err
		}
		db.dev, db.segDev = s, s
		// A truncated log's dead prefix only exists as archived page
		// images, so a file-backed segmented database needs a database
		// file that survives the process alongside the segments.
		arch, err := openPageArchive(opts.fsOrOS(),
			filepath.Join(opts.LogPath, "pagefile.db"),
			filepath.Join(opts.LogPath, "pages"))
		if err != nil {
			s.Close()
			return nil, err
		}
		db.archive = arch
	case opts.LogPath != "":
		f, err := logdev.OpenFile(opts.LogPath)
		if err != nil {
			return nil, err
		}
		db.dev = f
		// Page images must survive the process even for the single-file
		// log: checkpoints remove archived pages from the DPT, so a
		// reopen's redo pass will not rebuild them from the (complete)
		// log — the database file is their only copy.
		arch, err := openPageArchive(opts.fsOrOS(), opts.LogPath+".pagefile", opts.LogPath+".pages")
		if err != nil {
			f.Close()
			return nil, err
		}
		db.archive = arch
	case opts.SegmentSize > 0:
		s := logdev.NewSegmentedMem(opts.Device.internal(), opts.SegmentSize)
		db.dev, db.segDev, db.memDev = s, s, s
		db.archive = storage.NewMemArchive()
	default:
		m := logdev.NewMem(opts.Device.internal())
		db.dev, db.memDev = m, m
		db.archive = storage.NewMemArchive()
	}
	if opts.ArchiveDir != "" {
		// Attach cold storage before the engine starts: the archiver
		// must be in place before the first truncation parks a dead
		// segment, and the engine only starts its background archiver
		// goroutine if the log can archive at engine construction.
		a, err := logdev.OpenDirArchiverFS(opts.fsOrOS(), opts.ArchiveDir)
		if err != nil {
			db.dev.Close()
			if c, ok := db.archive.(io.Closer); ok {
				c.Close()
			}
			return nil, err
		}
		db.archiver = a
		db.segDev.SetArchiver(a)
	}
	if opts.RemoteStore != nil {
		// Same placement rule as ArchiveDir: the remote archiver must be
		// attached before the engine's first truncation parks a segment.
		ra := logdev.NewRemoteArchiver(opts.RemoteStore, "", opts.SegmentSize)
		db.archiver = ra
		db.remote = ra
		db.segDev.SetArchiver(ra)
	}
	if _, err := db.start(); err != nil {
		// Release the descriptors the failed open acquired, or a caller
		// retrying Open on a damaged database leaks them every attempt.
		db.dev.Close()
		if c, ok := db.archive.(io.Closer); ok {
			c.Close()
		}
		return nil, err
	}
	return db, nil
}

// openPageArchive opens the paged database file, first importing (once)
// a legacy one-file-per-page archive directory if a previous version of
// the library left one behind.
func openPageArchive(fs vfs.FS, pfPath, legacyDir string) (*storage.PageFile, error) {
	pf, err := storage.OpenPageFileFS(fs, pfPath)
	if err != nil {
		return nil, err
	}
	if st, serr := fs.Stat(legacyDir); serr == nil && st.IsDir() {
		if err := pf.ImportLegacy(legacyDir); err != nil {
			pf.Close()
			return nil, err
		}
	}
	return pf, nil
}

// cachePages resolves the CachePages/CacheBytes pair to a page budget
// (0 = unbounded).
func (o Options) cachePages() int64 {
	if o.CachePages > 0 {
		return int64(o.CachePages)
	}
	if o.CacheBytes > 0 {
		n := o.CacheBytes / storage.PageSize
		if n < 1 {
			n = 1
		}
		return n
	}
	return 0
}

// start builds the engine over the device via the recovery path (a
// fresh device just recovers an empty log).
func (db *DB) start() (*DB, error) {
	eng, _, err := txn.Restart(txn.RestartConfig{
		Device:         db.dev,
		Devices:        db.devs,
		RoutePartition: db.opts.RoutePartition,
		Archive:        db.archive,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: db.opts.Buffer.internal(), Size: 1 << 23},
		},
		LockConfig: lockmgr.Config{
			DeadlockTimeout: db.opts.DeadlockTimeout,
			SLI:             !db.opts.DisableSLI,
		},
		CheckpointEveryBytes: db.opts.CheckpointEveryBytes,
		CachePages:           db.opts.cachePages(),
		CleanerPages:         db.opts.CleanerPages,
		CleanerInterval:      db.opts.CleanerInterval,
		PrefetchDepth:        db.opts.PrefetchDepth,
		Retention:            db.retentionConfig(),
	})
	if err != nil {
		return nil, err
	}
	db.eng = eng
	return db, nil
}

// Close flushes and stops the database and closes the log device (a
// file-backed log releases its descriptors) and the database file. The
// durable contents stay intact, so a file-backed database can be
// reopened; Close is safe to call more than once.
func (db *DB) Close() error {
	// Stop the background checkpointer first: it appends to the log and
	// sweeps into the archive, both of which are about to close.
	db.eng.Close()
	var err error
	if m := db.eng.Multi(); m != nil {
		err = m.Close()
		for _, d := range db.devs {
			if cerr := d.Close(); err == nil {
				err = cerr
			}
		}
	} else {
		err = db.eng.Log().Close()
		if cerr := db.dev.Close(); err == nil {
			err = cerr
		}
	}
	if c, ok := db.archive.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Table is a handle to a table.
type Table struct {
	t *txn.Table
}

// CreateTable registers a table. Tables must be created in the same
// order on every open of the same database (recovery keys page
// ownership by creation order).
func (db *DB) CreateTable(name string) (*Table, error) {
	t, err := db.eng.CreateTable(name, nil)
	if err != nil {
		return nil, err
	}
	db.tables = append(db.tables, name)
	return &Table{t: t}, nil
}

// LookupTable returns the handle for a registered table. Handles become
// stale across Crash (tables are re-registered during recovery); fetch a
// fresh one afterwards.
func (db *DB) LookupTable(name string) (*Table, error) {
	t := db.eng.Table(name)
	if t == nil {
		return nil, fmt.Errorf("aether: no table %q", name)
	}
	return &Table{t: t}, nil
}

// RebuildAfterRecovery reattaches recovered pages and rebuilds indexes.
// Call it once after reopening a database and re-creating its tables.
func (db *DB) RebuildAfterRecovery() error {
	return db.eng.RebuildTables()
}

// Checkpoint takes a fuzzy ARIES checkpoint (and archives clean page
// images), bounding recovery work.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Crash simulates power loss on an in-memory database and reopens it
// with full ARIES recovery: every unflushed log byte is lost, committed
// transactions survive, in-flight ones roll back. Tables are re-created
// and indexes rebuilt automatically. File-backed databases return an
// error (kill the process instead — that is the real crash test).
func (db *DB) Crash() error {
	if db.memDev == nil && len(db.memDevs) == 0 {
		return errors.New("aether: Crash is only supported for in-memory devices")
	}
	if len(db.devs) > 0 && len(db.memDevs) != len(db.devs) {
		return errors.New("aether: Crash is only supported for in-memory devices")
	}
	// Freeze every partition before stopping the engine: power loss cuts
	// all the logs at once, each at its own durable watermark.
	for _, m := range db.memDevs {
		m.CrashFreeze()
	}
	if db.memDev != nil {
		db.memDev.CrashFreeze()
	}
	db.eng.Close()
	if m := db.eng.Multi(); m != nil {
		m.Close()
	} else {
		db.eng.Log().Close()
	}
	for _, m := range db.memDevs {
		m.Remount()
	}
	if db.memDev != nil {
		db.memDev.Remount()
	}
	if _, err := db.start(); err != nil {
		return fmt.Errorf("aether: recovery failed: %w", err)
	}
	names := db.tables
	db.tables = nil
	for _, name := range names {
		if _, err := db.CreateTable(name); err != nil {
			return err
		}
	}
	return db.RebuildAfterRecovery()
}

// Stats exposes a few headline counters.
type Stats struct {
	Commits     int64
	Aborts      int64
	LogInserts  int64
	LogBytes    int64
	LogFlushes  int64
	Checkpoints int64
	// LogTruncations counts checkpoint-driven truncations that advanced
	// the release horizon.
	LogTruncations int64
	// LogTruncatedBytes counts logical log bytes released behind the
	// horizon (bounded-log progress).
	LogTruncatedBytes int64
	// LogSegmentsRecycled counts whole segments recycled (deleted files
	// or released memory regions); 0 without Options.SegmentSize.
	LogSegmentsRecycled int64
	// LogSegmentsArchived counts dead segments shipped to cold storage
	// (Options.ArchiveDir) before their slots were recycled.
	LogSegmentsArchived int64
	// LogSegmentsPendingArchive is how many dead segments currently
	// await the background archiver; they stay on disk until cold
	// storage has them.
	LogSegmentsPendingArchive int64
	// ArchiveRetries counts backoff retries of failed cold-store
	// archive passes (transient outages the archiver rode out).
	ArchiveRetries int64
	// ArchiveGaveUp counts archive passes abandoned after the retry
	// budget; the segments stay parked until a later nudge succeeds.
	ArchiveGaveUp int64
	// LogPacksBuilt counts compaction runs in the cloud tier
	// (Options.RemoteStore): contiguous raw segment objects merged into
	// one immutable indexed pack object.
	LogPacksBuilt int64
	// LogSnapshots counts materialized snapshot objects the cloud
	// tier's maintenance daemon uploaded (Options.SnapshotEveryBytes).
	LogSnapshots int64
	// LogObjectsPruned counts remote objects retention deleted — always
	// wholly below the oldest retained snapshot's cut.
	LogObjectsPruned int64
	// RetentionFailures counts cloud-tier maintenance passes that
	// errored; nothing is lost, the next checkpoint retries.
	RetentionFailures int64
	// RestoreFloor is the oldest restorable point (the oldest retained
	// snapshot's cut): RestoreTo below it fails with ErrRestorePruned.
	// 0 means the full history is retained.
	RestoreFloor int64
	// LogTornTailRepaired counts bytes the last Open discarded while
	// repairing a torn tail: unsynced bytes a power loss happened to
	// persist beyond the durable watermark. Committed work is never
	// among them.
	LogTornTailRepaired int64
	// LogBase is the current truncation horizon: restart recovery reads
	// the log from here, never from byte 0.
	LogBase int64
	// AutoCheckpoints counts checkpoints taken by the background
	// incremental checkpointer (Options.CheckpointEveryBytes).
	AutoCheckpoints int64
	// SweepPages counts page images written by checkpoint sweeps into
	// the database file.
	SweepPages int64
	// SweepFsyncs counts device fsyncs charged to checkpoint sweeps —
	// O(1) per sweep on the paged database file.
	SweepFsyncs int64
	// SweepDuration summarizes checkpoint-sweep wall-clock times.
	SweepDuration metrics.HistogramSnapshot
	// CacheResident is how many pages are currently in RAM. With
	// Options.CachePages set it stays within the budget whenever an
	// unpinned victim exists.
	CacheResident int64
	// PageMisses counts page faults served by reading the database file
	// (demand paging; 0 for a fully resident store).
	PageMisses int64
	// PageEvictions counts pages dropped from RAM to stay within the
	// cache budget.
	PageEvictions int64
	// StealWrites counts demand steals only: evictions that found a
	// dirty victim and had to write its image back (forcing the log
	// first) on the faulting caller's own critical path. Pages written
	// back ahead of demand by the background cleaner are counted in
	// CleanerWrites instead, and their eviction is a plain frame drop.
	// With Options.CleanerPages armed this should stay near zero.
	StealWrites int64
	// CleanerWrites counts page images the background page cleaner
	// (Options.CleanerPages) wrote back ahead of demand.
	CleanerWrites int64
	// CleanerPasses counts cleaner passes that wrote at least one page.
	CleanerPasses int64
	// PrefetchReads counts page images the read-ahead pipeline
	// (Options.PrefetchDepth) installed ahead of demand.
	PrefetchReads int64
	// PrefetchHits counts page accesses served by a prefetched page —
	// faults that never happened. PrefetchReads − PrefetchHits is the
	// wasted-read overshoot, bounded by the window size per stream.
	PrefetchHits int64
	// ReadRetries counts optimistic database-file reads that raced an
	// in-place page write, failed checksum validation and retried — the
	// observable cost of the lock-free read path (normally ~0).
	ReadRetries int64
	// LogPartitions is the number of log partitions (0 when the log is
	// not partitioned). When partitioned, the Log* counters above are
	// sums over partitions and LogBase is the sum of the per-partition
	// truncation horizons.
	LogPartitions int
	// PartitionFlushes is each partition's flush-daemon I/O count (nil
	// when not partitioned); LogFlushes is their sum.
	PartitionFlushes []int64
	// PartitionBytes is each partition's inserted log bytes (nil when
	// not partitioned); LogBytes is their sum. The spread shows routing
	// balance.
	PartitionBytes []int64
	// DepEdges counts cross-partition page dependencies observed at
	// append time: a page updated on one log and then on another. Same
	// definition as the distlog simulator's edge count.
	DepEdges int64
	// DepEdgesEnforced is the subset of DepEdges whose older record was
	// not yet durable at append time and therefore registered a flush
	// clamp on the younger record's partition.
	DepEdgesEnforced int64
	// DepStalls is, per partition, how many flush passes were clamped
	// short by an unsatisfied inter-log dependency (nil when not
	// partitioned) — the paper's A.5 dependency-stall rate is
	// sum(DepStalls)/LogFlushes.
	DepStalls []int64
}

// Stats returns current counters.
func (db *DB) Stats() Stats {
	es := db.eng.Stats()
	cs := db.eng.Store().CacheStats()
	s := Stats{
		Commits:         es.Commits.Load(),
		Aborts:          es.Aborts.Load(),
		Checkpoints:     es.Checkpoints.Load(),
		AutoCheckpoints: es.AutoCheckpoints.Load(),
		ArchiveRetries:  es.ArchiveRetries.Load(),
		ArchiveGaveUp:   es.ArchiveGaveUp.Load(),
		SweepPages:      es.SweepPages.Load(),
		SweepFsyncs:     es.SweepFsyncs.Load(),
		SweepDuration:   es.SweepDuration.Snapshot(),
		CacheResident:   cs.Resident,
		PageMisses:      cs.Misses,
		PageEvictions:   cs.Evictions,
		StealWrites:     cs.StealWrites,
		CleanerWrites:   cs.CleanerWrites,
		CleanerPasses:   cs.CleanerPasses,
		PrefetchReads:   cs.PrefetchReads,
		PrefetchHits:    cs.PrefetchHits,
	}
	if m := db.eng.Multi(); m != nil {
		n := m.NumParts()
		s.LogPartitions = n
		s.PartitionFlushes = make([]int64, n)
		s.PartitionBytes = make([]int64, n)
		s.DepStalls = make([]int64, n)
		s.DepEdges = m.EdgesTotal()
		s.DepEdgesEnforced = m.EdgesEnforced()
		for i := 0; i < n; i++ {
			lm := m.Part(i)
			ls := lm.Stats()
			s.PartitionFlushes[i] = ls.Flushes.Load()
			s.PartitionBytes[i] = ls.InsertBytes.Load()
			s.DepStalls[i] = m.DepStalls(i)
			s.LogInserts += ls.Inserts.Load()
			s.LogBytes += ls.InsertBytes.Load()
			s.LogFlushes += ls.Flushes.Load()
			s.LogTruncations += ls.Truncations.Load()
			s.LogTruncatedBytes += ls.TruncatedBytes.Load()
			s.LogBase += int64(lm.Base())
		}
	} else {
		ls := db.eng.Log().Stats()
		s.LogInserts = ls.Inserts.Load()
		s.LogBytes = ls.InsertBytes.Load()
		s.LogFlushes = ls.Flushes.Load()
		s.LogTruncations = ls.Truncations.Load()
		s.LogTruncatedBytes = ls.TruncatedBytes.Load()
		s.LogBase = int64(db.eng.Log().Base())
	}
	if rr, ok := db.archive.(storage.ReadRetrier); ok {
		s.ReadRetries = rr.ReadRetries()
	}
	if db.segDev != nil {
		segs, _ := db.segDev.TruncStats()
		s.LogSegmentsRecycled = segs
		s.LogSegmentsArchived = db.segDev.ArchivedSegments()
		s.LogSegmentsPendingArchive = int64(len(db.segDev.PendingArchive()))
		s.LogTornTailRepaired = db.segDev.RepairedTailBytes()
	}
	for _, sd := range db.segDevs {
		segs, _ := sd.TruncStats()
		s.LogSegmentsRecycled += segs
		s.LogSegmentsArchived += sd.ArchivedSegments()
		s.LogSegmentsPendingArchive += int64(len(sd.PendingArchive()))
		s.LogTornTailRepaired += sd.RepairedTailBytes()
	}
	s.LogSnapshots = es.SnapshotsTaken.Load()
	s.LogObjectsPruned = es.RetentionPrunedObjects.Load()
	s.RetentionFailures = es.RetentionFailures.Load()
	if db.remote != nil {
		rs := db.remote.Stats()
		s.LogPacksBuilt = rs.PacksBuilt
		if floor, err := db.remote.Floor(); err == nil {
			s.RestoreFloor = int64(floor)
		}
	}
	for _, r := range db.remotes {
		s.LogPacksBuilt += r.Stats().PacksBuilt
	}
	return s
}

// RestoreTail reads the log from logical offset from (a record-aligned
// LSN; 0 for the beginning of time) through the durable end, stitching
// archived history below Stats.LogBase — restored on demand from the
// Options.ArchiveDir cold store — to the live tail. It returns the raw
// log bytes and the offset the first returned byte actually sits at:
// from itself when the archive and device cover it contiguously, else
// Stats.LogBase (history the archive cannot reach would begin
// mid-record at a segment boundary, so it is withheld rather than
// returned unparseable; without an archiver this is always the case
// for from below the base). Dead segments still awaiting the
// background archiver are drained first, so the archive is contiguous
// up to the hot log.
func (db *DB) RestoreTail(from int64) ([]byte, int64, error) {
	if len(db.devs) > 0 {
		// Partitioned logs have no single byte-offset timeline to restore
		// into; dump them with cmd/logdump, which merges partitions by
		// global sequence stamp.
		return nil, 0, errors.New("aether: RestoreTail is not supported for a partitioned log (use logdump's merged view)")
	}
	if db.segDev != nil {
		data, start, err := db.segDev.RestoreLog(db.archiver, from)
		if err != nil {
			return nil, 0, fmt.Errorf("aether: restoring log: %w", err)
		}
		return data, start, nil
	}
	if from < 0 {
		from = 0
	}
	tail, base, err := logdev.ReadTail(db.dev)
	if err != nil {
		return nil, 0, err
	}
	start := base
	if from > start {
		start = from
	}
	if end := base + int64(len(tail)); start > end {
		start = end
	}
	return tail[start-base:], start, nil
}

// RecoveryInfo describes what a reopen had to do (file-backed opens).
type RecoveryInfo = recovery.Result

// Row builds a row whose first 8 bytes encode key — the convention the
// built-in index rebuild relies on.
func Row(key uint64, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(b[:8], key)
	copy(b[8:], payload)
	return b
}

// RowPayload strips the 8-byte key prefix from a row.
func RowPayload(row []byte) []byte {
	if len(row) < 8 {
		return nil
	}
	return row[8:]
}
