package aether

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestOpenInsertReadClose(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()

	tx := s.Begin()
	if err := tx.Insert(tbl, 1, Row(1, []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = s.Begin()
	row, err := tx.Read(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(RowPayload(row), []byte("hello")) {
		t.Fatalf("payload: %q", RowPayload(row))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitModes(t *testing.T) {
	for _, mode := range []CommitMode{CommitPipelined, CommitSync, CommitSyncELR, CommitAsync} {
		db, err := Open(Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		tbl, _ := db.CreateTable("t")
		s := db.Session()
		tx := s.Begin()
		if err := tx.Insert(tbl, 7, Row(7, []byte("x"))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		s.Close()
		db.Close()
	}
}

func TestBufferVariants(t *testing.T) {
	for _, v := range []BufferVariant{BufferBaseline, BufferC, BufferD, BufferCD, BufferCDME} {
		db, err := Open(Options{Buffer: v})
		if err != nil {
			t.Fatal(err)
		}
		tbl, _ := db.CreateTable("t")
		s := db.Session()
		tx := s.Begin()
		for k := uint64(1); k <= 50; k++ {
			if err := tx.Insert(tbl, k, Row(k, []byte("v"))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		s.Close()
		db.Close()
	}
}

func TestUpdateDeleteAbort(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	defer s.Close()

	tx := s.Begin()
	tx.Insert(tbl, 1, Row(1, []byte("one")))
	tx.Insert(tbl, 2, Row(2, []byte("two")))
	tx.Commit()

	tx = s.Begin()
	if err := tx.Update(tbl, 1, func(row []byte) ([]byte, error) {
		return Row(1, []byte("ONE")), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	tx = s.Begin()
	row, err := tx.Read(tbl, 1)
	if err != nil || string(RowPayload(row)) != "one" {
		t.Fatalf("update not rolled back: %q %v", RowPayload(row), err)
	}
	row, err = tx.Read(tbl, 2)
	if err != nil || string(RowPayload(row)) != "two" {
		t.Fatalf("delete not rolled back: %q %v", RowPayload(row), err)
	}
	tx.Commit()

	// A committed delete, by contrast, stays deleted.
	tx = s.Begin()
	if err := tx.Delete(tbl, 2); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx = s.Begin()
	if _, err := tx.Read(tbl, 2); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("committed delete: %v", err)
	}
	tx.Commit()
}

func TestCrashRecoveryViaFacade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()

	tx := s.Begin()
	for k := uint64(1); k <= 20; k++ {
		tx.Insert(tbl, k, Row(k, []byte(fmt.Sprintf("v%d", k))))
	}
	if err := tx.Commit(); err != nil { // durable
		t.Fatal(err)
	}
	s.Close()

	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Handles must be re-fetched after recovery... the table handle is
	// stale; recreate via lookup: CreateTable was called by Crash, so
	// fetch through a fresh read transaction using a fresh handle.
	tbl2 := db.tableByName("t")
	s2 := db.Session()
	defer s2.Close()
	tx = s2.Begin()
	for k := uint64(1); k <= 20; k++ {
		row, err := tx.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d lost after crash: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", k); string(RowPayload(row)) != want {
			t.Fatalf("key %d: %q", k, RowPayload(row))
		}
	}
	tx.Commit()
}

func TestAsyncCommitUnsafeLosesOnCrash(t *testing.T) {
	db, _ := Open(Options{Mode: CommitAsync})
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	tx := s.Begin()
	tx.Insert(tbl, 1, Row(1, []byte("gone?")))
	if err := tx.Commit(); err != nil { // acked instantly, maybe not durable
		t.Fatal(err)
	}
	s.Close()
	// No flush guarantee: the row may or may not survive; the database
	// must at least recover to a consistent state.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedAckSurvivesCrash(t *testing.T) {
	db, _ := Open(Options{Mode: CommitPipelined})
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	var wg sync.WaitGroup
	const n = 30
	for k := uint64(1); k <= n; k++ {
		tx := s.Begin()
		tx.Insert(tbl, k, Row(k, []byte("ack")))
		wg.Add(1)
		if err := tx.CommitAsyncAck(func(err error) {
			if err != nil {
				t.Errorf("ack error: %v", err)
			}
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait() // every transaction acked ⇒ durable
	s.Close()
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	tbl2 := db.tableByName("t")
	s2 := db.Session()
	defer s2.Close()
	tx := s2.Begin()
	for k := uint64(1); k <= n; k++ {
		if _, err := tx.Read(tbl2, k); err != nil {
			t.Fatalf("acked txn %d lost: %v", k, err)
		}
	}
	tx.Commit()
}

func TestFileBackedReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	tx := s.Begin()
	tx.Insert(tbl, 42, Row(42, []byte("persisted")))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the file: recovery replays the log.
	db2, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s2 := db2.Session()
	defer s2.Close()
	tx = s2.Begin()
	row, err := tx.Read(tbl2, 42)
	if err != nil || string(RowPayload(row)) != "persisted" {
		t.Fatalf("file reopen: %q %v", RowPayload(row), err)
	}
	tx.Commit()
}

func TestStatsAndCheckpoint(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	tx.Insert(tbl, 1, Row(1, []byte("x")))
	tx.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Commits < 1 || st.LogInserts < 1 || st.Checkpoints != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row(7, []byte("payload"))
	if len(r) != 15 || string(RowPayload(r)) != "payload" {
		t.Fatalf("row helpers: %v %q", r, RowPayload(r))
	}
	if RowPayload([]byte("short")) != nil {
		t.Fatal("short row payload")
	}
}

// tableByName is a test helper reaching the recreated handle after
// Crash().
func (db *DB) tableByName(name string) *Table {
	return &Table{t: db.eng.Table(name)}
}

func TestScan(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	for k := uint64(1); k <= 30; k++ {
		tx.Insert(tbl, k*10, Row(k*10, []byte{byte(k)}))
	}
	tx.Commit()

	tx = s.Begin()
	var keys []uint64
	err := tx.Scan(tbl, 95, 205, func(key uint64, row []byte) bool {
		keys = append(keys, key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(keys) != len(want) {
		t.Fatalf("scan keys: %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys: %v", keys)
		}
	}
	// Early stop.
	n := 0
	if err := tx.Scan(tbl, 0, 1<<60, func(uint64, []byte) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop: %d", n)
	}
	tx.Commit()
}

func TestScanBlocksWriters(t *testing.T) {
	db, _ := Open(Options{DeadlockTimeout: 80 * 1000000}) // 80ms
	defer db.Close()
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	tx.Insert(tbl, 1, Row(1, []byte("x")))
	tx.Commit()

	// Hold a scan's table S lock open in one txn...
	reader := s.Begin()
	if err := reader.Scan(tbl, 0, 10, func(uint64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// ...a writer on another session must block (and time out here).
	s2 := db.Session()
	defer s2.Close()
	writer := s2.Begin()
	err := writer.Update(tbl, 1, func(r []byte) ([]byte, error) { return r, nil })
	if err == nil {
		t.Fatal("writer proceeded under a scan's table lock")
	}
	writer.Abort()
	reader.Commit()
}
