package aether

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// waitFor polls cond for up to two seconds — the background archiver
// runs on its own goroutine, so tests wait for it instead of assuming
// scheduling order.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestArchiverShipsDeadSegmentsBeforeRecycle drives the full lifecycle
// through the public API: commits fill segments, checkpoints kill them,
// the background archiver ships every dead segment to cold storage, and
// only then are their slots recycled — so the union of cold storage and
// the hot directory always covers the entire history.
func TestArchiverShipsDeadSegmentsBeforeRecycle(t *testing.T) {
	const segSize = 16 << 10
	dir := t.TempDir()
	logDir := filepath.Join(dir, "wal.d")
	coldDir := filepath.Join(logDir, "archive")
	db, err := Open(Options{
		LogPath:     logDir,
		SegmentSize: segSize,
		ArchiveDir:  coldDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	writeRows(t, db, tbl, 1, 300) // several segments of traffic
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogBase == 0 {
		t.Fatalf("checkpoint did not truncate: %+v", st)
	}
	waitFor(t, "background archiver drain", func() bool {
		s := db.Stats()
		return s.LogSegmentsPendingArchive == 0 && s.LogSegmentsArchived > 0
	})

	st = db.Stats()
	if st.LogSegmentsArchived != st.LogSegmentsRecycled {
		t.Fatalf("recycled %d segments but archived %d — a slot was reused before cold storage had it",
			st.LogSegmentsRecycled, st.LogSegmentsArchived)
	}
	// Every segment wholly below the base is accounted for: shipped to
	// cold storage or still sitting in the hot directory.
	covered := make(map[int64]bool)
	for _, d := range []string{coldDir, logDir} {
		matches, _ := filepath.Glob(filepath.Join(d, "*.seg"))
		for _, m := range matches {
			var idx int64
			if _, err := fmt.Sscanf(filepath.Base(m), "%d.seg", &idx); err == nil {
				covered[idx] = true
			}
		}
	}
	for idx := int64(0); (idx+1)*segSize <= st.LogBase; idx++ {
		if !covered[idx] {
			t.Fatalf("segment %d (below base %d) vanished without reaching cold storage", idx, st.LogBase)
		}
	}

	// Restore-on-demand: the stitched archived+live log decodes from
	// offset 0 — the full history, despite the hot log holding only the
	// tail above LogBase.
	data, start, err := db.RestoreTail(0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("RestoreTail start = %d, want 0 (full history archived)", start)
	}
	it := logrec.NewIterator(data, lsn.LSN(start))
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("restored history has a gap: %v", err)
	}
	if n < 300 {
		t.Fatalf("restored history decodes only %d records, want ≥ 300", n)
	}

	// More traffic and another checkpoint keep the lifecycle moving.
	writeRows(t, db, tbl, 300, 400)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second drain", func() bool { return db.Stats().LogSegmentsPendingArchive == 0 })
	verifyRows(t, db, tbl, 1, 400)
}

// The background archiver also rides the background checkpointer: with
// both enabled, the log stays bounded and archived with zero client
// calls.
func TestBackgroundArchiverWithAutoCheckpoint(t *testing.T) {
	const segSize = 16 << 10
	logDir := filepath.Join(t.TempDir(), "wal.d")
	db, err := Open(Options{
		LogPath:              logDir,
		SegmentSize:          segSize,
		ArchiveDir:           filepath.Join(logDir, "archive"),
		CheckpointEveryBytes: 2 * segSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 400)
	waitFor(t, "auto checkpoint + archive", func() bool {
		s := db.Stats()
		return s.AutoCheckpoints > 0 && s.LogSegmentsArchived > 0 && s.LogSegmentsPendingArchive == 0
	})
	st := db.Stats()
	if st.LogSegmentsArchived != st.LogSegmentsRecycled {
		t.Fatalf("recycled %d ≠ archived %d under the background pipeline",
			st.LogSegmentsRecycled, st.LogSegmentsArchived)
	}
	verifyRows(t, db, tbl, 1, 400)
}

// TestTornTailRepairedOnReopen is the crash-correctness acceptance test
// at the API level: a power loss that persists a later segment's
// unsynced bytes but not an earlier one's used to fail Open as
// "corruption"; the durable watermark repairs it and recovers every
// committed transaction.
func TestTornTailRepairedOnReopen(t *testing.T) {
	const segSize = 16 << 10
	logDir := filepath.Join(t.TempDir(), "wal.d")
	db, err := Open(Options{LogPath: logDir, SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 100)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the power loss: a later segment full of unsynced bytes
	// hit the platter while the earlier (tail) segment's unsynced bytes
	// did not. Before the watermark, reopen computed durability from
	// file sizes, read the gap as zeros, and failed.
	matches, err := filepath.Glob(filepath.Join(logDir, "*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	var maxIdx int64 = -1
	for _, m := range matches {
		var idx int64
		if _, err := fmt.Sscanf(filepath.Base(m), "%d.seg", &idx); err == nil && idx > maxIdx {
			maxIdx = idx
		}
	}
	junk := make([]byte, segSize)
	for i := range junk {
		junk[i] = 0xAB
	}
	tornSeg := filepath.Join(logDir, fmt.Sprintf("%016d.seg", maxIdx+1))
	if err := os.WriteFile(tornSeg, junk, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{LogPath: logDir, SegmentSize: segSize})
	if err != nil {
		t.Fatalf("Open failed on a repairable torn tail: %v", err)
	}
	defer db2.Close()
	if got := db2.Stats().LogTornTailRepaired; got == 0 {
		t.Fatal("Stats.LogTornTailRepaired = 0, want the discarded torn bytes counted")
	}
	if _, err := os.Stat(tornSeg); !os.IsNotExist(err) {
		t.Fatal("torn segment survived the repair")
	}
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db2, tbl2, 1, 100)
}

// RestoreTail without an archiver clamps to the hot log's base and
// still returns the live tail.
func TestRestoreTailWithoutArchiver(t *testing.T) {
	const segSize = 16 << 10
	db, err := Open(Options{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 300)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogBase == 0 {
		t.Fatal("checkpoint did not truncate")
	}
	data, start, err := db.RestoreTail(0)
	if err != nil {
		t.Fatal(err)
	}
	if start != st.LogBase {
		t.Fatalf("RestoreTail start = %d without archiver, want the base %d", start, st.LogBase)
	}
	it := logrec.NewIterator(data, lsn.LSN(start))
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("live tail has a gap: %v", err)
	}
}

// ArchiveDir without SegmentSize is a configuration error, not a
// silent no-op.
func TestArchiveDirRequiresSegments(t *testing.T) {
	if _, err := Open(Options{ArchiveDir: t.TempDir()}); err == nil {
		t.Fatal("ArchiveDir without SegmentSize accepted")
	}
}
