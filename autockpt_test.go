package aether

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"aether/internal/storage"
)

// waitLogBaseAbove drives commits until Stats.LogBase exceeds prev (the
// background checkpointer is the only thing advancing it here).
func waitLogBaseAbove(t *testing.T, db *DB, tbl *Table, from uint64, prev int64) uint64 {
	t.Helper()
	s := db.Session()
	defer s.Close()
	payload := make([]byte, 256)
	deadline := time.Now().Add(15 * time.Second)
	k := from
	for db.Stats().LogBase <= prev {
		if time.Now().After(deadline) {
			t.Fatalf("LogBase stuck at %d (auto checkpoints: %d)",
				db.Stats().LogBase, db.Stats().AutoCheckpoints)
		}
		tx := s.Begin()
		if err := tx.Insert(tbl, k, Row(k, payload)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
		k++
	}
	return k
}

// TestBackgroundCheckpointerBoundsFileBackedLog is the tentpole's
// end-to-end acceptance test: with CheckpointEveryBytes set and no
// explicit Checkpoint() calls, a sustained workload keeps the truncation
// horizon advancing, and a reopen recovers every committed row from the
// pagefile plus the surviving log tail.
func TestBackgroundCheckpointerBoundsFileBackedLog(t *testing.T) {
	const segSize = 16 << 10
	dir := filepath.Join(t.TempDir(), "wal.d")
	db, err := Open(Options{
		LogPath:              dir,
		SegmentSize:          segSize,
		CheckpointEveryBytes: 2 * segSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	// The horizon must advance twice purely from background checkpoints.
	next := waitLogBaseAbove(t, db, tbl, 1, 0)
	base1 := db.Stats().LogBase
	last := waitLogBaseAbove(t, db, tbl, next, base1)

	st := db.Stats()
	if st.AutoCheckpoints == 0 {
		t.Fatalf("horizon advanced without auto checkpoints: %+v", st)
	}
	if st.Checkpoints < st.AutoCheckpoints {
		t.Fatalf("auto checkpoints (%d) not counted in Checkpoints (%d)",
			st.AutoCheckpoints, st.Checkpoints)
	}
	if st.SweepPages == 0 {
		t.Fatal("background sweeps wrote no pages")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: rows whose log was recycled live only in the pagefile.
	db2, err := Open(Options{LogPath: dir, SegmentSize: segSize})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db2, tbl2, 1, last)
	if db2.Stats().LogBase == 0 {
		t.Fatal("reopened database lost its truncation base")
	}
}

// TestBackgroundCheckpointerSurvivesCrash runs the same property on the
// in-memory segmented device with simulated power loss: committed rows
// survive Crash with only background checkpoints bounding the log.
func TestBackgroundCheckpointerSurvivesCrash(t *testing.T) {
	const segSize = 16 << 10
	db, err := Open(Options{SegmentSize: segSize, CheckpointEveryBytes: 2 * segSize})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	last := waitLogBaseAbove(t, db, tbl, 1, 0)
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	tbl, err = db.LookupTable("t")
	if err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db, tbl, 1, last)
	// The restarted engine re-arms the checkpointer: the horizon must
	// keep advancing after recovery too.
	waitLogBaseAbove(t, db, tbl, last, db.Stats().LogBase)
}

// TestLegacyPagesDirectoryImport: a database left on disk by the old
// one-file-per-page layout (a pages/ directory, no pagefile) must open
// cleanly — Open imports the directory into the pagefile once, removes
// it, and recovery finds every row.
func TestLegacyPagesDirectoryImport(t *testing.T) {
	const segSize = 16 << 10
	dir := filepath.Join(t.TempDir(), "wal.d")
	db, err := Open(Options{LogPath: dir, SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 300)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err) // truncates the log: the archive is now load-bearing
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the on-disk state into the legacy layout: every archived
	// page as its own file under pages/, no pagefile.
	pfPath := filepath.Join(dir, "pagefile.db")
	pf, err := storage.OpenPageFile(pfPath)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := storage.OpenFileArchive(filepath.Join(dir, "pages"))
	if err != nil {
		t.Fatal(err)
	}
	pids, err := pf.Pages()
	if err != nil || len(pids) == 0 {
		t.Fatalf("pagefile pages: %v, %v", pids, err)
	}
	for _, pid := range pids {
		img, err := pf.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		if err := legacy.Put(pid, img); err != nil {
			t.Fatal(err)
		}
	}
	pf.Close()
	for _, p := range []string{pfPath, pfPath + ".journal"} {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	// Open must migrate and recover.
	db2, err := Open(Options{LogPath: dir, SegmentSize: segSize})
	if err != nil {
		t.Fatalf("reopen over legacy layout: %v", err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db2, tbl2, 1, 300)
	if _, err := os.Stat(filepath.Join(dir, "pages")); !os.IsNotExist(err) {
		t.Fatalf("legacy pages/ directory survived the import: %v", err)
	}
	if _, err := os.Stat(pfPath); err != nil {
		t.Fatalf("pagefile missing after import: %v", err)
	}
}
