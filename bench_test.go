package aether_test

// One benchmark per figure of the paper's evaluation (there are no
// numbered tables; every experiment is a figure). Each benchmark runs
// the corresponding experiment from internal/bench and logs the series
// the paper plots. Run with:
//
//	go test -bench=Fig -benchtime=1x            # quick sweeps
//	go test -bench=Fig -benchtime=1x -tags=...  # see EXPERIMENTS.md for full runs
//	AETHER_BENCH_FULL=1 go test -bench=Fig -benchtime=1x -timeout 2h
//
// The BenchmarkLogInsert* family are conventional b.N benchmarks of the
// log-buffer variants (throughput in MB/s via b.SetBytes).

import (
	"os"
	"testing"

	"aether"
	"aether/internal/bench"
	"aether/internal/logbuf"
	"aether/internal/logrec"
)

// benchScale selects quick sweeps unless AETHER_BENCH_FULL is set.
func benchScale() bench.Scale {
	return bench.Scale{Quick: os.Getenv("AETHER_BENCH_FULL") == ""}
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Figure(name, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkFig2_Breakdown regenerates Figure 2: the machine-utilization
// breakdown of TPC-B as ELR and flush pipelining remove log bottlenecks.
func BenchmarkFig2_Breakdown(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig3_ELR regenerates Figure 3: ELR speedup vs access skew
// and log-device latency.
func BenchmarkFig3_ELR(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFig4_Scheduler regenerates Figure 4: context-switch rate and
// utilization vs client count, baseline vs flush pipelining.
func BenchmarkFig4_Scheduler(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig5_TPCB regenerates Figure 5: TPC-B throughput vs clients
// for baseline, async commit and flush pipelining.
func BenchmarkFig5_TPCB(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig7_LogContention regenerates Figure 7: the growing
// log-buffer contention share under TATP UpdateLocation.
func BenchmarkFig7_LogContention(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8_ThreadScaling regenerates Figure 8 (left): insert
// throughput vs thread count per buffer variant.
func BenchmarkFig8_ThreadScaling(b *testing.B) { runFigure(b, "fig8left") }

// BenchmarkFig8_RecordSize regenerates Figure 8 (right): bandwidth vs
// record size per variant, including the "CD in L1" series.
func BenchmarkFig8_RecordSize(b *testing.B) { runFigure(b, "fig8right") }

// BenchmarkFig9_Aether regenerates Figure 9: end-to-end TATP
// UpdateLocation throughput as Aether's components stack up.
func BenchmarkFig9_Aether(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig11_Skew regenerates Figure 11: CD vs CDME under bimodal
// record sizes.
func BenchmarkFig11_Skew(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkFig12_Slots regenerates Figure 12: consolidation-array slot
// count sensitivity.
func BenchmarkFig12_Slots(b *testing.B) { runFigure(b, "fig12") }

// BenchmarkFig13_DistLog regenerates Figure 13: inter-log dependency
// density of an 8-way split TPC-C log.
func BenchmarkFig13_DistLog(b *testing.B) { runFigure(b, "fig13") }

// benchmarkInsert is the conventional-benchmark form of the log-insert
// microbenchmark: every parallel worker inserts b.N/P records.
func benchmarkInsert(b *testing.B, variant logbuf.Variant, recordSize int) {
	buf, err := logbuf.New(logbuf.Config{Variant: variant, Size: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	// Null drain.
	stop := make(chan struct{})
	go func() {
		rd := buf.Reader()
		for {
			s, e := rd.Pending()
			if s != e {
				rd.MarkFlushed(e)
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	defer close(stop)

	rec, err := logrec.NewPad(recordSize).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(recordSize))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ins := buf.NewInserter()
		for pb.Next() {
			if _, err := ins.Insert(rec); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkLogInsert_Baseline_120B(b *testing.B) {
	benchmarkInsert(b, logbuf.VariantBaseline, 120)
}
func BenchmarkLogInsert_C_120B(b *testing.B)    { benchmarkInsert(b, logbuf.VariantC, 120) }
func BenchmarkLogInsert_D_120B(b *testing.B)    { benchmarkInsert(b, logbuf.VariantD, 120) }
func BenchmarkLogInsert_CD_120B(b *testing.B)   { benchmarkInsert(b, logbuf.VariantCD, 120) }
func BenchmarkLogInsert_CDME_120B(b *testing.B) { benchmarkInsert(b, logbuf.VariantCDME, 120) }
func BenchmarkLogInsert_CD_1200B(b *testing.B)  { benchmarkInsert(b, logbuf.VariantCD, 1200) }
func BenchmarkLogInsert_CD_12KB(b *testing.B)   { benchmarkInsert(b, logbuf.VariantCD, 12000) }

// BenchmarkCommitPath measures end-to-end commit latency through the
// public API for each commit protocol.
func BenchmarkCommitPath(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode aether.CommitMode
	}{
		{"sync", aether.CommitSync},
		{"sync-elr", aether.CommitSyncELR},
		{"async", aether.CommitAsync},
		{"pipelined", aether.CommitPipelined},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db, err := aether.Open(aether.Options{Mode: tc.mode})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl, _ := db.CreateTable("t")
			s := db.Session()
			defer s.Close()
			seed := s.Begin()
			if err := seed.Insert(tbl, 1, aether.Row(1, []byte("benchmark-row"))); err != nil {
				b.Fatal(err)
			}
			if err := seed.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := s.Begin()
				if err := tx.Update(tbl, 1, func(r []byte) ([]byte, error) {
					return r, nil
				}); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationELR shows flush pipelining's dependence on early
// lock release (§6.4): pipelined commits that hold locks until the
// flush throttle hot-row workloads.
func BenchmarkAblationELR(b *testing.B) { runFigure(b, "ablation-elr") }

// BenchmarkAblationGroupCommit sweeps the group-commit flush interval.
func BenchmarkAblationGroupCommit(b *testing.B) { runFigure(b, "ablation-groupcommit") }
