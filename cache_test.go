package aether

import (
	"path/filepath"
	"testing"
)

// wideRow pads a row so ~5 fit per 8KiB page: modest key counts span
// many pages and a small CachePages budget is real memory pressure.
func wideRow(k, v uint64) []byte {
	return Row(k, append(make([]byte, 1500), byte(v)))
}

// TestLargerThanMemoryWorkload is the PR's acceptance scenario: with
// CachePages far below the working set, a workload whose data exceeds
// the cache budget completes correctly while residency never exceeds the
// budget and the paging counters move; a crash afterwards recovers the
// exact committed state.
func TestLargerThanMemoryWorkload(t *testing.T) {
	const budget = 8
	db, err := Open(Options{CachePages: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	s := db.Session()
	defer s.Close()
	const keys = 200 // ≈ 40 pages: 5× the budget
	model := make(map[uint64]uint64, keys)
	for k := uint64(1); k <= keys; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, wideRow(k, k%251)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
		model[k] = k % 251
		if r := db.Stats().CacheResident; r > budget {
			t.Fatalf("resident %d exceeds budget %d", r, budget)
		}
	}
	// Update a stripe (faults evicted pages back in).
	for k := uint64(1); k <= keys; k += 5 {
		k := k
		tx := s.Begin()
		err := tx.Update(tbl, k, func([]byte) ([]byte, error) {
			return wideRow(k, 7), nil
		})
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		model[k] = 7
	}

	st := db.Stats()
	if st.PageMisses == 0 || st.PageEvictions == 0 || st.StealWrites == 0 {
		t.Fatalf("paging counters flat under pressure: %+v", st)
	}
	if st.CacheResident > budget {
		t.Fatalf("resident %d exceeds budget %d", st.CacheResident, budget)
	}

	verify := func() {
		tx := s.Begin()
		for k := uint64(1); k <= keys; k++ {
			got, err := tx.Read(tbl, k)
			if err != nil {
				t.Fatalf("key %d: %v", k, err)
			}
			if v := got[len(got)-1]; uint64(v) != model[k] {
				t.Fatalf("key %d: value %d, want %d", k, v, model[k])
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	verify()

	// Crash + recover under the same budget: exact committed state, and
	// recovery itself stayed within bounds (lazy fault-in, no eager
	// archive load).
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	tbl, err = db.LookupTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s = db.Session()
	verify()
	if r := db.Stats().CacheResident; r > budget {
		t.Fatalf("post-recovery resident %d exceeds budget %d", r, budget)
	}
}

// TestLargerThanMemoryFileBacked drives the steal path through the real
// pagefile: dirty pages evicted under pressure land in pagefile slots
// via the double-write journal, and a reopen (fresh process state) faults
// them back CRC-verified.
func TestLargerThanMemoryFileBacked(t *testing.T) {
	dir := t.TempDir()
	const budget = 6
	open := func() *DB {
		db, err := Open(Options{LogPath: filepath.Join(dir, "wal"), CachePages: budget})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	const keys = 150
	for k := uint64(1); k <= keys; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, wideRow(k, k%97)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.StealWrites == 0 || st.CacheResident > budget {
		t.Fatalf("file-backed paging counters: %+v", st)
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s2 := db2.Session()
	defer s2.Close()
	tx := s2.Begin()
	for k := uint64(1); k <= keys; k++ {
		got, err := tx.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d lost across reopen: %v", k, err)
		}
		if v := got[len(got)-1]; uint64(v) != k%97 {
			t.Fatalf("key %d: value %d, want %d", k, v, k%97)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if r := db2.Stats().CacheResident; r > budget {
		t.Fatalf("post-reopen resident %d exceeds budget %d", r, budget)
	}
}

// TestCacheBytesOption: the byte-denominated budget rounds down to whole
// pages and behaves like CachePages.
func TestCacheBytesOption(t *testing.T) {
	db, err := Open(Options{CacheBytes: 6 * 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	for k := uint64(1); k <= 120; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, wideRow(k, k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.CacheResident > 6 {
		t.Fatalf("resident %d pages with a 6-page byte budget", st.CacheResident)
	}
	if st.PageEvictions == 0 {
		t.Fatal("no evictions under a byte-denominated budget")
	}
}

// TestUnsetCacheStaysResident: without the option nothing pages out —
// today's fully resident behavior is preserved bit for bit.
func TestUnsetCacheStaysResident(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	for k := uint64(1); k <= 150; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, wideRow(k, k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.PageEvictions != 0 || st.StealWrites != 0 {
		t.Fatalf("unbounded store paged out: %+v", st)
	}
	if st.CacheResident == 0 {
		t.Fatal("resident counter not tracking the unbounded store")
	}
}
