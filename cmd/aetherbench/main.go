// Command aetherbench runs the paper-reproduction experiments: one per
// figure of the evaluation section.
//
// Usage:
//
//	aetherbench -fig fig3            # one figure, full scale
//	aetherbench -fig fig8left -quick # one figure, fast parameters
//	aetherbench -all                 # everything, in paper order
//	aetherbench -list                # list experiment names
//	aetherbench -json                # machine-readable perf report → BENCH_pr4.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aether"
	"aether/internal/bench"
	"aether/internal/metrics"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to run (fig2, fig3, fig4, fig5, fig7, fig8left, fig8right, fig9, fig11, fig12, fig13)")
		all     = flag.Bool("all", false, "run every figure")
		quick   = flag.Bool("quick", false, "use fast, test-scale parameters")
		list    = flag.Bool("list", false, "list experiment names and exit")
		jsonOut = flag.Bool("json", false, "run the perf-tracking suite and write machine-readable results")
		outPath = flag.String("out", "BENCH_pr4.json", "output file for -json")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.FigureNames {
			fmt.Println(name)
		}
		return
	}
	scale := bench.Scale{Quick: *quick}
	switch {
	case *jsonOut:
		if err := writeJSONReport(*outPath, scale); err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
	case *all:
		start := time.Now()
		tables, err := bench.AllFigures(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))
	case *fig != "":
		t, err := bench.Figure(*fig, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		fmt.Println(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// perfReport is the machine-readable result file tracking the perf
// trajectory across PRs: commit throughput on a file-backed database
// with the background checkpointer running, the checkpoint-sweep
// microbenchmark (batched pagefile vs per-page archive), and the
// larger-than-memory scenario (bounded buffer pool vs fully resident).
type perfReport struct {
	GeneratedAt string  `json:"generated_at"`
	Quick       bool    `json:"quick"`
	Throughput  tputRun `json:"throughput"`
	Sweep       struct {
		bench.SweepResult
		Speedup float64 `json:"speedup"`
	} `json:"sweep"`
	Cache bench.CacheResult `json:"cache"`
}

// tputRun reports the sustained-commit workload.
type tputRun struct {
	Clients         int                       `json:"clients"`
	Commits         int64                     `json:"commits"`
	ElapsedMs       int64                     `json:"elapsed_ms"`
	TPS             float64                   `json:"tps"`
	AutoCheckpoints int64                     `json:"auto_checkpoints"`
	SweepPages      int64                     `json:"sweep_pages"`
	SweepFsyncs     int64                     `json:"sweep_fsyncs"`
	SweepDuration   metrics.HistogramSnapshot `json:"sweep_duration"`
	LogBase         int64                     `json:"log_base"`
}

// runThroughput hammers a file-backed segmented database with inserts
// while the background incremental checkpointer bounds the log.
func runThroughput(dir string, dur time.Duration, clients int, segSize int64) (tputRun, error) {
	db, err := aether.Open(aether.Options{
		LogPath:              filepath.Join(dir, "wal.d"),
		SegmentSize:          segSize,
		CheckpointEveryBytes: 2 * segSize,
	})
	if err != nil {
		return tputRun{}, err
	}
	defer db.Close()
	tbl, err := db.CreateTable("bench")
	if err != nil {
		return tputRun{}, err
	}
	payload := make([]byte, 128)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			// +1: row key 0 aliases the table lock (never insert it).
			for k := uint64(c)<<40 + 1; time.Since(start) < dur; k++ {
				tx := s.Begin()
				if err := tx.Insert(tbl, k, aether.Row(k, payload)); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := db.Stats()
	return tputRun{
		Clients:         clients,
		Commits:         st.Commits,
		ElapsedMs:       elapsed.Milliseconds(),
		TPS:             float64(st.Commits) / elapsed.Seconds(),
		AutoCheckpoints: st.AutoCheckpoints,
		SweepPages:      st.SweepPages,
		SweepFsyncs:     st.SweepFsyncs,
		SweepDuration:   st.SweepDuration,
		LogBase:         st.LogBase,
	}, nil
}

func writeJSONReport(outPath string, scale bench.Scale) error {
	dir, err := os.MkdirTemp("", "aetherbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	dur, clients, pages, segSize := 2*time.Second, 8, 1000, int64(1<<20)
	if scale.Quick {
		dur, clients, pages, segSize = 300*time.Millisecond, 4, 200, 32<<10
	}
	var rep perfReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Quick = scale.Quick
	rep.Throughput, err = runThroughput(dir, dur, clients, segSize)
	if err != nil {
		return fmt.Errorf("throughput run: %w", err)
	}
	sweep, err := bench.RunSweep(bench.SweepConfig{
		Pages:       pages,
		Dir:         dir,
		SyncLatency: 100 * time.Microsecond, // flash-class device
	})
	if err != nil {
		return fmt.Errorf("sweep run: %w", err)
	}
	rep.Sweep.SweepResult = sweep
	rep.Sweep.Speedup = sweep.Speedup()

	cacheRows, cachePages := 4000, 24
	if scale.Quick {
		cacheRows, cachePages = 800, 12
	}
	rep.Cache, err = bench.RunCache(bench.CacheConfig{
		Dir:        dir,
		Rows:       cacheRows,
		CachePages: cachePages,
	})
	if err != nil {
		return fmt.Errorf("cache run: %w", err)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("throughput: %.0f commits/s (%d clients, %d auto checkpoints, log base %d)\n",
		rep.Throughput.TPS, rep.Throughput.Clients, rep.Throughput.AutoCheckpoints, rep.Throughput.LogBase)
	fmt.Println(sweep)
	fmt.Println(rep.Cache)
	fmt.Println("wrote", outPath)
	return nil
}
