// Command aetherbench runs the paper-reproduction experiments: one per
// figure of the evaluation section.
//
// Usage:
//
//	aetherbench -fig fig3            # one figure, full scale
//	aetherbench -fig fig8left -quick # one figure, fast parameters
//	aetherbench -all                 # everything, in paper order
//	aetherbench -list                # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aether/internal/bench"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to run (fig2, fig3, fig4, fig5, fig7, fig8left, fig8right, fig9, fig11, fig12, fig13)")
		all   = flag.Bool("all", false, "run every figure")
		quick = flag.Bool("quick", false, "use fast, test-scale parameters")
		list  = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.FigureNames {
			fmt.Println(name)
		}
		return
	}
	scale := bench.Scale{Quick: *quick}
	switch {
	case *all:
		start := time.Now()
		tables, err := bench.AllFigures(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))
	case *fig != "":
		t, err := bench.Figure(*fig, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		fmt.Println(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
