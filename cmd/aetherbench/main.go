// Command aetherbench runs the paper-reproduction experiments: one per
// figure of the evaluation section.
//
// Usage:
//
//	aetherbench -fig fig3            # one figure, full scale
//	aetherbench -fig fig8left -quick # one figure, fast parameters
//	aetherbench -all                 # everything, in paper order
//	aetherbench -json                # machine-readable perf report → BENCH_pr10.json
//	aetherbench -json -baseline BENCH_pr10.json  # …and diff key counters vs the committed baseline
//	aetherbench -net                 # network path only: aetherd wire server vs client processes
//	aetherbench -list                # list experiment names
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aether"
	"aether/internal/bench"
	"aether/internal/fsutil"
	"aether/internal/metrics"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to run (fig2, fig3, fig4, fig5, fig7, fig8left, fig8right, fig9, fig11, fig12, fig13)")
		all      = flag.Bool("all", false, "run every figure")
		quick    = flag.Bool("quick", false, "use fast, test-scale parameters")
		list     = flag.Bool("list", false, "list experiment names and exit")
		jsonOut  = flag.Bool("json", false, "run the perf-tracking suite and write machine-readable results")
		netOnly  = flag.Bool("net", false, "run only the network-path suite (wire server vs external client processes) and print the results")
		outPath  = flag.String("out", "BENCH_pr10.json", "output file for -json")
		baseline = flag.String("baseline", "", "existing report to diff demand-steal counts against (regression check, used by make bench-smoke)")

		// Hidden child mode: -net re-executes this binary with these flags
		// to drive load from a genuinely separate process.
		netClient      = flag.Bool("net-client", false, "internal: run as a network load client and print a JSON result")
		netAddr        = flag.String("net-addr", "", "internal: server address for -net-client")
		netWorkload    = flag.String("net-workload", "tatp", "internal: workload for -net-client")
		netSessions    = flag.Int("net-sessions", 8, "internal: connections for -net-client")
		netDuration    = flag.Duration("net-duration", time.Second, "internal: run length for -net-client")
		netSeed        = flag.Int64("net-seed", 1, "internal: RNG seed / process tag for -net-client")
		netPipeline    = flag.Int("net-pipeline", 16, "internal: in-flight commits per session for -net-client")
		netSubscribers = flag.Int("net-subscribers", 10000, "internal: TATP scale for -net-client")
		netBranches    = flag.Int("net-branches", 10, "internal: TPC-B branches for -net-client")
		netAccounts    = flag.Int("net-accounts", 1000, "internal: TPC-B accounts per branch for -net-client")
	)
	flag.Parse()

	if *netClient {
		if err := runNetClient(*netAddr, *netWorkload, *netSessions, *netDuration, *netSeed, *netPipeline, *netSubscribers, *netBranches, *netAccounts); err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench net client:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, name := range bench.FigureNames {
			fmt.Println(name)
		}
		return
	}
	scale := bench.Scale{Quick: *quick}
	switch {
	case *netOnly:
		runs, err := runNetBench(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		for _, r := range runs {
			fmt.Println(r)
		}
	case *jsonOut:
		if err := writeJSONReport(*outPath, *baseline, scale); err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
	case *all:
		start := time.Now()
		tables, err := bench.AllFigures(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))
	case *fig != "":
		t, err := bench.Figure(*fig, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aetherbench:", err)
			os.Exit(1)
		}
		fmt.Println(t)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// perfReport is the machine-readable result file tracking the perf
// trajectory across PRs: commit throughput on a file-backed database
// with the background checkpointer running, the checkpoint-sweep
// microbenchmark (batched pagefile vs per-page archive), and the
// larger-than-memory scenario (bounded buffer pool vs fully resident).
type perfReport struct {
	GeneratedAt string  `json:"generated_at"`
	Quick       bool    `json:"quick"`
	Throughput  tputRun `json:"throughput"`
	Sweep       struct {
		bench.SweepResult
		Speedup float64 `json:"speedup"`
	} `json:"sweep"`
	Cache   bench.CacheResult   `json:"cache"`
	Cleaner bench.CleanerResult `json:"cleaner"`
	Scan    struct {
		bench.ScanResult
		Speedup float64 `json:"speedup"`
	} `json:"scan"`
	Partition bench.PartitionResult `json:"partition"`
	Restore   struct {
		bench.RestoreResult
		Speedup float64 `json:"speedup"`
	} `json:"restore"`
	Net []netRun `json:"net"`
}

// tputRun reports the sustained-commit workload.
type tputRun struct {
	Clients         int                       `json:"clients"`
	Commits         int64                     `json:"commits"`
	ElapsedMs       int64                     `json:"elapsed_ms"`
	TPS             float64                   `json:"tps"`
	AutoCheckpoints int64                     `json:"auto_checkpoints"`
	SweepPages      int64                     `json:"sweep_pages"`
	SweepFsyncs     int64                     `json:"sweep_fsyncs"`
	SweepDuration   metrics.HistogramSnapshot `json:"sweep_duration"`
	LogBase         int64                     `json:"log_base"`
}

// runThroughput hammers a file-backed segmented database with inserts
// while the background incremental checkpointer bounds the log.
func runThroughput(dir string, dur time.Duration, clients int, segSize int64) (tputRun, error) {
	db, err := aether.Open(aether.Options{
		LogPath:              filepath.Join(dir, "wal.d"),
		SegmentSize:          segSize,
		CheckpointEveryBytes: 2 * segSize,
	})
	if err != nil {
		return tputRun{}, err
	}
	defer db.Close()
	tbl, err := db.CreateTable("bench")
	if err != nil {
		return tputRun{}, err
	}
	payload := make([]byte, 128)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			// +1: row key 0 aliases the table lock (never insert it).
			for k := uint64(c)<<40 + 1; time.Since(start) < dur; k++ {
				tx := s.Begin()
				if err := tx.Insert(tbl, k, aether.Row(k, payload)); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := db.Stats()
	return tputRun{
		Clients:         clients,
		Commits:         st.Commits,
		ElapsedMs:       elapsed.Milliseconds(),
		TPS:             float64(st.Commits) / elapsed.Seconds(),
		AutoCheckpoints: st.AutoCheckpoints,
		SweepPages:      st.SweepPages,
		SweepFsyncs:     st.SweepFsyncs,
		SweepDuration:   st.SweepDuration,
		LogBase:         st.LogBase,
	}, nil
}

func writeJSONReport(outPath, baselinePath string, scale bench.Scale) error {
	dir, err := os.MkdirTemp("", "aetherbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	dur, clients, pages, segSize := 2*time.Second, 8, 1000, int64(1<<20)
	if scale.Quick {
		dur, clients, pages, segSize = 300*time.Millisecond, 4, 200, 32<<10
	}
	var rep perfReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Quick = scale.Quick
	rep.Throughput, err = runThroughput(dir, dur, clients, segSize)
	if err != nil {
		return fmt.Errorf("throughput run: %w", err)
	}
	sweep, err := bench.RunSweep(bench.SweepConfig{
		Pages:       pages,
		Dir:         dir,
		SyncLatency: 100 * time.Microsecond, // flash-class device
	})
	if err != nil {
		return fmt.Errorf("sweep run: %w", err)
	}
	rep.Sweep.SweepResult = sweep
	rep.Sweep.Speedup = sweep.Speedup()

	cacheRows, cachePages := 4000, 24
	if scale.Quick {
		cacheRows, cachePages = 800, 12
	}
	rep.Cache, err = bench.RunCache(bench.CacheConfig{
		Dir:        dir,
		Rows:       cacheRows,
		CachePages: cachePages,
	})
	if err != nil {
		return fmt.Errorf("cache run: %w", err)
	}

	cleanerRows, cleanerUpdates := 2000, 4000
	if scale.Quick {
		cleanerRows, cleanerUpdates = 600, 1200
	}
	rep.Cleaner, err = bench.RunCleaner(bench.CleanerConfig{
		Dir:        dir,
		Rows:       cleanerRows,
		CachePages: cachePages,
		Updates:    cleanerUpdates,
	})
	if err != nil {
		return fmt.Errorf("cleaner run: %w", err)
	}

	scanPages := 512
	if scale.Quick {
		scanPages = 192
	}
	scan, err := bench.RunScan(bench.ScanConfig{
		Dir:           dir,
		Pages:         scanPages,
		CachePages:    scanPages / 8,
		PrefetchDepth: 16,
		ReadDelay:     200 * time.Microsecond, // between flash and disk
	})
	if err != nil {
		return fmt.Errorf("scan run: %w", err)
	}
	rep.Scan.ScanResult = scan
	rep.Scan.Speedup = scan.Speedup()
	// The hit-rate floor: a sequential cold scan whose read-ahead serves
	// under 30% of its accesses means the pipeline broke (window never
	// opened, frames stolen back, or installs losing every race) — fail
	// CI on it even if throughput happens to look fine.
	if scan.HitRate < 0.3 {
		return fmt.Errorf("scan run: prefetch hit rate %.2f below the 0.30 floor (%v)", scan.HitRate, scan)
	}

	partDur := 500 * time.Millisecond
	if scale.Quick {
		partDur = 250 * time.Millisecond
	}
	rep.Partition, err = bench.RunPartitions(bench.PartitionConfig{Duration: partDur})
	if err != nil {
		return fmt.Errorf("partition run: %w", err)
	}
	// The scaling floor and stall ceiling: four logs over four simulated
	// bandwidth-limited devices must commit at least 1.5× the bytes/s of
	// one log on one such device, and the dependency limiter must clamp
	// well under a quarter of flush passes — partitioning that merely
	// re-serializes behind cross-log waits fails CI even though every
	// run is correct.
	if rep.Partition.Speedup < 1.5 {
		return fmt.Errorf("partition run: committed-bytes/s speedup %.2fx below the 1.5x floor (%v)",
			rep.Partition.Speedup, rep.Partition)
	}
	if sr := rep.Partition.Multi.StallRate; sr > 0.25 {
		return fmt.Errorf("partition run: dependency-stall rate %.3f above the 0.25 ceiling (%v)",
			sr, rep.Partition)
	}

	restoreCfg := bench.RestoreConfig{
		Batches:            24,
		TxnsPerBatch:       25,
		ValueBytes:         192,
		SegmentSize:        16 << 10,
		SnapshotEveryBytes: 32 << 10,
		CompactSegments:    4,
		Iters:              3,
	}
	if scale.Quick {
		restoreCfg.Batches, restoreCfg.TxnsPerBatch, restoreCfg.ValueBytes = 16, 20, 128
		restoreCfg.SegmentSize, restoreCfg.SnapshotEveryBytes = 8<<10, 16<<10
		restoreCfg.Iters = 2
	}
	restore, err := bench.RunRestore(restoreCfg)
	if err != nil {
		return fmt.Errorf("restore run: %w", err)
	}
	rep.Restore.RestoreResult = restore
	rep.Restore.Speedup = restore.Speedup()
	// The restore-latency floor: point-in-time restore through the
	// newest cloud snapshot replays only the tail past its cut, so it
	// must clearly beat a full from-genesis raw replay of the same
	// history. A ratio near 1x means snapshots stopped being cut near
	// the durable end or RestoreTo stopped using them — fail CI even
	// though both restores were byte-correct (RunRestore checks that
	// itself).
	if rep.Restore.Speedup < 1.2 {
		return fmt.Errorf("restore run: snapshot restore only %.2fx over raw replay, below the 1.2x floor (%v)",
			rep.Restore.Speedup, restore)
	}

	rep.Net, err = runNetBench(scale)
	if err != nil {
		return fmt.Errorf("net run: %w", err)
	}

	if err := diffBaseline(baselinePath, rep); err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	// Durable install: the report is CI's comparison artifact, so it
	// gets the same write+fsync+dir-sync treatment as data files.
	if err := fsutil.WriteFileSyncDir(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("throughput: %.0f commits/s (%d clients, %d auto checkpoints, log base %d)\n",
		rep.Throughput.TPS, rep.Throughput.Clients, rep.Throughput.AutoCheckpoints, rep.Throughput.LogBase)
	fmt.Println(sweep)
	fmt.Println(rep.Cache)
	fmt.Println(rep.Cleaner)
	fmt.Println(scan)
	fmt.Println(rep.Partition)
	fmt.Println(restore)
	for _, r := range rep.Net {
		fmt.Println(r)
	}
	fmt.Println("wrote", outPath)
	return nil
}

// diffBaseline compares the fresh report's key counters against a
// committed baseline report, failing on regression. Two checks: the
// cleaner scenario's demand-steal rate (the armed run stealing
// substantially more than the baseline means writebacks crept back
// onto the fault path), and the network path's throughput (a fresh
// net TPS collapsing far below the baseline means the wire path broke
// its pipelining). A missing baseline file or a baseline predating a
// section only prints a notice (first run on a branch). Counts are
// normalized so quick and full runs remain comparable.
func diffBaseline(path string, fresh perfReport) error {
	if path == "" {
		return nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("baseline: %s not found; skipping baseline diff\n", path)
		return nil
	}
	var base perfReport
	if err := json.Unmarshal(raw, &base); err != nil || base.Cleaner.Updates == 0 {
		fmt.Printf("baseline: %s has no cleaner scenario; skipping baseline diff\n", path)
		return nil
	}
	if err := diffNet(path, base.Net, fresh.Net); err != nil {
		return err
	}
	baseRate := float64(base.Cleaner.CleanedSteals) / float64(base.Cleaner.Updates)
	freshRate := float64(fresh.Cleaner.CleanedSteals) / float64(fresh.Cleaner.Updates)
	fmt.Printf("baseline: %.3f demand steals/update armed (baseline %.3f from %s)\n",
		freshRate, baseRate, path)
	// Generous slack: steal residue is scheduler-dependent noise around
	// a small mean (observed 0.07–0.16 steals/update across quick
	// runs); only a step change (cleaner stopped keeping up) should
	// fail CI. Because bench-smoke refreshes the baseline file it just
	// diffed against, this relative check alone could ratchet if
	// successively worse baselines were committed — the absolute
	// backstop is RunCleaner's own assertion, which bounds armed steals
	// against the SAME RUN's cleaner-off baseline and fails long before
	// repeated 2.5x creep could compound.
	if freshRate > 2.5*baseRate+0.1 {
		return fmt.Errorf("demand-steal regression: %.3f steals/update armed vs %.3f in baseline %s",
			freshRate, baseRate, path)
	}
	return nil
}

// diffNet applies the network-TPS floor per workload: a fresh run
// below 20% of the baseline's throughput is a collapse, not noise.
// The generous factor absorbs machine and scheduler variance (loopback
// TPS swings with core count); a broken pipeline — commits serialized
// per flush, or sessions stalling on lost acks — drops throughput by
// far more than 5x. A baseline without a matching net section (older
// report shape) only prints a notice.
func diffNet(path string, base, fresh []netRun) error {
	baseByWL := make(map[string]netRun, len(base))
	for _, r := range base {
		baseByWL[r.Workload] = r
	}
	for _, f := range fresh {
		b, ok := baseByWL[f.Workload]
		if !ok || b.TPS <= 0 {
			fmt.Printf("baseline: %s has no net %s run; skipping net diff\n", path, f.Workload)
			continue
		}
		fmt.Printf("baseline: net %s %.0f tps (baseline %.0f from %s)\n", f.Workload, f.TPS, b.TPS, path)
		if f.TPS < 0.2*b.TPS {
			return fmt.Errorf("network throughput collapse: net %s %.0f tps vs %.0f in baseline %s",
				f.Workload, f.TPS, b.TPS, path)
		}
	}
	return nil
}
