package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"aether"
	"aether/internal/bench"
	"aether/internal/wire"
	"aether/internal/workload"
)

// netRun is one workload's network-path measurement: external client
// processes driving a wire server over loopback.
type netRun struct {
	Workload   string  `json:"workload"`
	Procs      int     `json:"procs"`
	Conns      int     `json:"conns"`
	Completed  int64   `json:"completed"`
	Aborted    int64   `json:"aborted"`
	AckErrors  int64   `json:"ack_errors"`
	ElapsedMs  int64   `json:"elapsed_ms"`
	TPS        float64 `json:"tps"`
	Commits    int64   `json:"commits"`
	LogFlushes int64   `json:"log_flushes"`
	FlushRatio float64 `json:"flush_ratio"`
}

func (r netRun) String() string {
	return fmt.Sprintf("net %-4s: %8.0f tps over %d conns x %d procs (completed %d, aborted %d, ack errors %d, %.2f flushes/commit)",
		r.Workload, r.TPS, r.Conns, r.Procs, r.Completed, r.Aborted, r.AckErrors, r.FlushRatio)
}

// netScale holds the network suite's size knobs.
type netScale struct {
	procs       int
	sessions    int // per process; procs*sessions = total connections
	duration    time.Duration
	pipeline    int
	subscribers int
	branches    int
	accounts    int
}

func netScaleFor(scale bench.Scale) netScale {
	s := netScale{
		procs:       2,
		sessions:    8, // 16 connections total, the acceptance floor
		duration:    3 * time.Second,
		pipeline:    16,
		subscribers: 10000,
		branches:    10,
		accounts:    1000,
	}
	if scale.Quick {
		s.duration = time.Second
		s.subscribers = 2000
		s.accounts = 200
	}
	return s
}

// runNetBench measures the network path: a wire server over a
// file-backed database in this process, driven by external client
// processes (this binary re-executed in -net-client mode) over
// loopback. One netRun per workload.
func runNetBench(scale bench.Scale) ([]netRun, error) {
	ns := netScaleFor(scale)
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate own binary: %w", err)
	}
	var runs []netRun
	for _, wl := range []string{"tatp", "tpcb"} {
		// The consolidation gate is timing-sensitive: on a starved box
		// commits trickle in one per flush and the ratio degrades for
		// scheduling reasons, not protocol ones. A real pipelining break
		// is systematic, so it fails every attempt; transient load gets
		// two retries before the suite fails.
		var run netRun
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				fmt.Printf("net %s: retrying after transient failure: %v\n", wl, err)
			}
			run, err = runNetWorkload(self, wl, ns)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("net %s: %w", wl, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func runNetWorkload(self, wl string, ns netScale) (netRun, error) {
	dir, err := os.MkdirTemp("", "aethernet")
	if err != nil {
		return netRun{}, err
	}
	defer os.RemoveAll(dir)
	db, err := aether.Open(aether.Options{
		LogPath:              filepath.Join(dir, "wal.d"),
		SegmentSize:          1 << 20,
		CheckpointEveryBytes: 2 << 20,
		Mode:                 aether.CommitPipelined,
	})
	if err != nil {
		return netRun{}, err
	}
	defer db.Close()

	switch wl {
	case "tatp":
		err = (&workload.NetTATP{Subscribers: ns.subscribers}).Setup(db)
	case "tpcb":
		err = (&workload.NetTPCB{Branches: ns.branches, AccountsPerBranch: ns.accounts}).Setup(db)
	default:
		err = fmt.Errorf("unknown workload %q", wl)
	}
	if err != nil {
		return netRun{}, fmt.Errorf("setup: %w", err)
	}

	srv := wire.NewServer(db, wire.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return netRun{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	addr := ln.Addr().String()

	// The setup's commits and flushes are excluded: the ratio reflects
	// only the measured run.
	before := db.Stats()

	type childOut struct {
		res workload.NetResult
		err error
	}
	outs := make(chan childOut, ns.procs)
	for p := 0; p < ns.procs; p++ {
		go func(p int) {
			cmd := exec.Command(self,
				"-net-client",
				"-net-addr", addr,
				"-net-workload", wl,
				"-net-sessions", fmt.Sprint(ns.sessions),
				"-net-duration", ns.duration.String(),
				"-net-seed", fmt.Sprint(p+1),
				"-net-pipeline", fmt.Sprint(ns.pipeline),
				"-net-subscribers", fmt.Sprint(ns.subscribers),
				"-net-branches", fmt.Sprint(ns.branches),
				"-net-accounts", fmt.Sprint(ns.accounts),
			)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				outs <- childOut{err: fmt.Errorf("client process %d: %w", p, err)}
				return
			}
			var res workload.NetResult
			if err := json.Unmarshal(out, &res); err != nil {
				outs <- childOut{err: fmt.Errorf("client process %d output: %w (%q)", p, err, out)}
				return
			}
			outs <- childOut{res: res}
		}(p)
	}
	var total workload.NetResult
	for p := 0; p < ns.procs; p++ {
		o := <-outs
		if o.err != nil {
			return netRun{}, o.err
		}
		total.Add(o.res)
	}

	after := db.Stats()
	run := netRun{
		Workload:   wl,
		Procs:      ns.procs,
		Conns:      ns.procs * ns.sessions,
		Completed:  total.Completed,
		Aborted:    total.Aborted,
		AckErrors:  total.AckErrors,
		ElapsedMs:  total.ElapsedMs,
		TPS:        total.TPS(),
		Commits:    after.Commits - before.Commits,
		LogFlushes: after.LogFlushes - before.LogFlushes,
	}
	if run.Commits > 0 {
		run.FlushRatio = float64(run.LogFlushes) / float64(run.Commits)
	}
	// Hard acceptance checks: every ack arrived, and the consolidation
	// array absorbed pipelined commits into shared flushes.
	if run.AckErrors != 0 {
		return run, fmt.Errorf("%d commit acknowledgements lost", run.AckErrors)
	}
	if run.Completed == 0 {
		return run, fmt.Errorf("no transactions completed")
	}
	if run.FlushRatio >= 0.5 {
		return run, fmt.Errorf("no group-commit consolidation over the wire: %.2f flushes/commit (want < 0.5)", run.FlushRatio)
	}
	return run, nil
}

// runNetClient is the hidden child mode: drive load against addr and
// print a JSON workload.NetResult on stdout.
func runNetClient(addr, wl string, sessions int, dur time.Duration, seed int64, pipeline, subscribers, branches, accounts int) error {
	res, err := workload.RunNetClients(workload.NetOptions{
		Addr:              addr,
		Workload:          wl,
		Sessions:          sessions,
		Duration:          dur,
		Seed:              seed,
		Pipeline:          pipeline,
		Subscribers:       subscribers,
		Branches:          branches,
		AccountsPerBranch: accounts,
	})
	if err != nil {
		return err
	}
	out, err := json.Marshal(res)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(out, '\n'))
	return err
}
