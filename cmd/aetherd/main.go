// Command aetherd serves an aether database over TCP with the wire
// protocol (internal/wire): one goroutine plus one Session per
// connection, so concurrent commits from many clients consolidate into
// shared group-commit flushes — the paper's scalable logging measured
// over a real network path.
//
// Usage:
//
//	aetherd -db /var/lib/aether              # serve on the default address
//	aetherd -db ./data -addr 127.0.0.1:7890  # explicit address (use :0 for an ephemeral port)
//	aetherd -db ./data -mode sync            # default commit mode for transactions
//	aetherd -db ./data -segment-size 1048576 -log-partitions 4
//	                                         # shard the log across 4 devices; the
//	                                         # metrics page gains per-partition
//	                                         # flush and dependency-stall counters
//
// The -db directory holds the write-ahead log, the page archive, and a
// durable table catalog: every CreateTable appends the name to
// <db>/catalog (fsynced) so a restart re-creates the tables in their
// original order before recovery rebuilds the indexes. On startup
// aetherd prints "listening on ADDR" once it accepts connections;
// SIGINT/SIGTERM trigger a graceful drain (in-flight transactions
// finish, new connections are refused).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"aether"
	"aether/internal/fsutil"
	"aether/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7890", "TCP listen address (use :0 for an ephemeral port)")
		dbDir      = flag.String("db", "", "database directory (required): log, page archive and table catalog live here")
		segSize    = flag.Int64("segment-size", 0, "segmented-log segment size in bytes (0 = single log file)")
		logParts   = flag.Int("log-partitions", 0, "shard the log across N partitions with enforced inter-log flush dependencies (requires -segment-size; 0/1 = single log)")
		ckptEvery  = flag.Int64("checkpoint-every", 8<<20, "background checkpoint cadence in appended log bytes (0 = manual only)")
		cachePages = flag.Int("cache-pages", 0, "buffer-pool budget in pages (0 = fully memory-resident)")
		cleaner    = flag.Int("cleaner-pages", 0, "background cleaner headroom in pages (0 = off)")
		mode       = flag.String("mode", "pipelined", "default commit mode: pipelined, sync, sync-elr, async")
		readTO     = flag.Duration("read-timeout", 2*time.Minute, "per-connection idle read deadline")
		writeTO    = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline (stalled-reader guard)")
		maxFrame   = flag.Uint("max-frame", wire.DefaultMaxFrame, "request frame size ceiling in bytes")
	)
	flag.Parse()
	if err := run(*addr, *dbDir, *segSize, *ckptEvery, *logParts, *cachePages, *cleaner, *mode, *readTO, *writeTO, uint32(*maxFrame)); err != nil {
		fmt.Fprintln(os.Stderr, "aetherd:", err)
		os.Exit(1)
	}
}

func run(addr, dbDir string, segSize, ckptEvery int64, logParts, cachePages, cleaner int, mode string, readTO, writeTO time.Duration, maxFrame uint32) error {
	if dbDir == "" {
		return fmt.Errorf("-db is required")
	}
	if logParts >= 2 && segSize <= 0 {
		return fmt.Errorf("-log-partitions requires -segment-size (each partition is a segmented directory)")
	}
	commitMode, err := parseMode(mode)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dbDir, 0o755); err != nil {
		return err
	}

	logPath := filepath.Join(dbDir, "log")
	if segSize > 0 {
		// A segmented log wants a directory of its own.
		logPath = filepath.Join(dbDir, "logseg")
	}
	db, err := aether.Open(aether.Options{
		LogPath:              logPath,
		SegmentSize:          segSize,
		LogPartitions:        logParts,
		Mode:                 commitMode,
		CheckpointEveryBytes: ckptEvery,
		CachePages:           cachePages,
		CleanerPages:         cleaner,
	})
	if err != nil {
		return fmt.Errorf("open database: %w", err)
	}
	defer db.Close()
	if logParts >= 2 {
		// The metrics page (OpStats) carries the per-partition counters:
		// aether_partition_flushes_N, aether_partition_bytes_N,
		// aether_dep_stalls_N, aether_dep_edges.
		fmt.Printf("log partitioned across %d devices\n", logParts)
	}

	// Recreate the catalog's tables in their original creation order —
	// table→space assignment is positional — then rebuild the indexes
	// from whatever recovery replayed.
	catalogPath := filepath.Join(dbDir, "catalog")
	names, err := readCatalog(catalogPath)
	if err != nil {
		return fmt.Errorf("read catalog: %w", err)
	}
	for _, name := range names {
		if _, err := db.CreateTable(name); err != nil {
			return fmt.Errorf("re-create table %q: %w", name, err)
		}
	}
	if err := db.RebuildAfterRecovery(); err != nil {
		return fmt.Errorf("rebuild after recovery: %w", err)
	}

	srv := wire.NewServer(db, wire.ServerOptions{
		ReadTimeout:  readTO,
		WriteTimeout: writeTO,
		MaxFrame:     maxFrame,
		OnCreateTable: func(name string) error {
			return appendCatalog(catalogPath, name)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The kill/recovery test (and humans) parse this line for the bound
	// address, so it goes out before the first accept returns.
	fmt.Printf("listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case err := <-serveDone:
		return err
	case sig := <-sigs:
		fmt.Printf("received %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-serveDone
	}
}

func parseMode(s string) (aether.CommitMode, error) {
	switch s {
	case "pipelined":
		return aether.CommitPipelined, nil
	case "sync":
		return aether.CommitSync, nil
	case "sync-elr":
		return aether.CommitSyncELR, nil
	case "async":
		return aether.CommitAsync, nil
	}
	return 0, fmt.Errorf("unknown commit mode %q (want pipelined, sync, sync-elr or async)", s)
}

// readCatalog returns the table names recorded in the catalog file, in
// creation order. A missing catalog is an empty database.
func readCatalog(path string) ([]string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name := strings.TrimSpace(sc.Text()); name != "" {
			names = append(names, name)
		}
	}
	return names, sc.Err()
}

// appendCatalog durably appends one table name: the new line and the
// containing directory are fsynced before the create is acknowledged,
// so a table the client saw created is always re-created on restart.
func appendCatalog(path, name string) error {
	if strings.ContainsAny(name, "\r\n") {
		return fmt.Errorf("table name contains newline")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsutil.SyncDir(filepath.Dir(path))
}
