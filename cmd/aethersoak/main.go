// Command aethersoak runs the crash-storm soak harness: hundreds of
// power-cut/recover cycles against a full engine stack on a
// fault-injecting in-memory filesystem, each cycle verified against a
// model of committed transactions.
//
// Usage:
//
//	aethersoak -cycles 200 -seed 1
//	aethersoak -points group-commit,journal -cycles 50 -v
//	aethersoak -log-partitions 3 -cycles 100
//	                         # partitioned stack: adds the partition-flush
//	                         # point (cut one log's fsync, others harden)
//
// On divergence it prints the diff, the fault-fs op trace tail, and
// the seed that replays the exact fault schedule, then exits 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"aether/internal/soak"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "seed for workload and fault schedule (a failing run prints the seed to replay)")
		cycles = flag.Int("cycles", 200, "crash-recover cycles to run")
		txns   = flag.Int("txns", 40, "max transactions per cycle before a forced cut")
		keys   = flag.Int("keys", 48, "key-space size")
		points = flag.String("points", "", "comma-separated fault points to arm (default all: "+pointList()+")")
		parts  = flag.Int("log-partitions", 0, "run against a partitioned log with N devices (adds the partition-flush fault point; 0/1 = single log)")
		verb   = flag.Bool("v", false, "log each cycle")
	)
	flag.Parse()

	cfg := soak.Config{
		Seed:          *seed,
		Cycles:        *cycles,
		TxnsPerCycle:  *txns,
		Keys:          *keys,
		LogPartitions: *parts,
	}
	if *points != "" {
		for _, p := range strings.Split(*points, ",") {
			fp, err := parsePoint(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Points = append(cfg.Points, fp)
		}
	}
	if *verb {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	res, err := soak.Run(cfg)
	if err != nil {
		var d *soak.Divergence
		if errors.As(err, &d) {
			fmt.Fprintln(os.Stderr, d.Error())
			fmt.Fprintln(os.Stderr, "fault-fs trace tail:")
			for _, e := range d.Trace {
				fmt.Fprintf(os.Stderr, "  %s\n", e.String())
			}
		} else {
			fmt.Fprintln(os.Stderr, "soak:", err)
		}
		os.Exit(1)
	}

	fmt.Printf("soak PASS: %d cycles, %d commits, %d in-doubt (%d survived)\n",
		res.Cycles, res.Commits, res.InDoubt, res.InDoubtSurvived)
	fmt.Printf("  torn-tail bytes repaired: %d; journal replays: %d\n",
		res.TornTailRepaired, res.JournalReplays)
	fmt.Printf("  cuts by fault point:\n")
	for _, p := range knownPoints() {
		if n := res.Cuts[string(p)]; n > 0 {
			fmt.Printf("    %-14s %d\n", p, n)
		}
	}
	if n := res.Cuts["forced"]; n > 0 {
		fmt.Printf("    %-14s %d (armed trigger never fired; cut at workload end)\n", "forced", n)
	}
}

// knownPoints is every armable fault point: the default profile plus
// the opt-in ones (remote-archive reshapes the stack, so it only runs
// when asked for explicitly).
func knownPoints() []soak.FaultPoint {
	return append(soak.AllPartitionFaultPoints[:len(soak.AllPartitionFaultPoints):len(soak.AllPartitionFaultPoints)],
		soak.OptInFaultPoints...)
}

func parsePoint(s string) (soak.FaultPoint, error) {
	for _, p := range knownPoints() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown fault point %q (valid: %s)", s, pointList())
}

func pointList() string {
	var names []string
	for _, p := range knownPoints() {
		names = append(names, string(p))
	}
	return strings.Join(names, ",")
}
