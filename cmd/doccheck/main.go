// Command doccheck fails the build when exported identifiers lack doc
// comments. It is the `make docs` lint: the packages it is pointed at
// promise godoc coverage for every exported type, function, method,
// const/var group, and exported struct field.
//
// Usage:
//
//	doccheck ./internal/logdev ./internal/storage
//
// Exit status is non-zero if any exported identifier is undocumented;
// each offender is printed as file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				bad += checkFile(fset, f)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

func report(fset *token.FileSet, pos token.Pos, what string) {
	p := fset.Position(pos)
	fmt.Printf("%s:%d: %s\n", p.Filename, p.Line, what)
}

// checkFile reports every undocumented exported declaration in f.
func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(fset, d.Pos(), "func "+funcName(d))
				bad++
			}
		case *ast.GenDecl:
			bad += checkGenDecl(fset, d)
		}
	}
	return bad
}

// funcName renders Recv.Name or Name for error messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl handles const/var/type declarations. A doc comment on
// the grouped declaration covers its members; otherwise each exported
// member needs its own. Exported fields of exported structs need
// comments too (a blanket type comment does not excuse opaque fields).
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) int {
	bad := 0
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(fset, s.Pos(), "type "+s.Name.Name)
				bad++
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if name.IsExported() && fld.Doc == nil && fld.Comment == nil {
							report(fset, name.Pos(), "field "+s.Name.Name+"."+name.Name)
							bad++
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(fset, name.Pos(), "const/var "+name.Name)
					bad++
				}
			}
		}
	}
	return bad
}
