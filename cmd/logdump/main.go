// Command logdump decodes a write-ahead log and prints its records —
// the debugging companion every WAL implementation needs. It stops at
// the first gap, exactly where recovery would. Pointed at a directory,
// it decodes a segmented log and prints the segment layout and base
// offset first, plus a summary of the paged database file if one lives
// next to the log. Pointed at a pagefile itself, it dumps the slot
// table.
//
// Cold-storage awareness: a segmented log whose dead segments were
// archived (aether.Options.ArchiveDir) keeps only the hot tail on the
// device. logdump lists the archived segments and, when the archive is
// reachable, stitches the archived history below the truncation base
// to the live tail so the dump covers the full log from offset 0 —
// including segments already recycled from the hot directory. The
// archive is auto-detected at <dir>/archive (the conventional
// location) or named explicitly with -archive.
//
// Usage:
//
// Pointed at a partitioned database root (Options.LogPartitions >= 2 —
// recognized by its p0/ directory), it prints each partition's segment
// layout and then every partition's records merged into one stream
// ordered by global sequence stamp: the exact order recovery replays.
//
// Usage:
//
//	logdump -f wal.log              # every record
//	logdump -f wal.d                # segmented log directory (+ archive, if present)
//	logdump -f wal.d -archive cold  # segmented log with an explicit cold store
//	logdump -f multi.d              # partitioned root: per-partition layout + merged seq view
//	logdump -f wal.log -txn 42      # one transaction's chain
//	logdump -f wal.log -stats       # kind histogram + volume only
//	logdump -f wal.d/pagefile.db    # pagefile slot table
//	logdump -remote cloud.d         # cloud log tier: raw/pack/snapshot
//	                                # objects, decoded pack indexes, floor
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `logdump decodes an Aether write-ahead log and prints its records.

Usage:
  logdump -f <path> [-archive <dir>] [-txn <id>] [-stats]

The path may be:
  a log file            every record, in LSN order
  a segmented log dir   segment layout + base first; archived segments
                        (auto-detected at <dir>/archive, or -archive)
                        are listed and stitched below the base so the
                        dump covers history already recycled from the
                        hot directory
  a partitioned root    (p0/ present) each partition's segment layout,
                        then all partitions' records merged in global
                        seq order — the order recovery replays
  a pagefile            the paged database file's slot table

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), `
Examples:
  logdump -f wal.d                 dump a segmented log and its archive
  logdump -f wal.d -stats          kind histogram and volume only
  logdump -f wal.d -archive /cold  cold store in a non-default location
  logdump -f wal.d/pagefile.db     slot table of the database file
  logdump -remote cloud.d          cloud log tier: raw segments, packs
                                   (decoded indexes), snapshots, floor
`)
}

func main() {
	var (
		path    = flag.String("f", "", "log file, segmented log directory, or pagefile to dump")
		archDir = flag.String("archive", "", "cold-storage directory holding archived segments (default: <dir>/archive when present)")
		remote  = flag.String("remote", "", "cloud log tier directory (a DirObjectStore root): list raw segment, pack, and snapshot objects instead of dumping a log")
		txn     = flag.Uint64("txn", 0, "show only this transaction (0 = all)")
		stats   = flag.Bool("stats", false, "print only summary statistics")
	)
	flag.Usage = usage
	flag.Parse()
	if *remote != "" {
		if err := dumpRemote(*remote); err != nil {
			fmt.Fprintln(os.Stderr, "logdump:", err)
			os.Exit(1)
		}
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	if isPageFile(*path) {
		if err := dumpPageFile(*path, true); err != nil {
			fmt.Fprintln(os.Stderr, "logdump:", err)
			os.Exit(1)
		}
		return
	}
	if isPartitionedDir(*path) {
		if err := runMulti(*path, *archDir, *txn, *stats); err != nil {
			fmt.Fprintln(os.Stderr, "logdump:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*path, *archDir, *txn, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "logdump:", err)
		os.Exit(1)
	}
}

// isPartitionedDir recognizes a partitioned database root
// (Options.LogPartitions >= 2) by its p0/ partition directory.
func isPartitionedDir(path string) bool {
	st, err := os.Stat(filepath.Join(path, "p0"))
	return err == nil && st.IsDir()
}

// isPageFile recognizes the paged database file by name (the two names
// Open uses), so pointing logdump at one dumps slots instead of
// misreading page images as log records.
func isPageFile(path string) bool {
	base := filepath.Base(path)
	return base == "pagefile.db" || strings.HasSuffix(base, ".pagefile")
}

// pageFileFor returns the pagefile path Open would pair with this log
// path, or "" if none exists.
func pageFileFor(logPath string) string {
	st, err := os.Stat(logPath)
	var pf string
	if err == nil && st.IsDir() {
		pf = filepath.Join(logPath, "pagefile.db")
	} else {
		pf = logPath + ".pagefile"
	}
	if _, err := os.Stat(pf); err != nil {
		return ""
	}
	return pf
}

// dumpPageFile prints the database file's summary (and, when verbose,
// its slot table). It is strictly read-only — the owning process may
// have the database open, so logdump must never replay or truncate the
// double-write journal; it only reports a pending one.
func dumpPageFile(path string, verbose bool) error {
	info, err := storage.ReadPageFileInfo(path)
	if err != nil {
		return err
	}
	fmt.Printf("pagefile %s: %d pages, %d bytes", path, info.Pages, info.SizeBytes)
	if info.JournalPending > 0 {
		fmt.Printf(" (journal pending: %d pages, replayed on next open)", info.JournalPending)
	}
	fmt.Println()
	if !verbose {
		return nil
	}
	for _, s := range info.Slots {
		fmt.Printf("  slot %6d  page %-12d space=%-4d version=%d\n",
			s.Slot, s.PageID, storage.PageSpace(s.PageID), s.Version)
	}
	return nil
}

// openDevice opens path as a segmented log directory or a plain log
// file. Directories open strictly read-only: logdump is a diagnostic
// and must never repair, seed metadata, or unlink what it inspects.
func openDevice(path string) (logdev.Device, error) {
	st, err := os.Stat(path)
	if err == nil && st.IsDir() {
		return logdev.OpenSegmentedDirRO(path)
	}
	return logdev.OpenFile(path)
}

// archiverFor opens the cold store for a segmented log: the explicit
// -archive directory, or <logPath>/archive when it exists. Returns nil
// when there is no archive — the dump then covers only the hot log.
// The handle never creates the directory or sweeps temp files (a live
// archiver may own them).
func archiverFor(logPath, archDir string) (*logdev.DirArchiver, error) {
	if archDir == "" {
		candidate := filepath.Join(logPath, "archive")
		if st, err := os.Stat(candidate); err != nil || !st.IsDir() {
			return nil, nil
		}
		archDir = candidate
	}
	return logdev.DirArchiverAt(archDir)
}

func run(path, archDir string, txnFilter uint64, statsOnly bool) error {
	dev, err := openDevice(path)
	if err != nil {
		return err
	}
	defer dev.Close()

	var data []byte
	var base int64
	if seg, ok := dev.(*logdev.Segmented); ok {
		fmt.Printf("segmented log: segsize=%d base=%d durable=%d\n",
			seg.SegmentSize(), seg.Base(), seg.DurableSize())
		if repaired := seg.RepairedTailBytes(); repaired > 0 {
			fmt.Printf("  torn tail: %d unsynced bytes beyond the durable watermark (left on disk; a read-write open repairs them)\n", repaired)
		}
		for _, si := range seg.Segments() {
			live := ""
			if si.Start < seg.Base() {
				live = "  (partially dead: below base)"
			}
			fmt.Printf("  segment %6d  [%d, %d)%s\n", si.Index, si.Start, si.End, live)
		}
		if pend := seg.PendingArchive(); len(pend) > 0 {
			fmt.Printf("  pending archive: %v  (dead, recycled only after cold storage has them)\n", pend)
		}
		arch, aerr := archiverFor(path, archDir)
		if aerr != nil {
			return aerr
		}
		if arch != nil {
			idxs, lerr := arch.Segments()
			if lerr != nil {
				return lerr
			}
			fmt.Printf("archive %s: %d segments\n", arch.Dir(), len(idxs))
			for _, idx := range idxs {
				fmt.Printf("  archived segment %6d  [%d, %d)\n",
					idx, idx*seg.SegmentSize(), (idx+1)*seg.SegmentSize())
			}
		}
		fmt.Println()
		// Read-only device + read-only archive handle: RestoreLog skips
		// the drain and stitches what is already archived to the bytes
		// still on the device (parked dead segments included).
		var a logdev.Archiver
		if arch != nil {
			a = arch
		}
		data, base, err = seg.RestoreLog(a, 0)
		if err != nil {
			return err
		}
	} else {
		if archDir != "" {
			return errors.New("-archive only applies to segmented log directories")
		}
		data, base, err = logdev.ReadTail(dev)
		if err != nil {
			return err
		}
	}
	if pfPath := pageFileFor(path); pfPath != "" {
		if err := dumpPageFile(pfPath, false); err != nil {
			fmt.Printf("pagefile %s: unreadable: %v\n", pfPath, err)
		}
		fmt.Println()
	}

	it := logrec.NewIterator(data, lsn.LSN(base))
	kindCount := map[logrec.Kind]int{}
	kindBytes := map[logrec.Kind]int{}
	txns := map[uint64]bool{}
	n := 0
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		n++
		kindCount[rec.Kind]++
		kindBytes[rec.Kind] += int(rec.TotalLen)
		txns[rec.TxnID] = true
		if statsOnly {
			continue
		}
		if txnFilter != 0 && rec.TxnID != txnFilter {
			continue
		}
		printRecord(rec)
	}
	if err := it.Err(); err != nil {
		fmt.Printf("-- log gap: %v (recovery stops here)\n", err)
	}

	fmt.Printf("\n%d records, %d restorable bytes (from offset %d), %d distinct transactions\n",
		n, len(data), base, len(txns))
	kinds := make([]logrec.Kind, 0, len(kindCount))
	for k := range kindCount {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-11s %8d records %10d bytes\n", k, kindCount[k], kindBytes[k])
	}
	return nil
}

func printRecord(rec logrec.Record) {
	switch rec.Kind {
	case logrec.KindUpdate, logrec.KindCLR:
		up, err := logrec.DecodeUpdate(rec.Payload)
		extra := ""
		if rec.Kind == logrec.KindCLR {
			extra = fmt.Sprintf(" undoNext=%v", rec.UndoNext())
		}
		if err != nil {
			fmt.Printf("%-12v %-10s txn=%-6d page=%-8d <bad payload>%s\n",
				rec.LSN, rec.Kind, rec.TxnID, rec.PageID, extra)
			return
		}
		fmt.Printf("%-12v %-10s txn=%-6d page=%-8d slot=%-4d %-6s before=%dB after=%dB prev=%v%s\n",
			rec.LSN, rec.Kind, rec.TxnID, rec.PageID, up.Slot, up.Op,
			len(up.Before), len(up.After), prevStr(rec.PrevLSN), extra)
	case logrec.KindCheckpointEnd:
		p, err := logrec.DecodeCheckpoint(rec.Payload)
		if err != nil {
			fmt.Printf("%-12v %-10s <bad payload>\n", rec.LSN, rec.Kind)
			return
		}
		fmt.Printf("%-12v %-10s begin=%v att=%d dpt=%d\n",
			rec.LSN, rec.Kind, lsn.LSN(rec.Aux), len(p.ActiveTxns), len(p.DirtyPages))
	default:
		fmt.Printf("%-12v %-10s txn=%-6d prev=%v\n",
			rec.LSN, rec.Kind, rec.TxnID, prevStr(rec.PrevLSN))
	}
}

func prevStr(l lsn.LSN) string {
	if !l.Valid() {
		return "-"
	}
	return l.String()
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// dumpRemote lists a cloud log tier rooted at a DirObjectStore
// directory (aether.NewDirObjectStore): the raw segment objects, the
// compacted packs with their decoded indexes, the snapshot objects, and
// the retention floor — per lane for a partitioned database (p0/, p1/,
// …), one unnamed lane otherwise. Torn objects (a crashed or cut
// upload's prefix) are flagged, not errors: the archiver overwrites
// them on its next pass.
func dumpRemote(dir string) error {
	if !isDir(dir) {
		return fmt.Errorf("%s: not a directory (expected a cloud tier root)", dir)
	}
	store, err := logdev.NewDirObjectStore(dir)
	if err != nil {
		return err
	}
	lanes := []string{""}
	if isDir(filepath.Join(dir, "p0")) {
		lanes = nil
		for i := 0; isDir(filepath.Join(dir, fmt.Sprintf("p%d", i))); i++ {
			lanes = append(lanes, fmt.Sprintf("p%d/", i))
		}
	}
	for _, lane := range lanes {
		if lane != "" {
			fmt.Printf("lane %s\n", strings.TrimSuffix(lane, "/"))
		}
		if err := dumpRemoteLane(store, lane); err != nil {
			return err
		}
	}
	return nil
}

// remoteObj fetches and unwraps one object, tolerating torn uploads.
func remoteObj(store logdev.ObjectStore, key string) (kind uint16, meta uint64, payload []byte, torn bool, err error) {
	data, err := store.Get(key)
	if err != nil {
		return 0, 0, nil, false, err
	}
	kind, meta, payload, derr := logdev.DecodeObject(data)
	if derr != nil {
		return 0, 0, nil, true, nil
	}
	return kind, meta, payload, false, nil
}

func dumpRemoteLane(store logdev.ObjectStore, lane string) error {
	var segSize int64
	var minSeg int64 = -1
	segKeys, err := store.List(lane + "seg/")
	if err != nil {
		return err
	}
	fmt.Printf("raw segment objects: %d\n", len(segKeys))
	for _, key := range segKeys {
		_, idx, payload, torn, err := remoteObj(store, key)
		if err != nil {
			return err
		}
		if torn {
			fmt.Printf("  %s  TORN (failed upload's prefix; re-shipped on the archiver's next pass)\n", key)
			continue
		}
		segSize = int64(len(payload))
		if minSeg < 0 || int64(idx) < minSeg {
			minSeg = int64(idx)
		}
		fmt.Printf("  segment %6d  [%d, %d)\n", idx, int64(idx)*segSize, (int64(idx)+1)*segSize)
	}

	packKeys, err := store.List(lane + "pack/")
	if err != nil {
		return err
	}
	fmt.Printf("pack objects: %d\n", len(packKeys))
	for _, key := range packKeys {
		_, _, payload, torn, err := remoteObj(store, key)
		if err != nil {
			return err
		}
		if torn {
			fmt.Printf("  %s  TORN (failed upload's prefix; raw segments still cover it)\n", key)
			continue
		}
		entries, derr := logdev.DecodePackIndex(payload)
		if derr != nil {
			fmt.Printf("  %s  bad index: %v\n", key, derr)
			continue
		}
		first, last := entries[0].Idx, entries[len(entries)-1].Idx
		if segSize == 0 && len(entries) > 0 {
			segSize = int64(entries[0].Len)
		}
		if minSeg < 0 || first < minSeg {
			minSeg = first
		}
		fmt.Printf("  pack %6d-%-6d  %d segments, [%d, %d), %d bytes indexed\n",
			first, last, len(entries), first*segSize, (last+1)*segSize, len(payload))
	}

	snapKeys, err := store.List(lane + "snap/")
	if err != nil {
		return err
	}
	fmt.Printf("snapshot objects: %d\n", len(snapKeys))
	var oldestCut uint64
	for i, key := range snapKeys {
		_, cut, payload, torn, err := remoteObj(store, key)
		if err != nil {
			return err
		}
		if torn {
			fmt.Printf("  %s  TORN (failed upload's prefix)\n", key)
			continue
		}
		snap, derr := logdev.DecodeSnapshot(payload)
		if derr != nil {
			fmt.Printf("  %s  bad payload: %v\n", key, derr)
			continue
		}
		if i == 0 {
			oldestCut = cut
		}
		fmt.Printf("  snapshot cut=%-12d %d pages, %d stashed in-flight updates\n",
			snap.Cut, len(snap.Pages), len(snap.Stash))
	}

	// The retention floor: 0 while the raw log still reaches genesis
	// (snapshots are then just restore accelerators), the oldest
	// snapshot's cut once pruning has removed history below it.
	floor := uint64(0)
	if len(snapKeys) > 0 && minSeg > 0 {
		floor = oldestCut
	}
	fmt.Printf("retention floor: %d (oldest restorable point)\n", floor)
	return nil
}

// runMulti dumps a partitioned database root (Options.LogPartitions >=
// 2): every partition's segment layout first, then all partitions'
// records merged into one stream ordered by global sequence stamp — the
// exact order recovery replays them in.
func runMulti(root, archDir string, txnFilter uint64, statsOnly bool) error {
	type partRec struct {
		part int
		rec  logrec.Record
	}
	var (
		merged    []partRec
		nParts    int
		kindCount = map[logrec.Kind]int{}
		kindBytes = map[logrec.Kind]int{}
		txns      = map[uint64]bool{}
	)
	for i := 0; ; i++ {
		dir := filepath.Join(root, fmt.Sprintf("p%d", i))
		if !isDir(dir) {
			break
		}
		nParts++
		seg, err := logdev.OpenSegmentedDirRO(dir)
		if err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		fmt.Printf("partition %d: segsize=%d base=%d durable=%d\n",
			i, seg.SegmentSize(), seg.Base(), seg.DurableSize())
		for _, si := range seg.Segments() {
			live := ""
			if si.Start < seg.Base() {
				live = "  (partially dead: below base)"
			}
			fmt.Printf("  segment %6d  [%d, %d)%s\n", si.Index, si.Start, si.End, live)
		}
		// Archive lanes are per partition: -archive <dir> maps to
		// <dir>/pN, and the conventional default is <root>/archive/pN.
		lane := ""
		if archDir != "" {
			lane = filepath.Join(archDir, fmt.Sprintf("p%d", i))
		} else if cand := filepath.Join(root, "archive", fmt.Sprintf("p%d", i)); isDir(cand) {
			lane = cand
		}
		var arch logdev.Archiver
		if lane != "" {
			a, aerr := logdev.DirArchiverAt(lane)
			if aerr != nil {
				seg.Close()
				return aerr
			}
			arch = a
		}
		data, base, err := seg.RestoreLog(arch, 0)
		if err != nil {
			seg.Close()
			return fmt.Errorf("partition %d: %w", i, err)
		}
		it := logrec.NewIterator(data, lsn.LSN(base))
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			kindCount[rec.Kind]++
			kindBytes[rec.Kind] += int(rec.TotalLen)
			txns[rec.TxnID] = true
			merged = append(merged, partRec{part: i, rec: rec})
		}
		if err := it.Err(); err != nil {
			fmt.Printf("  -- log gap: %v (recovery stops here)\n", err)
		}
		seg.Close()
	}
	if pfPath := filepath.Join(root, "pagefile.db"); pageFileFor(root) != "" {
		fmt.Println()
		if err := dumpPageFile(pfPath, false); err != nil {
			fmt.Printf("pagefile %s: unreadable: %v\n", pfPath, err)
		}
	}
	// Stable sort: checkpoint records written before the first
	// partitioned append may share seq 0 with nothing else; ties cannot
	// happen between real records (seqs are unique), so stability only
	// keeps the dump deterministic for malformed input.
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].rec.Seq < merged[b].rec.Seq })
	if !statsOnly {
		fmt.Println("\nmerged view (global seq order — the order recovery replays):")
		for _, pr := range merged {
			if txnFilter != 0 && pr.rec.TxnID != txnFilter {
				continue
			}
			fmt.Printf("seq=%-8d p%-2d ", pr.rec.Seq, pr.part)
			printRecord(pr.rec)
		}
	}
	fmt.Printf("\n%d partitions, %d records, %d distinct transactions\n",
		nParts, len(merged), len(txns))
	kinds := make([]logrec.Kind, 0, len(kindCount))
	for k := range kindCount {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-11s %8d records %10d bytes\n", k, kindCount[k], kindBytes[k])
	}
	return nil
}
