// Command logmicro is the log-insert microbenchmark from §6.1 of the
// paper as a standalone tool: it isolates the log buffer (no flushes, no
// transactions) and measures sustained insert bandwidth.
//
// Usage:
//
//	logmicro -variant CD -threads 16 -record 120 -duration 2s
//	logmicro -variant CDME -record 48 -outlier-every 60 -outlier-size 65536
//	logmicro -variant CD -localfill          # the paper's "CD in L1" mode
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aether/internal/bench"
	"aether/internal/logbuf"
)

func parseVariant(s string) (logbuf.Variant, error) {
	switch strings.ToLower(s) {
	case "baseline", "b":
		return logbuf.VariantBaseline, nil
	case "c":
		return logbuf.VariantC, nil
	case "d":
		return logbuf.VariantD, nil
	case "cd":
		return logbuf.VariantCD, nil
	case "cdme":
		return logbuf.VariantCDME, nil
	}
	return 0, fmt.Errorf("unknown variant %q (baseline, C, D, CD, CDME)", s)
}

func main() {
	var (
		variant      = flag.String("variant", "CD", "buffer variant: baseline, C, D, CD, CDME")
		threads      = flag.Int("threads", 8, "inserter goroutines")
		record       = flag.Int("record", 120, "record size in bytes (>=48)")
		duration     = flag.Duration("duration", 2*time.Second, "measurement duration")
		slots        = flag.Int("slots", 0, "consolidation slots (0 = default 4)")
		localFill    = flag.Bool("localfill", false, "fill thread-local memory (the paper's 'CD in L1' mode)")
		outlierEvery = flag.Int("outlier-every", 0, "insert an outlier every N records (0 = never)")
		outlierSize  = flag.Int("outlier-size", 0, "outlier record size in bytes")
	)
	flag.Parse()

	v, err := parseVariant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logmicro:", err)
		os.Exit(2)
	}
	res, err := bench.RunMicro(bench.MicroConfig{
		Variant:      v,
		Threads:      *threads,
		RecordSize:   *record,
		Duration:     *duration,
		Slots:        *slots,
		LocalFill:    *localFill,
		OutlierEvery: *outlierEvery,
		OutlierSize:  *outlierSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "logmicro:", err)
		os.Exit(1)
	}
	fmt.Printf("variant=%s threads=%d record=%dB duration=%v\n", v, *threads, *record, *duration)
	fmt.Printf("  %s\n", res)
}
