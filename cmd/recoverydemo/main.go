// Command recoverydemo exercises the full ARIES crash-recovery cycle:
// it runs a banking workload, pulls the (simulated) power cord mid-run,
// recovers, and verifies that every acknowledged transaction survived
// and the books balance.
//
// Usage:
//
//	recoverydemo -accounts 1000 -duration 2s -checkpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"aether"
)

func main() {
	var (
		accounts = flag.Int("accounts", 1000, "number of accounts")
		duration = flag.Duration("duration", 2*time.Second, "how long to run before crashing")
		ckpt     = flag.Bool("checkpoint", false, "take a checkpoint mid-run")
		workers  = flag.Int("workers", 8, "concurrent clients")
	)
	flag.Parse()

	if err := run(*accounts, *duration, *ckpt, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "recoverydemo:", err)
		os.Exit(1)
	}
}

func run(accounts int, duration time.Duration, checkpoint bool, workers int) error {
	db, err := aether.Open(aether.Options{Mode: aether.CommitPipelined})
	if err != nil {
		return err
	}
	defer db.Close()
	tbl, err := db.CreateTable("accounts")
	if err != nil {
		return err
	}

	// Load: every account starts with balance 1000.
	fmt.Printf("loading %d accounts...\n", accounts)
	s := db.Session()
	tx := s.Begin()
	for k := 1; k <= accounts; k++ {
		if err := tx.Insert(tbl, uint64(k), balanceRow(uint64(k), 1000)); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	s.Close()

	// Run transfers; count only acknowledged (durable) commits.
	fmt.Printf("running %d transfer clients for %v...\n", workers, duration)
	var acked atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := uint64(w)*2654435761 + 12345
			var acks sync.WaitGroup
			for time.Now().Before(deadline) {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := rng%uint64(accounts) + 1
				to := (rng>>17)%uint64(accounts) + 1
				if from == to {
					continue
				}
				tx := sess.Begin()
				err := tx.Update(tbl, from, addBalance(-1))
				if err == nil {
					err = tx.Update(tbl, to, addBalance(+1))
				}
				if err != nil {
					tx.Abort()
					continue
				}
				acks.Add(1)
				tx.CommitAsyncAck(func(err error) {
					if err == nil {
						acked.Add(1)
					}
					acks.Done()
				})
			}
			acks.Wait()
			if checkpoint && w == 0 {
				if err := db.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "checkpoint:", err)
				}
			}
		}(w)
	}
	wg.Wait()
	st := db.Stats()
	fmt.Printf("before crash: %d acked transfers, %d commits, %d log flushes, %.1f MB logged\n",
		acked.Load(), st.Commits, st.LogFlushes, float64(st.LogBytes)/1e6)

	// Power cut + recovery.
	fmt.Println("simulating power loss + ARIES recovery...")
	t0 := time.Now()
	if err := db.Crash(); err != nil {
		return err
	}
	fmt.Printf("recovered in %v\n", time.Since(t0).Round(time.Millisecond))

	// Verify: the sum of balances must be exactly accounts × 1000.
	sess := db.Session()
	defer sess.Close()
	verify := sess.Begin()
	var sum int64
	for k := 1; k <= accounts; k++ {
		row, err := verify.Read(mustTable(db, "accounts"), uint64(k))
		if err != nil {
			return fmt.Errorf("account %d lost in crash: %w", k, err)
		}
		sum += readBalance(row)
	}
	if err := verify.Commit(); err != nil {
		return err
	}
	want := int64(accounts) * 1000
	if sum != want {
		return fmt.Errorf("books do not balance after recovery: sum=%d want=%d", sum, want)
	}
	fmt.Printf("verified: %d accounts, balances sum to %d — books balance ✔\n", accounts, sum)
	return nil
}

func balanceRow(key uint64, balance int64) []byte {
	p := make([]byte, 8)
	putInt64(p, balance)
	return aether.Row(key, p)
}

func readBalance(row []byte) int64 { return getInt64(aether.RowPayload(row)) }

func addBalance(delta int64) func([]byte) ([]byte, error) {
	return func(row []byte) ([]byte, error) {
		cur := getInt64(row[8:])
		out := append([]byte(nil), row...)
		putInt64(out[8:], cur+delta)
		return out, nil
	}
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

func mustTable(db *aether.DB, name string) *aether.Table {
	t, err := db.LookupTable(name)
	if err != nil {
		panic(err)
	}
	return t
}
