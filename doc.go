// Package aether is a from-scratch Go implementation of the logging
// subsystem from "Aether: A Scalable Approach to Logging" (Johnson,
// Pandis, Stoica, Athanassoulis, Ailamaki — PVLDB 3(1), 2010), embedded
// in a complete transactional storage manager.
//
// The package exposes the library's public API: open a database, run
// ACID transactions under any of the paper's commit protocols, crash it,
// and recover it. The implementation lives in internal/ packages:
//
//   - internal/logbuf — the five log-buffer designs (baseline mutex,
//     consolidation array, decoupled fill, hybrid CD, delegated CDME)
//   - internal/core — the log manager: flush daemon, group commit,
//     durability subscriptions (flush pipelining's detach/re-attach)
//   - internal/lockmgr — hierarchical 2PL with Early Lock Release and
//     Speculative Lock Inheritance
//   - internal/storage — slotted pages, heap files, B+Tree, page store
//   - internal/txn — transactions, commit protocols, checkpoints
//   - internal/recovery — ARIES analysis/redo/undo
//   - internal/workload, internal/bench — the paper's benchmarks and
//     the per-figure experiments
//
// # Quick start
//
//	db, err := aether.Open(aether.Options{})
//	if err != nil { ... }
//	defer db.Close()
//
//	accounts, _ := db.CreateTable("accounts")
//	s := db.Session()
//	tx := s.Begin()
//	tx.Insert(accounts, 1, aether.Row(1, []byte("alice: 100")))
//	err = tx.Commit() // durable when it returns
//
// # Bounded log
//
// With Options.SegmentSize set, the log lives on a segmented device:
// the append-only stream is spread over fixed-size segments (files
// under Options.LogPath, or in-memory regions) and every Checkpoint
// recycles the segments behind the release horizon
//
//	release = min(checkpoint begin, oldest active-txn first LSN,
//	              oldest dirty-page recLSN)
//
// so both the disk footprint and restart-recovery work stay bounded:
// recovery reads the log from the truncation base (Stats.LogBase), not
// from byte 0. LSNs are stable log addresses and never restart, so a
// truncated log resumes exactly where it left off.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture and paper-to-code map.
package aether
