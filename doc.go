// Package aether is a from-scratch Go implementation of the logging
// subsystem from "Aether: A Scalable Approach to Logging" (Johnson,
// Pandis, Stoica, Athanassoulis, Ailamaki — PVLDB 3(1), 2010), embedded
// in a complete transactional storage manager.
//
// The package exposes the library's public API: open a database, run
// ACID transactions under any of the paper's commit protocols, crash it,
// and recover it. The implementation lives in internal/ packages:
//
//   - internal/logbuf — the five log-buffer designs (baseline mutex,
//     consolidation array, decoupled fill, hybrid CD, delegated CDME)
//   - internal/core — the log manager: flush daemon, group commit,
//     durability subscriptions (flush pipelining's detach/re-attach)
//   - internal/lockmgr — hierarchical 2PL with Early Lock Release and
//     Speculative Lock Inheritance
//   - internal/storage — slotted pages, heap files, B+Tree, and the
//     demand-paged buffer pool over the database file
//   - internal/txn — transactions, commit protocols, checkpoints
//   - internal/recovery — ARIES analysis/redo/undo
//   - internal/workload, internal/bench — the paper's benchmarks and
//     the per-figure experiments
//
// # Quick start
//
//	db, err := aether.Open(aether.Options{})
//	if err != nil { ... }
//	defer db.Close()
//
//	accounts, _ := db.CreateTable("accounts")
//	s := db.Session()
//	tx := s.Begin()
//	tx.Insert(accounts, 1, aether.Row(1, []byte("alice: 100")))
//	err = tx.Commit() // durable when it returns
//
// # Bounded log
//
// With Options.SegmentSize set, the log lives on a segmented device:
// the append-only stream is spread over fixed-size segments (files
// under Options.LogPath, or in-memory regions) and every Checkpoint
// recycles the segments behind the release horizon
//
//	release = min(checkpoint begin, oldest active-txn first LSN,
//	              oldest dirty-page recLSN)
//
// so both the disk footprint and restart-recovery work stay bounded:
// recovery reads the log from the truncation base (Stats.LogBase), not
// from byte 0. LSNs are stable log addresses and never restart, so a
// truncated log resumes exactly where it left off.
//
// With Options.CheckpointEveryBytes set, a background incremental
// checkpointer takes those checkpoints automatically: a goroutine fires
// every N bytes of appended log, runs the fuzzy checkpoint and the
// page-cleaning sweep, and advances the truncation horizon concurrently
// with foreground commits — the log stays bounded with zero client
// Checkpoint calls and zero commit-path stalls.
//
// # Durable watermark and torn-tail repair
//
// A segmented log directory persists a durable watermark
// (MANIFEST.durable, two CRC-protected ping-pong slots) on every Sync
// batch, after the data fsyncs and before durability is acknowledged.
// On reopen the watermark — not the segment file sizes — is the durable
// horizon, which lets Open tell two failure shapes apart: bytes beyond
// the watermark are a torn tail (a power loss persisted unsynced bytes,
// possibly in a later segment while dropping an earlier one's) and are
// discarded, with the count reported in Stats.LogTornTailRepaired;
// bytes missing below the watermark are real corruption and Open fails
// loudly rather than silently dropping acknowledged commits.
//
// # Log archiving (cold storage)
//
// With Options.ArchiveDir set, dead segments are not deleted at
// truncation: a background archiver goroutine copies and fsyncs each
// one into the cold-storage directory first, and only then recycles its
// slot — the hot log stays tiny while the full history survives.
// DB.RestoreTail stitches archived segments back to the live tail on
// demand (and cmd/logdump does the same), so the log remains readable
// from offset 0 for audit and replay. Stats.LogSegmentsArchived and
// Stats.LogSegmentsPendingArchive track the pipeline; while cold
// storage is unreachable, dead segments simply wait on disk.
//
// # Paged database file
//
// File-backed databases persist page images in a single paged, slotted,
// checksummed database file (pagefile.db next to a segmented log,
// LogPath+".pagefile" next to a plain one). Each 8KiB page occupies a
// fixed slot addressed by file offset, prefixed by a 32-byte header
// (pageID, version, CRC-32C over identity plus image) that is verified
// on every read. A checkpoint sweep writes all dirty pages sorted by
// file offset in large coalesced writes, guarded against torn pages by
// a double-write journal: the whole batch goes to pagefile.db.journal
// and is fsynced once, then the images are written in place and fsynced
// once — O(1) device fsyncs per sweep, however many pages it cleans.
// Open replays a committed journal (crash after the journal fsync) or
// discards a torn one (crash before it); either way every slot ends
// consistent. Databases created by older versions with a one-file-per-
// page pages/ directory are imported into the pagefile once on Open.
//
// # Bounded buffer pool (databases larger than RAM)
//
// With Options.CachePages (or CacheBytes) set, the page store becomes a
// bounded cache over the database file instead of holding every page in
// RAM: at most that many pages stay resident, misses fault the page in
// through the checksummed read path, and a clock policy evicts to make
// room. Evicting a dirty page is a steal in the ARIES sense — the log
// is forced up to the page's LSN first (the write-ahead rule), the
// image goes through the double-write journal, and only then is the
// frame reclaimed. Recovery faults pages lazily too, so restart memory
// is O(working set) rather than O(database). Stats.CacheResident,
// PageMisses, PageEvictions and StealWrites expose the pool; with the
// option unset the store stays fully memory-resident as before.
//
// # Background page cleaner
//
// With Options.CleanerPages set on a bounded pool, dirty writebacks
// leave the fault path entirely: a cleaner goroutine watches the
// free-frame headroom and pre-cleans dirty, unpinned, cold pages in
// batches — one log force covering the batch, one pass through the
// double-write journal (O(1) fsyncs however many pages), then
// mark-clean — so the clock hand almost always finds clean victims and
// eviction is a frame drop. Demand steals (Stats.StealWrites) collapse
// toward zero and are replaced by batched Stats.CleanerWrites; a steal
// that does happen nudges the cleaner awake immediately. Write-heavy
// workloads over databases larger than RAM go from fsync-bound to
// cache-bound.
//
// See the examples/ directory for complete programs, README.md for the
// quickstart and feature matrix, and ARCHITECTURE.md for the
// architecture, the paper-to-code map, and the segment-lifecycle and
// fsync-ordering invariants.
package aether
