package aether_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aether"
)

// ExampleOpen opens an in-memory database, commits a transaction under
// flush pipelining (the default, safe, non-blocking protocol) and reads
// the row back.
func ExampleOpen() {
	db, err := aether.Open(aether.Options{
		Device: aether.DeviceFlash, // simulated 100µs-sync log device
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	users, err := db.CreateTable("users")
	if err != nil {
		log.Fatal(err)
	}

	s := db.Session() // one per worker goroutine
	defer s.Close()

	tx := s.Begin()
	if err := tx.Insert(users, 1, aether.Row(1, []byte("alice"))); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil { // durable when it returns
		log.Fatal(err)
	}

	tx = s.Begin()
	row, err := tx.Read(users, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1: %s\n", aether.RowPayload(row))
	// Output: user 1: alice
}

// ExampleOptions_checkpointEveryBytes runs the background incremental
// checkpointer: with SegmentSize and CheckpointEveryBytes set, a
// goroutine takes a fuzzy checkpoint every N appended log bytes and
// recycles dead segments, so the log stays bounded with zero
// Checkpoint calls and zero commit-path stalls.
func ExampleOptions_checkpointEveryBytes() {
	db, err := aether.Open(aether.Options{
		SegmentSize:          16 << 10, // 16KiB log segments
		CheckpointEveryBytes: 64 << 10, // checkpoint every 64KiB of log
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	accounts, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	for id := uint64(1); id <= 500; id++ {
		tx := s.Begin()
		if err := tx.Insert(accounts, id, aether.Row(id, make([]byte, 128))); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// The checkpointer runs concurrently; its progress shows up in
	// Stats.AutoCheckpoints and an advancing Stats.LogBase.
	fmt.Printf("committed %d transactions\n", db.Stats().Commits)
	// Output: committed 500 transactions
}

// ExampleOptions_cleanerPages arms the background page cleaner on a
// bounded buffer pool: a goroutine writes dirty, cold pages back to the
// database file ahead of demand — one log force and one journaled batch
// per pass — so eviction under memory pressure finds clean victims and
// drops frames instead of stalling the faulting transaction on a demand
// steal's fsyncs.
func ExampleOptions_cleanerPages() {
	dir, err := os.MkdirTemp("", "aether-cleaner-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := aether.Open(aether.Options{
		LogPath:      filepath.Join(dir, "wal"),
		CachePages:   8, // tiny pool: the table below is ~10× larger
		CleanerPages: 8, // pre-clean whenever any frame is dirty
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	items, err := db.CreateTable("items")
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	for id := uint64(1); id <= 400; id++ {
		tx := s.Begin()
		if err := tx.Insert(items, id, aether.Row(id, make([]byte, 1500))); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	st := db.Stats()
	fmt.Printf("resident within budget: %v\n", st.CacheResident <= 8)
	fmt.Printf("cleaner wrote pages ahead of demand: %v\n", st.CleanerWrites > 0)
	fmt.Printf("every row still readable: %v\n", func() bool {
		tx := s.Begin()
		defer tx.Commit()
		for id := uint64(1); id <= 400; id++ {
			if _, err := tx.Read(items, id); err != nil {
				return false
			}
		}
		return true
	}())
	// Output:
	// resident within budget: true
	// cleaner wrote pages ahead of demand: true
	// every row still readable: true
}

// ExampleOptions_archiveDir enables log archiving: dead segments are
// fsynced into a cold-storage directory before their slots are
// recycled, and RestoreTail stitches that archived history back to the
// hot log on demand — the full log remains readable from offset 0 even
// though the hot directory holds only the tail.
func ExampleOptions_archiveDir() {
	dir, err := os.MkdirTemp("", "aether-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	logDir := filepath.Join(dir, "wal.d")
	db, err := aether.Open(aether.Options{
		LogPath:     logDir,
		SegmentSize: 16 << 10,
		ArchiveDir:  filepath.Join(logDir, "archive"), // the conventional spot
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	events, err := db.CreateTable("events")
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	for id := uint64(1); id <= 300; id++ {
		tx := s.Begin()
		if err := tx.Insert(events, id, aether.Row(id, make([]byte, 256))); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// The checkpoint kills the old segments; the archiver ships them to
	// cold storage before recycling.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	data, start, err := db.RestoreTail(0)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("hot log starts at base > 0: %v\n", st.LogBase > 0)
	fmt.Printf("restored history from offset %d: %v\n", start, len(data) > 0)
	// Output:
	// hot log starts at base > 0: true
	// restored history from offset 0: true
}
