// Banking: a TPC-B-style transfer workload comparing the paper's commit
// protocols head to head on the same database — the motivating scenario
// for Early Lock Release and Flush Pipelining (§3–§4).
//
// Expect: sync < sync+ELR < pipelined ≈ async, with the gap growing on
// slower log devices (try editing the Device option).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"aether"
)

const (
	accounts = 2000
	workers  = 8
	runFor   = 1500 * time.Millisecond
)

func main() {
	modes := []struct {
		name string
		mode aether.CommitMode
		safe bool
	}{
		{"sync (baseline)", aether.CommitSync, true},
		{"sync + ELR", aether.CommitSyncELR, true},
		{"async commit (UNSAFE)", aether.CommitAsync, false},
		{"flush pipelining + ELR", aether.CommitPipelined, true},
	}
	fmt.Printf("%d accounts, %d clients, %v per protocol, flash-class log device\n\n",
		accounts, workers, runFor)
	for _, m := range modes {
		tps, err := run(m.mode)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		safety := "durable on ack"
		if !m.safe {
			safety = "can lose acked work in a crash"
		}
		fmt.Printf("%-24s %8.0f transfers/s   (%s)\n", m.name, tps, safety)
	}
}

func run(mode aether.CommitMode) (float64, error) {
	db, err := aether.Open(aether.Options{Device: aether.DeviceFlash, Mode: mode})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	tbl, err := db.CreateTable("accounts")
	if err != nil {
		return 0, err
	}

	s := db.Session()
	tx := s.Begin()
	for k := uint64(1); k <= accounts; k++ {
		if err := tx.Insert(tbl, k, balanceRow(k, 1000)); err != nil {
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	s.Close()

	var completed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(runFor)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 1
			var acks sync.WaitGroup
			for time.Now().Before(deadline) {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := rng%accounts + 1
				to := (rng>>13)%accounts + 1
				if from == to {
					continue
				}
				tx := sess.Begin()
				err := tx.Update(tbl, from, add(-5))
				if err == nil {
					err = tx.Update(tbl, to, add(+5))
				}
				if err != nil {
					tx.Abort()
					continue
				}
				acks.Add(1)
				if err := tx.CommitAsyncAck(func(err error) {
					if err == nil {
						completed.Add(1)
					}
					acks.Done()
				}); err != nil {
					return
				}
			}
			acks.Wait()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify conservation of money before reporting.
	sess := db.Session()
	defer sess.Close()
	check := sess.Begin()
	var sum int64
	for k := uint64(1); k <= accounts; k++ {
		row, err := check.Read(tbl, k)
		if err != nil {
			return 0, err
		}
		sum += balance(row)
	}
	if err := check.Commit(); err != nil {
		return 0, err
	}
	if sum != accounts*1000 {
		return 0, fmt.Errorf("money not conserved: %d", sum)
	}
	return float64(completed.Load()) / elapsed.Seconds(), nil
}

func balanceRow(key uint64, bal int64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, uint64(bal))
	return aether.Row(key, p)
}

func balance(row []byte) int64 {
	return int64(binary.LittleEndian.Uint64(aether.RowPayload(row)))
}

func add(delta int64) func([]byte) ([]byte, error) {
	return func(row []byte) ([]byte, error) {
		out := append([]byte(nil), row...)
		cur := int64(binary.LittleEndian.Uint64(out[8:16]))
		binary.LittleEndian.PutUint64(out[8:16], uint64(cur+delta))
		return out, nil
	}
}
