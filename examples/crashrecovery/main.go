// Crashrecovery: demonstrate the durability contract end to end. The
// program runs transfers under flush pipelining, cuts power mid-stream,
// runs ARIES recovery, and proves two things:
//
//  1. Every transaction that was ACKNOWLEDGED survived the crash.
//  2. Atomicity held: in-flight transactions disappeared completely
//     (money is conserved).
//
// Run it a few times — the crash lands at a different point each run.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"aether"
)

const accounts = 500

func main() {
	db, err := aether.Open(aether.Options{
		Device: aether.DeviceFlash,
		Mode:   aether.CommitPipelined,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}

	s := db.Session()
	tx := s.Begin()
	for k := uint64(1); k <= accounts; k++ {
		if err := tx.Insert(tbl, k, row(k, 1000)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	s.Close()
	fmt.Printf("loaded %d accounts with balance 1000 each\n", accounts)

	// Fire transfers for a while; record which ones were acked durable.
	var mu sync.Mutex
	acked := map[int]bool{}
	var acks sync.WaitGroup
	sess := db.Session()
	rng := uint64(42)
	const attempts = 4000
	for i := 0; i < attempts; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		from := rng%accounts + 1
		to := (rng>>11)%accounts + 1
		if from == to {
			continue
		}
		tx := sess.Begin()
		err := tx.Update(tbl, from, add(-1))
		if err == nil {
			err = tx.Update(tbl, to, add(+1))
		}
		if err != nil {
			tx.Abort()
			continue
		}
		i := i
		acks.Add(1)
		if err := tx.CommitAsyncAck(func(err error) {
			if err == nil {
				mu.Lock()
				acked[i] = true
				mu.Unlock()
			}
			acks.Done()
		}); err != nil {
			log.Fatal(err)
		}
	}
	// CRASH — deliberately without waiting for outstanding acks: work
	// in the pipeline that was never acknowledged is allowed to vanish.
	fmt.Println("power cut mid-pipeline...")
	t0 := time.Now()
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	acks.Wait() // outstanding callbacks completed with errors at crash
	mu.Lock()
	ackedCount := len(acked)
	mu.Unlock()
	fmt.Printf("ARIES recovery done in %v; %d transfers had been acknowledged\n",
		time.Since(t0).Round(time.Millisecond), ackedCount)

	// Verify conservation (atomicity) after recovery.
	tbl2, err := db.LookupTable("accounts")
	if err != nil {
		log.Fatal(err)
	}
	s2 := db.Session()
	defer s2.Close()
	check := s2.Begin()
	var sum int64
	for k := uint64(1); k <= accounts; k++ {
		r, err := check.Read(tbl2, k)
		if err != nil {
			log.Fatalf("account %d lost: %v", k, err)
		}
		sum += bal(r)
	}
	if err := check.Commit(); err != nil {
		log.Fatal(err)
	}
	if sum != accounts*1000 {
		log.Fatalf("ATOMICITY VIOLATED: balances sum to %d, want %d", sum, accounts*1000)
	}
	fmt.Printf("verified: balances sum to %d — every acked transfer durable, every torn one undone ✔\n", sum)
}

func row(key uint64, balance int64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, uint64(balance))
	return aether.Row(key, p)
}

func bal(r []byte) int64 {
	return int64(binary.LittleEndian.Uint64(aether.RowPayload(r)))
}

func add(delta int64) func([]byte) ([]byte, error) {
	return func(r []byte) ([]byte, error) {
		out := append([]byte(nil), r...)
		cur := int64(binary.LittleEndian.Uint64(out[8:16]))
		binary.LittleEndian.PutUint64(out[8:16], uint64(cur+delta))
		return out, nil
	}
}
