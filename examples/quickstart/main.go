// Quickstart: open a database, run a few transactions under flush
// pipelining, and read the data back.
package main

import (
	"fmt"
	"log"

	"aether"
)

func main() {
	// An in-memory database whose simulated log device behaves like a
	// flash drive (100µs sync latency) — the paper's middle scenario.
	db, err := aether.Open(aether.Options{
		Device: aether.DeviceFlash,
		Buffer: aether.BufferCD,        // the paper's hybrid log buffer
		Mode:   aether.CommitPipelined, // safe, non-blocking commits
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	users, err := db.CreateTable("users")
	if err != nil {
		log.Fatal(err)
	}

	// Each worker goroutine gets its own session (an "agent thread").
	s := db.Session()
	defer s.Close()

	// Insert a few rows in one transaction. Commit returns once the
	// commit record is durable on the (simulated) device.
	tx := s.Begin()
	for id := uint64(1); id <= 3; id++ {
		row := aether.Row(id, []byte(fmt.Sprintf("user-%d@example.com", id)))
		if err := tx.Insert(users, id, row); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted 3 users (durably committed)")

	// Read-modify-write with automatic locking.
	tx = s.Begin()
	err = tx.Update(users, 2, func(row []byte) ([]byte, error) {
		return aether.Row(2, []byte("renamed@example.com")), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Read everything back.
	tx = s.Begin()
	for id := uint64(1); id <= 3; id++ {
		row, err := tx.Read(users, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d: %s\n", id, aether.RowPayload(row))
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("stats: %d commits, %d log records, %d bytes logged, %d flushes\n",
		st.Commits, st.LogInserts, st.LogBytes, st.LogFlushes)
}
