// Telecom: a TATP-style subscriber workload comparing the log-buffer
// designs of §5 under an update-heavy mix — the scenario where the
// paper's Figure 7 shows the baseline buffer becoming the bottleneck
// and Figure 9 shows the hybrid (CD) buffer relieving it.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"aether"
)

const (
	subscribers = 5000
	workers     = 12
	runFor      = 1200 * time.Millisecond
)

func main() {
	fmt.Printf("TATP-style UpdateLocation storm: %d subscribers, %d clients, %v per variant\n\n",
		subscribers, workers, runFor)
	variants := []struct {
		name string
		v    aether.BufferVariant
	}{
		{"baseline (one mutex)", aether.BufferBaseline},
		{"C (consolidation array)", aether.BufferC},
		{"D (decoupled fill)", aether.BufferD},
		{"CD (hybrid, paper's pick)", aether.BufferCD},
		{"CDME (delegated release)", aether.BufferCDME},
	}
	for _, v := range variants {
		tps, err := run(v.v)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-27s %9.0f updates/s\n", v.name, tps)
	}
}

func run(variant aether.BufferVariant) (float64, error) {
	db, err := aether.Open(aether.Options{
		Buffer: variant,
		Mode:   aether.CommitPipelined, // isolate the buffer, not the flush
	})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	tbl, err := db.CreateTable("subscriber")
	if err != nil {
		return 0, err
	}

	s := db.Session()
	tx := s.Begin()
	for k := uint64(1); k <= subscribers; k++ {
		if err := tx.Insert(tbl, k, subscriberRow(k)); err != nil {
			return 0, err
		}
		if k%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return 0, err
			}
			tx = s.Begin()
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	s.Close()

	var completed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(runFor)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session()
			defer sess.Close()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 7
			var acks sync.WaitGroup
			for time.Now().Before(deadline) {
				rng = rng*6364136223846793005 + 1442695040888963407
				sid := rng%subscribers + 1
				vlr := uint32(rng >> 32)
				tx := sess.Begin()
				err := tx.Update(tbl, sid, func(row []byte) ([]byte, error) {
					out := append([]byte(nil), row...)
					binary.LittleEndian.PutUint32(out[16:20], vlr)
					return out, nil
				})
				if err != nil {
					tx.Abort()
					continue
				}
				acks.Add(1)
				if err := tx.CommitAsyncAck(func(err error) {
					if err == nil {
						completed.Add(1)
					}
					acks.Done()
				}); err != nil {
					return
				}
			}
			acks.Wait()
		}(w)
	}
	wg.Wait()
	return float64(completed.Load()) / time.Since(start).Seconds(), nil
}

func subscriberRow(key uint64) []byte {
	payload := make([]byte, 88) // ~96B rows: small records stress the log
	binary.LittleEndian.PutUint32(payload[8:12], uint32(key))
	return aether.Row(key, payload)
}
