package aether

import (
	"errors"
	"testing"

	"aether/internal/vfs"
)

// openFaultDB opens a fully file-backed database (segmented log +
// pagefile archive + cold-store archiver) over the fault filesystem.
func openFaultDB(t *testing.T, fs *vfs.FaultFS) *DB {
	t.Helper()
	db, err := Open(Options{
		LogPath:     "/db",
		SegmentSize: 4096,
		ArchiveDir:  "/cold",
		Mode:        CommitSync,
		fs:          fs,
	})
	if err != nil {
		t.Fatalf("open over FaultFS: %v", err)
	}
	return db
}

// TestFaultFSPowerCutViaFacade exercises the whole public stack over
// the fault filesystem: committed data must survive a power cut that
// lands between transactions, through the same Options surface
// production code uses.
func TestFaultFSPowerCutViaFacade(t *testing.T) {
	fs := vfs.NewFaultFS(3)
	fs.SetTornWrites(true)

	db := openFaultDB(t, fs)
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	tx := s.Begin()
	if err := tx.Insert(tbl, 42, Row(42, []byte("survives"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Power-cut without closing anything — the dying daemons' writes
	// fail against the frozen filesystem — then recover and reopen.
	fs.PowerCut()
	db.Close() // error storm expected; must not panic or hang
	fs.Recover()

	db2 := openFaultDB(t, fs)
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s2 := db2.Session()
	defer s2.Close()
	tx2 := s2.Begin()
	row, err := tx2.Read(tbl2, 42)
	if err != nil || string(RowPayload(row)) != "survives" {
		t.Fatalf("committed row after power cut: %q, %v", RowPayload(row), err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFSInjectedSegmentSyncError: a transient fsync error on a
// log segment must surface to the committing transaction as an error,
// not be swallowed as a successful commit.
func TestFaultFSInjectedSegmentSyncError(t *testing.T) {
	fs := vfs.NewFaultFS(4)
	db := openFaultDB(t, fs)
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()

	tx := s.Begin()
	if err := tx.Insert(tbl, 1, Row(1, []byte("pre"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Every further segment fsync fails permanently: the log device is
	// dying. Commit must report it.
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Dir: "/db", Path: "*.seg", Err: errors.New("disk failing")})
	tx2 := s.Begin()
	if err := tx2.Insert(tbl, 2, Row(2, []byte("doomed"))); err == nil {
		if err := tx2.Commit(); err == nil {
			t.Fatal("commit succeeded through a failing log-segment fsync")
		}
	}
}
