module aether

go 1.21
