package bench

import (
	"fmt"

	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/txn"
	"aether/internal/workload"
)

// AblationELR isolates the claim at the end of §6.4: "flush pipelining
// depends on ELR to prevent log-induced lock contention which would
// otherwise limit scalability". It runs pipelined commit with and
// without early lock release on a skewed TPC-B (hot branch rows) —
// without ELR, commit-pending transactions keep their hot locks until
// the group flush completes, throttling everyone else.
func AblationELR(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: flush pipelining with vs without ELR (skewed TPC-B, ktps)",
		Columns: []string{"clients", "pipelined+ELR", "pipelined-no-ELR", "ELR gain"},
	}
	for _, clients := range scale.clientSweep() {
		run := func(mode txn.CommitMode) (float64, error) {
			rig, err := NewRig(EngineConfig{
				Variant: logbuf.VariantCD,
				Device:  logdev.ProfileFlash,
				SLI:     true,
			})
			if err != nil {
				return 0, err
			}
			defer rig.Close()
			w := &workload.TPCB{Branches: 10, AccountsPerBranch: accountScale(scale), AccessSkew: 1.25}
			if err := w.Setup(rig.Eng); err != nil {
				return 0, err
			}
			res := workload.RunClosedLoop(rig.Eng, workload.Options{
				Clients: clients, Duration: scale.runFor(), Mode: mode,
			}, w.Body())
			return res.Throughput(), nil
		}
		with, err := run(txn.CommitPipelined)
		if err != nil {
			return nil, err
		}
		without, err := run(txn.CommitPipelinedHoldLocks)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if without > 0 {
			gain = with / without
		}
		t.AddRow(fmt.Sprint(clients),
			fmt.Sprintf("%.1f", with/1000),
			fmt.Sprintf("%.1f", without/1000),
			fmt.Sprintf("%.2fx", gain))
	}
	return t, nil
}

// AblationGroupCommit sweeps the group-commit flush interval to show the
// trade the daemon's policy makes: tiny intervals flush per-transaction
// (more syncs, device-bound); long intervals batch well but stretch
// commit latency. The paper's policy triggers ("X txns, L bytes, T
// elapsed") sit at the knee.
func AblationGroupCommit(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Ablation: group-commit interval (TPC-B, pipelined, flash device)",
		Columns: []string{"interval", "ktps", "syncs/s", "txns per sync"},
	}
	intervals := []string{"10us", "50us", "200us", "1ms", "5ms"}
	clients := 16
	if scale.Quick {
		intervals = []string{"50us", "1ms"}
		clients = 8
	}
	for _, iv := range intervals {
		d, err := parseDuration(iv)
		if err != nil {
			return nil, err
		}
		rig, err := newRigWithFlushInterval(d)
		if err != nil {
			return nil, err
		}
		w := &workload.TPCB{Branches: 10, AccountsPerBranch: accountScale(scale)}
		if err := w.Setup(rig.Eng); err != nil {
			rig.Close()
			return nil, err
		}
		res := workload.RunClosedLoop(rig.Eng, workload.Options{
			Clients: clients, Duration: scale.runFor(), Mode: txn.CommitPipelined,
		}, w.Body())
		perSync := 0.0
		if res.Flushes > 0 {
			perSync = float64(res.Completed) / float64(res.Flushes)
		}
		t.AddRow(iv,
			fmt.Sprintf("%.1f", res.Throughput()/1000),
			fmt.Sprintf("%.0f", float64(res.Flushes)/res.Elapsed.Seconds()),
			fmt.Sprintf("%.1f", perSync))
		rig.Close()
	}
	return t, nil
}
