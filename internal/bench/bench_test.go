package bench

import (
	"strings"
	"testing"
	"time"

	"aether/internal/logbuf"
)

// quickScale keeps the experiment smoke tests fast.
var quickScale = Scale{Quick: true}

func TestRunMicroBasics(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:    logbuf.VariantCD,
		Threads:    4,
		RecordSize: 120,
		Duration:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 || res.GBps() <= 0 {
		t.Fatalf("micro produced nothing: %+v", res)
	}
	t.Logf("CD 4 threads 120B: %v", res)
}

func TestRunMicroOutliers(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:      logbuf.VariantCDME,
		Threads:      4,
		RecordSize:   48,
		Duration:     100 * time.Millisecond,
		OutlierEvery: 60,
		OutlierSize:  32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 {
		t.Fatal("no inserts with outliers")
	}
}

func TestRunMicroLocalFill(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:    logbuf.VariantCD,
		Threads:    4,
		RecordSize: 1200,
		Duration:   100 * time.Millisecond,
		LocalFill:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 {
		t.Fatal("no inserts in local-fill mode")
	}
}

func TestMicroDefaults(t *testing.T) {
	res, err := RunMicro(MicroConfig{Variant: logbuf.VariantBaseline, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 {
		t.Fatal("defaulted micro run produced nothing")
	}
	var zero MicroResult
	if zero.GBps() != 0 || zero.InsertsPerSec() != 0 {
		t.Fatal("zero result division")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tbl.AddRow("1", "2")
	s := tbl.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "bbbb") {
		t.Fatalf("table output: %q", s)
	}
}

func TestSharesClamps(t *testing.T) {
	sh := Shares(BreakdownSnapshot{}, BreakdownSnapshot{
		logWork: time.Second, logContention: time.Second,
		logWait: time.Second, lockWait: time.Second,
	}, 1, time.Second)
	if sh.OtherWork != 0 {
		t.Fatalf("other work should clamp to 0: %+v", sh)
	}
	if s := (TimeShares{}).String(); s == "" {
		t.Fatal("empty shares string")
	}
	if (Shares(BreakdownSnapshot{}, BreakdownSnapshot{}, 0, 0) != TimeShares{}) {
		t.Fatal("zero capacity shares")
	}
}

// The figure smoke tests run each experiment end to end in quick mode
// and sanity-check the output shape (row/column counts), not numbers.
func checkTable(t *testing.T, tbl *Table, wantRows int) {
	t.Helper()
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tbl.Title, len(tbl.Rows), wantRows)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s row %d: %d cells for %d columns", tbl.Title, i, len(row), len(tbl.Columns))
		}
	}
	t.Logf("\n%s", tbl)
}

func TestFig2(t *testing.T) {
	tbl, err := Fig2(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 3)
}

func TestFig3(t *testing.T) {
	tbl, err := Fig3(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
}

func TestFig4(t *testing.T) {
	tbl, err := Fig4(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.clientSweep()))
}

func TestFig5(t *testing.T) {
	tbl, err := Fig5(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.clientSweep()))
}

func TestFig7(t *testing.T) {
	tbl, err := Fig7(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.clientSweep()))
}

func TestFig8Left(t *testing.T) {
	tbl, err := Fig8Left(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.threadSweep()))
}

func TestFig8Right(t *testing.T) {
	tbl, err := Fig8Right(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 3)
}

func TestFig9(t *testing.T) {
	tbl, err := Fig9(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.clientSweep()))
}

func TestFig11(t *testing.T) {
	tbl, err := Fig11(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
}

func TestFig12(t *testing.T) {
	tbl, err := Fig12(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.threadSweep()))
}

func TestFig13(t *testing.T) {
	tbl, err := Fig13(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 4)
}

func TestFigureDispatch(t *testing.T) {
	for _, name := range FigureNames {
		if _, err := Figure(name, Scale{Quick: true}); err != nil {
			// Running all figures here would be slow; dispatch only is
			// exercised by the unknown-name case plus one real figure.
			break
		}
		break
	}
	if _, err := Figure("nope", quickScale); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestAblationELR(t *testing.T) {
	tbl, err := AblationELR(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(quickScale.clientSweep()))
}

func TestAblationGroupCommit(t *testing.T) {
	tbl, err := AblationGroupCommit(quickScale)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
}
