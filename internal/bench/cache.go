package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aether"
)

// CacheConfig parameterizes the larger-than-memory scenario: a table
// several times bigger than the page-cache budget, hammered with random
// point reads, against the same table fully resident.
type CacheConfig struct {
	// Dir is scratch space for the two file-backed databases.
	Dir string
	// Rows is the table size (wide rows, ~5 per 8KiB page).
	Rows int
	// CachePages is the bounded run's budget; the baseline runs
	// unbounded. Must be well below Rows/5 to mean anything.
	CachePages int
	// Reads is how many random point reads each phase performs.
	Reads int
}

// CacheResult reports the larger-than-memory scenario.
type CacheResult struct {
	// Rows is the table size in rows.
	Rows int `json:"rows"`
	// DataPages is how many pages the table occupies (from the
	// unbounded run's resident count) — the working set.
	DataPages int64 `json:"data_pages"`
	// CachePages is the bounded run's budget.
	CachePages int `json:"cache_pages"`
	// Reads is the number of random point reads per phase.
	Reads int `json:"reads"`
	// ResidentTPS is reads/s with everything in RAM (the baseline).
	ResidentTPS float64 `json:"resident_tps"`
	// BoundedTPS is reads/s with the bounded cache paging on misses.
	BoundedTPS float64 `json:"bounded_tps"`
	// MissRate is page faults per read during the bounded read phase.
	MissRate float64 `json:"miss_rate"`
	// Misses, Evictions and StealWrites snapshot the bounded run's
	// paging counters over the whole run (load + reads).
	Misses int64 `json:"misses"`
	// Evictions is the bounded run's total evictions.
	Evictions int64 `json:"evictions"`
	// StealWrites is the bounded run's dirty write-backs.
	StealWrites int64 `json:"steal_writes"`
	// Resident is the bounded run's final resident-page count; it must
	// not exceed CachePages.
	Resident int64 `json:"resident"`
}

// String renders the one-line summary the CLI prints.
func (r CacheResult) String() string {
	return fmt.Sprintf("cache: %d rows on %d pages, budget %d: %.0f reads/s bounded vs %.0f resident (%.2f misses/read, %d steals, %d resident)",
		r.Rows, r.DataPages, r.CachePages, r.BoundedTPS, r.ResidentTPS, r.MissRate, r.StealWrites, r.Resident)
}

// xorshift is a tiny deterministic PRNG so both phases read the same key
// sequence.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// runCachePhase loads a table of cfg.Rows wide rows and times cfg.Reads
// random point reads, returning the read throughput, the page faults
// incurred by the read phase alone, and the database's final stats.
func runCachePhase(dir string, cfg CacheConfig, cachePages int) (float64, int64, aether.Stats, error) {
	fail := func(err error) (float64, int64, aether.Stats, error) {
		return 0, 0, aether.Stats{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	db, err := aether.Open(aether.Options{
		LogPath:    filepath.Join(dir, "wal"),
		CachePages: cachePages,
	})
	if err != nil {
		return fail(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("cache")
	if err != nil {
		return fail(err)
	}
	s := db.Session()
	defer s.Close()
	pad := make([]byte, 1500)
	for k := uint64(1); k <= uint64(cfg.Rows); k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, aether.Row(k, pad)); err != nil {
			return fail(fmt.Errorf("bench cache load %d: %w", k, err))
		}
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
	}
	rng := xorshift(0x9E3779B97F4A7C15)
	readMisses0 := db.Stats().PageMisses
	t0 := time.Now()
	for i := 0; i < cfg.Reads; i++ {
		k := rng.next()%uint64(cfg.Rows) + 1
		tx := s.Begin()
		row, err := tx.Read(tbl, k)
		if err != nil {
			return fail(fmt.Errorf("bench cache read %d: %w", k, err))
		}
		if len(row) != 8+len(pad) {
			return fail(fmt.Errorf("bench cache read %d: row is %d bytes", k, len(row)))
		}
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
	}
	elapsed := time.Since(t0)
	stats := db.Stats()
	return float64(cfg.Reads) / elapsed.Seconds(), stats.PageMisses - readMisses0, stats, nil
}

// RunCache executes the larger-than-memory scenario: identical load and
// random-read phases, once fully resident and once with CachePages set
// far below the working set. The bounded run must stay within its
// budget and page on misses; the result quantifies what that costs
// (throughput degrades gracefully instead of the process OOMing).
func RunCache(cfg CacheConfig) (CacheResult, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 2000
	}
	if cfg.CachePages <= 0 {
		cfg.CachePages = 16
	}
	if cfg.Reads <= 0 {
		cfg.Reads = cfg.Rows
	}
	res := CacheResult{Rows: cfg.Rows, CachePages: cfg.CachePages, Reads: cfg.Reads}

	residentTPS, _, fullStats, err := runCachePhase(filepath.Join(cfg.Dir, "cache-resident"), cfg, 0)
	if err != nil {
		return res, err
	}
	res.ResidentTPS = residentTPS
	res.DataPages = fullStats.CacheResident
	if fullStats.PageEvictions != 0 {
		return res, fmt.Errorf("bench cache: unbounded run evicted %d pages", fullStats.PageEvictions)
	}

	boundedTPS, readMisses, boundedStats, err := runCachePhase(filepath.Join(cfg.Dir, "cache-bounded"), cfg, cfg.CachePages)
	if err != nil {
		return res, err
	}
	res.BoundedTPS = boundedTPS
	res.Misses = boundedStats.PageMisses
	res.Evictions = boundedStats.PageEvictions
	res.StealWrites = boundedStats.StealWrites
	res.Resident = boundedStats.CacheResident
	if res.Resident > int64(cfg.CachePages) {
		return res, fmt.Errorf("bench cache: resident %d exceeds budget %d", res.Resident, cfg.CachePages)
	}
	if res.Evictions == 0 || res.Misses == 0 {
		return res, fmt.Errorf("bench cache: bounded run did not page (misses=%d evictions=%d)", res.Misses, res.Evictions)
	}
	res.MissRate = float64(readMisses) / float64(cfg.Reads)
	return res, nil
}
