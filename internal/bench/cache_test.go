package bench

import "testing"

// TestCacheScenario runs the larger-than-memory scenario at test scale
// and asserts its acceptance properties: the bounded run completes
// correctly (RunCache verifies every read), stays within its budget,
// and actually pages (non-zero misses and evictions) — i.e. throughput
// degrades gracefully instead of memory growing with the table.
func TestCacheScenario(t *testing.T) {
	rows := 1200
	if testing.Short() {
		rows = 500
	}
	res, err := RunCache(CacheConfig{
		Dir:        t.TempDir(),
		Rows:       rows,
		CachePages: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Resident > int64(res.CachePages) {
		t.Fatalf("resident %d exceeds budget %d", res.Resident, res.CachePages)
	}
	if res.Misses == 0 || res.Evictions == 0 || res.StealWrites == 0 {
		t.Fatalf("bounded run did not page: %+v", res)
	}
	if res.DataPages <= int64(res.CachePages) {
		t.Fatalf("scenario invalid: %d data pages fit the %d-page budget", res.DataPages, res.CachePages)
	}
	if res.BoundedTPS <= 0 || res.ResidentTPS <= 0 {
		t.Fatalf("throughputs not measured: %+v", res)
	}
}
