package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aether"
)

// CleanerConfig parameterizes the write-heavy larger-than-memory
// scenario: a table several times bigger than the page-cache budget,
// hammered with concurrent random point updates, once with eviction
// writebacks on the fault path (demand steals — the PR 4 behavior) and
// once with the background page cleaner writing ahead of demand.
type CleanerConfig struct {
	// Dir is scratch space for the two file-backed databases.
	Dir string
	// Rows is the table size (wide rows, ~5 per 8KiB page).
	Rows int
	// CachePages is the buffer-pool budget for both runs. Must be well
	// below Rows/5 to mean anything.
	CachePages int
	// CleanerPages is the armed run's free-or-clean headroom target
	// (default CachePages: keep the whole pool clean, DB2-style).
	CleanerPages int
	// Updates is how many random point updates are performed per phase,
	// spread over Clients.
	Updates int
	// Clients is the number of concurrent update sessions (default 4).
	// Concurrency is the point: demand steals used to serialize every
	// faulting client behind one victim's fsyncs.
	Clients int
}

// CleanerResult reports the write-heavy larger-than-memory scenario.
// The headline numbers: with the cleaner armed, StealWrites (dirty
// writebacks on the faulting caller's critical path) collapse while
// CleanerWrites absorbs them in the background, batched — and update
// throughput rises, because faults stop paying (and queueing behind)
// per-victim fsyncs.
type CleanerResult struct {
	// Rows is the table size in rows.
	Rows int `json:"rows"`
	// CachePages is both runs' buffer-pool budget.
	CachePages int `json:"cache_pages"`
	// CleanerPages is the armed run's headroom target.
	CleanerPages int `json:"cleaner_pages"`
	// Updates is the number of random point updates per phase.
	Updates int `json:"updates"`
	// Clients is the number of concurrent update sessions.
	Clients int `json:"clients"`
	// BaselineTPS is updates/s with demand steals only (cleaner off).
	BaselineTPS float64 `json:"baseline_tps"`
	// CleanedTPS is updates/s with the background cleaner armed.
	CleanedTPS float64 `json:"cleaned_tps"`
	// BaselineSteals is the cleaner-off run's demand-steal count.
	BaselineSteals int64 `json:"baseline_steals"`
	// CleanedSteals is the armed run's demand-steal count (≈ 0).
	CleanedSteals int64 `json:"cleaned_steals"`
	// CleanerWrites is how many images the armed run's cleaner wrote
	// back ahead of demand.
	CleanerWrites int64 `json:"cleaner_writes"`
	// CleanerPasses is how many batched cleaner passes those writes
	// took (each pass = at most one log force + one journaled archive
	// batch, O(1) fsyncs regardless of batch size).
	CleanerPasses int64 `json:"cleaner_passes"`
}

// String renders the one-line summary the CLI prints.
func (r CleanerResult) String() string {
	return fmt.Sprintf("cleaner: %d rows, budget %d, %d clients: %.0f upd/s and %d demand steals armed vs %.0f upd/s and %d steals bare (%d cleaner writes in %d passes)",
		r.Rows, r.CachePages, r.Clients, r.CleanedTPS, r.CleanedSteals, r.BaselineTPS, r.BaselineSteals, r.CleanerWrites, r.CleanerPasses)
}

// runCleanerPhase loads a table of cfg.Rows wide rows and times
// cfg.Updates concurrent random point updates under the given cleaner
// setting, returning update throughput and the run's stats.
func runCleanerPhase(dir string, cfg CleanerConfig, cleanerPages int) (float64, aether.Stats, error) {
	fail := func(err error) (float64, aether.Stats, error) {
		return 0, aether.Stats{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	db, err := aether.Open(aether.Options{
		LogPath:         filepath.Join(dir, "wal"),
		CachePages:      cfg.CachePages,
		CleanerPages:    cleanerPages,
		CleanerInterval: time.Millisecond,
	})
	if err != nil {
		return fail(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("cleaner")
	if err != nil {
		return fail(err)
	}
	loader := db.Session()
	pad := make([]byte, 1500)
	for k := uint64(1); k <= uint64(cfg.Rows); k++ {
		tx := loader.Begin()
		if err := tx.Insert(tbl, k, aether.Row(k, pad)); err != nil {
			loader.Close()
			return fail(fmt.Errorf("bench cleaner load %d: %w", k, err))
		}
		if err := tx.Commit(); err != nil {
			loader.Close()
			return fail(err)
		}
	}
	loader.Close()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	per := cfg.Updates / cfg.Clients
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			// Per-client deterministic key stream (decorrelated seeds).
			rng := xorshift(0x2545F4914F6CDD1D + uint64(c)*0x9E3779B97F4A7C15)
			for i := 0; i < per; i++ {
				k := rng.next()%uint64(cfg.Rows) + 1
				tx := s.Begin()
				err := tx.Update(tbl, k, func(row []byte) ([]byte, error) {
					row[8]++ // touch the payload: a real, logged change
					return row, nil
				})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("bench cleaner update %d: %w", k, err)
					}
					errMu.Unlock()
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return fail(firstErr)
	}
	done := per * cfg.Clients
	return float64(done) / elapsed.Seconds(), db.Stats(), nil
}

// RunCleaner executes the write-heavy larger-than-memory scenario:
// identical load and concurrent random-update phases, once with demand
// steals only and once with the background page cleaner armed. The
// armed run must do essentially all of its dirty writebacks in the
// background — demand steals collapsing toward zero, replaced by
// batched cleaner writes — without losing update throughput.
func RunCleaner(cfg CleanerConfig) (CleanerResult, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 2000
	}
	if cfg.CachePages <= 0 {
		cfg.CachePages = 16
	}
	if cfg.CleanerPages <= 0 {
		cfg.CleanerPages = cfg.CachePages
	}
	if cfg.Updates <= 0 {
		cfg.Updates = 2 * cfg.Rows
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	res := CleanerResult{
		Rows:         cfg.Rows,
		CachePages:   cfg.CachePages,
		CleanerPages: cfg.CleanerPages,
		Updates:      cfg.Updates,
		Clients:      cfg.Clients,
	}

	baseTPS, baseStats, err := runCleanerPhase(filepath.Join(cfg.Dir, "cleaner-off"), cfg, 0)
	if err != nil {
		return res, err
	}
	res.BaselineTPS = baseTPS
	res.BaselineSteals = baseStats.StealWrites
	if baseStats.CleanerWrites != 0 {
		return res, fmt.Errorf("bench cleaner: un-armed run recorded %d cleaner writes", baseStats.CleanerWrites)
	}
	if res.BaselineSteals == 0 {
		return res, fmt.Errorf("bench cleaner: baseline run never stole (working set fits the budget?)")
	}

	armedTPS, armedStats, err := runCleanerPhase(filepath.Join(cfg.Dir, "cleaner-on"), cfg, cfg.CleanerPages)
	if err != nil {
		return res, err
	}
	res.CleanedTPS = armedTPS
	res.CleanedSteals = armedStats.StealWrites
	res.CleanerWrites = armedStats.CleanerWrites
	res.CleanerPasses = armedStats.CleanerPasses
	if armedStats.CacheResident > int64(cfg.CachePages) {
		return res, fmt.Errorf("bench cleaner: resident %d exceeds budget %d", armedStats.CacheResident, cfg.CachePages)
	}
	if res.CleanerWrites == 0 {
		return res, fmt.Errorf("bench cleaner: armed run's cleaner never wrote a page")
	}
	// The tentpole claim: writebacks leave the fault path. Allow a small
	// residue of steals (concurrent bursts can outrun any asynchronous
	// cleaner for a beat — observed residue is 5–15% of baseline,
	// scheduler-dependent) but the bulk must move to the cleaner.
	if allowed := res.BaselineSteals/4 + 48; res.CleanedSteals > allowed {
		return res, fmt.Errorf("bench cleaner: %d demand steals with the cleaner armed (baseline %d; want ≈ 0)",
			res.CleanedSteals, res.BaselineSteals)
	}
	// Batching: each pass is at most one log force plus one journaled
	// archive batch, so writes must not trail passes — that would mean
	// the cleaner degenerated into page-at-a-time steals with extra
	// scheduling on top.
	if res.CleanerWrites < res.CleanerPasses {
		return res, fmt.Errorf("bench cleaner: %d passes for %d writes", res.CleanerPasses, res.CleanerWrites)
	}
	// Moving fsyncs off the fault path must not cost throughput (it
	// reliably gains ~2× here; the 0.9 factor only absorbs CI noise).
	if res.CleanedTPS < 0.9*res.BaselineTPS {
		return res, fmt.Errorf("bench cleaner: armed throughput %.0f upd/s below baseline %.0f", res.CleanedTPS, res.BaselineTPS)
	}
	return res, nil
}
