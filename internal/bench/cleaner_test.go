package bench

import "testing"

// TestCleanerScenario runs the write-heavy larger-than-memory scenario
// at test scale and asserts the PR's acceptance properties (RunCleaner
// enforces the hard ones itself): with the background page cleaner
// armed, demand steals collapse toward zero while the same dirty pages
// reach the database file through batched cleaner writebacks, and
// update throughput does not regress meaningfully against the
// steal-on-fault baseline.
func TestCleanerScenario(t *testing.T) {
	rows, updates := 900, 2000
	if testing.Short() {
		rows, updates = 500, 1000
	}
	res, err := RunCleaner(CleanerConfig{
		Dir:        t.TempDir(),
		Rows:       rows,
		CachePages: 12,
		Updates:    updates,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.CleanedSteals >= res.BaselineSteals/2 {
		t.Fatalf("cleaner barely moved writebacks off the fault path: %d steals armed vs %d bare",
			res.CleanedSteals, res.BaselineSteals)
	}
	if res.CleanerWrites == 0 || res.CleanerPasses == 0 {
		t.Fatalf("cleaner counters empty: %+v", res)
	}
}
