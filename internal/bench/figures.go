package bench

import (
	"fmt"
	"time"

	"aether/internal/distlog"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/txn"
	"aether/internal/workload"
)

// This file implements one experiment per figure of the paper's
// evaluation. Each returns a Table whose rows mirror the figure's series.

// Fig2 reproduces Figure 2: the CPU-time breakdown of TPC-B as the
// log-related bottlenecks are removed one by one. Bar 1 (baseline sync
// commit): the machine idles most of the time, blocked on log flushes
// while holding locks. Bar 2 (+ELR): lock contention melts, idle
// shrinks but scheduling overhead remains. Bar 3 (+flush pipelining):
// the machine saturates and log-buffer contention becomes visible.
func Fig2(scale Scale) (*Table, error) {
	clients := 20
	if scale.Quick {
		clients = 8
	}
	type cfg struct {
		name    string
		mode    txn.CommitMode
		penalty time.Duration
	}
	cfgs := []cfg{
		{"log-io-latency (baseline)", txn.CommitSync, 0},
		{"os-scheduler (+ELR)", txn.CommitSyncELR, 10 * time.Microsecond},
		{"log-buffer-contention (+pipelining)", txn.CommitPipelined, 0},
	}
	t := &Table{
		Title:   "Figure 2: machine-time breakdown, TPC-B, removing log bottlenecks",
		Columns: []string{"config", "idle%", "lock-cont%", "log-cont%", "log-work%", "other%", "ktps"},
	}
	for _, c := range cfgs {
		rig, err := NewRig(EngineConfig{
			Variant:       logbuf.VariantBaseline,
			Device:        logdev.ProfileFlash,
			SwitchPenalty: c.penalty,
			SLI:           true,
		})
		if err != nil {
			return nil, err
		}
		w := &workload.TPCB{Branches: 10, AccountsPerBranch: accountScale(scale), AccessSkew: 0.85}
		if err := w.Setup(rig.Eng); err != nil {
			rig.Close()
			return nil, err
		}
		before := rig.Snapshot()
		res := workload.RunClosedLoop(rig.Eng, workload.Options{
			Clients: clients, Duration: scale.runFor(), Mode: c.mode,
		}, w.Body())
		shares := Shares(before, rig.Snapshot(), clients, res.Elapsed)
		t.AddRow(c.name,
			fmt.Sprintf("%.0f", shares.Idle*100),
			fmt.Sprintf("%.0f", shares.OtherContention*100),
			fmt.Sprintf("%.0f", shares.LogContention*100),
			fmt.Sprintf("%.0f", shares.LogWork*100),
			fmt.Sprintf("%.0f", shares.OtherWork*100),
			fmt.Sprintf("%.1f", res.Throughput()/1000))
		rig.Close()
	}
	return t, nil
}

// Fig3 reproduces Figure 3: speedup of ELR over the lock-holding
// baseline as access skew and log-device latency vary. The paper's
// shape: negligible gain at low skew, a broad sweet spot in the middle
// (up to 35x on a slow disk, ~2x on flash), converging again at extreme
// skew.
func Fig3(scale Scale) (*Table, error) {
	skews := []float64{0, 0.5, 0.85, 1.25, 2.0, 3.0}
	devices := []logdev.Profile{logdev.ProfileMemory, logdev.ProfileFlash, logdev.ProfileFastDisk}
	clients := 16
	if scale.Quick {
		skews = []float64{0, 0.85, 2.0}
		devices = []logdev.Profile{logdev.ProfileMemory, logdev.ProfileFlash}
		clients = 8
	}
	t := &Table{
		Title:   "Figure 3: ELR speedup vs access skew and log-device latency (TPC-B)",
		Columns: append([]string{"device"}, skewCols(skews)...),
	}
	for _, dev := range devices {
		row := []string{dev.Name}
		for _, s := range skews {
			speedup, err := elrSpeedup(scale, dev, s, clients)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fx", speedup))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func skewCols(skews []float64) []string {
	out := make([]string, len(skews))
	for i, s := range skews {
		out[i] = fmt.Sprintf("s=%.2f", s)
	}
	return out
}

func elrSpeedup(scale Scale, dev logdev.Profile, skew float64, clients int) (float64, error) {
	run := func(mode txn.CommitMode) (float64, error) {
		rig, err := NewRig(EngineConfig{
			Variant: logbuf.VariantCD,
			Device:  dev,
			SLI:     true,
		})
		if err != nil {
			return 0, err
		}
		defer rig.Close()
		w := &workload.TPCB{Branches: 10, AccountsPerBranch: accountScale(scale), AccessSkew: skew}
		if err := w.Setup(rig.Eng); err != nil {
			return 0, err
		}
		res := workload.RunClosedLoop(rig.Eng, workload.Options{
			Clients: clients, Duration: scale.runFor(), Mode: mode,
		}, w.Body())
		return res.Throughput(), nil
	}
	base, err := run(txn.CommitSync)
	if err != nil {
		return 0, err
	}
	elr, err := run(txn.CommitSyncELR)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, fmt.Errorf("bench: baseline produced no throughput")
	}
	return elr / base, nil
}

// Fig4 reproduces Figure 4: scheduler activity vs client count, without
// and with flush pipelining. Series per client count: commit-blocking
// events per second (the context switches the paper plots), utilization
// (busy client-threads), and modeled system time.
func Fig4(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 4: commit-blocking context switches and utilization vs clients (TPC-B)",
		Columns: []string{"clients", "base switch/s", "base /txn", "base util", "pipe switch/s", "pipe /txn", "pipe util"},
	}
	for _, clients := range scale.clientSweep() {
		base, err := fig4Run(scale, txn.CommitSync, clients)
		if err != nil {
			return nil, err
		}
		pipe, err := fig4Run(scale, txn.CommitPipelined, clients)
		if err != nil {
			return nil, err
		}
		perTxn := func(r workload.Result) float64 {
			if r.Completed == 0 {
				return 0
			}
			return float64(r.CommitBlocks) / float64(r.Completed)
		}
		t.AddRow(fmt.Sprint(clients),
			fmt.Sprintf("%.0f", base.CommitBlockRate()),
			fmt.Sprintf("%.2f", perTxn(base)),
			fmt.Sprintf("%.1f", base.Utilization()),
			fmt.Sprintf("%.0f", pipe.CommitBlockRate()),
			fmt.Sprintf("%.2f", perTxn(pipe)),
			fmt.Sprintf("%.1f", pipe.Utilization()))
	}
	return t, nil
}

func fig4Run(scale Scale, mode txn.CommitMode, clients int) (workload.Result, error) {
	rig, err := NewRig(EngineConfig{
		Variant:       logbuf.VariantCD,
		Device:        logdev.ProfileFlash,
		SwitchPenalty: 10 * time.Microsecond,
		SLI:           true,
	})
	if err != nil {
		return workload.Result{}, err
	}
	defer rig.Close()
	w := &workload.TPCB{Branches: 10, AccountsPerBranch: accountScale(scale)}
	if err := w.Setup(rig.Eng); err != nil {
		return workload.Result{}, err
	}
	res := workload.RunClosedLoop(rig.Eng, workload.Options{
		Clients: clients, Duration: scale.runFor(), Mode: mode,
	}, w.Body())
	return res, nil
}

// Fig5 reproduces Figure 5: TPC-B throughput vs clients for the
// baseline, unsafe asynchronous commit, and flush pipelining. The
// paper's shape: pipelining tracks async commit (within noise) and both
// beat the baseline by ~20%+ at high client counts.
func Fig5(scale Scale) (*Table, error) {
	modes := []txn.CommitMode{txn.CommitSync, txn.CommitAsync, txn.CommitPipelined}
	t := &Table{
		Title:   "Figure 5: TPC-B throughput (ktps) vs clients",
		Columns: []string{"clients", "baseline", "async-commit", "flush-pipelining"},
	}
	for _, clients := range scale.clientSweep() {
		row := []string{fmt.Sprint(clients)}
		for _, mode := range modes {
			res, err := fig4Run(scale, mode, clients)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", res.Throughput()/1000))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: the time breakdown of TATP UpdateLocation
// with ELR and flush pipelining active, as load increases — the
// log-buffer contention share grows with load, which is the motivation
// for §5's buffer designs.
func Fig7(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 7: time breakdown vs load, TATP UpdateLocation (ELR+pipelining, baseline buffer)",
		Columns: []string{"clients", "log-cont%", "log-work%", "lock-cont%", "other%", "ktps"},
	}
	for _, clients := range scale.clientSweep() {
		rig, err := NewRig(EngineConfig{
			Variant: logbuf.VariantBaseline,
			Device:  logdev.ProfileMemory,
			SLI:     true,
		})
		if err != nil {
			return nil, err
		}
		w := &workload.TATP{Subscribers: subscriberScale(scale), UpdateLocationOnly: true}
		if err := w.Setup(rig.Eng); err != nil {
			rig.Close()
			return nil, err
		}
		before := rig.Snapshot()
		res := workload.RunClosedLoop(rig.Eng, workload.Options{
			Clients: clients, Duration: scale.runFor(), Mode: txn.CommitPipelined,
		}, w.Body())
		shares := Shares(before, rig.Snapshot(), clients, res.Elapsed)
		t.AddRow(fmt.Sprint(clients),
			fmt.Sprintf("%.1f", shares.LogContention*100),
			fmt.Sprintf("%.1f", shares.LogWork*100),
			fmt.Sprintf("%.1f", shares.OtherContention*100),
			fmt.Sprintf("%.1f", (shares.OtherWork+shares.Idle)*100),
			fmt.Sprintf("%.1f", res.Throughput()/1000))
		rig.Close()
	}
	return t, nil
}

// Fig8Left reproduces Figure 8 (left): log-insert throughput vs thread
// count at 120B records for every buffer variant. Paper shape: baseline
// saturates early (~0.14GB/s there), C overtakes it under contention, D
// is fast but degrades, CD scales near-linearly.
func Fig8Left(scale Scale) (*Table, error) {
	variants := []logbuf.Variant{logbuf.VariantBaseline, logbuf.VariantC, logbuf.VariantD, logbuf.VariantCD, logbuf.VariantCDME}
	t := &Table{
		Title:   "Figure 8 (left): insert throughput (GB/s), 120B records vs thread count",
		Columns: append([]string{"threads"}, variantCols(variants)...),
	}
	for _, threads := range scale.threadSweep() {
		row := []string{fmt.Sprint(threads)}
		for _, v := range variants {
			res, err := RunMicro(MicroConfig{
				Variant:    v,
				Threads:    threads,
				RecordSize: 120,
				Duration:   scale.runFor(),
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.GBps()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func variantCols(vs []logbuf.Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Fig8Right reproduces Figure 8 (right): bandwidth vs record size at a
// fixed high thread count, including the cache-resident "CD in L1"
// series that keeps scaling after the shared-memory variants hit the
// machine's bandwidth wall.
func Fig8Right(scale Scale) (*Table, error) {
	variants := []logbuf.Variant{logbuf.VariantBaseline, logbuf.VariantC, logbuf.VariantD, logbuf.VariantCD}
	sizes := []int{48, 120, 360, 1200, 4096, 12000}
	threads := scale.microThreads()
	if scale.Quick {
		sizes = []int{48, 360, 4096}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 8 (right): bandwidth (GB/s) vs record size, %d threads", threads),
		Columns: append(append([]string{"record"}, variantCols(variants)...), "CD-in-L1"),
	}
	for _, size := range sizes {
		row := []string{fmt.Sprint(size)}
		for _, v := range variants {
			res, err := RunMicro(MicroConfig{
				Variant:    v,
				Threads:    threads,
				RecordSize: size,
				Duration:   scale.runFor(),
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.GBps()))
		}
		res, err := RunMicro(MicroConfig{
			Variant:    logbuf.VariantCD,
			Threads:    threads,
			RecordSize: size,
			Duration:   scale.runFor(),
			LocalFill:  true,
		})
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.3f", res.GBps()))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: end-to-end TATP UpdateLocation throughput
// as Aether's components stack up — baseline, +ELR+flush pipelining,
// and full Aether (pipelining plus the hybrid CD buffer). Paper shape:
// pipelining is the big win (~68%), the scalable buffer adds a further
// single-digit percentage at today's core counts.
func Fig9(scale Scale) (*Table, error) {
	type variant struct {
		name string
		mode txn.CommitMode
		buf  logbuf.Variant
	}
	variants := []variant{
		{"baseline", txn.CommitSync, logbuf.VariantBaseline},
		{"pipelining+ELR", txn.CommitPipelined, logbuf.VariantBaseline},
		{"aether", txn.CommitPipelined, logbuf.VariantCD},
	}
	t := &Table{
		Title:   "Figure 9: TATP UpdateLocation throughput (ktps) vs clients",
		Columns: []string{"clients", "baseline", "pipelining+ELR", "aether"},
	}
	for _, clients := range scale.clientSweep() {
		row := []string{fmt.Sprint(clients)}
		for _, v := range variants {
			rig, err := NewRig(EngineConfig{
				Variant: v.buf,
				Device:  logdev.ProfileFlash,
				SLI:     true,
			})
			if err != nil {
				return nil, err
			}
			w := &workload.TATP{Subscribers: subscriberScale(scale), UpdateLocationOnly: true}
			if err := w.Setup(rig.Eng); err != nil {
				rig.Close()
				return nil, err
			}
			res := workload.RunClosedLoop(rig.Eng, workload.Options{
				Clients: clients, Duration: scale.runFor(), Mode: v.mode,
			}, w.Body())
			row = append(row, fmt.Sprintf("%.1f", res.Throughput()/1000))
			rig.Close()
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: CD vs CDME under a strongly bimodal
// record-size distribution (one outlier per 60 small records). Paper
// shape: the two track each other until ~8KiB outliers, then CD
// plateaus while CDME keeps scaling (up to ~2x past 64KiB), at the cost
// of ~10% under no skew.
func Fig11(scale Scale) (*Table, error) {
	outliers := []int{512, 2048, 8192, 16384, 65536, 262144}
	threads := scale.microThreads()
	if scale.Quick {
		outliers = []int{512, 16384}
	}
	t := &Table{
		Title:   "Figure 11: bimodal skew (48B + outlier every 60 inserts), GB/s",
		Columns: []string{"outlier", "CD", "CDME"},
	}
	for _, out := range outliers {
		row := []string{fmt.Sprint(out)}
		for _, v := range []logbuf.Variant{logbuf.VariantCD, logbuf.VariantCDME} {
			res, err := RunMicro(MicroConfig{
				Variant:      v,
				Threads:      threads,
				RecordSize:   48,
				Duration:     scale.runFor(),
				OutlierEvery: 60,
				OutlierSize:  out,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.GBps()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig12 reproduces Figure 12: sensitivity of the consolidation array to
// its slot count across thread counts. Paper shape: peak performance at
// 3–4 slots; fewer slots choke high thread counts, more slots dilute
// consolidation.
func Fig12(scale Scale) (*Table, error) {
	slots := []int{1, 2, 3, 4, 6, 8, 10}
	threads := scale.threadSweep()
	if scale.Quick {
		slots = []int{1, 4, 8}
	}
	cols := []string{"threads"}
	for _, s := range slots {
		cols = append(cols, fmt.Sprintf("%d-slot", s))
	}
	t := &Table{
		Title:   "Figure 12: consolidation-array slot sensitivity (GB/s, variant C, 120B)",
		Columns: cols,
	}
	for _, th := range threads {
		row := []string{fmt.Sprint(th)}
		for _, s := range slots {
			res, err := RunMicro(MicroConfig{
				Variant:    logbuf.VariantC,
				Threads:    th,
				RecordSize: 120,
				Duration:   scale.runFor(),
				Slots:      s,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.GBps()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig13 reproduces Figure 13 / §A.5: run the TPC-C subset, split its
// real log trace across 8 logs, and count the inter-log physical
// dependencies a distributed log would have to enforce. Paper finding:
// dependencies are pervasive and overwhelmingly tight over ~100kB of
// log, making intra-node log distribution unattractive.
func Fig13(scale Scale) (*Table, error) {
	rig, err := NewRig(EngineConfig{
		Variant: logbuf.VariantCD,
		Device:  logdev.ProfileMemory,
		SLI:     true,
	})
	if err != nil {
		return nil, err
	}
	defer rig.Close()
	w := workload.NewTPCC()
	if scale.Quick {
		w.Warehouses = 2
		w.CustomersPerDistrict = 50
		w.ItemsPerWarehouse = 200
	}
	if err := w.Setup(rig.Eng); err != nil {
		return nil, err
	}
	loadEnd := rig.Dev.DurableSize()
	res := workload.RunClosedLoop(rig.Eng, workload.Options{
		Clients: 8, Duration: scale.runFor(), Mode: txn.CommitPipelined,
	}, w.Body())
	_ = res
	rig.Eng.Log().Flush()
	data, err := logdev.ReadAll(rig.Dev)
	if err != nil {
		return nil, err
	}
	// Analyze only the benchmark window (~the paper's 100kB slice).
	window := data[loadEnd:]
	if len(window) > 200<<10 {
		window = window[:200<<10]
	}
	// Re-align to a record boundary: the load ended on one.
	trace := distlog.ExtractTrace(window)
	t := &Table{
		Title:   "Figure 13: inter-log dependencies, N-way split of a TPC-C log window",
		Columns: []string{"logs", "records", "kb", "txns", "deps", "deps/KB", "tight%", "flush/txn", "forced/txn"},
	}
	for _, logs := range []int{1, 2, 4, 8} {
		r := distlog.Analyze(trace, distlog.Config{Logs: logs, TightWindow: 5})
		// Commit-protocol simulation (§A.5's "most transactions flush
		// multiple logs"): replay with a 16-txn in-flight window.
		sim := distlog.ReplayLagged(trace, logs, 16)
		t.AddRow(fmt.Sprint(logs),
			fmt.Sprint(r.Records),
			fmt.Sprintf("%.1f", float64(r.Bytes)/1024),
			fmt.Sprint(r.Transactions),
			fmt.Sprint(r.Dependencies),
			fmt.Sprintf("%.1f", r.DependencyRate()),
			fmt.Sprintf("%.0f", r.TightFraction()*100),
			fmt.Sprintf("%.2f", sim.FlushesPerTxn),
			fmt.Sprintf("%.2f", sim.ForcedPerCommit))
	}
	return t, nil
}

// accountScale sizes the TPC-B account table.
func accountScale(s Scale) int {
	if s.Quick {
		return 200
	}
	return 10000
}

// subscriberScale sizes the TATP subscriber table.
func subscriberScale(s Scale) int {
	if s.Quick {
		return 1000
	}
	return 100000
}

// AllFigures runs every experiment and returns the tables in paper
// order.
func AllFigures(scale Scale) ([]*Table, error) {
	type fig struct {
		name string
		fn   func(Scale) (*Table, error)
	}
	figs := []fig{
		{"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"fig7", Fig7}, {"fig8left", Fig8Left}, {"fig8right", Fig8Right},
		{"fig9", Fig9}, {"fig11", Fig11}, {"fig12", Fig12}, {"fig13", Fig13},
		{"ablation-elr", AblationELR}, {"ablation-groupcommit", AblationGroupCommit},
	}
	var out []*Table
	for _, f := range figs {
		t, err := f.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", f.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Figure runs a single figure by name ("fig2" … "fig13").
func Figure(name string, scale Scale) (*Table, error) {
	switch name {
	case "fig2", "2":
		return Fig2(scale)
	case "fig3", "3":
		return Fig3(scale)
	case "fig4", "4":
		return Fig4(scale)
	case "fig5", "5":
		return Fig5(scale)
	case "fig7", "7":
		return Fig7(scale)
	case "fig8left", "8left", "8l":
		return Fig8Left(scale)
	case "fig8right", "8right", "8r":
		return Fig8Right(scale)
	case "fig9", "9":
		return Fig9(scale)
	case "fig11", "11":
		return Fig11(scale)
	case "fig12", "12":
		return Fig12(scale)
	case "fig13", "13":
		return Fig13(scale)
	case "ablation-elr":
		return AblationELR(scale)
	case "ablation-groupcommit":
		return AblationGroupCommit(scale)
	}
	return nil, fmt.Errorf("bench: unknown figure %q", name)
}

// FigureNames lists the runnable experiments.
var FigureNames = []string{
	"fig2", "fig3", "fig4", "fig5", "fig7",
	"fig8left", "fig8right", "fig9", "fig11", "fig12", "fig13",
	"ablation-elr", "ablation-groupcommit",
}
