// Package bench implements the paper's evaluation section: one
// experiment per figure, each reproducing the corresponding workload,
// parameter sweep and output series. The root-level bench_test.go and
// cmd/aetherbench expose them as testing.B benchmarks and a CLI.
//
// Absolute numbers differ from the paper's Sun Niagara II + Solaris
// testbed; what the experiments reproduce is the *shape* of each figure:
// who wins, by roughly what factor, and where the crossovers sit.
// EXPERIMENTS.md records paper-vs-measured for every figure.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/metrics"
	"aether/internal/storage"
	"aether/internal/txn"
)

// Scale selects experiment sizing. Quick keeps everything test-friendly
// (sub-second runs, small datasets); Full approximates the paper's
// sweeps within a laptop-class budget.
type Scale struct {
	// Quick selects the fast, test-scale parameters.
	Quick bool
}

// runFor returns the measurement duration for this scale.
func (s Scale) runFor() time.Duration {
	if s.Quick {
		return 150 * time.Millisecond
	}
	return 2 * time.Second
}

// clientSweep returns the client-count x-axis (the paper sweeps 1..64 on
// a 64-context machine; we sweep up to ~2×cores to show saturation).
func (s Scale) clientSweep() []int {
	max := runtime.GOMAXPROCS(0)
	if s.Quick {
		return []int{1, 4, 8}
	}
	sweep := []int{1, 2, 4, 8, 12, 16}
	for c := 24; c <= 2*max && c <= 64; c += 8 {
		sweep = append(sweep, c)
	}
	return sweep
}

// threadSweep is the microbenchmark thread axis. It stays within the
// machine's core count: the paper's spin-wait designs (D, CD) assume a
// hardware context per thread (their T2 had 64); oversubscribing Go's
// M:N scheduler with spin-waiting threads collapses the release chain
// instead of saturating it, which would measure the runtime rather than
// the algorithms. EXPERIMENTS.md discusses the effect (CDME, which
// delegates instead of waiting, survives oversubscription).
func (s Scale) threadSweep() []int {
	if s.Quick {
		return []int{1, 2, 4, 8}
	}
	max := runtime.GOMAXPROCS(0) - 2 // leave room for the drain + daemon
	sweep := []int{1, 2, 4, 8}
	for c := 12; c <= max && c <= 64; c += 4 {
		sweep = append(sweep, c)
	}
	return sweep
}

// microThreads is the fixed "high" thread count for record-size sweeps,
// bounded for the same reason as threadSweep.
func (s Scale) microThreads() int {
	if s.Quick {
		return 8
	}
	max := runtime.GOMAXPROCS(0) - 4
	if max < 4 {
		max = 4
	}
	if max > 64 {
		max = 64
	}
	return max
}

// EngineConfig assembles a full engine for workload experiments.
type EngineConfig struct {
	// Variant selects the log-buffer insert algorithm.
	Variant logbuf.Variant
	// Slots overrides the consolidation-array width (0 = default).
	Slots int
	// Device is the simulated log device latency class.
	Device logdev.Profile
	// SwitchPenalty models the scheduler context-switch cost.
	SwitchPenalty time.Duration
	// SLI enables speculative lock inheritance.
	SLI bool
	// Breakdown, if set, attaches the time-breakdown probes.
	Breakdown *metrics.Breakdown
}

// Rig is an assembled engine plus the probes the experiments read.
type Rig struct {
	// Eng is the assembled transaction engine.
	Eng *txn.Engine
	// Dev is the simulated log device under the engine.
	Dev *logdev.Mem
	// Breakdown holds the probes (nil unless configured).
	Breakdown *metrics.Breakdown
	lm        *core.LogManager
}

// Close shuts the rig down.
func (r *Rig) Close() { r.lm.Close() }

// NewRig builds an engine with the given knobs.
func NewRig(cfg EngineConfig) (*Rig, error) {
	bd := cfg.Breakdown
	if bd == nil {
		bd = &metrics.Breakdown{}
	}
	dev := logdev.NewMem(cfg.Device)
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{
			Variant:   cfg.Variant,
			Size:      1 << 24,
			Slots:     cfg.Slots,
			Breakdown: bd,
		},
		Device:        dev,
		Breakdown:     bd,
		SwitchPenalty: cfg.SwitchPenalty,
	})
	if err != nil {
		return nil, err
	}
	eng, err := txn.NewEngine(txn.Config{
		Log:     lm,
		Locks:   lockmgr.New(lockmgr.Config{DeadlockTimeout: 250 * time.Millisecond, SLI: cfg.SLI}),
		Store:   storage.NewStore(),
		Archive: storage.NewMemArchive(),
	})
	if err != nil {
		lm.Close()
		return nil, err
	}
	return &Rig{Eng: eng, Dev: dev, Breakdown: bd, lm: lm}, nil
}

// BreakdownSnapshot captures the probe state so a run's delta can be
// computed.
type BreakdownSnapshot struct {
	logWork, logContention, logWait time.Duration
	lockWait                        time.Duration
}

// Snapshot reads the current probe totals.
func (r *Rig) Snapshot() BreakdownSnapshot {
	return BreakdownSnapshot{
		logWork:       r.Breakdown.Get(metrics.PhaseLogWork),
		logContention: r.Breakdown.Get(metrics.PhaseLogContention),
		logWait:       r.Breakdown.Get(metrics.PhaseLogWait),
		lockWait:      r.Eng.Locks().Stats().WaitTime.Sum(),
	}
}

// TimeShares is a machine-utilization breakdown in the style of the
// paper's Figures 2 and 7: fractions of total machine time (clients ×
// wall clock).
type TimeShares struct {
	// OtherWork is useful transaction work outside the log.
	OtherWork float64
	// OtherContention is blocking lock waits.
	OtherContention float64
	// LogWork is time copying records into the log buffer.
	LogWork float64
	// LogContention is time fighting for the log buffer.
	LogContention float64
	// Idle is agent time blocked on commit flushes (descheduled).
	Idle float64
}

// String renders the shares as the paper's breakdown rows.
func (t TimeShares) String() string {
	return fmt.Sprintf("other-work %.0f%% | lock-contention %.0f%% | log-work %.0f%% | log-contention %.0f%% | idle %.0f%%",
		t.OtherWork*100, t.OtherContention*100, t.LogWork*100, t.LogContention*100, t.Idle*100)
}

// Shares converts probe deltas over a run into machine-time fractions.
func Shares(before, after BreakdownSnapshot, clients int, elapsed time.Duration) TimeShares {
	capacity := float64(clients) * elapsed.Seconds()
	if capacity <= 0 {
		return TimeShares{}
	}
	lw := (after.logWork - before.logWork).Seconds() / capacity
	lc := (after.logContention - before.logContention).Seconds() / capacity
	idle := (after.logWait - before.logWait).Seconds() / capacity
	lockW := (after.lockWait - before.lockWait).Seconds() / capacity
	other := 1 - lw - lc - idle - lockW
	if other < 0 {
		other = 0
	}
	return TimeShares{
		OtherWork:       other,
		OtherContention: clamp01(lockW),
		LogWork:         clamp01(lw),
		LogContention:   clamp01(lc),
		Idle:            clamp01(idle),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Table renders aligned experiment output.
type Table struct {
	// Title heads the rendered block.
	Title string
	// Columns names the columns.
	Columns []string
	// Rows holds pre-formatted cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
