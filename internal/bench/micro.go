package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/logbuf"
	"aether/internal/logrec"
)

// MicroConfig parameterizes the log-insert microbenchmark (§6.1): a
// slice of the log manager that only inserts — no flush, no transactions
// — isolating log-buffer behavior exactly as the paper does.
type MicroConfig struct {
	// Variant selects the log-buffer insert algorithm.
	Variant logbuf.Variant
	// Threads is the inserter count.
	Threads int
	// RecordSize is the total encoded record size (≥48).
	RecordSize int
	// Duration of the measured run.
	Duration time.Duration
	// Slots overrides the consolidation array width (0 = default 4).
	Slots int
	// LocalFill enables the "CD in L1" mode (§6.3.2).
	LocalFill bool
	// OutlierEvery inserts an OutlierSize record every N inserts (0 =
	// never) — the Figure 11 bimodal skew.
	OutlierEvery int
	// OutlierSize is the outlier record's encoded size.
	OutlierSize int
	// BufferSize overrides the ring size (0 = 64MiB).
	BufferSize int
}

// MicroResult reports sustained insert bandwidth.
type MicroResult struct {
	// Inserts is the number of records inserted.
	Inserts int64
	// Bytes is the total bytes inserted.
	Bytes int64
	// Elapsed is the measured wall-clock time.
	Elapsed time.Duration
}

// GBps returns sustained bandwidth in gigabytes per second.
func (r MicroResult) GBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e9
}

// InsertsPerSec returns the insert rate.
func (r MicroResult) InsertsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Inserts) / r.Elapsed.Seconds()
}

// String renders the one-line summary experiment tables print.
func (r MicroResult) String() string {
	return fmt.Sprintf("%.3f GB/s (%.2fM inserts/s)", r.GBps(), r.InsertsPerSec()/1e6)
}

// RunMicro executes the microbenchmark: Threads inserters hammer the
// buffer while a drain goroutine discards released bytes (the paper's
// setup inserts without flushing to disk).
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.RecordSize < logrec.HeaderSize {
		cfg.RecordSize = logrec.HeaderSize
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	size := cfg.BufferSize
	if size == 0 {
		size = 64 << 20
	}
	maxGroup := size / 8
	if cfg.OutlierSize > 0 && cfg.OutlierSize*4 > maxGroup {
		maxGroup = cfg.OutlierSize * 4
		for size < maxGroup*8 {
			size *= 2
		}
	}
	buf, err := logbuf.New(logbuf.Config{
		Variant:   cfg.Variant,
		Size:      size,
		Slots:     cfg.Slots,
		MaxGroup:  maxGroup,
		LocalFill: cfg.LocalFill,
	})
	if err != nil {
		return MicroResult{}, err
	}

	// Pre-encode the records once; inserters reuse the encodings (the
	// paper's microbenchmark measures buffer insertion, not marshalling).
	rec, err := logrec.NewPad(cfg.RecordSize).Encode()
	if err != nil {
		return MicroResult{}, err
	}
	var outlier []byte
	if cfg.OutlierEvery > 0 && cfg.OutlierSize > logrec.HeaderSize {
		outlier, err = logrec.NewPad(cfg.OutlierSize).Encode()
		if err != nil {
			return MicroResult{}, err
		}
	}

	// Null drain: reclaim released space as fast as possible.
	stopDrain := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		rd := buf.Reader()
		for {
			s, e := rd.Pending()
			if s != e {
				rd.MarkFlushed(e)
			} else {
				select {
				case <-stopDrain:
					return
				default:
				}
			}
		}
	}()

	var stop atomic.Bool
	var inserts, bytes atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ins := buf.NewInserter()
			var myInserts, myBytes int64
			n := 0
			for !stop.Load() {
				p := rec
				if outlier != nil && cfg.OutlierEvery > 0 && n%cfg.OutlierEvery == cfg.OutlierEvery-1 {
					p = outlier
				}
				if _, err := ins.Insert(p); err != nil {
					panic(fmt.Sprintf("bench: micro insert: %v", err))
				}
				myInserts++
				myBytes += int64(len(p))
				n++
				if n&1023 == 0 && time.Since(start) > cfg.Duration {
					break
				}
			}
			inserts.Add(myInserts)
			bytes.Add(myBytes)
		}(w)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(stopDrain)
	drainWG.Wait()

	return MicroResult{
		Inserts: inserts.Load(),
		Bytes:   bytes.Load(),
		Elapsed: elapsed,
	}, nil
}
