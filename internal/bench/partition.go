package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/txn"
)

// PartitionConfig parameterizes the partition-scaling microbenchmark:
// the same write-heavy workload is run once against a single simulated
// log device and once against N devices coordinated by the MultiLog,
// so the committed-bytes/s ratio isolates what log partitioning buys
// when the device — not the workload — is the bottleneck.
type PartitionConfig struct {
	// Partitions is the partitioned side's log count (default 4).
	Partitions int
	// Workers is the number of concurrent commit streams (default
	// 4×Partitions). Each worker hammers its own table, so its
	// transactions home to one partition and partitions fill evenly.
	Workers int
	// Duration is the measured window per side (default 500ms).
	Duration time.Duration
	// Payload is the row payload size in bytes (default 4096 — large
	// enough that device bandwidth, not per-record CPU, dominates).
	Payload int
	// CrossEvery makes every Nth transaction also update a shared
	// table (default 8; negative disables). Consecutive updates of the
	// shared pages then come from different home logs, which is what
	// creates the cross-log flush dependencies the stall-rate gate
	// watches.
	CrossEvery int
	// Device is the simulated log device class. The zero value uses a
	// flash-latency, bandwidth-limited profile (100µs sync, 8 MB/s),
	// under which a single log is bandwidth-bound and N independent
	// devices offer N× aggregate bandwidth — the hardware premise of
	// distributed logging.
	Device logdev.Profile
}

// PartitionRun reports one side of the comparison.
type PartitionRun struct {
	// Partitions is this side's log count.
	Partitions int `json:"partitions"`
	// Workers is the concurrent commit streams.
	Workers int `json:"workers"`
	// Commits is the transactions committed in the window.
	Commits int64 `json:"commits"`
	// CommittedBytes is the log bytes appended by those commits.
	CommittedBytes int64 `json:"committed_bytes"`
	// ElapsedMs is the measured wall-clock window.
	ElapsedMs int64 `json:"elapsed_ms"`
	// BytesPerSec is CommittedBytes over the window.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// Flushes is the device sync count across all partitions.
	Flushes int64 `json:"flushes"`
	// DepEdges counts cross-log flush dependencies observed at append
	// time (0 on the single-log side).
	DepEdges int64 `json:"dep_edges"`
	// DepStalls counts flush passes clamped below their buffered tail
	// waiting for another log.
	DepStalls int64 `json:"dep_stalls"`
	// StallRate is DepStalls/Flushes — the fraction of flush passes
	// the dependency limiter held back.
	StallRate float64 `json:"stall_rate"`
}

// PartitionResult is the 1-vs-N comparison plus the derived gates.
type PartitionResult struct {
	// Single is the one-log baseline.
	Single PartitionRun `json:"single"`
	// Multi is the N-partition side.
	Multi PartitionRun `json:"multi"`
	// Speedup is Multi.BytesPerSec / Single.BytesPerSec.
	Speedup float64 `json:"speedup"`
}

// String renders the one-line summary the CLI prints.
func (r PartitionResult) String() string {
	return fmt.Sprintf("partitions 1→%d: %.1f → %.1f MB/s committed (%.2fx), %d cross-log edges, stall rate %.3f",
		r.Multi.Partitions, r.Single.BytesPerSec/1e6, r.Multi.BytesPerSec/1e6,
		r.Speedup, r.Multi.DepEdges, r.Multi.StallRate)
}

// RunPartitions executes both sides and, on the partitioned side,
// crash-freezes the devices and re-runs recovery so the merge's
// dependency verification passes judgment on the run: a dependency-
// order violation in any surviving log fails the benchmark.
func RunPartitions(cfg PartitionConfig) (PartitionResult, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4 * cfg.Partitions
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 4096
	}
	if cfg.CrossEvery < 0 {
		cfg.CrossEvery = 0
	} else if cfg.CrossEvery == 0 {
		cfg.CrossEvery = 8
	}
	if cfg.Device == (logdev.Profile{}) {
		cfg.Device = logdev.Profile{Name: "sim-flash", SyncLatency: 100 * time.Microsecond, BytesPerSecond: 8 << 20}
	}
	var res PartitionResult
	single, err := runPartitionSide(cfg, 1)
	if err != nil {
		return res, fmt.Errorf("single-log side: %w", err)
	}
	multi, err := runPartitionSide(cfg, cfg.Partitions)
	if err != nil {
		return res, fmt.Errorf("%d-partition side: %w", cfg.Partitions, err)
	}
	res.Single, res.Multi = single, multi
	if single.BytesPerSec > 0 {
		res.Speedup = multi.BytesPerSec / single.BytesPerSec
	}
	return res, nil
}

// runPartitionSide measures one configuration: parts simulated devices
// under a full transaction engine, Workers concurrent commit streams.
func runPartitionSide(cfg PartitionConfig, parts int) (PartitionRun, error) {
	run := PartitionRun{Partitions: parts, Workers: cfg.Workers}
	devs := make([]logdev.Device, parts)
	mems := make([]*logdev.Mem, parts)
	for i := range devs {
		mems[i] = logdev.NewMem(cfg.Device)
		devs[i] = mems[i]
	}
	rc := txn.RestartConfig{
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 22},
		},
		LockConfig: lockmgr.Config{DeadlockTimeout: time.Second, SLI: true},
	}
	if parts >= 2 {
		rc.Devices = devs
	} else {
		rc.Device = devs[0]
	}
	eng, _, err := txn.Restart(rc)
	if err != nil {
		return run, err
	}

	// One table per worker (homes the worker's transactions to one
	// partition via the default space routing) plus a shared table the
	// cross-partition transactions collide on.
	tables := make([]*txn.Table, cfg.Workers)
	for w := range tables {
		if tables[w], err = eng.CreateTable(fmt.Sprintf("w%d", w), nil); err != nil {
			return run, err
		}
	}
	shared, err := eng.CreateTable("shared", nil)
	if err != nil {
		return run, err
	}

	payload := make([]byte, 8+cfg.Payload)
	// Seed the shared rows outside the measured window so the loop is
	// pure updates (no insert/update races on first touch).
	seedAg := eng.NewAgent()
	seedTx := seedAg.Begin()
	for w := 0; w < cfg.Workers; w++ {
		if err := seedTx.Insert(shared, uint64(w)+1, payload); err != nil {
			seedAg.Close()
			return run, err
		}
	}
	if err := seedTx.Commit(txn.CommitSync, nil); err != nil {
		seedAg.Close()
		return run, err
	}
	seedAg.Close()

	var commits atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ag := eng.NewAgent()
			defer ag.Close()
			// Key 0 aliases the table lock — start at 1. Each worker owns
			// a disjoint shared-table key so collisions are page-level
			// (log ordering), not row-level (lock waits).
			for n := uint64(1); time.Since(start) < cfg.Duration; n++ {
				tx := ag.Begin()
				if err := tx.Insert(tables[w], n, payload); err != nil {
					tx.Abort()
					continue
				}
				if cfg.CrossEvery > 0 && n%uint64(cfg.CrossEvery) == 0 {
					key := uint64(w) + 1
					err := tx.Update(shared, key, func([]byte) ([]byte, error) { return payload, nil })
					if err != nil {
						tx.Abort()
						continue
					}
				}
				if err := tx.Commit(txn.CommitSync, nil); err != nil {
					continue
				}
				commits.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	run.Commits = commits.Load()
	run.ElapsedMs = elapsed.Milliseconds()
	ml := eng.Multi()
	if ml != nil {
		for i := 0; i < ml.NumParts(); i++ {
			ls := ml.Part(i).Stats()
			run.CommittedBytes += ls.InsertBytes.Load()
			run.Flushes += ls.Flushes.Load()
			run.DepStalls += ml.DepStalls(i)
		}
		run.DepEdges = ml.EdgesTotal()
	} else {
		ls := eng.Log().Stats()
		run.CommittedBytes = ls.InsertBytes.Load()
		run.Flushes = ls.Flushes.Load()
	}
	if elapsed > 0 {
		run.BytesPerSec = float64(run.CommittedBytes) / elapsed.Seconds()
	}
	if run.Flushes > 0 {
		run.StallRate = float64(run.DepStalls) / float64(run.Flushes)
	}

	// Power-cut the devices and re-run recovery: the merge verifies no
	// surviving log holds a record whose cross-log predecessor is
	// missing (ErrDependencyViolated). A run that commits at partitioned
	// speed but violates dependency order must fail here, not pass on
	// throughput alone.
	for _, m := range mems {
		m.CrashFreeze()
	}
	eng.Close()
	if ml != nil {
		ml.Close()
	} else {
		eng.Log().Close()
	}
	for _, m := range mems {
		m.Remount()
	}
	eng2, _, err := txn.Restart(rc)
	if err != nil {
		return run, fmt.Errorf("recovery after crash: %w", err)
	}
	eng2.Close()
	if m2 := eng2.Multi(); m2 != nil {
		m2.Close()
	} else {
		eng2.Log().Close()
	}
	return run, nil
}
