package bench

import (
	"testing"
	"time"
)

// TestRunPartitionsShort sanity-checks the partition-scaling
// microbenchmark at test scale: both sides commit, the partitioned
// side observes cross-log edges, and the post-run crash + recovery
// merge (which fails on any dependency-order violation) passes. The
// throughput floor and stall-rate ceiling are CI gates applied at full
// scale by aetherbench -json (make bench-smoke), not here — a loaded
// test machine must not flake the suite on a performance ratio.
func TestRunPartitionsShort(t *testing.T) {
	res, err := RunPartitions(PartitionConfig{Duration: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Single.Commits == 0 || res.Multi.Commits == 0 {
		t.Fatalf("a side committed nothing: single=%d multi=%d", res.Single.Commits, res.Multi.Commits)
	}
	if res.Single.Partitions != 1 || res.Multi.Partitions != 4 {
		t.Fatalf("unexpected partition counts: %d vs %d", res.Single.Partitions, res.Multi.Partitions)
	}
	if res.Multi.DepEdges == 0 {
		t.Fatal("partitioned side observed no cross-log edges; the workload exercises nothing")
	}
	if res.Single.DepEdges != 0 || res.Single.DepStalls != 0 {
		t.Fatalf("single-log side reports dependency activity: %+v", res.Single)
	}
	t.Logf("%v", res)
}
