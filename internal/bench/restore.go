package bench

import (
	"bytes"
	"fmt"
	"time"

	"aether"
)

// RestoreConfig parameterizes the point-in-time-restore microbenchmark:
// the same deterministic workload is committed into two databases
// archiving into in-memory object stores — one cutting materialized
// snapshots at a fixed byte cadence, one keeping only raw (compacted)
// history — and RestoreTo of the durable end is timed against both.
// The snapshot side replays just the tail past the newest snapshot;
// the raw side replays the whole history from genesis.
type RestoreConfig struct {
	// Batches x TxnsPerBatch is the committed-transaction count.
	Batches int
	// TxnsPerBatch is the transactions committed per batch.
	TxnsPerBatch int
	// ValueBytes is the row payload size; with the per-record framing it
	// sets how many log bytes the raw side must replay end to end.
	ValueBytes int
	// SegmentSize is the log segment size (snapshots cut on archived
	// segment boundaries, so it bounds the snapshot side's tail).
	SegmentSize int64
	// SnapshotEveryBytes is the snapshot cadence on the snapshot side.
	SnapshotEveryBytes int64
	// CompactSegments arms cloud-tier compaction on both sides, so the
	// raw side reads its history back through indexed packs — the
	// realistic worst case, not a strawman.
	CompactSegments int
	// Iters is how many timed RestoreTo calls each side gets; the best
	// run is reported (restores share nothing, so min is the honest
	// figure on a noisy host).
	Iters int
}

// RestoreResult reports the restore-latency comparison.
type RestoreResult struct {
	// Txns is the committed-transaction count behind the restore point.
	Txns int `json:"txns"`
	// LogBytes is the full history length the raw side replayed.
	LogBytes int64 `json:"log_bytes"`
	// RestoreAt is the snapshot side's restore target (its durable end).
	RestoreAt int64 `json:"restore_at"`
	// Snapshots is how many snapshot objects the snapshot side had cut.
	Snapshots int64 `json:"snapshots"`
	// PacksBuilt counts compaction runs across both sides.
	PacksBuilt int64 `json:"packs_built"`
	// SnapshotMS is the best RestoreTo latency via the newest snapshot.
	SnapshotMS float64 `json:"snapshot_ms"`
	// RawMS is the best RestoreTo latency via full from-genesis replay.
	RawMS float64 `json:"raw_ms"`
}

// Speedup is raw-replay restore latency over snapshot-based latency.
func (r RestoreResult) Speedup() float64 {
	if r.SnapshotMS <= 0 {
		return 0
	}
	return r.RawMS / r.SnapshotMS
}

// String renders the one-line summary the CLI prints.
func (r RestoreResult) String() string {
	return fmt.Sprintf("restore %d txns (%d log bytes, %d snapshots): %.2fms via snapshot vs %.2fms raw replay — %.1fx",
		r.Txns, r.LogBytes, r.Snapshots, r.SnapshotMS, r.RawMS, r.Speedup())
}

// restoreWorkload commits the deterministic insert/update mix into db
// and returns the expected final committed state (key -> payload).
func restoreWorkload(db *aether.DB, tbl *aether.Table, cfg RestoreConfig) (map[uint64][]byte, error) {
	s := db.Session()
	defer s.Close()
	model := make(map[uint64][]byte, cfg.Batches*cfg.TxnsPerBatch)
	val := func(key uint64, gen int) []byte {
		v := make([]byte, cfg.ValueBytes)
		for i := range v {
			v[i] = byte(key + uint64(gen) + uint64(i))
		}
		return v
	}
	for b := 0; b < cfg.Batches; b++ {
		for i := 0; i < cfg.TxnsPerBatch; i++ {
			// +1: row key 0 aliases the table lock (never insert it).
			key := uint64(b*cfg.TxnsPerBatch+i) + 1
			tx := s.Begin()
			if err := tx.Insert(tbl, key, aether.Row(key, val(key, 0))); err != nil {
				tx.Abort()
				return nil, fmt.Errorf("insert %d: %w", key, err)
			}
			model[key] = val(key, 0)
			// Rewrite an older key now and then, so restored state is a
			// replay result, not just an insert union.
			if old := key - 7; key%5 == 3 && key > 7 {
				if err := tx.Update(tbl, old, func([]byte) ([]byte, error) {
					return aether.Row(old, val(old, 1)), nil
				}); err != nil {
					tx.Abort()
					return nil, fmt.Errorf("update %d: %w", old, err)
				}
				model[old] = val(old, 1)
			}
			if err := tx.Commit(); err != nil {
				return nil, fmt.Errorf("commit %d: %w", key, err)
			}
		}
	}
	return model, nil
}

// quiesceRemote checkpoints and waits until the cloud tier settles:
// no parked segments pending upload and the snapshot count stable
// across consecutive polls — so the timed restores see the final
// object layout, not a daemon mid-pass.
func quiesceRemote(db *aether.DB) (aether.Stats, error) {
	deadline := time.Now().Add(10 * time.Second)
	stable := 0
	last := db.Stats()
	for {
		if err := db.Checkpoint(); err != nil {
			return aether.Stats{}, err
		}
		st := db.Stats()
		if st.LogSegmentsPendingArchive == 0 && st.LogSnapshots == last.LogSnapshots {
			stable++
			if stable >= 3 {
				return st, nil
			}
		} else {
			stable = 0
		}
		last = st
		if time.Now().After(deadline) {
			return aether.Stats{}, fmt.Errorf("cloud tier did not settle: %d segments pending, %d snapshots",
				st.LogSegmentsPendingArchive, st.LogSnapshots)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// timeRestore runs RestoreTo(at) iters times and returns the restored
// state of the first run plus the best latency in milliseconds.
func timeRestore(db *aether.DB, at int64, table string, iters int) (map[uint64][]byte, float64, error) {
	var state map[uint64][]byte
	best := 0.0
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		r, err := db.RestoreTo(at)
		if err != nil {
			return nil, 0, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if i == 0 || ms < best {
			best = ms
		}
		if state == nil {
			state = make(map[uint64][]byte)
			err := r.Scan(table, func(key uint64, row []byte) bool {
				state[key] = append([]byte(nil), aether.RowPayload(row)...)
				return true
			})
			if err != nil {
				return nil, 0, err
			}
		}
	}
	return state, best, nil
}

// diffRestored returns a description of the first divergence between
// an expected model and a restored state, or "".
func diffRestored(want, got map[uint64][]byte) string {
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Sprintf("key %d missing", k)
		}
		if !bytes.Equal(v, g) {
			return fmt.Sprintf("key %d value diverged", k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("key %d unexpected", k)
		}
	}
	return ""
}

// RunRestore executes the restore-latency microbenchmark: commit the
// identical workload into a snapshot-cutting database and a raw-only
// one (both archiving into an in-memory cloud with compaction armed),
// then time RestoreTo of the durable end against each. Both restored
// states must equal the workload's committed model — the speedup is
// only meaningful if the fast path restores the same bytes.
func RunRestore(cfg RestoreConfig) (RestoreResult, error) {
	if cfg.Batches <= 0 {
		cfg.Batches = 24
	}
	if cfg.TxnsPerBatch <= 0 {
		cfg.TxnsPerBatch = 25
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 192
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 16 << 10
	}
	if cfg.SnapshotEveryBytes <= 0 {
		cfg.SnapshotEveryBytes = 32 << 10
	}
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = 4
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	res := RestoreResult{Txns: cfg.Batches * cfg.TxnsPerBatch}

	open := func(snapshotEvery int64) (*aether.DB, *aether.Table, error) {
		db, err := aether.Open(aether.Options{
			SegmentSize:        cfg.SegmentSize,
			RemoteStore:        aether.NewMemObjectStore(),
			CompactSegments:    cfg.CompactSegments,
			SnapshotEveryBytes: snapshotEvery,
			Mode:               aether.CommitSync,
		})
		if err != nil {
			return nil, nil, err
		}
		tbl, err := db.CreateTable("bench")
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		return db, tbl, nil
	}

	dbSnap, tblSnap, err := open(cfg.SnapshotEveryBytes)
	if err != nil {
		return res, fmt.Errorf("bench restore: snapshot side: %w", err)
	}
	defer dbSnap.Close()
	dbRaw, tblRaw, err := open(0)
	if err != nil {
		return res, fmt.Errorf("bench restore: raw side: %w", err)
	}
	defer dbRaw.Close()

	model, err := restoreWorkload(dbSnap, tblSnap, cfg)
	if err != nil {
		return res, fmt.Errorf("bench restore: snapshot side: %w", err)
	}
	modelRaw, err := restoreWorkload(dbRaw, tblRaw, cfg)
	if err != nil {
		return res, fmt.Errorf("bench restore: raw side: %w", err)
	}
	if d := diffRestored(model, modelRaw); d != "" {
		return res, fmt.Errorf("bench restore: workloads diverged before restore: %s", d)
	}

	stSnap, err := quiesceRemote(dbSnap)
	if err != nil {
		return res, fmt.Errorf("bench restore: snapshot side: %w", err)
	}
	stRaw, err := quiesceRemote(dbRaw)
	if err != nil {
		return res, fmt.Errorf("bench restore: raw side: %w", err)
	}
	if stSnap.LogSnapshots == 0 {
		return res, fmt.Errorf("bench restore: snapshot side cut no snapshots (cadence %d over %d txns) — the comparison is vacuous",
			cfg.SnapshotEveryBytes, res.Txns)
	}
	res.Snapshots = stSnap.LogSnapshots
	res.PacksBuilt = stSnap.LogPacksBuilt + stRaw.LogPacksBuilt

	res.RestoreAt = dbSnap.RestorePoint()
	atRaw := dbRaw.RestorePoint()
	res.LogBytes = atRaw

	gotSnap, snapMS, err := timeRestore(dbSnap, res.RestoreAt, "bench", cfg.Iters)
	if err != nil {
		return res, fmt.Errorf("bench restore: RestoreTo via snapshot: %w", err)
	}
	res.SnapshotMS = snapMS
	gotRaw, rawMS, err := timeRestore(dbRaw, atRaw, "bench", cfg.Iters)
	if err != nil {
		return res, fmt.Errorf("bench restore: RestoreTo via raw replay: %w", err)
	}
	res.RawMS = rawMS

	if d := diffRestored(model, gotSnap); d != "" {
		return res, fmt.Errorf("bench restore: snapshot-path state diverged from committed model: %s", d)
	}
	if d := diffRestored(model, gotRaw); d != "" {
		return res, fmt.Errorf("bench restore: raw-replay state diverged from committed model: %s", d)
	}
	return res, nil
}
