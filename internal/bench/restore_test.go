package bench

import "testing"

// TestRestoreMicrobenchmark runs PR 10's restore-latency comparison at
// test scale: point-in-time restore through the newest cloud snapshot
// must beat a full from-genesis raw replay of the same history, and
// both restored states must equal the workload's committed model
// (RunRestore fails internally on any divergence). Best-of-3 on the
// latency ratio because a loaded CI host can stall any single attempt;
// the correctness checks hold on every attempt.
func TestRestoreMicrobenchmark(t *testing.T) {
	cfg := RestoreConfig{
		Batches:            16,
		TxnsPerBatch:       20,
		ValueBytes:         128,
		SegmentSize:        8 << 10,
		SnapshotEveryBytes: 16 << 10,
		CompactSegments:    4,
		Iters:              2,
	}
	if testing.Short() {
		cfg.Batches = 10
	}
	best := 0.0
	var last RestoreResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunRestore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(res)
		if res.Snapshots == 0 {
			t.Fatalf("no snapshots cut: %+v", res)
		}
		last = res
		if s := res.Speedup(); s > best {
			best = s
		}
		if best >= 1.2 {
			return
		}
	}
	t.Fatalf("snapshot restore only %.2fx over raw replay across 3 attempts, want ≥ 1.2x (%v)", best, last)
}
