package bench

import (
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/metrics"
	"aether/internal/storage"
	"aether/internal/txn"
)

// parseDuration is time.ParseDuration with bench-friendly error context.
func parseDuration(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}

// newRigWithFlushInterval builds a rig whose group-commit interval is
// pinned (the AblationGroupCommit knob).
func newRigWithFlushInterval(interval time.Duration) (*Rig, error) {
	dev := logdev.NewMem(logdev.ProfileFlash)
	lm, err := core.New(core.Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 24},
		Device:        dev,
		FlushInterval: interval,
		// Disable the other triggers so the interval alone governs.
		FlushTxns:  1 << 30,
		FlushBytes: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	eng, err := txn.NewEngine(txn.Config{
		Log:     lm,
		Locks:   lockmgr.New(lockmgr.Config{DeadlockTimeout: 250 * time.Millisecond, SLI: true}),
		Store:   storage.NewStore(),
		Archive: storage.NewMemArchive(),
	})
	if err != nil {
		lm.Close()
		return nil, err
	}
	return &Rig{Eng: eng, Dev: dev, Breakdown: &metrics.Breakdown{}, lm: lm}, nil
}
