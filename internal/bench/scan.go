package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aether/internal/storage"
)

// ScanConfig parameterizes the cold-scan microbenchmark: a sequential
// scan over a table several times larger than the page cache, faulting
// every page from the database file — once against a single-mutex
// archive (the pre-concurrency PageFile, where every read serialized
// with every other read and writer), and once against the concurrent
// PageFile with streaming read-ahead.
type ScanConfig struct {
	// Dir is scratch space for the pagefile.
	Dir string
	// Pages is the table size in pages. Must exceed CachePages several
	// times over for the scan to be genuinely cold.
	Pages int
	// CachePages is the buffer-pool budget both phases run under.
	CachePages int
	// PrefetchDepth arms read-ahead; both phases get the same depth, so
	// the serial side's loss is purely its inability to overlap reads.
	PrefetchDepth int
	// ReadDelay is the simulated per-pread device latency (the log
	// devices' methodology applied to page reads). With it the overlap
	// win is deterministic: a serialized scan pays the delay once per
	// page, a pipelined one amortizes it across the read-ahead window.
	// 0 measures the host filesystem alone — noise on a page cache.
	ReadDelay time.Duration
}

// ScanResult reports the cold-scan comparison.
type ScanResult struct {
	// Pages is the scanned table size in pages.
	Pages int `json:"pages"`
	// CachePages is the budget both scans ran under.
	CachePages int `json:"cache_pages"`
	// PrefetchDepth is the configured read-ahead depth.
	PrefetchDepth int `json:"prefetch_depth"`
	// SerialPPS is pages/s through the single-mutex archive.
	SerialPPS float64 `json:"serial_pps"`
	// ConcurrentPPS is pages/s through the concurrent pagefile.
	ConcurrentPPS float64 `json:"concurrent_pps"`
	// PrefetchReads is the concurrent phase's read-ahead volume.
	PrefetchReads int64 `json:"prefetch_reads"`
	// PrefetchHits is how many of the concurrent scan's accesses were
	// served by a prefetched page instead of a demand fault.
	PrefetchHits int64 `json:"prefetch_hits"`
	// HitRate is PrefetchHits over the scan's page accesses.
	HitRate float64 `json:"hit_rate"`
	// ReadRetries counts optimistic pagefile reads that lost a race and
	// retried during the concurrent phase.
	ReadRetries int64 `json:"read_retries"`
}

// Speedup is concurrent scan throughput over single-mutex throughput.
func (r ScanResult) Speedup() float64 {
	if r.SerialPPS <= 0 {
		return 0
	}
	return r.ConcurrentPPS / r.SerialPPS
}

// String renders the one-line summary the CLI prints.
func (r ScanResult) String() string {
	return fmt.Sprintf("scan %d pages, budget %d, depth %d: %.0f pages/s concurrent vs %.0f serial — %.1fx (%.0f%% prefetch hits)",
		r.Pages, r.CachePages, r.PrefetchDepth, r.ConcurrentPPS, r.SerialPPS, r.Speedup(), 100*r.HitRate)
}

// serialArchive wraps an Archive in one mutex over every operation —
// the pre-PR-6 PageFile, where a reader waited out every other reader
// and every batch writer's fsyncs. It is the scan benchmark's baseline.
type serialArchive struct {
	mu sync.Mutex
	a  storage.Archive
}

// Get serializes reads behind the single mutex.
func (s *serialArchive) Get(pid uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Get(pid)
}

// Put serializes single-page writes behind the single mutex.
func (s *serialArchive) Put(pid uint64, img []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Put(pid, img)
}

// PutBatch holds the mutex across the whole batch — journal fsync,
// in-place writes and pagefile fsync — exactly as the old single-mutex
// pagefile did.
func (s *serialArchive) PutBatch(batch []storage.PageImage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.a.(storage.ArchiveBatcher); ok {
		return b.PutBatch(batch)
	}
	for _, e := range batch {
		if err := s.a.Put(e.PID, e.Img); err != nil {
			return err
		}
	}
	return nil
}

// Contains forwards the existence probe under the mutex.
func (s *serialArchive) Contains(pid uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.a.(storage.ArchiveContains); ok {
		return c.Contains(pid)
	}
	return false
}

// Pages forwards the ID listing under the mutex.
func (s *serialArchive) Pages() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Pages()
}

// scanPhase cold-scans every pid through a fresh bounded pool over the
// given backend, returning pages/s and the pool's final counters.
func scanPhase(backend storage.Archive, pids []uint64, cachePages, depth int) (float64, storage.CacheStats, error) {
	st := storage.NewStore()
	if err := st.SetBackend(backend); err != nil {
		return 0, storage.CacheStats{}, err
	}
	st.SetCachePages(int64(cachePages))
	st.SetPrefetch(depth)
	t0 := time.Now()
	for _, pid := range pids {
		p, err := st.Get(pid)
		if err != nil {
			return 0, storage.CacheStats{}, fmt.Errorf("bench scan fault %d: %w", pid, err)
		}
		if p == nil {
			return 0, storage.CacheStats{}, fmt.Errorf("bench scan: page %d missing from the archive", pid)
		}
		p.Unpin()
	}
	elapsed := time.Since(t0)
	cs := st.CacheStats()
	if cs.Resident > int64(cachePages) {
		return 0, cs, fmt.Errorf("bench scan: resident %d exceeds budget %d", cs.Resident, cachePages)
	}
	return float64(len(pids)) / elapsed.Seconds(), cs, nil
}

// RunScan executes the cold-scan microbenchmark: build a table in the
// pagefile, then sequentially fault every page through a cache a
// fraction of its size — once with reads funneled through a single
// mutex (no overlap possible, read-ahead or not), once through the
// concurrent pagefile where the read-ahead pipeline overlaps device
// reads ahead of demand.
func RunScan(cfg ScanConfig) (ScanResult, error) {
	if cfg.Pages <= 0 {
		cfg.Pages = 256
	}
	if cfg.CachePages <= 0 {
		cfg.CachePages = cfg.Pages / 8
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 16
	}
	res := ScanResult{Pages: cfg.Pages, CachePages: cfg.CachePages, PrefetchDepth: cfg.PrefetchDepth}
	if cfg.Pages < 4*cfg.CachePages {
		return res, fmt.Errorf("bench scan: %d pages over a %d-page cache is not larger-than-memory", cfg.Pages, cfg.CachePages)
	}

	// Build: a contiguous run of archived pages, as a checkpointed table
	// would sit in the database file.
	st, _ := newDirtyStore(cfg.Pages)
	pf, err := storage.OpenPageFile(filepath.Join(cfg.Dir, "scan-pagefile.db"))
	if err != nil {
		return res, err
	}
	defer pf.Close()
	if n := st.ArchiveDirtyPages(pf, 1<<62); n != cfg.Pages {
		return res, fmt.Errorf("bench scan: archived %d pages, want %d", n, cfg.Pages)
	}
	pids, err := pf.Pages()
	if err != nil {
		return res, err
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	pf.SetReadDelay(cfg.ReadDelay)

	serialPPS, _, err := scanPhase(&serialArchive{a: pf}, pids, cfg.CachePages, cfg.PrefetchDepth)
	if err != nil {
		return res, fmt.Errorf("serial phase: %w", err)
	}
	res.SerialPPS = serialPPS

	retries0 := pf.ReadRetries()
	concurrentPPS, cs, err := scanPhase(pf, pids, cfg.CachePages, cfg.PrefetchDepth)
	if err != nil {
		return res, fmt.Errorf("concurrent phase: %w", err)
	}
	res.ConcurrentPPS = concurrentPPS
	res.PrefetchReads = cs.PrefetchReads
	res.PrefetchHits = cs.PrefetchHits
	res.HitRate = float64(cs.PrefetchHits) / float64(len(pids))
	res.ReadRetries = pf.ReadRetries() - retries0
	if cs.StealWrites != 0 {
		return res, fmt.Errorf("bench scan: read-only scan performed %d demand steals", cs.StealWrites)
	}
	return res, nil
}
