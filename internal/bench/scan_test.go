package bench

import (
	"testing"
	"time"
)

// TestScanMicrobenchmark runs PR 6's headline comparison: a cold
// sequential scan over a larger-than-memory table must be ≥ 2× faster
// through the concurrent pagefile with read-ahead than through the
// single-mutex baseline, on a simulated device where a page read costs
// 200µs (between the paper's flash and disk figures — tmpfs preads
// alone would measure scheduler noise). Best-of-3 on the wall-clock
// ratio, like the sweep microbenchmark, because a loaded CI host can
// stall any single attempt; the hit-rate floor holds on every attempt.
func TestScanMicrobenchmark(t *testing.T) {
	pages := 192
	if testing.Short() {
		pages = 96
	}
	best := 0.0
	var last ScanResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunScan(ScanConfig{
			Dir:           t.TempDir(),
			Pages:         pages,
			CachePages:    pages / 8,
			PrefetchDepth: 16,
			ReadDelay:     200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Log(res)
		if res.PrefetchReads == 0 || res.PrefetchHits == 0 {
			t.Fatalf("read-ahead never engaged: %+v", res)
		}
		last = res
		if s := res.Speedup(); s > best {
			best = s
		}
		if best >= 2 {
			return
		}
	}
	t.Fatalf("concurrent scan only %.1fx over the single-mutex baseline across 3 attempts, want ≥ 2x (%v)", best, last)
}
