package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"aether/internal/lsn"
	"aether/internal/storage"
)

// SweepConfig parameterizes the checkpoint-sweep microbenchmark: the
// same dirty set is archived once through the paged database file
// (batched writeback, O(1) fsyncs) and once through the legacy
// one-file-per-page FileArchive (one fsync per page).
type SweepConfig struct {
	// Pages is the dirty-set size.
	Pages int
	// Dir is a scratch directory for both archives.
	Dir string
	// SyncLatency is the simulated per-fsync device response time, the
	// log devices' methodology applied to the database file (the paper's
	// 100µs flash / 1ms disk series). With it the comparison is
	// deterministic: the per-page protocol pays it Pages times, the
	// batched protocol twice. 0 measures the host filesystem alone.
	SyncLatency time.Duration
}

// SweepSide reports one archive's sweep.
type SweepSide struct {
	// Duration is the sweep's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// Fsyncs is how many device fsyncs the sweep issued.
	Fsyncs int64 `json:"fsyncs"`
	// Pages is how many page images the sweep wrote.
	Pages int `json:"pages"`
}

// SweepResult compares the two writeback strategies.
type SweepResult struct {
	// Pages is the dirty-set size both sides sweep.
	Pages int `json:"pages"`
	// PageFile is the batched double-write pagefile's side.
	PageFile SweepSide `json:"pagefile"`
	// FileArchive is the legacy one-file-per-page side.
	FileArchive SweepSide `json:"filearchive"`
}

// Speedup is FileArchive sweep time over PageFile sweep time.
func (r SweepResult) Speedup() float64 {
	if r.PageFile.Duration <= 0 {
		return 0
	}
	return float64(r.FileArchive.Duration) / float64(r.PageFile.Duration)
}

// String renders the one-line summary the CLI prints.
func (r SweepResult) String() string {
	return fmt.Sprintf("sweep %d pages: pagefile %v (%d fsyncs) vs filearchive %v (%d fsyncs) — %.1fx",
		r.Pages, r.PageFile.Duration.Round(time.Microsecond), r.PageFile.Fsyncs,
		r.FileArchive.Duration.Round(time.Microsecond), r.FileArchive.Fsyncs, r.Speedup())
}

// newDirtyStore builds a store with n archivable dirty pages.
func newDirtyStore(n int) (*storage.Store, []uint64) {
	st := storage.NewStore()
	pids := make([]uint64, n)
	for i := 0; i < n; i++ {
		p, _ := st.GetOrCreate(storage.MakePageID(1, uint64(i+1)))
		_ = p.Insert(0, []byte(fmt.Sprintf("sweep-bench-row-%08d", i)))
		p.SetLSN(1)
		st.MarkDirty(p.ID(), 1)
		pids[i] = p.ID()
		p.Unpin()
	}
	return st, pids
}

func redirty(st *storage.Store, pids []uint64) {
	for _, pid := range pids {
		st.MarkDirty(pid, 1)
	}
}

// RunSweep executes the microbenchmark. durable is far above every
// pageLSN, so the whole dirty set is archivable both times.
func RunSweep(cfg SweepConfig) (SweepResult, error) {
	if cfg.Pages <= 0 {
		cfg.Pages = 1000
	}
	res := SweepResult{Pages: cfg.Pages}
	st, pids := newDirtyStore(cfg.Pages)
	durable := lsn.LSN(1) << 40

	pf, err := storage.OpenPageFile(filepath.Join(cfg.Dir, "sweep-pagefile.db"))
	if err != nil {
		return res, err
	}
	defer pf.Close()
	pf.SetSyncDelay(cfg.SyncLatency)
	pfF0 := pf.Fsyncs() // exclude the one-time header fsync at create
	t0 := time.Now()
	n := st.ArchiveDirtyPages(pf, durable)
	res.PageFile = SweepSide{Duration: time.Since(t0), Fsyncs: pf.Fsyncs() - pfF0, Pages: n}
	if n != cfg.Pages {
		return res, fmt.Errorf("bench: pagefile sweep wrote %d pages, want %d", n, cfg.Pages)
	}

	redirty(st, pids)
	fa, err := storage.OpenFileArchive(filepath.Join(cfg.Dir, "sweep-pages"))
	if err != nil {
		return res, err
	}
	fa.SetSyncDelay(cfg.SyncLatency)
	t0 = time.Now()
	n = st.ArchiveDirtyPages(fa, durable)
	res.FileArchive = SweepSide{Duration: time.Since(t0), Fsyncs: fa.Fsyncs(), Pages: n}
	if n != cfg.Pages {
		return res, fmt.Errorf("bench: filearchive sweep wrote %d pages, want %d", n, cfg.Pages)
	}
	return res, nil
}
