package bench

import (
	"testing"
	"time"
)

// TestSweepMicrobenchmark runs the PR's headline perf comparison on a
// flash-class simulated device: the batched pagefile sweep must beat the
// per-page FileArchive by ≥ 5×, and do it with O(1) fsyncs. The 100µs
// simulated sync latency makes the ratio's floor deterministic across
// host filesystems (a per-page protocol pays it once per page; real-disk
// fsyncs only widen the gap). The fsync-count assertions hold on every
// attempt; the wall-clock ratio gets best-of-3, because a concurrent
// test package hammering the same disk can stall any single attempt's
// two real fsyncs arbitrarily.
func TestSweepMicrobenchmark(t *testing.T) {
	pages := 400
	if testing.Short() {
		pages = 100
	}
	best := 0.0
	var last SweepResult
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunSweep(SweepConfig{
			Pages:       pages,
			Dir:         t.TempDir(),
			SyncLatency: 100 * time.Microsecond, // logdev.ProfileFlash's figure
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Log(res)
		if res.PageFile.Fsyncs > 2 {
			t.Fatalf("pagefile sweep used %d fsyncs, want ≤ 2 (O(1))", res.PageFile.Fsyncs)
		}
		if res.FileArchive.Fsyncs < int64(pages) {
			t.Fatalf("filearchive sweep used %d fsyncs, expected ≥ %d (one per page)",
				res.FileArchive.Fsyncs, pages)
		}
		last = res
		if s := res.Speedup(); s > best {
			best = s
		}
		if best >= 5 {
			return
		}
	}
	t.Fatalf("pagefile sweep only %.1fx faster than filearchive across 3 attempts, want ≥ 5x (%v)", best, last)
}
