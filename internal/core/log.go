// Package core implements Aether's log manager: the paper's scalable log
// buffer (§5) joined to a flush daemon with a group-commit policy (§4) and
// the commit-subscription machinery that Early Lock Release and Flush
// Pipelining are built on.
//
// The division of labor follows the paper exactly:
//
//   - Agent threads insert records through per-thread Appenders; inserts
//     never perform I/O and never block on it.
//   - A single daemon goroutine drains the buffer's released region to the
//     log device using a group-commit policy ("flush every X transactions,
//     L bytes logged, or T time elapsed, whichever comes first").
//   - Transactions subscribe to the durable horizon: synchronously
//     (WaitDurable — the baseline's blocking commit, one scheduling event
//     per transaction) or asynchronously (OnDurable — flush pipelining's
//     detach/re-attach, no blocking on the agent thread).
package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/metrics"
)

// Config parameterizes a LogManager.
type Config struct {
	// Buffer configures the in-memory log buffer (variant, size, slots).
	Buffer logbuf.Config
	// Device is the stable storage the daemon flushes to.
	Device logdev.Device
	// FlushTxns flushes once this many commit subscriptions are pending
	// (the "X transactions" group-commit trigger). Default 32.
	FlushTxns int
	// FlushBytes flushes once this many released bytes are pending (the
	// "L bytes" trigger). Default 256KiB.
	FlushBytes int
	// FlushInterval flushes this long after the previous flush if any
	// work is pending (the "T time elapsed" trigger). Default 50µs.
	FlushInterval time.Duration
	// Breakdown, if set, receives PhaseLogWait time from WaitDurable —
	// the synchronous-commit stall the time-breakdown figures plot.
	Breakdown *metrics.Breakdown
	// SwitchPenalty burns this much CPU on every blocking commit wait,
	// modeling the scheduler cost of descheduling and redispatching an
	// agent thread ("each scheduling decision consumes several
	// microseconds of CPU time which cannot be overlapped", §4). Go's
	// scheduler is too cheap to exhibit the paper's Solaris overload on
	// its own; this knob reproduces it deterministically.
	SwitchPenalty time.Duration
}

func (c *Config) applyDefaults() {
	if c.FlushTxns <= 0 {
		c.FlushTxns = 32
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 256 << 10
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Microsecond
	}
}

// Stats exposes the log manager's operational counters.
type Stats struct {
	// Inserts counts records appended.
	Inserts metrics.Counter
	// InsertBytes counts bytes appended.
	InsertBytes metrics.Counter
	// Flushes counts device sync operations performed by the daemon.
	Flushes metrics.Counter
	// FlushBytes counts bytes made durable.
	FlushBytes metrics.Counter
	// SyncWaiters counts WaitDurable calls (each is one blocking commit —
	// a scheduling event in the paper's terms).
	SyncWaiters metrics.Counter
	// AsyncWaiters counts OnDurable subscriptions (pipelined commits).
	AsyncWaiters metrics.Counter
	// GroupSize records bytes per flush — group commit's batching effect.
	GroupSize metrics.Histogram
	// FlushLatency records time from daemon pickup to durable.
	FlushLatency metrics.Histogram
	// Truncations counts log truncations that advanced the horizon.
	Truncations metrics.Counter
	// TruncatedBytes counts logical log bytes released behind the
	// truncation horizon (recyclable by the device).
	TruncatedBytes metrics.Counter
}

// ErrClosed is returned for operations on a closed log manager.
var ErrClosed = errors.New("core: log manager closed")

// LogManager is the Aether log: a scalable in-memory buffer, a flush
// daemon, and the durable horizon.
type LogManager struct {
	cfg   Config
	buf   logbuf.Buffer
	rd    *logbuf.Reader
	dev   logdev.Device
	stats Stats

	durable lsn.Atomic
	// appendEnd is the highest end LSN any Append has returned — the
	// ceiling Force can ever be satisfied at. Forcing beyond it would
	// wait for log that nobody is going to write.
	appendEnd lsn.Atomic

	// Appended-bytes notification (the background checkpointer's
	// trigger): fn fires once per notify-interval of inserted bytes.
	notify     atomic.Pointer[appendNotify]
	notifyNext atomic.Int64

	// limiter, when set, clamps how far each flush may harden — the
	// multi-log coordinator's hook for inter-log dependency edges.
	limiter atomic.Pointer[flushLimiter]
	// durNotify, when set, runs after every durable-horizon advance (on
	// the daemon goroutine) — the coordinator's cross-log re-wake hook.
	durNotify atomic.Pointer[durableNotify]

	mu       sync.Mutex
	waiters  waiterHeap
	pending  int // commit subscriptions since last flush
	failed   error
	closed   bool
	wakeCh   chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
	flushReq bool
}

// New builds and starts a log manager; the flush daemon runs until Close.
func New(cfg Config) (*LogManager, error) {
	cfg.applyDefaults()
	if cfg.Device == nil {
		return nil, errors.New("core: Config.Device is required")
	}
	buf, err := logbuf.New(cfg.Buffer)
	if err != nil {
		return nil, err
	}
	if got := lsn.LSN(cfg.Device.DurableSize()); got != cfg.Buffer.Base {
		return nil, fmt.Errorf("core: buffer base %v does not match device durable size %v",
			cfg.Buffer.Base, got)
	}
	lm := &LogManager{
		cfg:    cfg,
		buf:    buf,
		rd:     buf.Reader(),
		dev:    cfg.Device,
		wakeCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	// The log resumes where the device left off: LSNs are stable log
	// addresses, so the base of a restarted log is the durable size (an
	// existing log is read by recovery before the manager is built).
	lm.durable.Store(cfg.Buffer.Base)
	lm.appendEnd.Store(cfg.Buffer.Base)
	go lm.daemon()
	return lm, nil
}

// Buffer returns the underlying log buffer (for experiments that inspect
// watermarks).
func (lm *LogManager) Buffer() logbuf.Buffer { return lm.buf }

// Stats returns the manager's counters.
func (lm *LogManager) Stats() *Stats { return &lm.stats }

// Durable returns the durable horizon: every record whose end LSN is at
// or below it has reached stable storage.
func (lm *LogManager) Durable() lsn.LSN { return lm.durable.Load() }

// Appender is a per-goroutine handle for inserting records. It owns an
// encode scratch buffer so record marshalling costs no allocation.
type Appender struct {
	lm      *LogManager
	ins     logbuf.Inserter
	scratch []byte
}

// NewAppender returns a fresh per-goroutine appender.
func (lm *LogManager) NewAppender() *Appender {
	return &Appender{
		lm:      lm,
		ins:     lm.buf.NewInserter(),
		scratch: make([]byte, 4096),
	}
}

// Append encodes rec and inserts it, returning the record's LSN and its
// end (the durability point a committer must wait for).
func (a *Appender) Append(rec *logrec.Record) (at, end lsn.LSN, err error) {
	size := rec.EncodedSize()
	if size > cap(a.scratch) {
		a.scratch = make([]byte, size)
	}
	buf := a.scratch[:size]
	if err := rec.EncodeInto(buf); err != nil {
		return 0, 0, err
	}
	at, err = a.ins.Insert(buf)
	if err != nil {
		return 0, 0, err
	}
	a.lm.stats.Inserts.Inc()
	a.lm.stats.InsertBytes.Add(int64(size))
	a.lm.appendEnd.AdvanceTo(at.Add(size))
	a.lm.maybeWakeForBytes()
	return at, at.Add(size), nil
}

// maybeWakeForBytes applies the "L bytes logged" group-commit trigger.
func (lm *LogManager) maybeWakeForBytes() {
	start, end := lm.rd.Pending()
	if int(end.Sub(start)) >= lm.cfg.FlushBytes {
		lm.wake()
	}
	lm.maybeNotifyAppend()
}

// appendNotify is one registered appended-bytes subscription.
type appendNotify struct {
	every int64
	fn    func()
}

// SetAppendNotify arranges for fn to run each time roughly every more
// bytes have been inserted since the last firing — the background
// checkpointer's "checkpoint every N log bytes" trigger. fn runs on an
// appender goroutine and must not block (nudge a channel, don't work).
// every <= 0 or a nil fn clears the subscription.
func (lm *LogManager) SetAppendNotify(every int64, fn func()) {
	if every <= 0 || fn == nil {
		lm.notify.Store(nil)
		return
	}
	lm.notifyNext.Store(lm.stats.InsertBytes.Load() + every)
	lm.notify.Store(&appendNotify{every: every, fn: fn})
}

// maybeNotifyAppend fires the appended-bytes subscription when the
// insert volume crosses its next threshold. The CAS elects exactly one
// of the racing appenders to fire and advances the threshold past the
// bytes already inserted, so a burst cannot queue up redundant firings.
func (lm *LogManager) maybeNotifyAppend() {
	n := lm.notify.Load()
	if n == nil {
		return
	}
	total := lm.stats.InsertBytes.Load()
	next := lm.notifyNext.Load()
	if total < next {
		return
	}
	if lm.notifyNext.CompareAndSwap(next, total+n.every) {
		n.fn()
	}
}

// flushLimiter wraps the flush-clamp callback so it can live in an
// atomic.Pointer.
type flushLimiter struct {
	fn func(start, end lsn.LSN) lsn.LSN
}

// durableNotify wraps the durable-advance callback so it can live in an
// atomic.Pointer.
type durableNotify struct {
	fn func(durable lsn.LSN)
}

// SetFlushLimiter installs fn as the daemon's flush clamp: before each
// flush of the released region [start, end), the daemon replaces end
// with fn(start, end) (which must return a record-aligned LSN in
// [start, end]). The multi-log coordinator uses this to hold a
// partition's flush at the first record whose inter-log dependency edge
// is not yet durable — the paper's A.5 rule that a younger record's log
// never hardens before the older record's log. fn runs on the daemon
// goroutine and must not block. A nil fn clears the limiter.
func (lm *LogManager) SetFlushLimiter(fn func(start, end lsn.LSN) lsn.LSN) {
	if fn == nil {
		lm.limiter.Store(nil)
		return
	}
	lm.limiter.Store(&flushLimiter{fn: fn})
}

// SetDurableNotify arranges for fn(durable) to run on the daemon
// goroutine after every durable-horizon advance. The multi-log
// coordinator uses this to release dependency edges held on this log
// and re-wake the partitions it was blocking. fn must not block. A nil
// fn clears the subscription.
func (lm *LogManager) SetDurableNotify(fn func(durable lsn.LSN)) {
	if fn == nil {
		lm.durNotify.Store(nil)
		return
	}
	lm.durNotify.Store(&durableNotify{fn: fn})
}

// Poke nudges the flush daemon to run another pass (non-blocking,
// coalescing). The multi-log coordinator pokes a partition whose flush
// was clamped by a dependency edge once the edge's target log hardens.
func (lm *LogManager) Poke() { lm.wake() }

// AppendEnd returns the highest end LSN any append has returned — the
// ceiling of the log's written region.
func (lm *LogManager) AppendEnd() lsn.LSN { return lm.appendEnd.Load() }

// AppendBytes inserts an already-encoded record (microbenchmark path).
func (a *Appender) AppendBytes(buf []byte) (at, end lsn.LSN, err error) {
	at, err = a.ins.Insert(buf)
	if err != nil {
		return 0, 0, err
	}
	a.lm.stats.Inserts.Inc()
	a.lm.stats.InsertBytes.Add(int64(len(buf)))
	a.lm.appendEnd.AdvanceTo(at.Add(len(buf)))
	a.lm.maybeWakeForBytes()
	return at, at.Add(len(buf)), nil
}

// waiter is one durability subscription.
type waiter struct {
	end lsn.LSN
	fn  func(error)
}

// waiterHeap is a min-heap of waiters by end LSN.
type waiterHeap []waiter

// Len implements heap.Interface.
func (h waiterHeap) Len() int { return len(h) }

// Less implements heap.Interface (ordering by end LSN).
func (h waiterHeap) Less(i, j int) bool { return h[i].end < h[j].end }

// Swap implements heap.Interface.
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(waiter)) }

// Pop implements heap.Interface.
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// OnDurable arranges for fn(nil) to run (on the daemon goroutine) once
// the durable horizon reaches end. If the log has failed or is closed,
// fn runs immediately with the error. This is flush pipelining's
// detach: the calling agent thread keeps executing other transactions.
func (lm *LogManager) OnDurable(end lsn.LSN, fn func(error)) {
	lm.stats.AsyncWaiters.Inc()
	if lm.durable.Load() >= end {
		fn(nil)
		return
	}
	lm.mu.Lock()
	if err := lm.subscribeLocked(end, fn); err != nil {
		lm.mu.Unlock()
		fn(err)
		return
	}
	lm.mu.Unlock()
}

// subscribeLocked registers a waiter and applies the group-commit
// triggers. Caller holds lm.mu.
func (lm *LogManager) subscribeLocked(end lsn.LSN, fn func(error)) error {
	if lm.failed != nil {
		return lm.failed
	}
	if lm.closed {
		return ErrClosed
	}
	heap.Push(&lm.waiters, waiter{end: end, fn: fn})
	lm.pending++
	if lm.pending >= lm.cfg.FlushTxns {
		lm.wake()
	}
	return nil
}

// WaitDurable blocks until the durable horizon reaches end — the
// traditional synchronous commit. Every call is one agent-thread
// block/unblock pair, which is precisely the scheduling cost flush
// pipelining eliminates.
func (lm *LogManager) WaitDurable(end lsn.LSN) error {
	lm.stats.SyncWaiters.Inc()
	if lm.durable.Load() >= end {
		return nil
	}
	var t0 time.Time
	if lm.cfg.Breakdown != nil {
		t0 = time.Now()
	}
	ch := make(chan error, 1)
	lm.mu.Lock()
	if err := lm.subscribeLocked(end, func(err error) { ch <- err }); err != nil {
		lm.mu.Unlock()
		return err
	}
	lm.mu.Unlock()
	err := <-ch
	if lm.cfg.Breakdown != nil {
		lm.cfg.Breakdown.Add(metrics.PhaseLogWait, time.Since(t0))
	}
	if lm.cfg.SwitchPenalty > 0 {
		burnCPU(lm.cfg.SwitchPenalty)
	}
	return err
}

// burnCPU spins for roughly d of unoverlappable CPU time.
func burnCPU(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Force makes the log durable at least through upTo, blocking until it
// is. This is the buffer pool's flush-before-steal hook (the WAL rule:
// no dirty page image may reach the database file before the log that
// produced it), and with storage.WAL it is how the pool cross-checks
// faulted images against the durable horizon.
//
// Forcing beyond the appended log end is an error, not a wait: no flush
// can ever satisfy it (a page stamped with a synthetic LSN by unlogged
// recovery undo would otherwise hang its evictor forever; the error
// makes the steal decline and the page stay resident).
func (lm *LogManager) Force(upTo lsn.LSN) error {
	if lm.durable.Load() >= upTo {
		return nil
	}
	if end := lm.appendEnd.Load(); upTo > end {
		return fmt.Errorf("core: Force(%v) beyond the appended log end %v", upTo, end)
	}
	lm.Flush()
	return lm.WaitDurable(upTo)
}

// Truncate releases the log prefix below before: the checkpointer's
// horizon, forwarded to the device. Devices that cannot truncate make
// this a no-op. before is clamped to the durable horizon (truncating
// unflushed log would discard the only copy). It returns how many bytes
// the device newly released.
func (lm *LogManager) Truncate(before lsn.LSN) (int64, error) {
	t, ok := lm.dev.(logdev.Truncator)
	if !ok {
		return 0, nil
	}
	if d := lm.durable.Load(); before > d {
		before = d
	}
	old := t.Base()
	if err := t.Truncate(int64(before)); err != nil {
		return 0, fmt.Errorf("core: device truncate: %w", err)
	}
	released := t.Base() - old
	if released > 0 {
		lm.stats.Truncations.Inc()
		lm.stats.TruncatedBytes.Add(released)
	}
	return released, nil
}

// Base returns the log's truncation horizon: the address of the oldest
// byte still readable on the device (0 if never truncated).
func (lm *LogManager) Base() lsn.LSN {
	return lsn.LSN(logdev.BaseOffset(lm.dev))
}

// CanArchive reports whether the device ships dead segments to cold
// storage before recycling them — i.e. it is an
// logdev.ArchivingTruncator with an archiver attached. The engine's
// background archiver goroutine starts only when this is true.
func (lm *LogManager) CanArchive() bool {
	a, ok := lm.dev.(logdev.ArchivingTruncator)
	return ok && a.HasArchiver()
}

// ArchivePending forwards to the device's archive-then-recycle drain:
// every dead segment parked by a truncation is durably copied to cold
// storage and only then has its slot recycled. Devices without
// archiving make this a no-op.
func (lm *LogManager) ArchivePending() (int, error) {
	a, ok := lm.dev.(logdev.ArchivingTruncator)
	if !ok {
		return 0, nil
	}
	return a.ArchivePending()
}

// Flush asks the daemon to flush everything released so far without
// waiting for it to complete. Combine with WaitDurable to force.
func (lm *LogManager) Flush() {
	lm.mu.Lock()
	lm.flushReq = true
	lm.mu.Unlock()
	lm.wake()
}

// wake nudges the daemon (non-blocking, coalescing).
func (lm *LogManager) wake() {
	select {
	case lm.wakeCh <- struct{}{}:
	default:
	}
}

// Close flushes what remains, stops the daemon and fails any unreachable
// waiters. The device is not closed (the caller owns it).
func (lm *LogManager) Close() error {
	lm.mu.Lock()
	if lm.closed {
		lm.mu.Unlock()
		<-lm.doneCh
		return lm.failed
	}
	lm.closed = true
	lm.mu.Unlock()
	close(lm.stopCh)
	<-lm.doneCh
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.failed
}

// daemon is the flush loop: a single thread doing all log I/O, so agent
// threads never block on the device (§4.1).
func (lm *LogManager) daemon() {
	defer close(lm.doneCh)
	batch := make([]byte, 0, 1<<20)
	timer := time.NewTimer(lm.cfg.FlushInterval)
	defer timer.Stop()
	for {
		stop := false
		select {
		case <-lm.stopCh:
			stop = true
		case <-lm.wakeCh:
		case <-timer.C:
		}

		lm.flushOnce(&batch)

		if stop {
			// Final drain: one more pass in case inserts raced Close.
			lm.flushOnce(&batch)
			lm.failWaiters(ErrClosed)
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(lm.cfg.FlushInterval)
	}
}

// shouldFlush decides whether this daemon pass performs a flush. The
// *timing* of passes embodies the group-commit policy: the FlushTxns
// trigger wakes the daemon early via subscribeLocked, the FlushBytes
// trigger via Append's wake, and the FlushInterval timer is the
// "T elapsed" trigger. Once awake, any pending work is flushed.
func (lm *LogManager) shouldFlush(pendingBytes int) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.flushReq || lm.closed || lm.pending > 0 || pendingBytes > 0
}

// flushOnce drains the released region (if policy says so), makes it
// durable, and completes satisfied waiters.
func (lm *LogManager) flushOnce(batch *[]byte) {
	start, end := lm.rd.Pending()
	pendingBytes := int(end.Sub(start))
	if !lm.shouldFlush(pendingBytes) {
		return
	}
	lm.mu.Lock()
	lm.flushReq = false
	lm.pending = 0
	lm.mu.Unlock()

	// The flush limiter may hold back the tail of the released region
	// (an inter-log dependency edge not yet durable). The held bytes
	// stay pending; the coordinator pokes the daemon when the edge
	// clears.
	if l := lm.limiter.Load(); l != nil && pendingBytes > 0 {
		limited := l.fn(start, end)
		if limited < start {
			limited = start
		}
		if limited > end {
			limited = end
		}
		end = limited
		pendingBytes = int(end.Sub(start))
	}

	if pendingBytes > 0 {
		t0 := time.Now()
		if cap(*batch) < pendingBytes {
			*batch = make([]byte, 0, pendingBytes)
		}
		b := (*batch)[:pendingBytes]
		lm.rd.CopyOut(b, start, end)
		if _, err := lm.dev.Append(b); err != nil {
			lm.fail(fmt.Errorf("core: device append: %w", err))
			return
		}
		// Ring space is reusable as soon as the bytes are in the device's
		// write path; durability is published only after Sync.
		lm.rd.MarkFlushed(end)
		if err := lm.dev.Sync(); err != nil {
			lm.fail(fmt.Errorf("core: device sync: %w", err))
			return
		}
		lm.durable.AdvanceTo(end)
		lm.stats.Flushes.Inc()
		lm.stats.FlushBytes.Add(int64(pendingBytes))
		lm.stats.GroupSize.Observe(time.Duration(pendingBytes)) // bytes, reusing histogram buckets
		lm.stats.FlushLatency.Observe(time.Since(t0))
		if n := lm.durNotify.Load(); n != nil {
			n.fn(end)
		}
	}
	lm.completeWaiters()
}

// completeWaiters pops every waiter whose end is durable and runs its
// continuation — the daemon "notifies the agent threads of
// newly-hardened transactions".
func (lm *LogManager) completeWaiters() {
	durable := lm.durable.Load()
	var ready []waiter
	lm.mu.Lock()
	for lm.waiters.Len() > 0 && lm.waiters[0].end <= durable {
		ready = append(ready, heap.Pop(&lm.waiters).(waiter))
	}
	lm.mu.Unlock()
	for _, w := range ready {
		w.fn(nil)
	}
}

// Failed returns the error that poisoned this log (a device append or
// sync failure, or a failed flush dependency in multi-log mode), or nil
// while the log is healthy. Once failed, every current and future
// durability waiter receives the error.
func (lm *LogManager) Failed() error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.failed
}

// fail poisons the log: all current and future waiters get err.
func (lm *LogManager) fail(err error) {
	lm.mu.Lock()
	if lm.failed == nil {
		lm.failed = err
	}
	lm.mu.Unlock()
	lm.failWaiters(err)
}

// failWaiters completes all remaining waiters with err (after completing
// any that are genuinely durable).
func (lm *LogManager) failWaiters(err error) {
	lm.completeWaiters()
	var rest []waiter
	lm.mu.Lock()
	for lm.waiters.Len() > 0 {
		rest = append(rest, heap.Pop(&lm.waiters).(waiter))
	}
	lm.mu.Unlock()
	for _, w := range rest {
		w.fn(err)
	}
}
