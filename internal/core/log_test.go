package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
)

func newTestLM(t *testing.T, variant logbuf.Variant, dev logdev.Device) *LogManager {
	t.Helper()
	if dev == nil {
		dev = logdev.NewMem(logdev.ProfileMemory)
	}
	lm, err := New(Config{
		Buffer: logbuf.Config{Variant: variant, Size: 1 << 18},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lm.Close() })
	return lm
}

func TestNewRequiresDevice(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil device must be rejected")
	}
}

func TestAppendAndWaitDurable(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm := newTestLM(t, logbuf.VariantCD, dev)
	ap := lm.NewAppender()

	var end lsn.LSN
	for i := 0; i < 10; i++ {
		rec := logrec.NewUpdate(uint64(i), lsn.Undefined, 1, logrec.UpdatePayload{
			Op: logrec.OpSet, After: []byte("value"),
		})
		_, e, err := ap.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		end = e
	}
	if err := lm.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	if got := lm.Durable(); got < end {
		t.Fatalf("durable %v < %v", got, end)
	}
	// The device must hold a decodable stream of exactly those records.
	data, err := logdev.ReadAll(dev)
	if err != nil {
		t.Fatal(err)
	}
	it := logrec.NewIterator(data, 0)
	n := 0
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if rec.Kind != logrec.KindUpdate || rec.TxnID != uint64(n) {
			t.Fatalf("record %d wrong: %+v", n, rec.Header)
		}
		n++
	}
	if it.Err() != nil || n != 10 {
		t.Fatalf("device stream: n=%d err=%v", n, it.Err())
	}
}

func TestWaitDurableAlreadyDurable(t *testing.T) {
	lm := newTestLM(t, logbuf.VariantBaseline, nil)
	ap := lm.NewAppender()
	_, end, err := ap.Append(logrec.NewCommit(1, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	// Second wait returns immediately (fast path).
	start := time.Now()
	if err := lm.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("fast path too slow")
	}
}

func TestOnDurableRunsContinuation(t *testing.T) {
	lm := newTestLM(t, logbuf.VariantCD, nil)
	ap := lm.NewAppender()
	_, end, err := ap.Append(logrec.NewCommit(7, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan error, 1)
	lm.OnDurable(end, func(err error) { ch <- err })
	select {
	case err := <-ch:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("continuation never ran")
	}
	if lm.Durable() < end {
		t.Fatal("continuation ran before durability")
	}
}

func TestOnDurableOrdering(t *testing.T) {
	// Continuations must fire in LSN order: a dependant transaction's
	// commit callback can never run before its predecessor's (the ELR
	// safety condition realized by the serial log).
	lm := newTestLM(t, logbuf.VariantCDME, nil)
	ap := lm.NewAppender()
	const n = 200
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		_, end, err := ap.Append(logrec.NewCommit(uint64(i), lsn.Undefined))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		lm.OnDurable(end, func(err error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("continuations out of order: %d before %d", order[i-1], order[i])
		}
	}
}

func TestGroupCommitBatches(t *testing.T) {
	// With a slow device and many concurrent committers, the daemon must
	// batch: far fewer syncs than commits.
	dev := logdev.NewMem(logdev.Profile{Name: "slow", SyncLatency: time.Millisecond})
	lm, err := New(Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 18},
		Device:        dev,
		FlushInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	const workers = 16
	const perW = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ap := lm.NewAppender()
			for i := 0; i < perW; i++ {
				_, end, err := ap.Append(logrec.NewCommit(uint64(w*1000+i), lsn.Undefined))
				if err != nil {
					t.Error(err)
					return
				}
				if err := lm.WaitDurable(end); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commits := int64(workers * perW)
	syncs := dev.Stats().Syncs.Load()
	if syncs >= commits {
		t.Fatalf("no batching: %d syncs for %d commits", syncs, commits)
	}
	t.Logf("group commit: %d commits in %d syncs (%.1f commits/sync)",
		commits, syncs, float64(commits)/float64(syncs))
}

func TestDeviceFailurePropagates(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm := newTestLM(t, logbuf.VariantBaseline, dev)
	ap := lm.NewAppender()
	_, end, err := ap.Append(logrec.NewCommit(1, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("media gone")
	dev.FailWith(boom)
	_, end2, err := ap.Append(logrec.NewCommit(2, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.WaitDurable(end2); !errors.Is(err, boom) {
		t.Fatalf("got %v, want device error", err)
	}
	// Subsequent subscriptions fail immediately.
	if err := lm.WaitDurable(end2.Add(10)); !errors.Is(err, boom) {
		t.Fatalf("poisoned log accepted a waiter: %v", err)
	}
}

func TestCloseDrainsAndCompletesWaiters(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm, err := New(Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 18},
		Device:        dev,
		FlushInterval: time.Hour, // only explicit triggers
		FlushTxns:     1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := lm.NewAppender()
	_, end, err := ap.Append(logrec.NewCommit(1, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.Close(); err != nil {
		t.Fatal(err)
	}
	if got := lm.Durable(); got < end {
		t.Fatalf("Close did not drain: durable %v < %v", got, end)
	}
	// Operations after close fail.
	if err := lm.WaitDurable(end.Add(1000)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// Double close is safe.
	if err := lm.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushTrigger(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm, err := New(Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantBaseline, Size: 1 << 18},
		Device:        dev,
		FlushInterval: time.Hour,
		FlushTxns:     1 << 30,
		FlushBytes:    1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	ap := lm.NewAppender()
	_, end, _ := ap.Append(logrec.NewCommit(1, lsn.Undefined))
	if lm.Durable() >= end {
		t.Fatal("flushed without any trigger")
	}
	lm.Flush()
	deadline := time.After(2 * time.Second)
	for lm.Durable() < end {
		select {
		case <-deadline:
			t.Fatal("Flush never made the record durable")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestFlushBytesTrigger(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm, err := New(Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantBaseline, Size: 1 << 18},
		Device:        dev,
		FlushInterval: time.Hour,
		FlushTxns:     1 << 30,
		FlushBytes:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	ap := lm.NewAppender()
	for i := 0; i < 200; i++ { // 200 * 48B > 4096
		if _, _, err := ap.Append(logrec.NewCommit(uint64(i), lsn.Undefined)); err != nil {
			t.Fatal(err)
		}
	}
	// The byte trigger guarantees a flush once ≥4096 bytes are pending;
	// the sub-threshold tail is the interval trigger's job (disabled here).
	deadline := time.After(2 * time.Second)
	for lm.Durable() < 4096 {
		select {
		case <-deadline:
			t.Fatalf("byte trigger never flushed (durable=%v)", lm.Durable())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestConcurrentCommitStress(t *testing.T) {
	for _, v := range []logbuf.Variant{logbuf.VariantBaseline, logbuf.VariantCD, logbuf.VariantCDME} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			dev := logdev.NewMem(logdev.ProfileMemory)
			lm := newTestLM(t, v, dev)
			var completed atomic.Int64
			var wg sync.WaitGroup
			const workers = 12
			const perW = 150
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ap := lm.NewAppender()
					var done sync.WaitGroup
					for i := 0; i < perW; i++ {
						rec := logrec.NewUpdate(uint64(w), lsn.Undefined, uint64(i),
							logrec.UpdatePayload{Op: logrec.OpSet, After: make([]byte, 64)})
						if _, _, err := ap.Append(rec); err != nil {
							t.Error(err)
							return
						}
						_, end, err := ap.Append(logrec.NewCommit(uint64(w*perW+i), lsn.Undefined))
						if err != nil {
							t.Error(err)
							return
						}
						if i%2 == 0 {
							if err := lm.WaitDurable(end); err != nil {
								t.Error(err)
								return
							}
							completed.Add(1)
						} else {
							done.Add(1)
							lm.OnDurable(end, func(err error) {
								if err == nil {
									completed.Add(1)
								}
								done.Done()
							})
						}
					}
					done.Wait()
				}(w)
			}
			wg.Wait()
			if got := completed.Load(); got != workers*perW {
				t.Fatalf("completed %d, want %d", got, workers*perW)
			}
			// Whole device stream decodes.
			lm.Close()
			data, err := logdev.ReadAll(dev)
			if err != nil {
				t.Fatal(err)
			}
			it := logrec.NewIterator(data, 0)
			n := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
			}
			if it.Err() != nil {
				t.Fatalf("stream gap: %v", it.Err())
			}
			if n != workers*perW*2 {
				t.Fatalf("decoded %d records, want %d", n, workers*perW*2)
			}
		})
	}
}

func TestStatsAccounting(t *testing.T) {
	lm := newTestLM(t, logbuf.VariantCD, nil)
	ap := lm.NewAppender()
	_, end, _ := ap.Append(logrec.NewCommit(1, lsn.Undefined))
	lm.WaitDurable(end)
	ch := make(chan struct{})
	lm.OnDurable(end, func(error) { close(ch) })
	<-ch
	st := lm.Stats()
	if st.Inserts.Load() != 1 || st.SyncWaiters.Load() != 1 || st.AsyncWaiters.Load() != 1 {
		t.Fatalf("stats wrong: %d %d %d",
			st.Inserts.Load(), st.SyncWaiters.Load(), st.AsyncWaiters.Load())
	}
}

func TestAppendLargeRecordGrowsScratch(t *testing.T) {
	lm := newTestLM(t, logbuf.VariantCD, nil)
	ap := lm.NewAppender()
	big := logrec.NewPad(16 << 10)
	_, end, err := ap.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
}
