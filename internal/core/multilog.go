// multilog.go implements partitioned (multi-log) operation: N
// independent LogManagers — one flush daemon, group-commit stream,
// durable watermark and archiver lane each — coordinated by a MultiLog
// that assigns every record a global sequence stamp and enforces the
// inter-log flush dependencies of the paper's Appendix A.5: a younger
// record whose page was last updated in another log must not become
// durable before that older record does.
//
// The design leans on two invariants:
//
//  1. Within a partition, appends are serialized (appendMu), so LSN
//     order equals global-seq order on every log. That makes the global
//     durable horizon computable (the min over partitions of each
//     partition's first non-durable seq), and gives the progress
//     argument: the globally smallest unflushed seq can only depend on
//     already-flushed records, so its partition's clamp always sits
//     after it.
//  2. All of a transaction's records live on its home log, so a commit
//     ack needs only the home log's durable horizon: the flush limiter
//     has already refused to harden the commit's log past any update
//     whose cross-log dependency was not durable, which covers the
//     touched-partition set transitively.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// maxSeq is the largest assignable global sequence stamp: the record
// header stores Seq in the former 32-bit reserved word, so a
// partitioned database is bounded to ~4.29 billion records over its
// lifetime. The coordinator errors out with ErrSeqExhausted well before
// wraparound could corrupt the merge order.
const maxSeq = math.MaxUint32 - 1

// ErrSeqExhausted means the 32-bit global sequence space is used up;
// the database must be rebuilt (dump/reload) to continue partitioned
// operation.
var ErrSeqExhausted = errors.New("core: global sequence space exhausted")

// seqMark records one appended record's (end LSN, seq) on a partition.
// The pending list of marks, pruned as the partition's durable horizon
// advances, is how the global durable seq is computed. A mark whose end
// is still lsn.Undefined is provisional: its append is in flight and
// its seq must not be reported durable yet.
type seqMark struct {
	end lsn.LSN
	seq uint64
}

// depEdge is one inter-log flush dependency: the record starting at
// `at` on this partition must not harden before partition `target` is
// durable through `need`.
type depEdge struct {
	at     lsn.LSN
	target int
	need   lsn.LSN
}

// pageLast remembers where a page was last updated: which partition,
// the record's end LSN there, and its global seq. It is consulted at
// append time to stamp update records with their PrevPageSeq and to
// detect cross-log dependencies.
type pageLast struct {
	part int
	end  lsn.LSN
	seq  uint64
}

// logPartition is one shard of the partitioned log.
type logPartition struct {
	idx int
	lm  *LogManager

	// appendMu serializes appends to this partition, guaranteeing that
	// LSN order equals seq order on this log (invariant 1 above).
	appendMu sync.Mutex
	ap       *Appender

	// All three below are guarded by MultiLog.depMu.
	//
	// marks is the pending (end, seq) list in append order.
	marks []seqMark
	// edges is the unsatisfied dependency queue in `at` order.
	edges []depEdge
	// holdActive/hold close the registration race: between inserting a
	// record and queueing its edge, the partition's flush is clamped at
	// hold (the released end before the insert), so the daemon can
	// never harden a record whose edge is not yet visible.
	holdActive bool
	hold       lsn.LSN

	// depStalls counts flushes clamped by an unsatisfied edge.
	depStalls atomic.Int64
}

// horizonSample is one (seq, per-partition append end) snapshot taken
// at checkpoint time. Because each end was read before the seq, every
// record with a larger seq starts at or beyond that end — so once the
// release horizon passes seq, each partition may truncate to its
// sampled end without discarding live log.
type horizonSample struct {
	seq  uint64
	ends []lsn.LSN
}

// MultiLog coordinates N per-partition LogManagers into one logical,
// globally ordered log. It implements the same durable-horizon
// interface as a single LogManager (storage.WAL), but over global
// sequence stamps instead of byte LSNs: Durable() and Force() take and
// return seqs cast to lsn.LSN, and buffer-pool page stamps are seqs in
// multi-log mode.
type MultiLog struct {
	parts []*logPartition

	// lastSeq is the last assigned global sequence stamp.
	lastSeq atomic.Uint64

	// depMu guards the dependency state: every partition's marks,
	// edges and hold, the page map, and the horizon history.
	depMu    sync.Mutex
	pageMap  map[uint64]pageLast
	horizons []horizonSample

	// edgesTotal counts every cross-log page dependency observed at
	// append time — the same definition internal/distlog's simulator
	// uses, so the two can be cross-checked on one trace. edgesEnforced
	// counts the subset that was still non-durable and had to be
	// queued.
	edgesTotal    atomic.Int64
	edgesEnforced atomic.Int64

	closed bool
}

// NewMultiLog builds a coordinator over the given per-partition log
// managers (which must already be running). startSeq is the largest
// global sequence stamp observed by recovery (0 for a fresh database);
// new records are stamped from startSeq+1. The coordinator installs
// flush limiters and durable-notify hooks on every manager; callers
// must not install their own.
func NewMultiLog(lms []*LogManager, startSeq uint64) (*MultiLog, error) {
	if len(lms) < 2 {
		return nil, errors.New("core: MultiLog needs at least 2 partitions")
	}
	ml := &MultiLog{
		parts:   make([]*logPartition, len(lms)),
		pageMap: make(map[uint64]pageLast),
	}
	ml.lastSeq.Store(startSeq)
	for i, lm := range lms {
		p := &logPartition{idx: i, lm: lm, ap: lm.NewAppender()}
		ml.parts[i] = p
		lm.SetFlushLimiter(func(start, end lsn.LSN) lsn.LSN {
			return ml.limit(p, start, end)
		})
		lm.SetDurableNotify(func(lsn.LSN) { ml.pokeOthers(p.idx) })
	}
	return ml, nil
}

// NumParts returns the partition count.
func (ml *MultiLog) NumParts() int { return len(ml.parts) }

// Part returns partition i's log manager (for stats, waits, and
// truncation bookkeeping).
func (ml *MultiLog) Part(i int) *LogManager { return ml.parts[i].lm }

// LastSeq returns the last assigned global sequence stamp.
func (ml *MultiLog) LastSeq() uint64 { return ml.lastSeq.Load() }

// EdgesTotal returns the number of cross-log page dependencies observed
// at append time (the distlog simulator's definition: the page's
// previous update lives on a different log).
func (ml *MultiLog) EdgesTotal() int64 { return ml.edgesTotal.Load() }

// EdgesEnforced returns the subset of EdgesTotal whose older record was
// not yet durable at append time and therefore had to be queued for the
// flush limiter.
func (ml *MultiLog) EdgesEnforced() int64 { return ml.edgesEnforced.Load() }

// DepStalls returns how many of partition i's flushes were clamped by
// an unsatisfied dependency edge.
func (ml *MultiLog) DepStalls(i int) int64 { return ml.parts[i].depStalls.Load() }

// pageTracked reports whether the record kind participates in page
// dependency tracking (it modifies a page during redo).
func pageTracked(rec *logrec.Record) bool {
	return rec.PageID != 0 && (rec.Kind == logrec.KindUpdate || rec.Kind == logrec.KindCLR)
}

// Append stamps rec with the next global seq and inserts it into
// partition part, returning the record's LSN, end, and seq. Update
// records additionally carry their page's previous global seq in Aux
// (recovery's merge-order verification), and a cross-log page
// dependency queues a flush edge so the partition cannot harden this
// record before the older one's log reaches it.
func (ml *MultiLog) Append(part int, rec *logrec.Record) (at, end lsn.LSN, seq uint64, err error) {
	p := ml.parts[part]
	p.appendMu.Lock()
	defer p.appendMu.Unlock()

	var prev pageLast
	needEdge := false
	var need lsn.LSN
	tracked := pageTracked(rec)
	ml.depMu.Lock()
	if tracked {
		if pl, ok := ml.pageMap[rec.PageID]; ok {
			prev = pl
			if prev.part != part {
				ml.edgesTotal.Add(1)
				// The edge's flush target is the dependency log's append
				// end, not just the older record's end: by the time this
				// conflicting append can run, the older transaction has
				// released its page lock, which it only does after its
				// commit (or abort+CLR) records are inserted — so the
				// append end covers them, and Early Lock Release stays
				// safe across logs (a dependant's commit can never
				// harden before the transaction it read from). Reading
				// it BEFORE assigning our seq keeps every record the
				// edge waits on at a strictly smaller seq, which is the
				// deadlock-freedom argument.
				target := ml.parts[prev.part].lm
				need = target.AppendEnd()
				if need > target.Durable() {
					needEdge = true
					// Clamp this partition's flush at the current
					// released end until the edge is registered: the
					// daemon must not see the new record before its
					// edge (appendMu means ours is the only in-flight
					// append here, so released end == AppendEnd).
					p.holdActive = true
					p.hold = p.lm.AppendEnd()
				}
			}
		}
	}
	seq = ml.lastSeq.Add(1)
	if seq > maxSeq {
		p.holdActive = false
		ml.depMu.Unlock()
		return 0, 0, 0, ErrSeqExhausted
	}
	rec.Seq = uint32(seq)
	if rec.Kind == logrec.KindUpdate {
		// CLRs keep their Aux (UndoNextLSN); updates carry the page's
		// previous seq (0 for a first update) for recovery's merge-order
		// verification.
		rec.Aux = prev.seq
	}
	// Provisional mark: the seq exists but its end is unknown until the
	// insert returns; Durable() must not report it (or anything after
	// it on this partition) durable in the window.
	p.marks = append(p.marks, seqMark{end: lsn.Undefined, seq: seq})
	ml.depMu.Unlock()

	at, end, err = p.ap.Append(rec)

	ml.depMu.Lock()
	if err != nil {
		// The seq was assigned but the record never reached the log:
		// drop the provisional mark (it is the tail — appendMu) and
		// leave a harmless gap in the sequence space.
		p.marks = p.marks[:len(p.marks)-1]
		p.holdActive = false
		ml.depMu.Unlock()
		return 0, 0, 0, err
	}
	p.marks[len(p.marks)-1].end = end
	if needEdge {
		p.edges = append(p.edges, depEdge{at: at, target: prev.part, need: need})
		ml.edgesEnforced.Add(1)
	}
	p.holdActive = false
	if tracked {
		ml.pageMap[rec.PageID] = pageLast{part: part, end: end, seq: seq}
	}
	ml.depMu.Unlock()
	return at, end, seq, nil
}

// limit is partition p's flush clamp (runs on p's daemon goroutine): it
// pops satisfied dependency edges and holds the flush at the first
// record whose edge target is not yet durable — the physical
// enforcement that a younger record's log never hardens before the
// older record's log reaches its LSN.
func (ml *MultiLog) limit(p *logPartition, start, end lsn.LSN) lsn.LSN {
	ml.depMu.Lock()
	limited := end
	var depErr error
	for len(p.edges) > 0 {
		e := p.edges[0]
		target := ml.parts[e.target].lm
		if target.Durable() >= e.need {
			p.edges = p.edges[1:]
			continue
		}
		if err := target.Failed(); err != nil {
			depErr = fmt.Errorf("core: flush dependency on failed log partition %d: %w", e.target, err)
		}
		if e.at < limited {
			limited = e.at
			if limited < start {
				limited = start
			}
			p.depStalls.Add(1)
		}
		break
	}
	if p.holdActive && p.hold < limited {
		limited = p.hold
		if limited < start {
			limited = start
		}
	}
	ml.depMu.Unlock()
	if depErr != nil {
		// The clamping edge can never clear: its target log is poisoned
		// (device failure), so nothing past the clamp will ever be safe
		// to harden. Propagate the poison instead of stalling forever —
		// this partition's committers get an error, exactly as the dead
		// partition's own committers do. (Called after depMu is released:
		// fail runs waiter continuations, which must not run under the
		// dependency lock.)
		p.lm.fail(depErr)
	}
	return limited
}

// pokeOthers nudges every partition except from: one log's durable
// advance may have satisfied edges clamping the others.
func (ml *MultiLog) pokeOthers(from int) {
	for _, p := range ml.parts {
		if p.idx != from {
			p.lm.Poke()
		}
	}
}

// durableSeqLocked computes the global durable seq: every record with a
// stamp at or below it is durable on its partition. Caller holds depMu.
func (ml *MultiLog) durableSeqLocked() uint64 {
	floor := ml.lastSeq.Load()
	for _, p := range ml.parts {
		d := p.lm.Durable()
		i := 0
		for i < len(p.marks) && p.marks[i].end != lsn.Undefined && p.marks[i].end <= d {
			i++
		}
		if i > 0 {
			p.marks = append(p.marks[:0], p.marks[i:]...)
		}
		if len(p.marks) > 0 && p.marks[0].seq-1 < floor {
			floor = p.marks[0].seq - 1
		}
	}
	return floor
}

// Durable returns the global durable horizon as a seq (cast to
// lsn.LSN): every record whose global sequence stamp is at or below it
// has reached stable storage. This is the storage.WAL horizon in
// multi-log mode, where page images are stamped with seqs.
func (ml *MultiLog) Durable() lsn.LSN {
	ml.depMu.Lock()
	defer ml.depMu.Unlock()
	return lsn.LSN(ml.durableSeqLocked())
}

// Force makes every record with a global sequence stamp at or below
// upTo (a seq cast to lsn.LSN) durable, blocking until they are — the
// buffer pool's flush-before-steal hook in multi-log mode. Forcing
// beyond the last assigned seq is an error, mirroring
// LogManager.Force.
func (ml *MultiLog) Force(upTo lsn.LSN) error {
	want := uint64(upTo)
	if last := ml.lastSeq.Load(); want > last {
		return fmt.Errorf("core: Force(seq %d) beyond the last assigned seq %d", want, last)
	}
	for {
		ml.depMu.Lock()
		if ml.durableSeqLocked() >= want {
			ml.depMu.Unlock()
			return nil
		}
		inFlight := false
		targets := make([]lsn.LSN, len(ml.parts))
		for i, p := range ml.parts {
			for _, m := range p.marks {
				if m.seq > want {
					break
				}
				if m.end == lsn.Undefined {
					inFlight = true
					continue
				}
				targets[i] = m.end
			}
		}
		ml.depMu.Unlock()
		for _, p := range ml.parts {
			p.lm.Flush()
		}
		for i, p := range ml.parts {
			if targets[i] != 0 {
				if err := p.lm.WaitDurable(targets[i]); err != nil {
					return err
				}
			}
		}
		if inFlight {
			// An append raced us mid-insert; its mark will resolve as
			// soon as the (I/O-free) insert returns.
			runtime.Gosched()
		}
	}
}

// FlushAll forces everything appended so far on every partition and
// waits for it (used after recovery and at checkpoint barriers).
func (ml *MultiLog) FlushAll() error {
	for _, p := range ml.parts {
		p.lm.Flush()
	}
	for _, p := range ml.parts {
		if err := p.lm.WaitDurable(p.lm.AppendEnd()); err != nil {
			return err
		}
	}
	return nil
}

// SampleHorizon snapshots (per-partition append ends, then the current
// seq) into the horizon history. The read order matters: because each
// end is read before the seq, any record stamped later starts at or
// beyond the sampled end, so the sample is a safe truncation point once
// the release horizon passes its seq. Call at checkpoint time.
func (ml *MultiLog) SampleHorizon() {
	ends := make([]lsn.LSN, len(ml.parts))
	for i, p := range ml.parts {
		ends[i] = p.lm.AppendEnd()
	}
	seq := ml.lastSeq.Load()
	ml.depMu.Lock()
	ml.horizons = append(ml.horizons, horizonSample{seq: seq, ends: ends})
	ml.depMu.Unlock()
}

// TruncateToSeq truncates every partition to the newest sampled horizon
// whose seq is strictly below releaseSeq — discarding only records
// whose global sequence stamp is below the release horizon — and prunes
// page-map entries whose records were truncated away. It returns the
// total bytes newly released across partitions.
func (ml *MultiLog) TruncateToSeq(releaseSeq uint64) (int64, error) {
	ml.depMu.Lock()
	var best *horizonSample
	keep := 0
	for i := range ml.horizons {
		if ml.horizons[i].seq < releaseSeq {
			best = &ml.horizons[i]
			keep = i
		}
	}
	if best == nil {
		ml.depMu.Unlock()
		return 0, nil
	}
	sample := *best
	ml.horizons = append(ml.horizons[:0], ml.horizons[keep:]...)
	ml.depMu.Unlock()

	var released int64
	for i, p := range ml.parts {
		n, err := p.lm.Truncate(sample.ends[i])
		released += n
		if err != nil {
			return released, err
		}
	}

	// Truncation-driven pruning: a page entry whose record fell below
	// its partition's base points at log that no longer exists; the
	// record is necessarily durable, so dropping the entry only means
	// the page's next update is treated as its first (PrevPageSeq 0, no
	// edge) — which is exactly right.
	ml.depMu.Lock()
	for pid, pl := range ml.pageMap {
		if pl.end <= ml.parts[pl.part].lm.Base() {
			delete(ml.pageMap, pid)
		}
	}
	ml.depMu.Unlock()
	return released, nil
}

// Close closes every partition's log manager and returns the first
// error.
func (ml *MultiLog) Close() error {
	ml.depMu.Lock()
	if ml.closed {
		ml.depMu.Unlock()
		return nil
	}
	ml.closed = true
	ml.depMu.Unlock()
	var first error
	for _, p := range ml.parts {
		if err := p.lm.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
