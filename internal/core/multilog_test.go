package core

import (
	"strings"
	"testing"
	"time"

	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
)

// newTestMulti builds a 2-partition MultiLog over the given devices with
// flush triggers disarmed (huge thresholds, long interval) so the tests
// control exactly when each daemon flushes via Flush() pokes.
func newTestMulti(t *testing.T, devs []logdev.Device) *MultiLog {
	t.Helper()
	lms := make([]*LogManager, len(devs))
	for i, dev := range devs {
		lm, err := New(Config{
			Buffer:        logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 18},
			Device:        dev,
			FlushTxns:     1 << 20,
			FlushBytes:    1 << 30,
			FlushInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		lms[i] = lm
	}
	ml, err := NewMultiLog(lms, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ml.Close() })
	return ml
}

func mlUpdate(page uint64) *logrec.Record {
	return logrec.NewUpdate(1, lsn.Undefined, page, logrec.UpdatePayload{
		Op: logrec.OpSet, After: []byte("value"),
	})
}

// TestMultiLogDeadPartitionPoisonsDependents is the regression test for
// a hang found by the partitioned soak storm: when one partition's
// device dies, a commit on a *different* partition whose flush was
// clamped by a dependency edge on the dead log must fail with an error,
// not wait forever for a durable horizon that can never advance.
func TestMultiLogDeadPartitionPoisonsDependents(t *testing.T) {
	mems := []*logdev.Mem{
		logdev.NewMem(logdev.ProfileMemory),
		logdev.NewMem(logdev.ProfileMemory),
	}
	ml := newTestMulti(t, []logdev.Device{mems[0], mems[1]})

	// Page 42's first update lands on partition 0 and is left buffered
	// (triggers are disarmed), so partition 1's conflicting update below
	// records an enforced cross-log edge.
	if _, _, _, err := ml.Append(0, mlUpdate(42)); err != nil {
		t.Fatal(err)
	}
	_, end1, _, err := ml.Append(1, mlUpdate(42))
	if err != nil {
		t.Fatal(err)
	}
	if got := ml.EdgesEnforced(); got != 1 {
		t.Fatalf("enforced edges = %d, want 1", got)
	}

	// Partition 0's device dies before its buffered record hardens; its
	// next flush attempt poisons partition 0.
	mems[0].CrashFreeze()
	ml.Part(0).Flush()
	waitFor(t, time.Second, func() bool { return ml.Part(0).Failed() != nil })

	// A committer on partition 1 waits past the clamped edge. Without
	// poison propagation this blocks forever: partition 0 can never reach
	// the edge's target, so partition 1's flush stays clamped below end1.
	errCh := make(chan error, 1)
	go func() { errCh <- ml.Part(1).WaitDurable(end1) }()
	ml.Part(1).Flush()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("dependent commit reported durable past an edge into a dead log")
		}
		if !strings.Contains(err.Error(), "failed log partition 0") {
			t.Fatalf("dependent commit error = %v, want the dependency-poison error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dependent commit still waiting on a dead partition's durable horizon")
	}
}

// waitFor polls cond until it is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
