package core

import (
	"testing"

	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
)

// TestRestartContinuesLSNSpace verifies the log resumes at the device's
// durable size after a restart, keeping LSNs stable log addresses.
func TestRestartContinuesLSNSpace(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)

	lm1, err := New(Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 16},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := lm1.NewAppender()
	var end lsn.LSN
	for i := 0; i < 20; i++ {
		_, e, err := ap.Append(logrec.NewCommit(uint64(i), lsn.Undefined))
		if err != nil {
			t.Fatal(err)
		}
		end = e
	}
	if err := lm1.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	lm1.Close()

	base := lsn.LSN(dev.DurableSize())
	if base != end {
		t.Fatalf("durable size %v != last end %v", base, end)
	}

	// Restart with the correct base: first insert lands exactly at base.
	lm2, err := New(Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 16, Base: base},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lm2.Close()
	at, end2, err := lm2.NewAppender().Append(logrec.NewCommit(99, lsn.Undefined))
	if err != nil {
		t.Fatal(err)
	}
	if at != base {
		t.Fatalf("first post-restart insert at %v, want %v", at, base)
	}
	if err := lm2.WaitDurable(end2); err != nil {
		t.Fatal(err)
	}

	// The device now holds one contiguous decodable stream.
	data, err := logdev.ReadAll(dev)
	if err != nil {
		t.Fatal(err)
	}
	it := logrec.NewIterator(data, 0)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if it.Err() != nil || n != 21 {
		t.Fatalf("stream across restart: n=%d err=%v", n, it.Err())
	}
}

// TestRestartBaseMismatchRejected ensures the constructor catches a base
// that disagrees with the device (a recovery bug would corrupt LSNs).
func TestRestartBaseMismatchRejected(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	dev.Append([]byte("0123456789"))
	dev.Sync()
	_, err := New(Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 16, Base: 4},
		Device: dev,
	})
	if err == nil {
		t.Fatal("mismatched base accepted")
	}
}
