package distlog_test

import (
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/distlog"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/txn"
)

func row(key, val uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[:8], key)
	binary.LittleEndian.PutUint64(b[8:], val)
	return b
}

// mergedTrace reads every partition's durable log and returns the
// update/CLR stream in global seq order — the same total order the
// engine appended in.
func mergedTrace(t *testing.T, devs []logdev.Device) []distlog.TraceEntry {
	t.Helper()
	type seqEntry struct {
		seq uint64
		e   distlog.TraceEntry
	}
	var all []seqEntry
	for i, dev := range devs {
		data, base, err := logdev.ReadTail(dev)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		it := logrec.NewIterator(data, lsn.LSN(base))
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			if rec.Kind != logrec.KindUpdate && rec.Kind != logrec.KindCLR {
				continue
			}
			all = append(all, seqEntry{
				seq: uint64(rec.Seq),
				e:   distlog.TraceEntry{TxnID: rec.TxnID, PageID: rec.PageID, Size: int(rec.TotalLen)},
			})
		}
		if err := it.Err(); err != nil {
			t.Fatalf("partition %d: decode: %v", i, err)
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	out := make([]distlog.TraceEntry, len(all))
	for i, se := range all {
		out[i] = se.e
	}
	return out
}

// TestSimulatorMatchesEngine cross-checks the Appendix A.5 simulator
// against the real partitioned engine: run a workload through a 4-log
// engine routed by txnID%4, then replay the engine's own merged trace
// through distlog.Analyze with the identical assignment. The simulator's
// inter-log dependency count must equal the edge count the engine
// observed at append time — the two implementations count the same
// physical structure, one predictively, one for real.
func TestSimulatorMatchesEngine(t *testing.T) {
	const nParts = 4
	devs := make([]logdev.Device, nParts)
	for i := range devs {
		devs[i] = logdev.NewMem(logdev.ProfileMemory)
	}
	route := func(txnID uint64, _ uint32) int { return int(txnID % nParts) }
	eng, _, err := txn.Restart(txn.RestartConfig{
		Devices:        devs,
		RoutePartition: route,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		},
		LockConfig: lockmgr.Config{DeadlockTimeout: time.Second, SLI: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ml := eng.Multi()
	defer ml.Close()
	defer eng.Close()

	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	defer ag.Close()

	// Seed, then hammer a small key set with sequential transactions:
	// consecutive txn IDs route to different logs, so a page's update
	// chain keeps hopping partitions — the hand-off pattern A.5 counts.
	const keys = 30
	seed := ag.Begin()
	for k := uint64(1); k <= keys; k++ {
		if err := seed.Insert(tbl, k, row(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(txn.CommitSync, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tx := ag.Begin()
		key := uint64(i%keys + 1)
		if err := tx.Update(tbl, key, func([]byte) ([]byte, error) {
			return row(key, uint64(i)), nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(txn.CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ml.FlushAll(); err != nil {
		t.Fatal(err)
	}

	engineEdges := ml.EdgesTotal()
	if engineEdges == 0 {
		t.Fatal("workload produced no cross-log edges; the cross-check is vacuous")
	}

	trace := mergedTrace(t, devs)
	res := distlog.Analyze(trace, distlog.Config{
		Logs:   nParts,
		Assign: func(id uint64) int { return int(id % nParts) },
	})
	if int64(res.Dependencies) != engineEdges {
		t.Fatalf("simulator counted %d inter-log dependencies, engine observed %d edges on the same trace",
			res.Dependencies, engineEdges)
	}
	// The enforced subset can be smaller (already-durable predecessors
	// need no flush clamp) but never larger.
	if enf := ml.EdgesEnforced(); enf > engineEdges {
		t.Fatalf("enforced edges %d exceed observed edges %d", enf, engineEdges)
	}
}
