// Package distlog reproduces the paper's case against distributed
// logging (Appendix A.5, Figure 13): partition a real single-node log
// trace across N logs and count the physical inter-log dependencies that
// a distributed implementation would have to track and honor at flush
// time.
//
// A dependency arises when a page's consecutive updates land in
// different logs: the younger record's log must not become durable
// before the older one's (physiological redo would corrupt the page
// otherwise — the paper's slot 13/slot 14 example). A dependency is
// "tight" if the older record is among the most recent few records of
// its log at the time, meaning it is almost certainly unflushed and the
// dependant transaction would have to flush multiple logs in sequence.
package distlog

import (
	"fmt"
	"strings"

	"aether/internal/logrec"
)

// TraceEntry is one log record of interest: which transaction wrote it,
// which page it touched, and its size.
type TraceEntry struct {
	// TxnID is the transaction that wrote the record.
	TxnID uint64
	// PageID is the page the record touched.
	PageID uint64
	// Size is the record's encoded size in bytes.
	Size int
}

// ExtractTrace pulls the update/CLR stream out of a durable log image.
func ExtractTrace(log []byte) []TraceEntry {
	var out []TraceEntry
	it := logrec.NewIterator(log, 0)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if rec.Kind != logrec.KindUpdate && rec.Kind != logrec.KindCLR {
			continue
		}
		out = append(out, TraceEntry{
			TxnID:  rec.TxnID,
			PageID: rec.PageID,
			Size:   int(rec.TotalLen),
		})
	}
	return out
}

// Config parameterizes the partitioning analysis.
type Config struct {
	// Logs is the number of log partitions (the paper uses 8).
	Logs int
	// TightWindow is how many trailing records of a log count as "still
	// in flight" (the paper marks dependencies on one of the five most
	// recent records as tight).
	TightWindow int
	// Assign maps a transaction to a log partition. Nil = txnID % Logs
	// (transactions stay in one log, as any practical design requires).
	Assign func(txnID uint64) int
}

// Result summarizes the dependency structure.
type Result struct {
	// Logs is the partition count analyzed.
	Logs int
	// Records is the number of trace records analyzed.
	Records int
	// Bytes is the total log volume analyzed.
	Bytes int
	// Transactions is the number of distinct transactions.
	Transactions int
	// Dependencies counts page hand-offs between different logs.
	Dependencies int
	// TightDependencies counts dependencies whose older record was
	// within TightWindow of its log's tail at the time.
	TightDependencies int
	// IntraLog counts page hand-offs that stayed in one log (harmless).
	IntraLog int
	// PerLogRecords is the record count per partition.
	PerLogRecords []int
}

// DependencyRate returns dependencies per KB of log — the density that
// makes Figure 13's graph unreadable.
func (r Result) DependencyRate() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(r.Dependencies) / (float64(r.Bytes) / 1024.0)
}

// TightFraction returns the share of inter-log dependencies that are
// tight.
func (r Result) TightFraction() float64 {
	if r.Dependencies == 0 {
		return 0
	}
	return float64(r.TightDependencies) / float64(r.Dependencies)
}

// String renders the one-line summary experiment tables print.
func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d-way split of %d records (%.1fKB, %d txns): ",
		r.Logs, r.Records, float64(r.Bytes)/1024, r.Transactions)
	fmt.Fprintf(&sb, "%d inter-log deps (%.1f/KB), %.0f%% tight, %d intra-log",
		r.Dependencies, r.DependencyRate(), r.TightFraction()*100, r.IntraLog)
	return sb.String()
}

// Analyze partitions the trace and counts inter-log page dependencies.
func Analyze(trace []TraceEntry, cfg Config) Result {
	if cfg.Logs <= 0 {
		cfg.Logs = 8
	}
	if cfg.TightWindow <= 0 {
		cfg.TightWindow = 5
	}
	assign := cfg.Assign
	if assign == nil {
		assign = func(txnID uint64) int { return int(txnID % uint64(cfg.Logs)) }
	}

	res := Result{Logs: cfg.Logs, PerLogRecords: make([]int, cfg.Logs)}
	type lastWrite struct {
		log int
		seq int // sequence number within its log
	}
	lastByPage := make(map[uint64]lastWrite)
	logSeq := make([]int, cfg.Logs)
	txns := make(map[uint64]struct{})

	for _, e := range trace {
		lg := assign(e.TxnID) % cfg.Logs
		res.Records++
		res.Bytes += e.Size
		res.PerLogRecords[lg]++
		txns[e.TxnID] = struct{}{}
		seq := logSeq[lg]
		logSeq[lg]++

		if prev, ok := lastByPage[e.PageID]; ok {
			if prev.log != lg {
				res.Dependencies++
				// Tight if the predecessor is still near its log's tail.
				if logSeq[prev.log]-1-prev.seq < cfg.TightWindow {
					res.TightDependencies++
				}
			} else if prev.seq != seq-1 {
				res.IntraLog++
			} else {
				res.IntraLog++
			}
		}
		lastByPage[e.PageID] = lastWrite{log: lg, seq: seq}
	}
	res.Transactions = len(txns)
	return res
}
