package distlog

import (
	"testing"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

func TestExtractTrace(t *testing.T) {
	var log []byte
	add := func(rec *logrec.Record) {
		b, err := rec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, b...)
	}
	up := logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("a"), After: []byte("b")}
	add(logrec.NewUpdate(1, lsn.Undefined, 100, up))
	add(logrec.NewCommit(1, 0))
	add(logrec.NewUpdate(2, lsn.Undefined, 101, up))
	add(logrec.NewCLR(3, lsn.Undefined, 102, lsn.Undefined, up))

	trace := ExtractTrace(log)
	if len(trace) != 3 {
		t.Fatalf("trace has %d entries, want 3 (commit excluded)", len(trace))
	}
	if trace[0].PageID != 100 || trace[1].PageID != 101 || trace[2].PageID != 102 {
		t.Fatalf("pages: %+v", trace)
	}
}

func TestAnalyzeNoSharingNoDeps(t *testing.T) {
	// Each transaction writes its own page: zero dependencies.
	var trace []TraceEntry
	for i := 0; i < 100; i++ {
		trace = append(trace, TraceEntry{TxnID: uint64(i), PageID: uint64(i), Size: 100})
	}
	res := Analyze(trace, Config{Logs: 8})
	if res.Dependencies != 0 {
		t.Fatalf("deps: %d", res.Dependencies)
	}
	if res.Records != 100 || res.Bytes != 10000 || res.Transactions != 100 {
		t.Fatalf("result: %+v", res)
	}
}

func TestAnalyzeHotPageMakesDeps(t *testing.T) {
	// Every transaction updates page 1 back to back: every hand-off
	// between different logs is a tight dependency.
	var trace []TraceEntry
	for i := 0; i < 64; i++ {
		trace = append(trace, TraceEntry{TxnID: uint64(i), PageID: 1, Size: 100})
	}
	res := Analyze(trace, Config{Logs: 8})
	if res.Dependencies == 0 {
		t.Fatal("hot page produced no dependencies")
	}
	// txnID%8 round-robins: all 63 hand-offs cross logs.
	if res.Dependencies != 63 {
		t.Fatalf("deps: %d, want 63", res.Dependencies)
	}
	if res.TightDependencies != 63 {
		t.Fatalf("tight: %d, want 63", res.TightDependencies)
	}
	if res.TightFraction() != 1.0 {
		t.Fatalf("tight fraction: %f", res.TightFraction())
	}
}

func TestAnalyzeSingleLogNoDeps(t *testing.T) {
	var trace []TraceEntry
	for i := 0; i < 50; i++ {
		trace = append(trace, TraceEntry{TxnID: uint64(i), PageID: 1, Size: 80})
	}
	res := Analyze(trace, Config{Logs: 1})
	if res.Dependencies != 0 {
		t.Fatalf("single log cannot have inter-log deps: %d", res.Dependencies)
	}
	if res.IntraLog != 49 {
		t.Fatalf("intra-log hand-offs: %d", res.IntraLog)
	}
}

func TestAnalyzeCustomAssign(t *testing.T) {
	// Perfect partitioning by page (txn i touches page i%2, assigned to
	// log i%2): zero inter-log deps even with page sharing.
	var trace []TraceEntry
	for i := 0; i < 40; i++ {
		trace = append(trace, TraceEntry{TxnID: uint64(i), PageID: uint64(i % 2), Size: 64})
	}
	res := Analyze(trace, Config{
		Logs:   2,
		Assign: func(txnID uint64) int { return int(txnID % 2) },
	})
	if res.Dependencies != 0 {
		t.Fatalf("aligned partitioning: %d deps", res.Dependencies)
	}
}

func TestAnalyzeTightWindow(t *testing.T) {
	// Page hand-off with many intervening records in the older log:
	// dependency exists but is not tight.
	trace := []TraceEntry{
		{TxnID: 0, PageID: 1, Size: 64}, // log 0
	}
	// 10 filler records in log 0 on other pages.
	for i := 0; i < 10; i++ {
		trace = append(trace, TraceEntry{TxnID: 2, PageID: uint64(100 + i), Size: 64}) // log 0 (2%2=0)
	}
	trace = append(trace, TraceEntry{TxnID: 1, PageID: 1, Size: 64}) // log 1 touches page 1
	res := Analyze(trace, Config{Logs: 2, TightWindow: 5})
	if res.Dependencies != 1 {
		t.Fatalf("deps: %d", res.Dependencies)
	}
	if res.TightDependencies != 0 {
		t.Fatalf("dependency should be loose: %d tight", res.TightDependencies)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Logs: 8, Records: 10, Bytes: 2048, Transactions: 5, Dependencies: 4, TightDependencies: 2}
	s := res.String()
	if s == "" || res.DependencyRate() != 2.0 || res.TightFraction() != 0.5 {
		t.Fatalf("string/rates wrong: %q %f %f", s, res.DependencyRate(), res.TightFraction())
	}
	var zero Result
	if zero.DependencyRate() != 0 || zero.TightFraction() != 0 {
		t.Fatal("zero result rates")
	}
}
