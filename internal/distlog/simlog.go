package distlog

import (
	"fmt"
	"sync"
)

// This file goes one step beyond the paper's Figure 13 analysis: instead
// of only *counting* the dependencies a distributed log would face, it
// simulates the commit-time protocol such a log would be forced to run,
// and measures the multiplication of flushes. The paper argues (§A.5)
// that "even if tracked efficiently the dependencies would still require
// most transactions to flush multiple logs at commit time" — SimLog
// makes that number concrete.
//
// The model: N logs, each an append-only sequence with a durable
// horizon. A transaction's records go to its home log. When it touches a
// page last written by another log, it picks up a dependency on that
// log's tail position. At commit, write-ahead correctness requires every
// dependency position to be durable before the commit record is: commit
// therefore forces a flush of every depended-on log whose horizon lags,
// in addition to the home log's own flush.

// SimLog is a simulated N-way distributed log.
type SimLog struct {
	mu      sync.Mutex
	n       int
	group   int      // commits per home-log flush (group commit)
	pending []int    // per-log commits since last flush
	tail    []uint64 // per-log append position (records)
	durable []uint64 // per-log durable horizon (records)
	flushes []int    // per-log flush count
	pageLog map[uint64]pagePos
	txns    map[uint64]*simTxn
	commits int
	forced  int // dependency-forced flushes (beyond the home log's own)
}

type pagePos struct {
	log uint64
	pos uint64
}

type simTxn struct {
	home uint64
	deps map[uint64]uint64 // log → minimum position that must be durable
}

// NewSimLog builds a simulator over n logs with commit-equals-flush
// semantics (group size 1).
func NewSimLog(n int) *SimLog { return NewSimLogGroup(n, 1) }

// NewSimLogGroup builds a simulator whose home logs flush once per
// `group` commits — the group-commit batching every real log manager
// uses, and the batching a forced dependency flush destroys.
func NewSimLogGroup(n, group int) *SimLog {
	if n <= 0 {
		n = 1
	}
	if group <= 0 {
		group = 1
	}
	return &SimLog{
		n:       n,
		group:   group,
		pending: make([]int, n),
		tail:    make([]uint64, n),
		durable: make([]uint64, n),
		flushes: make([]int, n),
		pageLog: make(map[uint64]pagePos),
		txns:    make(map[uint64]*simTxn),
	}
}

// Append records one log record by txn touching page. The transaction's
// home log is txn % n (transactions must not span logs, per the paper's
// premise).
func (s *SimLog) Append(txn, page uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	home := txn % uint64(s.n)
	t := s.txns[txn]
	if t == nil {
		t = &simTxn{home: home, deps: make(map[uint64]uint64)}
		s.txns[txn] = t
	}
	if prev, ok := s.pageLog[page]; ok && prev.log != home {
		// Physical dependency: prev's record must be durable before our
		// commit record is (the slot-13/slot-14 example in §A.5).
		if cur, ok := t.deps[prev.log]; !ok || prev.pos > cur {
			t.deps[prev.log] = prev.pos
		}
	}
	s.tail[home]++
	s.pageLog[page] = pagePos{log: home, pos: s.tail[home]}
}

// Commit finishes txn: every depended-on log whose durable horizon lags
// the dependency must be flushed *before* the commit record may harden
// (the write-ahead ordering of §A.5), breaking its batching; the home
// log itself flushes once per group. It returns how many logs flushed
// for this commit.
func (s *SimLog) Commit(txn uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.txns[txn]
	home := txn % uint64(s.n)
	flushed := 0
	if t != nil {
		for lg, pos := range t.deps {
			if s.durable[lg] < pos {
				s.durable[lg] = s.tail[lg]
				s.flushes[lg]++
				s.pending[lg] = 0
				s.forced++
				flushed++
			}
		}
		delete(s.txns, txn)
	}
	s.tail[home]++ // the commit record itself
	s.pending[home]++
	if s.pending[home] >= s.group {
		s.durable[home] = s.tail[home]
		s.flushes[home]++
		s.pending[home] = 0
		flushed++
	}
	s.commits++
	return flushed
}

// SimResult summarizes a simulation.
type SimResult struct {
	// Logs is the number of per-partition logs simulated.
	Logs int
	// Commits is how many transactions committed.
	Commits int
	// TotalFlushes counts device flushes across every log.
	TotalFlushes int
	// ForcedFlushes counts flushes of *other* logs forced by cross-log
	// commit dependencies.
	ForcedFlushes int
	// FlushesPerTxn is TotalFlushes averaged over commits.
	FlushesPerTxn float64
	// ForcedPerCommit is ForcedFlushes averaged over commits.
	ForcedPerCommit float64
}

// Result returns the accumulated statistics.
func (s *SimLog) Result() SimResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, f := range s.flushes {
		total += f
	}
	r := SimResult{
		Logs:          s.n,
		Commits:       s.commits,
		TotalFlushes:  total,
		ForcedFlushes: s.forced,
	}
	if s.commits > 0 {
		r.FlushesPerTxn = float64(total) / float64(s.commits)
		r.ForcedPerCommit = float64(s.forced) / float64(s.commits)
	}
	return r
}

// String renders the one-line summary experiment tables print.
func (r SimResult) String() string {
	return fmt.Sprintf("%d logs: %d commits, %.2f flushes/txn (%.2f forced by cross-log deps)",
		r.Logs, r.Commits, r.FlushesPerTxn, r.ForcedPerCommit)
}

// Replay runs a trace through an n-way simulated distributed log,
// committing each transaction after its last record (the trace order
// approximates commit order).
func Replay(trace []TraceEntry, n int) SimResult {
	return ReplayLagged(trace, n, 0)
}

// ReplayLagged is Replay with a commit lag (a transaction commits only
// after `lag` further trace records have gone by) and group commit of
// `lag+1` transactions per home flush, modeling the in-flight window a
// real log manager runs with. With lag 0 every predecessor flushes
// before its dependant commits, hiding the effect the paper warns about;
// realistic windows expose it.
func ReplayLagged(trace []TraceEntry, n, lag int) SimResult {
	s := NewSimLogGroup(n, lag+1)
	last := make(map[uint64]int, len(trace))
	for i, e := range trace {
		last[e.TxnID] = i
	}
	type pending struct {
		txn uint64
		at  int
	}
	var queue []pending
	for i, e := range trace {
		s.Append(e.TxnID, e.PageID)
		if last[e.TxnID] == i {
			queue = append(queue, pending{txn: e.TxnID, at: i})
		}
		for len(queue) > 0 && queue[0].at+lag <= i {
			s.Commit(queue[0].txn)
			queue = queue[1:]
		}
	}
	for _, p := range queue {
		s.Commit(p.txn)
	}
	return s.Result()
}
