package distlog

import "testing"

func TestSimLogSingleLogOneFlushPerCommit(t *testing.T) {
	s := NewSimLog(1)
	for txn := uint64(0); txn < 10; txn++ {
		s.Append(txn, 1)
		s.Append(txn, 2)
		if got := s.Commit(txn); got != 1 {
			t.Fatalf("single log commit flushed %d logs", got)
		}
	}
	r := s.Result()
	if r.ForcedFlushes != 0 {
		t.Fatalf("single log forced flushes: %d", r.ForcedFlushes)
	}
	if r.FlushesPerTxn != 1 {
		t.Fatalf("flushes/txn: %f", r.FlushesPerTxn)
	}
}

func TestSimLogCrossLogDependencyForcesFlush(t *testing.T) {
	s := NewSimLog(2)
	// Txn 0 (home log 0) writes page 7; txn 1 (home log 1) then writes
	// page 7: txn 1 depends on log 0 and must flush it at commit.
	s.Append(0, 7)
	s.Append(1, 7)
	if got := s.Commit(1); got != 2 {
		t.Fatalf("dependant commit flushed %d logs, want 2", got)
	}
	r := s.Result()
	if r.ForcedFlushes != 1 {
		t.Fatalf("forced flushes: %d", r.ForcedFlushes)
	}
	// Txn 0's own commit: its log tail moved (commit record) so it still
	// flushes its home log once.
	if got := s.Commit(0); got != 1 {
		t.Fatalf("predecessor commit flushed %d logs", got)
	}
}

func TestSimLogDurableDependencyIsFree(t *testing.T) {
	s := NewSimLog(2)
	s.Append(0, 7)
	s.Commit(0) // hardens log 0 through page 7's record
	s.Append(1, 7)
	// Log 0 is already durable past the dependency: only home flush.
	if got := s.Commit(1); got != 1 {
		t.Fatalf("satisfied dependency still flushed %d logs", got)
	}
	if r := s.Result(); r.ForcedFlushes != 0 {
		t.Fatalf("forced flushes: %d", r.ForcedFlushes)
	}
}

func TestSimLogDisjointPagesNoForcedFlushes(t *testing.T) {
	s := NewSimLog(4)
	for txn := uint64(0); txn < 40; txn++ {
		s.Append(txn, 1000+txn) // private pages
		s.Commit(txn)
	}
	if r := s.Result(); r.ForcedFlushes != 0 {
		t.Fatalf("disjoint pages forced %d flushes", r.ForcedFlushes)
	}
}

func TestOverlappingTxnsForceFlushes(t *testing.T) {
	// Eight in-flight transactions write the same page, then commit in
	// reverse order: every commit (except the one whose predecessors all
	// got flushed along the way) depends on an unflushed log.
	s := NewSimLog(8)
	for txn := uint64(0); txn < 8; txn++ {
		s.Append(txn, 1)
	}
	forcedTotal := 0
	for txn := int64(7); txn >= 0; txn-- {
		s.Commit(uint64(txn))
	}
	forcedTotal = s.Result().ForcedFlushes
	if forcedTotal == 0 {
		t.Fatal("overlapping writers forced no cross-log flushes")
	}
}

func TestReplayHotPageAmplifiesFlushes(t *testing.T) {
	// Every transaction touches the same hot page. With an in-flight
	// window (group commit), an 8-way log forces extra flushes; a single
	// log never does.
	var trace []TraceEntry
	for i := 0; i < 200; i++ {
		trace = append(trace, TraceEntry{TxnID: uint64(i), PageID: 1, Size: 100})
	}
	single := ReplayLagged(trace, 1, 8)
	dist := ReplayLagged(trace, 8, 8)
	if single.ForcedFlushes != 0 {
		t.Fatalf("single-log forced: %d", single.ForcedFlushes)
	}
	if dist.ForcedPerCommit < 0.5 {
		t.Fatalf("hot page should force extra flushes per commit, got %.2f",
			dist.ForcedPerCommit)
	}
	if dist.FlushesPerTxn <= single.FlushesPerTxn {
		t.Fatalf("distribution should multiply flushes: %.2f vs %.2f",
			dist.FlushesPerTxn, single.FlushesPerTxn)
	}
}

func TestSimLogZeroLogsClamped(t *testing.T) {
	s := NewSimLog(0)
	s.Append(1, 1)
	if got := s.Commit(1); got != 1 {
		t.Fatalf("clamped simulator: %d", got)
	}
}
