// Package fsutil holds the small filesystem-durability helpers the log
// device and the page archive share. Every helper comes in two forms:
// a legacy one over the real filesystem and an FS-parameterised one
// (`...FS`) that runs over any vfs.FS, so the fault-injection
// filesystem can exercise the same code paths.
package fsutil

import (
	"os"
	"path/filepath"

	"aether/internal/vfs"
)

// SyncDir fsyncs a directory so creates, renames and removals in it are
// durable. fsync of a file does not persist its directory entry; every
// crash-ordering protocol that installs files must also sync the
// directory before relying on them.
func SyncDir(dir string) error {
	return SyncDirFS(vfs.OS{}, dir)
}

// SyncDirFS is SyncDir over an arbitrary filesystem.
func SyncDirFS(fs vfs.FS, dir string) error {
	return fs.SyncDir(dir)
}

// WriteFileSync writes data to path durably: the bytes are fsynced
// before Close returns. The caller still owns directory durability
// (SyncDir) if the file is new or renamed.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	return WriteFileSyncFS(vfs.OS{}, path, data, perm)
}

// WriteFileSyncFS is WriteFileSync over an arbitrary filesystem.
func WriteFileSyncFS(fs vfs.FS, path string, data []byte, perm os.FileMode) error {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileSyncDir is WriteFileSync followed by a sync of the file's
// parent directory, so a single call yields a fully durable file even
// when it is newly created. Use it whenever the write is not already
// part of a protocol that batches its own directory sync.
func WriteFileSyncDir(path string, data []byte, perm os.FileMode) error {
	return WriteFileSyncDirFS(vfs.OS{}, path, data, perm)
}

// WriteFileSyncDirFS is WriteFileSyncDir over an arbitrary filesystem.
func WriteFileSyncDirFS(fs vfs.FS, path string, data []byte, perm os.FileMode) error {
	if err := WriteFileSyncFS(fs, path, data, perm); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
