// Package fsutil holds the small filesystem-durability helpers the log
// device and the page archive share.
package fsutil

import "os"

// SyncDir fsyncs a directory so creates, renames and removals in it are
// durable. fsync of a file does not persist its directory entry; every
// crash-ordering protocol that installs files must also sync the
// directory before relying on them.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileSync writes data to path durably: the bytes are fsynced
// before Close returns. The caller still owns directory durability
// (SyncDir) if the file is new or renamed.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
