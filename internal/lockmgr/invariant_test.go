package lockmgr

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickNoIncompatibleGrants is the lock manager's core safety
// property: whatever sequence of acquires and releases a set of
// transactions performs, the granted set on any key never contains two
// incompatible modes from different owners.
func TestQuickNoIncompatibleGrants(t *testing.T) {
	type op struct {
		Txn  uint8
		Key  uint8
		Mode uint8
		Drop bool // release-all instead of acquire
	}
	f := func(ops []op) bool {
		m := New(Config{DeadlockTimeout: 5 * time.Millisecond})
		lockers := map[uint8]*Locker{}
		for _, o := range ops {
			l := lockers[o.Txn%8]
			if l == nil {
				l = m.NewLocker(uint64(o.Txn%8)+1, nil)
				lockers[o.Txn%8] = l
			}
			if o.Drop {
				l.ReleaseAll()
				continue
			}
			mode := Mode(o.Mode%uint8(numModes-1)) + ModeIS
			key := RowKey(1, uint64(o.Key%5)+1)
			// Serial execution: acquires either succeed instantly or
			// time out (self-compatible re-acquires always succeed).
			_ = l.Acquire(key, mode)
			// Invariant check after every operation.
			for obj := uint64(1); obj <= 5; obj++ {
				modes := m.HeldModes(RowKey(1, obj))
				for i := 0; i < len(modes); i++ {
					for j := i + 1; j < len(modes); j++ {
						if !Compatible(modes[i], modes[j]) {
							return false
						}
					}
				}
			}
		}
		for _, l := range lockers {
			l.ReleaseAll()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInvariantSampling runs concurrent lockers while a
// sampler thread asserts the compatibility invariant on live state.
func TestConcurrentInvariantSampling(t *testing.T) {
	m := New(Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true})
	stop := make(chan struct{})
	var bad sync.Once
	var violation string

	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for obj := uint64(1); obj <= 10; obj++ {
				modes := m.HeldModes(RowKey(1, obj))
				// A cached (inactive) S grant can coexist with live S
				// grants, etc.; the matrix must hold regardless.
				for i := 0; i < len(modes); i++ {
					for j := i + 1; j < len(modes); j++ {
						if !Compatible(modes[i], modes[j]) {
							bad.Do(func() {
								violation = modes[i].String() + " with " + modes[j].String()
							})
							return
						}
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cache := NewAgentCache(8)
			l := m.NewLocker(0, cache)
			defer l.DropCache()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 3
			for i := 0; i < 400; i++ {
				rng = rng*6364136223846793005 + 1
				l.Reset(uint64(w*1000 + i + 1))
				key := RowKey(1, rng%10+1)
				mode := ModeS
				if rng&(1<<40) != 0 {
					mode = ModeX
				}
				_ = l.Acquire(key, mode)
				if rng&(1<<41) != 0 {
					_ = l.Acquire(RowKey(1, (rng>>8)%10+1), ModeS)
				}
				l.ReleaseAll()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()
	if violation != "" {
		t.Fatalf("compatibility violated: %s", violation)
	}
}
