package lockmgr

import "sync/atomic"

// sliEntry states.
const (
	// sliValid: the cached grant is inactive and adoptable (by its agent)
	// or stealable (by anyone else).
	sliValid int32 = iota
	// sliInUse: the owning agent's current transaction holds it.
	sliInUse
	// sliStolen: reclaimed; the entry is dead.
	sliStolen
)

// sliEntry is one speculatively-inherited lock: a grant retained by an
// agent thread between transactions. Ownership is arbitrated by a single
// atomic state word: the agent adopts with CAS(valid→inuse); a
// conflicting transaction steals with CAS(valid→stolen). If the steal
// loses, the stealer sets reclaim and queues; the agent returns the lock
// to the table at its next transaction boundary.
type sliEntry struct {
	key     Key
	mode    Mode
	state   atomic.Int32
	reclaim atomic.Bool
}

// AgentCache holds the locks an agent thread has inherited across
// transactions. It is owned by exactly one goroutine (the agent);
// cross-thread coordination happens only through entry atomics.
type AgentCache struct {
	entries map[Key]*sliEntry
	order   []Key // FIFO eviction order
	cap     int
}

// NewAgentCache returns a cache bounded to capacity entries (default 64).
func NewAgentCache(capacity int) *AgentCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &AgentCache{entries: make(map[Key]*sliEntry, capacity), cap: capacity}
}

func (c *AgentCache) get(key Key) *sliEntry { return c.entries[key] }

func (c *AgentCache) remove(key Key) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Len returns the number of cached entries.
func (c *AgentCache) Len() int { return len(c.entries) }

// heldLock is a Locker's record of one held lock.
type heldLock struct {
	mode Mode
	sli  *sliEntry // non-nil if adopted from the agent cache
}

// Locker is a transaction's lock context. Not safe for concurrent use —
// a transaction acquires locks from its one agent thread.
type Locker struct {
	m     *Manager
	txn   uint64
	cache *AgentCache // shared across the agent's transactions; may be nil
	held  map[Key]heldLock
}

// NewLocker returns a lock context for a transaction. cache may be nil
// (no inheritance); pass the agent's cache to enable SLI.
func (m *Manager) NewLocker(txnID uint64, cache *AgentCache) *Locker {
	if !m.cfg.SLI {
		cache = nil
	}
	return &Locker{m: m, txn: txnID, cache: cache, held: make(map[Key]heldLock, 8)}
}

// Reset re-arms the locker for a new transaction (the agent reuses one
// allocation per thread). Any held locks must have been released.
func (l *Locker) Reset(txnID uint64) {
	if len(l.held) != 0 {
		panic("lockmgr: Reset with locks held")
	}
	l.txn = txnID
}

// HeldCount returns the number of locks this transaction holds.
func (l *Locker) HeldCount() int { return len(l.held) }

// Acquire obtains key in at least the requested mode, blocking as needed.
// It returns ErrLockTimeout if the wait exceeds the deadlock timeout, in
// which case the transaction should abort.
func (l *Locker) Acquire(key Key, mode Mode) error {
	l.m.stats.Acquires.Inc()
	if h, ok := l.held[key]; ok {
		if Covers(h.mode, mode) {
			return nil
		}
		target := Supremum(h.mode, mode)
		if h.sli != nil {
			// Upgrading an inherited lock: first convert it to a normal
			// grant, then upgrade through the table.
			if err := l.m.adoptCached(l.txn, h.sli, target); err != nil {
				return err
			}
			h.sli.state.Store(sliStolen)
			l.cache.remove(key)
			l.held[key] = heldLock{mode: target}
			return nil
		}
		if err := l.m.acquire(l.txn, key, target, true); err != nil {
			return err
		}
		l.held[key] = heldLock{mode: target}
		return nil
	}

	// Speculative lock inheritance fast path.
	if l.cache != nil {
		if e := l.cache.get(key); e != nil {
			if e.state.CompareAndSwap(sliValid, sliInUse) {
				if Covers(e.mode, mode) {
					l.m.stats.SLIHits.Inc()
					l.held[key] = heldLock{mode: e.mode, sli: e}
					return nil
				}
				// Cached mode too weak: adopt and upgrade.
				if err := l.m.adoptCached(l.txn, e, Supremum(e.mode, mode)); err != nil {
					// The grant is back in the table under our txn but the
					// upgrade failed; record what we do hold so abort
					// releases it.
					e.state.Store(sliStolen)
					l.cache.remove(key)
					l.held[key] = heldLock{mode: e.mode}
					return err
				}
				e.state.Store(sliStolen)
				l.cache.remove(key)
				l.held[key] = heldLock{mode: Supremum(e.mode, mode)}
				return nil
			}
			// Stolen while cached: forget it.
			l.cache.remove(key)
		}
	}

	if err := l.m.acquire(l.txn, key, mode, false); err != nil {
		return err
	}
	l.held[key] = heldLock{mode: mode}
	return nil
}

// ReleaseAll drops every lock the transaction holds. With ELR this is
// called immediately after the commit record is inserted in the log —
// before the flush — which is the entire mechanism of early lock release.
// With SLI enabled, uncontended locks are retained in the agent cache
// instead of being returned to the table.
func (l *Locker) ReleaseAll() {
	for key, h := range l.held {
		switch {
		case h.sli != nil:
			// Adopted from the cache: give it back, or surrender it if a
			// conflicting transaction asked for it meanwhile.
			if h.sli.reclaim.Load() {
				h.sli.state.Store(sliStolen)
				l.m.releaseCachedGrant(h.sli)
				l.cache.remove(key)
			} else {
				h.sli.state.Store(sliValid)
			}
		case l.cache != nil:
			if e := l.m.tryCacheGrant(l.txn, key, l.cache); e != nil {
				l.cachePut(key, e)
			}
		default:
			l.m.release(l.txn, key)
		}
		delete(l.held, key)
	}
}

// cachePut records a newly cached grant, evicting the oldest entry if
// the cache is full.
func (l *Locker) cachePut(key Key, e *sliEntry) {
	c := l.cache
	if old, ok := c.entries[key]; ok && old != e {
		// Shouldn't happen (a key is cached once), but never leak a grant.
		if old.state.CompareAndSwap(sliValid, sliStolen) {
			l.m.releaseCachedGrant(old)
		}
		c.remove(key)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.entries) > c.cap {
		victim := c.order[0]
		ve := c.entries[victim]
		c.order = c.order[1:]
		delete(c.entries, victim)
		if ve != nil && ve.state.CompareAndSwap(sliValid, sliStolen) {
			l.m.releaseCachedGrant(ve)
		}
	}
}

// ReleaseAllToTable drops every held lock directly into the lock table,
// bypassing the agent cache entirely. Unlike ReleaseAll it is safe to
// call from a goroutine other than the agent's (the flush daemon, for
// the pipelined-without-ELR ablation): it never mutates the AgentCache —
// adopted entries are marked stolen in place and the owning agent
// garbage-collects them on its next miss.
func (l *Locker) ReleaseAllToTable() {
	for key, h := range l.held {
		if h.sli != nil {
			h.sli.state.Store(sliStolen)
			l.m.releaseCachedGrant(h.sli)
		} else {
			l.m.release(l.txn, key)
		}
		delete(l.held, key)
	}
}

// DropCache releases every lock the agent cache still holds (agent
// shutdown). The cache is unusable afterwards.
func (l *Locker) DropCache() {
	if l.cache == nil {
		return
	}
	for key, e := range l.cache.entries {
		if e.state.CompareAndSwap(sliValid, sliStolen) {
			l.m.releaseCachedGrant(e)
		}
		delete(l.cache.entries, key)
	}
	l.cache.order = l.cache.order[:0]
}
