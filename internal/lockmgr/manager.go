package lockmgr

import (
	"errors"
	"sync"
	"time"

	"aether/internal/metrics"
)

// ErrLockTimeout is returned when a lock request waits longer than the
// deadlock timeout. The transaction must abort; timeout is the deadlock
// resolution policy (as in many production systems).
var ErrLockTimeout = errors.New("lockmgr: lock wait timeout (possible deadlock)")

// Config parameterizes a Manager.
type Config struct {
	// Partitions is the number of lock-table shards. Default 128.
	Partitions int
	// DeadlockTimeout bounds any single lock wait. Default 500ms.
	DeadlockTimeout time.Duration
	// SLI enables speculative lock inheritance: agent threads keep hot
	// locks across transactions in an AgentCache, bypassing the wait
	// queue for repeated access. The paper's experiments run Shore-MT
	// with SLI to keep the lock manager off the critical path (§6.1).
	SLI bool
	// OnBlock, if set, is called once each time a request actually
	// blocks — a scheduling event for the context-switch accounting.
	OnBlock func()
}

func (c *Config) applyDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 128
	}
	if c.DeadlockTimeout <= 0 {
		c.DeadlockTimeout = 500 * time.Millisecond
	}
}

// Stats exposes lock-manager counters.
type Stats struct {
	// Acquires counts lock requests (including re-acquires).
	Acquires metrics.Counter
	// Blocks counts requests that had to wait.
	Blocks metrics.Counter
	// Timeouts counts deadlock-timeout aborts.
	Timeouts metrics.Counter
	// Upgrades counts mode conversions.
	Upgrades metrics.Counter
	// SLIHits counts lock requests satisfied from an agent cache.
	SLIHits metrics.Counter
	// SLISteals counts cached locks reclaimed by other transactions.
	SLISteals metrics.Counter
	// WaitTime records blocking lock-wait durations.
	WaitTime metrics.Histogram
}

// Manager is the lock table.
type Manager struct {
	cfg   Config
	parts []partition
	stats Stats
}

type partition struct {
	mu    sync.Mutex
	locks map[Key]*lockHead
	_     [40]byte // keep partitions on separate cache lines
}

// lockHead is the per-object lock state: granted set plus FIFO queue.
type lockHead struct {
	key    Key
	grants []*grant
	queue  []*waiter
}

// grant is one granted lock. sli is non-nil for an inactive cached grant
// retained by an agent between transactions (speculative lock
// inheritance).
type grant struct {
	owner uint64
	mode  Mode
	sli   *sliEntry
}

// waiter is one queued request. For upgrades, mode is the conversion
// target. granted is written and read under the partition mutex.
type waiter struct {
	owner   uint64
	mode    Mode
	upgrade bool
	granted bool
	ch      chan struct{}
}

// New builds a lock manager.
func New(cfg Config) *Manager {
	cfg.applyDefaults()
	m := &Manager{cfg: cfg, parts: make([]partition, cfg.Partitions)}
	for i := range m.parts {
		m.parts[i].locks = make(map[Key]*lockHead)
	}
	return m
}

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

func (m *Manager) part(k Key) *partition {
	return &m.parts[k.hash()%uint64(len(m.parts))]
}

func (h *lockHead) findGrant(owner uint64) *grant {
	for _, g := range h.grants {
		if g.sli == nil && g.owner == owner {
			return g
		}
	}
	return nil
}

func (h *lockHead) removeGrant(g *grant) {
	for i, o := range h.grants {
		if o == g {
			h.grants = append(h.grants[:i], h.grants[i+1:]...)
			return
		}
	}
}

func (h *lockHead) removeWaiter(w *waiter) {
	for i, o := range h.queue {
		if o == w {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// canGrant reports whether w could be satisfied right now. Caller holds
// the partition mutex.
func (h *lockHead) canGrant(w *waiter) bool {
	if w.upgrade {
		own := h.findGrant(w.owner)
		for _, g := range h.grants {
			if g != own && !Compatible(g.mode, w.mode) {
				return false
			}
		}
		return true
	}
	for _, g := range h.grants {
		if !Compatible(g.mode, w.mode) {
			return false
		}
	}
	return true
}

// grantWaiters satisfies the longest grantable prefix of the queue (FIFO;
// upgrades sit at the front). Caller holds the partition mutex.
func (h *lockHead) grantWaiters() {
	for len(h.queue) > 0 {
		w := h.queue[0]
		if !h.canGrant(w) {
			return
		}
		h.queue = h.queue[1:]
		if w.upgrade {
			if g := h.findGrant(w.owner); g != nil {
				g.mode = w.mode
			} else {
				h.grants = append(h.grants, &grant{owner: w.owner, mode: w.mode})
			}
		} else {
			h.grants = append(h.grants, &grant{owner: w.owner, mode: w.mode})
		}
		w.granted = true
		close(w.ch)
	}
}

// stealCachedConflicts removes or flags inactive cached grants that
// conflict with a request in the given mode. Returns true if any grant
// was removed (so compatibility should be re-checked). Caller holds the
// partition mutex.
func (m *Manager) stealCachedConflicts(h *lockHead, mode Mode) bool {
	removed := false
	for i := 0; i < len(h.grants); {
		g := h.grants[i]
		if g.sli != nil && !Compatible(g.mode, mode) {
			if g.sli.state.CompareAndSwap(sliValid, sliStolen) {
				// Inactive: reclaim it outright.
				h.grants = append(h.grants[:i], h.grants[i+1:]...)
				m.stats.SLISteals.Inc()
				removed = true
				continue
			}
			// In use by a running transaction: ask the owner to return
			// it to the table at commit.
			g.sli.reclaim.Store(true)
		}
		i++
	}
	return removed
}

// acquire is the slow path: take the partition latch, try to grant, and
// otherwise wait in the queue. If convert is true the owner already holds
// the lock and mode is the conversion target.
func (m *Manager) acquire(owner uint64, key Key, mode Mode, convert bool) error {
	p := m.part(key)
	p.mu.Lock()
	h := p.locks[key]
	if h == nil {
		h = &lockHead{key: key}
		p.locks[key] = h
	}

	if convert {
		g := h.findGrant(owner)
		if g == nil {
			// Degenerate: treated as a fresh acquire below.
			convert = false
		} else {
			if Covers(g.mode, mode) {
				p.mu.Unlock()
				return nil
			}
			m.stats.Upgrades.Inc()
			m.stealCachedConflicts(h, mode)
			ok := true
			for _, o := range h.grants {
				if o != g && !Compatible(o.mode, mode) {
					ok = false
					break
				}
			}
			if ok {
				g.mode = mode
				p.mu.Unlock()
				return nil
			}
			// Queue the conversion ahead of fresh requests.
			w := &waiter{owner: owner, mode: mode, upgrade: true, ch: make(chan struct{})}
			pos := 0
			for pos < len(h.queue) && h.queue[pos].upgrade {
				pos++
			}
			h.queue = append(h.queue, nil)
			copy(h.queue[pos+1:], h.queue[pos:])
			h.queue[pos] = w
			p.mu.Unlock()
			return m.wait(p, h, w)
		}
	}

	if !convert {
		m.stealCachedConflicts(h, mode)
		w := &waiter{owner: owner, mode: mode, ch: make(chan struct{})}
		if len(h.queue) == 0 && h.canGrant(w) {
			h.grants = append(h.grants, &grant{owner: owner, mode: mode})
			p.mu.Unlock()
			return nil
		}
		h.queue = append(h.queue, w)
		p.mu.Unlock()
		return m.wait(p, h, w)
	}
	p.mu.Unlock()
	return nil
}

// wait blocks on w until granted or timed out.
func (m *Manager) wait(p *partition, h *lockHead, w *waiter) error {
	m.stats.Blocks.Inc()
	if m.cfg.OnBlock != nil {
		m.cfg.OnBlock()
	}
	t0 := time.Now()
	timer := time.NewTimer(m.cfg.DeadlockTimeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		m.stats.WaitTime.Observe(time.Since(t0))
		return nil
	case <-timer.C:
		p.mu.Lock()
		if w.granted {
			p.mu.Unlock()
			m.stats.WaitTime.Observe(time.Since(t0))
			return nil
		}
		h.removeWaiter(w)
		// Removing a waiter can unblock those behind it (e.g. a timed-out
		// X request ahead of compatible S requests).
		h.grantWaiters()
		p.mu.Unlock()
		m.stats.Timeouts.Inc()
		m.stats.WaitTime.Observe(time.Since(t0))
		return ErrLockTimeout
	}
}

// release drops owner's grant on key and wakes eligible waiters.
func (m *Manager) release(owner uint64, key Key) {
	p := m.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.locks[key]
	if h == nil {
		return
	}
	if g := h.findGrant(owner); g != nil {
		h.removeGrant(g)
		h.grantWaiters()
	}
	if len(h.grants) == 0 && len(h.queue) == 0 {
		delete(p.locks, key)
	}
}

// tryCacheGrant converts owner's grant into an inactive cached grant held
// by the agent cache, if nothing is waiting. Returns the cache entry, or
// nil if the lock was contended (in which case it was released normally).
func (m *Manager) tryCacheGrant(owner uint64, key Key, cache *AgentCache) *sliEntry {
	p := m.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.locks[key]
	if h == nil {
		return nil
	}
	g := h.findGrant(owner)
	if g == nil {
		return nil
	}
	if len(h.queue) > 0 {
		// Contended: inheritance would starve the waiters.
		h.removeGrant(g)
		h.grantWaiters()
		if len(h.grants) == 0 && len(h.queue) == 0 {
			delete(p.locks, key)
		}
		return nil
	}
	e := &sliEntry{key: key, mode: g.mode}
	g.owner = 0
	g.sli = e
	return e
}

// releaseCachedGrant fully releases an inactive cached grant (reclaim or
// eviction path). The caller must have transitioned e out of sliValid.
func (m *Manager) releaseCachedGrant(e *sliEntry) {
	p := m.part(e.key)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.locks[e.key]
	if h == nil {
		return
	}
	for _, g := range h.grants {
		if g.sli == e {
			h.removeGrant(g)
			h.grantWaiters()
			break
		}
	}
	if len(h.grants) == 0 && len(h.queue) == 0 {
		delete(p.locks, e.key)
	}
}

// adoptCached converts an in-use cached grant into a normal grant for
// owner, optionally upgrading it to target. Returns an error if the
// upgrade had to wait and timed out.
func (m *Manager) adoptCached(owner uint64, e *sliEntry, target Mode) error {
	p := m.part(e.key)
	p.mu.Lock()
	h := p.locks[e.key]
	var g *grant
	if h != nil {
		for _, o := range h.grants {
			if o.sli == e {
				g = o
				break
			}
		}
	}
	if g == nil {
		// The grant vanished (should not happen while we hold inuse);
		// fall back to a fresh acquire.
		p.mu.Unlock()
		return m.acquire(owner, e.key, target, false)
	}
	g.owner = owner
	g.sli = nil
	p.mu.Unlock()
	if Covers(g.mode, target) {
		return nil
	}
	return m.acquire(owner, e.key, Supremum(g.mode, target), true)
}

// HeldModes returns the granted modes on key, for tests and invariant
// checks.
func (m *Manager) HeldModes(key Key) []Mode {
	p := m.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.locks[key]
	if h == nil {
		return nil
	}
	out := make([]Mode, 0, len(h.grants))
	for _, g := range h.grants {
		out = append(out, g.mode)
	}
	return out
}

// QueueLen returns the number of waiters on key.
func (m *Manager) QueueLen(key Key) int {
	p := m.part(key)
	p.mu.Lock()
	defer p.mu.Unlock()
	if h := p.locks[key]; h != nil {
		return len(h.queue)
	}
	return 0
}
