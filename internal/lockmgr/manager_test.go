package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newMgr(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.DeadlockTimeout == 0 {
		cfg.DeadlockTimeout = 100 * time.Millisecond
	}
	return New(cfg)
}

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the canonical entries.
	cases := []struct {
		a, b Mode
		want bool
	}{
		{ModeIS, ModeIS, true}, {ModeIS, ModeIX, true}, {ModeIS, ModeS, true},
		{ModeIS, ModeSIX, true}, {ModeIS, ModeX, false},
		{ModeIX, ModeIX, true}, {ModeIX, ModeS, false}, {ModeIX, ModeSIX, false},
		{ModeS, ModeS, true}, {ModeS, ModeX, false},
		{ModeSIX, ModeIS, true}, {ModeSIX, ModeSIX, false},
		{ModeX, ModeX, false}, {ModeX, ModeIS, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: compatibility is symmetric, and ModeNone is compatible with
// everything.
func TestQuickCompatibilitySymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Mode(a%uint8(numModes)), Mode(b%uint8(numModes))
		if Compatible(x, y) != Compatible(y, x) {
			return false
		}
		return Compatible(ModeNone, x) && Compatible(x, ModeNone)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Supremum is commutative, idempotent, covers both args, and
// anything incompatible with a or b is incompatible with sup(a,b)'s
// holders... (we check the covering laws).
func TestQuickSupremumLaws(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Mode(a%uint8(numModes)), Mode(b%uint8(numModes))
		s := Supremum(x, y)
		return s == Supremum(y, x) &&
			Supremum(x, x) == x &&
			Covers(s, x) && Covers(s, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoversReflexive(t *testing.T) {
	for m := ModeNone; m < numModes; m++ {
		if !Covers(m, m) {
			t.Errorf("Covers(%v,%v) false", m, m)
		}
	}
	if !Covers(ModeX, ModeS) || Covers(ModeS, ModeX) {
		t.Fatal("X/S covering wrong")
	}
	if !Covers(ModeSIX, ModeIX) || !Covers(ModeSIX, ModeS) {
		t.Fatal("SIX covering wrong")
	}
}

func TestKeyHelpers(t *testing.T) {
	tk := TableKey(3)
	if !tk.IsTable() || tk.String() != "space(3)" {
		t.Fatalf("table key: %v", tk)
	}
	rk := RowKey(3, 77)
	if rk.IsTable() || rk.String() != "space(3)/obj(77)" {
		t.Fatalf("row key: %v", rk)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := newMgr(t, Config{})
	k := RowKey(1, 1)
	l1 := m.NewLocker(1, nil)
	l2 := m.NewLocker(2, nil)
	if err := l1.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := l2.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	if got := len(m.HeldModes(k)); got != 2 {
		t.Fatalf("grants: %d", got)
	}
	l1.ReleaseAll()
	l2.ReleaseAll()
	if got := len(m.HeldModes(k)); got != 0 {
		t.Fatalf("grants after release: %d", got)
	}
}

func TestExclusiveBlocksAndELRUnblocks(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 2 * time.Second})
	k := RowKey(1, 9)
	l1 := m.NewLocker(1, nil)
	if err := l1.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		l2 := m.NewLocker(2, nil)
		got <- l2.Acquire(k, ModeX)
	}()
	select {
	case <-got:
		t.Fatal("conflicting X granted while held")
	case <-time.After(20 * time.Millisecond):
	}
	l1.ReleaseAll() // the ELR moment: waiters proceed immediately
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := newMgr(t, Config{})
	k := RowKey(1, 1)
	l := m.NewLocker(1, nil)
	for i := 0; i < 3; i++ {
		if err := l.Acquire(k, ModeX); err != nil {
			t.Fatal(err)
		}
	}
	if l.HeldCount() != 1 || len(m.HeldModes(k)) != 1 {
		t.Fatal("duplicate grants")
	}
}

func TestUpgradeSingleHolder(t *testing.T) {
	m := newMgr(t, Config{})
	k := RowKey(1, 1)
	l := m.NewLocker(1, nil)
	if err := l.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	modes := m.HeldModes(k)
	if len(modes) != 1 || modes[0] != ModeX {
		t.Fatalf("modes after upgrade: %v", modes)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 2 * time.Second})
	k := RowKey(1, 1)
	l1 := m.NewLocker(1, nil)
	l2 := m.NewLocker(2, nil)
	if err := l1.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	if err := l2.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l1.Acquire(k, ModeX) }()
	select {
	case <-done:
		t.Fatal("upgrade granted with another reader present")
	case <-time.After(20 * time.Millisecond):
	}
	l2.ReleaseAll()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	modes := m.HeldModes(k)
	if len(modes) != 1 || modes[0] != ModeX {
		t.Fatalf("modes: %v", modes)
	}
	l1.ReleaseAll()
}

func TestUpgradePriorityOverNewRequests(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 2 * time.Second})
	k := RowKey(1, 1)
	l1 := m.NewLocker(1, nil)
	l2 := m.NewLocker(2, nil)
	l1.Acquire(k, ModeS)
	l2.Acquire(k, ModeS)

	upgraded := make(chan error, 1)
	go func() { upgraded <- l1.Acquire(k, ModeX) }()
	time.Sleep(10 * time.Millisecond) // let the upgrade queue

	fresh := make(chan error, 1)
	go func() {
		l3 := m.NewLocker(3, nil)
		fresh <- l3.Acquire(k, ModeX)
	}()
	time.Sleep(10 * time.Millisecond)

	l2.ReleaseAll()
	// The upgrade must win even though the fresh X request also waits.
	select {
	case err := <-upgraded:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade starved")
	}
	select {
	case <-fresh:
		t.Fatal("fresh X granted while upgraded X held")
	case <-time.After(20 * time.Millisecond):
	}
	l1.ReleaseAll()
	if err := <-fresh; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockTimeout(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 50 * time.Millisecond})
	ka, kb := RowKey(1, 1), RowKey(1, 2)
	l1 := m.NewLocker(1, nil)
	l2 := m.NewLocker(2, nil)
	if err := l1.Acquire(ka, ModeX); err != nil {
		t.Fatal(err)
	}
	if err := l2.Acquire(kb, ModeX); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- l1.Acquire(kb, ModeX) }()
	go func() { errs <- l2.Acquire(ka, ModeX) }()
	// At least one side must time out (both may).
	gotTimeout := false
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrLockTimeout) {
				gotTimeout = true
				// The victim aborts: release its locks so the other side
				// can proceed.
				if errs2 := err; errs2 != nil {
					// victim is whichever returned; both lockers release
					// in cleanup below.
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock never resolved")
		}
		if gotTimeout {
			break
		}
	}
	if !gotTimeout {
		t.Fatal("no timeout in a true deadlock")
	}
	if m.Stats().Timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}
}

func TestTimeoutUnblocksQueueBehind(t *testing.T) {
	// S held; X waits (will time out); another S queues behind the X.
	// When the X times out, the S behind it must be granted. The S
	// queues halfway through the X's timeout so its own timeout fires a
	// comfortable margin after the X's — the test asserts the grant, not
	// a scheduling race between two near-simultaneous expiries.
	m := newMgr(t, Config{DeadlockTimeout: 200 * time.Millisecond})
	k := RowKey(1, 1)
	holder := m.NewLocker(1, nil)
	holder.Acquire(k, ModeS)

	xErr := make(chan error, 1)
	go func() {
		lx := m.NewLocker(2, nil)
		xErr <- lx.Acquire(k, ModeX)
	}()
	time.Sleep(100 * time.Millisecond)

	sErr := make(chan error, 1)
	go func() {
		ls := m.NewLocker(3, nil)
		sErr <- ls.Acquire(k, ModeS)
	}()

	if err := <-xErr; !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("X: got %v, want timeout", err)
	}
	select {
	case err := <-sErr:
		if err != nil {
			t.Fatalf("S behind timed-out X: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("S stuck behind removed waiter")
	}
}

func TestHierarchicalIntentions(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 50 * time.Millisecond})
	table := TableKey(5)
	l1 := m.NewLocker(1, nil)
	l2 := m.NewLocker(2, nil)
	// Row writers take IX at the table; they coexist.
	if err := l1.Acquire(table, ModeIX); err != nil {
		t.Fatal(err)
	}
	if err := l2.Acquire(table, ModeIX); err != nil {
		t.Fatal(err)
	}
	// A table scanner needs S — must wait for both IX holders.
	l3 := m.NewLocker(3, nil)
	if err := l3.Acquire(table, ModeS); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("table S with IX holders: %v", err)
	}
	l1.ReleaseAll()
	l2.ReleaseAll()
	if err := l3.Acquire(table, ModeS); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionStress(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 5 * time.Second, Partitions: 16})
	k := RowKey(9, 42)
	var counter int // protected only by the X lock
	const workers = 16
	const perW = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := m.NewLocker(uint64(w+1), nil)
			for i := 0; i < perW; i++ {
				if err := l.Acquire(k, ModeX); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				counter++
				l.ReleaseAll()
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*perW {
		t.Fatalf("lost updates: %d, want %d — mutual exclusion violated",
			counter, workers*perW)
	}
}

func TestManyKeysConcurrent(t *testing.T) {
	m := newMgr(t, Config{DeadlockTimeout: 5 * time.Second})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := m.NewLocker(uint64(w+1), nil)
			for i := 0; i < 300; i++ {
				k := RowKey(uint32(i%7+1), uint64(i%97+1))
				mode := ModeS
				if (w+i)%3 == 0 {
					mode = ModeX
				}
				if err := l.Acquire(k, mode); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if i%5 == 4 {
					l.ReleaseAll()
				}
			}
			l.ReleaseAll()
		}(w)
	}
	wg.Wait()
}

func TestOnBlockHook(t *testing.T) {
	var blocks int
	var mu sync.Mutex
	m := newMgr(t, Config{
		DeadlockTimeout: time.Second,
		OnBlock: func() {
			mu.Lock()
			blocks++
			mu.Unlock()
		},
	})
	k := RowKey(1, 1)
	l1 := m.NewLocker(1, nil)
	l1.Acquire(k, ModeX)
	done := make(chan struct{})
	go func() {
		l2 := m.NewLocker(2, nil)
		l2.Acquire(k, ModeX)
		l2.ReleaseAll()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	l1.ReleaseAll()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if blocks != 1 {
		t.Fatalf("OnBlock called %d times, want 1", blocks)
	}
}

func TestLockerResetGuard(t *testing.T) {
	m := newMgr(t, Config{})
	l := m.NewLocker(1, nil)
	l.Acquire(RowKey(1, 1), ModeS)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Reset with held locks must panic")
			}
		}()
		l.Reset(2)
	}()
	l.ReleaseAll()
	l.Reset(2) // fine now
}

func TestStatsCounting(t *testing.T) {
	m := newMgr(t, Config{})
	l := m.NewLocker(1, nil)
	l.Acquire(RowKey(1, 1), ModeS)
	l.Acquire(RowKey(1, 1), ModeX) // upgrade
	l.ReleaseAll()
	st := m.Stats()
	if st.Acquires.Load() != 2 || st.Upgrades.Load() != 1 {
		t.Fatalf("stats: acquires=%d upgrades=%d", st.Acquires.Load(), st.Upgrades.Load())
	}
}
