// Package lockmgr implements the hierarchical two-phase lock manager the
// transactional substrate runs on: the standard IS/IX/S/SIX/X mode
// lattice, a partitioned hash lock table with FIFO queuing and upgrade
// priority, timeout-based deadlock resolution, Early Lock Release (§3),
// and a simplified Speculative Lock Inheritance ([10] in the paper) that
// lets agent threads retain hot locks across transactions.
package lockmgr

import "fmt"

// Mode is a lock mode in the standard hierarchical locking lattice.
type Mode int

const (
	// ModeNone holds nothing; the zero value.
	ModeNone Mode = iota
	// ModeIS is intention-shared: some descendant is read-locked.
	ModeIS
	// ModeIX is intention-exclusive: some descendant is write-locked.
	ModeIX
	// ModeS is shared: the whole object is read-locked.
	ModeS
	// ModeSIX is shared + intention-exclusive.
	ModeSIX
	// ModeX is exclusive.
	ModeX
	numModes
)

var modeNames = [numModes]string{"none", "IS", "IX", "S", "SIX", "X"}

// String returns the mode's conventional abbreviation.
func (m Mode) String() string {
	if m >= 0 && m < numModes {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Valid reports whether m is a usable lock mode (not ModeNone).
func (m Mode) Valid() bool { return m > ModeNone && m < numModes }

// compat is the standard compatibility matrix (Gray & Reuter).
// compat[a][b] == true means a granted lock in mode a is compatible with a
// request in mode b.
var compat = [numModes][numModes]bool{
	ModeNone: {ModeNone: true, ModeIS: true, ModeIX: true, ModeS: true, ModeSIX: true, ModeX: true},
	ModeIS:   {ModeNone: true, ModeIS: true, ModeIX: true, ModeS: true, ModeSIX: true, ModeX: false},
	ModeIX:   {ModeNone: true, ModeIS: true, ModeIX: true, ModeS: false, ModeSIX: false, ModeX: false},
	ModeS:    {ModeNone: true, ModeIS: true, ModeIX: false, ModeS: true, ModeSIX: false, ModeX: false},
	ModeSIX:  {ModeNone: true, ModeIS: true, ModeIX: false, ModeS: false, ModeSIX: false, ModeX: false},
	ModeX:    {ModeNone: true, ModeIS: false, ModeIX: false, ModeS: false, ModeSIX: false, ModeX: false},
}

// Compatible reports whether a request in mode b can coexist with a
// granted lock in mode a.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup is the supremum (least upper bound) table for lock conversions:
// sup[a][b] is the weakest mode at least as strong as both a and b.
var sup = [numModes][numModes]Mode{
	ModeNone: {ModeNone, ModeIS, ModeIX, ModeS, ModeSIX, ModeX},
	ModeIS:   {ModeIS, ModeIS, ModeIX, ModeS, ModeSIX, ModeX},
	ModeIX:   {ModeIX, ModeIX, ModeIX, ModeSIX, ModeSIX, ModeX},
	ModeS:    {ModeS, ModeS, ModeSIX, ModeS, ModeSIX, ModeX},
	ModeSIX:  {ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeX},
	ModeX:    {ModeX, ModeX, ModeX, ModeX, ModeX, ModeX},
}

// Supremum returns the weakest mode covering both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// Covers reports whether holding mode a satisfies a request for mode b.
func Covers(a, b Mode) bool { return Supremum(a, b) == a }

// Key names a lockable object. Space identifies a table (or other
// container); Object identifies a row within it, with Object==0 reserved
// for the container itself (the hierarchy parent).
type Key struct {
	// Space identifies the container (table).
	Space uint32
	// Object identifies the row; 0 names the container itself.
	Object uint64
}

// TableKey returns the container-level key for a space.
func TableKey(space uint32) Key { return Key{Space: space} }

// RowKey returns the row-level key for an object in a space. Object must
// be nonzero (zero names the table itself).
func RowKey(space uint32, object uint64) Key {
	return Key{Space: space, Object: object}
}

// IsTable reports whether k names a container rather than a row.
func (k Key) IsTable() bool { return k.Object == 0 }

// String formats the key for diagnostics.
func (k Key) String() string {
	if k.IsTable() {
		return fmt.Sprintf("space(%d)", k.Space)
	}
	return fmt.Sprintf("space(%d)/obj(%d)", k.Space, k.Object)
}

// hash mixes the key into a partition index (fibonacci hashing).
func (k Key) hash() uint64 {
	h := uint64(k.Space)*0x9E3779B97F4A7C15 ^ k.Object*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}
