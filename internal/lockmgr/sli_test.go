package lockmgr

import (
	"sync"
	"testing"
	"time"
)

func TestSLIRetainsUncontendedLock(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)

	l := m.NewLocker(1, cache)
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	l.ReleaseAll()

	// The grant stays in the table, attached to the cache.
	if got := len(m.HeldModes(k)); got != 1 {
		t.Fatalf("cached grant missing: %d grants", got)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len %d", cache.Len())
	}

	// Next transaction on the same agent hits the cache.
	l.Reset(2)
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SLIHits.Load() != 1 {
		t.Fatalf("SLI hits: %d", m.Stats().SLIHits.Load())
	}
	l.ReleaseAll()
}

func TestSLIStealByConflictingTxn(t *testing.T) {
	m := newMgr(t, Config{SLI: true, DeadlockTimeout: time.Second})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)

	l := m.NewLocker(1, cache)
	l.Acquire(k, ModeX)
	l.ReleaseAll() // cached, inactive

	// A different transaction takes the lock: it must steal the inactive
	// cached grant without waiting.
	other := m.NewLocker(2, nil)
	start := time.Now()
	if err := other.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("steal should be immediate")
	}
	if m.Stats().SLISteals.Load() != 1 {
		t.Fatalf("steals: %d", m.Stats().SLISteals.Load())
	}
	other.ReleaseAll()

	// The agent's next acquire must notice the theft and go through the
	// table.
	l.Reset(3)
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SLIHits.Load() != 0 {
		t.Fatal("stolen entry must not hit")
	}
	l.ReleaseAll()
}

func TestSLIReclaimWhileInUse(t *testing.T) {
	m := newMgr(t, Config{SLI: true, DeadlockTimeout: 2 * time.Second})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)

	l := m.NewLocker(1, cache)
	l.Acquire(k, ModeX)
	l.ReleaseAll()
	l.Reset(2)
	l.Acquire(k, ModeX) // adopt from cache (in use now)

	got := make(chan error, 1)
	go func() {
		other := m.NewLocker(3, nil)
		got <- other.Acquire(k, ModeX)
	}()
	select {
	case <-got:
		t.Fatal("conflicting acquire succeeded while lock in use")
	case <-time.After(20 * time.Millisecond):
	}

	// At commit, the agent must surrender the lock instead of re-caching.
	l.ReleaseAll()
	if err := <-got; err != nil {
		t.Fatalf("reclaim never happened: %v", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("reclaimed entry still cached: %d", cache.Len())
	}
}

func TestSLICompatibleRequestsCoexistWithCachedS(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)
	l := m.NewLocker(1, cache)
	l.Acquire(k, ModeS)
	l.ReleaseAll() // cached S grant stays

	// Another reader coexists with the cached S grant.
	other := m.NewLocker(2, nil)
	if err := other.Acquire(k, ModeS); err != nil {
		t.Fatal(err)
	}
	if got := len(m.HeldModes(k)); got != 2 {
		t.Fatalf("grants: %d, want cached S + live S", got)
	}
	other.ReleaseAll()
}

func TestSLIUpgradeOfCachedLock(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)
	l := m.NewLocker(1, cache)
	l.Acquire(k, ModeS)
	l.ReleaseAll()
	l.Reset(2)
	// Request X on a key cached in S: adopt + upgrade.
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	modes := m.HeldModes(k)
	if len(modes) != 1 || modes[0] != ModeX {
		t.Fatalf("modes after cached upgrade: %v", modes)
	}
	// Entry left the cache (it was consumed by the upgrade).
	if cache.Len() != 0 {
		t.Fatalf("cache len %d", cache.Len())
	}
	l.ReleaseAll()
}

func TestSLIUpgradeOfAdoptedLockMidTxn(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(16)
	k := RowKey(1, 7)
	l := m.NewLocker(1, cache)
	l.Acquire(k, ModeS)
	l.ReleaseAll()
	l.Reset(2)
	if err := l.Acquire(k, ModeS); err != nil { // adopt in S
		t.Fatal(err)
	}
	if err := l.Acquire(k, ModeX); err != nil { // upgrade the adopted lock
		t.Fatal(err)
	}
	modes := m.HeldModes(k)
	if len(modes) != 1 || modes[0] != ModeX {
		t.Fatalf("modes: %v", modes)
	}
	l.ReleaseAll()
	// After the upgrade consumed the entry, release is a normal release
	// (or re-cache): either way the agent can still lock again.
	l.Reset(3)
	if err := l.Acquire(k, ModeX); err != nil {
		t.Fatal(err)
	}
	l.ReleaseAll()
}

func TestSLICacheEviction(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(4)
	l := m.NewLocker(1, cache)
	for i := 1; i <= 10; i++ {
		if err := l.Acquire(RowKey(1, uint64(i)), ModeX); err != nil {
			t.Fatal(err)
		}
	}
	l.ReleaseAll()
	if cache.Len() > 4 {
		t.Fatalf("cache exceeded capacity: %d", cache.Len())
	}
	// Evicted keys must be fully released (no grants left behind).
	held := 0
	for i := 1; i <= 10; i++ {
		held += len(m.HeldModes(RowKey(1, uint64(i))))
	}
	if held != 4 {
		t.Fatalf("%d grants remain, want 4 cached", held)
	}
}

func TestSLIDropCache(t *testing.T) {
	m := newMgr(t, Config{SLI: true})
	cache := NewAgentCache(16)
	l := m.NewLocker(1, cache)
	for i := 1; i <= 5; i++ {
		l.Acquire(RowKey(1, uint64(i)), ModeX)
	}
	l.ReleaseAll()
	l.DropCache()
	if cache.Len() != 0 {
		t.Fatalf("cache not empty: %d", cache.Len())
	}
	for i := 1; i <= 5; i++ {
		if got := len(m.HeldModes(RowKey(1, uint64(i)))); got != 0 {
			t.Fatalf("key %d still has %d grants", i, got)
		}
	}
}

func TestSLIDisabledByConfig(t *testing.T) {
	m := newMgr(t, Config{SLI: false})
	cache := NewAgentCache(16)
	l := m.NewLocker(1, cache) // cache ignored when SLI off
	k := RowKey(1, 7)
	l.Acquire(k, ModeX)
	l.ReleaseAll()
	if len(m.HeldModes(k)) != 0 {
		t.Fatal("lock retained with SLI disabled")
	}
}

// TestSLIStressHotKey runs many agents, each with a private hot key
// (cache hits guaranteed) plus one shared key (mutual exclusion under
// steal/reclaim churn).
func TestSLIStressHotKey(t *testing.T) {
	m := newMgr(t, Config{SLI: true, DeadlockTimeout: 5 * time.Second})
	shared := RowKey(1, 1)
	var counter int
	const agents = 8
	const perA = 150
	var wg sync.WaitGroup
	var nextTxn struct {
		sync.Mutex
		n uint64
	}
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			cache := NewAgentCache(16)
			private := RowKey(2, uint64(a+1))
			l := m.NewLocker(0, cache)
			defer l.DropCache()
			for i := 0; i < perA; i++ {
				nextTxn.Lock()
				nextTxn.n++
				id := nextTxn.n
				nextTxn.Unlock()
				l.Reset(id)
				if err := l.Acquire(private, ModeX); err != nil {
					t.Errorf("acquire private: %v", err)
					return
				}
				if err := l.Acquire(shared, ModeX); err != nil {
					t.Errorf("acquire shared: %v", err)
					return
				}
				counter++
				l.ReleaseAll()
			}
		}(a)
	}
	wg.Wait()
	if counter != agents*perA {
		t.Fatalf("lost updates with SLI: %d, want %d", counter, agents*perA)
	}
	// Each agent's private key misses once (first acquire) and hits
	// thereafter — unless stolen, which cannot happen to private keys.
	wantHits := int64(agents * (perA - 1))
	if got := m.Stats().SLIHits.Load(); got < wantHits {
		t.Fatalf("SLI hits: %d, want at least %d", got, wantHits)
	}
}
