// Package logbuf implements the paper's five log-buffer designs (§5 and
// Appendix A) behind a single interface:
//
//   - Baseline — one mutex around LSN generation, buffer fill and release
//     (Algorithm 1).
//   - Consolidated (C) — consolidation-array backoff: threads that find the
//     mutex busy combine their requests in a slot array so only group
//     leaders compete for the buffer (Algorithms 2 and 5).
//   - Decoupled (D) — the mutex covers only LSN generation; buffer fills
//     proceed in parallel and are released in LSN order (Algorithm 3).
//   - Hybrid (CD) — consolidation plus decoupled fill; bounded contention
//     and full pipelining (§5.3).
//   - Delegated (CDME) — CD plus a lock-free release queue that lets fast
//     threads delegate their in-order release to a slower predecessor,
//     immunizing throughput against skewed record sizes (Algorithm 4, §A.3).
//
// All variants share the same circular buffer and uphold the same
// invariants: inserts get disjoint regions, regions are released to the
// flush daemon in LSN order with no gaps, and the released prefix always
// decodes as a valid record stream.
package logbuf

import (
	"errors"
	"fmt"

	"aether/internal/lsn"
	"aether/internal/metrics"
)

// Variant selects a log-buffer insert algorithm.
type Variant int

const (
	// VariantBaseline is the single-mutex design (Algorithm 1).
	VariantBaseline Variant = iota
	// VariantC is consolidation-array backoff (Algorithm 2).
	VariantC
	// VariantD is decoupled buffer fill (Algorithm 3).
	VariantD
	// VariantCD is the hybrid of C and D (§5.3).
	VariantCD
	// VariantCDME is CD with delegated buffer release (Algorithm 4).
	VariantCDME
	numVariants
)

var variantNames = [numVariants]string{"baseline", "C", "D", "CD", "CDME"}

// String returns the variant's short name as used in the paper's figures.
func (v Variant) String() string {
	if v >= 0 && v < numVariants {
		return variantNames[v]
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Variants lists all variants in presentation order.
var Variants = []Variant{VariantBaseline, VariantC, VariantD, VariantCD, VariantCDME}

// Config parameterizes a log buffer.
type Config struct {
	// Variant selects the insert algorithm.
	Variant Variant
	// Base is the LSN of the first byte this buffer will hand out. On a
	// fresh log it is zero; on restart it is the durable size of the log
	// device, so LSNs remain stable log addresses across crashes.
	Base lsn.LSN
	// Size is the ring capacity in bytes; rounded up to a power of two.
	// Default 16MiB.
	Size int
	// Slots is the consolidation-array width; the paper fixes 4 after the
	// Figure 12 sensitivity study. Default 4.
	Slots int
	// SlotPool is the number of pre-allocated consolidation slots cycled
	// through the array. Default 8×Slots.
	SlotPool int
	// MaxGroup caps the bytes one consolidated group may claim, so a
	// group can always fit in the ring. Default Size/8.
	MaxGroup int
	// Breakdown, if set, receives log-work vs log-contention time.
	Breakdown *metrics.Breakdown
	// LocalFill redirects buffer fills to inserter-local scratch memory.
	// This is the paper's "CD in L1" microbenchmark mode (§6.3.2): the
	// LSN, consolidation and release machinery all run unchanged, but the
	// big memcpy stays cache-resident, exposing the algorithms' cost with
	// the memory-bandwidth wall removed. The ring contents are garbage in
	// this mode, so it is only valid with a discarding reader.
	LocalFill bool
}

func (c *Config) applyDefaults() {
	if c.Size <= 0 {
		c.Size = 16 << 20
	}
	c.Size = ceilPow2(c.Size)
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.SlotPool <= 0 {
		c.SlotPool = 8 * c.Slots
	}
	if c.MaxGroup <= 0 {
		c.MaxGroup = c.Size / 8
	}
	if c.MaxGroup > c.Size/2 {
		c.MaxGroup = c.Size / 2
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ErrRecordTooLarge is returned when a record exceeds the buffer's group
// capacity.
var ErrRecordTooLarge = errors.New("logbuf: record exceeds buffer capacity")

// Inserter is a per-worker handle for inserting encoded records. Handles
// are not safe for concurrent use; each goroutine takes its own, which
// gives the algorithms their thread-local state (probe RNG, delegation
// RNG, local-fill scratch) without any shared-state rendezvous.
type Inserter interface {
	// Insert copies one encoded record into the log and returns the LSN
	// it was assigned (its address in the logical log stream).
	Insert(rec []byte) (lsn.LSN, error)
}

// Buffer is a log buffer: many concurrent inserters, one reader (the
// flush daemon).
type Buffer interface {
	// NewInserter returns a fresh per-goroutine insert handle.
	NewInserter() Inserter
	// Reader returns the flush daemon's view.
	Reader() *Reader
	// Variant reports the configured algorithm.
	Variant() Variant
	// Capacity returns the ring size in bytes.
	Capacity() int
	// MaxRecord returns the largest insertable record.
	MaxRecord() int
}

// New builds a log buffer with the chosen variant.
func New(cfg Config) (Buffer, error) {
	cfg.applyDefaults()
	if cfg.Variant < 0 || cfg.Variant >= numVariants {
		return nil, fmt.Errorf("logbuf: unknown variant %d", int(cfg.Variant))
	}
	r := newRing(cfg.Size, cfg.Base, cfg.Breakdown)
	switch cfg.Variant {
	case VariantBaseline:
		return newBaseline(r, cfg), nil
	case VariantC:
		return newConsolidated(r, cfg), nil
	case VariantD:
		return newDecoupled(r, cfg), nil
	case VariantCD:
		return newHybrid(r, cfg), nil
	case VariantCDME:
		return newDelegated(r, cfg), nil
	}
	panic("unreachable")
}

// Reader is the flush daemon's side of the buffer: it drains released
// bytes and recycles their space.
type Reader struct {
	r *ring
}

// Pending returns the current released-but-unflushed region [start, end).
// start==end means nothing to flush.
func (rd *Reader) Pending() (start, end lsn.LSN) {
	// Load order matters: flushed only grows toward released, so loading
	// flushed first can understate but never invert the interval.
	start = rd.r.flushed.Load()
	end = rd.r.released.Load()
	return start, end
}

// CopyOut linearizes the ring bytes [start, end) into dst, which must be
// at least end-start bytes. It returns the byte count copied.
func (rd *Reader) CopyOut(dst []byte, start, end lsn.LSN) int {
	return rd.r.copyOut(dst, start, end)
}

// MarkFlushed advances the flush watermark, reclaiming ring space for
// new inserts. end must not exceed the released frontier.
func (rd *Reader) MarkFlushed(end lsn.LSN) {
	if rel := rd.r.released.Load(); end > rel {
		panic(fmt.Sprintf("logbuf: MarkFlushed(%v) beyond released %v", end, rel))
	}
	rd.r.flushed.AdvanceTo(end)
}

// Released returns the release frontier: every byte below it is filled
// and flushable.
func (rd *Reader) Released() lsn.LSN { return rd.r.released.Load() }

// Flushed returns the flush watermark.
func (rd *Reader) Flushed() lsn.LSN { return rd.r.flushed.Load() }
