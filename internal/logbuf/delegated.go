package logbuf

import (
	"sync/atomic"

	"aether/internal/lsn"
	"aether/internal/metrics"
)

// This file implements the paper's CDME design (Algorithm 4, §A.3):
// hybrid CD plus *delegated buffer release*. The in-order release rule
// means many small inserts that finish in the shadow of one large insert
// must all wait for it; CDME turns the implicit LSN release queue into a
// physical lock-free queue so a finished thread can hand its release off
// to the slow predecessor and leave. The protocol follows Scott's
// abortable MCS queue locks and Oyama-style critical-section combining,
// as the paper describes.

// Release-queue node states.
const (
	// relWaiting: the owner has not finished its buffer fill (or has not
	// decided what to do with the node yet).
	relWaiting int32 = iota
	// relDelegated: the owner finished and abandoned the node; whichever
	// predecessor reaches it performs the release ("aborted" in Scott's
	// protocol).
	relDelegated
	// relReleased: a predecessor reached this node while its owner still
	// held it; the owner must perform its own release. A successful CAS
	// waiting→released is how the releaser "leaves before the successor
	// can delegate more work".
	relReleased
)

// relNode is one pending buffer release.
type relNode struct {
	start, end lsn.LSN
	hasPred    bool
	status     atomic.Int32
	next       atomic.Pointer[relNode]
}

// relQueue is the delegation queue. Nodes join in LSN order (joins happen
// inside the buffer-acquire critical section), so walking the queue and
// releasing node regions in order is exactly the in-order release rule.
type relQueue struct {
	r    *ring
	tail atomic.Pointer[relNode]
}

// join appends a node covering [start, end). Must be called while holding
// the log mutex so queue order equals LSN order.
func (q *relQueue) join(start, end lsn.LSN) *relNode {
	n := &relNode{start: start, end: end}
	prev := q.tail.Swap(n)
	if prev != nil {
		n.hasPred = true
		prev.next.Store(n)
	}
	return n
}

// release completes the owner's obligation for n after its fill is done:
// delegate to a predecessor if one is still working, otherwise release in
// order and sweep up any delegated successors.
func (q *relQueue) release(n *relNode, rng *xorshift) {
	if n.hasPred {
		// With probability 1/32 decline to delegate, park until the
		// frontier reaches us, and process the chain ourselves. This is
		// the paper's anti-treadmill rule: it bounds how long any single
		// predecessor can be stuck releasing other threads' buffers.
		if rng.next()&31 != 0 {
			if n.status.CompareAndSwap(relWaiting, relDelegated) {
				return // a predecessor owns our release now
			}
			// CAS failed: a predecessor already marked us released —
			// the frontier is at our region; fall through.
		} else {
			var sp spinner
			for n.status.Load() != relReleased {
				sp.spin()
			}
		}
	}

	// do_release: the frontier is exactly at cur.start.
	cur := n
	for {
		q.r.publishInOrder(cur.start, cur.end)
		next := cur.next.Load()
		if next == nil {
			// We appear to be the tail: try to leave.
			if q.tail.CompareAndSwap(cur, nil) {
				return
			}
			// Someone joined concurrently; wait for the link.
			var sp spinner
			for next == nil {
				sp.spin()
				next = cur.next.Load()
			}
		}
		if next.status.CompareAndSwap(relWaiting, relReleased) {
			// Successor still filling: it will release itself (and
			// everything we would have swept) when it finishes.
			return
		}
		// Successor had delegated: its release is ours too.
		cur = next
	}
}

// delegatedBuf is the CDME log buffer.
type delegatedBuf struct {
	r   *ring
	cfg Config
	arr *cArray
	q   relQueue

	mu   spinLock
	next lsn.LSN
}

func newDelegated(r *ring, cfg Config) *delegatedBuf {
	d := &delegatedBuf{
		r:    r,
		cfg:  cfg,
		arr:  newCArray(cfg.Slots, cfg.SlotPool, int64(cfg.MaxGroup)),
		next: cfg.Base,
	}
	d.q.r = r
	return d
}

// Variant implements Buf.
func (d *delegatedBuf) Variant() Variant { return VariantCDME }

// Capacity implements Buf.
func (d *delegatedBuf) Capacity() int { return int(d.r.capacity) }

// MaxRecord implements Buf.
func (d *delegatedBuf) MaxRecord() int { return d.cfg.MaxGroup }

// Reader implements Buf.
func (d *delegatedBuf) Reader() *Reader { return &Reader{r: d.r} }

// NewInserter implements Buf.
func (d *delegatedBuf) NewInserter() Inserter {
	ins := &delegatedInserter{d: d, rng: newXorshift()}
	if d.cfg.LocalFill {
		ins.local = make([]byte, d.cfg.MaxGroup)
	}
	return ins
}

type delegatedInserter struct {
	d     *delegatedBuf
	rng   *xorshift
	local []byte
}

// Insert implements Inserter — Algorithm 4 (§A.3), delegated buffer
// release: inserters enqueue their filled regions and leave; a queue
// leader publishes releases in order so no thread waits on a stalled
// predecessor.
func (ins *delegatedInserter) Insert(p []byte) (lsn.LSN, error) {
	d := ins.d
	size := int64(len(p))
	if len(p) > d.cfg.MaxGroup {
		return 0, ErrRecordTooLarge
	}
	var pt probeTimer
	pt.start(d.cfg.Breakdown)

	// Uncontended fast path: decoupled insert with a queued release.
	if d.mu.TryLock() {
		start := d.next
		end := start.Add(len(p))
		d.r.waitForSpace(end)
		d.next = end
		qn := d.q.join(start, end)
		d.mu.Unlock()
		pt.lap(metrics.PhaseLogContention)
		fill(d.r, localBuf(ins.local, len(p)), start, p)
		pt.lap(metrics.PhaseLogWork)
		d.q.release(qn, ins.rng)
		return start, nil
	}

	// Contention: consolidate; the group shares one queue node.
	s, offset := d.arr.join(ins.rng, size)
	var base lsn.LSN
	var group int64
	if offset == 0 {
		d.mu.Lock()
		group = d.arr.close(s)
		base = d.next
		end := base.Add(int(group))
		d.r.waitForSpace(end)
		d.next = end
		s.qnode = d.q.join(base, end)
		d.mu.Unlock()
		s.notify(base, group)
	} else {
		base, group = s.wait()
	}
	pt.lap(metrics.PhaseLogContention)

	my := base.Add(int(offset))
	fill(d.r, localBuf(ins.local, len(p)), my, p)
	pt.lap(metrics.PhaseLogWork)

	if s.release(size) {
		qn := s.qnode
		s.free()
		d.q.release(qn, ins.rng)
	}
	return my, nil
}
