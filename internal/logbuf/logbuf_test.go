package logbuf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/metrics"
)

// drain runs a background goroutine that immediately reclaims released
// bytes (optionally collecting them) until stop is closed. It returns the
// collected stream via the returned function.
func drain(b Buffer, collect bool) (stop func() []byte) {
	rd := b.Reader()
	done := make(chan struct{})
	var out []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		scratch := make([]byte, b.Capacity())
		for {
			start, end := rd.Pending()
			if start == end {
				select {
				case <-done:
					// Final sweep.
					start, end = rd.Pending()
					if start != end {
						n := rd.CopyOut(scratch, start, end)
						if collect {
							out = append(out, scratch[:n]...)
						}
						rd.MarkFlushed(end)
					}
					return
				default:
					continue
				}
			}
			n := rd.CopyOut(scratch, start, end)
			if collect {
				out = append(out, scratch[:n]...)
			}
			rd.MarkFlushed(start.Add(n))
		}
	}()
	return func() []byte {
		close(done)
		wg.Wait()
		return out
	}
}

// encodePayloadRecord builds an encoded record whose payload starts with a
// uint64 tag so the test can identify records in the drained stream.
func encodePayloadRecord(tag uint64, size int) []byte {
	if size < logrec.HeaderSize+8 {
		size = logrec.HeaderSize + 8
	}
	rec := logrec.NewPad(size)
	binary.LittleEndian.PutUint64(rec.Payload[:8], tag)
	buf, err := rec.Encode()
	if err != nil {
		panic(err)
	}
	return buf
}

func TestVariantString(t *testing.T) {
	if VariantCD.String() != "CD" || VariantBaseline.String() != "baseline" {
		t.Fatal("variant names wrong")
	}
	if Variant(99).String() != "variant(99)" {
		t.Fatal("out-of-range variant name wrong")
	}
}

func TestNewRejectsUnknownVariant(t *testing.T) {
	if _, err := New(Config{Variant: Variant(42)}); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 1000: 1024, 4096: 4096}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Size != 16<<20 || cfg.Slots != 4 || cfg.SlotPool != 32 || cfg.MaxGroup != cfg.Size/8 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	cfg2 := Config{Size: 1000, MaxGroup: 1 << 30}
	cfg2.applyDefaults()
	if cfg2.Size != 1024 {
		t.Fatalf("size not rounded: %d", cfg2.Size)
	}
	if cfg2.MaxGroup != 512 {
		t.Fatalf("MaxGroup not clamped: %d", cfg2.MaxGroup)
	}
}

func TestRecordTooLarge(t *testing.T) {
	for _, v := range Variants {
		b, err := New(Config{Variant: v, Size: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		ins := b.NewInserter()
		if _, err := ins.Insert(make([]byte, b.MaxRecord()+1)); !errors.Is(err, ErrRecordTooLarge) {
			t.Errorf("%v: got %v, want ErrRecordTooLarge", v, err)
		}
	}
}

// TestSingleThreadedStream checks that sequential inserts produce a
// decodable, in-order stream for every variant.
func TestSingleThreadedStream(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			b, err := New(Config{Variant: v, Size: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			stop := drain(b, true)
			ins := b.NewInserter()
			var wantLSNs []lsn.LSN
			cursor := lsn.Zero
			for i := 0; i < 200; i++ {
				rec := encodePayloadRecord(uint64(i), 56+i%300)
				got, err := ins.Insert(rec)
				if err != nil {
					t.Fatal(err)
				}
				if got != cursor {
					t.Fatalf("insert %d: LSN %v, want %v", i, got, cursor)
				}
				wantLSNs = append(wantLSNs, got)
				cursor = cursor.Add(len(rec))
			}
			stream := stop()
			it := logrec.NewIterator(stream, 0)
			var n int
			for {
				rec, ok := it.Next()
				if !ok {
					break
				}
				if rec.LSN != wantLSNs[n] {
					t.Fatalf("record %d at %v, want %v", n, rec.LSN, wantLSNs[n])
				}
				if tag := binary.LittleEndian.Uint64(rec.Payload[:8]); tag != uint64(n) {
					t.Fatalf("record %d has tag %d", n, tag)
				}
				n++
			}
			if it.Err() != nil {
				t.Fatalf("stream gap: %v", it.Err())
			}
			if n != 200 {
				t.Fatalf("decoded %d records, want 200", n)
			}
		})
	}
}

// TestConcurrentNoGapsNoOverlap is the core invariant test: many
// goroutines insert concurrently through a small ring (forcing wraparound
// and space waits); the drained stream must contain every record exactly
// once, and records must be intact.
func TestConcurrentNoGapsNoOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: tens of seconds of contention; run without -short")
	}
	const (
		workers = 16
		perW    = 300
	)
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			b, err := New(Config{Variant: v, Size: 1 << 15}) // small: force wrap + space waits
			if err != nil {
				t.Fatal(err)
			}
			stop := drain(b, true)

			lsnsCh := make(chan map[lsn.LSN]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ins := b.NewInserter()
					mine := make(map[lsn.LSN]uint64, perW)
					for i := 0; i < perW; i++ {
						tag := uint64(w)<<32 | uint64(i)
						size := 56 + (w*131+i*17)%400
						rec := encodePayloadRecord(tag, size)
						at, err := ins.Insert(rec)
						if err != nil {
							t.Errorf("insert: %v", err)
							return
						}
						mine[at] = tag
					}
					lsnsCh <- mine
				}(w)
			}
			wg.Wait()
			close(lsnsCh)
			want := make(map[lsn.LSN]uint64)
			for m := range lsnsCh {
				for k, tag := range m {
					if _, dup := want[k]; dup {
						t.Fatalf("two records claim LSN %v", k)
					}
					want[k] = tag
				}
			}

			stream := stop()
			it := logrec.NewIterator(stream, 0)
			seen := 0
			for {
				rec, ok := it.Next()
				if !ok {
					break
				}
				tag := binary.LittleEndian.Uint64(rec.Payload[:8])
				wantTag, present := want[rec.LSN]
				if !present {
					t.Fatalf("decoded record at unclaimed LSN %v", rec.LSN)
				}
				if tag != wantTag {
					t.Fatalf("LSN %v: tag %x, want %x", rec.LSN, tag, wantTag)
				}
				delete(want, rec.LSN)
				seen++
			}
			if it.Err() != nil {
				t.Fatalf("stream gap: %v", it.Err())
			}
			if seen != workers*perW {
				t.Fatalf("decoded %d records, want %d (missing %d)",
					seen, workers*perW, len(want))
			}
		})
	}
}

// TestSkewedSizes stresses the in-order release path with a strongly
// bimodal size distribution (the Fig. 11 scenario) for CD and CDME.
func TestSkewedSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: bimodal-size soak; run without -short")
	}
	for _, v := range []Variant{VariantCD, VariantCDME} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			b, err := New(Config{Variant: v, Size: 1 << 18, MaxGroup: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			stop := drain(b, true)
			var wg sync.WaitGroup
			const workers = 12
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ins := b.NewInserter()
					for i := 0; i < 150; i++ {
						size := 56
						if (w*150+i)%60 == 0 {
							size = 16 << 10 // outlier
						}
						if _, err := ins.Insert(encodePayloadRecord(uint64(w*1000+i), size)); err != nil {
							t.Errorf("insert: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			stream := stop()
			it := logrec.NewIterator(stream, 0)
			n := 0
			for {
				_, ok := it.Next()
				if !ok {
					break
				}
				n++
			}
			if it.Err() != nil {
				t.Fatalf("gap: %v", it.Err())
			}
			if n != workers*150 {
				t.Fatalf("decoded %d, want %d", n, workers*150)
			}
		})
	}
}

// TestReaderWatermarks verifies Pending/MarkFlushed bookkeeping.
func TestReaderWatermarks(t *testing.T) {
	b, err := New(Config{Variant: VariantBaseline, Size: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	ins := b.NewInserter()
	rd := b.Reader()
	rec := encodePayloadRecord(1, 64)
	if _, err := ins.Insert(rec); err != nil {
		t.Fatal(err)
	}
	start, end := rd.Pending()
	if start != 0 || end != lsn.LSN(len(rec)) {
		t.Fatalf("pending [%v,%v), want [0,%d)", start, end, len(rec))
	}
	dst := make([]byte, len(rec))
	if n := rd.CopyOut(dst, start, end); n != len(rec) {
		t.Fatalf("CopyOut: %d", n)
	}
	if !bytes.Equal(dst, rec) {
		t.Fatal("CopyOut bytes differ")
	}
	rd.MarkFlushed(end)
	if s, e := rd.Pending(); s != e {
		t.Fatalf("pending after flush: [%v,%v)", s, e)
	}
	if rd.Flushed() != end || rd.Released() != end {
		t.Fatal("watermarks wrong")
	}
}

func TestMarkFlushedBeyondReleasedPanics(t *testing.T) {
	b, _ := New(Config{Variant: VariantBaseline, Size: 1 << 12})
	defer func() {
		if recover() == nil {
			t.Fatal("MarkFlushed beyond released must panic")
		}
	}()
	b.Reader().MarkFlushed(999)
}

// TestWraparound inserts far more bytes than the ring holds so every
// physical offset is reused many times.
func TestWraparound(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: every variant through repeated ring wraps; run without -short")
	}
	for _, v := range Variants {
		b, err := New(Config{Variant: v, Size: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		stop := drain(b, true)
		ins := b.NewInserter()
		total := 0
		for i := 0; i < 500; i++ {
			rec := encodePayloadRecord(uint64(i), 56+(i%5)*100)
			if _, err := ins.Insert(rec); err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			total += len(rec)
		}
		stream := stop()
		if len(stream) != total {
			t.Fatalf("%v: drained %d bytes, want %d", v, len(stream), total)
		}
		it := logrec.NewIterator(stream, 0)
		n := 0
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			if tag := binary.LittleEndian.Uint64(rec.Payload[:8]); tag != uint64(n) {
				t.Fatalf("%v: record %d has tag %d", v, n, tag)
			}
			n++
		}
		if n != 500 || it.Err() != nil {
			t.Fatalf("%v: n=%d err=%v", v, n, it.Err())
		}
	}
}

// TestBreakdownProbe ensures the optional probe records log work.
func TestBreakdownProbe(t *testing.T) {
	var bd metrics.Breakdown
	b, err := New(Config{Variant: VariantCD, Size: 1 << 14, Breakdown: &bd})
	if err != nil {
		t.Fatal(err)
	}
	stop := drain(b, false)
	ins := b.NewInserter()
	for i := 0; i < 100; i++ {
		if _, err := ins.Insert(encodePayloadRecord(uint64(i), 256)); err != nil {
			t.Fatal(err)
		}
	}
	stop()
	if bd.Get(metrics.PhaseLogWork) <= 0 {
		t.Fatal("probe recorded no log work")
	}
}

// TestLocalFill checks the "CD in L1" mode still hands out correct LSNs
// and advances watermarks.
func TestLocalFill(t *testing.T) {
	for _, v := range Variants {
		b, err := New(Config{Variant: v, Size: 1 << 14, LocalFill: true})
		if err != nil {
			t.Fatal(err)
		}
		stop := drain(b, false)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ins := b.NewInserter()
				for i := 0; i < 200; i++ {
					if _, err := ins.Insert(make([]byte, 120)); err != nil {
						t.Errorf("%v: %v", v, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		stop()
		if got := b.Reader().Released(); got != lsn.LSN(4*200*120) {
			t.Fatalf("%v: released %v, want %d", v, got, 4*200*120)
		}
	}
}

// TestInserterIndependence verifies multiple inserters from one buffer
// interleave correctly on a single goroutine.
func TestInserterIndependence(t *testing.T) {
	b, _ := New(Config{Variant: VariantCDME, Size: 1 << 14})
	stop := drain(b, false)
	a, c := b.NewInserter(), b.NewInserter()
	var last lsn.LSN
	for i := 0; i < 50; i++ {
		l1, err := a.Insert(encodePayloadRecord(1, 64))
		if err != nil {
			t.Fatal(err)
		}
		l2, err := c.Insert(encodePayloadRecord(2, 64))
		if err != nil {
			t.Fatal(err)
		}
		if l2 <= l1 || (i > 0 && l1 <= last) {
			t.Fatalf("LSNs not increasing: %v %v %v", last, l1, l2)
		}
		last = l2
	}
	stop()
}

func TestCapacityAndMaxRecord(t *testing.T) {
	b, _ := New(Config{Variant: VariantCD, Size: 1 << 16})
	if b.Capacity() != 1<<16 {
		t.Fatalf("capacity %d", b.Capacity())
	}
	if b.MaxRecord() != 1<<13 {
		t.Fatalf("max record %d", b.MaxRecord())
	}
	if b.Variant() != VariantCD {
		t.Fatal("variant wrong")
	}
}

func ExampleNew() {
	b, err := New(Config{Variant: VariantCD, Size: 1 << 20})
	if err != nil {
		panic(err)
	}
	ins := b.NewInserter()
	rec, _ := logrec.NewCommit(1, lsn.Undefined).Encode()
	at, _ := ins.Insert(rec)
	fmt.Println(at, b.Variant())
	// Output: LSN(0) CD
}

// TestBackpressure verifies inserters block (rather than overwrite) when
// the ring is full and resume when the reader drains it.
func TestBackpressure(t *testing.T) {
	for _, v := range []Variant{VariantBaseline, VariantCD, VariantCDME} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			b, err := New(Config{Variant: v, Size: 4096, MaxGroup: 512})
			if err != nil {
				t.Fatal(err)
			}
			ins := b.NewInserter()
			rec := encodePayloadRecord(1, 256)
			// Fill the ring with NO reader draining.
			for i := 0; i < 4096/256; i++ {
				if _, err := ins.Insert(rec); err != nil {
					t.Fatal(err)
				}
			}
			// The next insert must block.
			done := make(chan lsn.LSN, 1)
			go func() {
				at, err := ins.Insert(rec)
				if err != nil {
					t.Errorf("blocked insert failed: %v", err)
				}
				done <- at
			}()
			select {
			case at := <-done:
				t.Fatalf("insert did not block on a full ring (got %v)", at)
			case <-time.After(50 * time.Millisecond):
			}
			// Drain one record's worth: the blocked insert completes.
			rd := b.Reader()
			start, end := rd.Pending()
			if end.Sub(start) == 0 {
				t.Fatal("nothing pending on a full ring")
			}
			scratch := make([]byte, 4096)
			rd.CopyOut(scratch, start, end)
			rd.MarkFlushed(end)
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("insert stayed blocked after drain")
			}
		})
	}
}
