package logbuf

import (
	"sync"
	"testing"

	"aether/internal/lsn"
)

// relHarness builds a queue over a fresh ring with a reclaiming reader.
func relHarness(size int) (*relQueue, func()) {
	r := newRing(size, 0, nil)
	q := &relQueue{r: r}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rd := Reader{r: r}
		for {
			s, e := rd.Pending()
			if s != e {
				rd.MarkFlushed(e)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	return q, func() { close(done); wg.Wait() }
}

func TestRelQueueSingleNode(t *testing.T) {
	q, stop := relHarness(1 << 12)
	defer stop()
	n := q.join(0, 100)
	if n.hasPred {
		t.Fatal("first node must have no predecessor")
	}
	q.release(n, newXorshift())
	if got := q.r.released.Load(); got != 100 {
		t.Fatalf("released %v, want 100", got)
	}
	if q.tail.Load() != nil {
		t.Fatal("tail should be empty after release")
	}
}

func TestRelQueueInOrderChain(t *testing.T) {
	q, stop := relHarness(1 << 12)
	defer stop()
	// Join three contiguous regions, then release them out of order:
	// the delegation protocol must still advance the frontier to the end.
	n1 := q.join(0, 10)
	n2 := q.join(10, 30)
	n3 := q.join(30, 60)
	rng := newXorshift()

	// n3 finishes first and delegates (or its releaser sweeps it).
	q.release(n3, rng)
	q.release(n2, rng)
	if got := q.r.released.Load(); got != 0 {
		// n2 and n3 may both have delegated; nothing released yet is legal.
		// But if n2 declined delegation it spun until n1 released — it
		// cannot have, since n1 hasn't released. So released must be 0.
		t.Fatalf("released %v before head, want 0", got)
	}
	q.release(n1, rng)
	// After the head releases, the chain must complete (possibly by n1
	// sweeping, possibly by handoff marks — but all paths end released=60).
	waitFor(t, func() bool { return q.r.released.Load() == 60 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
	}
	t.Fatal("condition never reached")
}

// TestRelQueueConcurrent hammers the queue from many goroutines with
// contiguous regions handed out under a mutex (as the real buffer does).
func TestRelQueueConcurrent(t *testing.T) {
	q, stop := relHarness(1 << 16)
	defer stop()

	var mu sync.Mutex
	var next lsn.LSN
	const workers = 16
	const perW = 400
	var wg sync.WaitGroup
	var total int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift()
			for i := 0; i < perW; i++ {
				size := 48 + (w*13+i*7)%300
				mu.Lock()
				start := next
				end := start.Add(size)
				q.r.waitForSpace(end)
				next = end
				n := q.join(start, end)
				mu.Unlock()
				// Simulate a fill of varying length.
				for spin := 0; spin < (w*i)%50; spin++ {
					_ = spin
				}
				q.release(n, rng)
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	total = int(next)
	mu.Unlock()
	waitFor(t, func() bool { return q.r.released.Load() == lsn.LSN(total) })
	if q.tail.Load() != nil {
		t.Fatal("queue not drained")
	}
}

// TestRelQueueDelegationHandoff exercises the waiting→released handoff:
// a successor that is still "filling" when its predecessor finishes must
// perform its own release.
func TestRelQueueDelegationHandoff(t *testing.T) {
	q, stop := relHarness(1 << 12)
	defer stop()
	rng := newXorshift()

	n1 := q.join(0, 10)
	n2 := q.join(10, 20)

	// Head releases while n2 is still filling: n1's sweep should mark n2
	// released and leave.
	q.release(n1, rng)
	waitFor(t, func() bool { return q.r.released.Load() == 10 })
	if got := n2.status.Load(); got != relReleased {
		t.Fatalf("n2 status %d, want released (handoff)", got)
	}
	// n2's owner now finishes; it must release itself.
	q.release(n2, rng)
	if got := q.r.released.Load(); got != 20 {
		t.Fatalf("released %v, want 20", got)
	}
}

// TestRelQueueTreadmillBreaker verifies the decline-to-delegate path
// (coin == 0) completes: the owner spins until the frontier reaches it
// and then releases itself.
func TestRelQueueTreadmillBreaker(t *testing.T) {
	q, stop := relHarness(1 << 12)
	defer stop()
	n1 := q.join(0, 10)
	n2 := q.join(10, 20)

	done := make(chan struct{})
	go func() {
		// Force the declining branch with a rigged RNG: next()&31 == 0.
		q.release(n2, &xorshift{s: riggedZeroCoinSeed})
		close(done)
	}()
	q.release(n1, newXorshift())
	<-done
	if got := q.r.released.Load(); got != 20 {
		t.Fatalf("released %v, want 20", got)
	}
}

// riggedZeroCoinSeed makes xorshift's first output ≡ 0 mod 32, found by
// search in TestRiggedSeedValid.
var riggedZeroCoinSeed = func() uint64 {
	for seed := uint64(1); ; seed++ {
		x := xorshift{s: seed}
		if x.next()&31 == 0 {
			return seed
		}
	}
}()

func TestRiggedSeedValid(t *testing.T) {
	x := xorshift{s: riggedZeroCoinSeed}
	if x.next()&31 != 0 {
		t.Fatal("rigged seed does not produce a zero coin")
	}
}
