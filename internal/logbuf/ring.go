package logbuf

import (
	"runtime"
	"sync/atomic"
	"time"

	"aether/internal/lsn"
	"aether/internal/metrics"
)

// spinner is the waiting policy for chain-critical waits (in-order
// release, slot notification). Two failure modes constrain it:
//
//   - It must never sleep: the release protocol serializes these waits,
//     and one sleeping waiter (Linux timer slack turns a 1µs sleep into
//     ~60µs) poisons the whole chain — orders-of-magnitude collapse.
//   - It must rarely call runtime.Gosched: Gosched moves the goroutine
//     through the runtime's global run queue under the scheduler lock;
//     a dozen hot-spinning goroutines convoy on that lock and starve
//     the very thread being waited for.
//
// So: busy-spin with a deliberate per-iteration pause (core-local atomic
// loads, ~30ns) to keep the watched cache line from being hammered, and
// a yield only every 4096 iterations (~100µs) purely as a fairness
// safety valve for goroutine counts above GOMAXPROCS. The paper's SPARC
// T2 spins the same way on dedicated hardware threads.
type spinner struct {
	n     uint32
	pause atomic.Uint32 // spinner-local; loads stay core-local
}

func (s *spinner) spin() {
	s.n++
	if s.n&4095 == 0 {
		runtime.Gosched()
		return
	}
	for i := 0; i < 16; i++ {
		_ = s.pause.Load()
	}
}

// spinLock is the log-buffer mutex: a test-and-test-and-set spinlock.
// The paper's critical sections here are sub-microsecond (LSN bump, or
// LSN bump + one memcpy), which is exactly the regime where parking
// locks lose: Go's sync.Mutex flips into starvation (handoff) mode after
// one unlucky >1ms wait and then serializes every acquisition through a
// goroutine wakeup (~10µs), collapsing insert throughput by an order of
// magnitude and never recovering. A spinlock matches both the paper's
// implementation and the workload.
type spinLock struct {
	v atomic.Int32
}

// TryLock attempts the lock without waiting.
func (l *spinLock) TryLock() bool {
	return l.v.Load() == 0 && l.v.CompareAndSwap(0, 1)
}

// Lock spins until the lock is acquired.
func (l *spinLock) Lock() {
	var sp spinner
	for {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		sp.spin()
	}
}

// Unlock releases the lock. Like sync.Mutex, unlocking from a different
// goroutine than the locker is allowed (variant C's group-exit relies on
// it).
func (l *spinLock) Unlock() {
	l.v.Store(0)
}

// parkSpinner is the policy for long, non-chain waits (buffer space):
// busy, then yield, then sleep. Sleeping is fine here because the waiter
// resumes only after the flush daemon frees megabytes of space; latency
// is amortized.
type parkSpinner int

func (s *parkSpinner) spin() {
	n := *s
	*s++
	switch {
	case n < 128:
		// busy wait
	case n < 512:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// ring is the circular byte buffer all variants share. LSNs are logical
// byte addresses; the physical location of LSN l is l & mask. Three
// watermarks partition the LSN space:
//
//	flushed  ≤  released  ≤  next (variant-owned insertion point)
//
// [0, flushed)        — copied out by the flusher; space reclaimable.
// [flushed, released) — filled and released; the flusher may drain it.
// [released, next)    — acquired by inserters, fills in flight.
//
// A writer may only touch bytes whose LSN is within capacity of the
// flushed watermark, which waitForSpace enforces.
type ring struct {
	buf      []byte
	capacity uint64
	mask     uint64

	released lsn.Atomic
	flushed  lsn.Atomic

	bd *metrics.Breakdown // optional probe; nil disables
}

func newRing(size int, base lsn.LSN, bd *metrics.Breakdown) *ring {
	r := &ring{
		buf:      make([]byte, size),
		capacity: uint64(size),
		mask:     uint64(size - 1),
		bd:       bd,
	}
	r.released.Store(base)
	r.flushed.Store(base)
	return r
}

// waitForSpace blocks until the region ending at end fits in the ring,
// i.e. no byte of it would overwrite unflushed data. Progress is
// guaranteed because the flusher drains released bytes independently of
// any lock the caller may hold, and every byte below the caller's region
// eventually gets released (fills never block on acquisition).
func (r *ring) waitForSpace(end lsn.LSN) {
	if uint64(end)-uint64(r.flushed.Load()) <= r.capacity {
		return
	}
	var t0 time.Time
	if r.bd != nil {
		t0 = time.Now()
	}
	var sp parkSpinner
	for uint64(end)-uint64(r.flushed.Load()) > r.capacity {
		sp.spin()
	}
	if r.bd != nil {
		r.bd.Add(metrics.PhaseLogContention, time.Since(t0))
	}
}

// copyIn writes p at LSN start, wrapping across the physical end of the
// buffer if needed. The caller must own [start, start+len(p)).
func (r *ring) copyIn(start lsn.LSN, p []byte) {
	off := uint64(start) & r.mask
	n := copy(r.buf[off:], p)
	if n < len(p) {
		copy(r.buf, p[n:])
	}
}

// copyOut linearizes [start, end) into dst.
func (r *ring) copyOut(dst []byte, start, end lsn.LSN) int {
	total := int(end.Sub(start))
	if total > len(dst) {
		total = len(dst)
		end = start.Add(total)
	}
	off := uint64(start) & r.mask
	n := copy(dst[:total], r.buf[off:])
	if n < total {
		copy(dst[n:total], r.buf)
	}
	return total
}

// publishInOrder implements Algorithm 3's release step: wait until every
// earlier byte is released, then advance the frontier past our region.
// The implicit queue of the release LSN avoids atomics beyond one load
// and one store per release.
func (r *ring) publishInOrder(start, end lsn.LSN) {
	if r.released.Load() != start {
		var t0 time.Time
		if r.bd != nil {
			t0 = time.Now()
		}
		var sp spinner
		for r.released.Load() != start {
			sp.spin()
		}
		if r.bd != nil {
			r.bd.Add(metrics.PhaseLogContention, time.Since(t0))
		}
	}
	r.released.Store(end)
}

// publish advances the release frontier when the caller already holds
// exclusive release rights (baseline and C hold the mutex here).
func (r *ring) publish(end lsn.LSN) {
	r.released.Store(end)
}
