package logbuf

import (
	"sync/atomic"

	"aether/internal/lsn"
)

// This file implements the consolidation array of Algorithm 5 (§A.2): the
// elimination-inspired backoff structure where threads that find the log
// mutex busy combine their insert requests into groups.
//
// A slot's lifecycle is driven by a single atomic int64 state word:
//
//	FREE            — in the pool, not visible to inserters.
//	OPEN (READY+n)  — in the array; n = bytes accumulated by joiners.
//	PENDING         — closed by the leader; group size being read.
//	COPYING (−n)    — notified; n = bytes whose fills are still running.
//	DONE (0)        — all fills complete; last releaser recycles it.
//
// Encoding (see the state diagram in Figure 10):
//
//	slotDone(0) < slotPending(1) < slotFree(2) < slotReady(1<<32) ≤ OPEN
//	COPYING states are the negative values −groupSize … −1.
//
// A joiner may join iff state ≥ slotReady, so every non-open state
// refuses joins with a single comparison.
const (
	slotDone    int64 = 0
	slotPending int64 = 1
	slotFree    int64 = 2
	slotReady   int64 = 1 << 32
)

// slot is one consolidation point. lsn and group are written by the
// group leader strictly before the state transition to COPYING and read
// by followers strictly after observing it, so they need no atomics.
type slot struct {
	state atomic.Int64
	lsn   lsn.LSN
	group int64
	idx   int // current position in the array, for replaceSlot
	// qnode is the group's shared release-queue node under CDME. Written
	// by the leader before notify, read by the last releaser; ordered by
	// the state transitions like lsn and group.
	qnode *relNode

	_ [16]byte // pad away false sharing with the neighboring slot
}

// cArray is the consolidation array plus its slot pool.
type cArray struct {
	slots []atomic.Pointer[slot] // ARRAY_SIZE live consolidation points
	pool  []*slot                // pre-allocated recycling pool
	// poolIdx is the circular allocation cursor. It is only touched while
	// holding the log mutex (slot_close runs inside the critical section),
	// exactly as the paper specifies, so it needs no synchronization.
	poolIdx  int
	maxGroup int64
}

func newCArray(slots, poolSize int, maxGroup int64) *cArray {
	if poolSize < 2*slots {
		poolSize = 2 * slots
	}
	a := &cArray{
		slots:    make([]atomic.Pointer[slot], slots),
		pool:     make([]*slot, poolSize),
		maxGroup: maxGroup,
	}
	for i := range a.pool {
		a.pool[i] = &slot{}
		a.pool[i].state.Store(slotFree)
	}
	// Seed the array with the first slots from the pool.
	for i := range a.slots {
		s := a.pool[i]
		s.state.Store(slotReady)
		s.idx = i
		a.slots[i].Store(s)
	}
	a.poolIdx = slots
	return a
}

// join implements slot_join (Algorithm 5 L1-19): probe open slots starting
// from a random position and CAS our size into the first that admits us.
// It returns the slot and our byte offset within the group; offset 0 makes
// the caller the group leader.
func (a *cArray) join(rng *xorshift, size int64) (*slot, int64) {
	var sp spinner
	for {
		s := a.slots[int(rng.next()%uint64(len(a.slots)))].Load()
		old := s.state.Load()
		for {
			if old < slotReady || old-slotReady+size > a.maxGroup {
				break // closed or full: probe another slot
			}
			if s.state.CompareAndSwap(old, old+size) {
				return s, old - slotReady
			}
			old = s.state.Load()
		}
		sp.spin()
	}
}

// close implements slot_close (L21-33): swap a fresh slot into the array
// so new arrivals keep consolidating, then atomically close this group
// and learn its total size. Must be called with the log mutex held (it
// touches the pool cursor).
func (a *cArray) close(s *slot) int64 {
	a.replaceSlot(s.idx)
	old := s.state.Swap(slotPending)
	return old - slotReady
}

// replaceSlot installs a FREE slot from the pool at array position idx.
// Called only under the log mutex.
func (a *cArray) replaceSlot(idx int) {
	for i := 0; ; i++ {
		s2 := a.pool[a.poolIdx%len(a.pool)]
		a.poolIdx++
		if s2.state.Load() == slotFree {
			s2.state.Store(slotReady)
			s2.idx = idx
			a.slots[idx].Store(s2)
			return
		}
		if i >= len(a.pool) {
			// The pool is sized so this never happens in practice; grow
			// gracefully rather than deadlock if a workload defeats it.
			s2 := &slot{}
			s2.state.Store(slotReady)
			s2.idx = idx
			a.slots[idx].Store(s2)
			a.pool = append(a.pool, s2)
			return
		}
	}
}

// notify implements slot_notify (L35-39): the leader publishes the group's
// base LSN and size, then flips the slot to COPYING so followers proceed.
func (s *slot) notify(base lsn.LSN, group int64) {
	s.lsn = base
	s.group = group
	s.state.Store(slotDone - group)
}

// wait implements slot_wait (L41-46): spin until the leader notifies,
// then read the group's base LSN and size.
func (s *slot) wait() (base lsn.LSN, group int64) {
	var sp spinner
	for s.state.Load() > slotDone {
		sp.spin()
	}
	return s.lsn, s.group
}

// release implements slot_release (L48-51): account our bytes as copied.
// It returns true when this was the group's last pending fill, in which
// case the caller must release the group's buffer region and then free
// the slot.
func (s *slot) release(size int64) bool {
	return s.state.Add(size) == slotDone
}

// free implements slot_free (L53-55): return the slot to the pool.
func (s *slot) free() {
	s.state.Store(slotFree)
}
