package logbuf

import (
	"sync"
	"testing"
	"testing/quick"

	"aether/internal/lsn"
)

func TestSlotStateEncoding(t *testing.T) {
	// The join admission test is a single comparison: state >= slotReady.
	// Every non-open state must sit below slotReady.
	for _, s := range []int64{slotDone, slotPending, slotFree, -1, -100000} {
		if s >= slotReady {
			t.Fatalf("state %d would admit joins", s)
		}
	}
	if slotDone != 0 {
		t.Fatal("DONE must be 0 so release's Add can detect completion")
	}
}

func TestSlotLifecycle(t *testing.T) {
	a := newCArray(2, 8, 1<<20)
	rng := newXorshift()

	// First joiner becomes leader (offset 0).
	s, off := a.join(rng, 100)
	if off != 0 {
		t.Fatalf("first joiner offset %d", off)
	}
	// Second joiner lands at offset 100 if it picks the same slot;
	// force that by joining directly via CAS on the same slot.
	old := s.state.Load()
	if !s.state.CompareAndSwap(old, old+50) {
		t.Fatal("manual join CAS failed")
	}

	group := a.close(s)
	if group != 150 {
		t.Fatalf("group size %d, want 150", group)
	}
	if got := s.state.Load(); got != slotPending {
		t.Fatalf("state after close: %d", got)
	}

	s.notify(lsn.LSN(4096), group)
	base, g := s.wait()
	if base != 4096 || g != 150 {
		t.Fatalf("wait got (%v,%d)", base, g)
	}

	if s.release(100) {
		t.Fatal("first release should not be last")
	}
	if !s.release(50) {
		t.Fatal("second release should be last")
	}
	s.free()
	if got := s.state.Load(); got != slotFree {
		t.Fatalf("state after free: %d", got)
	}
}

func TestSlotCloseReplacesInArray(t *testing.T) {
	a := newCArray(1, 8, 1<<20)
	rng := newXorshift()
	s, _ := a.join(rng, 10)
	idx := s.idx
	a.close(s)
	fresh := a.slots[idx].Load()
	if fresh == s {
		t.Fatal("closed slot still in array")
	}
	if fresh.state.Load() != slotReady {
		t.Fatal("replacement slot not open")
	}
}

func TestJoinSkipsClosedSlots(t *testing.T) {
	a := newCArray(2, 8, 1<<20)
	rng := newXorshift()
	// Close both live slots manually; join must find the replacements.
	for i := 0; i < 2; i++ {
		s := a.slots[i].Load()
		s.state.Store(slotPending)
		a.replaceSlot(i)
		s.state.Store(slotFree)
	}
	s, off := a.join(rng, 42)
	if off != 0 || s.state.Load() != slotReady+42 {
		t.Fatalf("join after replacement: off=%d state=%d", off, s.state.Load())
	}
}

func TestJoinRespectsMaxGroup(t *testing.T) {
	a := newCArray(1, 8, 100)
	rng := newXorshift()
	s1, off1 := a.join(rng, 80)
	if off1 != 0 {
		t.Fatalf("off1=%d", off1)
	}
	// A 30-byte join cannot fit in s1's group (80+30 > 100); the prober
	// will cycle until the slot is replaced, so run it concurrently.
	done := make(chan struct{})
	var s2 *slot
	var off2 int64
	go func() {
		defer close(done)
		s2, off2 = a.join(newXorshift(), 30)
	}()
	a.close(s1) // replaces the slot, letting the prober in
	<-done
	if s2 == s1 {
		t.Fatal("second join landed in full group")
	}
	if off2 != 0 {
		t.Fatalf("off2=%d, want 0 (leader of fresh group)", off2)
	}
}

func TestReplaceSlotGrowsPoolWhenExhausted(t *testing.T) {
	a := newCArray(1, 2, 1<<20)
	// Mark every pool slot busy.
	for _, s := range a.pool {
		s.state.Store(slotPending)
	}
	before := len(a.pool)
	a.replaceSlot(0)
	if len(a.pool) != before+1 {
		t.Fatalf("pool did not grow: %d -> %d", before, len(a.pool))
	}
	if a.slots[0].Load().state.Load() != slotReady {
		t.Fatal("grown slot not open")
	}
}

// TestConcurrentJoins has many goroutines join groups; the sum of sizes
// accounted through close must equal the sum of sizes joined.
func TestConcurrentJoins(t *testing.T) {
	a := newCArray(4, 32, 1<<30)
	const workers = 16
	const perW = 500

	var mu sync.Mutex // models the log mutex serializing close()
	var total int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift()
			for i := 0; i < perW; i++ {
				size := int64(48 + (w*31+i*7)%200)
				s, off := a.join(rng, size)
				if off == 0 {
					mu.Lock()
					group := a.close(s)
					s.notify(lsn.LSN(0), group)
					mu.Unlock()
					mu.Lock()
					total += group
					mu.Unlock()
				} else {
					s.wait()
				}
				if s.release(size) {
					s.free()
				}
			}
		}(w)
	}
	wg.Wait()

	var want int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			want += int64(48 + (w*31+i*7)%200)
		}
	}
	if total != want {
		t.Fatalf("accounted %d bytes, want %d", total, want)
	}
}

func TestXorshiftNonZeroAndVaried(t *testing.T) {
	r := newXorshift()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := r.next()
		if v == 0 {
			t.Fatal("xorshift emitted 0")
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Fatalf("xorshift poorly distributed: %d distinct of 1000", len(seen))
	}
	// Distinct inserters get distinct streams.
	r2 := newXorshift()
	if r2.next() == newXorshift().next() {
		t.Fatal("two fresh xorshifts collided immediately")
	}
}

// Property: join offsets within one group tile the group exactly.
func TestQuickGroupTiling(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 64 {
			return true
		}
		a := newCArray(1, 4, 1<<30)
		rng := newXorshift()
		offsets := make(map[int64]int64, len(sizes))
		var want int64
		var s0 *slot
		for _, raw := range sizes {
			size := int64(raw%512) + 48
			s, off := a.join(rng, size)
			if s0 == nil {
				s0 = s
			}
			if s != s0 {
				return false // single slot, single group expected
			}
			offsets[off] = size
			want += size
		}
		group := a.close(s0)
		if group != want {
			return false
		}
		// Offsets must tile [0, group) exactly.
		var cursor int64
		for cursor < group {
			size, ok := offsets[cursor]
			if !ok {
				return false
			}
			cursor += size
		}
		return cursor == group
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
