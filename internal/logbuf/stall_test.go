package logbuf

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestCDStallDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: multi-second stall hunt; run without -short")
	}
	b, err := New(Config{Variant: VariantCD, Size: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	h := b.(*hybridBuf)
	rd := b.Reader()
	stop := make(chan struct{})
	go func() {
		for {
			s, e := rd.Pending()
			if s != e {
				rd.MarkFlushed(e)
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	rec := make([]byte, 120)
	var inserts atomic.Int64
	for w := 0; w < 16; w++ {
		go func() {
			ins := b.NewInserter()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ins.Insert(rec)
				inserts.Add(1)
			}
		}()
	}
	last := LSNPair{}
	for i := 0; i < 20; i++ {
		time.Sleep(100 * time.Millisecond)
		cur := LSNPair{rd.Released(), rd.Flushed()}
		if cur == last {
			h.mu.Lock()
			next := h.next
			h.mu.Unlock()
			var states []int64
			for i := range h.arr.slots {
				states = append(states, h.arr.slots[i].Load().state.Load())
			}
			poolStates := map[int64]int{}
			for _, s := range h.arr.pool {
				poolStates[normState(s.state.Load())]++
			}
			t.Fatalf("STALL: released=%v flushed=%v next=%v inserts=%d arrayStates=%v poolHist=%v",
				cur.A, cur.B, next, inserts.Load(), states, poolStates)
		}
		last = cur
	}
	close(stop)
	t.Logf("no stall; inserts=%d released=%v", inserts.Load(), rd.Released())
	t.Logf("rate=%.0f inserts/sec", float64(inserts.Load())/2.0)
}

type LSNPair struct{ A, B interface{ String() string } }

func normState(s int64) int64 {
	switch {
	case s == slotFree:
		return -100
	case s == slotPending:
		return -200
	case s == slotDone:
		return -300
	case s >= slotReady:
		return 1
	default:
		return -1 // copying
	}
}

var _ = fmt.Sprint
