package logbuf

import (
	"sync/atomic"
	"time"

	"aether/internal/lsn"
	"aether/internal/metrics"
)

// xorshift is a tiny per-inserter PRNG (xorshift64*) used for slot probing
// and the CDME anti-treadmill coin. Each inserter owns one, so random
// choices never rendezvous on shared state.
type xorshift struct {
	s uint64
}

var rngSeed atomic.Uint64

func newXorshift() *xorshift {
	seed := rngSeed.Add(0x9E3779B97F4A7C15)
	if seed == 0 {
		seed = 1
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	s := x.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.s = s
	return s * 0x2545F4914F6CDD1D
}

// probeTimer optionally charges contention/work phases to a breakdown.
type probeTimer struct {
	bd *metrics.Breakdown
	t0 time.Time
}

func (p *probeTimer) start(bd *metrics.Breakdown) {
	if bd != nil {
		p.bd = bd
		p.t0 = time.Now()
	}
}

func (p *probeTimer) lap(phase metrics.Phase) {
	if p.bd != nil {
		now := time.Now()
		p.bd.Add(phase, now.Sub(p.t0))
		p.t0 = now
	}
}

// fill copies the record into the ring region (or, in LocalFill mode,
// into the inserter's scratch — the paper's "CD in L1" measurement mode).
func fill(r *ring, local []byte, start lsn.LSN, p []byte) {
	if local != nil {
		copy(local, p)
		return
	}
	r.copyIn(start, p)
}

// ---------------------------------------------------------------------
// Baseline (Algorithm 1)
// ---------------------------------------------------------------------

// baselineBuf serializes LSN generation, fill and release under one
// mutex. Contention grows with thread count, and the critical section
// grows with record size — the two weaknesses §5 sets out to fix.
type baselineBuf struct {
	r   *ring
	cfg Config

	mu   spinLock
	next lsn.LSN
}

func newBaseline(r *ring, cfg Config) *baselineBuf {
	return &baselineBuf{r: r, cfg: cfg, next: cfg.Base}
}

// Variant implements Buf.
func (b *baselineBuf) Variant() Variant { return VariantBaseline }

// Capacity implements Buf.
func (b *baselineBuf) Capacity() int { return int(b.r.capacity) }

// MaxRecord implements Buf.
func (b *baselineBuf) MaxRecord() int { return b.cfg.MaxGroup }

// Reader implements Buf.
func (b *baselineBuf) Reader() *Reader { return &Reader{r: b.r} }

// NewInserter implements Buf.
func (b *baselineBuf) NewInserter() Inserter {
	ins := &baselineInserter{b: b}
	if b.cfg.LocalFill {
		ins.local = make([]byte, b.cfg.MaxGroup)
	}
	return ins
}

type baselineInserter struct {
	b     *baselineBuf
	local []byte
}

// Insert implements Inserter — Algorithm 1: one mutex covers LSN
// allocation, buffer fill and release.
func (ins *baselineInserter) Insert(p []byte) (lsn.LSN, error) {
	b := ins.b
	if len(p) > b.cfg.MaxGroup {
		return 0, ErrRecordTooLarge
	}
	var pt probeTimer
	pt.start(b.cfg.Breakdown)
	b.mu.Lock()
	pt.lap(metrics.PhaseLogContention)
	start := b.next
	end := start.Add(len(p))
	b.r.waitForSpace(end)
	b.next = end
	fill(b.r, localBuf(ins.local, len(p)), start, p)
	b.r.publish(end)
	b.mu.Unlock()
	pt.lap(metrics.PhaseLogWork)
	return start, nil
}

func localBuf(local []byte, n int) []byte {
	if local == nil {
		return nil
	}
	return local[:n]
}

// ---------------------------------------------------------------------
// Decoupled buffer fill (Algorithm 3)
// ---------------------------------------------------------------------

// decoupledBuf holds the mutex only for LSN generation; fills run in
// parallel and regions are released in LSN order through the implicit
// release queue (publishInOrder). The critical section no longer depends
// on record size, but every thread still takes the mutex, so contention
// still grows with thread count.
type decoupledBuf struct {
	r   *ring
	cfg Config

	mu   spinLock
	next lsn.LSN
}

func newDecoupled(r *ring, cfg Config) *decoupledBuf {
	return &decoupledBuf{r: r, cfg: cfg, next: cfg.Base}
}

// Variant implements Buf.
func (d *decoupledBuf) Variant() Variant { return VariantD }

// Capacity implements Buf.
func (d *decoupledBuf) Capacity() int { return int(d.r.capacity) }

// MaxRecord implements Buf.
func (d *decoupledBuf) MaxRecord() int { return d.cfg.MaxGroup }

// Reader implements Buf.
func (d *decoupledBuf) Reader() *Reader { return &Reader{r: d.r} }

// NewInserter implements Buf.
func (d *decoupledBuf) NewInserter() Inserter {
	ins := &decoupledInserter{d: d}
	if d.cfg.LocalFill {
		ins.local = make([]byte, d.cfg.MaxGroup)
	}
	return ins
}

type decoupledInserter struct {
	d     *decoupledBuf
	local []byte
}

// Insert implements Inserter — Algorithm 3, decoupled buffer fill: a
// short spinlock-protected LSN allocation, then the copy proceeds
// outside any lock and release is signalled per-record.
func (ins *decoupledInserter) Insert(p []byte) (lsn.LSN, error) {
	d := ins.d
	if len(p) > d.cfg.MaxGroup {
		return 0, ErrRecordTooLarge
	}
	var pt probeTimer
	pt.start(d.cfg.Breakdown)
	d.mu.Lock()
	start := d.next
	end := start.Add(len(p))
	d.r.waitForSpace(end)
	d.next = end
	d.mu.Unlock()
	pt.lap(metrics.PhaseLogContention)
	fill(d.r, localBuf(ins.local, len(p)), start, p)
	pt.lap(metrics.PhaseLogWork)
	d.r.publishInOrder(start, end)
	return start, nil
}

// ---------------------------------------------------------------------
// Consolidation array (Algorithm 2)
// ---------------------------------------------------------------------

// consolidatedBuf keeps the baseline's monolithic critical section but
// diverts contending threads into the consolidation array: only group
// leaders compete for the mutex, so contention is bounded by the array
// width instead of the thread count. Fills within a group run in
// parallel (the group holds the mutex until its last member finishes);
// fills across groups are still serialized — the limitation the hybrid
// removes.
type consolidatedBuf struct {
	r   *ring
	cfg Config
	arr *cArray

	mu   spinLock
	next lsn.LSN
}

func newConsolidated(r *ring, cfg Config) *consolidatedBuf {
	return &consolidatedBuf{
		r:    r,
		cfg:  cfg,
		arr:  newCArray(cfg.Slots, cfg.SlotPool, int64(cfg.MaxGroup)),
		next: cfg.Base,
	}
}

// Variant implements Buf.
func (c *consolidatedBuf) Variant() Variant { return VariantC }

// Capacity implements Buf.
func (c *consolidatedBuf) Capacity() int { return int(c.r.capacity) }

// MaxRecord implements Buf.
func (c *consolidatedBuf) MaxRecord() int { return c.cfg.MaxGroup }

// Reader implements Buf.
func (c *consolidatedBuf) Reader() *Reader { return &Reader{r: c.r} }

// NewInserter implements Buf.
func (c *consolidatedBuf) NewInserter() Inserter {
	ins := &consolidatedInserter{c: c, rng: newXorshift()}
	if c.cfg.LocalFill {
		ins.local = make([]byte, c.cfg.MaxGroup)
	}
	return ins
}

type consolidatedInserter struct {
	c     *consolidatedBuf
	rng   *xorshift
	local []byte
}

// Insert implements Inserter — Algorithm 2, consolidation-array
// backoff: threads that lose the buffer mutex combine their requests
// in an array slot and one leader inserts the whole group.
func (ins *consolidatedInserter) Insert(p []byte) (lsn.LSN, error) {
	c := ins.c
	size := int64(len(p))
	if len(p) > c.cfg.MaxGroup {
		return 0, ErrRecordTooLarge
	}
	var pt probeTimer
	pt.start(c.cfg.Breakdown)

	// Uncontended fast path: behave exactly like the baseline.
	if c.mu.TryLock() {
		pt.lap(metrics.PhaseLogContention)
		start := c.next
		end := start.Add(len(p))
		c.r.waitForSpace(end)
		c.next = end
		fill(c.r, localBuf(ins.local, len(p)), start, p)
		c.r.publish(end)
		c.mu.Unlock()
		pt.lap(metrics.PhaseLogWork)
		return start, nil
	}

	// Contention: back off into the consolidation array.
	s, offset := c.arr.join(ins.rng, size)
	var base lsn.LSN
	var group int64
	if offset == 0 {
		// Group leader: acquire buffer space for everyone.
		c.mu.Lock()
		group = c.arr.close(s)
		base = c.next
		end := base.Add(int(group))
		c.r.waitForSpace(end)
		c.next = end
		s.notify(base, group)
	} else {
		base, group = s.wait()
	}
	pt.lap(metrics.PhaseLogContention)

	my := base.Add(int(offset))
	fill(c.r, localBuf(ins.local, len(p)), my, p)
	pt.lap(metrics.PhaseLogWork)

	if s.release(size) {
		// Last fill of the group: release the group's region and the
		// mutex the leader acquired. Go's sync.Mutex explicitly permits
		// unlock from a goroutine other than the locker.
		c.r.publish(base.Add(int(group)))
		c.mu.Unlock()
		s.free()
	}
	return my, nil
}

// ---------------------------------------------------------------------
// Hybrid CD (§5.3)
// ---------------------------------------------------------------------

// hybridBuf combines consolidation (bounded contention) with decoupled
// fill (pipelining across groups, record-size-independent critical
// section) — the paper's headline design.
type hybridBuf struct {
	r   *ring
	cfg Config
	arr *cArray

	mu   spinLock
	next lsn.LSN
}

func newHybrid(r *ring, cfg Config) *hybridBuf {
	return &hybridBuf{
		r:    r,
		cfg:  cfg,
		arr:  newCArray(cfg.Slots, cfg.SlotPool, int64(cfg.MaxGroup)),
		next: cfg.Base,
	}
}

// Variant implements Buf.
func (h *hybridBuf) Variant() Variant { return VariantCD }

// Capacity implements Buf.
func (h *hybridBuf) Capacity() int { return int(h.r.capacity) }

// MaxRecord implements Buf.
func (h *hybridBuf) MaxRecord() int { return h.cfg.MaxGroup }

// Reader implements Buf.
func (h *hybridBuf) Reader() *Reader { return &Reader{r: h.r} }

// NewInserter implements Buf.
func (h *hybridBuf) NewInserter() Inserter {
	ins := &hybridInserter{h: h, rng: newXorshift()}
	if h.cfg.LocalFill {
		ins.local = make([]byte, h.cfg.MaxGroup)
	}
	return ins
}

type hybridInserter struct {
	h     *hybridBuf
	rng   *xorshift
	local []byte
}

// Insert implements Inserter — the paper's hybrid CD design (§5.3):
// consolidation-array group formation over decoupled buffer fill.
func (ins *hybridInserter) Insert(p []byte) (lsn.LSN, error) {
	h := ins.h
	size := int64(len(p))
	if len(p) > h.cfg.MaxGroup {
		return 0, ErrRecordTooLarge
	}
	var pt probeTimer
	pt.start(h.cfg.Breakdown)

	// Uncontended fast path: decoupled insert.
	if h.mu.TryLock() {
		start := h.next
		end := start.Add(len(p))
		h.r.waitForSpace(end)
		h.next = end
		h.mu.Unlock()
		pt.lap(metrics.PhaseLogContention)
		fill(h.r, localBuf(ins.local, len(p)), start, p)
		pt.lap(metrics.PhaseLogWork)
		h.r.publishInOrder(start, end)
		return start, nil
	}

	// Contention: consolidate, then fill decoupled.
	s, offset := h.arr.join(ins.rng, size)
	var base lsn.LSN
	var group int64
	if offset == 0 {
		h.mu.Lock()
		group = h.arr.close(s)
		base = h.next
		end := base.Add(int(group))
		h.r.waitForSpace(end)
		h.next = end
		h.mu.Unlock() // decoupled: fills happen outside the mutex
		s.notify(base, group)
	} else {
		base, group = s.wait()
	}
	pt.lap(metrics.PhaseLogContention)

	my := base.Add(int(offset))
	fill(h.r, localBuf(ins.local, len(p)), my, p)
	pt.lap(metrics.PhaseLogWork)

	if s.release(size) {
		// Last member releases the whole group's region, in LSN order
		// with respect to other groups and direct inserts.
		h.r.publishInOrder(base, base.Add(int(group)))
		s.free()
	}
	return my, nil
}
