package logdev

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aether/internal/fsutil"
	"aether/internal/vfs"
)

// Archiver is cold storage for dead log segments — the BtrLog-style
// archive-before-recycle lifecycle. A Segmented device with an archiver
// attached never deletes a dead segment until Archive has returned for
// it, so the full log history survives below the truncation base: the
// hot log stays tiny while audit/replay readers restore archived
// segments on demand (RestoreRange, aether.RestoreTail, logdump).
//
// Implementations must make Archive durable before returning (the
// segment file is unlinked right after) and should be idempotent: a
// crash between Archive and the recycle re-archives the same segment on
// the next pass. DirArchiver is the in-tree local-directory cold store;
// the interface is deliberately small enough for S3-style backends.
type Archiver interface {
	// Archive durably stores the full contents of dead segment idx.
	// data is exactly one segment (SegmentSize bytes). Archiving the
	// same idx twice with identical contents must succeed.
	Archive(idx int64, data []byte) error
	// Retrieve returns segment idx's archived contents, or
	// ErrNotArchived if idx was never archived.
	Retrieve(idx int64) ([]byte, error)
	// Segments lists archived segment indexes in ascending order.
	Segments() ([]int64, error)
}

// ErrNotArchived is returned by Archiver.Retrieve for a segment the
// archive does not hold.
var ErrNotArchived = errors.New("logdev: segment not archived")

// DirArchiver is the local-directory Archiver: each dead segment is a
// file <dir>/<index>.seg, installed atomically (synced temp file, then
// rename, then directory fsync) so a crash mid-archive can never leave
// a half-written segment that a restore would trust.
type DirArchiver struct {
	fs  vfs.FS
	dir string
}

// OpenDirArchiver opens (creating if needed) a local cold-storage
// directory. Orphan temp files from a crash mid-archive are swept out.
func OpenDirArchiver(dir string) (*DirArchiver, error) {
	return OpenDirArchiverFS(vfs.OS{}, dir)
}

// OpenDirArchiverFS is OpenDirArchiver over an arbitrary filesystem —
// the fault-injection entry point.
func OpenDirArchiverFS(fs vfs.FS, dir string) (*DirArchiver, error) {
	if _, err := fs.Stat(dir); err != nil {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("logdev: create archive %s: %w", dir, err)
		}
		// Make the archive directory's own dentry durable before any
		// segment is installed inside it: otherwise a crash could drop
		// the directory wholesale after Archive has acknowledged.
		if err := fsutil.SyncDirFS(fs, filepath.Dir(dir)); err != nil {
			return nil, fmt.Errorf("logdev: sync parent of archive %s: %w", dir, err)
		}
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logdev: open archive %s: %w", dir, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := fs.Remove(filepath.Join(dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("logdev: sweep stale temp %s: %w", e.Name(), err)
			}
		}
	}
	return &DirArchiver{fs: fs, dir: dir}, nil
}

// DirArchiverAt returns a handle on an existing cold-storage directory
// without creating it or sweeping temp files — the read-side open for
// diagnostic tools (logdump) that must not mutate a live archiver's
// directory. Retrieve and Segments work as usual; Archive still writes,
// so writers should use OpenDirArchiver.
func DirArchiverAt(dir string) (*DirArchiver, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("logdev: open archive %s: %w", dir, err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("logdev: archive %s is not a directory", dir)
	}
	return &DirArchiver{fs: vfs.OS{}, dir: dir}, nil
}

// Dir returns the cold-storage directory path.
func (a *DirArchiver) Dir() string { return a.dir }

func (a *DirArchiver) segPath(idx int64) string {
	return filepath.Join(a.dir, fmt.Sprintf("%016d.seg", idx))
}

// Archive implements Archiver. The segment is crash-installed: bytes
// are fsynced in a temp file, renamed into place, and the directory
// entry is fsynced before Archive returns — only then may the caller
// unlink the hot copy.
func (a *DirArchiver) Archive(idx int64, data []byte) error {
	path := a.segPath(idx)
	if st, err := a.fs.Stat(path); err == nil && st.Size() == int64(len(data)) {
		// Already archived (a crash interrupted the recycle): the
		// archive is immutable history, so an existing full-size copy
		// is the same bytes.
		return nil
	}
	tmp := path + ".tmp"
	if err := fsutil.WriteFileSyncFS(a.fs, tmp, data, 0o644); err != nil {
		return fmt.Errorf("logdev: archive segment %d: %w", idx, err)
	}
	if err := a.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("logdev: install archived segment %d: %w", idx, err)
	}
	if err := fsutil.SyncDirFS(a.fs, a.dir); err != nil {
		return fmt.Errorf("logdev: sync archive dir: %w", err)
	}
	return nil
}

// Retrieve implements Archiver.
func (a *DirArchiver) Retrieve(idx int64) ([]byte, error) {
	data, err := a.fs.ReadFile(a.segPath(idx))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("logdev: segment %d: %w", idx, ErrNotArchived)
	}
	if err != nil {
		return nil, fmt.Errorf("logdev: retrieve segment %d: %w", idx, err)
	}
	return data, nil
}

// Segments implements Archiver.
func (a *DirArchiver) Segments() ([]int64, error) {
	entries, err := a.fs.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("logdev: list archive %s: %w", a.dir, err)
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, perr := strconv.ParseInt(strings.TrimSuffix(name, ".seg"), 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MemArchiver is an in-memory Archiver for tests and simulated
// deployments: cold storage that survives the simulated crashes the
// memory-backed Segmented device models.
type MemArchiver struct {
	mu    sync.Mutex
	segs  map[int64][]byte
	fail  error
	failN int // with fail set: fail only this many more calls (0 = every call)
}

// NewMemArchiver returns an empty in-memory archive.
func NewMemArchiver() *MemArchiver {
	return &MemArchiver{segs: make(map[int64][]byte)}
}

// FailWith injects err into every subsequent Archive call until cleared
// with FailWith(nil) — tests use it to prove dead segments are never
// recycled while the cold store is down.
func (a *MemArchiver) FailWith(err error) {
	a.mu.Lock()
	a.fail = err
	a.failN = 0
	a.mu.Unlock()
}

// FailTimes injects err into the next n Archive calls, then heals — a
// transient cold-store outage. Tests use it to prove the engine's
// archiver retries with backoff and loses nothing.
func (a *MemArchiver) FailTimes(n int, err error) {
	a.mu.Lock()
	a.fail = err
	a.failN = n
	a.mu.Unlock()
}

// Archive implements Archiver.
func (a *MemArchiver) Archive(idx int64, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fail != nil {
		err := a.fail
		if a.failN > 0 {
			if a.failN--; a.failN == 0 {
				a.fail = nil
			}
		}
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	a.segs[idx] = cp
	return nil
}

// Retrieve implements Archiver.
func (a *MemArchiver) Retrieve(idx int64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	data, ok := a.segs[idx]
	if !ok {
		return nil, fmt.Errorf("logdev: segment %d: %w", idx, ErrNotArchived)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Segments implements Archiver.
func (a *MemArchiver) Segments() ([]int64, error) {
	a.mu.Lock()
	out := make([]int64, 0, len(a.segs))
	for idx := range a.segs {
		out = append(out, idx)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

var (
	_ Archiver = (*DirArchiver)(nil)
	_ Archiver = (*MemArchiver)(nil)
)

// ArchivingTruncator is the optional Truncator extension for devices
// whose dead segments are shipped to cold storage before their slots
// are recycled. The log manager forwards the background archiver's
// drain calls through it.
type ArchivingTruncator interface {
	Truncator
	// ArchivePending ships every dead segment awaiting recycle to the
	// attached archiver and recycles it, returning how many were
	// archived this pass.
	ArchivePending() (int, error)
	// HasArchiver reports whether an archiver is attached.
	HasArchiver() bool
}

// RestoreRange reads the archived log bytes covering [from, to) from a,
// whose segments are segSize bytes each. Only the newest contiguous run
// of archived segments ending at `to` is restorable: if the oldest
// requested bytes are missing — because from predates the archive, or
// because a hole interrupts it — the range is clamped up and the
// returned start is the first offset of that contiguous run, with data
// holding [start, to). Callers needing record-aligned output must
// treat start > from as "older history unavailable" (a segment
// boundary is not a record boundary); Archiver.Segments still lists
// any orphaned segments stranded below a hole.
func RestoreRange(a Archiver, segSize, from, to int64) (data []byte, start int64, err error) {
	if segSize <= 0 {
		return nil, 0, fmt.Errorf("logdev: restore: segment size %d", segSize)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return nil, to, nil
	}
	have, err := a.Segments()
	if err != nil {
		return nil, 0, fmt.Errorf("logdev: restore: %w", err)
	}
	present := make(map[int64]bool, len(have))
	for _, idx := range have {
		present[idx] = true
	}
	firstIdx, lastIdx := from/segSize, (to-1)/segSize
	// Walk from the newest needed segment down: the first gap bounds
	// how far back history can be restored contiguously.
	startIdx := firstIdx
	for idx := lastIdx; idx >= firstIdx; idx-- {
		if !present[idx] {
			if idx == lastIdx {
				return nil, to, nil // nothing restorable in range
			}
			startIdx = idx + 1
			break
		}
	}
	start = startIdx * segSize
	if start < from {
		start = from
	}
	data = make([]byte, 0, to-start)
	for idx := startIdx; idx <= lastIdx; idx++ {
		seg, err := a.Retrieve(idx)
		if err != nil {
			return nil, 0, fmt.Errorf("logdev: restore segment %d: %w", idx, err)
		}
		if int64(len(seg)) != segSize {
			return nil, 0, fmt.Errorf("logdev: archived segment %d is %d bytes, want %d", idx, len(seg), segSize)
		}
		lo, hi := int64(0), segSize
		if segStart := idx * segSize; segStart < start {
			lo = start - segStart
		}
		if segStart := idx * segSize; segStart+segSize > to {
			hi = to - segStart
		}
		data = append(data, seg[lo:hi]...)
	}
	return data, start, nil
}

// RestoreLog returns the log bytes [start, durable end), stitching
// archived history below the hot log to the live bytes on the device.
// start is `from` itself when the archive and the device cover it
// contiguously; otherwise the truncation base — the oldest
// record-aligned offset the hot log guarantees. (Archived segment
// boundaries are not record boundaries, so partially restorable
// history cannot be handed to a record iterator; rather than return
// bytes that begin mid-record, RestoreLog falls back to the base.)
// from itself must be a record boundary: 0, the base, or an LSN a
// previous call returned.
//
// The whole operation — draining pending dead segments to arch (when
// non-nil), then reading — runs under the archive mutex: a concurrent
// truncation can park segments mid-restore (they stay readable on the
// device) but never recycle one out from under the read.
func (s *Segmented) RestoreLog(arch Archiver, from int64) ([]byte, int64, error) {
	if from < 0 {
		from = 0
	}
	s.archMu.Lock()
	defer s.archMu.Unlock()
	if arch != nil && !s.readOnly {
		if _, err := s.archivePendingLocked(); err != nil {
			return nil, 0, fmt.Errorf("logdev: draining pending segments: %w", err)
		}
	}
	s.mu.Lock()
	durable := s.durable
	base := s.base
	// The device's oldest physically-present byte: live segments plus
	// any dead segments still parked for the archiver (readable through
	// the pending fallback) — a failed or read-only drain must not cost
	// the restore their bytes.
	liveStart := s.size
	for idx := range s.segs {
		if o := idx * s.segSize; o < liveStart {
			liveStart = o
		}
	}
	for idx := range s.pending {
		if o := idx * s.segSize; o < liveStart {
			liveStart = o
		}
	}
	s.mu.Unlock()
	if from > durable {
		from = durable
	}
	start := from
	var archData []byte
	if from < liveStart {
		if arch != nil {
			var err error
			archData, start, err = RestoreRange(arch, s.segSize, from, liveStart)
			if err != nil {
				return nil, 0, err
			}
		} else {
			start = liveStart
		}
	}
	if start > from {
		// The archive cannot reach back to from: anything it could
		// restore would begin mid-record at a segment boundary. Hand
		// back the hot log from its record-aligned base instead.
		archData, start = nil, base
	}
	rawFrom := liveStart
	if start > rawFrom {
		rawFrom = start
	}
	live := make([]byte, durable-rawFrom)
	for off := rawFrom; off < durable; {
		n, err := s.RawReadAt(live[off-rawFrom:], off)
		off += int64(n)
		if err != nil {
			if err == io.EOF && off == durable {
				break
			}
			return nil, 0, err
		}
	}
	return append(archData, live...), start, nil
}
