package logdev

import (
	"bytes"
	"testing"
)

// FuzzCompactedIndex fuzzes the cloud tier's object decoders — the
// envelope, the pack index, and the snapshot payload — which parse
// bytes fetched from a remote store that may hand back torn, truncated
// or hostile objects. The decoders must reject garbage with an error,
// never panic or over-allocate, and anything they accept must re-encode
// to a decode-equal value.
func FuzzCompactedIndex(f *testing.F) {
	// Valid seeds: a two-segment pack and a snapshot with pages + stash.
	seg := bytes.Repeat([]byte{0xAB}, 64)
	f.Add(EncodeObject(ObjPack, 7, EncodePack(7, [][]byte{seg, seg})))
	f.Add(EncodeObject(ObjSnapshot, 4096, EncodeSnapshot(&Snapshot{
		Cut:   4096,
		Pages: []SnapshotPage{{PID: 1, Image: []byte("page")}},
		Stash: []SnapshotStashRec{{TxnID: 3, At: 100, PageID: 1, Payload: []byte("undo")}},
	})))
	f.Add(EncodeObject(ObjSegment, 42, seg))
	f.Add([]byte("AEOB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, meta, payload, err := DecodeObject(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Accepted envelopes must round-trip bit-identically.
		if !bytes.Equal(EncodeObject(kind, meta, payload), data) {
			t.Fatalf("envelope round-trip mismatch (kind %d)", kind)
		}
		switch kind {
		case ObjPack:
			entries, derr := DecodePackIndex(payload)
			if derr != nil {
				return
			}
			for i := range entries {
				seg, serr := PackSegment(payload, entries, i)
				if serr != nil {
					t.Fatalf("index accepted but segment %d unreadable: %v", i, serr)
				}
				if len(seg) != int(entries[i].Len) {
					t.Fatalf("segment %d: %d bytes, index says %d", i, len(seg), entries[i].Len)
				}
			}
		case ObjSnapshot:
			s, derr := DecodeSnapshot(payload)
			if derr != nil {
				return
			}
			if !bytes.Equal(EncodeSnapshot(s), payload) {
				t.Fatal("snapshot round-trip mismatch")
			}
		}
	})
}
