package logdev

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// segFile returns the path of segment idx in dir (16-digit zero-padded,
// matching dirSegBackend.segPath).
func segFile(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d.seg", idx))
}

// TestTornTailRepairedFromWatermark is the headline crash test: a power
// loss whose writeback persisted unsynced bytes in segment N+1 but not
// in segment N used to read as a mid-log gap ("corruption") and fail
// Open. With the durable watermark in the segment directory, Open
// clamps the log back to the watermark — discarding only bytes no
// completed Sync ever covered — and the synced prefix reads back intact.
func TestTornTailRepairedFromWatermark(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(150, 'w') // segments 0,1 full; segment 2 holds 22 bytes
	appendSync(t, s, want) // watermark hardens at 150
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulated power loss mid-append: the device's write cache flushed
	// a later segment's unsynced bytes (a brand-new segment 3 appears,
	// fully written) but dropped the earlier segment 2's tail (it stays
	// at its synced 22 bytes). File sizes now lie about durability.
	if err := os.WriteFile(segFile(dir, 3), fill(64, 'J'), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatalf("Open failed on a repairable torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.DurableSize(); got != 150 {
		t.Fatalf("DurableSize = %d after repair, want the watermark 150", got)
	}
	if got := s2.RepairedTailBytes(); got != 64 { // segment 3's junk; the hole holds nothing
		t.Fatalf("RepairedTailBytes = %d, want 64", got)
	}
	got := make([]byte, 150)
	if _, err := s2.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("synced prefix corrupted by the repair")
	}
	if _, err := os.Stat(segFile(dir, 3)); !os.IsNotExist(err) {
		t.Fatal("torn segment 3 survived the repair")
	}
	// The log keeps working where the watermark left it.
	appendSync(t, s2, fill(10, 'n'))
	if got := s2.DurableSize(); got != 160 {
		t.Fatalf("DurableSize after post-repair append = %d, want 160", got)
	}
}

// A torn tail inside the last synced segment (unsynced bytes persisted
// beyond the watermark in segment N itself) is trimmed back.
func TestTornTailTrimsPartialSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(90, 'p') // segment 1 holds 26 synced bytes
	appendSync(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Unsynced bytes the crash happened to persist in the tail segment.
	f, err := os.OpenFile(segFile(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(fill(20, 'X')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DurableSize(); got != 90 {
		t.Fatalf("DurableSize = %d, want 90", got)
	}
	if got := s2.RepairedTailBytes(); got != 20 {
		t.Fatalf("RepairedTailBytes = %d, want 20", got)
	}
	got := make([]byte, 90)
	if _, err := s2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("synced bytes corrupted by trim")
	}
}

// Bytes the watermark covers that the segment files no longer hold are
// NOT a torn tail: that is mid-log corruption (bit rot, truncated or
// deleted files) and Open must fail loudly instead of silently
// discarding acknowledged commits.
func TestWatermarkRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, s, fill(150, 'c'))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	t.Run("truncated segment", func(t *testing.T) {
		if err := os.Truncate(segFile(dir, 1), 10); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentedDir(dir, 0); err == nil {
			t.Fatal("Open accepted a log missing bytes below the durable watermark")
		}
		if err := os.WriteFile(segFile(dir, 1), fill(64, 'c')[:64], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		saved, err := os.ReadFile(segFile(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(segFile(dir, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentedDir(dir, 0); err == nil {
			t.Fatal("Open accepted a log with a whole segment missing below the watermark")
		}
		if err := os.WriteFile(segFile(dir, 1), saved, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// A directory written before watermarks existed still opens: the file
// sizes are adopted as the durable horizon exactly as before, and the
// watermark file is seeded so the next open has the real thing.
func TestLegacyDirWithoutWatermark(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(100, 'l')
	appendSync(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, watermarkName)); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatalf("legacy dir rejected: %v", err)
	}
	if got := s2.DurableSize(); got != 100 {
		t.Fatalf("DurableSize = %d on legacy open, want 100", got)
	}
	s2.Close()
	if _, err := os.Stat(filepath.Join(dir, watermarkName)); err != nil {
		t.Fatalf("watermark not seeded on legacy open: %v", err)
	}
}

// A torn update of the watermark file itself (one slot scribbled) falls
// back to the other slot — always a safe, merely conservative horizon:
// a torn slot write means the Sync recording it was never acknowledged,
// so clamping to the surviving (older) slot discards only
// unacknowledged bytes.
func TestWatermarkSurvivesTornSlot(t *testing.T) {
	// Each scenario gets a fresh directory: the repair that follows a
	// torn slot legitimately rewrites the segment files.
	for slot := int64(0); slot < wmSlots; slot++ {
		dir := t.TempDir()
		s, err := OpenSegmentedDir(dir, 64)
		if err != nil {
			t.Fatal(err)
		}
		appendSync(t, s, fill(64, 'a')) // watermark 64 in one slot
		appendSync(t, s, fill(64, 'b')) // watermark 128 in the other
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, watermarkName))
		if err != nil {
			t.Fatal(err)
		}
		torn := append([]byte(nil), data...)
		copy(torn[slot*wmSlotSize:(slot+1)*wmSlotSize], fill(wmSlotSize, 'T'))
		if err := os.WriteFile(filepath.Join(dir, watermarkName), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenSegmentedDir(dir, 0)
		if err != nil {
			t.Fatalf("torn slot %d rejected the directory: %v", slot, err)
		}
		// Whichever slot survived, the open must repair to one of the
		// two persisted watermarks, never fail.
		if got := s2.DurableSize(); got != 64 && got != 128 {
			t.Fatalf("DurableSize = %d with torn slot %d, want 64 or 128", got, slot)
		}
		s2.Close()
	}
}

func TestDirArchiverRoundtripAndIdempotency(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDirArchiver(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(64, 'z')
	if err := a.Archive(7, want); err != nil {
		t.Fatal(err)
	}
	if err := a.Archive(7, want); err != nil {
		t.Fatalf("re-archiving the same segment: %v", err)
	}
	got, err := a.Retrieve(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("archived segment mismatch")
	}
	if _, err := a.Retrieve(8); !errors.Is(err, ErrNotArchived) {
		t.Fatalf("Retrieve of missing segment: %v, want ErrNotArchived", err)
	}
	segs, err := a.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 7 {
		t.Fatalf("Segments = %v, want [7]", segs)
	}
	// Orphan temps are swept on open.
	if err := os.WriteFile(filepath.Join(dir, "0000000000000009.seg.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDirArchiver(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "0000000000000009.seg.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp survived reopen")
	}
}

// TestArchiveBeforeRecycle is the lifecycle test: with an archiver
// attached, Truncate parks dead segments instead of deleting them, and
// every one of them reaches cold storage (byte-identical) before its
// file is removed. While the cold store is down, nothing is recycled.
func TestArchiveBeforeRecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	arch := NewMemArchiver()
	s.SetArchiver(arch)

	want := fill(300, 'q') // segments 0..4
	appendSync(t, s, want)
	if err := s.Truncate(200); err != nil { // segments 0,1,2 dead
		t.Fatal(err)
	}
	if got := s.PendingArchive(); len(got) != 3 {
		t.Fatalf("PendingArchive = %v, want 3 dead segments", got)
	}
	for idx := int64(0); idx < 3; idx++ {
		if _, err := os.Stat(segFile(dir, idx)); err != nil {
			t.Fatalf("dead segment %d recycled before archiving: %v", idx, err)
		}
	}
	segs, _ := s.TruncStats()
	if segs != 0 {
		t.Fatalf("TruncStats counted %d recycled segments before the archive ran", segs)
	}

	// Cold store down: the drain fails and every slot stays occupied.
	arch.FailWith(errors.New("cold storage unreachable"))
	if n, err := s.ArchivePending(); err == nil || n != 0 {
		t.Fatalf("ArchivePending with cold store down: n=%d err=%v", n, err)
	}
	for idx := int64(0); idx < 3; idx++ {
		if _, err := os.Stat(segFile(dir, idx)); err != nil {
			t.Fatalf("segment %d recycled while the archiver was failing", idx)
		}
	}

	// Cold store back: segments ship, then (and only then) recycle.
	arch.FailWith(nil)
	n, err := s.ArchivePending()
	if err != nil || n != 3 {
		t.Fatalf("ArchivePending = (%d, %v), want (3, nil)", n, err)
	}
	if got := s.PendingArchive(); len(got) != 0 {
		t.Fatalf("PendingArchive = %v after drain, want empty", got)
	}
	if got := s.ArchivedSegments(); got != 3 {
		t.Fatalf("ArchivedSegments = %d, want 3", got)
	}
	if segs, _ := s.TruncStats(); segs != 3 {
		t.Fatalf("TruncStats = %d recycled after drain, want 3", segs)
	}
	for idx := int64(0); idx < 3; idx++ {
		if _, err := os.Stat(segFile(dir, idx)); !os.IsNotExist(err) {
			t.Fatalf("segment %d not recycled after archiving", idx)
		}
		got, err := arch.Retrieve(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
			t.Fatalf("archived segment %d contents mismatch", idx)
		}
	}

	// Restore-on-demand: the archived history below the base reassembles
	// byte-identically.
	data, start, err := RestoreRange(arch, 64, 0, 192)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || !bytes.Equal(data, want[:192]) {
		t.Fatalf("RestoreRange start=%d len=%d, want full archived history", start, len(data))
	}
	// A range predating the archive clamps up to the first restorable byte.
	delete(arch.segs, 0)
	data, start, err = RestoreRange(arch, 64, 0, 192)
	if err != nil {
		t.Fatal(err)
	}
	if start != 64 || !bytes.Equal(data, want[64:192]) {
		t.Fatalf("clamped RestoreRange start=%d, want 64", start)
	}
}

// RestoreLog must never hand back bytes that begin mid-record: when the
// archive cannot reach the requested offset, it falls back to the
// record-aligned truncation base rather than a segment boundary.
func TestRestoreLogFallsBackToRecordAlignedBase(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fill(300, 'f')
	appendSync(t, s, want)
	if err := s.Truncate(200); err != nil { // recycles 0,1,2; base 200
		t.Fatal(err)
	}

	// No archive at all: only the hot log from its base is returnable.
	data, start, err := s.RestoreLog(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 200 || !bytes.Equal(data, want[200:]) {
		t.Fatalf("RestoreLog(nil, 0) start=%d len=%d, want the base 200", start, len(data))
	}

	// Partial archive (hole below segment 2): restorable bytes would
	// begin at a segment boundary mid-record, so the base wins again.
	arch := NewMemArchiver()
	if err := arch.Archive(2, want[128:192]); err != nil {
		t.Fatal(err)
	}
	data, start, err = s.RestoreLog(arch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 200 || !bytes.Equal(data, want[200:]) {
		t.Fatalf("partial archive: start=%d, want fallback to base 200", start)
	}

	// Complete archive: the full history comes back from offset 0.
	if err := arch.Archive(0, want[0:64]); err != nil {
		t.Fatal(err)
	}
	if err := arch.Archive(1, want[64:128]); err != nil {
		t.Fatal(err)
	}
	data, start, err = s.RestoreLog(arch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || !bytes.Equal(data, want) {
		t.Fatalf("complete archive: start=%d len=%d, want the full history", start, len(data))
	}
}

// A read-only open (logdump's path) must leave a crashed directory
// byte-identical: no repair, no watermark seeding, no unlinking — while
// still presenting the repaired view in memory.
func TestOpenSegmentedDirRODoesNotMutate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(150, 'o')
	appendSync(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn-tail crash shape: junk segment 3 persisted.
	if err := os.WriteFile(segFile(dir, 3), fill(64, 'J'), 0o644); err != nil {
		t.Fatal(err)
	}
	snapshot := func() map[string]int64 {
		out := make(map[string]int64)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = info.Size()
		}
		return out
	}
	before := snapshot()

	ro, err := OpenSegmentedDirRO(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := ro.DurableSize(); got != 150 {
		t.Fatalf("RO DurableSize = %d, want the watermark 150", got)
	}
	if got := ro.RepairedTailBytes(); got != 64 {
		t.Fatalf("RO RepairedTailBytes = %d, want 64", got)
	}
	got := make([]byte, 150)
	if _, err := ro.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("RO read mismatch")
	}
	if _, err := ro.Append([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RO Append: %v, want ErrReadOnly", err)
	}
	if err := ro.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RO Sync: %v, want ErrReadOnly", err)
	}
	if err := ro.Truncate(100); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RO Truncate: %v, want ErrReadOnly", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	if len(before) != len(after) {
		t.Fatalf("RO open changed the directory: %v → %v", before, after)
	}
	for name, size := range before {
		if after[name] != size {
			t.Fatalf("RO open resized %s: %d → %d", name, size, after[name])
		}
	}
	// Legacy dir (clean, no watermark): RO adopts the file sizes in
	// memory and must not seed a watermark file.
	legacy := t.TempDir()
	s2, err := OpenSegmentedDir(legacy, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, s2, fill(100, 'l'))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(legacy, watermarkName)); err != nil {
		t.Fatal(err)
	}
	ro2, err := OpenSegmentedDirRO(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got := ro2.DurableSize(); got != 100 {
		t.Fatalf("legacy RO DurableSize = %d, want 100", got)
	}
	ro2.Close()
	if _, err := os.Stat(filepath.Join(legacy, watermarkName)); !os.IsNotExist(err) {
		t.Fatal("RO open seeded a watermark file")
	}
}

// A crash between parking dead segments and the archive drain leaves
// them on disk below the base; a reopen re-parks them and the next
// drain ships them.
func TestReopenDrainsPendingDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	arch := NewMemArchiver()
	s.SetArchiver(arch)
	want := fill(300, 'r')
	appendSync(t, s, want)
	if err := s.Truncate(200); err != nil {
		t.Fatal(err)
	}
	// "Crash" before ArchivePending ran: close with segments parked.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.PendingArchive(); len(got) != 3 {
		t.Fatalf("PendingArchive after reopen = %v, want the 3 dead segments", got)
	}
	// Reads of the live tail are unaffected by parked segments.
	p := make([]byte, 100)
	if _, err := s2.ReadAt(p, 200); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, want[200:]) {
		t.Fatal("live tail mismatch with parked segments")
	}
	s2.SetArchiver(arch)
	if n, err := s2.ArchivePending(); err != nil || n != 3 {
		t.Fatalf("drain after reopen = (%d, %v), want (3, nil)", n, err)
	}
	for idx := int64(0); idx < 3; idx++ {
		got, err := arch.Retrieve(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
			t.Fatalf("archived segment %d mismatch after reopen drain", idx)
		}
	}
}
