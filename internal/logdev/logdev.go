// Package logdev models the stable storage the log is flushed to.
//
// The paper's ELR evaluation (§3.2) imposes log-device response times of
// 0 (ramdisk), 100µs (flash), 1ms (fast disk) and 10ms (slow disk) using a
// ramdisk plus high-resolution timers; Mem reproduces exactly that
// methodology. File is a real file-backed device for durability beyond the
// process.
//
// A device is an append-only byte stream with an explicit durability
// barrier: bytes become durable only when Sync returns. The flush daemon is
// the single writer; recovery reads the durable prefix after a (simulated)
// crash.
package logdev

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"aether/internal/metrics"
)

// Device is an append-only, explicitly-synced log volume.
type Device interface {
	// Append buffers p in the device's volatile write cache. It returns
	// the number of bytes accepted.
	Append(p []byte) (int, error)
	// Sync makes every appended byte durable, modeling the device's
	// response time. Group commit amortizes this call.
	Sync() error
	// DurableSize returns how many bytes are durable (survive a crash).
	DurableSize() int64
	// ReadAt reads from the durable prefix (io.ReaderAt semantics).
	// Reading unsynced bytes returns io.EOF at the durable boundary.
	ReadAt(p []byte, off int64) (int, error)
	// Close releases resources; further operations fail.
	Close() error
	// Stats returns operation counters for the experiments.
	Stats() *Stats
}

// Stats counts device operations. Figures 4 and 5 use Syncs to show group
// commit batching (fewer, larger I/Os as load grows).
type Stats struct {
	// Appends counts Append calls (write-cache fills).
	Appends metrics.Counter
	// Syncs counts completed Sync calls (durability barriers).
	Syncs metrics.Counter
	// BytesWritten counts bytes accepted by Append.
	BytesWritten metrics.Counter
	// SyncTime records the wall-clock latency of each Sync.
	SyncTime metrics.Histogram
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("logdev: device closed")

// Profile bundles the latency characteristics of a device class.
type Profile struct {
	// Name labels result rows ("memory", "flash", ...).
	Name string
	// SyncLatency is the fixed response time of one Sync (seek/program
	// time); the paper's 0/100µs/1ms/10ms series.
	SyncLatency time.Duration
	// BytesPerSecond throttles sustained write bandwidth; 0 = unlimited.
	BytesPerSecond int64
}

// Standard profiles matching the paper's evaluation series (§3.2).
var (
	ProfileMemory   = Profile{Name: "memory", SyncLatency: 0}
	ProfileFlash    = Profile{Name: "flash", SyncLatency: 100 * time.Microsecond}
	ProfileFastDisk = Profile{Name: "fast-disk", SyncLatency: time.Millisecond}
	ProfileSlowDisk = Profile{Name: "slow-disk", SyncLatency: 10 * time.Millisecond}
)

// Profiles lists the standard profiles in the order the paper's Figure 3
// legend uses.
var Profiles = []Profile{ProfileSlowDisk, ProfileFlash, ProfileFastDisk, ProfileMemory}

// simulateSync sleeps for the profile's imposed response time for a sync
// of pending bytes (seek/program latency plus bandwidth-limited
// transfer) — the shared core of every simulated device's Sync.
func (p Profile) simulateSync(pending int64) {
	if d := p.SyncLatency; d > 0 {
		time.Sleep(d)
	}
	if bps := p.BytesPerSecond; bps > 0 && pending > 0 {
		transfer := time.Duration(float64(pending) / float64(bps) * float64(time.Second))
		if transfer > 0 {
			time.Sleep(transfer)
		}
	}
}

// Mem is an in-memory device with configurable latency and crash
// simulation. It is safe for one writer concurrent with readers of the
// durable prefix.
type Mem struct {
	profile Profile

	mu      sync.Mutex
	data    []byte
	durable int64
	closed  bool
	failErr error // injected failure

	stats Stats
}

// NewMem returns an empty in-memory device with the given profile.
func NewMem(p Profile) *Mem {
	return &Mem{profile: p}
}

// Profile returns the device's latency profile.
func (m *Mem) Profile() Profile { return m.profile }

// Append implements Device.
func (m *Mem) Append(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	if m.failErr != nil {
		return 0, m.failErr
	}
	m.data = append(m.data, p...)
	m.stats.Appends.Inc()
	m.stats.BytesWritten.Add(int64(len(p)))
	return len(p), nil
}

// Sync implements Device, sleeping for the profile's response time before
// publishing durability — the same imposed-latency technique the paper
// uses. Durability covers exactly the bytes appended before the call: a
// real fsync only hardens what was in the write cache when it started, so
// bytes appended mid-sync wait for the next one.
func (m *Mem) Sync() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.failErr != nil {
		err := m.failErr
		m.mu.Unlock()
		return err
	}
	target := int64(len(m.data))
	pending := target - m.durable
	m.mu.Unlock()

	start := time.Now()
	m.profile.simulateSync(pending)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.failErr != nil {
		return m.failErr
	}
	if target > int64(len(m.data)) {
		// A crash raced the sync and trimmed the cache; only what
		// survived can be durable.
		target = int64(len(m.data))
	}
	if target > m.durable {
		m.durable = target
	}
	m.stats.Syncs.Inc()
	m.stats.SyncTime.Observe(time.Since(start))
	return nil
}

// DurableSize implements Device.
func (m *Mem) DurableSize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable
}

// ReadAt implements Device, reading only the durable prefix.
func (m *Mem) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("logdev: negative offset %d", off)
	}
	if off >= m.durable {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:m.durable])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Crash simulates power loss: every byte not covered by a completed Sync
// vanishes. The device remains usable (as if remounted at restart).
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = m.data[:m.durable]
}

// ErrCrashed is returned by a frozen (crashed, not yet remounted) device.
var ErrCrashed = errors.New("logdev: device crashed")

// CrashFreeze simulates power loss with the host still wired up: unsynced
// bytes vanish and every subsequent write fails with ErrCrashed until
// Remount. Tests use it to stop a still-running flush daemon from
// extending the durable log past the crash point.
func (m *Mem) CrashFreeze() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = m.data[:m.durable]
	m.failErr = ErrCrashed
}

// Remount brings a frozen device back online (the restart).
func (m *Mem) Remount() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if errors.Is(m.failErr, ErrCrashed) {
		m.failErr = nil
	}
	m.data = m.data[:m.durable]
}

// FailWith injects err into every subsequent Append/Sync until cleared
// with FailWith(nil). Tests use this to exercise the flush daemon's error
// path.
func (m *Mem) FailWith(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failErr = err
}

// Close implements Device.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Stats implements Device.
func (m *Mem) Stats() *Stats { return &m.stats }

// File is a real file-backed device. Sync maps to fsync, so durability is
// as real as the underlying filesystem provides.
type File struct {
	mu      sync.Mutex
	f       *os.File
	size    int64
	durable int64
	closed  bool
	stats   Stats
}

// OpenFile opens (creating if needed) a file-backed log device. If the
// file already has contents they are treated as the durable prefix, which
// is how restart recovery reopens the log.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logdev: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("logdev: stat %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("logdev: seek %s: %w", path, err)
	}
	return &File{f: f, size: st.Size(), durable: st.Size()}, nil
}

// Append implements Device.
func (d *File) Append(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	n, err := d.f.Write(p)
	d.size += int64(n)
	d.stats.Appends.Inc()
	d.stats.BytesWritten.Add(int64(n))
	if err == nil && n < len(p) {
		// Never account a partial append as a success: the missing tail
		// would become a hole the flush daemon thinks is on disk.
		err = io.ErrShortWrite
	}
	return n, err
}

// Sync implements Device via fsync.
func (d *File) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	start := time.Now()
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.durable = d.size
	d.stats.Syncs.Inc()
	d.stats.SyncTime.Observe(time.Since(start))
	return nil
}

// DurableSize implements Device.
func (d *File) DurableSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.durable
}

// ReadAt implements Device.
func (d *File) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	durable := d.durable
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("logdev: negative offset %d", off)
	}
	if off >= durable {
		return 0, io.EOF
	}
	max := durable - off
	if int64(len(p)) > max {
		n, err := d.f.ReadAt(p[:max], off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return d.f.ReadAt(p, off)
}

// Close implements Device.
func (d *File) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

// Stats implements Device.
func (d *File) Stats() *Stats { return &d.stats }

// ReadAll returns the full durable contents of a device — the recovery
// scan's input.
func ReadAll(dev Device) ([]byte, error) {
	size := dev.DurableSize()
	buf := make([]byte, size)
	var off int64
	for off < size {
		n, err := dev.ReadAt(buf[off:], off)
		off += int64(n)
		if err != nil {
			if err == io.EOF && off == size {
				break
			}
			return nil, err
		}
	}
	return buf, nil
}

var (
	_ Device = (*Mem)(nil)
	_ Device = (*File)(nil)
)
