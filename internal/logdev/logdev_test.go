package logdev

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"
)

func TestMemAppendSyncDurable(t *testing.T) {
	m := NewMem(ProfileMemory)
	if _, err := m.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got := m.DurableSize(); got != 0 {
		t.Fatalf("durable before sync: %d", got)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := m.DurableSize(); got != 11 {
		t.Fatalf("durable after sync: %d", got)
	}
	buf, err := ReadAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("contents: %q", buf)
	}
}

func TestMemCrashDropsUnsynced(t *testing.T) {
	m := NewMem(ProfileMemory)
	m.Append([]byte("durable."))
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Append([]byte("volatile"))
	m.Crash()
	buf, err := ReadAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable." {
		t.Fatalf("after crash: %q", buf)
	}
	// Device stays usable after the crash (restart semantics).
	m.Append([]byte("again"))
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	buf, _ = ReadAll(m)
	if string(buf) != "durable.again" {
		t.Fatalf("after restart: %q", buf)
	}
}

func TestMemReadAtBounds(t *testing.T) {
	m := NewMem(ProfileMemory)
	m.Append([]byte("0123456789"))
	m.Sync()
	m.Append([]byte("unsynced"))

	p := make([]byte, 4)
	n, err := m.ReadAt(p, 3)
	if err != nil || n != 4 || string(p) != "3456" {
		t.Fatalf("ReadAt(3): n=%d err=%v p=%q", n, err, p)
	}
	// Reading past the durable boundary hits EOF even though volatile
	// bytes exist.
	if _, err := m.ReadAt(p, 10); err != io.EOF {
		t.Fatalf("ReadAt(durable boundary): err=%v", err)
	}
	// Partial read at the end.
	n, err = m.ReadAt(p, 8)
	if n != 2 || err != io.EOF {
		t.Fatalf("partial ReadAt: n=%d err=%v", n, err)
	}
	if _, err := m.ReadAt(p, -1); err == nil {
		t.Fatal("negative offset must error")
	}
}

func TestMemSyncLatency(t *testing.T) {
	m := NewMem(Profile{Name: "test", SyncLatency: 20 * time.Millisecond})
	m.Append([]byte("x"))
	start := time.Now()
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("sync returned in %v, want >= 20ms", elapsed)
	}
}

func TestMemBandwidthThrottle(t *testing.T) {
	// 1 MB/s: syncing 100KB should take >= ~100ms.
	m := NewMem(Profile{Name: "slow", BytesPerSecond: 1 << 20})
	m.Append(make([]byte, 100<<10))
	start := time.Now()
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("throttled sync too fast: %v", elapsed)
	}
}

func TestMemFailureInjection(t *testing.T) {
	m := NewMem(ProfileMemory)
	boom := errors.New("boom")
	m.FailWith(boom)
	if _, err := m.Append([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("append: got %v", err)
	}
	if err := m.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync: got %v", err)
	}
	m.FailWith(nil)
	if _, err := m.Append([]byte("x")); err != nil {
		t.Fatalf("after clearing: %v", err)
	}
}

func TestMemClosed(t *testing.T) {
	m := NewMem(ProfileMemory)
	m.Close()
	if _, err := m.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := m.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if _, err := m.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestMemStats(t *testing.T) {
	m := NewMem(ProfileMemory)
	m.Append([]byte("abc"))
	m.Append([]byte("de"))
	m.Sync()
	st := m.Stats()
	if st.Appends.Load() != 2 || st.Syncs.Load() != 1 || st.BytesWritten.Load() != 5 {
		t.Fatalf("stats: appends=%d syncs=%d bytes=%d",
			st.Appends.Load(), st.Syncs.Load(), st.BytesWritten.Load())
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	d, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append([]byte("persistent data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.DurableSize(); got != 15 {
		t.Fatalf("durable: %d", got)
	}
	buf, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("persistent data")) {
		t.Fatalf("contents: %q", buf)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close should be nil")
	}

	// Reopen: existing contents are the durable prefix.
	d2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.DurableSize(); got != 15 {
		t.Fatalf("reopened durable: %d", got)
	}
	if _, err := d2.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Sync(); err != nil {
		t.Fatal(err)
	}
	buf, _ = ReadAll(d2)
	if string(buf) != "persistent data!" {
		t.Fatalf("after append: %q", buf)
	}
}

func TestFileReadAtRespectsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	d, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Append([]byte("0123456789"))
	d.Sync()
	d.Append([]byte("notyet"))
	p := make([]byte, 16)
	n, err := d.ReadAt(p, 4)
	if n != 6 || (err != nil && err != io.EOF) {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	if string(p[:n]) != "456789" {
		t.Fatalf("ReadAt data: %q", p[:n])
	}
}

func TestProfilesOrdering(t *testing.T) {
	if len(Profiles) != 4 {
		t.Fatalf("want 4 standard profiles, got %d", len(Profiles))
	}
	if ProfileFlash.SyncLatency != 100*time.Microsecond {
		t.Fatal("flash latency wrong")
	}
	if ProfileSlowDisk.SyncLatency != 10*time.Millisecond {
		t.Fatal("slow disk latency wrong")
	}
}
