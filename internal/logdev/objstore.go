// objstore.go is the S3-style object API underneath the remote log
// tier: a flat namespace of immutable blobs with whole-object put/get
// semantics. Two implementations ship — MemObjectStore, an in-memory
// "cloud" with an injectable network-failure model (latency, transient
// 5xx storms, torn uploads, permanent outages) for tests and the soak
// harness, and DirObjectStore, a directory of files for real databases
// and offline inspection (logdump -remote).
//
// The failure model is deliberately server-side: a torn upload leaves a
// truncated object *in the store* while the client sees an error,
// exactly the case "Immutable Log Storage as a Service" warns about —
// so every object the remote tier writes carries a self-validating
// envelope (see remote.go) and a reader treats a torn object as absent.
package logdev

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"aether/internal/fsutil"
	"aether/internal/vfs"
)

// ObjectStore is the minimal S3-style contract the remote log tier
// needs: whole-object put/get/delete plus prefix listing. Puts
// overwrite atomically from the reader's point of view (a successful
// Get returns some complete former Put, or a torn prefix of a failed
// one — never an interleaving). Keys use "/" separators by convention.
type ObjectStore interface {
	// Put stores data under key, overwriting any existing object.
	Put(key string, data []byte) error
	// Get returns the object's bytes, or ErrObjectNotFound.
	Get(key string) ([]byte, error)
	// Delete removes the object; deleting a missing key is not an error.
	Delete(key string) error
	// List returns the keys with the given prefix, sorted ascending.
	List(prefix string) ([]string, error)
}

// ErrObjectNotFound reports a Get for a key the store does not hold.
var ErrObjectNotFound = errors.New("logdev: object not found")

// ErrTornUpload is the error a torn Put returns to the client while the
// store keeps the truncated prefix — the connection died mid-transfer.
var ErrTornUpload = errors.New("logdev: object upload torn mid-transfer")

// ObjectStoreStats counts MemObjectStore traffic, including the faults
// the network model injected.
type ObjectStoreStats struct {
	Puts      int64 // successful whole-object uploads
	Gets      int64 // successful downloads
	Deletes   int64 // delete calls (missing keys included)
	Lists     int64 // prefix listings
	PutErrors int64 // puts failed by the fault model (storms, outage)
	TornPuts  int64 // puts that persisted a truncated object
	GetErrors int64 // gets failed by an outage
	BytesUp   int64 // bytes durably uploaded
}

// NetFault arms MemObjectStore's network-failure model for the next
// operations. Zero values disarm each dimension.
type NetFault struct {
	// Latency is added to every operation (upload bandwidth, RTT).
	Latency time.Duration
	// FailPuts makes the next N puts fail with FailErr (or a generic
	// 503-style error) without storing anything — a transient 5xx storm.
	FailPuts int
	// FailErr is the error returned during a FailPuts storm.
	FailErr error
	// TearPutAfter > 0 tears the N-th subsequent put: the store keeps
	// roughly half the object and the client gets ErrTornUpload.
	// TearPutAfter == 1 tears the very next put.
	TearPutAfter int
	// OnTear runs synchronously when the torn put fires, before the
	// error returns — the soak harness uses it to power-cut the machine
	// mid-upload.
	OnTear func()
	// Outage fails every put and get with this error until the fault is
	// re-armed with a nil Outage — a permanent (until healed) network
	// partition or credential loss.
	Outage error
}

// MemObjectStore is an in-memory ObjectStore with an injectable
// network-failure model. It is the soak harness's "cloud": it survives
// local power cuts (Crash on the fault filesystem does not touch it),
// so whatever was durably uploaded before a cut must still restore.
type MemObjectStore struct {
	mu    sync.Mutex
	objs  map[string][]byte
	fault NetFault
	stats ObjectStoreStats
}

// NewMemObjectStore returns an empty in-memory object store with no
// faults armed.
func NewMemObjectStore() *MemObjectStore {
	return &MemObjectStore{objs: make(map[string][]byte)}
}

// Arm replaces the network-failure model. Arm(NetFault{}) heals
// everything.
func (m *MemObjectStore) Arm(f NetFault) {
	m.mu.Lock()
	m.fault = f
	m.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (m *MemObjectStore) Stats() ObjectStoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Put stores data under key, subject to the armed fault model.
func (m *MemObjectStore) Put(key string, data []byte) error {
	m.mu.Lock()
	lat := m.fault.Latency
	m.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fault.Outage != nil {
		m.stats.PutErrors++
		return m.fault.Outage
	}
	if m.fault.FailPuts > 0 {
		m.fault.FailPuts--
		m.stats.PutErrors++
		if m.fault.FailErr != nil {
			return m.fault.FailErr
		}
		return errors.New("logdev: object store: 503 service unavailable")
	}
	if m.fault.TearPutAfter > 0 {
		m.fault.TearPutAfter--
		if m.fault.TearPutAfter == 0 {
			// Keep a prefix: the server committed what arrived before the
			// connection died. Half the object keeps the envelope header
			// intact for realistic torn-object detection.
			m.objs[key] = append([]byte(nil), data[:len(data)/2]...)
			m.stats.TornPuts++
			m.stats.PutErrors++
			if cb := m.fault.OnTear; cb != nil {
				m.mu.Unlock()
				cb()
				m.mu.Lock()
			}
			return ErrTornUpload
		}
	}
	m.objs[key] = append([]byte(nil), data...)
	m.stats.Puts++
	m.stats.BytesUp += int64(len(data))
	return nil
}

// Get returns a copy of the object's bytes.
func (m *MemObjectStore) Get(key string) ([]byte, error) {
	m.mu.Lock()
	lat := m.fault.Latency
	m.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fault.Outage != nil {
		m.stats.GetErrors++
		return nil, m.fault.Outage
	}
	data, ok := m.objs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, key)
	}
	m.stats.Gets++
	return append([]byte(nil), data...), nil
}

// Delete removes the object if present.
func (m *MemObjectStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objs, key)
	m.stats.Deletes++
	return nil
}

// List returns the keys with the given prefix, sorted.
func (m *MemObjectStore) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Lists++
	var keys []string
	for k := range m.objs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// DirObjectStore is a file-per-object ObjectStore rooted at a
// directory: key "pack/a-b" becomes <root>/pack/a-b. Puts go through
// the usual tmp-write + rename + parent-sync discipline so a local
// crash never leaves a torn object visible under its final name.
type DirObjectStore struct {
	fs   vfs.FS
	root string
}

// NewDirObjectStore opens (creating if needed) a directory-backed
// object store rooted at dir on the host filesystem.
func NewDirObjectStore(dir string) (*DirObjectStore, error) {
	return NewDirObjectStoreFS(vfs.OS{}, dir)
}

// NewDirObjectStoreFS is NewDirObjectStore on an explicit VFS, so
// tests can put the "cloud" on a fault filesystem too.
func NewDirObjectStoreFS(fs vfs.FS, dir string) (*DirObjectStore, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirObjectStore{fs: fs, root: dir}, nil
}

func (d *DirObjectStore) path(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// Put stores data under key via tmp+rename+dirsync.
func (d *DirObjectStore) Put(key string, data []byte) error {
	p := d.path(key)
	if err := d.fs.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return fsutil.WriteFileSyncDirFS(d.fs, p, data, 0o644)
}

// Get returns the object's bytes.
func (d *DirObjectStore) Get(key string) ([]byte, error) {
	data, err := d.fs.ReadFile(d.path(key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, key)
		}
		return nil, err
	}
	return data, nil
}

// Delete removes the object if present.
func (d *DirObjectStore) Delete(key string) error {
	err := d.fs.Remove(d.path(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// List walks the store for keys with the given prefix, sorted.
func (d *DirObjectStore) List(prefix string) ([]string, error) {
	var keys []string
	var walk func(rel string) error
	walk = func(rel string) error {
		ents, err := d.fs.ReadDir(filepath.Join(d.root, filepath.FromSlash(rel)))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		for _, e := range ents {
			child := e.Name()
			if rel != "" {
				child = rel + "/" + e.Name()
			}
			if e.IsDir() {
				if err := walk(child); err != nil {
					return err
				}
				continue
			}
			if strings.HasPrefix(child, prefix) && !strings.HasSuffix(child, ".tmp") {
				keys = append(keys, child)
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}
