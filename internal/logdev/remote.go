// remote.go is the cloud log tier: RemoteArchiver implements Archiver
// over an S3-style ObjectStore, so the segmented device's
// archive-before-recycle protocol ships dead segments to object storage
// instead of a local directory. On top of raw per-segment objects it
// adds background compaction (contiguous raw segments merged into one
// immutable indexed pack) and snapshot-anchored retention (history is
// pruned only below the oldest materialized restore base, keeping every
// later point restorable).
//
// Failure discipline: Archive never loops internally. It validates,
// uploads once, and reports errors to the caller — the engine's
// archiver daemon owns backoff and retry, and a failed upload leaves
// the segment parked in the device's pending set (the slot is not
// recycled until cold storage durably holds the bytes). A torn upload
// leaves a truncated object in the store; the envelope CRC makes the
// next attempt detect it, treat the object as absent and re-upload.
package logdev

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Remote-tier key layout under the archiver's prefix.
const (
	remoteSegDir  = "seg/"
	remotePackDir = "pack/"
	remoteSnapDir = "snap/"
)

// RemoteArchiver ships log segments to an ObjectStore. It implements
// Archiver, so Segmented.SetArchiver and the engine's archiver daemon
// drive it exactly like the local DirArchiver.
type RemoteArchiver struct {
	store   ObjectStore
	prefix  string
	segSize int64

	mu sync.Mutex
	// packed caches segment idx -> pack key for Retrieve; rebuilt from
	// a listing when a lookup misses.
	packed map[int64]string

	stats RemoteStats
}

// RemoteStats counts remote-tier operations beyond the raw store
// traffic: compaction and retention outcomes.
type RemoteStats struct {
	// SegmentsUploaded counts raw segment objects durably uploaded.
	SegmentsUploaded int64
	// UploadSkipped counts Archive calls satisfied by an existing valid
	// object (idempotent re-ship after a crash or torn upload).
	UploadSkipped int64
	// PacksBuilt counts compaction runs that produced a pack object.
	PacksBuilt int64
	// SegmentsPacked counts raw segments folded into packs.
	SegmentsPacked int64
	// SnapshotsPut counts snapshot objects uploaded.
	SnapshotsPut int64
	// SnapshotsPruned counts snapshot objects deleted by retention.
	SnapshotsPruned int64
	// ObjectsPruned counts raw-segment and pack objects deleted by
	// retention.
	ObjectsPruned int64
}

// NewRemoteArchiver returns a RemoteArchiver over store. prefix
// namespaces this log's objects (partition lanes use "p0/", "p1/", …;
// a single log uses ""). segSize must match the segmented device.
func NewRemoteArchiver(store ObjectStore, prefix string, segSize int64) *RemoteArchiver {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &RemoteArchiver{store: store, prefix: prefix, segSize: segSize, packed: make(map[int64]string)}
}

// Stats returns a snapshot of the remote-tier counters.
func (r *RemoteArchiver) Stats() RemoteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// SegmentSize returns the segment size this archiver was built for.
func (r *RemoteArchiver) SegmentSize() int64 { return r.segSize }

func (r *RemoteArchiver) segKey(idx int64) string {
	return fmt.Sprintf("%s%s%016d", r.prefix, remoteSegDir, idx)
}

func (r *RemoteArchiver) packKey(first, last int64) string {
	return fmt.Sprintf("%s%s%016d-%016d", r.prefix, remotePackDir, first, last)
}

func (r *RemoteArchiver) snapKey(cut uint64) string {
	return fmt.Sprintf("%s%s%020d", r.prefix, remoteSnapDir, cut)
}

// Archive uploads segment idx. It is idempotent: if the store already
// holds a valid object for idx (raw or packed), the call succeeds
// without uploading; a torn or corrupt existing object is overwritten.
// Errors are returned without retrying — the caller's backoff owns
// that, and the segment stays parked in the device's pending set.
func (r *RemoteArchiver) Archive(idx int64, data []byte) error {
	if int64(len(data)) != r.segSize {
		return fmt.Errorf("logdev: remote archive segment %d: %d bytes, want %d", idx, len(data), r.segSize)
	}
	key := r.segKey(idx)
	if existing, err := r.store.Get(key); err == nil {
		if kind, meta, payload, derr := DecodeObject(existing); derr == nil &&
			kind == ObjSegment && meta == uint64(idx) && int64(len(payload)) == r.segSize {
			r.count(func(s *RemoteStats) { s.UploadSkipped++ })
			return nil
		}
		// Torn or corrupt — fall through and overwrite.
	}
	if _, ok := r.lookupPack(idx); ok {
		r.count(func(s *RemoteStats) { s.UploadSkipped++ })
		return nil
	}
	if err := r.store.Put(key, EncodeObject(ObjSegment, uint64(idx), data)); err != nil {
		return fmt.Errorf("logdev: remote archive segment %d: %w", idx, err)
	}
	r.count(func(s *RemoteStats) { s.SegmentsUploaded++ })
	return nil
}

// Retrieve returns segment idx's bytes from a raw object or, after
// compaction, from the pack that holds it. ErrNotArchived means the
// store has no (valid) object for idx — pruned, torn, or never shipped.
func (r *RemoteArchiver) Retrieve(idx int64) ([]byte, error) {
	if data, err := r.store.Get(r.segKey(idx)); err == nil {
		kind, meta, payload, derr := DecodeObject(data)
		if derr == nil && kind == ObjSegment && meta == uint64(idx) {
			return append([]byte(nil), payload...), nil
		}
		// Torn raw object: a pack may still hold the real bytes.
	} else if !errors.Is(err, ErrObjectNotFound) {
		return nil, err
	}
	seg, ok, err := r.retrieveFromPack(idx)
	if err != nil {
		return nil, err
	}
	if ok {
		return seg, nil
	}
	return nil, fmt.Errorf("%w: segment %d", ErrNotArchived, idx)
}

// Segments lists every archived segment index — raw objects and pack
// contents — sorted ascending.
func (r *RemoteArchiver) Segments() ([]int64, error) {
	keys, err := r.store.List(r.prefix + remoteSegDir)
	if err != nil {
		return nil, err
	}
	seen := make(map[int64]bool)
	for _, k := range keys {
		var idx int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(k, r.prefix+remoteSegDir), "%d", &idx); err == nil {
			seen[idx] = true
		}
	}
	packs, err := r.listPacks()
	if err != nil {
		return nil, err
	}
	for _, p := range packs {
		for i := p.first; i <= p.last; i++ {
			seen[i] = true
		}
	}
	idxs := make([]int64, 0, len(seen))
	for i := range seen {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return idxs, nil
}

func (r *RemoteArchiver) count(f func(*RemoteStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

type packRef struct {
	key         string
	first, last int64
}

// listPacks parses the pack directory listing into refs sorted by
// first segment.
func (r *RemoteArchiver) listPacks() ([]packRef, error) {
	keys, err := r.store.List(r.prefix + remotePackDir)
	if err != nil {
		return nil, err
	}
	packs := make([]packRef, 0, len(keys))
	for _, k := range keys {
		var first, last int64
		name := strings.TrimPrefix(k, r.prefix+remotePackDir)
		if _, err := fmt.Sscanf(name, "%d-%d", &first, &last); err == nil && first <= last {
			packs = append(packs, packRef{key: k, first: first, last: last})
		}
	}
	sort.Slice(packs, func(a, b int) bool { return packs[a].first < packs[b].first })
	return packs, nil
}

// lookupPack reports whether idx is covered by a pack, refreshing the
// cached pack directory on a miss.
func (r *RemoteArchiver) lookupPack(idx int64) (string, bool) {
	r.mu.Lock()
	key, ok := r.packed[idx]
	r.mu.Unlock()
	if ok {
		return key, true
	}
	packs, err := r.listPacks()
	if err != nil {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range packs {
		for i := p.first; i <= p.last; i++ {
			r.packed[i] = p.key
		}
	}
	key, ok = r.packed[idx]
	return key, ok
}

// retrieveFromPack fetches idx out of its pack, validating the pack
// envelope, index and per-segment CRC.
func (r *RemoteArchiver) retrieveFromPack(idx int64) ([]byte, bool, error) {
	key, ok := r.lookupPack(idx)
	if !ok {
		return nil, false, nil
	}
	data, err := r.store.Get(key)
	if err != nil {
		if errors.Is(err, ErrObjectNotFound) {
			// Pruned or racing compaction; drop the stale cache entry.
			r.mu.Lock()
			delete(r.packed, idx)
			r.mu.Unlock()
			return nil, false, nil
		}
		return nil, false, err
	}
	kind, _, payload, err := DecodeObject(data)
	if err != nil || kind != ObjPack {
		return nil, false, fmt.Errorf("logdev: pack %s: %w", key, errOr(err, ErrBadObject))
	}
	entries, err := DecodePackIndex(payload)
	if err != nil {
		return nil, false, fmt.Errorf("logdev: pack %s: %w", key, err)
	}
	for i, e := range entries {
		if e.Idx == idx {
			seg, err := PackSegment(payload, entries, i)
			if err != nil {
				return nil, false, err
			}
			return append([]byte(nil), seg...), true, nil
		}
	}
	return nil, false, nil
}

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// CompactRaw folds runs of contiguous raw segment objects into packs.
// Only runs of at least minSegs segments are packed, and at most
// maxSegs per pack. The pack object is uploaded before the raw objects
// are deleted, so a crash or failed delete between the two leaves
// harmless duplicates (Retrieve prefers the raw object; Archive skips
// both). Returns the number of segments packed.
func (r *RemoteArchiver) CompactRaw(minSegs, maxSegs int) (int, error) {
	if minSegs < 2 {
		minSegs = 2
	}
	if maxSegs < minSegs {
		maxSegs = minSegs
	}
	keys, err := r.store.List(r.prefix + remoteSegDir)
	if err != nil {
		return 0, err
	}
	var idxs []int64
	for _, k := range keys {
		var idx int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(k, r.prefix+remoteSegDir), "%d", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	packedTotal := 0
	for start := 0; start < len(idxs); {
		end := start + 1
		for end < len(idxs) && idxs[end] == idxs[end-1]+1 && end-start < maxSegs {
			end++
		}
		if end-start < minSegs {
			start = end
			continue
		}
		n, err := r.packRun(idxs[start:end])
		packedTotal += n
		if err != nil {
			return packedTotal, err
		}
		start = end
	}
	return packedTotal, nil
}

// packRun uploads one pack for the given contiguous raw segment
// indexes, then deletes the raw objects.
func (r *RemoteArchiver) packRun(run []int64) (int, error) {
	segs := make([][]byte, 0, len(run))
	for _, idx := range run {
		data, err := r.store.Get(r.segKey(idx))
		if err != nil {
			return 0, fmt.Errorf("logdev: compact: read segment %d: %w", idx, err)
		}
		kind, meta, payload, derr := DecodeObject(data)
		if derr != nil || kind != ObjSegment || meta != uint64(idx) {
			// A torn raw object is not durably archived; it must not be
			// folded into an immutable pack. Skip the whole run — the
			// archiver daemon will re-ship it first.
			return 0, fmt.Errorf("logdev: compact: segment %d invalid in store: %w", idx, errOr(derr, ErrBadObject))
		}
		segs = append(segs, payload)
	}
	first, last := run[0], run[len(run)-1]
	pack := EncodeObject(ObjPack, uint64(first), EncodePack(first, segs))
	key := r.packKey(first, last)
	if err := r.store.Put(key, pack); err != nil {
		return 0, fmt.Errorf("logdev: compact: upload pack %s: %w", key, err)
	}
	r.mu.Lock()
	for _, idx := range run {
		r.packed[idx] = key
	}
	r.stats.PacksBuilt++
	r.stats.SegmentsPacked += int64(len(run))
	r.mu.Unlock()
	for _, idx := range run {
		if err := r.store.Delete(r.segKey(idx)); err != nil {
			return len(run), err
		}
	}
	return len(run), nil
}

// PutSnapshot uploads a materialized restore base cut at snap.Cut.
func (r *RemoteArchiver) PutSnapshot(snap *Snapshot) error {
	obj := EncodeObject(ObjSnapshot, snap.Cut, EncodeSnapshot(snap))
	if err := r.store.Put(r.snapKey(snap.Cut), obj); err != nil {
		return fmt.Errorf("logdev: upload snapshot at %d: %w", snap.Cut, err)
	}
	r.count(func(s *RemoteStats) { s.SnapshotsPut++ })
	return nil
}

// SnapshotCuts lists the cuts of all valid-looking snapshot objects,
// ascending. Torn snapshot objects (detected on Get) are skipped.
func (r *RemoteArchiver) SnapshotCuts() ([]uint64, error) {
	keys, err := r.store.List(r.prefix + remoteSnapDir)
	if err != nil {
		return nil, err
	}
	cuts := make([]uint64, 0, len(keys))
	for _, k := range keys {
		var cut uint64
		if _, err := fmt.Sscanf(strings.TrimPrefix(k, r.prefix+remoteSnapDir), "%d", &cut); err == nil {
			cuts = append(cuts, cut)
		}
	}
	sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })
	return cuts, nil
}

// GetSnapshot downloads and decodes the snapshot cut at cut.
func (r *RemoteArchiver) GetSnapshot(cut uint64) (*Snapshot, error) {
	data, err := r.store.Get(r.snapKey(cut))
	if err != nil {
		return nil, err
	}
	kind, meta, payload, err := DecodeObject(data)
	if err != nil || kind != ObjSnapshot || meta != cut {
		return nil, fmt.Errorf("logdev: snapshot at %d: %w", cut, errOr(err, ErrBadObject))
	}
	snap, err := DecodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	if snap.Cut != cut {
		return nil, fmt.Errorf("%w: snapshot payload cut %d under key %d", ErrBadObject, snap.Cut, cut)
	}
	return snap, nil
}

// NewestSnapshotAtOrBelow returns the newest snapshot with Cut <= at,
// or ok=false if none exists.
func (r *RemoteArchiver) NewestSnapshotAtOrBelow(at uint64) (*Snapshot, bool, error) {
	cuts, err := r.SnapshotCuts()
	if err != nil {
		return nil, false, err
	}
	for i := len(cuts) - 1; i >= 0; i-- {
		if cuts[i] <= at {
			snap, err := r.GetSnapshot(cuts[i])
			if err != nil {
				return nil, false, err
			}
			return snap, true, nil
		}
	}
	return nil, false, nil
}

// Floor returns the oldest restorable point in the store. It is 0 —
// every point restorable — until pruning has actually removed raw
// history: while the raw log (or none of it was archived yet) still
// reaches back to genesis, snapshots merely accelerate restores. Once
// segment 0 is gone the floor is the oldest retained snapshot's cut,
// the point that snapshot materializes.
func (r *RemoteArchiver) Floor() (uint64, error) {
	cuts, err := r.SnapshotCuts()
	if err != nil {
		return 0, err
	}
	if len(cuts) == 0 {
		return 0, nil
	}
	segs, err := r.Segments()
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 || segs[0] == 0 {
		return 0, nil
	}
	return cuts[0], nil
}

// PruneToSnapshots enforces retention: keep the newest `keep`
// snapshots, delete older ones, and delete raw segments and packs that
// lie wholly below the new floor (the oldest retained snapshot's cut).
// Every point at or above the floor stays restorable: the floor
// snapshot materializes all history below it, and the log bytes above
// it are untouched. keep <= 0 prunes nothing.
func (r *RemoteArchiver) PruneToSnapshots(keep int) (objectsPruned, snapsPruned int, err error) {
	if keep <= 0 {
		return 0, 0, nil
	}
	cuts, err := r.SnapshotCuts()
	if err != nil {
		return 0, 0, err
	}
	if len(cuts) <= keep {
		return 0, 0, nil
	}
	floor := cuts[len(cuts)-keep]
	// Old snapshots first: once they are gone the floor is durably
	// advanced, and a crash mid-prune just leaves extra log objects.
	for _, cut := range cuts[:len(cuts)-keep] {
		if err := r.store.Delete(r.snapKey(cut)); err != nil {
			return objectsPruned, snapsPruned, err
		}
		snapsPruned++
	}
	// Raw segments wholly below the floor. The segment containing the
	// floor itself is kept: its tail above the cut is still live log.
	keys, err := r.store.List(r.prefix + remoteSegDir)
	if err != nil {
		return objectsPruned, snapsPruned, err
	}
	for _, k := range keys {
		var idx int64
		if _, serr := fmt.Sscanf(strings.TrimPrefix(k, r.prefix+remoteSegDir), "%d", &idx); serr != nil {
			continue
		}
		if uint64(idx+1)*uint64(r.segSize) <= floor {
			if err := r.store.Delete(k); err != nil {
				return objectsPruned, snapsPruned, err
			}
			objectsPruned++
		}
	}
	// Packs whose entire range is below the floor.
	packs, err := r.listPacks()
	if err != nil {
		return objectsPruned, snapsPruned, err
	}
	r.mu.Lock()
	for _, p := range packs {
		if uint64(p.last+1)*uint64(r.segSize) <= floor {
			if err := r.store.Delete(p.key); err != nil {
				r.mu.Unlock()
				return objectsPruned, snapsPruned, err
			}
			for i := p.first; i <= p.last; i++ {
				delete(r.packed, i)
			}
			objectsPruned++
		}
	}
	r.stats.SnapshotsPruned += int64(snapsPruned)
	r.stats.ObjectsPruned += int64(objectsPruned)
	r.mu.Unlock()
	return objectsPruned, snapsPruned, nil
}
