package logdev

import (
	"bytes"
	"errors"
	"testing"
)

// TestRemoteArchiverFaults drives the remote tier through the three
// network-failure shapes the fault model injects — a transient 5xx
// storm, an upload torn mid-object, and a permanent outage — and checks
// the shared invariants: retries are counted, zero segments are lost,
// and parked slots are never recycled before their bytes are durably
// uploaded.
func TestRemoteArchiverFaults(t *testing.T) {
	errCloudDown := errors.New("cloud unreachable")
	cases := []struct {
		name string
		arm  NetFault
		// healAfter > 0 heals the fault after that many failed drains
		// (permanent outages never clear on their own).
		healAfter     int
		wantAttempts  int
		wantPutErrors int64
		wantTornPuts  int64
	}{
		{
			name:          "transient-5xx-storm",
			arm:           NetFault{FailPuts: 2},
			wantAttempts:  2,
			wantPutErrors: 2,
		},
		{
			name:          "torn-upload-mid-object",
			arm:           NetFault{TearPutAfter: 1},
			wantAttempts:  1,
			wantPutErrors: 1,
			wantTornPuts:  1,
		},
		{
			name:      "permanent-outage",
			arm:       NetFault{Outage: errCloudDown},
			healAfter: 5,
			// 5 failed drains plus the mid-outage RestoreLog probe, which
			// itself attempts (and must refuse to skip) the pending drain.
			wantAttempts:  5,
			wantPutErrors: 6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := NewMemObjectStore()
			s := NewSegmentedMem(ProfileMemory, 64)
			defer s.Close()
			ra := NewRemoteArchiver(store, "", 64)
			s.SetArchiver(ra)

			want := fill(320, 'r') // segments 0..4
			appendSync(t, s, want)
			if err := s.Truncate(200); err != nil { // parks segments 0,1,2
				t.Fatal(err)
			}
			store.Arm(tc.arm)

			attempts := 0
			for {
				n, err := s.ArchivePending()
				if err == nil {
					if n != 3 {
						t.Fatalf("drain shipped %d segments, want 3", n)
					}
					break
				}
				attempts++
				// While the fault holds, the parked slots must hold too.
				if got := s.PendingArchive(); len(got) != 3 {
					t.Fatalf("attempt %d: PendingArchive = %v, want 3 parked segments", attempts, got)
				}
				if recycled, _ := s.TruncStats(); recycled != 0 {
					t.Fatalf("attempt %d: %d segments recycled before durable upload", attempts, recycled)
				}
				if tc.arm.Outage != nil && attempts == 3 {
					// Mid-outage a restore must fail loudly, never return a
					// truncated history.
					if _, _, err := s.RestoreLog(ra, 0); err == nil {
						t.Fatal("RestoreLog during outage returned success")
					}
				}
				if tc.healAfter > 0 && attempts == tc.healAfter {
					store.Arm(NetFault{})
				}
				if attempts > 50 {
					t.Fatalf("drain never succeeded: %+v", store.Stats())
				}
			}

			if attempts != tc.wantAttempts {
				t.Errorf("failed drains = %d, want %d", attempts, tc.wantAttempts)
			}
			st := store.Stats()
			if st.PutErrors != tc.wantPutErrors {
				t.Errorf("PutErrors = %d, want %d", st.PutErrors, tc.wantPutErrors)
			}
			if st.TornPuts != tc.wantTornPuts {
				t.Errorf("TornPuts = %d, want %d", st.TornPuts, tc.wantTornPuts)
			}

			// Drained: slots recycled now (and only now), nothing pending.
			if got := s.PendingArchive(); len(got) != 0 {
				t.Fatalf("PendingArchive = %v after drain, want empty", got)
			}
			if recycled, _ := s.TruncStats(); recycled != 3 {
				t.Fatalf("recycled = %d after drain, want 3", recycled)
			}

			// Zero loss: every archived segment byte-identical, and the
			// stitched full history equals what was appended.
			for idx := int64(0); idx < 3; idx++ {
				got, err := ra.Retrieve(idx)
				if err != nil {
					t.Fatalf("Retrieve(%d): %v", idx, err)
				}
				if !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
					t.Fatalf("segment %d contents mismatch after %s", idx, tc.name)
				}
			}
			data, start, err := s.RestoreLog(ra, 0)
			if err != nil {
				t.Fatalf("RestoreLog after heal: %v", err)
			}
			if start != 0 || !bytes.Equal(data, want) {
				t.Fatalf("RestoreLog = (start %d, %d bytes), want full history", start, len(data))
			}

			// Re-shipping an already-durable segment is a skip, not a
			// duplicate upload.
			puts := store.Stats().Puts
			if err := ra.Archive(0, want[:64]); err != nil {
				t.Fatalf("idempotent re-archive: %v", err)
			}
			if ra.Stats().UploadSkipped == 0 {
				t.Error("re-archive of durable segment did not count as skipped")
			}
			if store.Stats().Puts != puts {
				t.Error("re-archive of durable segment re-uploaded the object")
			}
		})
	}
}

// TestRemoteCompaction archives a run of raw segment objects, compacts
// them into a pack, and checks every segment remains retrievable
// byte-identically through the pack index — with the raw objects gone
// and re-archiving still treated as a skip.
func TestRemoteCompaction(t *testing.T) {
	store := NewMemObjectStore()
	ra := NewRemoteArchiver(store, "", 64)
	want := fill(8*64, 'c')
	for idx := int64(0); idx < 8; idx++ {
		if err := ra.Archive(idx, want[idx*64:(idx+1)*64]); err != nil {
			t.Fatal(err)
		}
	}

	packed, err := ra.CompactRaw(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if packed != 8 {
		t.Fatalf("CompactRaw packed %d segments, want 8", packed)
	}
	raws, err := store.List("seg/")
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 0 {
		t.Fatalf("raw segment objects survived compaction: %v", raws)
	}

	segs, err := ra.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 8 || segs[0] != 0 || segs[7] != 7 {
		t.Fatalf("Segments after compaction = %v, want 0..7", segs)
	}
	for idx := int64(0); idx < 8; idx++ {
		got, err := ra.Retrieve(idx)
		if err != nil {
			t.Fatalf("Retrieve(%d) through pack: %v", idx, err)
		}
		if !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
			t.Fatalf("segment %d mismatch through pack", idx)
		}
	}

	// A packed segment is durable: Archive must skip, not re-upload raw.
	puts := store.Stats().Puts
	if err := ra.Archive(3, want[3*64:4*64]); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Puts != puts {
		t.Error("archive of packed segment re-uploaded it")
	}

	// Compacting again with nothing raw is a no-op.
	if n, err := ra.CompactRaw(4, 64); err != nil || n != 0 {
		t.Fatalf("second CompactRaw = (%d, %v), want (0, nil)", n, err)
	}
	if got := ra.Stats(); got.PacksBuilt == 0 || got.SegmentsPacked != 8 {
		t.Fatalf("stats after compaction: %+v", got)
	}
}

// TestRemoteCompactionRefusesTornRaw: a torn raw object must never be
// immortalized inside an immutable pack — the compaction aborts, the
// raw run survives, and once the segment is re-shipped the pack builds.
func TestRemoteCompactionRefusesTornRaw(t *testing.T) {
	store := NewMemObjectStore()
	ra := NewRemoteArchiver(store, "", 64)
	want := fill(4*64, 't')
	for idx := int64(0); idx < 3; idx++ {
		if err := ra.Archive(idx, want[idx*64:(idx+1)*64]); err != nil {
			t.Fatal(err)
		}
	}
	// The last upload tears mid-object: the store keeps a prefix.
	store.Arm(NetFault{TearPutAfter: 1})
	if err := ra.Archive(3, want[3*64:]); err == nil {
		t.Fatal("torn upload reported success")
	}
	store.Arm(NetFault{})

	if _, err := ra.CompactRaw(4, 64); err == nil {
		t.Fatal("CompactRaw packed a run containing a torn object")
	}
	// The healthy raw objects must have survived the abort.
	for idx := int64(0); idx < 3; idx++ {
		if _, err := ra.Retrieve(idx); err != nil {
			t.Fatalf("Retrieve(%d) after aborted compaction: %v", idx, err)
		}
	}

	// Re-ship the torn segment (detected as absent, overwritten), then
	// compaction goes through.
	if err := ra.Archive(3, want[3*64:]); err != nil {
		t.Fatal(err)
	}
	if n, err := ra.CompactRaw(4, 64); err != nil || n != 4 {
		t.Fatalf("CompactRaw after re-ship = (%d, %v), want (4, nil)", n, err)
	}
	for idx := int64(0); idx < 4; idx++ {
		got, err := ra.Retrieve(idx)
		if err != nil || !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
			t.Fatalf("segment %d after re-ship + pack: %v", idx, err)
		}
	}
}

// TestRemoteSnapshotsAndPrune exercises the snapshot objects and the
// retention invariant at the archiver layer: pruning keeps the newest N
// snapshots and deletes exactly the log objects wholly below the oldest
// survivor's cut — the floor.
func TestRemoteSnapshotsAndPrune(t *testing.T) {
	store := NewMemObjectStore()
	ra := NewRemoteArchiver(store, "", 64)
	want := fill(4*64, 's')
	for idx := int64(0); idx < 4; idx++ {
		if err := ra.Archive(idx, want[idx*64:(idx+1)*64]); err != nil {
			t.Fatal(err)
		}
	}

	snaps := []*Snapshot{
		{Cut: 64, Pages: []SnapshotPage{{PID: 1, Image: []byte("page-a")}}},
		{Cut: 128, Pages: []SnapshotPage{{PID: 1, Image: []byte("page-b")}},
			Stash: []SnapshotStashRec{{TxnID: 9, At: 100, PageID: 1, Payload: []byte("undo")}}},
		{Cut: 192, Pages: []SnapshotPage{{PID: 2, Image: []byte("page-c")}}},
	}
	for _, sn := range snaps {
		if err := ra.PutSnapshot(sn); err != nil {
			t.Fatal(err)
		}
	}

	// With the full raw history still present, snapshots are an
	// accelerator, not a floor.
	if floor, err := ra.Floor(); err != nil || floor != 0 {
		t.Fatalf("Floor with raw history intact = (%d, %v), want 0", floor, err)
	}

	got, err := ra.GetSnapshot(128)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cut != 128 || len(got.Pages) != 1 || !bytes.Equal(got.Pages[0].Image, []byte("page-b")) ||
		len(got.Stash) != 1 || !bytes.Equal(got.Stash[0].Payload, []byte("undo")) {
		t.Fatalf("GetSnapshot(128) round-trip mismatch: %+v", got)
	}
	if sn, ok, err := ra.NewestSnapshotAtOrBelow(150); err != nil || !ok || sn.Cut != 128 {
		t.Fatalf("NewestSnapshotAtOrBelow(150) = (%v, %v, %v), want cut 128", sn, ok, err)
	}
	if _, ok, err := ra.NewestSnapshotAtOrBelow(63); err != nil || ok {
		t.Fatalf("NewestSnapshotAtOrBelow(63) found a snapshot below every cut (err %v)", err)
	}

	objs, pruned, err := ra.PruneToSnapshots(2)
	if err != nil {
		t.Fatal(err)
	}
	// Floor 128: raw segments 0 and 1 lie wholly below, snapshot 64 goes.
	if objs != 2 || pruned != 1 {
		t.Fatalf("PruneToSnapshots(2) = (%d objects, %d snapshots), want (2, 1)", objs, pruned)
	}
	if cuts, _ := ra.SnapshotCuts(); len(cuts) != 2 || cuts[0] != 128 {
		t.Fatalf("SnapshotCuts after prune = %v, want [128 192]", cuts)
	}
	if floor, err := ra.Floor(); err != nil || floor != 128 {
		t.Fatalf("Floor after prune = (%d, %v), want 128", floor, err)
	}
	// Everything at or above the floor is still there.
	segs, err := ra.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != 2 || segs[1] != 3 {
		t.Fatalf("Segments after prune = %v, want [2 3]", segs)
	}
	for idx := int64(2); idx < 4; idx++ {
		got, err := ra.Retrieve(idx)
		if err != nil || !bytes.Equal(got, want[idx*64:(idx+1)*64]) {
			t.Fatalf("segment %d lost by prune: %v", idx, err)
		}
	}
	// Pruning is idempotent at the same retention depth.
	if objs, pruned, err := ra.PruneToSnapshots(2); err != nil || objs != 0 || pruned != 0 {
		t.Fatalf("second PruneToSnapshots = (%d, %d, %v), want (0, 0, nil)", objs, pruned, err)
	}
}
