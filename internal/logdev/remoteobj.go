// remoteobj.go defines the on-wire formats of the remote log tier's
// three object kinds and their decoders. Every object starts with a
// fixed self-validating envelope (magic, kind, meta, payload CRC-32C),
// so a torn upload — the store kept a prefix, the client saw an error —
// is detected on read and treated as if the object were absent. The
// decoders are the fuzz surface: a corrupt or truncated index must fail
// loudly, never misdirect replay (FuzzCompactedIndex).
//
// Object kinds:
//
//	segment   one raw log segment, payload = the segment's bytes
//	pack      many contiguous segments compacted into one immutable
//	          object: an index (idx, offset, length, CRC per segment)
//	          followed by the concatenated segment bytes
//	snapshot  a materialized restore base at a log cut: page images plus
//	          the undo stash of transactions straddling the cut
package logdev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Object kinds carried in the envelope.
const (
	// ObjSegment is a raw archived log segment.
	ObjSegment = uint16(1)
	// ObjPack is a compacted run of contiguous segments with an index.
	ObjPack = uint16(2)
	// ObjSnapshot is a materialized point-in-time restore base.
	ObjSnapshot = uint16(3)
)

const (
	objMagic   = "AEOB"
	objVersion = uint16(1)
	// envelopeSize is the fixed header before the payload:
	// magic(4) version(2) kind(2) meta(8) payloadLen(4) crc(4).
	envelopeSize = 24
)

var remoteCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrBadObject reports an object that failed envelope or payload
// validation — torn, corrupt, or not a remote-tier object at all.
var ErrBadObject = errors.New("logdev: bad remote object")

// EncodeObject wraps payload in the self-validating envelope.
// meta is kind-specific: the segment index, the pack's first segment
// index, or the snapshot's cut LSN.
func EncodeObject(kind uint16, meta uint64, payload []byte) []byte {
	buf := make([]byte, envelopeSize+len(payload))
	copy(buf[0:4], objMagic)
	binary.LittleEndian.PutUint16(buf[4:6], objVersion)
	binary.LittleEndian.PutUint16(buf[6:8], kind)
	binary.LittleEndian.PutUint64(buf[8:16], meta)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(payload, remoteCRC))
	copy(buf[envelopeSize:], payload)
	return buf
}

// DecodeObject validates the envelope and payload CRC and returns the
// kind, meta and payload. Any mismatch — short buffer, wrong magic,
// truncated or corrupt payload — returns ErrBadObject.
func DecodeObject(data []byte) (kind uint16, meta uint64, payload []byte, err error) {
	if len(data) < envelopeSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes, need %d for envelope", ErrBadObject, len(data), envelopeSize)
	}
	if string(data[0:4]) != objMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic", ErrBadObject)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != objVersion {
		return 0, 0, nil, fmt.Errorf("%w: version %d", ErrBadObject, v)
	}
	kind = binary.LittleEndian.Uint16(data[6:8])
	if kind != ObjSegment && kind != ObjPack && kind != ObjSnapshot {
		return 0, 0, nil, fmt.Errorf("%w: kind %d", ErrBadObject, kind)
	}
	meta = binary.LittleEndian.Uint64(data[8:16])
	plen := binary.LittleEndian.Uint32(data[16:20])
	if uint64(plen) != uint64(len(data)-envelopeSize) {
		return 0, 0, nil, fmt.Errorf("%w: payload %d bytes, envelope says %d (torn upload?)", ErrBadObject, len(data)-envelopeSize, plen)
	}
	payload = data[envelopeSize:]
	if crc := crc32.Checksum(payload, remoteCRC); crc != binary.LittleEndian.Uint32(data[20:24]) {
		return 0, 0, nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadObject)
	}
	return kind, meta, payload, nil
}

// PackEntry locates one segment inside a pack object's payload.
type PackEntry struct {
	// Idx is the segment index (byte offset / segment size in the log).
	Idx int64
	// Off is the segment's byte offset within the pack payload, after
	// the index block.
	Off uint32
	// Len is the segment's length in bytes.
	Len uint32
	// CRC is the CRC-32C of the segment's bytes.
	CRC uint32
}

// packEntrySize is idx(8) off(4) len(4) crc(4).
const packEntrySize = 20

// maxPackEntries bounds index decode so a corrupt count cannot drive a
// huge allocation; 1<<20 segments per pack is far beyond any real pack.
const maxPackEntries = 1 << 20

// EncodePack builds a pack payload: a count-prefixed index followed by
// the concatenated segment bytes. Entries must be contiguous ascending
// segment indexes; segs[i] is the raw bytes of the i-th segment.
func EncodePack(first int64, segs [][]byte) []byte {
	n := len(segs)
	size := 4 + n*packEntrySize
	for _, s := range segs {
		size += len(s)
	}
	buf := make([]byte, 4, size)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	off := uint32(0)
	for i, s := range segs {
		var e [packEntrySize]byte
		binary.LittleEndian.PutUint64(e[0:8], uint64(first+int64(i)))
		binary.LittleEndian.PutUint32(e[8:12], off)
		binary.LittleEndian.PutUint32(e[12:16], uint32(len(s)))
		binary.LittleEndian.PutUint32(e[16:20], crc32.Checksum(s, remoteCRC))
		buf = append(buf, e[:]...)
		off += uint32(len(s))
	}
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return buf
}

// DecodePackIndex parses and validates a pack payload's index. It
// checks the count bound, ascending contiguous segment indexes, exact
// offset packing (entry i starts where i-1 ended) and that the data
// area's size matches the index exactly — so a truncated or bit-flipped
// index can never map a segment to the wrong bytes. The segment bytes
// themselves are CRC-checked by PackSegment on extraction.
func DecodePackIndex(payload []byte) ([]PackEntry, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: pack payload too short for index count", ErrBadObject)
	}
	n := binary.LittleEndian.Uint32(payload[0:4])
	if n == 0 || n > maxPackEntries {
		return nil, fmt.Errorf("%w: pack index count %d out of range", ErrBadObject, n)
	}
	idxEnd := 4 + int(n)*packEntrySize
	if len(payload) < idxEnd {
		return nil, fmt.Errorf("%w: pack payload %d bytes, index needs %d", ErrBadObject, len(payload), idxEnd)
	}
	dataLen := uint64(len(payload) - idxEnd)
	entries := make([]PackEntry, n)
	var next uint64
	for i := range entries {
		e := payload[4+i*packEntrySize:]
		entries[i] = PackEntry{
			Idx: int64(binary.LittleEndian.Uint64(e[0:8])),
			Off: binary.LittleEndian.Uint32(e[8:12]),
			Len: binary.LittleEndian.Uint32(e[12:16]),
			CRC: binary.LittleEndian.Uint32(e[16:20]),
		}
		if entries[i].Idx < 0 {
			return nil, fmt.Errorf("%w: pack entry %d: negative segment index", ErrBadObject, i)
		}
		if i > 0 && entries[i].Idx != entries[i-1].Idx+1 {
			return nil, fmt.Errorf("%w: pack entry %d: segment %d does not follow %d", ErrBadObject, i, entries[i].Idx, entries[i-1].Idx)
		}
		if uint64(entries[i].Off) != next {
			return nil, fmt.Errorf("%w: pack entry %d: offset %d, expected %d", ErrBadObject, i, entries[i].Off, next)
		}
		next += uint64(entries[i].Len)
		if next > dataLen {
			return nil, fmt.Errorf("%w: pack entry %d overruns data area (%d > %d)", ErrBadObject, i, next, dataLen)
		}
	}
	if next != dataLen {
		return nil, fmt.Errorf("%w: pack data area %d bytes, index covers %d", ErrBadObject, dataLen, next)
	}
	return entries, nil
}

// PackSegment extracts and CRC-verifies one segment from a pack
// payload previously validated by DecodePackIndex.
func PackSegment(payload []byte, entries []PackEntry, i int) ([]byte, error) {
	base := 4 + len(entries)*packEntrySize
	e := entries[i]
	seg := payload[base+int(e.Off) : base+int(e.Off)+int(e.Len)]
	if crc := crc32.Checksum(seg, remoteCRC); crc != e.CRC {
		return nil, fmt.Errorf("%w: segment %d checksum mismatch inside pack", ErrBadObject, e.Idx)
	}
	return seg, nil
}

// SnapshotPage is one materialized page image in a snapshot object.
type SnapshotPage struct {
	// PID is the page identifier.
	PID uint64
	// Image is the page's serialized bytes as of the snapshot cut.
	Image []byte
}

// SnapshotStashRec is one not-yet-compensated update of a transaction
// that straddles the snapshot cut: everything point-in-time restore
// needs to undo it (its position for ordering, its page, and its update
// payload whose before-image yields the inverse).
type SnapshotStashRec struct {
	// TxnID is the straddling transaction.
	TxnID uint64
	// At is the update record's LSN (single log) or seq (partitioned) —
	// the global undo order key.
	At uint64
	// PageID is the page the update touched.
	PageID uint64
	// Payload is the update record's encoded payload.
	Payload []byte
}

// Snapshot is a decoded snapshot object: replaying the log from Cut on
// top of Pages reproduces any later point; Stash carries the undo
// information for transactions still in flight at Cut.
type Snapshot struct {
	// Cut is the log offset (single log) or global seq (partitioned) up
	// to which Pages already reflect the log.
	Cut uint64
	// Pages are the materialized page images as of Cut.
	Pages []SnapshotPage
	// Stash lists the un-compensated updates of transactions that were
	// in flight at Cut, in ascending At order.
	Stash []SnapshotStashRec
}

// maxSnapshotItems bounds decode-side allocations for page and stash
// counts in the face of corrupt headers.
const maxSnapshotItems = 1 << 24

// EncodeSnapshot serializes a snapshot into an object payload.
func EncodeSnapshot(s *Snapshot) []byte {
	size := 8 + 4 + 4
	for _, p := range s.Pages {
		size += 12 + len(p.Image)
	}
	for _, r := range s.Stash {
		size += 28 + len(r.Payload)
	}
	buf := make([]byte, 0, size)
	var u64 [8]byte
	var u32 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put64(s.Cut)
	put32(uint32(len(s.Pages)))
	for _, p := range s.Pages {
		put64(p.PID)
		put32(uint32(len(p.Image)))
		buf = append(buf, p.Image...)
	}
	put32(uint32(len(s.Stash)))
	for _, r := range s.Stash {
		put64(r.TxnID)
		put64(r.At)
		put64(r.PageID)
		put32(uint32(len(r.Payload)))
		buf = append(buf, r.Payload...)
	}
	return buf
}

// DecodeSnapshot parses a snapshot payload, validating every length
// against the remaining buffer so truncation fails loudly.
func DecodeSnapshot(payload []byte) (*Snapshot, error) {
	pos := 0
	need := func(n int) error {
		if len(payload)-pos < n {
			return fmt.Errorf("%w: snapshot truncated at offset %d (need %d more bytes)", ErrBadObject, pos, n)
		}
		return nil
	}
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		return v
	}
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v
	}
	if err := need(12); err != nil {
		return nil, err
	}
	s := &Snapshot{Cut: get64()}
	nPages := get32()
	if nPages > maxSnapshotItems {
		return nil, fmt.Errorf("%w: snapshot page count %d out of range", ErrBadObject, nPages)
	}
	s.Pages = make([]SnapshotPage, 0, min(int(nPages), 1<<16))
	for i := uint32(0); i < nPages; i++ {
		if err := need(12); err != nil {
			return nil, err
		}
		pid := get64()
		ilen := get32()
		if err := need(int(ilen)); err != nil {
			return nil, err
		}
		s.Pages = append(s.Pages, SnapshotPage{PID: pid, Image: payload[pos : pos+int(ilen)]})
		pos += int(ilen)
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nStash := get32()
	if nStash > maxSnapshotItems {
		return nil, fmt.Errorf("%w: snapshot stash count %d out of range", ErrBadObject, nStash)
	}
	s.Stash = make([]SnapshotStashRec, 0, min(int(nStash), 1<<16))
	var prevAt uint64
	for i := uint32(0); i < nStash; i++ {
		if err := need(28); err != nil {
			return nil, err
		}
		r := SnapshotStashRec{TxnID: get64(), At: get64(), PageID: get64()}
		plen := get32()
		if err := need(int(plen)); err != nil {
			return nil, err
		}
		r.Payload = payload[pos : pos+int(plen)]
		pos += int(plen)
		if i > 0 && r.At <= prevAt {
			return nil, fmt.Errorf("%w: snapshot stash not in ascending order at entry %d", ErrBadObject, i)
		}
		prevAt = r.At
		s.Stash = append(s.Stash, r)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrBadObject, len(payload)-pos)
	}
	return s, nil
}
