package logdev

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aether/internal/fsutil"
	"aether/internal/vfs"
)

// Truncator is the optional Device extension for bounded logs: devices
// that can recycle the dead prefix behind a truncation horizon. The
// horizon is a logical offset (an LSN); bytes below it are gone and
// ReadAt refuses them. LSNs stay stable: DurableSize keeps counting from
// the beginning of time, so a restarted log resumes at the same address.
type Truncator interface {
	Device
	// Truncate advances the truncation horizon to before (clamped to the
	// durable size) and recycles every whole segment below it. before
	// must be a record boundary — recovery starts its scan exactly there.
	Truncate(before int64) error
	// Base returns the truncation horizon: the logical offset of the
	// first readable byte (0 if nothing was ever truncated).
	Base() int64
}

// BaseOffset returns dev's truncation horizon, or 0 for devices that
// cannot truncate.
func BaseOffset(dev Device) int64 {
	if t, ok := dev.(Truncator); ok {
		return t.Base()
	}
	return 0
}

// ReadTail reads the durable log suffix [base, durable) and returns it
// together with its base offset — the recovery scan's input on a device
// whose dead prefix was recycled. For untruncatable devices it is
// ReadAll with base 0.
func ReadTail(dev Device) (data []byte, base int64, err error) {
	base = BaseOffset(dev)
	size := dev.DurableSize()
	if size < base {
		return nil, 0, fmt.Errorf("logdev: durable size %d below truncation base %d", size, base)
	}
	buf := make([]byte, size-base)
	off := base
	for off < size {
		n, err := dev.ReadAt(buf[off-base:], off)
		off += int64(n)
		if err != nil {
			if err == io.EOF && off == size {
				break
			}
			return nil, 0, err
		}
	}
	return buf, base, nil
}

// SegmentInfo describes one live segment of a Segmented device.
type SegmentInfo struct {
	// Index is the segment's position in the logical stream; the segment
	// covers logical offsets [Index*SegmentSize, (Index+1)*SegmentSize).
	Index int64
	// Start and End bound the bytes actually written into the segment.
	Start, End int64
}

// segment is one fixed-size region of the logical log stream.
type segment interface {
	// writeAt writes p at off within the segment.
	writeAt(p []byte, off int64) error
	// readAt fills p from off within the segment, zero-filling anything
	// never written (zero bytes read as pre-allocated space upstream).
	readAt(p []byte, off int64) error
	// sync makes the segment's written bytes durable.
	sync() error
	// trim discards bytes at and beyond n (crash simulation).
	trim(n int64) error
	close() error
}

// segBackend creates, persists and recycles segments.
type segBackend interface {
	// open returns segment idx, creating it if needed.
	open(idx int64) (segment, error)
	// remove recycles segment idx permanently.
	remove(idx int64, seg segment) error
	// setBase durably records the truncation horizon. It is called
	// before any removal, so a crash can never leave the recorded base
	// below a recycled segment.
	setBase(base int64) error
	// setDurable durably records the watermark: how many logical bytes
	// completed Syncs cover. Called by Sync after the data fsyncs and
	// before durability is acknowledged, so the recorded watermark can
	// never exceed what is actually on stable storage.
	setDurable(d int64) error
	// syncMeta makes segment creations durable (directory fsync);
	// called by Sync before durability is acknowledged whenever new
	// segments were opened since the last sync.
	syncMeta() error
	close() error
}

// Segmented is an append-only log device that spreads the logical byte
// stream over fixed-size segments with a monotonic base offset. Whole
// segments behind the truncation horizon are recycled (deleted files /
// released memory), bounding the log's footprint the way LogBase-style
// log recycling does, while LSNs remain stable addresses: logical offsets
// never restart.
//
// The memory backend reproduces Mem's imposed-latency methodology and
// crash simulation; the directory backend stores each segment as its own
// file plus a MANIFEST recording the segment size and horizon.
type Segmented struct {
	profile Profile
	segSize int64
	backend segBackend

	mu      sync.Mutex
	segs    map[int64]segment
	pending map[int64]segment // dead segments awaiting archive-then-recycle
	base    int64             // truncation horizon: first valid logical offset
	size    int64             // logical append end (monotonic across truncation)
	durable int64
	newSegs bool // segments created since the last completed Sync
	closed  bool
	failErr error

	archiver Archiver   // nil: dead segments are recycled immediately
	archMu   sync.Mutex // serializes ArchivePending passes
	readOnly bool       // diagnostic open: no writes, no repair on disk

	truncatedSegments int64
	truncatedBytes    int64
	archivedSegments  int64
	repairedTail      int64 // torn-tail bytes discarded by Open
	lowRead           int64 // lowest offset ever passed to ReadAt

	stats Stats
}

var (
	_ Truncator          = (*Segmented)(nil)
	_ ArchivingTruncator = (*Segmented)(nil)
)

// memSegBackend keeps segments as heap buffers.
type memSegBackend struct{ segSize int64 }

type memSegment struct{ buf []byte }

func (b *memSegBackend) open(int64) (segment, error) {
	return &memSegment{buf: make([]byte, b.segSize)}, nil
}
func (b *memSegBackend) remove(int64, segment) error { return nil }
func (b *memSegBackend) setBase(int64) error         { return nil }
func (b *memSegBackend) setDurable(int64) error      { return nil }
func (b *memSegBackend) syncMeta() error             { return nil }
func (b *memSegBackend) close() error                { return nil }

func (s *memSegment) writeAt(p []byte, off int64) error {
	copy(s.buf[off:], p)
	return nil
}
func (s *memSegment) readAt(p []byte, off int64) error {
	copy(p, s.buf[off:])
	return nil
}
func (s *memSegment) sync() error { return nil }
func (s *memSegment) trim(n int64) error {
	tail := s.buf[n:]
	for i := range tail {
		tail[i] = 0
	}
	return nil
}
func (s *memSegment) close() error { return nil }

// NewSegmentedMem returns an empty in-memory segmented device with the
// given latency profile and segment size.
func NewSegmentedMem(p Profile, segSize int64) *Segmented {
	if segSize <= 0 {
		panic("logdev: segment size must be positive")
	}
	return &Segmented{
		profile: p,
		segSize: segSize,
		backend: &memSegBackend{segSize: segSize},
		segs:    make(map[int64]segment),
		pending: make(map[int64]segment),
		lowRead: math.MaxInt64,
	}
}

// dirSegBackend stores each segment as dir/<index>.seg plus a MANIFEST
// (segment size + truncation horizon) and a MANIFEST.durable watermark
// file (how many logical bytes completed Syncs cover).
type dirSegBackend struct {
	fs      vfs.FS
	dir     string
	segSize int64
	wm      *watermarkFile
	ro      bool // diagnostic open: never write or unlink anything
}

type fileSegment struct{ f vfs.File }

func (b *dirSegBackend) segPath(idx int64) string {
	return filepath.Join(b.dir, fmt.Sprintf("%016d.seg", idx))
}

func (b *dirSegBackend) open(idx int64) (segment, error) {
	flags := os.O_RDWR | os.O_CREATE
	if b.ro {
		flags = os.O_RDONLY
	}
	f, err := b.fs.OpenFile(b.segPath(idx), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logdev: open segment: %w", err)
	}
	return &fileSegment{f: f}, nil
}

func (b *dirSegBackend) remove(idx int64, seg segment) error {
	if err := seg.close(); err != nil {
		return err
	}
	return b.fs.Remove(b.segPath(idx))
}

// manifestName holds the segment size and truncation horizon; it is what
// lets a reopen (and logdump) reconstruct the logical layout after dead
// segments were recycled.
const manifestName = "MANIFEST"

func (b *dirSegBackend) setBase(base int64) error {
	return writeManifest(b.fs, b.dir, b.segSize, base)
}

func (b *dirSegBackend) setDurable(d int64) error { return b.wm.set(d) }

func (b *dirSegBackend) syncMeta() error { return fsutil.SyncDirFS(b.fs, b.dir) }

func (b *dirSegBackend) close() error {
	if b.wm != nil {
		return b.wm.close()
	}
	return nil
}

func writeManifest(fs vfs.FS, dir string, segSize, base int64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	body := fmt.Sprintf("segsize %d\nbase %d\n", segSize, base)
	// The temp file's bytes must be durable before the rename: a rename
	// whose dentry hardens ahead of the data would leave an empty
	// MANIFEST after a crash, making the directory unopenable.
	if err := fsutil.WriteFileSyncFS(fs, tmp, []byte(body), 0o644); err != nil {
		return fmt.Errorf("logdev: write manifest: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("logdev: install manifest: %w", err)
	}
	// The horizon must be durable before callers act on it (Truncate
	// unlinks segments right after this).
	if err := fsutil.SyncDirFS(fs, dir); err != nil {
		return fmt.Errorf("logdev: sync manifest dir: %w", err)
	}
	return nil
}

func readManifest(fs vfs.FS, dir string) (segSize, base int64, ok bool, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("logdev: read manifest: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, perr := strconv.ParseInt(fields[1], 10, 64)
		if perr != nil {
			return 0, 0, false, fmt.Errorf("logdev: bad manifest line %q", line)
		}
		switch fields[0] {
		case "segsize":
			segSize = v
		case "base":
			base = v
		}
	}
	if segSize <= 0 {
		return 0, 0, false, fmt.Errorf("logdev: manifest in %s lacks a segment size", dir)
	}
	return segSize, base, true, nil
}

func (s *fileSegment) writeAt(p []byte, off int64) error {
	n, err := s.f.WriteAt(p, off)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return err
}

func (s *fileSegment) readAt(p []byte, off int64) error {
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		// Bytes past the file's end were never written: read as zeros,
		// which the record iterator treats as pre-allocated space.
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return nil
	}
	return err
}

func (s *fileSegment) sync() error        { return s.f.Sync() }
func (s *fileSegment) trim(n int64) error { return s.f.Truncate(n) }
func (s *fileSegment) close() error       { return s.f.Close() }

// OpenSegmentedDir opens (creating if needed) a directory-backed
// segmented device. Existing segment files are the durable prefix, as
// with OpenFile. segSize must match the directory's manifest if one
// exists; pass 0 to adopt the manifest's value (reopen / logdump).
func OpenSegmentedDir(dir string, segSize int64) (*Segmented, error) {
	return openSegmentedDir(vfs.OS{}, dir, segSize, false)
}

// OpenSegmentedDirFS is OpenSegmentedDir over an arbitrary filesystem
// — the fault-injection entry point.
func OpenSegmentedDirFS(fs vfs.FS, dir string, segSize int64) (*Segmented, error) {
	return openSegmentedDir(fs, dir, segSize, false)
}

// ErrReadOnly is returned for mutating operations on a device opened
// with OpenSegmentedDirRO.
var ErrReadOnly = errors.New("logdev: device opened read-only")

// OpenSegmentedDirRO opens an existing segmented log directory strictly
// for inspection (logdump): segment files open read-only, a missing
// watermark is adopted in memory without being seeded, and a torn tail
// is clamped in memory without trimming or unlinking anything on disk —
// the crash evidence stays exactly as the crash left it. Append, Sync
// and Truncate return ErrReadOnly.
func OpenSegmentedDirRO(dir string) (*Segmented, error) {
	return openSegmentedDir(vfs.OS{}, dir, 0, true)
}

func openSegmentedDir(fs vfs.FS, dir string, segSize int64, ro bool) (*Segmented, error) {
	if ro {
		if st, err := fs.Stat(dir); err != nil {
			return nil, fmt.Errorf("logdev: open %s: %w", dir, err)
		} else if !st.IsDir() {
			return nil, fmt.Errorf("logdev: %s is not a segmented log directory", dir)
		}
	} else if _, err := fs.Stat(dir); err != nil {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("logdev: create %s: %w", dir, err)
		}
		// The new directory's own dentry must be durable before anything
		// inside it is: sync the parent (invariant 5's outermost layer).
		if err := fsutil.SyncDirFS(fs, filepath.Dir(dir)); err != nil {
			return nil, fmt.Errorf("logdev: sync parent of %s: %w", dir, err)
		}
	}
	msz, mbase, haveManifest, err := readManifest(fs, dir)
	if err != nil {
		return nil, err
	}
	switch {
	case haveManifest && segSize == 0:
		segSize = msz
	case haveManifest && segSize != msz:
		return nil, fmt.Errorf("logdev: segment size %d does not match manifest's %d in %s", segSize, msz, dir)
	case !haveManifest && ro:
		return nil, fmt.Errorf("logdev: %s has no MANIFEST (not a segmented log)", dir)
	case !haveManifest && segSize <= 0:
		return nil, fmt.Errorf("logdev: segment size required for new segmented log %s", dir)
	case !haveManifest:
		if err := writeManifest(fs, dir, segSize, 0); err != nil {
			return nil, err
		}
	}

	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logdev: read %s: %w", dir, err)
	}
	backend := &dirSegBackend{fs: fs, dir: dir, segSize: segSize, ro: ro}
	s := &Segmented{
		segSize:  segSize,
		backend:  backend,
		segs:     make(map[int64]segment),
		pending:  make(map[int64]segment),
		base:     mbase,
		lowRead:  math.MaxInt64,
		readOnly: ro,
	}
	if ro {
		s.failErr = ErrReadOnly
	}
	fail := func(err error) (*Segmented, error) {
		s.closeSegmentsLocked()
		backend.close()
		return nil, err
	}
	minIdx, maxIdx := int64(math.MaxInt64), int64(-1)
	sizes := make(map[int64]int64)
	var lastLen int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, perr := strconv.ParseInt(strings.TrimSuffix(name, ".seg"), 10, 64)
		if perr != nil {
			return fail(fmt.Errorf("logdev: stray file %s in segmented log %s", name, dir))
		}
		info, ierr := e.Info()
		if ierr != nil {
			return fail(ierr)
		}
		if info.Size() > segSize {
			return fail(fmt.Errorf("logdev: segment %s is %d bytes, larger than segment size %d", name, info.Size(), segSize))
		}
		seg, oerr := s.backend.open(idx)
		if oerr != nil {
			return fail(oerr)
		}
		s.segs[idx] = seg
		sizes[idx] = info.Size()
		if idx < minIdx {
			minIdx = idx
		}
		if idx > maxIdx {
			maxIdx, lastLen = idx, info.Size()
		} else if idx == maxIdx {
			lastLen = info.Size()
		}
	}
	if maxIdx >= 0 {
		s.size = maxIdx*segSize + lastLen
		if sb := minIdx * segSize; sb > s.base {
			// The manifest update raced a crash; the surviving files are
			// authoritative about what was recycled.
			s.base = sb
		}
	}

	// The durable watermark decides where acknowledged durability ends.
	// On-disk file sizes are NOT that boundary: a power loss can persist
	// unsynced bytes in a later segment while dropping them from an
	// earlier one. The watermark, written before every Sync is
	// acknowledged, distinguishes the two failure shapes: bytes beyond
	// it are a torn tail (discard), bytes missing below it are real
	// corruption (fail loudly).
	var wmVal int64
	if ro {
		v, haveWM, rerr := readWatermark(fs, dir)
		if rerr != nil {
			return fail(rerr)
		}
		wmVal = v
		if !haveWM {
			wmVal = s.size // legacy assumption, adopted in memory only
		}
	} else {
		wm, v, haveWM, werr := openWatermark(fs, dir)
		if werr != nil {
			return fail(werr)
		}
		backend.wm = wm
		wmVal = v
		if !haveWM {
			// Directory written before watermarks existed (or a crash
			// beat the very first Sync): the file sizes are the only
			// durable horizon available — the legacy assumption, kept
			// for one more open, then replaced by a live watermark.
			if err := wm.set(s.size); err != nil {
				return fail(err)
			}
			if err := fsutil.SyncDirFS(fs, dir); err != nil {
				return fail(fmt.Errorf("logdev: sync watermark dir: %w", err))
			}
			wmVal = s.size
		}
	}
	if wmVal < s.base {
		return fail(fmt.Errorf("logdev: durable watermark %d below truncation base %d in %s (metadata corruption)", wmVal, s.base, dir))
	}
	for idx := s.base / segSize; idx*segSize < wmVal; idx++ {
		need := min(segSize, wmVal-idx*segSize)
		if sizes[idx] < need {
			return fail(fmt.Errorf(
				"logdev: segment %d holds %d bytes but the durable watermark %d requires %d — mid-log corruption, refusing to repair",
				idx, sizes[idx], wmVal, need))
		}
	}
	if s.size > wmVal {
		// Torn tail: everything beyond the watermark was never covered
		// by a completed Sync, so no committed work can live there.
		// Clamp the log back to the watermark and make the repair
		// durable before acknowledging the open. repairedTail counts
		// the bytes actually on disk beyond the watermark (a crash can
		// persist a later segment while dropping an earlier one's tail,
		// so the span size-wmVal may include holes that hold nothing).
		removed := false
		for idx, seg := range s.segs {
			segStart := idx * segSize
			switch {
			case segStart >= wmVal:
				s.repairedTail += sizes[idx]
				if ro {
					// Leave the crash evidence on disk; just stop
					// serving the torn segment.
					seg.close()
					delete(s.segs, idx)
					continue
				}
				if err := s.backend.remove(idx, seg); err != nil {
					return fail(fmt.Errorf("logdev: discard torn segment %d: %w", idx, err))
				}
				delete(s.segs, idx)
				removed = true
			case segStart+sizes[idx] > wmVal:
				s.repairedTail += segStart + sizes[idx] - wmVal
				if ro {
					continue // clamped in memory via size/durable below
				}
				if err := seg.trim(wmVal - segStart); err != nil {
					return fail(fmt.Errorf("logdev: trim torn segment %d: %w", idx, err))
				}
				if err := seg.sync(); err != nil {
					return fail(fmt.Errorf("logdev: sync trimmed segment %d: %w", idx, err))
				}
			}
		}
		if removed {
			if err := s.backend.syncMeta(); err != nil {
				return fail(err)
			}
		}
		s.size = wmVal
	}
	s.durable = wmVal
	if s.base > s.size {
		return fail(fmt.Errorf("logdev: manifest base %d beyond log end %d in %s", s.base, s.size, dir))
	}
	// Segments wholly below the base are dead: a crash interrupted
	// archive-then-recycle (or plain recycle). They hold only released
	// history, so they wait in the pending set for ArchivePending to
	// ship them to cold storage (or drop them) rather than serving reads.
	for idx, seg := range s.segs {
		if (idx+1)*segSize <= s.base {
			s.pending[idx] = seg
			delete(s.segs, idx)
		}
	}
	return s, nil
}

// Profile returns the device's latency profile (zero for directories).
func (s *Segmented) Profile() Profile { return s.profile }

// SegmentSize returns the fixed segment size.
func (s *Segmented) SegmentSize() int64 { return s.segSize }

// Base implements Truncator.
func (s *Segmented) Base() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Segments lists the live segments in logical order.
func (s *Segmented) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for idx := range s.segs {
		end := (idx + 1) * s.segSize
		if end > s.size {
			end = s.size
		}
		out = append(out, SegmentInfo{Index: idx, Start: idx * s.segSize, End: end})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// TruncStats returns how many whole segments and how many logical bytes
// have been recycled by Truncate.
func (s *Segmented) TruncStats() (segments, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncatedSegments, s.truncatedBytes
}

// LowestRead returns the smallest offset ever passed to ReadAt, or -1 if
// the device was never read. Tests use it to prove recovery never
// touched the recycled prefix.
func (s *Segmented) LowestRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lowRead == math.MaxInt64 {
		return -1
	}
	return s.lowRead
}

// Append implements Device, splitting the write across segment
// boundaries and creating segments on demand.
func (s *Segmented) Append(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.failErr != nil {
		return 0, s.failErr
	}
	written := 0
	for len(p) > 0 {
		idx := s.size / s.segSize
		segOff := s.size % s.segSize
		seg := s.segs[idx]
		if seg == nil {
			sg, err := s.backend.open(idx)
			if err != nil {
				return written, err
			}
			s.segs[idx] = sg
			s.newSegs = true
			seg = sg
		}
		n := int(min(s.segSize-segOff, int64(len(p))))
		if err := seg.writeAt(p[:n], segOff); err != nil {
			return written, err
		}
		s.size += int64(n)
		written += n
		p = p[n:]
	}
	s.stats.Appends.Inc()
	s.stats.BytesWritten.Add(int64(written))
	return written, nil
}

// Sync implements Device. Durability covers exactly the bytes appended
// before the call: the target is captured first, so appends racing a
// slow sync are not published early (they pay for the next sync).
func (s *Segmented) Sync() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		return err
	}
	target := s.size
	pending := target - s.durable
	newSegs := s.newSegs
	s.newSegs = false
	var dirty []segment
	if pending > 0 {
		for idx := s.durable / s.segSize; idx*s.segSize < target; idx++ {
			if seg := s.segs[idx]; seg != nil {
				dirty = append(dirty, seg)
			}
		}
	}
	s.mu.Unlock()

	// restoreNewSegs re-arms the metadata sync if this pass fails before
	// acknowledging, so the next Sync retries the directory fsync.
	restoreNewSegs := func() {
		if newSegs {
			s.mu.Lock()
			s.newSegs = true
			s.mu.Unlock()
		}
	}

	start := time.Now()
	s.profile.simulateSync(pending)
	for _, seg := range dirty {
		if err := seg.sync(); err != nil {
			restoreNewSegs()
			return err
		}
	}
	if newSegs {
		// New segment files' directory entries must be durable before
		// the bytes inside them are acknowledged: fsync of a file does
		// not persist its dentry.
		if err := s.backend.syncMeta(); err != nil {
			restoreNewSegs()
			return err
		}
	}
	// Persist the durable watermark before acknowledging: it is what a
	// reopen trusts over file sizes, so it must advance with every Sync
	// batch — after the data fsyncs (never ahead of the bytes it
	// covers) and before durability is published (never behind an
	// acknowledged commit). A no-op when the target did not advance.
	if err := s.backend.setDurable(target); err != nil {
		restoreNewSegs()
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failErr != nil {
		return s.failErr
	}
	if target > s.size {
		// A crash raced the sync and trimmed the device; only what
		// survived can be durable.
		target = s.size
	}
	if target > s.durable {
		s.durable = target
	}
	s.stats.Syncs.Inc()
	s.stats.SyncTime.Observe(time.Since(start))
	return nil
}

// DurableSize implements Device. The size is logical: it includes the
// recycled prefix, so LSNs stay stable across truncation.
func (s *Segmented) DurableSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// ReadAt implements Device over the live segments. Offsets below the
// truncation horizon are gone and return an error.
func (s *Segmented) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("logdev: negative offset %d", off)
	}
	if off < s.lowRead {
		s.lowRead = off
	}
	if off < s.base {
		return 0, fmt.Errorf("logdev: offset %d below truncation base %d", off, s.base)
	}
	return s.readLocked(p, off)
}

// LiveStart returns the logical offset of the first byte still held by
// a live segment — at or below Base(), since the segment containing the
// base usually starts before it. Bytes in [LiveStart, Base) are dead to
// ReadAt but physically present; restore paths read them with RawReadAt
// instead of round-tripping them through cold storage.
func (s *Segmented) LiveStart() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.size
	for idx := range s.segs {
		if o := idx * s.segSize; o < start {
			start = o
		}
	}
	return start
}

// RawReadAt reads the durable prefix ignoring the truncation horizon:
// offsets down to LiveStart() are served even when below Base().
// Restore-on-demand uses it to stitch archived history to the hot log;
// recovery never does (it must prove it reads only the live tail).
func (s *Segmented) RawReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("logdev: negative offset %d", off)
	}
	return s.readLocked(p, off)
}

// readLocked serves a read from the live segments. Caller holds s.mu
// and has validated off against its chosen lower bound.
func (s *Segmented) readLocked(p []byte, off int64) (int, error) {
	if off >= s.durable {
		return 0, io.EOF
	}
	end := off + int64(len(p))
	if end > s.durable {
		end = s.durable
	}
	n := 0
	for off+int64(n) < end {
		cur := off + int64(n)
		idx := cur / s.segSize
		segOff := cur % s.segSize
		chunk := min(s.segSize-segOff, end-cur)
		seg := s.segs[idx]
		if seg == nil {
			// A dead segment parked for the archiver is still on the
			// device; restore reads (below the base) serve from it.
			seg = s.pending[idx]
		}
		if seg == nil {
			return n, fmt.Errorf("logdev: segment %d missing (holds offset %d)", idx, cur)
		}
		if err := seg.readAt(p[n:n+int(chunk)], segOff); err != nil {
			return n, err
		}
		n += int(chunk)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Truncate implements Truncator: advance the horizon and recycle every
// segment wholly below it. The newest segment is always retained so a
// reopened directory can recompute the logical layout from what remains.
// With an Archiver attached, dead segments are not recycled here: they
// move to the pending set, where ArchivePending ships them to cold
// storage before freeing their slots (archive-before-recycle).
// Callers are expected to serialize Truncate (the checkpointer does);
// Append/Sync/ReadAt stay concurrent — the manifest fsyncs and unlinks
// run outside the device mutex so the flush daemon never stalls behind
// a truncating checkpoint.
func (s *Segmented) Truncate(before int64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.failErr != nil {
		err := s.failErr
		s.mu.Unlock()
		return err
	}
	if before > s.durable {
		before = s.durable
	}
	if before <= s.base {
		s.mu.Unlock()
		return nil
	}
	archiving := s.archiver != nil
	var maxIdx int64 = -1
	for idx := range s.segs {
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	var dead []int64
	deadSegs := make(map[int64]segment)
	for idx, seg := range s.segs {
		if (idx+1)*s.segSize <= before && idx != maxIdx {
			dead = append(dead, idx)
			deadSegs[idx] = seg
		}
	}
	s.mu.Unlock()

	recycled := dead[:0]
	var ioErr error
	if len(dead) > 0 {
		// Persist the horizon before unlinking: if we crash in between,
		// the manifest already points past every segment we were about
		// to drop. When nothing is recyclable the manifest write (two
		// fsyncs) is skipped — a reopened log then recomputes a slightly
		// older horizon from the surviving files, which only lengthens
		// its recovery scan, never corrupts it.
		if err := s.backend.setBase(before); err != nil {
			return err
		}
		if !archiving {
			for _, idx := range dead {
				if err := s.backend.remove(idx, deadSegs[idx]); err != nil {
					// The horizon stays put, so a retry at the same horizon
					// re-enters and picks up the remaining dead segments.
					ioErr = err
					break
				}
				recycled = append(recycled, idx)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if archiving {
		// Park the dead segments for the background archiver: their
		// bytes are dead to readers (below the horizon) but their slots
		// stay occupied until cold storage has them.
		for _, idx := range dead {
			s.pending[idx] = deadSegs[idx]
			delete(s.segs, idx)
		}
	} else {
		for _, idx := range recycled {
			delete(s.segs, idx)
			s.truncatedSegments++
		}
	}
	if ioErr != nil {
		return ioErr
	}
	// Advance the in-memory horizon only once the recycle (or the
	// handoff to the pending set) completed.
	if before > s.base {
		s.truncatedBytes += before - s.base
		s.base = before
	}
	return nil
}

// SetArchiver attaches cold storage for dead segments: from now on
// Truncate parks dead segments in the pending set instead of deleting
// them, and ArchivePending ships them to a before recycling. Attach the
// archiver right after Open, before the first Truncate; a nil a detaches
// it (pending segments then drain as plain recycles).
func (s *Segmented) SetArchiver(a Archiver) {
	s.mu.Lock()
	s.archiver = a
	s.mu.Unlock()
}

// HasArchiver implements ArchivingTruncator.
func (s *Segmented) HasArchiver() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.archiver != nil
}

// ArchivePending implements ArchivingTruncator: every pending dead
// segment is copied to the archiver (durably — Archive must not return
// before its bytes are safe) and only then recycled. A failed archive
// leaves the segment pending: its slot is never reused until cold
// storage holds its history. Safe to call concurrently with appends,
// syncs and truncations; passes serialize among themselves.
func (s *Segmented) ArchivePending() (int, error) {
	s.archMu.Lock()
	defer s.archMu.Unlock()
	return s.archivePendingLocked()
}

// archivePendingLocked is ArchivePending's body; caller holds s.archMu.
func (s *Segmented) archivePendingLocked() (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.readOnly {
		s.mu.Unlock()
		return 0, ErrReadOnly
	}
	arch := s.archiver
	segSize := s.segSize
	idxs := make([]int64, 0, len(s.pending))
	pend := make(map[int64]segment, len(s.pending))
	for idx, seg := range s.pending {
		idxs = append(idxs, idx)
		pend[idx] = seg
	}
	s.mu.Unlock()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	archived := 0
	for _, idx := range idxs {
		seg := pend[idx]
		if arch != nil {
			data := make([]byte, segSize)
			if err := seg.readAt(data, 0); err != nil {
				return archived, fmt.Errorf("logdev: read dead segment %d: %w", idx, err)
			}
			if err := arch.Archive(idx, data); err != nil {
				// Cold storage is down: the segment stays pending and
				// on disk. Recycling without the archive would erase
				// the only copy of its history.
				return archived, err
			}
		}
		if err := s.backend.remove(idx, seg); err != nil {
			return archived, err
		}
		s.mu.Lock()
		delete(s.pending, idx)
		s.truncatedSegments++
		if arch != nil {
			s.archivedSegments++
		}
		closed := s.closed
		s.mu.Unlock()
		if arch != nil {
			archived++
		}
		if closed {
			break
		}
	}
	return archived, nil
}

// PendingArchive lists the dead segments awaiting archive-then-recycle,
// in logical order. Tests and logdump use it to prove no slot is reused
// before its history reaches cold storage.
func (s *Segmented) PendingArchive() []int64 {
	s.mu.Lock()
	out := make([]int64, 0, len(s.pending))
	for idx := range s.pending {
		out = append(out, idx)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ArchivedSegments returns how many dead segments ArchivePending has
// shipped to cold storage over the device's lifetime.
func (s *Segmented) ArchivedSegments() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.archivedSegments
}

// RepairedTailBytes returns how many torn-tail bytes OpenSegmentedDir
// discarded when it clamped the log to the durable watermark (0 for a
// clean open).
func (s *Segmented) RepairedTailBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairedTail
}

// trimToDurableLocked discards everything beyond the durable horizon —
// the simulated power loss. Caller holds s.mu.
func (s *Segmented) trimToDurableLocked() error {
	for idx, seg := range s.segs {
		segStart := idx * s.segSize
		switch {
		case segStart >= s.durable:
			if err := s.backend.remove(idx, seg); err != nil {
				return err
			}
			delete(s.segs, idx)
		case segStart+s.segSize > s.durable:
			if err := seg.trim(s.durable - segStart); err != nil {
				return err
			}
		}
	}
	s.size = s.durable
	return nil
}

// memOnly panics unless the device uses the memory backend: crash
// simulation on a real directory would silently destroy durable state.
func (s *Segmented) memOnly(op string) {
	if _, ok := s.backend.(*memSegBackend); !ok {
		panic("logdev: " + op + " is only supported on memory-backed segmented devices")
	}
}

// Crash simulates power loss: every byte not covered by a completed Sync
// vanishes. Memory backend only.
func (s *Segmented) Crash() {
	s.memOnly("Crash")
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.trimToDurableLocked()
}

// CrashFreeze simulates power loss with the host still wired up, exactly
// like Mem.CrashFreeze. Memory backend only.
func (s *Segmented) CrashFreeze() {
	s.memOnly("CrashFreeze")
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.trimToDurableLocked()
	s.failErr = ErrCrashed
}

// Remount brings a frozen device back online.
func (s *Segmented) Remount() {
	s.memOnly("Remount")
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(s.failErr, ErrCrashed) {
		s.failErr = nil
	}
	_ = s.trimToDurableLocked()
}

// FailWith injects err into every subsequent Append/Sync/Truncate until
// cleared with FailWith(nil).
func (s *Segmented) FailWith(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failErr = err
}

// closeSegmentsLocked closes every open segment, live and pending.
// Caller holds s.mu (or has exclusive access during construction).
func (s *Segmented) closeSegmentsLocked() {
	for _, seg := range s.segs {
		seg.close()
	}
	for _, seg := range s.pending {
		seg.close()
	}
}

// Close implements Device.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeSegmentsLocked()
	return s.backend.close()
}

// Stats implements Device.
func (s *Segmented) Stats() *Stats { return &s.stats }
