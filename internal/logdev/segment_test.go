package logdev

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fill returns n bytes of a repeating pattern seeded by b.
func fill(n int, b byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b + byte(i%7)
	}
	return p
}

func appendSync(t *testing.T, dev Device, p []byte) {
	t.Helper()
	if n, err := dev.Append(p); err != nil || n != len(p) {
		t.Fatalf("Append: n=%d err=%v", n, err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestSegmentedAppendReadAcrossBoundaries(t *testing.T) {
	for name, open := range map[string]func(t *testing.T) Device{
		"mem": func(t *testing.T) Device { return NewSegmentedMem(ProfileMemory, 64) },
		"dir": func(t *testing.T) Device {
			s, err := OpenSegmentedDir(t.TempDir(), 64)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		t.Run(name, func(t *testing.T) {
			dev := open(t)
			defer dev.Close()
			want := fill(300, 'a') // spans 5 segments of 64
			appendSync(t, dev, want)
			if got := dev.DurableSize(); got != 300 {
				t.Fatalf("DurableSize = %d, want 300", got)
			}
			got := make([]byte, 300)
			if _, err := io.ReadFull(io.NewSectionReader(dev, 0, 300), got); err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("read-back mismatch across segment boundaries")
			}
			// A read straddling one boundary.
			part := make([]byte, 20)
			if _, err := dev.ReadAt(part, 60); err != nil {
				t.Fatalf("boundary read: %v", err)
			}
			if !bytes.Equal(part, want[60:80]) {
				t.Fatal("boundary read mismatch")
			}
		})
	}
}

func TestSegmentedTruncateRecyclesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSync(t, s, fill(300, 'x')) // segments 0..4

	if err := s.Truncate(200); err != nil { // segments 0,1,2 end at 64,128,192 ≤ 200
		t.Fatal(err)
	}
	if got := s.Base(); got != 200 {
		t.Fatalf("Base = %d, want 200", got)
	}
	segs, freed := s.TruncStats()
	if segs != 3 || freed != 200 {
		t.Fatalf("TruncStats = (%d, %d), want (3, 200)", segs, freed)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(files) != 2 {
		t.Fatalf("%d segment files remain, want 2: %v", len(files), files)
	}
	// Reads below the horizon fail; reads at it succeed.
	if _, err := s.ReadAt(make([]byte, 8), 100); err == nil {
		t.Fatal("ReadAt below base succeeded")
	}
	p := make([]byte, 8)
	if _, err := s.ReadAt(p, 200); err != nil {
		t.Fatalf("ReadAt at base: %v", err)
	}
	if !bytes.Equal(p, fill(300, 'x')[200:208]) {
		t.Fatal("ReadAt at base returned wrong bytes")
	}
	// Truncate is idempotent and never moves backwards.
	if err := s.Truncate(150); err != nil {
		t.Fatal(err)
	}
	if got := s.Base(); got != 200 {
		t.Fatalf("Base moved backwards to %d", got)
	}
}

func TestSegmentedDirReopenAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(300, 'r')
	appendSync(t, s, want)
	if err := s.Truncate(200); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with segment size taken from the manifest.
	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.SegmentSize() != 64 {
		t.Fatalf("SegmentSize = %d after reopen", s2.SegmentSize())
	}
	if s2.Base() != 200 {
		t.Fatalf("Base = %d after reopen, want 200", s2.Base())
	}
	if s2.DurableSize() != 300 {
		t.Fatalf("DurableSize = %d after reopen, want 300", s2.DurableSize())
	}
	got := make([]byte, 100)
	if _, err := s2.ReadAt(got, 200); err != nil {
		t.Fatalf("ReadAt after reopen: %v", err)
	}
	if !bytes.Equal(got, want[200:]) {
		t.Fatal("tail mismatch after reopen")
	}
	// Appends continue at the logical end.
	appendSync(t, s2, fill(10, 'z'))
	if s2.DurableSize() != 310 {
		t.Fatalf("DurableSize = %d after append, want 310", s2.DurableSize())
	}
	// A mismatched segment size is rejected.
	s2.Close()
	if _, err := OpenSegmentedDir(dir, 128); err == nil {
		t.Fatal("mismatched segment size accepted")
	}
}

func TestSegmentedMemCrashDropsUnsynced(t *testing.T) {
	s := NewSegmentedMem(ProfileMemory, 64)
	defer s.Close()
	appendSync(t, s, fill(100, 'd'))
	if _, err := s.Append(fill(100, 'u')); err != nil { // unsynced
		t.Fatal(err)
	}
	s.CrashFreeze()
	if _, err := s.Append([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append on frozen device: %v", err)
	}
	s.Remount()
	if got := s.DurableSize(); got != 100 {
		t.Fatalf("DurableSize after crash = %d, want 100", got)
	}
	// The unsynced region reads as gone (EOF past durable).
	if _, err := s.ReadAt(make([]byte, 1), 150); err != io.EOF {
		t.Fatalf("read past durable after crash: %v", err)
	}
	// New appends land where the durable log ended.
	appendSync(t, s, fill(28, 'n')) // exactly up to the segment boundary at 128
	got := make([]byte, 28)
	if _, err := s.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(28, 'n')) {
		t.Fatal("post-crash append mismatch")
	}
}

func TestSegmentedTruncateKeepsNewestSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSync(t, s, fill(128, 'k')) // exactly two full segments
	if err := s.Truncate(128); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(files) != 1 {
		t.Fatalf("%d files remain, want the newest kept: %v", len(files), files)
	}
	s.Close()
	s2, err := OpenSegmentedDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Base() != 128 || s2.DurableSize() != 128 {
		t.Fatalf("reopen after full truncation: base=%d durable=%d, want 128/128", s2.Base(), s2.DurableSize())
	}
}

// TestMemSyncDoesNotPublishMidSyncAppends is the regression test for the
// durability bug where bytes appended during a slow Sync were marked
// durable without paying for a sync: a crash right after Sync returned
// must only preserve what was appended before the call.
func TestMemSyncDoesNotPublishMidSyncAppends(t *testing.T) {
	m := NewMem(Profile{Name: "slow", SyncLatency: 50 * time.Millisecond})
	defer m.Close()
	if _, err := m.Append(fill(100, 'a')); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Sync() }()
	time.Sleep(10 * time.Millisecond) // sync is inside its latency sleep
	if _, err := m.Append(fill(50, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := m.DurableSize(); got != 100 {
		t.Fatalf("DurableSize after mid-sync append = %d, want 100 (mid-sync bytes must not be durable)", got)
	}
	m.Crash()
	if _, err := m.ReadAt(make([]byte, 1), 100); err != io.EOF {
		t.Fatalf("mid-sync append survived the crash: %v", err)
	}
	// The next sync pays for and hardens the remainder.
	if _, err := m.Append(fill(50, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := m.DurableSize(); got != 150 {
		t.Fatalf("DurableSize after second sync = %d, want 150", got)
	}
}

// Same contract for the segmented device.
func TestSegmentedSyncDoesNotPublishMidSyncAppends(t *testing.T) {
	s := NewSegmentedMem(Profile{Name: "slow", SyncLatency: 50 * time.Millisecond}, 64)
	defer s.Close()
	if _, err := s.Append(fill(100, 'a')); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Sync() }()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Append(fill(50, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.DurableSize(); got != 100 {
		t.Fatalf("DurableSize after mid-sync append = %d, want 100", got)
	}
}

func TestFileReadAtNegativeOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	appendSync(t, f, fill(32, 'f'))
	if _, err := f.ReadAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestOpenSegmentedDirRejectsMissingSize(t *testing.T) {
	if _, err := OpenSegmentedDir(t.TempDir(), 0); err == nil {
		t.Fatal("fresh segmented dir with no segment size accepted")
	}
}

func TestSegmentedDoubleCloseAndStrayFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmentedDir(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, s, fill(10, 's'))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// A stray .seg file is rejected rather than silently misparsed.
	if err := os.WriteFile(filepath.Join(dir, "junk.seg"), []byte("?"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedDir(dir, 0); err == nil {
		t.Fatal("stray segment file accepted")
	}
}
