package logdev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"aether/internal/vfs"
)

// watermarkName is the durable-watermark file kept next to the MANIFEST
// in a segment directory. It records, after every completed Sync batch,
// exactly how many logical log bytes the device has acknowledged as
// durable. On reopen it is what lets Open distinguish a torn tail
// (bytes a crash persisted without a completed Sync — repairable by
// clamping to the watermark) from real mid-log corruption (bytes the
// watermark covers but the segment files no longer hold — fatal).
const watermarkName = "MANIFEST.durable"

// The watermark file holds two fixed 16-byte slots, updated
// alternately in place (ping-pong): 8-byte little-endian value,
// 4-byte CRC-32C of the value, 4 bytes of zero padding. A torn or
// interrupted update can damage at most the slot being written; the
// other still holds the previous watermark, which is always a safe
// (merely conservative) durable horizon. Readers take the highest
// slot whose CRC verifies.
const (
	wmSlotSize = 16
	wmSlots    = 2
	wmFileSize = wmSlotSize * wmSlots
)

var wmCRC = crc32.MakeTable(crc32.Castagnoli)

// watermarkFile is an open durable-watermark file. One in-place write
// plus one fsync per set — the per-Sync-batch cost of torn-tail repair.
type watermarkFile struct {
	f      vfs.File
	next   int   // slot the next set overwrites (never the best one)
	last   int64 // highest value persisted so far
	seeded bool  // at least one valid slot is on disk
}

// encodeWMSlot fills a 16-byte slot with value+CRC.
func encodeWMSlot(dst []byte, v int64) {
	binary.LittleEndian.PutUint64(dst[0:8], uint64(v))
	binary.LittleEndian.PutUint32(dst[8:12], crc32.Checksum(dst[0:8], wmCRC))
	binary.LittleEndian.PutUint32(dst[12:16], 0)
}

// decodeWMSlot returns the slot's value and whether its CRC verifies.
func decodeWMSlot(src []byte) (int64, bool) {
	v := binary.LittleEndian.Uint64(src[0:8])
	if crc32.Checksum(src[0:8], wmCRC) != binary.LittleEndian.Uint32(src[8:12]) {
		return 0, false
	}
	return int64(v), true
}

// openWatermark opens (creating if needed) dir's watermark file and
// returns the recorded watermark. ok reports whether any slot held a
// valid record: false means the file is new (or both slots are torn),
// i.e. a directory written before watermarks existed — the caller
// falls back to the legacy durable=file-size assumption and seeds the
// file. A newly created file's dentry is NOT yet durable; the caller
// must SyncDir after seeding it.
func openWatermark(fs vfs.FS, dir string) (w *watermarkFile, val int64, ok bool, err error) {
	f, err := fs.OpenFile(filepath.Join(dir, watermarkName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, false, fmt.Errorf("logdev: open watermark: %w", err)
	}
	buf := make([]byte, wmFileSize)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		// Only a short read (just-created or crash-before-first-set
		// file, missing bytes stay zero ⇒ invalid slots) may fall back
		// to the legacy durable=file-size assumption. A real I/O error
		// must fail the open: treating it as "fresh file" would bless a
		// torn tail as acknowledged data and overwrite the surviving
		// watermark slot.
		f.Close()
		return nil, 0, false, fmt.Errorf("logdev: read watermark: %w", err)
	}
	w = &watermarkFile{f: f}
	best := -1
	for i := 0; i < wmSlots; i++ {
		if v, valid := decodeWMSlot(buf[i*wmSlotSize : (i+1)*wmSlotSize]); valid && (best < 0 || v > w.last) {
			w.last, best = v, i
		}
	}
	if best < 0 {
		return w, 0, false, nil
	}
	// Never overwrite the slot holding the best record.
	w.next = (best + 1) % wmSlots
	w.seeded = true
	return w, w.last, true, nil
}

// set durably records d as the watermark (one write + one fsync).
// Values at or below the last persisted watermark are free no-ops,
// except that the very first set always writes: a new file must hold a
// valid slot (even for 0) so a later open trusts it over file sizes.
func (w *watermarkFile) set(d int64) error {
	if w.seeded && d <= w.last {
		return nil
	}
	var slot [wmSlotSize]byte
	encodeWMSlot(slot[:], d)
	if _, err := w.f.WriteAt(slot[:], int64(w.next)*wmSlotSize); err != nil {
		return fmt.Errorf("logdev: write watermark: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("logdev: sync watermark: %w", err)
	}
	if d > w.last {
		w.last = d
	}
	w.seeded = true
	w.next = (w.next + 1) % wmSlots
	return nil
}

// close releases the file handle.
func (w *watermarkFile) close() error { return w.f.Close() }

// readWatermark reads dir's watermark without opening the file for
// writing — the diagnostic (read-only) path. ok is false when the file
// does not exist or holds no valid slot.
func readWatermark(fs vfs.FS, dir string) (val int64, ok bool, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, watermarkName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("logdev: read watermark: %w", err)
	}
	buf := make([]byte, wmFileSize)
	copy(buf, data)
	for i := 0; i < wmSlots; i++ {
		if v, valid := decodeWMSlot(buf[i*wmSlotSize : (i+1)*wmSlotSize]); valid && (!ok || v > val) {
			val, ok = v, true
		}
	}
	return val, ok, nil
}
