package logdev

import (
	"errors"
	"testing"

	"aether/internal/vfs"
)

// TestWatermarkTornSlotWrite drives the MANIFEST.durable ping-pong
// protocol into sector-torn slot updates and verifies the invariant
// the format exists for: a torn update damages at most the slot being
// written, so reopen always recovers a valid watermark — the new value
// if the write fully persisted, otherwise the previous one. With
// 4-byte sectors a 16-byte slot write tears into value bytes (sectors
// 0–1), CRC (sector 2), and padding (sector 3) independently.
func TestWatermarkTornSlotWrite(t *testing.T) {
	cases := []struct {
		name string
		keep []bool // per-4-byte-sector persistence of the torn slot write
		want int64  // watermark a reopen must recover
	}{
		{"write dropped whole", []bool{false, false, false, false}, 200},
		{"value persisted, CRC lost", []bool{true, true, false, false}, 200},
		{"CRC persisted, value lost", []bool{false, false, true, true}, 200},
		{"low half of value only", []bool{true, false, false, false}, 200},
		{"fully persisted", []bool{true, true, true, true}, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := vfs.NewFaultFS(1)
			fs.SetSectorSize(4)
			fs.SetTornWrites(true)
			if err := fs.MkdirAll("/db", 0o755); err != nil {
				t.Fatal(err)
			}

			// Seed both slots: slot 0 ← 100, slot 1 ← 200. The next set
			// ping-pongs back onto slot 0.
			w, _, ok, err := openWatermark(fs, "/db")
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("fresh watermark file claims a valid slot")
			}
			if err := w.set(100); err != nil {
				t.Fatal(err)
			}
			if err := fs.SyncDir("/db"); err != nil {
				t.Fatal(err)
			}
			if err := w.set(200); err != nil {
				t.Fatal(err)
			}

			// Tear the third set's slot write: power-cut on the write
			// itself (it lands, unsynced, as the tear candidate) with a
			// fixed per-sector survival mask.
			fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Dir: "/db", Path: watermarkName, Cut: true})
			fs.SetTearMask(func(path string, sectors int) []bool {
				if sectors != len(tc.keep) {
					t.Errorf("tear mask saw %d sectors, want %d", sectors, len(tc.keep))
				}
				return tc.keep
			})
			if err := w.set(300); !errors.Is(err, vfs.ErrPowerCut) {
				t.Fatalf("torn set err = %v, want ErrPowerCut", err)
			}
			w.close()
			fs.ClearRules()
			fs.Recover()

			// Reopen: the surviving slots must yield tc.want, never a
			// torn in-between value and never "no watermark".
			w2, got, ok, err := openWatermark(fs, "/db")
			if err != nil {
				t.Fatal(err)
			}
			defer w2.close()
			if !ok {
				t.Fatal("both slots invalid after single torn update")
			}
			if got != tc.want {
				t.Fatalf("recovered watermark %d, want %d", got, tc.want)
			}

			// The survivor must keep working: the next set must not
			// target the slot that holds the recovered value.
			if err := w2.set(got + 50); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := readWatermark(fs, "/db"); !ok || v != got+50 {
				t.Fatalf("post-recovery set: read %d/%v, want %d", v, ok, got+50)
			}
		})
	}
}

// TestWatermarkCrashBeforeFirstSet: a file created but never written
// (crash between create and seed) must read as "no watermark", falling
// back to the legacy durable=file-size assumption — not as value 0.
func TestWatermarkCrashBeforeFirstSet(t *testing.T) {
	fs := vfs.NewFaultFS(1)
	if err := fs.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	w, _, ok, err := openWatermark(fs, "/db")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fresh file claims a valid slot")
	}
	w.close()
	fs.SyncDir("/db")
	fs.PowerCut()
	fs.Recover()

	if _, ok, err := readWatermark(fs, "/db"); err != nil || ok {
		t.Fatalf("crashed-empty watermark: ok=%v err=%v, want no watermark", ok, err)
	}
}
