// Package logrec defines the on-log record format shared by every log
// buffer variant, the flush daemon and ARIES recovery.
//
// A record is a fixed 48-byte header followed by an arbitrary payload, the
// composable shape the consolidation array exploits (§5.1: "two successive
// requests also begin with a log header and end with an arbitrary
// payload"). All integers are little-endian. The checksum lets recovery
// stop at the first torn or missing record — the paper's requirement that
// "recovery must stop at the first gap it encounters".
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"aether/internal/lsn"
)

// Kind enumerates the record types the storage manager and recovery use.
type Kind uint16

const (
	// KindInvalid marks an uninitialized record; it never appears on a
	// healthy log.
	KindInvalid Kind = iota
	// KindUpdate is a physiological page update carrying redo and undo
	// images.
	KindUpdate
	// KindCLR is a compensation log record written during rollback;
	// redo-only, with Aux holding the UndoNext LSN.
	KindCLR
	// KindCommit marks a transaction commit. A transaction is committed
	// iff its commit record is durable.
	KindCommit
	// KindAbort marks the start of a rollback decision.
	KindAbort
	// KindEnd marks a transaction fully finished (post-commit or
	// post-rollback bookkeeping done).
	KindEnd
	// KindCheckpointBegin opens a fuzzy checkpoint.
	KindCheckpointBegin
	// KindCheckpointEnd closes a fuzzy checkpoint; the payload carries
	// the active-transaction and dirty-page tables, and Aux points back
	// to the matching begin record.
	KindCheckpointEnd
	// KindPad fills space the microbenchmark and tests reserve without
	// semantic content; recovery skips it.
	KindPad
	numKinds
)

var kindNames = [numKinds]string{
	"invalid", "update", "clr", "commit", "abort", "end",
	"ckpt-begin", "ckpt-end", "pad",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// Valid reports whether k is a known record kind other than KindInvalid.
func (k Kind) Valid() bool { return k > KindInvalid && k < numKinds }

// HeaderSize is the fixed encoded size of a record header. 48 bytes makes
// the minimum record exactly the 48B smallest record Shore-MT produces
// (§A.3), so the microbenchmark sweeps the same size range as the paper.
const HeaderSize = 48

// MaxPayload bounds a single record's payload. Shore-MT's largest record
// is 12KiB; we allow up to 16MiB so the skew experiments (Fig. 11) can
// push outliers to 64KiB+ and beyond.
const MaxPayload = 16 << 20

// Header is the fixed preamble of every log record.
//
// Layout (little-endian, offsets in bytes):
//
//	 0  TotalLen uint32  — header + payload length
//	 4  CRC      uint32  — CRC-32C over bytes [8, TotalLen)
//	 8  Kind     uint16
//	10  Flags    uint16
//	12  Seq      uint32  — global sequence stamp (multi-log); 0 on single-log records
//	16  TxnID    uint64
//	24  PrevLSN  uint64  — same-transaction backchain (lsn.Undefined if none)
//	32  PageID   uint64  — page touched, 0 if not page-related
//	40  Aux      uint64  — kind-specific (CLR: UndoNextLSN; ckpt-end: begin LSN;
//	                       multi-log update: the page's previous global seq)
type Header struct {
	// TotalLen is the record's full encoded length: header + payload.
	TotalLen uint32
	// CRC is the CRC-32C over the encoded bytes after the checksum
	// field; a mismatch marks a torn write or the post-crash gap.
	CRC uint32
	// Kind discriminates the record type (update, commit, CLR, ...).
	Kind Kind
	// Flags holds the Flag* bits (e.g. FlagRedoOnly on CLRs).
	Flags uint16
	// Seq is the record's global sequence stamp under partitioned
	// (multi-log) operation: a single counter shared by every log
	// partition, assigned in append order, so recovery can merge N logs
	// back into one redo order. Single-log databases always write 0
	// here (the field reuses the header's former reserved word, keeping
	// the single-log format byte-for-byte unchanged).
	Seq uint32
	// TxnID is the owning transaction, 0 for system records.
	TxnID uint64
	// PrevLSN backchains to the same transaction's previous record
	// (lsn.Undefined for its first): rollback and undo walk it.
	PrevLSN lsn.LSN
	// PageID is the page the record touches, 0 if not page-related.
	PageID uint64
	// Aux is kind-specific: a CLR's UndoNextLSN, a checkpoint-end's
	// begin LSN.
	Aux uint64
}

// Flag bits.
const (
	// FlagRedoOnly marks records that must not be undone (CLRs).
	FlagRedoOnly uint16 = 1 << iota
)

// Record is a decoded log record: header plus payload. The payload slice
// is owned by the record.
type Record struct {
	Header
	// LSN is the address the record was read from or inserted at. It is
	// not part of the encoding (the position implies it).
	LSN lsn.LSN
	// Payload is the kind-specific body (e.g. an encoded UpdatePayload).
	Payload []byte
}

// Errors returned by the decoder.
var (
	// ErrTooShort means the input cannot contain a full header or the
	// declared payload.
	ErrTooShort = errors.New("logrec: input shorter than record")
	// ErrBadLength means the header's TotalLen is impossible.
	ErrBadLength = errors.New("logrec: invalid record length")
	// ErrBadKind means the record kind is unknown.
	ErrBadKind = errors.New("logrec: invalid record kind")
	// ErrChecksum means the CRC does not match — a torn write or the
	// first gap after a crash.
	ErrChecksum = errors.New("logrec: checksum mismatch")
	// ErrPayloadTooLarge means an encode request exceeded MaxPayload.
	ErrPayloadTooLarge = errors.New("logrec: payload too large")
)

// castagnoli is the CRC-32C table; Castagnoli is the standard polynomial
// for storage checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Size returns the encoded size of a record with the given payload length.
func Size(payloadLen int) int { return HeaderSize + payloadLen }

// EncodedSize returns the record's full encoded length.
func (r *Record) EncodedSize() int { return Size(len(r.Payload)) }

// EncodeInto writes the record into dst, which must be exactly
// EncodedSize() bytes (the pre-reserved log-buffer region). It computes
// TotalLen and CRC; the caller's values for those fields are ignored.
func (r *Record) EncodeInto(dst []byte) error {
	if len(r.Payload) > MaxPayload {
		return ErrPayloadTooLarge
	}
	total := HeaderSize + len(r.Payload)
	if len(dst) != total {
		return fmt.Errorf("logrec: dst is %d bytes, record needs %d", len(dst), total)
	}
	if !r.Kind.Valid() {
		return ErrBadKind
	}
	binary.LittleEndian.PutUint32(dst[0:4], uint32(total))
	// dst[4:8] = CRC, filled below.
	binary.LittleEndian.PutUint16(dst[8:10], uint16(r.Kind))
	binary.LittleEndian.PutUint16(dst[10:12], r.Flags)
	binary.LittleEndian.PutUint32(dst[12:16], r.Seq)
	binary.LittleEndian.PutUint64(dst[16:24], r.TxnID)
	binary.LittleEndian.PutUint64(dst[24:32], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(dst[32:40], r.PageID)
	binary.LittleEndian.PutUint64(dst[40:48], r.Aux)
	copy(dst[HeaderSize:], r.Payload)
	crc := crc32.Checksum(dst[8:total], castagnoli)
	binary.LittleEndian.PutUint32(dst[4:8], crc)
	return nil
}

// Encode allocates and returns the encoded record.
func (r *Record) Encode() ([]byte, error) {
	buf := make([]byte, r.EncodedSize())
	if err := r.EncodeInto(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// PeekLen reads the TotalLen field from the front of src without
// validating the rest. It returns 0 if src is shorter than 4 bytes.
func PeekLen(src []byte) int {
	if len(src) < 4 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(src[0:4]))
}

// Decode parses one record from the front of src, verifying length, kind
// and checksum. The returned record's Payload aliases src; callers that
// retain it across buffer reuse must copy. consumed is the encoded length.
func Decode(src []byte) (rec Record, consumed int, err error) {
	if len(src) < HeaderSize {
		return Record{}, 0, ErrTooShort
	}
	total := int(binary.LittleEndian.Uint32(src[0:4]))
	if total < HeaderSize || total > HeaderSize+MaxPayload {
		return Record{}, 0, ErrBadLength
	}
	if len(src) < total {
		return Record{}, 0, ErrTooShort
	}
	wantCRC := binary.LittleEndian.Uint32(src[4:8])
	if crc32.Checksum(src[8:total], castagnoli) != wantCRC {
		return Record{}, 0, ErrChecksum
	}
	k := Kind(binary.LittleEndian.Uint16(src[8:10]))
	if !k.Valid() {
		return Record{}, 0, ErrBadKind
	}
	rec = Record{
		Header: Header{
			TotalLen: uint32(total),
			CRC:      wantCRC,
			Kind:     k,
			Flags:    binary.LittleEndian.Uint16(src[10:12]),
			Seq:      binary.LittleEndian.Uint32(src[12:16]),
			TxnID:    binary.LittleEndian.Uint64(src[16:24]),
			PrevLSN:  lsn.LSN(binary.LittleEndian.Uint64(src[24:32])),
			PageID:   binary.LittleEndian.Uint64(src[32:40]),
			Aux:      binary.LittleEndian.Uint64(src[40:48]),
		},
		Payload: src[HeaderSize:total],
	}
	return rec, total, nil
}

// Iterator walks a linear log byte stream record by record, stopping
// cleanly at the first gap (torn record, bad checksum, or truncation) —
// exactly how ARIES scans the log after a crash.
type Iterator struct {
	data []byte
	base lsn.LSN // LSN of data[0]
	off  int
	err  error
}

// NewIterator returns an iterator over data, whose first byte sits at
// base in the logical log.
func NewIterator(data []byte, base lsn.LSN) *Iterator {
	return &Iterator{data: data, base: base}
}

// Next returns the next record, or ok=false when the stream ends (at a
// gap or clean end). After ok=false, Err distinguishes a clean end (nil)
// from a detected gap.
func (it *Iterator) Next() (Record, bool) {
	if it.err != nil {
		return Record{}, false
	}
	rest := it.data[it.off:]
	if len(rest) == 0 {
		return Record{}, false
	}
	rec, n, err := Decode(rest)
	if err != nil {
		// A run of zero bytes is pre-allocated, never-written space:
		// a clean end rather than corruption.
		if errors.Is(err, ErrTooShort) || allZero(rest) {
			return Record{}, false
		}
		it.err = fmt.Errorf("logrec: stream gap at %v: %w", it.base.Add(it.off), err)
		return Record{}, false
	}
	rec.LSN = it.base.Add(it.off)
	it.off += n
	return rec, true
}

// Err returns the gap error, if the iterator stopped at one.
func (it *Iterator) Err() error { return it.err }

// Offset returns the number of bytes consumed so far.
func (it *Iterator) Offset() int { return it.off }

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
