package logrec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"aether/internal/lsn"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := &Record{
		Header: Header{
			Kind:    KindUpdate,
			Flags:   FlagRedoOnly,
			TxnID:   77,
			PrevLSN: 1234,
			PageID:  42,
			Aux:     99,
		},
		Payload: []byte("hello physiological logging"),
	}
	buf, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+len(rec.Payload) {
		t.Fatalf("encoded size %d", len(buf))
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if got.Kind != KindUpdate || got.TxnID != 77 || got.PrevLSN != 1234 ||
		got.PageID != 42 || got.Aux != 99 || got.Flags != FlagRedoOnly {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestEncodeIntoWrongSize(t *testing.T) {
	rec := NewCommit(1, lsn.Undefined)
	if err := rec.EncodeInto(make([]byte, HeaderSize+1)); err == nil {
		t.Fatal("wrong-size dst must fail")
	}
}

func TestEncodeInvalidKind(t *testing.T) {
	rec := &Record{Header: Header{Kind: KindInvalid}}
	if _, err := rec.Encode(); !errors.Is(err, ErrBadKind) {
		t.Fatalf("got %v, want ErrBadKind", err)
	}
	rec2 := &Record{Header: Header{Kind: numKinds}}
	if _, err := rec2.Encode(); !errors.Is(err, ErrBadKind) {
		t.Fatalf("got %v, want ErrBadKind", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	rec := NewPad(100)
	buf, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: CRC must catch it.
	buf[HeaderSize+3] ^= 0xFF
	if _, _, err := Decode(buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestDecodeDetectsHeaderCorruption(t *testing.T) {
	rec := NewCommit(9, 5)
	buf, _ := rec.Encode()
	buf[16] ^= 0x01 // TxnID bit
	if _, _, err := Decode(buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	rec := NewPad(200)
	buf, _ := rec.Encode()
	if _, _, err := Decode(buf[:40]); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short header: got %v", err)
	}
	if _, _, err := Decode(buf[:150]); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short payload: got %v", err)
	}
}

func TestDecodeBadLength(t *testing.T) {
	buf := make([]byte, HeaderSize)
	// TotalLen = 3 (< HeaderSize)
	buf[0] = 3
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadLength) {
		t.Fatalf("got %v, want ErrBadLength", err)
	}
}

func TestPeekLen(t *testing.T) {
	rec := NewPad(128)
	buf, _ := rec.Encode()
	if got := PeekLen(buf); got != 128 {
		t.Fatalf("PeekLen: got %d", got)
	}
	if got := PeekLen(buf[:3]); got != 0 {
		t.Fatalf("PeekLen short: got %d", got)
	}
}

func TestIteratorWalksStream(t *testing.T) {
	var stream []byte
	var sizes []int
	for i := 0; i < 10; i++ {
		rec := NewPad(48 + i*13)
		buf, _ := rec.Encode()
		stream = append(stream, buf...)
		sizes = append(sizes, len(buf))
	}
	it := NewIterator(stream, 1000)
	var got []Record
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if it.Err() != nil {
		t.Fatalf("unexpected gap: %v", it.Err())
	}
	if len(got) != 10 {
		t.Fatalf("decoded %d records, want 10", len(got))
	}
	wantLSN := lsn.LSN(1000)
	for i, rec := range got {
		if rec.LSN != wantLSN {
			t.Fatalf("record %d LSN %v, want %v", i, rec.LSN, wantLSN)
		}
		wantLSN = wantLSN.Add(sizes[i])
	}
}

func TestIteratorStopsAtGap(t *testing.T) {
	a, _ := NewPad(64).Encode()
	b, _ := NewPad(64).Encode()
	stream := append(append([]byte{}, a...), b...)
	stream[70] ^= 0xFF // corrupt second record
	it := NewIterator(stream, 0)
	if _, ok := it.Next(); !ok {
		t.Fatal("first record should decode")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("second record should be a gap")
	}
	if it.Err() == nil {
		t.Fatal("iterator should report the gap")
	}
}

func TestIteratorCleanEndOnZeros(t *testing.T) {
	a, _ := NewPad(64).Encode()
	stream := append(append([]byte{}, a...), make([]byte, 100)...)
	it := NewIterator(stream, 0)
	if _, ok := it.Next(); !ok {
		t.Fatal("first record should decode")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("zero tail should end the stream")
	}
	if it.Err() != nil {
		t.Fatalf("zero tail is a clean end, got %v", it.Err())
	}
}

func TestIteratorEmpty(t *testing.T) {
	it := NewIterator(nil, 0)
	if _, ok := it.Next(); ok {
		t.Fatal("empty stream should yield nothing")
	}
	if it.Err() != nil {
		t.Fatal("empty stream is clean")
	}
}

func TestUpdatePayloadRoundTrip(t *testing.T) {
	u := UpdatePayload{
		Op:     OpSet,
		Slot:   7,
		Before: []byte("old"),
		After:  []byte("newer"),
	}
	enc := u.Encode(nil)
	if len(enc) != u.EncodedSize() {
		t.Fatalf("size mismatch: %d vs %d", len(enc), u.EncodedSize())
	}
	got, err := DecodeUpdate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpSet || got.Slot != 7 ||
		!bytes.Equal(got.Before, u.Before) || !bytes.Equal(got.After, u.After) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestUpdatePayloadMalformed(t *testing.T) {
	if _, err := DecodeUpdate([]byte{1, 2, 3}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short: got %v", err)
	}
	u := UpdatePayload{Op: OpSet, After: []byte("x")}
	enc := u.Encode(nil)
	if _, err := DecodeUpdate(enc[:len(enc)-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated: got %v", err)
	}
	enc2 := u.Encode(nil)
	enc2[0] = 99 // bad op
	if _, err := DecodeUpdate(enc2); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("bad op: got %v", err)
	}
}

func TestUpdateInverse(t *testing.T) {
	set := UpdatePayload{Op: OpSet, Slot: 3, Before: []byte("a"), After: []byte("b")}
	inv := set.Inverse()
	if inv.Op != OpSet || string(inv.Before) != "b" || string(inv.After) != "a" {
		t.Fatalf("set inverse wrong: %+v", inv)
	}
	ins := UpdatePayload{Op: OpInsert, Slot: 3, After: []byte("row")}
	if inv := ins.Inverse(); inv.Op != OpDelete || string(inv.Before) != "row" {
		t.Fatalf("insert inverse wrong: %+v", inv)
	}
	del := UpdatePayload{Op: OpDelete, Slot: 3, Before: []byte("row")}
	if inv := del.Inverse(); inv.Op != OpInsert || string(inv.After) != "row" {
		t.Fatalf("delete inverse wrong: %+v", inv)
	}
	// Inverse twice = original (for all ops).
	if got := ins.Inverse().Inverse(); got.Op != OpInsert || string(got.After) != "row" {
		t.Fatalf("double inverse wrong: %+v", got)
	}
}

func TestCheckpointPayloadRoundTrip(t *testing.T) {
	c := CheckpointPayload{
		ActiveTxns: []TxnTableEntry{
			{TxnID: 1, LastLSN: 100, Precommitted: true},
			{TxnID: 2, LastLSN: 200},
		},
		DirtyPages: []DirtyPageEntry{
			{PageID: 10, RecLSN: 50},
			{PageID: 11, RecLSN: 60},
			{PageID: 12, RecLSN: 70},
		},
	}
	enc := c.Encode(nil)
	if len(enc) != c.EncodedSize() {
		t.Fatalf("size mismatch: %d vs %d", len(enc), c.EncodedSize())
	}
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ActiveTxns) != 2 || len(got.DirtyPages) != 3 {
		t.Fatalf("lengths wrong: %+v", got)
	}
	if got.ActiveTxns[0] != c.ActiveTxns[0] || got.ActiveTxns[1] != c.ActiveTxns[1] {
		t.Fatal("ATT mismatch")
	}
	if got.DirtyPages[2] != c.DirtyPages[2] {
		t.Fatal("DPT mismatch")
	}
}

func TestCheckpointEmpty(t *testing.T) {
	c := CheckpointPayload{}
	got, err := DecodeCheckpoint(c.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ActiveTxns) != 0 || len(got.DirtyPages) != 0 {
		t.Fatal("empty checkpoint mismatch")
	}
}

func TestCheckpointMalformed(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte{1}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short: got %v", err)
	}
	c := CheckpointPayload{ActiveTxns: []TxnTableEntry{{TxnID: 1}}}
	enc := c.Encode(nil)
	if _, err := DecodeCheckpoint(enc[:len(enc)-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated: got %v", err)
	}
}

func TestNewPadExactSize(t *testing.T) {
	for _, size := range []int{0, 48, 49, 120, 12288} {
		rec := NewPad(size)
		want := size
		if want < HeaderSize {
			want = HeaderSize
		}
		if rec.EncodedSize() != want {
			t.Fatalf("NewPad(%d): encoded size %d, want %d", size, rec.EncodedSize(), want)
		}
	}
}

func TestConstructors(t *testing.T) {
	c := NewCommit(5, 88)
	if c.Kind != KindCommit || c.TxnID != 5 || c.PrevLSN != 88 {
		t.Fatal("NewCommit wrong")
	}
	a := NewAbort(5, 88)
	if a.Kind != KindAbort {
		t.Fatal("NewAbort wrong")
	}
	e := NewEnd(5, 88)
	if e.Kind != KindEnd {
		t.Fatal("NewEnd wrong")
	}
	clr := NewCLR(5, 88, 7, 44, UpdatePayload{Op: OpSet, After: []byte("x")})
	if clr.Kind != KindCLR || clr.UndoNext() != 44 || clr.Flags&FlagRedoOnly == 0 {
		t.Fatal("NewCLR wrong")
	}
	u := NewUpdate(5, 88, 7, UpdatePayload{Op: OpInsert, After: []byte("x")})
	if u.Kind != KindUpdate || u.PageID != 7 {
		t.Fatal("NewUpdate wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindCommit.String() != "commit" || Kind(200).String() != "kind(200)" {
		t.Fatal("Kind.String wrong")
	}
	if OpSet.String() != "set" || UpdateOp(9).String() != "op(9)" {
		t.Fatal("UpdateOp.String wrong")
	}
}

// Property: any payload round-trips bit-exactly through encode/decode.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(txn uint64, prev uint64, page uint64, aux uint64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		rec := &Record{
			Header:  Header{Kind: KindUpdate, TxnID: txn, PrevLSN: lsn.LSN(prev), PageID: page, Aux: aux},
			Payload: payload,
		}
		buf, err := rec.Encode()
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.TxnID == txn && got.PrevLSN == lsn.LSN(prev) &&
			got.PageID == page && got.Aux == aux && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: a single flipped bit anywhere in the encoding is detected.
func TestQuickBitFlipDetected(t *testing.T) {
	f := func(payload []byte, pos uint16, bit uint8) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 512 {
			payload = payload[:512]
		}
		rec := &Record{Header: Header{Kind: KindPad}, Payload: payload}
		buf, err := rec.Encode()
		if err != nil {
			return false
		}
		p := int(pos) % len(buf)
		buf[p] ^= 1 << (bit % 8)
		_, _, err = Decode(buf)
		return err != nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: update payload inverse is an involution and swaps images.
func TestQuickUpdateInverseInvolution(t *testing.T) {
	f := func(slot uint16, before, after []byte) bool {
		u := UpdatePayload{Op: OpSet, Slot: slot, Before: before, After: after}
		inv2 := u.Inverse().Inverse()
		return inv2.Op == u.Op && inv2.Slot == u.Slot &&
			bytes.Equal(inv2.Before, u.Before) && bytes.Equal(inv2.After, u.After)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200}
}
