package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"aether/internal/lsn"
)

// This file defines the kind-specific payload codecs. Keeping them next to
// the header codec means every byte that can reach the log has exactly one
// encoder and one decoder, shared by the storage manager, recovery and the
// tests.

// UpdateOp says how an update record changes its page slot.
type UpdateOp uint8

const (
	// OpSet overwrites a slot's bytes (before → after).
	OpSet UpdateOp = iota + 1
	// OpInsert adds a record at a slot (undo = delete).
	OpInsert
	// OpDelete removes a slot's record (undo = re-insert the before image).
	OpDelete
)

// String names the op for log dumps and errors.
func (o UpdateOp) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrBadPayload means a kind-specific payload failed to parse.
var ErrBadPayload = errors.New("logrec: malformed payload")

// UpdatePayload is the body of a KindUpdate record: a physiological,
// slot-level change with both images so it can be redone and undone.
type UpdatePayload struct {
	// Op is the slot operation (set, insert, delete).
	Op UpdateOp
	// Slot is the target slot in the page's directory.
	Slot uint16
	// Before is the pre-image (empty for inserts): the undo side.
	Before []byte
	// After is the post-image (empty for deletes): the redo side.
	After []byte
}

// updateHdr = op(1) + pad(1) + slot(2) + beforeLen(4) + afterLen(4)
const updateHdrSize = 12

// EncodedSize returns the payload's encoded length.
func (u *UpdatePayload) EncodedSize() int {
	return updateHdrSize + len(u.Before) + len(u.After)
}

// Encode appends the payload to dst and returns the extended slice.
func (u *UpdatePayload) Encode(dst []byte) []byte {
	var hdr [updateHdrSize]byte
	hdr[0] = byte(u.Op)
	binary.LittleEndian.PutUint16(hdr[2:4], u.Slot)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(u.Before)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(u.After)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, u.Before...)
	dst = append(dst, u.After...)
	return dst
}

// DecodeUpdate parses a KindUpdate payload. The returned slices alias src.
func DecodeUpdate(src []byte) (UpdatePayload, error) {
	if len(src) < updateHdrSize {
		return UpdatePayload{}, ErrBadPayload
	}
	bl := int(binary.LittleEndian.Uint32(src[4:8]))
	al := int(binary.LittleEndian.Uint32(src[8:12]))
	if bl < 0 || al < 0 || updateHdrSize+bl+al != len(src) {
		return UpdatePayload{}, ErrBadPayload
	}
	op := UpdateOp(src[0])
	if op != OpSet && op != OpInsert && op != OpDelete {
		return UpdatePayload{}, ErrBadPayload
	}
	return UpdatePayload{
		Op:     op,
		Slot:   binary.LittleEndian.Uint16(src[2:4]),
		Before: src[updateHdrSize : updateHdrSize+bl],
		After:  src[updateHdrSize+bl : updateHdrSize+bl+al],
	}, nil
}

// Inverse returns the payload that undoes u, used when writing CLRs.
func (u UpdatePayload) Inverse() UpdatePayload {
	switch u.Op {
	case OpInsert:
		return UpdatePayload{Op: OpDelete, Slot: u.Slot, Before: u.After}
	case OpDelete:
		return UpdatePayload{Op: OpInsert, Slot: u.Slot, After: u.Before}
	default:
		return UpdatePayload{Op: OpSet, Slot: u.Slot, Before: u.After, After: u.Before}
	}
}

// TxnTableEntry is one row of the checkpoint's active-transaction table.
type TxnTableEntry struct {
	// TxnID identifies the in-flight transaction.
	TxnID uint64
	// LastLSN is the transaction's most recent log record, where undo
	// would start.
	LastLSN lsn.LSN
	// Precommitted is true if the transaction has inserted its commit
	// record (relevant under ELR: such transactions must not be undone).
	Precommitted bool
}

// DirtyPageEntry is one row of the checkpoint's dirty-page table.
type DirtyPageEntry struct {
	// PageID is the dirty page.
	PageID uint64
	// RecLSN is the first LSN that dirtied it since it was last clean:
	// redo for this page starts here.
	RecLSN lsn.LSN
}

// CheckpointPayload is the body of a KindCheckpointEnd record: the fuzzy
// snapshot of the active-transaction table and dirty-page table.
type CheckpointPayload struct {
	// ActiveTxns snapshots the active-transaction table.
	ActiveTxns []TxnTableEntry
	// DirtyPages snapshots the dirty-page table.
	DirtyPages []DirtyPageEntry
}

// EncodedSize returns the payload's encoded length.
func (c *CheckpointPayload) EncodedSize() int {
	return 8 + len(c.ActiveTxns)*17 + len(c.DirtyPages)*16
}

// Encode appends the payload to dst and returns the extended slice.
func (c *CheckpointPayload) Encode(dst []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(c.ActiveTxns)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(c.DirtyPages)))
	dst = append(dst, hdr[:]...)
	var tmp [17]byte
	for _, e := range c.ActiveTxns {
		binary.LittleEndian.PutUint64(tmp[0:8], e.TxnID)
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(e.LastLSN))
		if e.Precommitted {
			tmp[16] = 1
		} else {
			tmp[16] = 0
		}
		dst = append(dst, tmp[:17]...)
	}
	for _, e := range c.DirtyPages {
		binary.LittleEndian.PutUint64(tmp[0:8], e.PageID)
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(e.RecLSN))
		dst = append(dst, tmp[:16]...)
	}
	return dst
}

// DecodeCheckpoint parses a KindCheckpointEnd payload.
func DecodeCheckpoint(src []byte) (CheckpointPayload, error) {
	if len(src) < 8 {
		return CheckpointPayload{}, ErrBadPayload
	}
	nt := int(binary.LittleEndian.Uint32(src[0:4]))
	np := int(binary.LittleEndian.Uint32(src[4:8]))
	want := 8 + nt*17 + np*16
	if nt < 0 || np < 0 || want != len(src) {
		return CheckpointPayload{}, ErrBadPayload
	}
	out := CheckpointPayload{}
	off := 8
	if nt > 0 {
		out.ActiveTxns = make([]TxnTableEntry, nt)
		for i := range out.ActiveTxns {
			out.ActiveTxns[i] = TxnTableEntry{
				TxnID:        binary.LittleEndian.Uint64(src[off : off+8]),
				LastLSN:      lsn.LSN(binary.LittleEndian.Uint64(src[off+8 : off+16])),
				Precommitted: src[off+16] == 1,
			}
			off += 17
		}
	}
	if np > 0 {
		out.DirtyPages = make([]DirtyPageEntry, np)
		for i := range out.DirtyPages {
			out.DirtyPages[i] = DirtyPageEntry{
				PageID: binary.LittleEndian.Uint64(src[off : off+8]),
				RecLSN: lsn.LSN(binary.LittleEndian.Uint64(src[off+8 : off+16])),
			}
			off += 16
		}
	}
	return out, nil
}

// NewUpdate builds a ready-to-insert update record.
func NewUpdate(txnID uint64, prev lsn.LSN, pageID uint64, p UpdatePayload) *Record {
	return &Record{
		Header: Header{
			Kind:    KindUpdate,
			TxnID:   txnID,
			PrevLSN: prev,
			PageID:  pageID,
		},
		Payload: p.Encode(make([]byte, 0, p.EncodedSize())),
	}
}

// NewCLR builds a compensation record that redoes p (the inverse of the
// undone update) and chains rollback to undoNext.
func NewCLR(txnID uint64, prev lsn.LSN, pageID uint64, undoNext lsn.LSN, p UpdatePayload) *Record {
	return &Record{
		Header: Header{
			Kind:    KindCLR,
			Flags:   FlagRedoOnly,
			TxnID:   txnID,
			PrevLSN: prev,
			PageID:  pageID,
			Aux:     uint64(undoNext),
		},
		Payload: p.Encode(make([]byte, 0, p.EncodedSize())),
	}
}

// NewCommit builds a commit record.
func NewCommit(txnID uint64, prev lsn.LSN) *Record {
	return &Record{Header: Header{Kind: KindCommit, TxnID: txnID, PrevLSN: prev}}
}

// NewAbort builds an abort record.
func NewAbort(txnID uint64, prev lsn.LSN) *Record {
	return &Record{Header: Header{Kind: KindAbort, TxnID: txnID, PrevLSN: prev}}
}

// NewEnd builds an end record.
func NewEnd(txnID uint64, prev lsn.LSN) *Record {
	return &Record{Header: Header{Kind: KindEnd, TxnID: txnID, PrevLSN: prev}}
}

// NewPad builds a padding record whose total encoded size is exactly
// size bytes (size >= HeaderSize). The microbenchmarks use this to sweep
// record sizes precisely.
func NewPad(size int) *Record {
	if size < HeaderSize {
		size = HeaderSize
	}
	return &Record{
		Header:  Header{Kind: KindPad},
		Payload: make([]byte, size-HeaderSize),
	}
}

// UndoNext returns the CLR's undo-next pointer.
func (r *Record) UndoNext() lsn.LSN { return lsn.LSN(r.Aux) }

// PrevPageSeq returns, for a multi-log update record, the global
// sequence stamp of the page's previous update at the time this record
// was appended — the dependency edge recovery verifies when merging N
// logs. It is 0 for single-log records, for a page's first update, and
// for every non-update kind (a CLR's Aux is its UndoNextLSN).
func (r *Record) PrevPageSeq() uint64 {
	if r.Kind != KindUpdate {
		return 0
	}
	return r.Aux
}
