// Package lsn defines the log sequence number (LSN) type used throughout
// Aether.
//
// Following the paper (§5), an LSN doubles as the byte address of a record
// in the logical log stream: generating an LSN also reserves log-buffer
// space, and the LSN of a record equals the total number of log bytes that
// precede it. The physical location inside the circular in-memory buffer is
// lsn modulo the buffer size; the location on the log device is the LSN
// itself (the device receives the linearized stream).
package lsn

import (
	"fmt"
	"sync/atomic"
)

// LSN is a log sequence number: the byte offset of a record in the logical
// log stream. LSNs are totally ordered and strictly increasing across
// inserts.
type LSN uint64

// Zero is the LSN of the first byte ever written to the log. It is also
// used as the "null" LSN (e.g. PrevLSN of a transaction's first record),
// because no real record can both start at zero and be pointed at: record
// headers are non-empty, so any pointer to LSN 0 from a later record would
// be a self-reference. Code that needs an explicit invalid value should use
// Undefined.
const Zero LSN = 0

// Undefined marks an absent LSN (e.g. UndoNextLSN of a non-CLR record).
const Undefined LSN = ^LSN(0)

// Valid reports whether l is a usable log address.
func (l LSN) Valid() bool { return l != Undefined }

// Add returns the LSN advanced by n bytes.
func (l LSN) Add(n int) LSN { return l + LSN(n) }

// Sub returns the distance in bytes from m to l. It panics if m > l, which
// always indicates LSN arithmetic corruption in the caller.
func (l LSN) Sub(m LSN) uint64 {
	if m > l {
		panic(fmt.Sprintf("lsn: Sub underflow: %d - %d", uint64(l), uint64(m)))
	}
	return uint64(l - m)
}

// String formats the LSN the way the rest of the system logs it.
func (l LSN) String() string {
	if l == Undefined {
		return "LSN(undef)"
	}
	return fmt.Sprintf("LSN(%d)", uint64(l))
}

// Atomic is an LSN that can be read and advanced concurrently. The zero
// value holds LSN 0 and is ready to use.
//
// It is used for the global watermarks the paper's algorithms revolve
// around: the insertion point, the release ("ready to flush") frontier and
// the durable horizon.
type Atomic struct {
	v atomic.Uint64
}

// Load returns the current value.
func (a *Atomic) Load() LSN { return LSN(a.v.Load()) }

// Store sets the current value.
func (a *Atomic) Store(l LSN) { a.v.Store(uint64(l)) }

// Add advances the value by n bytes and returns the previous value; this is
// the atomic "fetch-and-add" used by LSN generation.
func (a *Atomic) Add(n int) LSN { return LSN(a.v.Add(uint64(n))) - LSN(n) }

// CompareAndSwap executes the CAS operation on the value.
func (a *Atomic) CompareAndSwap(old, new LSN) bool {
	return a.v.CompareAndSwap(uint64(old), uint64(new))
}

// AdvanceTo raises the value to l if it is currently below l. It never
// lowers the value. It returns true if this call performed the advance.
// Concurrent watermark publication (e.g. the durable horizon) uses this to
// stay monotonic regardless of notification order.
func (a *Atomic) AdvanceTo(l LSN) bool {
	for {
		cur := a.v.Load()
		if cur >= uint64(l) {
			return false
		}
		if a.v.CompareAndSwap(cur, uint64(l)) {
			return true
		}
	}
}

// Max returns the larger of two LSNs.
func Max(a, b LSN) LSN {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of two LSNs.
func Min(a, b LSN) LSN {
	if a < b {
		return a
	}
	return b
}
