package lsn

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	l := LSN(100)
	if got := l.Add(28); got != 128 {
		t.Fatalf("Add: got %v, want 128", got)
	}
	if got := LSN(128).Sub(100); got != 28 {
		t.Fatalf("Sub: got %d, want 28", got)
	}
}

func TestSubPanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub(larger) did not panic")
		}
	}()
	LSN(5).Sub(6)
}

func TestValid(t *testing.T) {
	if Undefined.Valid() {
		t.Fatal("Undefined must not be Valid")
	}
	if !Zero.Valid() {
		t.Fatal("Zero must be Valid")
	}
	if !LSN(12345).Valid() {
		t.Fatal("ordinary LSN must be Valid")
	}
}

func TestString(t *testing.T) {
	if got := LSN(42).String(); got != "LSN(42)" {
		t.Fatalf("String: got %q", got)
	}
	if got := Undefined.String(); got != "LSN(undef)" {
		t.Fatalf("String undefined: got %q", got)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Max wrong")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min wrong")
	}
}

func TestAtomicAddReturnsPrevious(t *testing.T) {
	var a Atomic
	if got := a.Add(10); got != 0 {
		t.Fatalf("first Add returned %v, want 0", got)
	}
	if got := a.Add(5); got != 10 {
		t.Fatalf("second Add returned %v, want 10", got)
	}
	if got := a.Load(); got != 15 {
		t.Fatalf("Load: got %v, want 15", got)
	}
}

// TestAtomicAddIsFetchAndAdd verifies that concurrent Adds hand out
// disjoint, gap-free ranges — the property LSN generation depends on.
func TestAtomicAddIsFetchAndAdd(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		size       = 7
	)
	var a Atomic
	var mu sync.Mutex
	seen := make(map[LSN]bool, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]LSN, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, a.Add(size))
			}
			mu.Lock()
			for _, l := range local {
				if seen[l] {
					t.Errorf("duplicate LSN %v handed out", l)
				}
				seen[l] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	want := LSN(goroutines * perG * size)
	if got := a.Load(); got != want {
		t.Fatalf("final value %v, want %v", got, want)
	}
	// Every multiple of size below the final value must have been seen
	// exactly once (no gaps).
	for l := LSN(0); l < want; l += size {
		if !seen[l] {
			t.Fatalf("gap: LSN %v never handed out", l)
		}
	}
}

func TestAdvanceToIsMonotonic(t *testing.T) {
	var a Atomic
	if !a.AdvanceTo(10) {
		t.Fatal("AdvanceTo(10) from 0 should advance")
	}
	if a.AdvanceTo(5) {
		t.Fatal("AdvanceTo(5) from 10 must not advance")
	}
	if got := a.Load(); got != 10 {
		t.Fatalf("Load after failed advance: got %v, want 10", got)
	}
	if !a.AdvanceTo(11) {
		t.Fatal("AdvanceTo(11) from 10 should advance")
	}
}

func TestAdvanceToConcurrent(t *testing.T) {
	var a Atomic
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				a.AdvanceTo(LSN(i*8 + g))
			}
		}(g)
	}
	wg.Wait()
	want := LSN(4999*8 + 7)
	if got := a.Load(); got != want {
		t.Fatalf("final %v, want %v", got, want)
	}
}

// Property: Add/Sub round-trip for arbitrary base and non-negative deltas.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(base uint32, n uint16) bool {
		l := LSN(base)
		return l.Add(int(n)).Sub(l) == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Max/Min are commutative and bracket their arguments.
func TestQuickMaxMin(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := LSN(x), LSN(y)
		mx, mn := Max(a, b), Min(a, b)
		return mx == Max(b, a) && mn == Min(b, a) &&
			mn <= a && mn <= b && mx >= a && mx >= b &&
			(mx == a || mx == b) && (mn == a || mn == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
