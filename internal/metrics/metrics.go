// Package metrics provides the lightweight, allocation-free instrumentation
// Aether's experiments are built on: atomic counters, power-of-two latency
// histograms, and the per-phase time breakdown (work vs. lock wait vs. log
// wait vs. log work vs. contention) that the paper's Figures 2 and 7 plot.
//
// Everything here is safe for concurrent use and designed so the probes are
// cheap enough to leave enabled in the hot paths being measured.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic value that can go up and down (e.g. in-flight
// transactions). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// histBuckets is the number of power-of-two latency buckets. Bucket i holds
// samples in [2^i, 2^(i+1)) nanoseconds; bucket 0 also holds zero. 48
// buckets cover up to ~78 hours, far beyond any latency we measure.
const histBuckets = 48

// Histogram is a concurrent power-of-two histogram of durations. The zero
// value is ready to use.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	bucket [histBuckets]atomic.Int64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	h.bucket[bucketFor(n)].Add(1)
}

func bucketFor(n int64) int {
	if n <= 0 {
		return 0
	}
	b := 63 - bits.LeadingZeros64(uint64(n))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) using the
// bucket boundaries. The estimate is exact to within a factor of two, which
// is sufficient for the shape comparisons the experiments make.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.bucket[i].Load()
		if seen > target {
			return time.Duration(int64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(int64(1) << histBuckets)
}

// HistogramSnapshot is a point-in-time, JSON-friendly view of a
// Histogram (machine-readable benchmark output).
type HistogramSnapshot struct {
	// Count is how many observations the histogram has absorbed.
	Count int64 `json:"count"`
	// MeanNs is the mean observation in nanoseconds.
	MeanNs int64 `json:"mean_ns"`
	// P50Ns is the median in nanoseconds (bucketed upper bound).
	P50Ns int64 `json:"p50_ns"`
	// P99Ns is the 99th percentile in nanoseconds (bucketed upper bound).
	P99Ns int64 `json:"p99_ns"`
}

// Snapshot captures the histogram's summary statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.50)),
		P99Ns:  int64(h.Quantile(0.99)),
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.bucket {
		h.bucket[i].Store(0)
	}
}

// String summarizes the histogram for human consumption.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p99≤%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Phase identifies where a transaction's wall-clock time is spent. These
// are exactly the categories of the paper's time-breakdown figures.
type Phase int

const (
	// PhaseWork is useful transaction work outside the log and lock
	// managers ("Other work" in Fig. 2).
	PhaseWork Phase = iota
	// PhaseLockWait is time blocked waiting for a logical database lock
	// held by another transaction ("Other contention").
	PhaseLockWait
	// PhaseLogWork is time spent inside the log manager doing useful
	// work: encoding and copying records ("Log mgr. work").
	PhaseLogWork
	// PhaseLogContention is time spent waiting to enter the log buffer:
	// mutex acquisition, consolidation-slot joins, in-order release waits
	// ("Log mgr. contention").
	PhaseLogContention
	// PhaseLogWait is time a committing transaction (or its detached
	// continuation) spends waiting for its commit record to harden —
	// the log-flush wait the paper calls delay (A).
	PhaseLogWait
	// PhaseIdle is time an agent thread had no runnable transaction.
	PhaseIdle
	numPhases
)

var phaseNames = [numPhases]string{
	"work", "lock-wait", "log-work", "log-contention", "log-wait", "idle",
}

// String returns the phase's short name.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Breakdown accumulates time per phase across any number of goroutines.
// The zero value is ready to use.
type Breakdown struct {
	ns [numPhases]atomic.Int64
}

// Add records d spent in phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if d < 0 {
		return
	}
	b.ns[p].Add(int64(d))
}

// Get returns the accumulated time for phase p.
func (b *Breakdown) Get(p Phase) time.Duration {
	return time.Duration(b.ns[p].Load())
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	var t int64
	for i := range b.ns {
		t += b.ns[i].Load()
	}
	return time.Duration(t)
}

// Fractions returns each phase's share of the total, in phase order.
// If nothing was recorded all shares are zero.
func (b *Breakdown) Fractions() [int(numPhases)]float64 {
	var out [int(numPhases)]float64
	total := float64(b.Total())
	if total == 0 {
		return out
	}
	for i := range b.ns {
		out[i] = float64(b.ns[i].Load()) / total
	}
	return out
}

// Reset clears all phases.
func (b *Breakdown) Reset() {
	for i := range b.ns {
		b.ns[i].Store(0)
	}
}

// String renders the breakdown as percentages, largest first, e.g.
// "work 41.2% | log-wait 33.0% | ...".
func (b *Breakdown) String() string {
	fr := b.Fractions()
	type pf struct {
		p Phase
		f float64
	}
	ps := make([]pf, 0, int(numPhases))
	for i := 0; i < int(numPhases); i++ {
		ps = append(ps, pf{Phase(i), fr[i]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].f > ps[j].f })
	var sb strings.Builder
	for i, e := range ps {
		if e.f == 0 {
			continue
		}
		if i > 0 && sb.Len() > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%s %.1f%%", e.p, e.f*100)
	}
	if sb.Len() == 0 {
		return "(empty)"
	}
	return sb.String()
}

// Stopwatch measures consecutive phases on a single goroutine and reports
// them into a Breakdown. It is not safe for concurrent use; each agent
// thread owns one.
type Stopwatch struct {
	b     *Breakdown
	phase Phase
	start time.Time
}

// NewStopwatch returns a stopwatch reporting into b, initially in phase
// PhaseIdle.
func NewStopwatch(b *Breakdown) *Stopwatch {
	return &Stopwatch{b: b, phase: PhaseIdle, start: time.Now()}
}

// Switch ends the current phase, charges its elapsed time, and enters p.
func (s *Stopwatch) Switch(p Phase) {
	now := time.Now()
	s.b.Add(s.phase, now.Sub(s.start))
	s.phase = p
	s.start = now
}

// Stop ends the current phase and charges it; the stopwatch then idles.
func (s *Stopwatch) Stop() { s.Switch(PhaseIdle) }
