package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load: got %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset: got %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 80000 {
		t.Fatalf("got %d, want 80000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Fatalf("got %d, want -7", got)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	if got := h.Count(); got != 3 {
		t.Fatalf("Count: got %d", got)
	}
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("Mean: got %v", got)
	}
	if got := h.Sum(); got != 60*time.Microsecond {
		t.Fatalf("Sum: got %v", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if got := h.Sum(); got != 0 {
		t.Fatalf("negative sample should clamp to 0, sum=%v", got)
	}
	if got := h.Count(); got != 1 {
		t.Fatalf("count: got %d", got)
	}
}

// Property: Quantile is an upper bound within 2x for a uniform batch of
// identical samples.
func TestQuickHistogramQuantileBound(t *testing.T) {
	f := func(raw uint32) bool {
		d := time.Duration(raw%1_000_000 + 1)
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Observe(d)
		}
		q := h.Quantile(0.5)
		return q >= d && q <= 4*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if p50 > p90 || p90 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestBreakdownFractions(t *testing.T) {
	var b Breakdown
	b.Add(PhaseWork, 600*time.Millisecond)
	b.Add(PhaseLogWait, 300*time.Millisecond)
	b.Add(PhaseLockWait, 100*time.Millisecond)
	fr := b.Fractions()
	if math.Abs(fr[PhaseWork]-0.6) > 1e-9 {
		t.Fatalf("work fraction: got %f", fr[PhaseWork])
	}
	if math.Abs(fr[PhaseLogWait]-0.3) > 1e-9 {
		t.Fatalf("log-wait fraction: got %f", fr[PhaseLogWait])
	}
	if got := b.Total(); got != time.Second {
		t.Fatalf("Total: got %v", got)
	}
}

func TestBreakdownNegativeIgnored(t *testing.T) {
	var b Breakdown
	b.Add(PhaseWork, -time.Second)
	if b.Total() != 0 {
		t.Fatal("negative duration must be ignored")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	if got := b.String(); got != "(empty)" {
		t.Fatalf("empty breakdown: got %q", got)
	}
	b.Add(PhaseWork, time.Second)
	if got := b.String(); got != "work 100.0%" {
		t.Fatalf("got %q", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseLogContention.String() != "log-contention" {
		t.Fatal("phase name wrong")
	}
	if Phase(99).String() != "phase(99)" {
		t.Fatal("out-of-range phase name wrong")
	}
}

func TestStopwatch(t *testing.T) {
	var b Breakdown
	sw := NewStopwatch(&b)
	sw.Switch(PhaseWork)
	time.Sleep(2 * time.Millisecond)
	sw.Switch(PhaseLogWait)
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	if b.Get(PhaseWork) <= 0 {
		t.Fatal("work time not recorded")
	}
	if b.Get(PhaseLogWait) <= 0 {
		t.Fatal("log-wait time not recorded")
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Add(PhaseWork, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Get(PhaseWork); got != 8*1000*time.Microsecond {
		t.Fatalf("got %v", got)
	}
}
