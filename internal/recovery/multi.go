// multi.go implements restart recovery for a partitioned (multi-log)
// database: N per-partition durable log tails are merged back into one
// redo order by the global sequence stamp every record carries, the
// merge is verified against the inter-log dependency edges update
// records embed (PrevPageSeq), and losers are undone in reverse global
// order with CLRs routed back to each transaction's home log.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"aether/internal/core"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// MultiOptions configures a partitioned recovery pass.
type MultiOptions struct {
	// Logs are the per-partition durable log images (from
	// logdev.ReadTail), one per partition in partition order.
	Logs [][]byte
	// Bases are the per-partition truncation horizons (the LSN of each
	// Logs[i][0]).
	Bases []lsn.LSN
	// Store is the page store (see Options.Store). In multi-log mode
	// page stamps are global seqs, not LSNs.
	Store *storage.Store
	// Multi, if non-nil, receives the CLRs and end records undo
	// generates, routed to each loser's home partition. It must have
	// been built with a start seq at or above every seq in Logs (see
	// MaxSeq). If nil, undo applies inverses without logging.
	Multi *core.MultiLog
	// VerifyArchive mirrors Options.VerifyArchive, with stamps compared
	// as seqs.
	VerifyArchive bool
}

// ErrDependencyViolated means the merged redo order contradicts an
// update record's embedded dependency: its page's previous update (on
// another log) is missing from the durable state even though the
// younger record hardened — exactly what the inter-log flush edges
// exist to prevent. A database that trips this was corrupted or written
// by a coordinator that broke invariant 6.
var ErrDependencyViolated = errors.New("recovery: inter-log dependency order violated")

// partRecord is one decoded record tagged with its partition.
type partRecord struct {
	part int
	rec  logrec.Record
}

// MaxSeq scans a durable log tail and returns the largest global
// sequence stamp it contains (0 for an empty or single-log tail). The
// restart path uses it to seed the MultiLog's sequence counter before
// recovery appends CLRs.
func MaxSeq(log []byte, base lsn.LSN) uint64 {
	var max uint64
	it := logrec.NewIterator(log, base)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if s := uint64(rec.Seq); s > max {
			max = s
		}
	}
	return max
}

// RecoverMulti runs the ARIES passes over a partitioned log. The
// checkpoint is read from partition 0 (the coordinator writes them
// nowhere else); analysis and redo process the partitions' records
// merged in global seq order; undo compensates losers in reverse seq
// order, appending CLRs to each loser's home partition. Page stamps and
// DPT recLSNs are global seqs throughout.
func RecoverMulti(opts MultiOptions) (*Result, error) {
	if opts.Store == nil {
		return nil, errors.New("recovery: Store is required")
	}
	if len(opts.Logs) < 2 || len(opts.Logs) != len(opts.Bases) {
		return nil, errors.New("recovery: need >= 2 logs with matching bases")
	}
	res := &Result{CheckpointLSN: lsn.Undefined, LogBase: opts.Bases[0]}

	// ---- Decode every partition's tail and merge by seq. ----
	var merged []partRecord
	var maxSeq uint64
	for i, log := range opts.Logs {
		it := logrec.NewIterator(log, opts.Bases[i])
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			res.Scanned++
			if s := uint64(rec.Seq); s > maxSeq {
				maxSeq = s
			}
			merged = append(merged, partRecord{part: i, rec: rec})
		}
		if err := it.Err(); err != nil && it.Offset() < len(log) {
			return nil, fmt.Errorf("recovery: partition %d: %w", i, err)
		}
		res.ScannedBytes += int64(it.Offset())
	}
	sort.Slice(merged, func(a, b int) bool {
		return merged[a].rec.Seq < merged[b].rec.Seq
	})
	// seqIndex locates a record by its global seq (checkpoint ATT
	// entries carry seqs, and undo needs the records behind them).
	seqIndex := make(map[uint64]int, len(merged))
	for i, pr := range merged {
		seqIndex[uint64(pr.rec.Seq)] = i
	}

	// ---- Verify the pre-resident pages (stamps are seqs). ----
	res.ArchivedPages = len(opts.Store.PageIDs())
	faults0 := opts.Store.CacheStats().Misses
	if opts.VerifyArchive {
		for _, pid := range opts.Store.PageIDs() {
			p, err := opts.Store.Get(pid)
			if err != nil {
				return nil, fmt.Errorf("recovery: verify: %w", err)
			}
			if p == nil {
				continue
			}
			pl := p.LSN()
			p.Unpin()
			if uint64(pl) > maxSeq {
				return nil, fmt.Errorf(
					"recovery: archived page %d has seq stamp %d beyond the durable log's max seq %d (archive ahead of log: WAL violation or corruption)",
					pid, uint64(pl), maxSeq)
			}
		}
	}
	defer func() {
		res.ArchivedPages += int(opts.Store.CacheStats().Misses - faults0)
	}()

	// ---- Locate the last complete checkpoint (partition 0 only). ----
	ckptBegin, ckptPayload := findLastCheckpoint(opts.Logs[0], opts.Bases[0])
	res.CheckpointLSN = ckptBegin
	var beginSeq uint64
	if ckptBegin.Valid() {
		if i, ok := seqIndexAt(opts.Logs[0], opts.Bases[0], ckptBegin); ok {
			beginSeq = i
		}
	}

	// ---- Pass 1: analysis, in merged seq order. ----
	// att maps loser candidates to the merged index of their last
	// record (-1 when only the checkpoint's seq is known yet).
	type multiStatus struct {
		lastSeq   uint64
		committed bool
	}
	att := make(map[uint64]*multiStatus)
	dpt := make(map[uint64]uint64) // pageID -> first dirtying seq
	if ckptBegin.Valid() {
		for _, e := range ckptPayload.ActiveTxns {
			att[e.TxnID] = &multiStatus{lastSeq: uint64(e.LastLSN), committed: e.Precommitted}
		}
		for _, e := range ckptPayload.DirtyPages {
			dpt[e.PageID] = uint64(e.RecLSN)
		}
	}
	for _, pr := range merged {
		rec := &pr.rec
		if uint64(rec.Seq) < beginSeq {
			// Records below the checkpoint's begin seq are covered by
			// its ATT/DPT snapshot (they survive in the tails only
			// because truncation is conservative).
			continue
		}
		switch rec.Kind {
		case logrec.KindUpdate, logrec.KindCLR:
			st := att[rec.TxnID]
			if st == nil {
				st = &multiStatus{}
				att[rec.TxnID] = st
			}
			st.lastSeq = uint64(rec.Seq)
			if _, ok := dpt[rec.PageID]; !ok {
				dpt[rec.PageID] = uint64(rec.Seq)
			}
		case logrec.KindCommit:
			st := att[rec.TxnID]
			if st == nil {
				st = &multiStatus{}
				att[rec.TxnID] = st
			}
			st.lastSeq = uint64(rec.Seq)
			st.committed = true
		case logrec.KindAbort:
			st := att[rec.TxnID]
			if st == nil {
				st = &multiStatus{}
				att[rec.TxnID] = st
			}
			st.lastSeq = uint64(rec.Seq)
		case logrec.KindEnd:
			delete(att, rec.TxnID)
		}
	}

	// ---- Pass 2: redo in merged seq order, verifying edges. ----
	for _, pr := range merged {
		rec := &pr.rec
		if rec.Kind != logrec.KindUpdate && rec.Kind != logrec.KindCLR {
			continue
		}
		recSeq, inDPT := dpt[rec.PageID]
		if !inDPT || uint64(rec.Seq) < recSeq {
			continue
		}
		page, err := opts.Store.GetOrCreate(rec.PageID)
		if err != nil {
			return nil, fmt.Errorf("recovery: redo fault at seq %d: %w", rec.Seq, err)
		}
		stamp := uint64(page.LSN())
		if stamp >= uint64(rec.Seq) {
			page.Unpin()
			continue
		}
		// Dependency verification: the page's previous update (possibly
		// on another log) must already be reflected — either replayed
		// earlier in this merge or captured in the archived image. If it
		// is not, a younger record hardened before an older one it
		// depends on, which the flush edges must never allow.
		if ps := rec.PrevPageSeq(); ps > 0 && stamp < ps {
			if _, survives := seqIndex[ps]; !survives {
				page.Unpin()
				return nil, fmt.Errorf(
					"%w: page %d update seq %d depends on seq %d (partition %d durable without it)",
					ErrDependencyViolated, rec.PageID, rec.Seq, ps, pr.part)
			}
			// The older record is present in the merge but was skipped
			// (its page image is behind a stale DPT entry); replaying
			// this younger record is still correct only if the older one
			// replays first — which seq order guarantees — so reaching
			// here means the DPT said skip while the stamp says the page
			// is older than the dependency. That is the same violation.
			page.Unpin()
			return nil, fmt.Errorf(
				"%w: page %d at stamp %d reached update seq %d before dependency seq %d was applied",
				ErrDependencyViolated, rec.PageID, stamp, rec.Seq, ps)
		}
		up, err := logrec.DecodeUpdate(rec.Payload)
		if err != nil {
			page.Unpin()
			return nil, fmt.Errorf("recovery: redo decode at seq %d: %w", rec.Seq, err)
		}
		err = page.Apply(up, lsn.LSN(uint64(rec.Seq)))
		if err == nil {
			opts.Store.MarkDirty(rec.PageID, lsn.LSN(uint64(rec.Seq)))
		}
		page.Unpin()
		if err != nil {
			return nil, fmt.Errorf("recovery: redo apply at seq %d: %w", rec.Seq, err)
		}
		res.RedoApplied++
	}

	// ---- Pass 3: undo losers in reverse global seq order. ----
	var losers []uint64
	for id, st := range att {
		if st.committed {
			res.Winners = append(res.Winners, id)
		} else {
			losers = append(losers, id)
		}
	}
	sort.Slice(res.Winners, func(i, j int) bool { return res.Winners[i] < res.Winners[j] })
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	res.Losers = append(res.Losers, losers...)

	cursors := make(map[uint64]*undoCursor, len(losers))
	for _, id := range losers {
		st := att[id]
		i, ok := seqIndex[st.lastSeq]
		if !ok {
			// Truncation never releases log below an active
			// transaction's first record, so a loser's chain must
			// survive in full.
			return nil, fmt.Errorf("recovery: loser %d last record seq %d not in any durable tail", id, st.lastSeq)
		}
		pr := merged[i]
		cursors[id] = &undoCursor{
			home:    pr.part,
			cur:     pr.rec.LSN,
			curSeq:  st.lastSeq,
			clrPrev: pr.rec.LSN,
		}
	}
	synth := maxSeq
	if opts.Multi != nil && opts.Multi.LastSeq() > synth {
		synth = opts.Multi.LastSeq()
	}

	for len(cursors) > 0 {
		// Undo the record with the largest seq across all losers; an
		// exhausted chain is finished (and removed) first.
		var id uint64
		var best *undoCursor
		for tid, c := range cursors {
			if !c.cur.Valid() {
				best, id = c, tid
				break
			}
			if best == nil || c.curSeq > best.curSeq {
				best, id = c, tid
			}
		}
		c := best
		if !c.cur.Valid() {
			// Chain exhausted: finish the loser with an end record.
			if opts.Multi != nil {
				endRec := logrec.NewEnd(id, c.clrPrev)
				if _, _, _, err := opts.Multi.Append(c.home, endRec); err != nil {
					return nil, fmt.Errorf("recovery: undo end: %w", err)
				}
			}
			delete(cursors, id)
			continue
		}
		rec, err := recordAt(opts.Logs[c.home], opts.Bases[c.home], c.cur)
		if err != nil {
			return nil, fmt.Errorf("recovery: undo read at %v (partition %d): %w", c.cur, c.home, err)
		}
		switch rec.Kind {
		case logrec.KindUpdate:
			up, err := logrec.DecodeUpdate(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("recovery: undo decode at seq %d: %w", rec.Seq, err)
			}
			inv := up.Inverse()
			var stamp lsn.LSN
			if opts.Multi != nil {
				clr := logrec.NewCLR(id, c.clrPrev, rec.PageID, rec.PrevLSN, inv)
				at, _, seq, err := opts.Multi.Append(c.home, clr)
				if err != nil {
					return nil, fmt.Errorf("recovery: undo CLR: %w", err)
				}
				stamp = lsn.LSN(seq)
				c.clrPrev = at
			} else {
				synth++
				stamp = lsn.LSN(synth)
			}
			page, err := opts.Store.GetOrCreate(rec.PageID)
			if err != nil {
				return nil, fmt.Errorf("recovery: undo fault at seq %d: %w", rec.Seq, err)
			}
			applyErr := page.Apply(inv, stamp)
			if applyErr == nil {
				opts.Store.MarkDirty(rec.PageID, stamp)
			}
			page.Unpin()
			if applyErr != nil {
				return nil, fmt.Errorf("recovery: undo apply at seq %d: %w", rec.Seq, applyErr)
			}
			res.UndoApplied++
			c.advance(opts.Logs, opts.Bases, rec.PrevLSN)
		case logrec.KindCLR:
			c.advance(opts.Logs, opts.Bases, rec.UndoNext())
		default:
			c.advance(opts.Logs, opts.Bases, rec.PrevLSN)
		}
	}
	return res, nil
}

// undoCursor walks one loser's chain during multi-log undo: cur is the
// home-log LSN of the loser's current record (Undefined once the chain
// is exhausted), curSeq its global seq (the cross-loser undo order),
// and clrPrev the PrevLSN for the next CLR.
type undoCursor struct {
	home    int
	cur     lsn.LSN
	curSeq  uint64
	clrPrev lsn.LSN
}

// advance moves the cursor to the chain's next record (a home-log LSN)
// and refreshes its seq for the cross-loser ordering. An unreadable
// next record leaves curSeq 0; the main loop's recordAt reports the
// error when the cursor is picked.
func (c *undoCursor) advance(logs [][]byte, bases []lsn.LSN, next lsn.LSN) {
	c.cur = next
	c.curSeq = 0
	if !next.Valid() {
		return
	}
	if rec, err := recordAt(logs[c.home], bases[c.home], next); err == nil {
		c.curSeq = uint64(rec.Seq)
	}
}

// seqIndexAt returns the global seq of the record at LSN `at` in the
// given partition tail.
func seqIndexAt(log []byte, base, at lsn.LSN) (uint64, bool) {
	rec, err := recordAt(log, base, at)
	if err != nil {
		return 0, false
	}
	return uint64(rec.Seq), true
}
