// pitr.go is point-in-time recovery: reconstructing the committed
// state at an arbitrary historical position by replaying the log from
// genesis (or from a materialized snapshot) into a fresh page store,
// then undoing the transactions still in flight at that position.
//
// This is deliberately NOT Recover/RecoverMulti: those restart a live
// database, so their analysis pass starts at the last checkpoint and
// trusts the page archive for everything older. A point-in-time restore
// targets a moment that may predate every checkpoint, so it ignores
// checkpoints entirely and replays history itself — which is exactly
// why the remote tier's retention policy is anchored on snapshot
// objects: a snapshot materializes the replay of everything below its
// cut (page images plus the undo stash of transactions straddling the
// cut), making the log below it safe to prune without giving up any
// restore point at or above it.
//
// Cut-boundary correctness: for any record boundary C, the log prefix
// [0, C) is self-contained — a transaction without a commit record
// below C is a loser *at C*, and every update it needs undone lies
// below C. The replayer tracks exactly that: per in-flight transaction,
// its not-yet-compensated updates (append on update, pop on CLR, drop
// on commit/end). At the target, the surviving stash is undone in
// reverse order. The same state doubles as the snapshot's stash.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// ErrBadCut reports a PITR call whose snapshot, log slice and target do
// not line up (e.g. the log does not start at the snapshot's cut).
var ErrBadCut = errors.New("recovery: snapshot, log and target do not line up")

// replayer is the shared PITR core: a fresh page store plus the
// per-transaction stash of un-compensated updates.
type replayer struct {
	store *storage.Store
	stash map[uint64][]logdev.SnapshotStashRec
}

func newReplayer() *replayer {
	return &replayer{store: storage.NewStore(), stash: make(map[uint64][]logdev.SnapshotStashRec)}
}

// loadSnapshot seeds the store and stash from a materialized snapshot.
func (r *replayer) loadSnapshot(snap *logdev.Snapshot) error {
	for _, sp := range snap.Pages {
		page, err := r.store.GetOrCreate(sp.PID)
		if err != nil {
			return err
		}
		err = page.LoadSnapshot(sp.Image)
		page.Unpin()
		if err != nil {
			return err
		}
	}
	for _, rec := range snap.Stash {
		r.stash[rec.TxnID] = append(r.stash[rec.TxnID], rec)
	}
	return nil
}

// apply replays one record. order is the record's global position key
// (its LSN for a single log, its seq for a partitioned one) used for
// the redo guard and the stash; stamp is the LSN the page is stamped
// with (the record's end LSN, or again the seq).
func (r *replayer) apply(rec logrec.Record, order uint64, stamp lsn.LSN) error {
	switch rec.Kind {
	case logrec.KindUpdate, logrec.KindCLR:
		up, err := logrec.DecodeUpdate(rec.Payload)
		if err != nil {
			return fmt.Errorf("recovery: pitr: decode update at %d: %w", order, err)
		}
		page, err := r.store.GetOrCreate(rec.PageID)
		if err != nil {
			return err
		}
		if page.LSN() <= lsn.LSN(order) || !page.LSN().Valid() {
			if err := page.Apply(up, stamp); err != nil {
				page.Unpin()
				return fmt.Errorf("recovery: pitr: redo at %d on page %d: %w", order, rec.PageID, err)
			}
		}
		page.Unpin()
		if rec.Kind == logrec.KindUpdate {
			r.stash[rec.TxnID] = append(r.stash[rec.TxnID], logdev.SnapshotStashRec{
				TxnID: rec.TxnID, At: order, PageID: rec.PageID, Payload: rec.Payload,
			})
		} else if n := len(r.stash[rec.TxnID]); n > 0 {
			// A CLR compensates the transaction's most recent
			// un-compensated update: rollback is strictly last-to-first.
			r.stash[rec.TxnID] = r.stash[rec.TxnID][:n-1]
		}
	case logrec.KindCommit:
		delete(r.stash, rec.TxnID)
	case logrec.KindEnd:
		delete(r.stash, rec.TxnID)
	}
	// Abort, checkpoint and pad records carry no redo and do not change
	// in-flight status: an aborting transaction stays stashed until its
	// CLRs and End record drain it.
	return nil
}

// undoStash rolls back every transaction still in flight, applying
// inverses in reverse global order with synthetic stamps above top.
func (r *replayer) undoStash(top uint64, step uint64) error {
	var all []logdev.SnapshotStashRec
	for _, recs := range r.stash {
		all = append(all, recs...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].At > all[b].At })
	synth := top
	for _, sr := range all {
		up, err := logrec.DecodeUpdate(sr.Payload)
		if err != nil {
			return fmt.Errorf("recovery: pitr: decode stashed update at %d: %w", sr.At, err)
		}
		page, err := r.store.GetOrCreate(sr.PageID)
		if err != nil {
			return err
		}
		synth += step
		err = page.Apply(up.Inverse(), lsn.LSN(synth))
		page.Unpin()
		if err != nil {
			return fmt.Errorf("recovery: pitr: undo at %d on page %d: %w", sr.At, sr.PageID, err)
		}
	}
	return nil
}

// dumpStash returns the stash in ascending order, with payloads copied
// so they outlive the log buffer they were decoded from.
func (r *replayer) dumpStash() []logdev.SnapshotStashRec {
	var all []logdev.SnapshotStashRec
	for _, recs := range r.stash {
		for _, sr := range recs {
			sr.Payload = append([]byte(nil), sr.Payload...)
			all = append(all, sr)
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].At < all[b].At })
	return all
}

// dumpPages snapshots every page in the store.
func (r *replayer) dumpPages() ([]logdev.SnapshotPage, error) {
	ids := r.store.PageIDs()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	pages := make([]logdev.SnapshotPage, 0, len(ids))
	for _, pid := range ids {
		page, err := r.store.Get(pid)
		if err != nil {
			return nil, err
		}
		img := page.Snapshot()
		page.Unpin()
		pages = append(pages, logdev.SnapshotPage{PID: pid, Image: img})
	}
	return pages, nil
}

// replaySingle replays single-log records from base, stopping at
// target (records crossing target are excluded by the clip).
func (r *replayer) replaySingle(log []byte, base, target uint64) error {
	if target < base || target > base+uint64(len(log)) {
		return fmt.Errorf("%w: target %d outside log [%d, %d]", ErrBadCut, target, base, base+uint64(len(log)))
	}
	it := logrec.NewIterator(log[:target-base], lsn.LSN(base))
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		end := rec.LSN.Add(int(rec.TotalLen))
		if err := r.apply(rec, uint64(rec.LSN), end); err != nil {
			return err
		}
	}
	return it.Err()
}

// ReplayToPoint reconstructs the committed state of a single log at
// target, an absolute log offset on a record boundary (DB.RestorePoint
// returns one). log holds the raw bytes starting at base; when snap is
// non-nil its pages and stash seed the replay and base must equal
// snap.Cut. The returned store holds exactly the pages of the committed
// state at target.
func ReplayToPoint(snap *logdev.Snapshot, log []byte, base, target uint64) (*storage.Store, error) {
	if snap != nil && snap.Cut != base {
		return nil, fmt.Errorf("%w: log starts at %d, snapshot cut at %d", ErrBadCut, base, snap.Cut)
	}
	r := newReplayer()
	if snap != nil {
		if err := r.loadSnapshot(snap); err != nil {
			return nil, err
		}
	}
	if err := r.replaySingle(log, base, target); err != nil {
		return nil, err
	}
	if err := r.undoStash(target, logrec.HeaderSize); err != nil {
		return nil, err
	}
	return r.store, nil
}

// BuildSnapshot materializes the replay of a single log up to
// base+len(log): page images plus the stash of transactions still in
// flight at the cut. prev (which must cut at base) seeds the replay so
// successive snapshots cost only the new log suffix. The log slice must
// end on a record boundary (the device's durable watermark always
// does); trailing bytes that do not decode are a hard error rather
// than a silent shorter cut.
func BuildSnapshot(prev *logdev.Snapshot, log []byte, base uint64) (*logdev.Snapshot, error) {
	if prev != nil && prev.Cut != base {
		return nil, fmt.Errorf("%w: log starts at %d, previous snapshot cut at %d", ErrBadCut, base, prev.Cut)
	}
	cut := base + uint64(len(log))
	r := newReplayer()
	if prev != nil {
		if err := r.loadSnapshot(prev); err != nil {
			return nil, err
		}
	}
	it := logrec.NewIterator(log, lsn.LSN(base))
	end := lsn.LSN(base)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		end = rec.LSN.Add(int(rec.TotalLen))
		if err := r.apply(rec, uint64(rec.LSN), end); err != nil {
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if uint64(end) != cut {
		return nil, fmt.Errorf("%w: log tail does not reach the cut (%d decoded, cut %d)", ErrBadCut, uint64(end), cut)
	}
	pages, err := r.dumpPages()
	if err != nil {
		return nil, err
	}
	return &logdev.Snapshot{Cut: cut, Pages: pages, Stash: r.dumpStash()}, nil
}

// ReplayMultiToSeq reconstructs the committed state of a partitioned
// log at targetSeq, a global sequence stamp (DB.RestorePoint returns
// one). logs[i] holds partition i's raw bytes starting at bases[i];
// records with a seq above targetSeq are ignored, and the per-lane
// streams are merged by seq — the same total order RecoverMulti
// replays, here applied from genesis on a fresh store.
func ReplayMultiToSeq(logs [][]byte, bases []lsn.LSN, targetSeq uint64) (*storage.Store, error) {
	var recs []logrec.Record
	for i, log := range logs {
		it := logrec.NewIterator(log, bases[i])
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			if uint64(rec.Seq) <= targetSeq {
				recs = append(recs, rec)
			}
		}
		if err := it.Err(); err != nil {
			return nil, fmt.Errorf("recovery: pitr: partition %d: %w", i, err)
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	r := newReplayer()
	for _, rec := range recs {
		seq := uint64(rec.Seq)
		if err := r.apply(rec, seq, lsn.LSN(seq)); err != nil {
			return nil, err
		}
	}
	if err := r.undoStash(targetSeq, 1); err != nil {
		return nil, err
	}
	return r.store, nil
}
