package recovery

import (
	"bytes"
	"testing"

	"aether/internal/logdev"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// storesEqual compares two stores page-image by page-image.
func storesEqual(t *testing.T, want, got *storage.Store, ctx string) {
	t.Helper()
	wantSnap, err := (&replayer{store: want}).dumpPages()
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := (&replayer{store: got}).dumpPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSnap) != len(gotSnap) {
		t.Fatalf("%s: %d pages vs %d", ctx, len(wantSnap), len(gotSnap))
	}
	for i := range wantSnap {
		if wantSnap[i].PID != gotSnap[i].PID {
			t.Fatalf("%s: page %d: pid %d vs %d", ctx, i, wantSnap[i].PID, gotSnap[i].PID)
		}
		if !bytes.Equal(wantSnap[i].Image, gotSnap[i].Image) {
			t.Fatalf("%s: page %d image diverged", ctx, wantSnap[i].PID)
		}
	}
}

// buildPITRLog assembles a log exercising every stash transition:
// committed inserts and sets, a rolled-back transaction (CLR + End),
// and a transaction left in flight at the end. Returns the log and
// every record boundary.
func buildPITRLog(t *testing.T) ([]byte, []uint64) {
	t.Helper()
	var lb logBuilder
	var cuts []uint64
	add := func(rec *logrec.Record) lsn.LSN {
		at, end := lb.add(t, rec)
		cuts = append(cuts, uint64(end))
		return at
	}
	pidA := storage.MakePageID(1, 1)
	pidB := storage.MakePageID(1, 2)

	// txn 1: insert, commit.
	a1 := add(logrec.NewUpdate(1, lsn.Undefined, pidA,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("alpha")}))
	add(logrec.NewCommit(1, a1))
	// txn 2: insert + set, commit later.
	b1 := add(logrec.NewUpdate(2, lsn.Undefined, pidA,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 1, After: []byte("beta")}))
	// txn 3: insert, then rolled back via CLR + End.
	c1 := add(logrec.NewUpdate(3, lsn.Undefined, pidB,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("gamma")}))
	b2 := add(logrec.NewUpdate(2, b1, pidA,
		logrec.UpdatePayload{Op: logrec.OpSet, Slot: 1, Before: []byte("beta"), After: []byte("beta2")}))
	clr := add(logrec.NewCLR(3, c1, pidB, lsn.Undefined,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("gamma")}.Inverse()))
	add(logrec.NewEnd(3, clr))
	add(logrec.NewCommit(2, b2))
	// txn 4: still in flight at the end of the log.
	add(logrec.NewUpdate(4, lsn.Undefined, pidB,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 1, After: []byte("delta")}))
	return lb.buf, cuts
}

// TestReplayToPointSnapshotEquivalence is the PITR correctness core:
// for every pair of record boundaries C <= T, restoring to T via a
// snapshot cut at C must equal the full from-genesis replay to T.
func TestReplayToPointSnapshotEquivalence(t *testing.T) {
	log, cuts := buildPITRLog(t)
	bounds := append([]uint64{0}, cuts...)
	for _, target := range bounds {
		full, err := ReplayToPoint(nil, log[:target], 0, target)
		if err != nil {
			t.Fatalf("full replay to %d: %v", target, err)
		}
		for _, cut := range bounds {
			if cut > target {
				break
			}
			snap, err := BuildSnapshot(nil, log[:cut], 0)
			if err != nil {
				t.Fatalf("BuildSnapshot at %d: %v", cut, err)
			}
			if snap.Cut != cut {
				t.Fatalf("BuildSnapshot cut = %d, want %d", snap.Cut, cut)
			}
			chained, err := ReplayToPoint(snap, log[cut:target], cut, target)
			if err != nil {
				t.Fatalf("chained replay %d -> %d: %v", cut, target, err)
			}
			storesEqual(t, full, chained, "snapshot at "+itoa(cut)+" to "+itoa(target))
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestBuildSnapshotIncremental: chaining snapshots cut by cut must
// produce the same materialized object as one build from genesis.
func TestBuildSnapshotIncremental(t *testing.T) {
	log, cuts := buildPITRLog(t)
	var prev *logdev.Snapshot
	var base uint64
	for _, cut := range cuts {
		chained, err := BuildSnapshot(prev, log[base:cut], base)
		if err != nil {
			t.Fatalf("incremental snapshot at %d: %v", cut, err)
		}
		direct, err := BuildSnapshot(nil, log[:cut], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(logdev.EncodeSnapshot(chained), logdev.EncodeSnapshot(direct)) {
			t.Fatalf("snapshot at %d: incremental and direct builds diverge", cut)
		}
		prev, base = chained, cut
	}
}

// TestReplayToPointRollsBackInflight: a target before a transaction's
// commit record must not show its updates — even when they are durable
// in the log — and a target after must.
func TestReplayToPointRollsBackInflight(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	uAt, afterUpdate := lb.add(t, logrec.NewUpdate(9, lsn.Undefined, pid,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("v")}))
	_, afterCommit := lb.add(t, logrec.NewCommit(9, uAt))

	st, err := ReplayToPoint(nil, lb.buf[:afterUpdate], 0, uint64(afterUpdate))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mustPage(t, st, pid).Get(0); err == nil {
		t.Fatal("uncommitted insert visible before its commit point")
	}
	st, err = ReplayToPoint(nil, lb.buf, 0, uint64(afterCommit))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mustPage(t, st, pid).Get(0); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("committed insert missing after its commit point: %q %v", got, err)
	}
}

// TestReplayMultiToSeq: partitioned lanes merge by global seq, records
// stamped after the target are ignored, and a transaction whose commit
// lies beyond the target is rolled back.
func TestReplayMultiToSeq(t *testing.T) {
	pidA := storage.MakePageID(1, 1)
	pidB := storage.MakePageID(1, 2)
	stamp := func(rec *logrec.Record, seq uint32) *logrec.Record {
		rec.Seq = seq
		return rec
	}
	var lane0, lane1 logBuilder
	aAt, _ := lane0.add(t, stamp(logrec.NewUpdate(1, lsn.Undefined, pidA,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("a")}), 1))
	bAt, _ := lane1.add(t, stamp(logrec.NewUpdate(2, lsn.Undefined, pidB,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("b")}), 2))
	lane0.add(t, stamp(logrec.NewCommit(1, aAt), 3))
	lane1.add(t, stamp(logrec.NewCommit(2, bAt), 5))

	logs := [][]byte{lane0.buf, lane1.buf}
	bases := []lsn.LSN{0, 0}

	// At seq 4: txn 1 committed, txn 2's commit (seq 5) is beyond.
	st, err := ReplayMultiToSeq(logs, bases, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mustPage(t, st, pidA).Get(0); err != nil || !bytes.Equal(got, []byte("a")) {
		t.Fatalf("committed lane-0 insert missing at seq 4: %q %v", got, err)
	}
	if _, err := mustPage(t, st, pidB).Get(0); err == nil {
		t.Fatal("lane-1 insert visible though its commit is beyond the target")
	}

	// At seq 5: both committed.
	st, err = ReplayMultiToSeq(logs, bases, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mustPage(t, st, pidB).Get(0); err != nil || !bytes.Equal(got, []byte("b")) {
		t.Fatalf("committed lane-1 insert missing at seq 5: %q %v", got, err)
	}
}
