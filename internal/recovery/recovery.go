// Package recovery implements ARIES-style restart recovery over the
// Aether log: analysis from the last fuzzy checkpoint, redo from the
// dirty-page table's minimum recLSN, and undo of loser transactions with
// compensation log records, so recovery itself is crash-tolerant and can
// be repeated any number of times.
//
// The interplay with Early Lock Release is where the paper's §3.1
// conditions become code: a transaction whose commit record is durable is
// a winner even though it released its locks long before the flush; one
// whose commit record was lost with the unflushed tail is a loser and is
// rolled back — and by condition 1 (serial log), every transaction that
// depended on it committed later in LSN order, so its commit record was
// lost too and it rolls back as well. No dependency tracking is needed.
//
// A log whose dead prefix was truncated (Options.Base > 0) is the normal
// bounded-log state, not corruption: the checkpointer only releases log
// below min(checkpoint begin, oldest active-txn first LSN, oldest
// dirty-page recLSN), so analysis starts at the surviving checkpoint,
// redo clamps to the base (pages dirtied below it were archived first),
// and undo chains never reach below it.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"aether/internal/core"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// Options configures a recovery pass.
type Options struct {
	// Log is the durable log image (from logdev.ReadTail), whose first
	// byte sits at LSN Base.
	Log []byte
	// Base is the LSN of Log[0] — the device's truncation horizon. A
	// non-zero base is the normal state of a log whose dead prefix was
	// recycled: the truncation rule (release ≤ min of checkpoint begin,
	// oldest active-transaction first LSN, oldest dirty-page recLSN)
	// guarantees everything below it is already archived or finished.
	Base lsn.LSN
	// Store is the page store. With an archive backend attached
	// (storage.Store.SetBackend) it starts empty and faults pages in
	// lazily as redo and undo touch them — restart memory is O(working
	// set); a store pre-loaded via LoadArchive recovers identically.
	Store *storage.Store
	// Appender, if non-nil, receives the CLRs and end records that undo
	// generates, making recovery itself recoverable. It must append into
	// a log whose base LSN is Base+len(Log). If nil, undo applies
	// inverses without logging (single-crash recovery only).
	Appender *core.Appender
	// VerifyArchive, if set, asserts that every page already resident in
	// Store when recovery starts carries a pageLSN at or below the
	// durable log's end. The checkpoint sweep and the steal path only
	// archive pages whose pageLSN is durable, so an image from beyond
	// the log is a WAL violation or a corrupt database file — redoing on
	// top of it would silently skip updates. Pages faulted lazily from
	// an attached backend get the same check at fault time (with a WAL
	// attached to the store), so this flag covers only the pre-resident
	// set. Leave unset for stores that were not archive-loaded (pages
	// stamped by unlogged undo legitimately carry synthetic LSNs past
	// the log end).
	VerifyArchive bool
}

// txnStatus is an analysis-phase ATT entry.
type txnStatus struct {
	lastLSN   lsn.LSN
	committed bool
}

// Result reports what recovery did.
type Result struct {
	// CheckpointLSN is the begin LSN of the checkpoint used (Undefined
	// if none was found).
	CheckpointLSN lsn.LSN
	// LogBase is the truncation horizon the durable log started at
	// (0 for a never-truncated log). No pass read below it.
	LogBase lsn.LSN
	// ScannedBytes is how many durable log bytes the analysis pass
	// covered — O(log-since-checkpoint), not O(total-history).
	ScannedBytes int64
	// Scanned is the number of durable records read.
	Scanned int
	// RedoApplied is the number of updates reapplied.
	RedoApplied int
	// Winners are transaction IDs whose commit records were durable.
	Winners []uint64
	// Losers are transaction IDs rolled back.
	Losers []uint64
	// UndoApplied is the number of updates rolled back.
	UndoApplied int
	// ArchivedPages is how many pages recovery served from the archive
	// (the database file): pages resident before the passes ran plus
	// pages faulted in from the backend during them.
	ArchivedPages int
}

// Recover runs the three ARIES passes. It is idempotent: recovering an
// already-recovered (store, log) pair is a no-op beyond re-verification.
func Recover(opts Options) (*Result, error) {
	if opts.Store == nil {
		return nil, errors.New("recovery: Store is required")
	}
	base := opts.Base
	res := &Result{CheckpointLSN: lsn.Undefined, LogBase: base}

	// ---- Pass 0: verify the pre-resident pages against the log. ----
	// (Slot checksums were already verified by the archive's read path;
	// this is the cross-check between the two durable artifacts. Pages
	// faulted lazily from a backend during redo/undo get the same check
	// at fault time.)
	logEnd := base.Add(len(opts.Log))
	res.ArchivedPages = len(opts.Store.PageIDs())
	faults0 := opts.Store.CacheStats().Misses
	if opts.VerifyArchive {
		for _, pid := range opts.Store.PageIDs() {
			p, err := opts.Store.Get(pid)
			if err != nil {
				return nil, fmt.Errorf("recovery: verify: %w", err)
			}
			if p == nil {
				continue
			}
			pl := p.LSN()
			p.Unpin()
			if pl > logEnd {
				return nil, fmt.Errorf(
					"recovery: archived page %d has pageLSN %v beyond the durable log end %v (archive ahead of log: WAL violation or corruption)",
					pid, pl, logEnd)
			}
		}
	}
	// Count the lazily faulted pages into ArchivedPages on the way out.
	defer func() {
		res.ArchivedPages += int(opts.Store.CacheStats().Misses - faults0)
	}()

	// ---- Pass 0: locate the last complete checkpoint. ----
	ckptBegin, ckptPayload := findLastCheckpoint(opts.Log, base)
	res.CheckpointLSN = ckptBegin

	// ---- Pass 1: analysis. ----
	att := make(map[uint64]*txnStatus)
	dpt := make(map[uint64]lsn.LSN)
	scanFrom := base
	if ckptBegin.Valid() {
		scanFrom = lsn.Max(ckptBegin, base)
		for _, e := range ckptPayload.ActiveTxns {
			att[e.TxnID] = &txnStatus{lastLSN: e.LastLSN, committed: e.Precommitted}
		}
		for _, e := range ckptPayload.DirtyPages {
			dpt[e.PageID] = e.RecLSN
		}
	}
	res.ScannedBytes = int64(len(opts.Log)) - int64(scanFrom.Sub(base))
	it := logrec.NewIterator(opts.Log[scanFrom.Sub(base):], scanFrom)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		res.Scanned++
		switch rec.Kind {
		case logrec.KindUpdate, logrec.KindCLR:
			st := att[rec.TxnID]
			if st == nil {
				st = &txnStatus{}
				att[rec.TxnID] = st
			}
			st.lastLSN = rec.LSN
			if _, ok := dpt[rec.PageID]; !ok {
				dpt[rec.PageID] = rec.LSN
			}
		case logrec.KindCommit:
			st := att[rec.TxnID]
			if st == nil {
				st = &txnStatus{}
				att[rec.TxnID] = st
			}
			st.lastLSN = rec.LSN
			st.committed = true
		case logrec.KindAbort:
			st := att[rec.TxnID]
			if st == nil {
				st = &txnStatus{}
				att[rec.TxnID] = st
			}
			st.lastLSN = rec.LSN
		case logrec.KindEnd:
			delete(att, rec.TxnID)
		case logrec.KindCheckpointBegin, logrec.KindCheckpointEnd, logrec.KindPad:
			// No analysis effect.
		}
	}
	// A gap mid-log (not just a truncated tail) would mean corruption
	// before the durable horizon; report it rather than recover wrongly.
	if err := it.Err(); err != nil && int(scanFrom.Sub(base))+it.Offset() < len(opts.Log) {
		return nil, fmt.Errorf("recovery: analysis: %w", err)
	}

	// ---- Pass 2: redo. ----
	redoFrom := lsn.Undefined
	for _, rec := range dpt {
		if rec < redoFrom {
			redoFrom = rec
		}
	}
	if redoFrom.Valid() && redoFrom < base {
		// recLSNs below the truncation horizon belong to pages the
		// checkpointer archived before releasing the log behind them;
		// their images are in the archive, so redo starts at the base.
		redoFrom = base
	}
	if redoFrom.Valid() && redoFrom.Sub(base) < uint64(len(opts.Log)) {
		it := logrec.NewIterator(opts.Log[redoFrom.Sub(base):], redoFrom)
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			if rec.Kind != logrec.KindUpdate && rec.Kind != logrec.KindCLR {
				continue
			}
			recLSN, inDPT := dpt[rec.PageID]
			if !inDPT || rec.LSN < recLSN {
				continue
			}
			// Lazy fault-in: a page archived before the crash (including
			// one stolen by the eviction path) comes back from the
			// backend here; a page never archived materializes empty.
			page, err := opts.Store.GetOrCreate(rec.PageID)
			if err != nil {
				return nil, fmt.Errorf("recovery: redo fault at %v: %w", rec.LSN, err)
			}
			// Pages carry the END LSN of the last applied record, so the
			// redo test is a strict comparison with no LSN-0 ambiguity:
			// skip iff the page already reflects the log past this record's
			// start.
			if page.LSN() > rec.LSN {
				page.Unpin()
				continue
			}
			up, err := logrec.DecodeUpdate(rec.Payload)
			if err != nil {
				page.Unpin()
				return nil, fmt.Errorf("recovery: redo decode at %v: %w", rec.LSN, err)
			}
			err = page.Apply(up, rec.LSN.Add(int(rec.TotalLen)))
			if err == nil {
				// Mark dirty before unpinning: a page must never be
				// evictable while modified but not yet in the DPT.
				opts.Store.MarkDirty(rec.PageID, rec.LSN)
			}
			page.Unpin()
			if err != nil {
				return nil, fmt.Errorf("recovery: redo apply at %v: %w", rec.LSN, err)
			}
			res.RedoApplied++
		}
	}

	// ---- Pass 3: undo losers. ----
	var losers []uint64
	for id, st := range att {
		if st.committed {
			res.Winners = append(res.Winners, id)
		} else {
			losers = append(losers, id)
		}
	}
	sort.Slice(res.Winners, func(i, j int) bool { return res.Winners[i] < res.Winners[j] })
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	res.Losers = append(res.Losers, losers...)

	// Synthetic LSNs for unlogged undo keep pageLSN monotonic.
	synth := base.Add(len(opts.Log))
	undoChain := make(map[uint64]lsn.LSN, len(losers))
	for _, id := range losers {
		undoChain[id] = att[id].lastLSN
	}
	clrPrev := make(map[uint64]lsn.LSN, len(losers))
	for _, id := range losers {
		clrPrev[id] = att[id].lastLSN
	}

	for len(undoChain) > 0 {
		// ARIES undoes the record with the largest LSN across all losers.
		var id uint64
		max := lsn.Undefined
		for tid, l := range undoChain {
			if max == lsn.Undefined || l > max {
				max, id = l, tid
			}
		}
		cur := undoChain[id]
		if !cur.Valid() {
			// Chain exhausted: finish the loser with an end record.
			if opts.Appender != nil {
				endRec := logrec.NewEnd(id, clrPrev[id])
				if _, _, err := opts.Appender.Append(endRec); err != nil {
					return nil, fmt.Errorf("recovery: undo end: %w", err)
				}
			}
			delete(undoChain, id)
			continue
		}
		rec, err := recordAt(opts.Log, base, cur)
		if err != nil {
			return nil, fmt.Errorf("recovery: undo read at %v: %w", cur, err)
		}
		switch rec.Kind {
		case logrec.KindUpdate:
			up, err := logrec.DecodeUpdate(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("recovery: undo decode at %v: %w", cur, err)
			}
			inv := up.Inverse()
			var clrStart, clrEnd lsn.LSN
			if opts.Appender != nil {
				clr := logrec.NewCLR(id, clrPrev[id], rec.PageID, rec.PrevLSN, inv)
				at, end, err := opts.Appender.Append(clr)
				if err != nil {
					return nil, fmt.Errorf("recovery: undo CLR: %w", err)
				}
				clrStart, clrEnd = at, end
				clrPrev[id] = at
			} else {
				clrStart = synth
				synth += logrec.HeaderSize
				clrEnd = synth
			}
			page, err := opts.Store.GetOrCreate(rec.PageID)
			if err != nil {
				return nil, fmt.Errorf("recovery: undo fault at %v: %w", cur, err)
			}
			applyErr := page.Apply(inv, clrEnd)
			if applyErr == nil {
				opts.Store.MarkDirty(rec.PageID, clrStart)
			}
			page.Unpin()
			if applyErr != nil {
				return nil, fmt.Errorf("recovery: undo apply at %v: %w", cur, applyErr)
			}
			res.UndoApplied++
			undoChain[id] = rec.PrevLSN
		case logrec.KindCLR:
			// Already compensated: skip to what the CLR says is next.
			undoChain[id] = rec.UndoNext()
		default:
			// Abort/commit markers: follow the backchain.
			undoChain[id] = rec.PrevLSN
		}
	}
	return res, nil
}

// recordAt decodes the record whose LSN (byte offset) is at, in a log
// whose first byte sits at base.
func recordAt(log []byte, base, at lsn.LSN) (logrec.Record, error) {
	if at < base {
		return logrec.Record{}, fmt.Errorf("recovery: LSN %v below truncation base %v", at, base)
	}
	if at.Sub(base) >= uint64(len(log)) {
		return logrec.Record{}, fmt.Errorf("recovery: LSN %v beyond durable log (%d bytes from %v)", at, len(log), base)
	}
	rec, _, err := logrec.Decode(log[at.Sub(base):])
	if err != nil {
		return logrec.Record{}, err
	}
	rec.LSN = at
	return rec, nil
}

// findLastCheckpoint scans the durable log for the newest complete
// checkpoint and returns its begin LSN and decoded payload.
func findLastCheckpoint(log []byte, base lsn.LSN) (lsn.LSN, logrec.CheckpointPayload) {
	begin := lsn.Undefined
	var payload logrec.CheckpointPayload
	it := logrec.NewIterator(log, base)
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if rec.Kind != logrec.KindCheckpointEnd {
			continue
		}
		p, err := logrec.DecodeCheckpoint(rec.Payload)
		if err != nil {
			continue // damaged checkpoint: ignore, keep the previous one
		}
		begin = lsn.LSN(rec.Aux)
		payload = p
	}
	return begin, payload
}
