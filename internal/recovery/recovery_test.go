package recovery

import (
	"testing"

	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// logBuilder assembles a synthetic durable log image.
type logBuilder struct {
	buf []byte
}

func (b *logBuilder) add(t *testing.T, rec *logrec.Record) (at, end lsn.LSN) {
	t.Helper()
	at = lsn.LSN(len(b.buf))
	enc, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b.buf = append(b.buf, enc...)
	return at, lsn.LSN(len(b.buf))
}

// mustPage fetches pid (unpinned immediately: these tests are
// single-threaded and never evict).
func mustPage(t *testing.T, st *storage.Store, pid uint64) *storage.Page {
	t.Helper()
	p, err := st.Get(pid)
	if err != nil {
		t.Fatalf("get page %d: %v", pid, err)
	}
	if p == nil {
		t.Fatalf("page %d not rebuilt", pid)
	}
	p.Unpin()
	return p
}

func TestRecoverEmptyLog(t *testing.T) {
	st := storage.NewStore()
	res, err := Recover(Options{Log: nil, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 0 || len(res.Winners) != 0 || len(res.Losers) != 0 {
		t.Fatalf("empty log recovery: %+v", res)
	}
}

func TestRecoverRequiresStore(t *testing.T) {
	if _, err := Recover(Options{}); err == nil {
		t.Fatal("nil store must be rejected")
	}
}

func TestRecoverRedoWinner(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("hello")}
	uAt, _ := lb.add(t, logrec.NewUpdate(7, lsn.Undefined, pid, up))
	lb.add(t, logrec.NewCommit(7, uAt))

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.RedoApplied != 1 || len(res.Winners) != 1 || res.Winners[0] != 7 {
		t.Fatalf("result: %+v", res)
	}
	got, err := mustPage(t, st, pid).Get(0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("row: %q %v", got, err)
	}
}

func TestRecoverUndoLoser(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	// Winner inserts the row; loser overwrites it; no commit for loser.
	ins := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("base")}
	insAt, _ := lb.add(t, logrec.NewUpdate(1, lsn.Undefined, pid, ins))
	lb.add(t, logrec.NewCommit(1, insAt))
	set := logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("base"), After: []byte("evil")}
	lb.add(t, logrec.NewUpdate(2, lsn.Undefined, pid, set))

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 1 || len(res.Losers) != 1 || res.Losers[0] != 2 {
		t.Fatalf("result: %+v", res)
	}
	if res.UndoApplied != 1 {
		t.Fatalf("undo applied: %d", res.UndoApplied)
	}
	got, err := mustPage(t, st, pid).Get(0)
	if err != nil || string(got) != "base" {
		t.Fatalf("row after undo: %q %v", got, err)
	}
}

func TestRecoverCLRSkipsAlreadyUndone(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	// Loser: insert, set, then a CLR compensating the set (partial
	// rollback before crash). Recovery must undo only the insert.
	ins := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("v1")}
	insAt, _ := lb.add(t, logrec.NewUpdate(5, lsn.Undefined, pid, ins))
	set := logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("v1"), After: []byte("v2")}
	setAt, _ := lb.add(t, logrec.NewUpdate(5, insAt, pid, set))
	lb.add(t, logrec.NewCLR(5, setAt, pid, insAt, set.Inverse()))

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// Redo replays insert, set, clr (page = "v1"); undo compensates just
	// the insert (CLR's UndoNext pointed at it).
	if res.UndoApplied != 1 {
		t.Fatalf("undo applied: %d, want 1", res.UndoApplied)
	}
	if _, err := mustPage(t, st, pid).Get(0); err == nil {
		t.Fatal("loser's insert survived")
	}
}

func TestRecoverUsesCheckpointATT(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("x")}
	uAt, _ := lb.add(t, logrec.NewUpdate(3, lsn.Undefined, pid, up))

	// Checkpoint captures txn 3 as active with its lastLSN, and the DPT.
	beginAt, _ := lb.add(t, &logrec.Record{Header: logrec.Header{Kind: logrec.KindCheckpointBegin}})
	payload := logrec.CheckpointPayload{
		ActiveTxns: []logrec.TxnTableEntry{{TxnID: 3, LastLSN: uAt}},
		DirtyPages: []logrec.DirtyPageEntry{{PageID: pid, RecLSN: uAt}},
	}
	lb.add(t, &logrec.Record{
		Header:  logrec.Header{Kind: logrec.KindCheckpointEnd, Aux: uint64(beginAt)},
		Payload: payload.Encode(nil),
	})

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointLSN != beginAt {
		t.Fatalf("checkpoint LSN %v, want %v", res.CheckpointLSN, beginAt)
	}
	// Txn 3 never committed: the checkpoint's ATT entry makes it a loser
	// even though its update is before the checkpoint.
	if len(res.Losers) != 1 || res.Losers[0] != 3 {
		t.Fatalf("losers: %v", res.Losers)
	}
	if _, err := mustPage(t, st, pid).Get(0); err == nil {
		t.Fatal("pre-checkpoint loser update survived")
	}
}

func TestRecoverPrecommittedInCheckpointIsWinner(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("keep")}
	uAt, _ := lb.add(t, logrec.NewUpdate(9, lsn.Undefined, pid, up))
	cAt, _ := lb.add(t, logrec.NewCommit(9, uAt))
	// Checkpoint after the commit record but before the end record: the
	// ATT entry carries Precommitted=true.
	beginAt, _ := lb.add(t, &logrec.Record{Header: logrec.Header{Kind: logrec.KindCheckpointBegin}})
	payload := logrec.CheckpointPayload{
		ActiveTxns: []logrec.TxnTableEntry{{TxnID: 9, LastLSN: cAt, Precommitted: true}},
		DirtyPages: []logrec.DirtyPageEntry{{PageID: pid, RecLSN: uAt}},
	}
	lb.add(t, &logrec.Record{
		Header:  logrec.Header{Kind: logrec.KindCheckpointEnd, Aux: uint64(beginAt)},
		Payload: payload.Encode(nil),
	})

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 1 || res.Winners[0] != 9 || len(res.Losers) != 0 {
		t.Fatalf("result: winners=%v losers=%v", res.Winners, res.Losers)
	}
	got, err := mustPage(t, st, pid).Get(0)
	if err != nil || string(got) != "keep" {
		t.Fatalf("winner's row: %q %v", got, err)
	}
}

func TestRecoverTruncatedTailIsCleanEnd(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("ok")}
	uAt, _ := lb.add(t, logrec.NewUpdate(1, lsn.Undefined, pid, up))
	lb.add(t, logrec.NewCommit(1, uAt))
	// Torn tail: half a record.
	partial, _ := logrec.NewCommit(2, lsn.Undefined).Encode()
	lb.buf = append(lb.buf, partial[:20]...)

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 1 {
		t.Fatalf("winners: %v", res.Winners)
	}
}

func TestRecoverIdempotent(t *testing.T) {
	var lb logBuilder
	pid := storage.MakePageID(1, 1)
	up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("x")}
	uAt, _ := lb.add(t, logrec.NewUpdate(1, lsn.Undefined, pid, up))
	lb.add(t, logrec.NewCommit(1, uAt))

	st := storage.NewStore()
	if _, err := Recover(Options{Log: lb.buf, Store: st}); err != nil {
		t.Fatal(err)
	}
	res2, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RedoApplied != 0 {
		t.Fatalf("second recovery redid %d records", res2.RedoApplied)
	}
	got, err := mustPage(t, st, pid).Get(0)
	if err != nil || string(got) != "x" {
		t.Fatalf("row: %q %v", got, err)
	}
}

func TestRecoverMultipleLosersInterleaved(t *testing.T) {
	var lb logBuilder
	p1 := storage.MakePageID(1, 1)
	p2 := storage.MakePageID(1, 2)
	// Two losers interleaved across two pages; undo must process the
	// combined chain in reverse LSN order.
	a1, _ := lb.add(t, logrec.NewUpdate(10, lsn.Undefined, p1,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("a1")}))
	b1, _ := lb.add(t, logrec.NewUpdate(11, lsn.Undefined, p2,
		logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("b1")}))
	lb.add(t, logrec.NewUpdate(10, a1, p1,
		logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("a1"), After: []byte("a2")}))
	lb.add(t, logrec.NewUpdate(11, b1, p2,
		logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("b1"), After: []byte("b2")}))

	st := storage.NewStore()
	res, err := Recover(Options{Log: lb.buf, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losers) != 2 || res.UndoApplied != 4 {
		t.Fatalf("result: %+v", res)
	}
	if _, err := mustPage(t, st, p1).Get(0); err == nil {
		t.Fatal("loser 10 insert survived")
	}
	if _, err := mustPage(t, st, p2).Get(0); err == nil {
		t.Fatal("loser 11 insert survived")
	}
}
