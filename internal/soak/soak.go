// Package soak is the crash-storm harness: it runs a seeded workload
// against a full engine stack (segmented log + watermark + pagefile +
// double-write journal + cold-store archiver) built over a
// fault-injecting filesystem (vfs.FaultFS), power-cuts the filesystem
// at a randomized fault point each cycle — mid group-commit, mid
// journal sweep, mid watermark flip, mid archive copy, mid
// steal/cleaner writeback — recovers, reopens, and verifies the
// recovered state against an in-memory model of committed operations.
// Hundreds of crash-recover cycles per run, every one checked.
//
// The model accepts exactly two outcomes per cycle: the committed
// state, or the committed state plus the single in-doubt transaction
// (the one whose CommitSync returned an error because the cut landed
// inside its group-commit flush — its commit record may or may not
// have reached stable storage) applied atomically. Anything else —
// a lost committed transaction, a partially applied one, a resurrected
// deleted key, an unopenable database — is a divergence, and the run
// reports the seed that reproduces its fault schedule.
package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
	"aether/internal/txn"
	"aether/internal/vfs"
)

// FaultPoint names one class of randomized power-cut site.
type FaultPoint string

// The fault points a cycle can arm, each cutting power at the Nth
// matching filesystem operation (N seeded per cycle).
const (
	// FaultGroupCommit cuts during a log-segment fsync — the middle of
	// a group-commit flush (invariant 1/2 territory: the watermark may
	// not yet cover the new bytes, so they are a discardable torn tail).
	FaultGroupCommit FaultPoint = "group-commit"
	// FaultJournal cuts during a write or fsync of the double-write
	// journal — before the batch's commit point, so the pagefile must
	// still hold the previous fully-applied batch (invariant 4).
	FaultJournal FaultPoint = "journal"
	// FaultPagefile cuts during an in-place pagefile write or fsync —
	// mid checkpoint sweep, demand steal, or cleaner writeback, after
	// the journal committed; replay must repair the torn slots
	// (invariant 4/5a).
	FaultPagefile FaultPoint = "pagefile"
	// FaultWatermark cuts during a MANIFEST.durable slot write — the
	// ping-pong protocol must leave the other slot valid (invariant 2).
	FaultWatermark FaultPoint = "watermark"
	// FaultManifest cuts during the MANIFEST tmp→install rename — the
	// old manifest must survive until the new one's dir fsync
	// (invariant 3).
	FaultManifest FaultPoint = "manifest"
	// FaultArchive cuts during a cold-store segment copy (write or
	// install rename) — the hot segment must stay parked until the
	// archive copy is fully durable (invariant 5/5b).
	FaultArchive FaultPoint = "archive"
	// FaultPartitionFlush (partitioned stacks only, Config.LogPartitions
	// >= 2) cuts power during exactly one randomly chosen partition's
	// segment fsync while the other partitions keep hardening — the
	// Appendix A.5 scenario. The flush-dependency limiter must have kept
	// every surviving log free of records whose cross-log predecessor
	// died with the cut partition's tail, recovery's merge must verify
	// that (ErrDependencyViolated otherwise), and the model checker
	// still accepts only committed-state or committed-state plus the one
	// in-doubt transaction.
	FaultPartitionFlush FaultPoint = "partition-flush"
	// FaultRemoteArchive (opt-in: arming it swaps the stack's cold store
	// from the DirArchiver to the cloud tier — every lane's
	// RemoteArchiver over one MemObjectStore that persists across power
	// cuts, because it is the cloud). Each armed cycle either tears an
	// upload mid-object with a simultaneous local power cut (the machine
	// dies while the bytes are in flight; the store keeps a torn prefix
	// the next incarnation must detect and re-ship), or opens an outage
	// window for the rest of the cycle (every upload fails, segments stay
	// parked under the archive-before-recycle rule) closed by the
	// end-of-cycle cut. The model checker accepts the same two outcomes
	// as every other point.
	FaultRemoteArchive FaultPoint = "remote-archive"
)

// AllFaultPoints is the full single-log profile, in the order cycles
// rotate through when picking randomly.
var AllFaultPoints = []FaultPoint{
	FaultGroupCommit, FaultJournal, FaultPagefile,
	FaultWatermark, FaultManifest, FaultArchive,
}

// AllPartitionFaultPoints is the full profile for a partitioned stack
// (Config.LogPartitions >= 2): everything above plus the
// one-partition-cut point.
var AllPartitionFaultPoints = append(AllFaultPoints[:len(AllFaultPoints):len(AllFaultPoints)], FaultPartitionFlush)

// OptInFaultPoints lists the points excluded from the default profiles
// because arming them reshapes the stack: remote-archive replaces the
// cold-store DirArchiver with the cloud tier for the whole run.
var OptInFaultPoints = []FaultPoint{FaultRemoteArchive}

// errCloudOutage is the error the cloud's outage window injects.
var errCloudOutage = errors.New("soak: cloud outage window")

// Config parameterizes a soak run. Zero values pick usable defaults.
type Config struct {
	// Seed drives everything random: the workload, the fault point and
	// trigger count of every cycle, and sector-tearing decisions. A
	// failing run reports its seed; re-running with it reproduces the
	// same fault schedule.
	Seed int64
	// Cycles is how many crash-recover rounds to run (default 50).
	Cycles int
	// TxnsPerCycle bounds the committed transactions per cycle before
	// the harness force-cuts (default 40).
	TxnsPerCycle int
	// Keys is the key-space size (default 48; small enough that
	// updates and deletes hit existing rows constantly).
	Keys int
	// Points is the fault profile: the cut sites cycles rotate
	// through. Empty means AllFaultPoints (plus FaultPartitionFlush
	// when LogPartitions >= 2).
	Points []FaultPoint
	// LogPartitions, if >= 2, runs the soak against a partitioned log:
	// N segmented devices (p0/…pN-1 under the log dir, one cold-store
	// lane each) coordinated by a MultiLog, with transactions routed
	// across partitions by txnID so consecutive updates of a page hop
	// logs — maximal cross-log dependency pressure. 0/1 is the original
	// single-log stack.
	LogPartitions int
	// Logf, when non-nil, receives per-cycle progress lines.
	Logf func(format string, args ...any)
}

// Result summarizes a completed soak run.
type Result struct {
	// Cycles is how many crash-recover rounds ran.
	Cycles int
	// Commits is the total committed transactions across all cycles.
	Commits int
	// InDoubt is how many cycles ended with a transaction whose
	// CommitSync errored mid-flush (its outcome was then resolved by
	// reading the recovered state).
	InDoubt int
	// InDoubtSurvived is how many of those in-doubt transactions
	// turned out durable after recovery.
	InDoubtSurvived int
	// Cuts counts power cuts per fault point; the "forced" key counts
	// cycles whose armed trigger never fired and were cut at workload
	// end instead.
	Cuts map[string]int
	// TornTailRepaired totals the torn-tail bytes recovery discarded.
	TornTailRepaired int64
	// JournalReplays counts reopens that replayed a committed
	// double-write journal.
	JournalReplays int
}

// Divergence is the failure report for a cycle whose recovered state
// matched neither accepted outcome. It carries everything needed to
// reproduce: the seed, the cycle, the armed fault, and the tail of the
// filesystem op trace.
type Divergence struct {
	// Seed replays the run's exact fault schedule and workload.
	Seed int64
	// Cycle is the crash-recover round that diverged (counting from 0).
	Cycle int
	// Point is the fault armed for the cycle whose crash the
	// divergence was discovered after.
	Point FaultPoint
	// Diffs lists the mismatches between the model and the recovered
	// state, one per key.
	Diffs []string
	// Trace is the tail of the fault filesystem's op trace leading up
	// to the divergence.
	Trace []vfs.TraceEntry
}

// Error implements error with a replay-ready, diffs-first report.
func (d *Divergence) Error() string {
	msg := fmt.Sprintf("soak: divergence at cycle %d (fault %s): %d diffs (replay with -seed %d)",
		d.Cycle, d.Point, len(d.Diffs), d.Seed)
	for i, diff := range d.Diffs {
		if i == 8 {
			msg += fmt.Sprintf("\n  ... %d more", len(d.Diffs)-i)
			break
		}
		msg += "\n  " + diff
	}
	return msg
}

const (
	soakLogDir     = "/db"
	soakArchiveDir = "/cold"
	soakSegSize    = 4096
	soakCkptBytes  = 8192
	soakCachePages = 8
	soakCleaner    = 4
	soakPrefetch   = 4
	soakValueBytes = 120 // payload per row: enough log volume to churn segments
)

// op is one staged mutation of a workload transaction.
type op struct {
	del bool
	key uint64
	val uint64
}

// engineStack is one open incarnation of the full durable stack.
type engineStack struct {
	dev  *logdev.Segmented   // single-log mode
	devs []*logdev.Segmented // partitioned mode (LogPartitions >= 2)
	pf   *storage.PageFile
	eng  *txn.Engine
	tbl  *txn.Table
}

// partDir is partition i's log directory under the soak log root —
// the same p<i> layout aether.Open uses.
func partDir(i int) string { return fmt.Sprintf("%s/p%d", soakLogDir, i) }

// openStack builds the engine over the fault filesystem exactly as
// aether.Open wires a file-backed segmented database: segmented log +
// watermark, pagefile + journal as the page archive, DirArchiver cold
// store, and the background checkpointer/archiver/cleaner goroutines.
// With parts >= 2 it builds the partitioned stack instead: one
// segmented device and cold-store lane per partition, merged-order
// recovery, transactions routed by txnID. A non-nil cloud replaces the
// DirArchiver cold store with the cloud tier: one RemoteArchiver key
// prefix per lane in the shared object store.
func openStack(fs vfs.FS, parts int, cloud *logdev.MemObjectStore) (*engineStack, error) {
	var (
		dev    *logdev.Segmented
		devs   []*logdev.Segmented
		rc     txn.RestartConfig
		closeD = func() {
			if dev != nil {
				dev.Close()
			}
			for _, d := range devs {
				d.Close()
			}
		}
	)
	if parts >= 2 {
		for i := 0; i < parts; i++ {
			d, err := logdev.OpenSegmentedDirFS(fs, partDir(i), soakSegSize)
			if err != nil {
				closeD()
				return nil, fmt.Errorf("open log partition %d: %w", i, err)
			}
			devs = append(devs, d)
			rc.Devices = append(rc.Devices, d)
		}
		// Route by txnID: the sequential workload's consecutive
		// transactions then land on different logs, so a page's update
		// chain keeps crossing partitions — the A.5 stress pattern.
		n := parts
		rc.RoutePartition = func(txnID uint64, _ uint32) int { return int(txnID % uint64(n)) }
	} else {
		var err error
		dev, err = logdev.OpenSegmentedDirFS(fs, soakLogDir, soakSegSize)
		if err != nil {
			return nil, fmt.Errorf("open log: %w", err)
		}
		rc.Device = dev
	}
	pf, err := storage.OpenPageFileFS(fs, soakLogDir+"/pagefile.db")
	if err != nil {
		closeD()
		return nil, fmt.Errorf("open pagefile: %w", err)
	}
	switch {
	case cloud != nil && parts >= 2:
		for i, d := range devs {
			d.SetArchiver(logdev.NewRemoteArchiver(cloud, fmt.Sprintf("p%d", i), soakSegSize))
		}
	case cloud != nil:
		dev.SetArchiver(logdev.NewRemoteArchiver(cloud, "", soakSegSize))
	case parts >= 2:
		for i, d := range devs {
			arch, err := logdev.OpenDirArchiverFS(fs, fmt.Sprintf("%s/p%d", soakArchiveDir, i))
			if err != nil {
				pf.Close()
				closeD()
				return nil, fmt.Errorf("open archive lane %d: %w", i, err)
			}
			d.SetArchiver(arch)
		}
	default:
		arch, err := logdev.OpenDirArchiverFS(fs, soakArchiveDir)
		if err != nil {
			pf.Close()
			closeD()
			return nil, fmt.Errorf("open archive: %w", err)
		}
		dev.SetArchiver(arch)
	}
	rc.Archive = pf
	rc.LogConfig = core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
	}
	rc.LockConfig = lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true}
	rc.CheckpointEveryBytes = soakCkptBytes
	rc.CachePages = soakCachePages
	rc.CleanerPages = soakCleaner
	rc.CleanerInterval = 500 * time.Microsecond
	rc.PrefetchDepth = soakPrefetch
	eng, _, err := txn.Restart(rc)
	if err != nil {
		pf.Close()
		closeD()
		return nil, fmt.Errorf("restart: %w", err)
	}
	s := &engineStack{dev: dev, devs: devs, pf: pf, eng: eng}
	s.tbl, err = eng.CreateTable("soak", nil)
	if err == nil {
		err = eng.RebuildTables()
	}
	if err != nil {
		s.teardown()
		return nil, fmt.Errorf("rebuild: %w", err)
	}
	return s, nil
}

// repairedTailBytes sums torn-tail repairs across the stack's devices.
func (s *engineStack) repairedTailBytes() int64 {
	if s.dev != nil {
		return s.dev.RepairedTailBytes()
	}
	var total int64
	for _, d := range s.devs {
		total += d.RepairedTailBytes()
	}
	return total
}

// teardown closes the stack, tolerating the error storm a power cut
// leaves behind (every close hits a frozen filesystem).
func (s *engineStack) teardown() {
	s.eng.Close()
	if m := s.eng.Multi(); m != nil {
		m.Close()
	} else {
		s.eng.Log().Close()
	}
	s.pf.Close()
	if s.dev != nil {
		s.dev.Close()
	}
	for _, d := range s.devs {
		d.Close()
	}
}

// armFault installs the cycle's power-cut rule and returns it. after
// is randomized so the cut lands at a different depth of the matching
// operation stream every cycle. With parts >= 2 the log-directory
// fault points target one randomly chosen partition directory —
// vfs.Rule.Dir matches the op's parent directory exactly, and in a
// partitioned layout the segments and MANIFEST live under p<i>, not
// the log root (only pagefile.db and its journal stay at the root).
func armFault(fs *vfs.FaultFS, rng *rand.Rand, point FaultPoint, parts int) int {
	logDir, archDir := soakLogDir, soakArchiveDir
	if parts >= 2 {
		k := rng.Intn(parts)
		logDir = partDir(k)
		archDir = fmt.Sprintf("%s/p%d", soakArchiveDir, k)
	}
	var r vfs.Rule
	switch point {
	case FaultGroupCommit:
		r = vfs.Rule{Op: vfs.OpSync, Dir: logDir, Path: "*.seg", After: rng.Intn(24)}
	case FaultJournal:
		ops := []vfs.Op{vfs.OpWrite, vfs.OpSync}
		r = vfs.Rule{Op: ops[rng.Intn(2)], Dir: soakLogDir, Path: "pagefile.db.journal", After: rng.Intn(4)}
	case FaultPagefile:
		ops := []vfs.Op{vfs.OpWrite, vfs.OpSync}
		r = vfs.Rule{Op: ops[rng.Intn(2)], Dir: soakLogDir, Path: "pagefile.db", After: rng.Intn(6)}
	case FaultWatermark:
		r = vfs.Rule{Op: vfs.OpWrite, Dir: logDir, Path: "MANIFEST.durable", After: rng.Intn(16)}
	case FaultManifest:
		r = vfs.Rule{Op: vfs.OpRename, Dir: logDir, Path: "MANIFEST", After: rng.Intn(3)}
	case FaultArchive:
		ops := []vfs.Op{vfs.OpWrite, vfs.OpRename, vfs.OpSync}
		r = vfs.Rule{Op: ops[rng.Intn(3)], Dir: archDir, After: rng.Intn(4)}
	case FaultPartitionFlush:
		if parts < 2 {
			panic("soak: fault point partition-flush requires LogPartitions >= 2")
		}
		// Cut exactly one partition's group-commit fsync early (small
		// After) while the other partitions keep flushing: the surviving
		// logs race ahead of the dead one, and the dependency limiter is
		// the only thing keeping their durable tails consistent with the
		// merge order.
		r = vfs.Rule{Op: vfs.OpSync, Dir: logDir, Path: "*.seg", After: rng.Intn(8)}
	default:
		panic(fmt.Sprintf("soak: unknown fault point %q", point))
	}
	r.Cut = true
	return fs.AddRule(r)
}

// armRemoteFault arms the cycle's cloud-tier fault: either the next
// upload (at a randomized depth) tears mid-object with a simultaneous
// local power cut — the machine dies while the bytes are in flight and
// the store keeps a torn prefix — or an outage window opens for the
// rest of the cycle, failing every upload so segments stay parked.
func armRemoteFault(cloud *logdev.MemObjectStore, fs *vfs.FaultFS, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		cloud.Arm(logdev.NetFault{TearPutAfter: 1 + rng.Intn(3), OnTear: fs.PowerCut})
	} else {
		cloud.Arm(logdev.NetFault{Outage: errCloudOutage})
	}
}

// applyOps returns model with ops applied (model itself untouched).
func applyOps(model map[uint64]uint64, ops []op) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(model)+len(ops))
	for k, v := range model {
		out[k] = v
	}
	for _, o := range ops {
		if o.del {
			delete(out, o.key)
		} else {
			out[o.key] = o.val
		}
	}
	return out
}

// DiffStates lists the differences between want and got (empty = equal).
// It is exported so other test harnesses (the wire kill test) can reuse
// the same model comparison.
func DiffStates(want, got map[uint64]uint64) []string {
	var diffs []string
	for k, v := range want {
		gv, ok := got[k]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("key %d lost (want value %d)", k, v))
		case gv != v:
			diffs = append(diffs, fmt.Sprintf("key %d: value %d, want %d", k, gv, v))
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("key %d resurrected (value %d, want absent)", k, v))
		}
	}
	return diffs
}

// readState scans the recovered table into a key→value map.
func readState(s *engineStack, maxKey uint64) (map[uint64]uint64, error) {
	ag := s.eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	out := make(map[uint64]uint64)
	err := tx.Scan(s.tbl, 0, maxKey, func(key uint64, row []byte) bool {
		out[key] = rowValue(row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, tx.Commit(txn.CommitSync, nil)
}

// soakRow encodes a row: 8-byte little-endian key (the index-rebuild
// convention), 8-byte value, then deterministic filler for log volume.
func soakRow(key, val uint64) []byte {
	b := make([]byte, 16+soakValueBytes)
	putU64(b[0:8], key)
	putU64(b[8:16], val)
	for i := range b[16:] {
		b[16+i] = byte(val + uint64(i))
	}
	return b
}

func rowValue(row []byte) uint64 {
	if len(row) < 16 {
		return 0
	}
	return getU64(row[8:16])
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// runWorkload runs seeded transactions until the cycle's budget is
// spent or an injected fault surfaces. It returns the number of
// successful commits and the ops of the in-doubt transaction (non-nil
// only when CommitSync itself errored — the one transaction whose
// outcome the cut left undecided), and updates model in place with
// every committed transaction.
func runWorkload(s *engineStack, rng *rand.Rand, model map[uint64]uint64, cfg Config) (commits int, inDoubt []op) {
	ag := s.eng.NewAgent()
	defer ag.Close()
	for t := 0; t < cfg.TxnsPerCycle; t++ {
		tx := ag.Begin()
		nOps := 1 + rng.Intn(3)
		staged := make([]op, 0, nOps)
		view := applyOps(model, nil)
		opErr := false
		for i := 0; i < nOps; i++ {
			key := uint64(1 + rng.Intn(cfg.Keys))
			_, exists := view[key]
			var o op
			var err error
			switch {
			case !exists:
				o = op{key: key, val: rng.Uint64() % 1_000_000}
				err = tx.Insert(s.tbl, key, soakRow(key, o.val))
			case rng.Intn(4) == 0:
				o = op{key: key, del: true}
				err = tx.Delete(s.tbl, key)
			default:
				o = op{key: key, val: rng.Uint64() % 1_000_000}
				err = tx.Update(s.tbl, key, func([]byte) ([]byte, error) {
					return soakRow(key, o.val), nil
				})
			}
			if err != nil {
				// The op itself failed (the cut reached the log path):
				// this transaction never committed, so it must roll back
				// entirely — nothing in doubt.
				opErr = true
				break
			}
			staged = append(staged, o)
			if o.del {
				delete(view, o.key)
			} else {
				view[o.key] = o.val
			}
		}
		if opErr {
			tx.Abort()
			return commits, nil
		}
		if err := tx.Commit(txn.CommitSync, nil); err != nil {
			// CommitSync errored: the commit record may or may not be
			// durable. Exactly this one transaction is in doubt — the
			// workload is sequential, so no other commit was in flight.
			return commits, staged
		}
		commits++
		for _, o := range staged {
			if o.del {
				delete(model, o.key)
			} else {
				model[o.key] = o.val
			}
		}
	}
	return commits, nil
}

// Run executes the soak: cfg.Cycles rounds of open → verify → seeded
// workload → power cut → recover, all over one FaultFS whose durable
// state persists across cycles. It returns the aggregate result, or a
// *Divergence as the error when a cycle's recovered state matches
// neither the committed model nor the model plus the in-doubt
// transaction.
func Run(cfg Config) (*Result, error) {
	if cfg.Cycles <= 0 {
		cfg.Cycles = 50
	}
	if cfg.TxnsPerCycle <= 0 {
		cfg.TxnsPerCycle = 40
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 48
	}
	if len(cfg.Points) == 0 {
		if cfg.LogPartitions >= 2 {
			cfg.Points = AllPartitionFaultPoints
		} else {
			cfg.Points = AllFaultPoints
		}
	}
	if cfg.LogPartitions < 2 {
		for _, p := range cfg.Points {
			if p == FaultPartitionFlush {
				return nil, fmt.Errorf("soak: fault point %s requires Config.LogPartitions >= 2", p)
			}
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs := vfs.NewFaultFS(cfg.Seed + 1)
	fs.SetTornWrites(true)
	// Arming remote-archive anywhere in the profile puts the whole run on
	// the cloud tier. The store outlives every power cut: whatever was
	// durably uploaded before a cut must still restore afterwards.
	var cloud *logdev.MemObjectStore
	for _, p := range cfg.Points {
		if p == FaultRemoteArchive {
			cloud = logdev.NewMemObjectStore()
			break
		}
	}
	res := &Result{Cuts: make(map[string]int)}
	model := make(map[uint64]uint64)
	var inDoubt []op
	var point FaultPoint

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		s, err := openStack(fs, cfg.LogPartitions, cloud)
		if err != nil {
			return res, &Divergence{
				Seed: cfg.Seed, Cycle: cycle, Point: point,
				Diffs: []string{fmt.Sprintf("reopen failed: %v", err)},
				Trace: tail(fs.Trace(), 40),
			}
		}
		res.TornTailRepaired += s.repairedTailBytes()
		if s.pf.JournalReplayed() > 0 {
			res.JournalReplays++
		}

		// Verify the recovered state against the model — allowing the
		// previous cycle's in-doubt transaction to have landed or not,
		// but only atomically.
		got, err := readState(s, uint64(cfg.Keys)+1)
		if err == nil {
			diffs := DiffStates(model, got)
			if len(diffs) > 0 && inDoubt != nil {
				withTxn := applyOps(model, inDoubt)
				if d2 := DiffStates(withTxn, got); len(d2) < len(diffs) || len(d2) == 0 {
					if len(d2) == 0 {
						res.InDoubtSurvived++
					}
					diffs = d2
					model = withTxn
				}
			}
			if len(diffs) > 0 {
				s.teardown()
				return res, &Divergence{
					Seed: cfg.Seed, Cycle: cycle, Point: point,
					Diffs: diffs, Trace: tail(fs.Trace(), 40),
				}
			}
			model = got // adopt (resolves the in-doubt txn either way)
		} else {
			s.teardown()
			return res, &Divergence{
				Seed: cfg.Seed, Cycle: cycle, Point: point,
				Diffs: []string{fmt.Sprintf("reading recovered state: %v", err)},
				Trace: tail(fs.Trace(), 40),
			}
		}
		inDoubt = nil

		// Arm this cycle's fault and run the workload into it.
		point = cfg.Points[rng.Intn(len(cfg.Points))]
		rule := -1
		var preCloud logdev.ObjectStoreStats
		if point == FaultRemoteArchive {
			preCloud = cloud.Stats()
			armRemoteFault(cloud, fs, rng)
		} else {
			rule = armFault(fs, rng, point, cfg.LogPartitions)
		}
		var commits int
		commits, inDoubt = runWorkload(s, rng, model, cfg)
		res.Commits += commits
		if inDoubt != nil {
			res.InDoubt++
		}

		// If the armed trigger never fired, cut now: every cycle ends in
		// a crash, just not always at the chosen site. A cloud fault
		// "fires" when the network model actually bit an upload; only the
		// torn-upload shape cuts power by itself, so the outage shape (and
		// a cycle whose uploads never ran) is closed with a forced cut.
		var fired bool
		if point == FaultRemoteArchive {
			st := cloud.Stats()
			fired = st.TornPuts > preCloud.TornPuts || st.PutErrors > preCloud.PutErrors
			if st.TornPuts == preCloud.TornPuts {
				fs.PowerCut()
			}
		} else {
			fired = fs.RuleStats()[rule].Fired > 0
			if !fired {
				fs.PowerCut()
			}
		}
		if fired {
			res.Cuts[string(point)]++
		} else {
			res.Cuts["forced"]++
		}
		s.teardown()
		fs.ClearRules()
		if cloud != nil {
			// Outage and tear windows end with the cycle; the cloud itself
			// (and any torn object it kept) persists.
			cloud.Arm(logdev.NetFault{})
		}
		fs.Recover()
		res.Cycles++
		logf("cycle %d: fault=%s fired=%v commits=%d model=%d keys", cycle, point, fired, res.Commits, len(model))
	}

	// Final verification pass: reopen once more and check the end state.
	s, err := openStack(fs, cfg.LogPartitions, cloud)
	if err != nil {
		return res, &Divergence{
			Seed: cfg.Seed, Cycle: cfg.Cycles, Point: point,
			Diffs: []string{fmt.Sprintf("final reopen failed: %v", err)},
			Trace: tail(fs.Trace(), 40),
		}
	}
	defer s.teardown()
	got, err := readState(s, uint64(cfg.Keys)+1)
	if err != nil {
		return res, fmt.Errorf("soak: final read: %w", err)
	}
	diffs := DiffStates(model, got)
	if len(diffs) > 0 && inDoubt != nil {
		if d2 := DiffStates(applyOps(model, inDoubt), got); len(d2) == 0 {
			res.InDoubtSurvived++
			diffs = nil
		}
	}
	if len(diffs) > 0 {
		return res, &Divergence{
			Seed: cfg.Seed, Cycle: cfg.Cycles, Point: point,
			Diffs: diffs, Trace: tail(fs.Trace(), 40),
		}
	}
	return res, nil
}

// tail returns the last n entries of t.
func tail(t []vfs.TraceEntry, n int) []vfs.TraceEntry {
	if len(t) <= n {
		return t
	}
	return t[len(t)-n:]
}

// IsDivergence reports whether err is a soak divergence (as opposed to
// a harness/setup failure).
func IsDivergence(err error) bool {
	var d *Divergence
	return errors.As(err, &d)
}
