package soak

import (
	"testing"
)

// TestSoakShortStorm runs a compact crash storm across the full fault
// profile and requires zero model divergences.
func TestSoakShortStorm(t *testing.T) {
	res, err := Run(Config{
		Seed:         42,
		Cycles:       12,
		TxnsPerCycle: 25,
		Keys:         32,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("soak diverged: %v", err)
	}
	if res.Cycles != 12 {
		t.Fatalf("ran %d cycles, want 12", res.Cycles)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed across the storm")
	}
	total := 0
	for _, n := range res.Cuts {
		total += n
	}
	if total != res.Cycles {
		t.Fatalf("cut counts sum to %d, want one cut per cycle (%d)", total, res.Cycles)
	}
}

// TestSoakSingleFaultPoints pins each fault point individually so a
// regression in one recovery path names its site directly.
func TestSoakSingleFaultPoints(t *testing.T) {
	for _, p := range AllFaultPoints {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Seed:         7,
				Cycles:       4,
				TxnsPerCycle: 20,
				Keys:         24,
				Points:       []FaultPoint{p},
			})
			if err != nil {
				t.Fatalf("soak diverged: %v", err)
			}
			if res.Cycles != 4 {
				t.Fatalf("ran %d cycles, want 4", res.Cycles)
			}
		})
	}
}

// TestSoakPartitionedStorm runs the crash storm against a 3-partition
// log with the full partitioned fault profile — including the
// one-partition-cut point, where a single log's flush dies while the
// others keep hardening. A clean pass means every recovery merged the
// surviving logs without a flush-dependency violation and the model
// checker saw only committed state (plus at most the one in-doubt
// transaction) after every cut.
func TestSoakPartitionedStorm(t *testing.T) {
	res, err := Run(Config{
		Seed:          1234,
		Cycles:        12,
		TxnsPerCycle:  25,
		Keys:          32,
		LogPartitions: 3,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("partitioned soak diverged: %v", err)
	}
	if res.Cycles != 12 {
		t.Fatalf("ran %d cycles, want 12", res.Cycles)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed across the storm")
	}
}

// TestSoakPartitionFlushPoint pins the Appendix A.5 cut site alone:
// every cycle kills exactly one randomly chosen partition's segment
// fsync while the other partitions continue flushing.
func TestSoakPartitionFlushPoint(t *testing.T) {
	res, err := Run(Config{
		Seed:          9,
		Cycles:        8,
		TxnsPerCycle:  20,
		Keys:          24,
		LogPartitions: 3,
		Points:        []FaultPoint{FaultPartitionFlush},
	})
	if err != nil {
		t.Fatalf("partition-flush soak diverged: %v", err)
	}
	if res.Cycles != 8 {
		t.Fatalf("ran %d cycles, want 8", res.Cycles)
	}
	if res.Cuts[string(FaultPartitionFlush)] == 0 {
		t.Fatal("the partition-flush cut never fired; the run is vacuous")
	}
}

// TestSoakRemoteArchivePoint pins the cloud-tier cut site: the cold
// store is the remote archiver over a MemObjectStore that survives
// power cuts, and each armed cycle either tears an upload mid-object
// with a simultaneous local power cut or opens an outage window for the
// rest of the cycle. A clean pass means no committed transaction was
// lost to a torn or failed upload and no parked segment was recycled
// before its bytes were durably in the cloud.
func TestSoakRemoteArchivePoint(t *testing.T) {
	res, err := Run(Config{
		Seed:         11,
		Cycles:       10,
		TxnsPerCycle: 25,
		Keys:         32,
		Points:       []FaultPoint{FaultRemoteArchive, FaultGroupCommit},
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("remote-archive soak diverged: %v", err)
	}
	if res.Cycles != 10 {
		t.Fatalf("ran %d cycles, want 10", res.Cycles)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed across the storm")
	}
}

// TestSoakRemoteArchivePartitioned runs the cloud-tier cut site against
// a 3-partition stack: one remote lane per partition in the shared
// object store.
func TestSoakRemoteArchivePartitioned(t *testing.T) {
	res, err := Run(Config{
		Seed:          23,
		Cycles:        8,
		TxnsPerCycle:  20,
		Keys:          24,
		LogPartitions: 3,
		Points:        []FaultPoint{FaultRemoteArchive, FaultPartitionFlush},
	})
	if err != nil {
		t.Fatalf("partitioned remote-archive soak diverged: %v", err)
	}
	if res.Cycles != 8 {
		t.Fatalf("ran %d cycles, want 8", res.Cycles)
	}
}

// TestSoakPartitionPointRequiresPartitions rejects a profile that arms
// the partition cut on a single-log stack.
func TestSoakPartitionPointRequiresPartitions(t *testing.T) {
	_, err := Run(Config{
		Seed:   1,
		Cycles: 1,
		Points: []FaultPoint{FaultPartitionFlush},
	})
	if err == nil {
		t.Fatal("partition-flush accepted without LogPartitions")
	}
}

// TestDiffStates pins the model comparator: lost, changed, and
// resurrected keys must all surface as distinct diffs.
func TestDiffStates(t *testing.T) {
	want := map[uint64]uint64{1: 10, 2: 20, 3: 30}
	got := map[uint64]uint64{1: 10, 2: 99, 4: 40}
	diffs := DiffStates(want, got)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3 (changed, lost, resurrected): %v", len(diffs), diffs)
	}
	if len(DiffStates(want, want)) != 0 {
		t.Fatal("identical states reported diffs")
	}
}

// TestApplyOpsAtomic verifies the in-doubt overlay applies a whole
// transaction without mutating the base model.
func TestApplyOpsAtomic(t *testing.T) {
	base := map[uint64]uint64{1: 10, 2: 20}
	out := applyOps(base, []op{{key: 1, del: true}, {key: 3, val: 30}})
	if len(base) != 2 || base[1] != 10 {
		t.Fatalf("applyOps mutated its input: %v", base)
	}
	if _, ok := out[1]; ok {
		t.Fatal("delete not applied in overlay")
	}
	if out[3] != 30 {
		t.Fatalf("insert not applied in overlay: %v", out)
	}
}

// TestIsDivergence distinguishes model divergences from plain errors.
func TestIsDivergence(t *testing.T) {
	d := &Divergence{Seed: 1, Cycle: 2, Point: FaultJournal, Diffs: []string{"key 1 lost (want value 10)"}}
	if !IsDivergence(d) {
		t.Fatal("Divergence not recognized")
	}
	if IsDivergence(errDummy) {
		t.Fatal("plain error misclassified as divergence")
	}
	if msg := d.Error(); msg == "" {
		t.Fatal("empty divergence message")
	}
}

var errDummy = errDummyType{}

type errDummyType struct{}

func (errDummyType) Error() string { return "dummy" }
