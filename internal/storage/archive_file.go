package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"aether/internal/fsutil"
	"aether/internal/vfs"
)

// FileArchive is a directory-backed Archive: each page image lives in
// its own file, installed atomically (write-temp, fsync, rename). It
// pays one fsync per page, which is why checkpoint sweeps now go to the
// PageFile instead; FileArchive is kept as the legacy on-disk layout
// (imported once by PageFile.ImportLegacy) and as the per-page baseline
// the sweep microbenchmark compares against.
type FileArchive struct {
	fs  vfs.FS
	dir string

	syncDelay time.Duration // simulated device sync latency (benchmarks)
	fsyncs    atomic.Int64
}

// OpenFileArchive opens (creating if needed) a page archive directory.
// Orphan temp files — left behind by a crash between a Put's temp write
// and its rename — are swept out: they were never installed, so their
// pages are still dirty (or already re-archived) and the temps are junk
// that would otherwise accumulate forever.
func OpenFileArchive(dir string) (*FileArchive, error) {
	return OpenFileArchiveFS(vfs.OS{}, dir)
}

// OpenFileArchiveFS is OpenFileArchive over an arbitrary filesystem —
// the fault-injection entry point.
func OpenFileArchiveFS(fs vfs.FS, dir string) (*FileArchive, error) {
	if _, err := fs.Stat(dir); err != nil {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: create archive %s: %w", dir, err)
		}
		// The fresh directory's own dentry must survive a crash before
		// any page installed in it can be trusted.
		if err := fsutil.SyncDirFS(fs, filepath.Dir(dir)); err != nil {
			return nil, fmt.Errorf("storage: sync parent of archive %s: %w", dir, err)
		}
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive %s: %w", dir, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := fs.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("storage: sweep stale temp %s: %w", e.Name(), err)
			}
		}
	}
	return &FileArchive{fs: fs, dir: dir}, nil
}

// SetSyncDelay adds a simulated per-fsync device latency (benchmarks;
// 0 disables). Not safe to change concurrently with Put/Flush.
func (a *FileArchive) SetSyncDelay(d time.Duration) { a.syncDelay = d }

// Fsyncs returns how many device fsyncs the archive has issued (one per
// Put, one per Flush — the O(dirty pages) cost the PageFile eliminates).
func (a *FileArchive) Fsyncs() int64 { return a.fsyncs.Load() }

func (a *FileArchive) countSync() {
	a.fsyncs.Add(1)
	if a.syncDelay > 0 {
		time.Sleep(a.syncDelay)
	}
}

func (a *FileArchive) pagePath(pid uint64) string {
	return filepath.Join(a.dir, fmt.Sprintf("%016x.page", pid))
}

// Put implements Archive. The image is crash-installed (synced temp
// file, then rename): a torn write can only leave the temp file behind,
// never a half-written page. Sweeps are serialized by the checkpoint
// mutex, so a fixed per-page temp name cannot collide.
func (a *FileArchive) Put(pid uint64, img []byte) error {
	tmp := a.pagePath(pid) + ".tmp"
	if err := fsutil.WriteFileSyncFS(a.fs, tmp, img, 0o644); err != nil {
		return fmt.Errorf("storage: archive put: %w", err)
	}
	a.countSync()
	if err := a.fs.Rename(tmp, a.pagePath(pid)); err != nil {
		return fmt.Errorf("storage: archive put: %w", err)
	}
	return nil
}

// Flush makes every previous Put's directory entry durable — one
// directory fsync per checkpoint sweep instead of one per page. The
// sweep must Flush before cleaning pages: only then is the archive the
// reliable copy the truncated log hands over to.
func (a *FileArchive) Flush() error {
	if err := fsutil.SyncDirFS(a.fs, a.dir); err != nil {
		return fmt.Errorf("storage: archive flush: %w", err)
	}
	a.countSync()
	return nil
}

// Get implements Archive ((nil, nil) on a page never archived).
func (a *FileArchive) Get(pid uint64) ([]byte, error) {
	img, err := a.fs.ReadFile(a.pagePath(pid))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: archive get: %w", err)
	}
	return img, nil
}

// Pages implements Archive.
func (a *FileArchive) Pages() ([]uint64, error) {
	entries, err := a.fs.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: archive list: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".page") {
			continue
		}
		pid, perr := strconv.ParseUint(strings.TrimSuffix(name, ".page"), 16, 64)
		if perr != nil {
			continue
		}
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

var _ Archive = (*FileArchive)(nil)
