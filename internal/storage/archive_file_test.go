package storage

import (
	"bytes"
	"testing"
)

func TestFileArchiveRoundTrip(t *testing.T) {
	a, err := OpenFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(42); got != nil || err != nil {
		t.Fatalf("Get on empty archive = %v, %v", got, err)
	}
	img1 := []byte("page-one-image")
	img2 := []byte("page-two-image")
	if err := a.Put(42, img1); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(7, img2); err != nil {
		t.Fatal(err)
	}
	// Overwrite is atomic-install, last write wins.
	img1b := []byte("page-one-image-v2")
	if err := a.Put(42, img1b); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(42); err != nil || !bytes.Equal(got, img1b) {
		t.Fatalf("Get(42) = %q, %v", got, err)
	}
	if got, err := a.Get(7); err != nil || !bytes.Equal(got, img2) {
		t.Fatalf("Get(7) = %q, %v", got, err)
	}
	pages, err := a.Pages()
	if err != nil || len(pages) != 2 || pages[0] != 7 || pages[1] != 42 {
		t.Fatalf("Pages = %v (%v), want [7 42]", pages, err)
	}

	// A second handle on the same directory sees everything — the
	// process-restart property the truncated log depends on.
	b, err := OpenFileArchive(a.dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get(42); err != nil || !bytes.Equal(got, img1b) {
		t.Fatalf("reopened Get(42) = %q, %v", got, err)
	}
	st := NewStore()
	if err := st.LoadArchive(b); err == nil {
		// Images here aren't real page snapshots, so LoadSnapshot should
		// reject them; the point is only that Pages/Get round-trip.
		t.Log("LoadArchive accepted synthetic images")
	}
}
