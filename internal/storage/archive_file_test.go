package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFileArchiveRoundTrip(t *testing.T) {
	a, err := OpenFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(42); got != nil || err != nil {
		t.Fatalf("Get on empty archive = %v, %v", got, err)
	}
	img1 := []byte("page-one-image")
	img2 := []byte("page-two-image")
	if err := a.Put(42, img1); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(7, img2); err != nil {
		t.Fatal(err)
	}
	// Overwrite is atomic-install, last write wins.
	img1b := []byte("page-one-image-v2")
	if err := a.Put(42, img1b); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(42); err != nil || !bytes.Equal(got, img1b) {
		t.Fatalf("Get(42) = %q, %v", got, err)
	}
	if got, err := a.Get(7); err != nil || !bytes.Equal(got, img2) {
		t.Fatalf("Get(7) = %q, %v", got, err)
	}
	pages, err := a.Pages()
	if err != nil || len(pages) != 2 || pages[0] != 7 || pages[1] != 42 {
		t.Fatalf("Pages = %v (%v), want [7 42]", pages, err)
	}

	// A second handle on the same directory sees everything — the
	// process-restart property the truncated log depends on.
	b, err := OpenFileArchive(a.dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get(42); err != nil || !bytes.Equal(got, img1b) {
		t.Fatalf("reopened Get(42) = %q, %v", got, err)
	}
	st := NewStore()
	if err := st.LoadArchive(b); err == nil {
		// Images here aren't real page snapshots, so LoadSnapshot should
		// reject them; the point is only that Pages/Get round-trip.
		t.Log("LoadArchive accepted synthetic images")
	}
}

// TestFileArchiveSweepsOrphanTemps: a crash between a Put's temp-file
// write and its rename leaves a *.tmp orphan; OpenFileArchive must sweep
// it out without touching installed pages.
func TestFileArchiveSweepsOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(1, []byte("installed")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: temp files that never got renamed.
	for _, name := range []string{"0000000000000002.page.tmp", "junk.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	b, err := OpenFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil || len(left) != 0 {
		t.Fatalf("stale temps survived reopen: %v (%v)", left, err)
	}
	if got, err := b.Get(1); err != nil || !bytes.Equal(got, []byte("installed")) {
		t.Fatalf("installed page damaged by temp sweep: %q, %v", got, err)
	}
	if pages, err := b.Pages(); err != nil || len(pages) != 1 {
		t.Fatalf("Pages after sweep = %v (%v), want [1]", pages, err)
	}
}
