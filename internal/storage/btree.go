package storage

import "sync"

// BTree is an in-memory B+Tree mapping uint64 keys to uint64 values
// (typically packed RIDs). It serves as the tables' primary index.
//
// The tree is a *volatile secondary structure*: it is not logged and is
// rebuilt from the (logged) heap contents during restart. This is the
// one deliberate simplification versus ARIES index logging (ARIES/IM);
// it leaves recovery correctness intact because the heap is the source
// of truth, and it is a common design for memory-resident engines.
// DESIGN.md records the substitution.
//
// Concurrency: a tree-level RWMutex. Reads (the vast majority in the
// TATP/TPC-B mixes) proceed in parallel; structure modifications are
// exclusive. The workloads' contention lives in the lock manager and the
// log, which is where the paper's experiments need it.
type BTree struct {
	mu   sync.RWMutex
	root *btreeNode
	size int
}

// btreeOrder is the maximum number of keys per node.
const btreeOrder = 64

type btreeNode struct {
	leaf     bool
	keys     []uint64
	children []*btreeNode // internal nodes: len(keys)+1
	values   []uint64     // leaves: len(keys)
	next     *btreeNode   // leaf chain for scans
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}}
}

// Len returns the number of keys.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Get returns the value for key.
func (t *BTree) Get(key uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		return 0, false
	}
	return n.values[i], true
}

// childIndex returns which child to descend into: the first key strictly
// greater than target determines the boundary.
func childIndex(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex finds key in a leaf's sorted keys.
func leafIndex(keys []uint64, key uint64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

// Put inserts or overwrites key→value. It reports whether the key was
// newly inserted.
func (t *BTree) Put(key, value uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	inserted, split, sepKey, right := t.insert(t.root, key, value)
	if split {
		newRoot := &btreeNode{
			keys:     []uint64{sepKey},
			children: []*btreeNode{t.root, right},
		}
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert descends recursively; on child split it absorbs the separator.
func (t *BTree) insert(n *btreeNode, key, value uint64) (inserted, split bool, sepKey uint64, right *btreeNode) {
	if n.leaf {
		i, ok := leafIndex(n.keys, key)
		if ok {
			n.values[i] = value
			return false, false, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, 0)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		if len(n.keys) > btreeOrder {
			sep, r := n.splitLeaf()
			return true, true, sep, r
		}
		return true, false, 0, nil
	}
	ci := childIndex(n.keys, key)
	inserted, childSplit, childSep, childRight := t.insert(n.children[ci], key, value)
	if childSplit {
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = childSep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childRight
		if len(n.keys) > btreeOrder {
			sep, r := n.splitInternal()
			return inserted, true, sep, r
		}
	}
	return inserted, false, 0, nil
}

func (n *btreeNode) splitLeaf() (sep uint64, right *btreeNode) {
	mid := len(n.keys) / 2
	right = &btreeNode{
		leaf:   true,
		keys:   append([]uint64(nil), n.keys[mid:]...),
		values: append([]uint64(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = right
	return right.keys[0], right
}

func (n *btreeNode) splitInternal() (sep uint64, right *btreeNode) {
	mid := len(n.keys) / 2
	sep = n.keys[mid]
	right = &btreeNode{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Delete removes key, reporting whether it was present. Underflowed
// nodes are not rebalanced (deletes are rare in the workloads; lookups
// stay correct, and the tree is rebuilt at restart anyway).
func (t *BTree) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := leafIndex(n.keys, key)
	if !ok {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// Scan walks keys in [from, to] in order, calling fn until it returns
// false or the range ends.
func (t *BTree) Scan(from, to uint64, fn func(key, value uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, from)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k > to {
				return
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or false if empty.
func (t *BTree) Min() (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return 0, false
}
