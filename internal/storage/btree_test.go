package storage

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Get(5); ok {
		t.Fatal("empty tree Get")
	}
	if !bt.Put(5, 50) {
		t.Fatal("first Put should insert")
	}
	if bt.Put(5, 51) {
		t.Fatal("second Put should overwrite")
	}
	v, ok := bt.Get(5)
	if !ok || v != 51 {
		t.Fatalf("Get: %d %v", v, ok)
	}
	if bt.Len() != 1 {
		t.Fatalf("Len: %d", bt.Len())
	}
	if !bt.Delete(5) || bt.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
	if bt.Len() != 0 {
		t.Fatalf("Len after delete: %d", bt.Len())
	}
}

func TestBTreeManyKeysSplits(t *testing.T) {
	bt := NewBTree()
	const n = 100000
	for i := 0; i < n; i++ {
		k := uint64(i*2 + 1)
		bt.Put(k, k*10)
	}
	if bt.Len() != n {
		t.Fatalf("Len: %d", bt.Len())
	}
	for i := 0; i < n; i++ {
		k := uint64(i*2 + 1)
		v, ok := bt.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d): %d %v", k, v, ok)
		}
		if _, ok := bt.Get(k + 1); ok {
			t.Fatalf("Get(%d) should miss", k+1)
		}
	}
}

func TestBTreeRandomOrderInsert(t *testing.T) {
	bt := NewBTree()
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(50000)
	for _, k := range keys {
		bt.Put(uint64(k), uint64(k)+7)
	}
	for _, k := range keys {
		v, ok := bt.Get(uint64(k))
		if !ok || v != uint64(k)+7 {
			t.Fatalf("Get(%d): %d %v", k, v, ok)
		}
	}
}

func TestBTreeScan(t *testing.T) {
	bt := NewBTree()
	for i := 10; i <= 100; i += 10 {
		bt.Put(uint64(i), uint64(i))
	}
	var got []uint64
	bt.Scan(25, 75, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{30, 40, 50, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v", got)
		}
	}
	// Early termination.
	n := 0
	bt.Scan(0, 1000, func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestBTreeScanOrdered(t *testing.T) {
	bt := NewBTree()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		bt.Put(rng.Uint64()%100000, 1)
	}
	var prev uint64
	first := true
	bt.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
}

func TestBTreeMin(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Min(); ok {
		t.Fatal("empty Min")
	}
	for _, k := range []uint64{500, 100, 900, 50, 700} {
		bt.Put(k, k)
	}
	if m, ok := bt.Min(); !ok || m != 50 {
		t.Fatalf("Min: %d %v", m, ok)
	}
	bt.Delete(50)
	if m, ok := bt.Min(); !ok || m != 100 {
		t.Fatalf("Min after delete: %d %v", m, ok)
	}
}

func TestBTreeDeleteHeavy(t *testing.T) {
	bt := NewBTree()
	const n = 30000
	for i := 0; i < n; i++ {
		bt.Put(uint64(i), uint64(i))
	}
	// Delete a pseudo-random half.
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			if !bt.Delete(uint64(i)) {
				t.Fatalf("Delete(%d) missed", i)
			}
		}
	}
	for i := 0; i < n; i++ {
		_, ok := bt.Get(uint64(i))
		if want := i%3 == 0; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
}

// Property: against a reference map, random Put/Delete/Get agree.
func TestQuickBTreeMatchesMap(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16 // small key space to force collisions
		Val  uint64
	}
	f := func(ops []op) bool {
		bt := NewBTree()
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0:
				_, had := ref[k]
				if bt.Put(k, o.Val) != !had {
					return false
				}
				ref[k] = o.Val
			case 1:
				_, had := ref[k]
				if bt.Delete(k) != had {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := bt.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		// Full scan equals sorted reference.
		var keys []uint64
		bt.Scan(0, ^uint64(0), func(k, v uint64) bool {
			keys = append(keys, k)
			if ref[k] != v {
				keys = nil
				return false
			}
			return true
		})
		if len(keys) != len(ref) {
			return false
		}
		sorted := sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeConcurrentReaders(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 10000; i++ {
		bt.Put(uint64(i), uint64(i)*3)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := rng.Uint64() % 10000
				v, ok := bt.Get(k)
				if !ok || v != k*3 {
					t.Errorf("Get(%d): %d %v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestBTreeConcurrentMixed(t *testing.T) {
	bt := NewBTree()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < 5000; i++ {
				bt.Put(base+i, i)
			}
			for i := uint64(0); i < 5000; i++ {
				if v, ok := bt.Get(base + i); !ok || v != i {
					t.Errorf("worker %d key %d: %d %v", w, i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bt.Len() != 8*5000 {
		t.Fatalf("Len: %d", bt.Len())
	}
}
