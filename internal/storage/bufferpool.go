package storage

import (
	"encoding/binary"
	"fmt"
	"time"

	"aether/internal/lsn"
)

// WAL is the write-ahead-log contract the buffer pool depends on. The
// steal path may write a dirty page image to the backend only after the
// log covering it is durable; the fault path cross-checks every image it
// reads against the durable horizon (a pageLSN beyond it means the
// database file ran ahead of the log — a WAL violation or corruption).
//
// core.LogManager implements it.
type WAL interface {
	// Durable returns the durable horizon: every log record whose end
	// LSN is at or below it has reached stable storage.
	Durable() lsn.LSN
	// Force makes the log durable at least through upTo, blocking until
	// it is (the flush-before-steal hook).
	Force(upTo lsn.LSN) error
}

// ArchiveContains is the optional Archive extension the buffer pool
// prefers on the miss path: a cheap existence probe, so looking up a
// page that exists nowhere does not first evict (and possibly steal) an
// innocent resident page to make room for nothing.
type ArchiveContains interface {
	// Contains reports whether the archive holds an image for pid.
	Contains(pid uint64) bool
}

// CacheStats is a point-in-time snapshot of the buffer pool's counters.
type CacheStats struct {
	// Resident is how many pages are currently in RAM.
	Resident int64
	// Budget is the configured cap on Resident (0 = unbounded).
	Budget int64
	// Misses counts faults that read a page image from the backend
	// (demand paging at work; 0 for a fully resident store).
	Misses int64
	// Evictions counts pages dropped from RAM to stay within Budget.
	Evictions int64
	// StealWrites counts demand steals only: dirty victims a faulting
	// caller had to write back itself (force the log, then the image
	// through the backend) because no clean victim existed when it needed
	// a frame. With the background cleaner keeping ahead of demand this
	// stays near zero; pages pre-cleaned by it are counted in
	// CleanerWrites instead, and their eventual eviction is a plain
	// frame drop.
	StealWrites int64
	// CleanerWrites counts page images written back by background
	// cleaner passes (CleanBatch) — writebacks that happened ahead of
	// demand, off every fault path.
	CleanerWrites int64
	// CleanerPasses counts cleaner passes that wrote at least one page.
	CleanerPasses int64
	// PrefetchReads counts page images the read-ahead pipeline installed
	// ahead of demand (prefetch.go); 0 with prefetch disabled.
	PrefetchReads int64
	// PrefetchHits counts demand accesses served by a prefetched page —
	// faults that never happened. PrefetchReads − PrefetchHits is the
	// wasted-read overshoot (bounded by the window size per stream).
	PrefetchHits int64
}

// SetBackend attaches the page archive as the store's backing home:
// pages absent from RAM are faulted in from it on demand, and evicted
// dirty pages are stolen back to it. It also advances every space's
// page allocator past the backend's existing IDs, so freshly allocated
// pages can never collide with archived ones that have not been faulted
// yet. Call it once, before the store is shared between goroutines.
func (s *Store) SetBackend(a Archive) error {
	if s.backend == a {
		return nil // already attached: skip the O(database) ID scan
	}
	s.backend = a
	if a == nil {
		return nil
	}
	pids, err := a.Pages()
	if err != nil {
		return fmt.Errorf("storage: reading backend page ids: %w", err)
	}
	for _, pid := range pids {
		s.advanceSeq(pid)
	}
	return nil
}

// AttachWAL wires the log manager into the buffer pool: dirty
// writebacks (demand steals and cleaner passes) force the log up to the
// victim's pageLSN first, and faulted images are verified against the
// durable horizon. Call it once at setup, before the store is shared
// between goroutines; without it dirty pages are never written back —
// not evictable, not cleanable — and under pressure the pool overshoots
// its budget rather than violate the WAL rule. The overshoot is
// transient: the pages become evictable the moment they are cleaned
// (by a checkpoint sweep), and the budget is enforced again from the
// next fault on.
func (s *Store) AttachWAL(w WAL) { s.wal = w }

// SetCachePages bounds the buffer pool to at most n resident pages
// (0 = unbounded, the fully memory-resident mode). The bound is honored
// whenever an unpinned victim exists; if every resident page is pinned
// or unstealable the pool overshoots — temporarily exceeds the budget,
// recovering as soon as a victim frees up — rather than deadlocks. Call
// it once at setup, before the store is shared between goroutines.
func (s *Store) SetCachePages(n int64) {
	if n < 0 {
		n = 0
	}
	s.budget = n
}

// CacheStats returns the buffer pool counters.
func (s *Store) CacheStats() CacheStats {
	return CacheStats{
		Resident:      s.resident.Load(),
		Budget:        s.budget,
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		StealWrites:   s.steals.Load(),
		CleanerWrites: s.cleanerWrites.Load(),
		CleanerPasses: s.cleanerPasses.Load(),
		PrefetchReads: s.prefetchReads.Load(),
		PrefetchHits:  s.prefetchHits.Load(),
	}
}

// getResident returns the page if it is in RAM, pinned and with its
// reference bit set; nil on a cache miss. The pin is taken under the
// shard lock, which is what excludes it against eviction.
func (s *Store) getResident(pid uint64) *Page {
	sh := s.shard(pid)
	sh.mu.RLock()
	p := sh.pages[pid]
	if p != nil {
		p.pins.Add(1)
		p.ref.Store(true)
	}
	sh.mu.RUnlock()
	return p
}

// fault brings a non-resident page into RAM: read its image from the
// backend (CRC-verified by the backend's own read path), cross-check its
// pageLSN against the durable log, make room within the cache budget,
// and install it pinned. With create set, a page the backend has never
// seen materializes empty (redo rebuilding a never-archived page); the
// space allocator is advanced past it.
//
// The backend read happens under the shard's exclusive lock. That is
// what makes the read-install pair atomic against a full concurrent
// install → modify → steal → evict cycle of the same page: without it,
// an image read before the cycle could be installed after it, silently
// reviving the pre-steal state. It also serializes concurrent faults of
// the same page (one read, no duplicate-install race). The cost is the
// backend read (directory lookup + pread + CRC, no fsync) blocking the
// shard's other 1/64th of lookups for its duration; eviction I/O, which
// does fsync, runs before the lock is taken.
func (s *Store) fault(pid uint64, create bool) (*Page, error) {
	if !create {
		if c, ok := s.backend.(ArchiveContains); ok && !c.Contains(pid) {
			// Nothing to fault: don't evict a real page to make room
			// for a lookup that was always going to come back empty.
			// (A concurrent materialization of pid is indistinguishable
			// from this lookup having run a moment earlier.)
			return nil, nil
		}
	}
	s.reserveFrame()
	sh := s.shard(pid)
	sh.mu.Lock()
	if cur := sh.pages[pid]; cur != nil {
		// Installed while we waited for the lock (a concurrent fault, or
		// the read-ahead pipeline landing this very page — a prefetch hit).
		cur.pins.Add(1)
		cur.ref.Store(true)
		sh.mu.Unlock()
		s.releaseFrame()
		s.notePrefetchHit(cur, pid)
		return cur, nil
	}
	var img []byte
	if s.backend != nil {
		var err error
		img, err = s.backend.Get(pid)
		if err != nil {
			sh.mu.Unlock()
			s.releaseFrame()
			return nil, fmt.Errorf("storage: faulting page %d: %w", pid, err)
		}
	}
	if img == nil && !create {
		sh.mu.Unlock()
		s.releaseFrame()
		return nil, nil
	}
	p := NewPage(pid)
	if img != nil {
		if len(img) != PageSize {
			// Validate the length before touching any header field: a
			// torn or truncated image from a backend without its own
			// framing must fail loudly, not panic on the LSN read.
			sh.mu.Unlock()
			s.releaseFrame()
			return nil, fmt.Errorf("storage: faulted page %d image is %d bytes, want %d", pid, len(img), PageSize)
		}
		if s.wal != nil {
			// VerifyArchive at fault granularity: the sweep and the
			// steal path only write images whose pageLSN is durable, so
			// an image past the durable horizon is a WAL violation or a
			// corrupt database file; redoing on top of it would
			// silently skip updates.
			if pl := lsn.LSN(binary.LittleEndian.Uint64(img[8:16])); pl > s.wal.Durable() {
				sh.mu.Unlock()
				s.releaseFrame()
				return nil, fmt.Errorf(
					"storage: faulted page %d has pageLSN %v beyond the durable log end %v (archive ahead of log: WAL violation or corruption)",
					pid, pl, s.wal.Durable())
			}
		}
		if err := p.LoadSnapshot(img); err != nil {
			sh.mu.Unlock()
			s.releaseFrame()
			return nil, err
		}
	}
	p.pins.Store(1)
	p.ref.Store(true)
	sh.pages[pid] = p
	missed := img != nil
	if missed {
		s.misses.Add(1)
	} else {
		s.advanceSeq(pid)
	}
	// noteResident takes evictMu, so it runs after the shard lock drops
	// (lock order is evictMu → shard, never the reverse). The page is
	// findable — and pinned — the moment the lock drops; it merely
	// joins the clock a beat later.
	sh.mu.Unlock()
	s.noteResident(pid)
	if missed {
		// A real backend read: feed the stream tracker so a sequential
		// fault pattern opens the read-ahead window (prefetch.go).
		s.noteAccess(pid)
	}
	return p, nil
}

// noteResident registers a newly installed page with the clock (its
// frame was already counted by reserveFrame).
func (s *Store) noteResident(pid uint64) {
	s.evictMu.Lock()
	s.clock = append(s.clock, pid)
	s.evictMu.Unlock()
}

// reserveFrame counts an incoming page into the residency total BEFORE
// its install and evicts until the total fits the budget again. Counting
// first is what makes the bound hold under concurrent faults: each
// faulter sees the others' reservations, so two racing misses at
// resident == budget-1 cannot both conclude there is room. A caller
// whose install does not happen (error, lost race) must releaseFrame.
// The reservation is abandoned (transient overshoot) only when no
// unpinned, stealable victim exists — the alternative would be
// deadlocking a fault against its own caller's pins.
func (s *Store) reserveFrame() {
	s.resident.Add(1)
	if s.budget <= 0 {
		return
	}
	for s.resident.Load() > s.budget {
		if !s.evictOne() {
			return
		}
	}
}

// releaseFrame returns an unused reservation taken by reserveFrame.
func (s *Store) releaseFrame() {
	s.resident.Add(-1)
}

// cleanWaitTimeout bounds how long an evictor waits for an in-flight
// writeback pass before it falls back to stealing. The signal usually
// arrives in microseconds (the pass was already past its fsyncs); the
// timeout only matters when the cleaner stalls or cannot clean anything,
// where stealing is the correct escape.
const cleanWaitTimeout = 5 * time.Millisecond

// cleanWaiter returns the broadcast channel the next signalCleaned will
// close. Grab it BEFORE poking the cleaner, or the pass could complete
// and signal between the poke and the wait — a missed wakeup.
func (s *Store) cleanWaiter() <-chan struct{} {
	s.cleanWaitMu.Lock()
	if s.cleanWaitCh == nil {
		s.cleanWaitCh = make(chan struct{})
	}
	ch := s.cleanWaitCh
	s.cleanWaitMu.Unlock()
	return ch
}

// signalCleaned wakes every evictor parked in waitForCleaner: a
// writeback pass (cleaner or checkpoint sweep) just marked pages clean.
func (s *Store) signalCleaned() {
	s.cleanWaitMu.Lock()
	if s.cleanWaitCh != nil {
		close(s.cleanWaitCh)
		s.cleanWaitCh = nil
	}
	s.cleanWaitMu.Unlock()
}

// waitForCleaner pokes the armed cleaner and blocks until a writeback
// pass signals (or the timeout elapses). Called by evictOne with evictMu
// released.
func (s *Store) waitForCleaner() {
	ch := s.cleanWaiter()
	s.stealNotify()
	t := time.NewTimer(cleanWaitTimeout)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	}
}

// evictOne runs the clock hand until it reclaims one frame: referenced
// pages lose their second-chance bit, pinned and writeback-claimed pages
// are skipped, and the first quiet candidate is evicted. A clean victim
// drops inline under evictMu — pure map work, no I/O. A dirty victim is
// claimed via its writeback latch and *stolen outside evictMu*: the lock
// is released across the steal's log force and journaled archive write,
// so concurrent faults keep finding (and dropping) other victims while
// one steal's fsyncs are in flight, instead of the whole pool queueing
// behind them. Two full rotations without a victim means everything is
// pinned or unstealable; report failure so the caller can overshoot.
//
// When a background cleaner is armed (stealNotify wired), a scan about
// to steal — or one that found every candidate writeback-claimed by an
// in-flight pass — first pokes the cleaner and waits briefly for its
// signal, then rescans: the pass's freshly cleaned pages become free
// frame drops, and the steal (a log force plus journaled archive write
// on this fault's critical path) is avoided entirely. One wait per call;
// if the pool is still all-dirty afterwards the steal proceeds, so
// eviction can never hang on a cleaner that has nothing to clean.
func (s *Store) evictOne() bool {
	waited := false
scan:
	for {
		s.evictMu.Lock()
		limit := 2 * len(s.clock)
		blocked := false // saw a writeback-claimed candidate this scan
		for scanned := 0; scanned <= limit; scanned++ {
			if len(s.clock) == 0 {
				break
			}
			if s.hand >= len(s.clock) {
				s.hand = 0
			}
			pid := s.clock[s.hand]
			sh := s.shard(pid)
			sh.mu.RLock()
			p := sh.pages[pid]
			sh.mu.RUnlock()
			if p == nil {
				// Stale entry (defensive: eviction removes entries in step
				// with frames, but a duplicate could alias a recycled pid).
				s.clockRemoveAtHand()
				continue
			}
			if p.pins.Load() > 0 || p.ref.CompareAndSwap(true, false) {
				s.hand++
				continue
			}
			if p.wb.Load() {
				blocked = true
				s.hand++
				continue
			}
			if !s.isDirty(pid) {
				if s.dropClean(pid, p) {
					s.clockRemoveAtHand()
					s.evictMu.Unlock()
					return true
				}
				s.hand++
				continue
			}
			if s.backend == nil || s.wal == nil {
				// Nowhere safe to steal to: dirty pages are not evictable
				// (overshoot over a WAL violation).
				s.hand++
				continue
			}
			if !waited && s.stealNotify != nil {
				// About to pay a steal on this fault's critical path: give
				// the armed cleaner one chance to deliver clean victims
				// first (full rescan below).
				s.evictMu.Unlock()
				s.waitForCleaner()
				waited = true
				continue scan
			}
			if !p.wb.CompareAndSwap(false, true) {
				// The cleaner or a concurrent steal owns the writeback; once
				// it finishes the page is clean and trivially evictable.
				blocked = true
				s.hand++
				continue
			}
			// Steal outside evictMu: the force + journaled write can take
			// milliseconds on a real device, and holding the eviction lock
			// across them would queue every concurrent fault behind this one
			// victim's fsyncs (the PR 4 bottleneck). The writeback latch keeps
			// other evictors and the cleaner off this page meanwhile.
			//
			// The victim leaves the clock HERE, under evictMu, not after the
			// steal: a deferred removal could race a concurrent evictor
			// collecting the stale entry plus a refault re-installing the
			// page, and then delete the refaulted page's fresh entry —
			// leaving a resident page no clock scan would ever visit again.
			// If the steal fails the page rejoins the clock below.
			s.clockRemoveAtHand()
			s.evictMu.Unlock()
			ok := s.stealAndDrop(pid, p)
			p.wb.Store(false)
			if ok {
				return true
			}
			// The frame stayed (pinned mid-steal, I/O error, ...): put the
			// page back on the clock so it remains evictable later.
			s.noteResident(pid)
			s.evictMu.Lock()
		}
		s.evictMu.Unlock()
		if blocked && !waited && s.stealNotify != nil {
			// Every candidate was claimed by an in-flight writeback pass.
			// Waiting for its signal beats overshooting the budget.
			s.waitForCleaner()
			waited = true
			continue scan
		}
		return false
	}
}

// clockRemoveAtHand drops the clock entry under the hand in O(1) by
// swapping the last entry into its place (clock order is approximate
// anyway; an O(resident) splice here would sit on the fault hot path).
// Caller holds evictMu.
func (s *Store) clockRemoveAtHand() {
	last := len(s.clock) - 1
	s.clock[s.hand] = s.clock[last]
	s.clock = s.clock[:last]
}

// dropClean reclaims one clean frame: its current image is either in the
// backend (the cleaner, the sweep or a previous steal wrote it) or
// trivially empty (allocated but never modified — no log record, no
// archived copy, nothing to lose). The read latch excludes writers for
// the duration, so the page cannot be dirtied between the caller's
// dirty-check and the drop; the shard lock's pin check excludes new
// references (pins are taken under it). Caller holds evictMu and has
// verified the page is not in the dirty-page table.
func (s *Store) dropClean(pid uint64, p *Page) bool {
	p.Latch.RLock()
	defer p.Latch.RUnlock()
	if s.isDirty(pid) {
		// Dirtied between the caller's check and our latch acquisition.
		return false
	}
	sh := s.shard(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pages[pid] != p || p.pins.Load() > 0 {
		return false
	}
	delete(sh.pages, pid)
	s.resident.Add(-1)
	s.evictions.Add(1)
	return true
}

// stealAndDrop writes a dirty victim back WAL-correctly and reclaims its
// frame: the log is forced up to its pageLSN (the WAL rule, fsync
// invariant 5a), the image goes through the backend's double-write path,
// and only then is the frame dropped. The caller owns the page's
// writeback latch and has already left evictMu.
//
// The read latch is held across the whole steal — force, write and drop
// — so the page cannot advance past the state being written (writers
// need the exclusive latch): the stolen image is the page's current
// image when the frame drops, and a steal can never land a stale image
// over a newer one. A pin taken mid-steal (pins need only the shard
// lock) is caught by the final re-validation and the frame stays put;
// the archive write was wasted, not wrong — the image it wrote is the
// page's current, log-covered state.
func (s *Store) stealAndDrop(pid uint64, p *Page) bool {
	p.Latch.RLock()
	defer p.Latch.RUnlock()
	dirty := s.isDirty(pid)
	if dirty {
		if err := s.wal.Force(p.LSN()); err != nil {
			return false
		}
		if err := s.backend.Put(pid, p.Snapshot()); err != nil {
			// The page stays dirty; its recLSN keeps pinning the
			// truncation horizon until a later steal or sweep succeeds.
			return false
		}
		s.steals.Add(1)
		if s.stealNotify != nil {
			// Tell the background cleaner demand outran it (non-blocking
			// on the engine side): the next faults should find pre-cleaned
			// victims instead of stealing too.
			s.stealNotify()
		}
	}

	// Final re-validation under the shard lock (new pins are taken under
	// it, so pins == 0 here means no reference can appear before the
	// delete below).
	sh := s.shard(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pages[pid] != p || p.pins.Load() > 0 {
		return false
	}
	if dirty {
		s.MarkClean(pid)
	}
	delete(sh.pages, pid)
	s.resident.Add(-1)
	s.evictions.Add(1)
	return true
}

// isDirty reports whether pid is in the dirty-page table.
func (s *Store) isDirty(pid uint64) bool {
	s.dirtyMu.Lock()
	_, ok := s.dirty[pid]
	s.dirtyMu.Unlock()
	return ok
}

// advanceSeq keeps a space's page allocator ahead of an explicitly
// materialized page ID, so Allocate never hands out a colliding ID.
func (s *Store) advanceSeq(pid uint64) {
	c := s.spaceSeq(PageSpace(pid))
	seq := pageSeq(pid)
	for {
		cur := c.Load()
		if cur >= seq || c.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// AllPageIDs returns every page the store knows about — resident pages
// plus everything in the backend — sorted and deduplicated. This is the
// restart path's page universe: with demand paging the resident set
// alone no longer enumerates the database.
func (s *Store) AllPageIDs() ([]uint64, error) {
	ids := s.PageIDs()
	if s.backend == nil {
		return ids, nil
	}
	archived, err := s.backend.Pages()
	if err != nil {
		return nil, fmt.Errorf("storage: listing backend pages: %w", err)
	}
	seen := make(map[uint64]struct{}, len(ids)+len(archived))
	out := make([]uint64, 0, len(ids)+len(archived))
	for _, set := range [][]uint64{ids, archived} {
		for _, pid := range set {
			if _, dup := seen[pid]; dup {
				continue
			}
			seen[pid] = struct{}{}
			out = append(out, pid)
		}
	}
	sortPageIDs(out)
	return out, nil
}
