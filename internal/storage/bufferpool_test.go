package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// fakeWAL is a WAL stub: Force "flushes" by advancing the durable
// horizon, recording every call.
type fakeWAL struct {
	mu      sync.Mutex
	durable lsn.LSN
	forced  []lsn.LSN
}

func (w *fakeWAL) Durable() lsn.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

func (w *fakeWAL) Force(upTo lsn.LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.forced = append(w.forced, upTo)
	if upTo > w.durable {
		w.durable = upTo
	}
	return nil
}

// seqLog is a LogFunc handing out monotonically increasing LSNs, as the
// real appender would.
type seqLog struct {
	mu   sync.Mutex
	next lsn.LSN
}

func (l *seqLog) log(pageID uint64, up logrec.UpdatePayload) (lsn.LSN, lsn.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	return l.next, l.next + 1, nil
}

// walCheckingArchive wraps MemArchive and fails the test if a page image
// lands in the archive before the log covering it is durable — the WAL
// rule the steal path must uphold.
type walCheckingArchive struct {
	*MemArchive
	wal *fakeWAL
	t   *testing.T
}

func (a *walCheckingArchive) Put(pid uint64, img []byte) error {
	if pl := lsn.LSN(binary.LittleEndian.Uint64(img[8:16])); pl > a.wal.Durable() {
		a.t.Errorf("WAL violation: page %d stolen at pageLSN %v with durable horizon %v", pid, pl, a.wal.Durable())
	}
	return a.MemArchive.Put(pid, img)
}

// poolHarness builds a bounded store over a WAL-checked MemArchive with
// one heap on it.
func poolHarness(t *testing.T, budget int64) (*Store, *HeapFile, *walCheckingArchive, *fakeWAL, *seqLog) {
	t.Helper()
	wal := &fakeWAL{}
	arch := &walCheckingArchive{MemArchive: NewMemArchive(), wal: wal, t: t}
	st := NewStore()
	if err := st.SetBackend(arch); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	st.SetCachePages(budget)
	return st, NewHeapFile(st, 1, "t"), arch, wal, &seqLog{}
}

// bigRow builds a row large enough that few fit per page, so small
// insert counts span many pages.
func bigRow(i int) []byte {
	return []byte(fmt.Sprintf("row-%06d-%s", i, string(make([]byte, 1500))))
}

func TestBufferPoolBoundedResidency(t *testing.T) {
	const budget = 4
	st, h, arch, _, sl := poolHarness(t, budget)

	const rows = 120 // ≈ 24 pages at ~5 rows/page: 6× the budget
	rids := make([]RID, rows)
	for i := 0; i < rows; i++ {
		rid, err := h.Insert(bigRow(i), sl.log)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids[i] = rid
		if r := st.CacheStats().Resident; r > budget {
			t.Fatalf("insert %d: resident %d exceeds budget %d", i, r, budget)
		}
	}
	cs := st.CacheStats()
	if cs.Evictions == 0 || cs.StealWrites == 0 {
		t.Fatalf("no eviction pressure: %+v", cs)
	}
	if got := len(st.PageIDs()); int64(got) > budget {
		t.Fatalf("%d resident pages, budget %d", got, budget)
	}

	// Every row reads back exactly, faulting evicted pages from the
	// archive (a page may be resident or stolen — both must serve).
	misses0 := cs.Misses
	for i, rid := range rids {
		got, err := h.Read(rid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := bigRow(i); string(got) != string(want) {
			t.Fatalf("row %d corrupted after paging", i)
		}
		if r := st.CacheStats().Resident; r > budget {
			t.Fatalf("read %d: resident %d exceeds budget %d", i, r, budget)
		}
	}
	if st.CacheStats().Misses == misses0 {
		t.Fatal("reads of evicted pages recorded no misses")
	}

	// The archive holds the stolen images even though no checkpoint ran.
	pids, err := arch.Pages()
	if err != nil || len(pids) == 0 {
		t.Fatalf("no stolen images in the archive: %d (%v)", len(pids), err)
	}
}

func TestBufferPoolPinBlocksEviction(t *testing.T) {
	const budget = 2
	st, h, _, _, sl := poolHarness(t, budget)

	rid, err := h.Insert(bigRow(0), sl.log)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := st.Get(rid.Page)
	if err != nil || pinned == nil {
		t.Fatalf("pin target: %v", err)
	}
	// Pressure the pool far past the budget; the pinned page must never
	// be reclaimed while the pin is held.
	for i := 1; i < 60; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	found := false
	for _, pid := range st.PageIDs() {
		if pid == rid.Page {
			found = true
		}
	}
	if !found {
		t.Fatal("pinned page was evicted")
	}
	pinned.Unpin()
}

func TestBufferPoolNoWALRefusesDirtySteal(t *testing.T) {
	// Without a WAL hook the pool cannot order the steal after the log,
	// so dirty pages must stay resident (overshoot) rather than reach
	// the archive unprotected.
	arch := NewMemArchive()
	st := NewStore()
	if err := st.SetBackend(arch); err != nil {
		t.Fatal(err)
	}
	st.SetCachePages(2)
	h := NewHeapFile(st, 1, "t")
	sl := &seqLog{}
	for i := 0; i < 40; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	cs := st.CacheStats()
	if cs.StealWrites != 0 {
		t.Fatalf("%d steals without a WAL", cs.StealWrites)
	}
	if pids, _ := arch.Pages(); len(pids) != 0 {
		t.Fatalf("%d dirty images reached the archive without a WAL", len(pids))
	}
	if cs.Resident <= 2 {
		t.Fatalf("expected overshoot with unstealable dirty pages, resident=%d", cs.Resident)
	}
}

func TestBufferPoolCleanEvictionNeedsNoSteal(t *testing.T) {
	const budget = 4
	st, h, _, wal, sl := poolHarness(t, budget)
	const rows = 60
	rids := make([]RID, rows)
	for i := 0; i < rows; i++ {
		rid, err := h.Insert(bigRow(i), sl.log)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	// Sweep everything clean, then fault pages back in read-only: the
	// evictions that follow must be free (no new steal writes).
	wal.Force(sl.next + 1)
	if n := st.ArchiveDirtyPages(st.backend, wal.Durable()); n == 0 {
		t.Fatal("sweep archived nothing")
	}
	steals0 := st.CacheStats().StealWrites
	for i, rid := range rids {
		if _, err := h.Read(rid); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if got := st.CacheStats().StealWrites; got != steals0 {
		t.Fatalf("read-only paging performed %d steal writes", got-steals0)
	}
}

func TestBufferPoolFaultRejectsImageBeyondDurable(t *testing.T) {
	wal := &fakeWAL{durable: 10}
	arch := NewMemArchive()
	// An image claiming pageLSN 100 with the log durable only to 10:
	// the database file ran ahead of the log.
	pid := MakePageID(1, 1)
	img := NewPage(pid)
	img.SetLSN(100)
	if err := arch.Put(pid, img.Snapshot()); err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if err := st.SetBackend(arch); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	if _, err := st.Get(pid); err == nil {
		t.Fatal("fault accepted an image beyond the durable log end")
	}
	// Once the log catches up the fault succeeds.
	wal.Force(100)
	p, err := st.Get(pid)
	if err != nil || p == nil {
		t.Fatalf("fault after catch-up: %v", err)
	}
	p.Unpin()
}

func TestBufferPoolConcurrentPaging(t *testing.T) {
	// Race-detector fodder: concurrent inserts and reads over a pool
	// far smaller than the working set.
	const budget = 8
	st, h, _, _, sl := poolHarness(t, budget)
	const perG, goroutines = 40, 4

	rids := make([][]RID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		rids[g] = make([]RID, perG)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rid, err := h.Insert(bigRow(g*perG+i), sl.log)
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				rids[g][i] = rid
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				got, err := h.Read(rids[g][i])
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if want := bigRow(g*perG + i); string(got) != string(want) {
					t.Errorf("row %d/%d corrupted", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	cs := st.CacheStats()
	if cs.Evictions == 0 || cs.Misses == 0 {
		t.Fatalf("no paging under pressure: %+v", cs)
	}
}
