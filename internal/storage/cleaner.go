package storage

import (
	"fmt"
	"sort"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// This file is the background page cleaner's half of the buffer pool
// (the DB2 page-cleaner / Shore-MT bf_cleaner idea): write dirty, cold
// pages back to the archive *ahead of demand*, so the clock hand almost
// always finds clean victims and eviction degenerates to a frame drop.
// Without it, every fault arriving at a pool full of dirty pages pays
// for a demand steal — a log force plus a journaled archive write — on
// its own critical path.
//
// The cleaner preserves the same WAL ordering the steal path does, as
// one batch (fsync invariant 5b in ARCHITECTURE.md): force the log up
// to the batch's highest pageLSN, write every image through the
// backend's double-write journal, and only then mark pages clean —
// each step ordered after the previous one. Pages re-dirtied mid-pass
// stay in the dirty-page table; the write was wasted, not wrong.

// SetStealNotify registers fn to be invoked whenever a demand steal
// happens — the signal that eviction pressure outran the background
// cleaner. fn must not block (the engine forwards it to a buffered,
// coalescing channel). Call once at setup, before the store is shared
// between goroutines.
func (s *Store) SetStealNotify(fn func()) { s.stealNotify = fn }

// NeedClean reports whether the pool is running out of cheap eviction
// victims: true when fewer than target frames are free or clean. It is
// the cleaner's trigger — approximate by design (the DPT may hold a few
// stale entries; counters are read without a global lock), which only
// ever makes the cleaner slightly eager or slightly lazy, never
// incorrect. Always false for an unbounded pool or one that cannot
// write pages back.
func (s *Store) NeedClean(target int) bool {
	if s.budget <= 0 || s.backend == nil || s.wal == nil || target <= 0 {
		return false
	}
	resident := s.resident.Load()
	free := s.budget - resident
	s.dirtyMu.Lock()
	dirty := int64(len(s.dirty))
	s.dirtyMu.Unlock()
	clean := resident - dirty
	if clean < 0 {
		clean = 0
	}
	return free+clean < int64(target)
}

// cleanVictim is one page a cleaner pass has claimed: pinned, holding
// its writeback latch, with the image snapshotted under the read latch.
type cleanVictim struct {
	pid  uint64
	page *Page
	lsn  lsn.LSN
	img  []byte
}

// CleanBatch pre-cleans up to max dirty resident pages: it claims cold
// (second-chance bit clear), unpinned victims first — they are the
// pages the clock will evict next — falling back to warm ones so a
// uniformly hot pool still makes progress, forces the log once up to
// the batch's highest pageLSN, writes every image through the backend's
// batched double-write path (O(1) archive fsyncs per pass), and marks
// each page clean if its LSN is unchanged. It returns how many images
// it wrote. The per-page writeback latch serializes it against the
// demand-steal path and the checkpoint sweep, so a page's image is
// never written twice concurrently.
//
// A no-op (0, nil) for unbounded pools or stores without a backend and
// WAL hook.
func (s *Store) CleanBatch(max int) (int, error) {
	if s.backend == nil || s.wal == nil || s.budget <= 0 || max <= 0 {
		return 0, nil
	}
	victims := s.claimVictims(max)
	if len(victims) == 0 {
		return 0, nil
	}
	// Whatever happens below, every claimed page must surrender its
	// writeback latch and pin, or it would be neither cleanable nor
	// evictable ever again.
	defer func() {
		for _, v := range victims {
			v.page.wb.Store(false)
			v.page.Unpin()
		}
	}()

	// Force once for the whole batch: each victim's pageLSN is at or
	// below the maximum, so the WAL rule (no image ahead of the durable
	// log) holds for every image the batch writes.
	maxLSN := lsn.Zero
	for _, v := range victims {
		if v.lsn > maxLSN {
			maxLSN = v.lsn
		}
	}
	if err := s.wal.Force(maxLSN); err != nil {
		return 0, fmt.Errorf("storage: cleaner log force: %w", err)
	}
	if batcher, ok := s.backend.(ArchiveBatcher); ok {
		batch := make([]PageImage, len(victims))
		for i, v := range victims {
			batch[i] = PageImage{PID: v.pid, Img: v.img}
		}
		if err := batcher.PutBatch(batch); err != nil {
			return 0, fmt.Errorf("storage: cleaner writeback: %w", err)
		}
	} else {
		for _, v := range victims {
			if err := s.backend.Put(v.pid, v.img); err != nil {
				return 0, fmt.Errorf("storage: cleaner writeback: %w", err)
			}
		}
	}

	// Mark-clean under the read latch, exactly like the sweep: writers
	// bump pageLSN under the exclusive latch, so either we see the bump
	// (page stays dirty under its conservative recLSN) or our clean
	// lands first and their MarkDirty re-adds a fresh entry.
	for _, v := range victims {
		v.page.Latch.RLock()
		if v.page.LSN() == v.lsn {
			s.MarkClean(v.pid)
		}
		v.page.Latch.RUnlock()
	}
	n := len(victims)
	s.cleanerWrites.Add(int64(n))
	s.cleanerPasses.Add(1)
	// Release the victims BEFORE broadcasting, so an evictor woken by the
	// signal finds them unpinned and writeback-free — evictable — rather
	// than still claimed by this pass (the defer above becomes a no-op).
	for _, v := range victims {
		v.page.wb.Store(false)
		v.page.Unpin()
	}
	victims = nil
	s.signalCleaned()
	return n, nil
}

// claimVictims picks up to max dirty pages for a cleaner pass, in
// preference order over a DPT snapshot:
//
//  1. cold (reference bit clear — next in line at the clock hand) pages
//     whose pageLSN the log already covers durably;
//  2. warm but durably-covered pages, to fill the batch;
//  3. only if that found nothing: pages whose pageLSN is beyond the
//     durable horizon, which will cost the pass a real log force.
//
// Preferring durably-covered victims keeps the cleaner's log Force a
// no-op in the steady state — it must not inject extra log fsyncs that
// serialize with foreground group commit; the freshest pages are also
// exactly the ones most likely to be re-dirtied, making their writeback
// the most likely to be wasted. Pages in active use (pinned by anyone
// but us) are skipped in every round for the same reason.
//
// Within each round candidates are visited in clock-hand order (the
// Shore-MT bf_cleaner discipline): the DPT snapshot is sorted by each
// page's distance ahead of the eviction clock's hand, so a
// capacity-bounded pass cleans exactly the pages eviction will reach
// next. Under skew this is what keeps steals rare — cleaning a dirty
// page the hand won't reach for another full rotation helps nobody,
// while the page one step ahead of the hand is the next demand steal.
func (s *Store) claimVictims(max int) []cleanVictim {
	var victims []cleanVictim
	claimed := make(map[uint64]struct{})
	dirty := s.orderByClockDistance(s.DirtyPages())

	round := func(wantCold bool, bound lsn.LSN) {
		for _, e := range dirty {
			if len(victims) >= max {
				return
			}
			if _, dup := claimed[e.PageID]; dup {
				continue
			}
			p, cold := s.pinNoRef(e.PageID)
			if p == nil {
				continue // stale DPT entry; the sweep reconciles those
			}
			if (wantCold && !cold) || p.pins.Load() > 1 {
				p.Unpin()
				continue
			}
			if !p.wb.CompareAndSwap(false, true) {
				// A steal or the sweep owns this page's writeback.
				p.Unpin()
				continue
			}
			p.Latch.RLock()
			if !s.isDirty(e.PageID) || p.LSN() > bound {
				// Cleaned since the DPT snapshot (a racing steal that
				// failed its final drop, or a sweep) — or too fresh for
				// this round's durability bound.
				p.Latch.RUnlock()
				p.wb.Store(false)
				p.Unpin()
				continue
			}
			v := cleanVictim{pid: e.PageID, page: p, lsn: p.LSN(), img: p.Snapshot()}
			p.Latch.RUnlock()
			victims = append(victims, v)
			claimed[e.PageID] = struct{}{}
		}
	}

	durable := s.wal.Durable()
	round(true, durable)
	round(false, durable)
	if len(victims) == 0 && s.NeedClean(1) {
		// Nothing durably covered AND not a single free-or-clean frame
		// left: the very next fault will steal. Fall back to fresh pages
		// — this pass's Force becomes a real log flush — rather than
		// devolve into steals. The urgency gate matters: without it a
		// freshly dirtied page would be written back the instant it
		// appeared (its commit still in flight), turning the cleaner
		// into write-through and its Force into a second group-commit
		// stream fighting the log daemon's. With it, the normal path
		// simply waits a tick for the in-flight commit to make the page
		// durably coverable for free.
		round(true, lsn.Undefined)
		round(false, lsn.Undefined)
	}
	return victims
}

// orderByClockDistance sorts a DPT snapshot by each page's distance
// ahead of the eviction clock's hand: the page the hand would reach
// first sorts first. One O(resident) walk of the clock under evictMu
// builds the distance map — no I/O, no page latches. Dirty pages not on
// the clock at all (mid-eviction, or installed a beat ago) keep their
// snapshot order at the back; with no bounded clock (unbounded pool)
// the snapshot is returned unchanged.
func (s *Store) orderByClockDistance(dirty []logrec.DirtyPageEntry) []logrec.DirtyPageEntry {
	if len(dirty) < 2 {
		return dirty
	}
	want := make(map[uint64]int, len(dirty))
	for _, e := range dirty {
		want[e.PageID] = -1
	}
	s.evictMu.Lock()
	n := len(s.clock)
	for i := 0; i < n; i++ {
		pid := s.clock[(s.hand+i)%n]
		if d, ok := want[pid]; ok && d < 0 {
			want[pid] = i
		}
	}
	s.evictMu.Unlock()
	if n == 0 {
		return dirty
	}
	sort.SliceStable(dirty, func(i, j int) bool {
		di, dj := want[dirty[i].PageID], want[dirty[j].PageID]
		if di < 0 {
			return false
		}
		if dj < 0 {
			return true
		}
		return di < dj
	})
	return dirty
}

// pinNoRef pins a resident page WITHOUT setting its second-chance bit —
// the cleaner's lookup. Reading a page only to write it back must not
// make it look hot to the clock, or cleaning a page would shield it
// from the very eviction the cleaning enables. cold reports whether the
// reference bit was clear at lookup time.
func (s *Store) pinNoRef(pid uint64) (p *Page, cold bool) {
	sh := s.shard(pid)
	sh.mu.RLock()
	p = sh.pages[pid]
	if p != nil {
		p.pins.Add(1)
		cold = !p.ref.Load()
	}
	sh.mu.RUnlock()
	return p, cold
}
