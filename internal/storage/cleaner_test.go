package storage

import (
	"sync"
	"testing"
)

// countingArchive wraps MemArchive counting image writes per page, with
// an optional gate that blocks PutBatch *after* the images have landed —
// the "cleaner wrote, but has not marked clean / released the page yet"
// window the writeback-latch protocol is about.
type countingArchive struct {
	*MemArchive
	mu   sync.Mutex
	puts map[uint64]int

	gateMu   sync.Mutex
	gated    bool          // park PutBatch (cleaner/sweep) after the write
	gatedPut bool          // park Put (demand steal) after the write
	entered  chan struct{} // signaled once per gated call, post-write
	release  chan struct{}
}

func newCountingArchive() *countingArchive {
	return &countingArchive{
		MemArchive: NewMemArchive(),
		puts:       make(map[uint64]int),
		entered:    make(chan struct{}, 1),
		release:    make(chan struct{}),
	}
}

func (a *countingArchive) count(pids ...uint64) {
	a.mu.Lock()
	for _, pid := range pids {
		a.puts[pid]++
	}
	a.mu.Unlock()
}

func (a *countingArchive) putsFor(pid uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.puts[pid]
}

func (a *countingArchive) Put(pid uint64, img []byte) error {
	a.count(pid)
	if err := a.MemArchive.Put(pid, img); err != nil {
		return err
	}
	a.gateMu.Lock()
	gated := a.gatedPut
	a.gateMu.Unlock()
	if gated {
		select {
		case a.entered <- struct{}{}:
		default:
		}
		<-a.release
	}
	return nil
}

func (a *countingArchive) PutBatch(batch []PageImage) error {
	for _, e := range batch {
		a.count(e.PID)
	}
	if err := a.MemArchive.PutBatch(batch); err != nil {
		return err
	}
	a.gateMu.Lock()
	gated := a.gated
	a.gateMu.Unlock()
	if gated {
		select {
		case a.entered <- struct{}{}:
		default:
		}
		<-a.release
	}
	return nil
}

func (a *countingArchive) gate() {
	a.gateMu.Lock()
	a.gated = true
	a.gateMu.Unlock()
}

func (a *countingArchive) gatePuts() {
	a.gateMu.Lock()
	a.gatedPut = true
	a.gateMu.Unlock()
}

func (a *countingArchive) ungatePuts() {
	a.gateMu.Lock()
	a.gatedPut = false
	a.gateMu.Unlock()
}

// cleanerHarness is poolHarness over a countingArchive.
func cleanerHarness(t *testing.T, budget int64) (*Store, *HeapFile, *countingArchive, *fakeWAL, *seqLog) {
	t.Helper()
	wal := &fakeWAL{}
	arch := newCountingArchive()
	st := NewStore()
	if err := st.SetBackend(arch); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	st.SetCachePages(budget)
	return st, NewHeapFile(st, 1, "t"), arch, wal, &seqLog{}
}

func TestCleanerPreCleansDirtyPages(t *testing.T) {
	const budget = 8
	st, h, arch, wal, sl := cleanerHarness(t, budget)

	// Fill to (but not past) the budget: every resident page dirty, no
	// eviction pressure yet.
	for i := 0; i < 30; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	dirty := len(st.DirtyPages())
	if dirty == 0 {
		t.Fatal("nothing dirty to clean")
	}
	if !st.NeedClean(budget) {
		t.Fatal("NeedClean false with every frame dirty")
	}
	// Commits force the log in real life; the cleaner prefers pages the
	// durable horizon already covers.
	wal.Force(sl.next + 1)

	n, err := st.CleanBatch(budget)
	if err != nil {
		t.Fatalf("CleanBatch: %v", err)
	}
	if n == 0 {
		t.Fatal("cleaner wrote nothing")
	}
	cs := st.CacheStats()
	if cs.CleanerWrites != int64(n) || cs.CleanerPasses != 1 {
		t.Fatalf("cleaner counters off: %+v (wrote %d)", cs, n)
	}
	if cs.StealWrites != 0 {
		t.Fatalf("pre-cleaning performed %d demand steals", cs.StealWrites)
	}
	if got := len(st.DirtyPages()); got != dirty-n {
		t.Fatalf("%d pages still dirty, want %d", got, dirty-n)
	}
	// The WAL rule held as one batch: a force covering the highest
	// cleaned pageLSN before any image landed (a no-op here, since the
	// cleaner prefers durably covered victims).
	if len(wal.forced) == 0 {
		t.Fatal("cleaner never forced the log")
	}
	pids, _ := arch.Pages()
	if len(pids) != n {
		t.Fatalf("archive holds %d images, cleaner wrote %d", len(pids), n)
	}

	// Eviction after pre-cleaning is pure frame dropping: pressure the
	// pool well past the budget with a second space and watch the
	// cleaned pages leave without a single demand steal... of themselves.
	h2 := NewHeapFile(st, 2, "u")
	for i := 0; i < 30; i++ {
		if _, err := h2.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	for _, pid := range pids {
		if got := arch.putsFor(pid); got != 1 {
			t.Fatalf("cleaned page %d written %d times, want exactly 1", pid, got)
		}
	}
}

func TestCleanerSkipsPinnedAndClaimedPages(t *testing.T) {
	const budget = 8
	st, h, _, wal, sl := cleanerHarness(t, budget)
	rid, err := h.Insert(bigRow(0), sl.log)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	wal.Force(sl.next + 1)

	// A page pinned by a reader is in active use: the cleaner must not
	// waste a writeback on it.
	pinned, err := st.Get(rid.Page)
	if err != nil || pinned == nil {
		t.Fatalf("pin: %v", err)
	}
	// A page whose writeback latch is already claimed (a steal or sweep
	// in flight) must be skipped, not written a second time.
	var claimed *Page
	for _, pid := range st.PageIDs() {
		if pid != rid.Page && st.isDirty(pid) {
			p, _ := st.pinNoRef(pid)
			if p == nil {
				continue
			}
			p.Unpin()
			if p.wb.CompareAndSwap(false, true) {
				claimed = p
				break
			}
		}
	}
	if claimed == nil {
		t.Fatal("no dirty page to claim")
	}
	if _, err := st.CleanBatch(budget); err != nil {
		t.Fatal(err)
	}
	if !st.isDirty(rid.Page) {
		t.Fatal("cleaner wrote back a pinned, in-use page")
	}
	if !st.isDirty(claimed.ID()) {
		t.Fatal("cleaner wrote back a page whose writeback latch was held")
	}
	claimed.wb.Store(false)
	pinned.Unpin()
}

// TestCleanerStealRaceWritesImageOnce pins down the PR's two core
// claims at once: (1) a page the cleaner has in flight is never also
// written by a demand steal — the writeback latch makes the image land
// exactly once; (2) faults (and their evictions) proceed while the
// cleaner's archive write is still blocked on "I/O", because eviction
// no longer serializes writebacks under evictMu.
func TestCleanerStealRaceWritesImageOnce(t *testing.T) {
	const budget = 6
	st, h, arch, wal, sl := cleanerHarness(t, budget)

	// Dirty a handful of pages, make them durably covered (as committed
	// work would be), then let the cleaner claim them all and block
	// inside the archive write.
	for i := 0; i < 20; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	wal.Force(sl.next + 1)
	inFlight := st.DirtyPages()
	if len(inFlight) == 0 {
		t.Fatal("nothing dirty")
	}
	arch.gate()
	cleanErr := make(chan error, 1)
	go func() {
		_, err := st.CleanBatch(budget)
		cleanErr <- err
	}()
	<-arch.entered // images written; mark-clean and release still pending

	// Memory pressure from another space while the cleaner is "mid-I/O":
	// these faults must complete — finding victims or overshooting — not
	// queue behind the blocked writeback. Before this PR the eviction
	// lock was held across steal I/O and this would stall.
	h2 := NewHeapFile(st, 2, "u")
	for i := 0; i < 20; i++ {
		if _, err := h2.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}

	arch.release <- struct{}{}
	if err := <-cleanErr; err != nil {
		t.Fatalf("CleanBatch: %v", err)
	}
	// Every page the cleaner had in flight was written exactly once: the
	// concurrent eviction storm could not double-write (steal) any of
	// them while the writeback latch was held.
	for _, e := range inFlight {
		if got := arch.putsFor(e.PageID); got > 1 {
			t.Fatalf("page %d written %d times during cleaner/steal race", e.PageID, got)
		}
		if st.isDirty(e.PageID) {
			continue // claimed by nobody this pass (e.g. was pinned); fine
		}
	}
	if cs := st.CacheStats(); cs.CleanerWrites == 0 {
		t.Fatalf("cleaner recorded no writes: %+v", cs)
	}
}

// TestFailedStealKeepsPageEvictable covers the clock bookkeeping of the
// out-of-lock steal path: a victim leaves the clock before its steal
// I/O starts, so a steal that fails (here: the page gets pinned
// mid-steal) must put it back — otherwise the page would stay resident
// with no clock entry and never be visited by eviction again, silently
// burning a frame of the budget.
func TestFailedStealKeepsPageEvictable(t *testing.T) {
	const budget = 4
	st, h, arch, wal, sl := cleanerHarness(t, budget)
	rid, err := h.Insert(bigRow(0), sl.log)
	if err != nil {
		t.Fatal(err)
	}
	wal.Force(sl.next + 1)

	// Block the steal's Put after the image lands, pin the victim while
	// the steal is parked, then let it finish: the final revalidation
	// sees the pin and the frame stays.
	arch.gatePuts()
	victim, err := st.Get(rid.Page)
	if err != nil || victim == nil {
		t.Fatalf("victim lookup: %v", err)
	}
	victim.Unpin()
	done := make(chan bool, 1)
	go func() { done <- st.evictOne() }()
	select {
	case <-arch.entered:
	case ok := <-done:
		t.Fatalf("evictOne returned %v without entering the archive gate", ok)
	}
	pinned, err := st.Get(rid.Page) // pin mid-steal → steal must fail
	if err != nil || pinned == nil {
		t.Fatalf("mid-steal pin: %v", err)
	}
	arch.release <- struct{}{}
	if <-done {
		t.Fatal("steal claimed success against a pinned page")
	}
	if p, _ := st.Get(rid.Page); p == nil {
		t.Fatal("page vanished despite the failed steal")
	} else {
		p.Unpin()
	}
	pinned.Unpin()
	arch.ungatePuts()

	// The page must still be reachable by the clock: with the pin gone
	// (and the page now clean in the archive's eyes — the steal wrote
	// it, but it stayed dirty in the DPT), eviction pressure must be
	// able to reclaim it rather than skip it forever.
	evicted := false
	for i := 0; i < 8 && !evicted; i++ {
		evicted = st.evictOne()
	}
	if !evicted {
		t.Fatal("no frame reclaimable after the failed steal — victim lost its clock entry")
	}
}

func TestNeedCleanSemantics(t *testing.T) {
	st, h, _, wal, sl := cleanerHarness(t, 8)
	if st.NeedClean(0) {
		t.Fatal("target 0 can never need cleaning")
	}
	// Empty pool: everything free.
	if st.NeedClean(8) {
		t.Fatal("empty pool needs no cleaning")
	}
	for i := 0; i < 30; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	if !st.NeedClean(4) {
		t.Fatal("full dirty pool reported no need to clean")
	}
	wal.Force(sl.next + 1)
	if n, err := st.CleanBatch(8); err != nil || n == 0 {
		t.Fatalf("CleanBatch: n=%d err=%v", n, err)
	}
	if st.NeedClean(4) {
		t.Fatal("still needs cleaning after a full pass")
	}

	// Unbounded pools and stores without a WAL never clean.
	st2 := NewStore()
	if err := st2.SetBackend(NewMemArchive()); err != nil {
		t.Fatal(err)
	}
	if st2.NeedClean(4) {
		t.Fatal("unbounded store reported cleaning need")
	}
	if n, err := st2.CleanBatch(4); err != nil || n != 0 {
		t.Fatalf("unbounded CleanBatch: n=%d err=%v", n, err)
	}
}
