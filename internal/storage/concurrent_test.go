package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin down PR 6's concurrency contract: pagefile reads are
// lock-free (validated by the slot CRC, retried on a torn race) and
// never wait on a batch writer's fsyncs; the buffer pool's fault path
// runs concurrently with the checkpoint sweep and the cleaner over the
// same pages without torn images or lost updates. All of them are built
// to run under -race (and are in the Makefile's test-race list).

// pfVersionedImage builds a page image whose body encodes its own
// version, so any torn mix of two versions is detectable byte-by-byte
// even before the CRC is consulted.
func pfVersionedImage(pid, version uint64) []byte {
	img := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(img[0:8], pid)
	fill := byte(version)
	if fill == 0 {
		fill = 0xA5
	}
	for i := hdrSize; i < PageSize; i++ {
		img[i] = fill
	}
	return img
}

// TestPageFileConcurrentReadersVsBatchWriters is the Layer 1 race
// stress: readers Get pages lock-free while batch writers overwrite the
// very same slots. Every successful read must return a committed image
// — correct pageID, internally consistent body — never a torn mix of
// two versions. Run with -race; the optimistic read path's retries are
// expected (and counted), torn results are not.
func TestPageFileConcurrentReadersVsBatchWriters(t *testing.T) {
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))
	const pages = 48
	seed := make([]PageImage, pages)
	for i := range seed {
		seed[i] = PageImage{PID: uint64(i + 1), Img: pfVersionedImage(uint64(i+1), 1)}
	}
	if err := pf.PutBatch(seed); err != nil {
		t.Fatal(err)
	}

	iters := 60
	if testing.Short() {
		iters = 15
	}
	var stop atomic.Bool
	errs := make(chan error, 16)

	// Writers: overlapping batches over the same slots, each stamping a
	// fresh version into every byte of the body.
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for it := 0; it < iters && !stop.Load(); it++ {
				batch := make([]PageImage, 0, pages/2)
				for pid := uint64(1 + w); pid <= pages; pid += 2 { // overlapping stripes
					batch = append(batch, PageImage{PID: pid, Img: pfVersionedImage(pid, uint64(it+2))})
				}
				if err := pf.PutBatch(batch); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers: hammer every page until the writers are done. A read may
	// observe any committed version; it must never observe a torn one.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				pid := uint64(1 + rng.Intn(pages))
				img, err := pf.Get(pid)
				if err != nil {
					errs <- err
					return
				}
				if got := binary.LittleEndian.Uint64(img[0:8]); got != pid {
					errs <- fmt.Errorf("read of page %d returned page %d", pid, got)
					return
				}
				fill := img[hdrSize]
				for i := hdrSize + 1; i < PageSize; i += 512 {
					if img[i] != fill {
						errs <- fmt.Errorf("page %d: torn image survived validation (body mixes %#x and %#x)", pid, fill, img[i])
						return
					}
				}
			}
		}(r)
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	t.Logf("read retries under contention: %d", pf.ReadRetries())
}

// TestPageFileReadsNotBlockedByBatchFsyncs is the PR's latency
// acceptance property: a Get concurrent with an in-progress PutBatch
// completes without waiting for the batch's fsyncs. With a simulated
// 40ms device sync, the batch's two fsyncs pin it down for ≥80ms while
// every concurrent read of an unrelated (committed) page must return in
// a small fraction of one sync delay — before this PR both shared one
// mutex and each read ate the full batch latency.
func TestPageFileReadsNotBlockedByBatchFsyncs(t *testing.T) {
	const syncDelay = 40 * time.Millisecond
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))
	const resident = 8
	seed := make([]PageImage, resident)
	for i := range seed {
		seed[i] = PageImage{PID: uint64(i + 1), Img: pfVersionedImage(uint64(i+1), 1)}
	}
	if err := pf.PutBatch(seed); err != nil {
		t.Fatal(err)
	}
	pf.SetSyncDelay(syncDelay)

	// A fat batch over different pages: journal fsync + pagefile fsync
	// = 2 × syncDelay of simulated device time.
	batch := make([]PageImage, 64)
	for i := range batch {
		pid := uint64(100 + i)
		batch[i] = PageImage{PID: pid, Img: pfVersionedImage(pid, 2)}
	}
	batchDone := make(chan error, 1)
	start := time.Now()
	go func() { batchDone <- pf.PutBatch(batch) }()

	// Read committed pages for the whole window the batch is in flight.
	var worst time.Duration
	reads := 0
	for {
		select {
		case err := <-batchDone:
			if err != nil {
				t.Fatal(err)
			}
			if reads == 0 {
				t.Skip("batch finished before any concurrent read was timed")
			}
			if elapsed := time.Since(start); elapsed < 2*syncDelay {
				t.Fatalf("batch finished in %v — simulated sync delay not in effect", elapsed)
			}
			// The acceptance bound: no read waited out a device fsync.
			// syncDelay/2 is ~20ms of headroom for a microsecond-scale
			// pread even on a loaded CI machine.
			if worst >= syncDelay/2 {
				t.Fatalf("worst concurrent read took %v against a %v device sync (reads serialized behind the batch)", worst, syncDelay)
			}
			t.Logf("%d reads concurrent with the batch; worst %v vs %v batch window", reads, worst, 2*syncDelay)
			return
		default:
		}
		pid := uint64(1 + reads%resident)
		t0 := time.Now()
		img, err := pf.Get(pid)
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if err != nil || img == nil {
			t.Fatalf("concurrent Get(%d): %v", pid, err)
		}
		reads++
	}
}

// TestStoreConcurrentFaultsVsSweepAndCleaner is the satellite stress
// test over the full pool: concurrent readers fault pages in and out of
// a small cache while a checkpoint sweep and cleaner passes write the
// same pages back through the real pagefile, and a writer keeps
// re-dirtying them. Torn reads, double writebacks and lost pages all
// surface as errors (or as -race reports).
func TestStoreConcurrentFaultsVsSweepAndCleaner(t *testing.T) {
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))
	wal := &fakeWAL{}
	sl := &seqLog{}
	st := NewStore()
	if err := st.SetBackend(pf); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	st.SetCachePages(10)
	h := NewHeapFile(st, 1, "t")

	const rows = 60 // ≈ 12+ pages: larger than the 10-frame budget
	for i := 0; i < rows; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	wal.Force(sl.next + 1)
	st.ArchiveDirtyPages(pf, wal.Durable())
	pids, err := st.AllPageIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) <= 10 {
		t.Fatalf("only %d pages — working set not larger than the cache", len(pids))
	}

	dur := 250 * time.Millisecond
	if testing.Short() {
		dur = 60 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Readers: fault random pages in (evicting others out) and sanity-
	// check what comes back.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 100))
			for time.Now().Before(deadline) {
				pid := pids[rng.Intn(len(pids))]
				p, err := st.Get(pid)
				if err != nil {
					errs <- err
					return
				}
				if p == nil {
					t.Errorf("page %d vanished under concurrent sweep/cleaner", pid)
					return
				}
				if p.ID() != pid {
					t.Errorf("asked for page %d, got %d", pid, p.ID())
				}
				p.Unpin()
			}
		}(r)
	}
	// Writer: keep re-dirtying pages so the sweep and cleaner always
	// have work racing the readers' faults.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := rows; time.Now().Before(deadline); i++ {
			if _, err := h.Insert(bigRow(i), sl.log); err != nil {
				errs <- err
				return
			}
			wal.Force(sl.next + 1)
		}
	}()
	// Sweeper: checkpoint-style full-DPT writebacks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			st.ArchiveDirtyPages(pf, wal.Durable())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Cleaner: capacity-bounded passes over the same dirty set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := st.CleanBatch(4); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Quiesce and verify every row is still intact end to end.
	wal.Force(sl.next + 1)
	st.ArchiveDirtyPages(pf, wal.Durable())
	for _, pid := range pids {
		p, err := st.Get(pid)
		if err != nil || p == nil {
			t.Fatalf("page %d unreadable after the storm: %v", pid, err)
		}
		p.Unpin()
	}
	t.Logf("stats after storm: %+v, pagefile read retries: %d", st.CacheStats(), pf.ReadRetries())
}

// TestPrefetchSequentialScanHits: a cold sequential scan over an
// archived table triggers read-ahead — the pipeline installs pages
// before demand reaches them, demand accesses count as prefetch hits,
// and residency never exceeds the budget (prefetched frames are charged
// like any other).
func TestPrefetchSequentialScanHits(t *testing.T) {
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))
	wal := &fakeWAL{}
	sl := &seqLog{}

	// Build and archive a contiguous run of pages, then start over with
	// an empty pool over the same backend — a cold cache, as a reopen
	// would see it.
	build := NewStore()
	if err := build.SetBackend(pf); err != nil {
		t.Fatal(err)
	}
	build.AttachWAL(wal)
	h := NewHeapFile(build, 1, "t")
	const rows = 200
	for i := 0; i < rows; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	wal.Force(sl.next + 1)
	build.ArchiveDirtyPages(pf, wal.Durable())
	pids := build.PageIDs()
	sortPageIDs(pids)
	if len(pids) < 24 {
		t.Fatalf("only %d pages; need a long sequential run", len(pids))
	}

	const budget = 16
	st := NewStore()
	if err := st.SetBackend(pf); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	st.SetCachePages(budget)
	st.SetPrefetch(8)

	for _, pid := range pids {
		p, err := st.Get(pid)
		if err != nil || p == nil {
			t.Fatalf("scan fault %d: %v", pid, err)
		}
		p.Unpin()
		if r := st.CacheStats().Resident; r > budget {
			t.Fatalf("resident %d exceeds budget %d mid-scan", r, budget)
		}
		// A beat of think time per page, as a real scan's per-page work:
		// gives the pipeline its chance to run ahead of demand.
		time.Sleep(200 * time.Microsecond)
	}
	cs := st.CacheStats()
	if cs.PrefetchReads == 0 {
		t.Fatalf("sequential scan never opened the read-ahead window: %+v", cs)
	}
	if cs.PrefetchHits == 0 {
		t.Fatalf("prefetched pages never served demand: %+v", cs)
	}
	if cs.Misses+cs.PrefetchHits < int64(len(pids)) {
		t.Fatalf("scan accesses unaccounted for: %+v over %d pages", cs, len(pids))
	}
	if cs.StealWrites != 0 {
		t.Fatalf("a read-only scan performed %d demand steals: %+v", cs.StealWrites, cs)
	}
	t.Logf("scan of %d pages: %d misses, %d prefetch reads, %d hits", len(pids), cs.Misses, cs.PrefetchReads, cs.PrefetchHits)
}

// TestPrefetchNeverStealsDirtyPages: frame reservation for read-ahead
// performs clean-only eviction — with every resident frame dirty it
// gives up (and withdraws its residency charge) rather than force the
// log and steal on behalf of a page nobody asked for.
func TestPrefetchNeverStealsDirtyPages(t *testing.T) {
	const budget = 4
	st, h, arch, wal, sl := cleanerHarness(t, budget)
	st.SetPrefetch(4)
	// Fill well past the budget: the pool settles at `budget` resident
	// frames, every one of them dirty.
	for i := 0; i < 30; i++ {
		if _, err := h.Insert(bigRow(i), sl.log); err != nil {
			t.Fatal(err)
		}
	}
	wal.Force(sl.next + 1)
	before := st.CacheStats()
	if dirty := len(st.DirtyPages()); int64(dirty) < before.Resident || before.Resident < budget {
		t.Fatalf("setup: want a full, all-dirty pool; resident=%d dirty=%d", before.Resident, dirty)
	}

	// Every frame dirty: a prefetch reservation must fail clean.
	if st.reservePrefetchFrame() {
		t.Fatal("prefetch reserved a frame out of an all-dirty pool")
	}
	after := st.CacheStats()
	if after.Resident != before.Resident {
		t.Fatalf("failed reservation leaked residency: %d → %d", before.Resident, after.Resident)
	}
	if after.StealWrites != before.StealWrites || after.Evictions != before.Evictions {
		t.Fatalf("clean-only eviction stole or evicted: %+v → %+v", before, after)
	}

	// After a cleaner pass the same reservation succeeds by dropping a
	// clean frame — still zero steals.
	if n, err := st.CleanBatch(budget); err != nil || n == 0 {
		t.Fatalf("CleanBatch: n=%d err=%v", n, err)
	}
	if !st.reservePrefetchFrame() {
		t.Fatal("prefetch could not reserve a frame from a cleaned pool")
	}
	st.releaseFrame()
	if cs := st.CacheStats(); cs.StealWrites != before.StealWrites {
		t.Fatalf("prefetch reservation performed a steal: %+v", cs)
	}
	_ = arch
}

// TestPrefetchedPageIsColdAndConsumable: a page installed by the
// read-ahead pipeline arrives unpinned with the reference bit clear (an
// unconsumed prefetch is the clock's first victim), and its first
// demand access consumes the prefetched flag exactly once.
func TestPrefetchedPageIsColdAndConsumable(t *testing.T) {
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))
	wal := &fakeWAL{}
	st := NewStore()
	if err := st.SetBackend(pf); err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(wal)
	st.SetCachePages(8)
	st.SetPrefetch(4)

	pid := MakePageID(1, 1)
	img := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(img[0:8], pid)
	if err := pf.Put(pid, img); err != nil {
		t.Fatal(err)
	}

	// Drive prefetchOne directly (taking its semaphore slot as noteAccess
	// would): the page must land cold.
	st.prefetchSem <- struct{}{}
	st.prefetchOne(pid)
	sh := st.shard(pid)
	sh.mu.RLock()
	p := sh.pages[pid]
	sh.mu.RUnlock()
	if p == nil {
		t.Fatal("prefetchOne installed nothing")
	}
	if p.pins.Load() != 0 || p.ref.Load() {
		t.Fatalf("prefetched page installed hot: pins=%d ref=%v", p.pins.Load(), p.ref.Load())
	}
	if !p.prefetched.Load() {
		t.Fatal("prefetched flag not set")
	}
	if st.CacheStats().PrefetchReads != 1 {
		t.Fatalf("stats: %+v", st.CacheStats())
	}

	// First demand access consumes the flag; the second is a plain hit.
	for i := 0; i < 2; i++ {
		q, err := st.Get(pid)
		if err != nil || q == nil {
			t.Fatalf("demand access %d: %v", i, err)
		}
		q.Unpin()
	}
	cs := st.CacheStats()
	if cs.PrefetchHits != 1 {
		t.Fatalf("prefetched flag consumed %d times, want exactly once: %+v", cs.PrefetchHits, cs)
	}
	if cs.Misses != 0 {
		t.Fatalf("demand access of a prefetched page counted as a miss: %+v", cs)
	}
}
