package storage

import (
	"errors"
	"fmt"
	"sync"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// LogFunc is the storage→log callback: invoked under the page latch with
// the physiological payload describing a mutation. It must append the
// record to the log (chaining PrevLSN et al.) and return the record's
// start LSN (at) and end LSN. The engine stamps pages with the END LSN —
// "the page reflects the log up to here" — which keeps the redo test
// unambiguous even for the record at LSN 0; the start LSN feeds the
// dirty-page table, where redo must begin.
//
// Inverting control this way keeps the WAL protocol airtight: the log
// record is created while the latch pins the page state it describes, so
// pageLSN ordering always matches log ordering.
type LogFunc func(pageID uint64, up logrec.UpdatePayload) (at, end lsn.LSN, err error)

// NopLog is a LogFunc for unlogged operations (loading fixtures).
func NopLog(pageID uint64, up logrec.UpdatePayload) (at, end lsn.LSN, err error) {
	return lsn.Zero, lsn.Zero, nil
}

// ErrNotFound is returned when a RID does not name a live record.
var ErrNotFound = errors.New("storage: record not found")

// HeapFile is an unordered collection of records in pages, addressed by
// RID. One HeapFile per table; the heap's space ID is encoded in all of
// its page IDs, which is how recovery reassembles heaps.
type HeapFile struct {
	store *Store
	space uint32
	name  string

	mu        sync.Mutex
	avail     []uint64 // pages that may have free space (LIFO)
	allocated []uint64 // every page ever owned by this heap
}

// NewHeapFile creates an empty heap for the given space.
func NewHeapFile(store *Store, space uint32, name string) *HeapFile {
	return &HeapFile{store: store, space: space, name: name}
}

// Name returns the heap's label (diagnostics).
func (h *HeapFile) Name() string { return h.name }

// Space returns the heap's space ID.
func (h *HeapFile) Space() uint32 { return h.space }

// Adopt attaches an existing page to the heap (restart path). Pages must
// be adopted in ascending ID order for placement determinism.
func (h *HeapFile) Adopt(p *Page) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.allocated = append(h.allocated, p.ID())
	p.Latch.RLock()
	hasSpace := p.FreeSpace() > 64
	p.Latch.RUnlock()
	if hasSpace {
		h.avail = append(h.avail, p.ID())
	}
}

// Pages returns every page ID the heap has allocated.
func (h *HeapFile) Pages() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.allocated))
	copy(out, h.allocated)
	return out
}

// Insert places data in some page, logs the insert via log, and returns
// the record's RID.
func (h *HeapFile) Insert(data []byte, log LogFunc) (RID, error) {
	if len(data) > MaxRecordSize {
		return RID{}, ErrRecordTooBig
	}
	for {
		p, err := h.pickPage(len(data))
		if err != nil {
			return RID{}, err
		}
		p.Latch.Lock()
		slot := p.FindInsertSlot()
		if !p.CanFit(slot, len(data)) {
			p.Latch.Unlock()
			h.dropAvail(p.ID())
			p.Unpin()
			continue
		}
		up := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: uint16(slot), After: data}
		at, end, err := log(p.ID(), up)
		if err != nil {
			p.Latch.Unlock()
			p.Unpin()
			return RID{}, err
		}
		if err := p.Apply(up, end); err != nil {
			p.Latch.Unlock()
			p.Unpin()
			return RID{}, fmt.Errorf("storage: heap insert apply: %w", err)
		}
		h.store.MarkDirty(p.ID(), at)
		rid := RID{Page: p.ID(), Slot: uint16(slot)}
		p.Latch.Unlock()
		p.Unpin()
		return rid, nil
	}
}

// pickPage returns a pinned page that may fit size bytes, allocating if
// needed; the caller unpins it.
func (h *HeapFile) pickPage(size int) (*Page, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.avail) > 0 {
		pid := h.avail[len(h.avail)-1]
		p, err := h.store.Get(pid)
		if err != nil {
			return nil, err
		}
		if p == nil {
			h.avail = h.avail[:len(h.avail)-1]
			continue
		}
		p.Latch.RLock()
		fits := p.CanFit(p.FindInsertSlot(), size)
		p.Latch.RUnlock()
		if fits {
			return p, nil
		}
		p.Unpin()
		h.avail = h.avail[:len(h.avail)-1]
	}
	p := h.store.Allocate(h.space)
	h.avail = append(h.avail, p.ID())
	h.allocated = append(h.allocated, p.ID())
	return p, nil
}

// dropAvail removes pid from the available list (it filled up between
// selection and latch).
func (h *HeapFile) dropAvail(pid uint64) {
	h.mu.Lock()
	for i, id := range h.avail {
		if id == pid {
			h.avail = append(h.avail[:i], h.avail[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// Read returns a copy of the record at rid. A failed page fault (I/O
// error, corruption) is reported as its own error, never as ErrNotFound.
func (h *HeapFile) Read(rid RID) ([]byte, error) {
	p, err := h.store.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, ErrNotFound
	}
	defer p.Unpin()
	p.Latch.RLock()
	defer p.Latch.RUnlock()
	data, err := p.Get(int(rid.Slot))
	if err != nil {
		return nil, ErrNotFound
	}
	return data, nil
}

// Update overwrites the record at rid, logging before and after images.
func (h *HeapFile) Update(rid RID, data []byte, log LogFunc) error {
	if len(data) > MaxRecordSize {
		return ErrRecordTooBig
	}
	p, err := h.store.Get(rid.Page)
	if err != nil {
		return err
	}
	if p == nil {
		return ErrNotFound
	}
	defer p.Unpin()
	p.Latch.Lock()
	defer p.Latch.Unlock()
	before, err := p.view(int(rid.Slot))
	if err != nil {
		return ErrNotFound
	}
	up := logrec.UpdatePayload{Op: logrec.OpSet, Slot: rid.Slot, Before: before, After: data}
	at, end, err := log(rid.Page, up)
	if err != nil {
		return err
	}
	if err := p.Apply(up, end); err != nil {
		return fmt.Errorf("storage: heap update apply: %w", err)
	}
	h.store.MarkDirty(rid.Page, at)
	return nil
}

// Mutate applies fn to the record bytes under the exclusive latch,
// logging old and new images in one step. It avoids the copy + re-read
// race of Read-then-Update and is the hot path the workloads use
// (read-modify-write of a balance field).
func (h *HeapFile) Mutate(rid RID, log LogFunc, fn func(cur []byte) ([]byte, error)) error {
	p, err := h.store.Get(rid.Page)
	if err != nil {
		return err
	}
	if p == nil {
		return ErrNotFound
	}
	defer p.Unpin()
	p.Latch.Lock()
	defer p.Latch.Unlock()
	before, err := p.view(int(rid.Slot))
	if err != nil {
		return ErrNotFound
	}
	after, err := fn(before)
	if err != nil {
		return err
	}
	up := logrec.UpdatePayload{Op: logrec.OpSet, Slot: rid.Slot, Before: before, After: after}
	at, end, err := log(rid.Page, up)
	if err != nil {
		return err
	}
	if err := p.Apply(up, end); err != nil {
		return fmt.Errorf("storage: heap mutate apply: %w", err)
	}
	h.store.MarkDirty(rid.Page, at)
	return nil
}

// Delete removes the record at rid, logging its before image.
func (h *HeapFile) Delete(rid RID, log LogFunc) error {
	p, err := h.store.Get(rid.Page)
	if err != nil {
		return err
	}
	if p == nil {
		return ErrNotFound
	}
	defer p.Unpin()
	p.Latch.Lock()
	before, err := p.view(int(rid.Slot))
	if err != nil {
		p.Latch.Unlock()
		return ErrNotFound
	}
	up := logrec.UpdatePayload{Op: logrec.OpDelete, Slot: rid.Slot, Before: before}
	at, end, err := log(rid.Page, up)
	if err != nil {
		p.Latch.Unlock()
		return err
	}
	if err := p.Apply(up, end); err != nil {
		p.Latch.Unlock()
		return fmt.Errorf("storage: heap delete apply: %w", err)
	}
	h.store.MarkDirty(rid.Page, at)
	// Drop the latch before touching the placement list: pickPage takes
	// h.mu then the latch, so taking h.mu while latched would invert the
	// lock order and deadlock.
	p.Latch.Unlock()
	h.mu.Lock()
	// The page regained space; make it placeable again.
	found := false
	for _, id := range h.avail {
		if id == rid.Page {
			found = true
			break
		}
	}
	if !found {
		h.avail = append(h.avail, rid.Page)
	}
	h.mu.Unlock()
	return nil
}

// Scan calls fn for every live record in the heap (in page, slot order).
// fn receives a copy it may retain. Pages fault in and out as the scan
// walks, so memory stays within the cache budget even for heaps far
// larger than RAM; a failed fault aborts the scan with its error.
func (h *HeapFile) Scan(fn func(rid RID, data []byte) bool) error {
	for _, pid := range h.Pages() {
		p, err := h.store.Get(pid)
		if err != nil {
			return err
		}
		if p == nil {
			continue
		}
		p.Latch.RLock()
		n := p.NumSlots()
		type item struct {
			rid  RID
			data []byte
		}
		items := make([]item, 0, n)
		for s := 0; s < n; s++ {
			if data, err := p.Get(s); err == nil {
				items = append(items, item{RID{pid, uint16(s)}, data})
			}
		}
		p.Latch.RUnlock()
		p.Unpin()
		for _, it := range items {
			if !fn(it.rid, it.data) {
				return nil
			}
		}
	}
	return nil
}
