package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// countingLog is a LogFunc that assigns increasing LSNs and records
// payloads for inspection.
type countingLog struct {
	mu   sync.Mutex
	next lsn.LSN
	ups  []logrec.UpdatePayload
	pids []uint64
}

func (c *countingLog) log(pid uint64, up logrec.UpdatePayload) (lsn.LSN, lsn.LSN, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.next
	c.next += 48
	cp := up
	cp.Before = append([]byte(nil), up.Before...)
	cp.After = append([]byte(nil), up.After...)
	c.ups = append(c.ups, cp)
	c.pids = append(c.pids, pid)
	return at, c.next, nil
}

func TestHeapInsertReadUpdateDelete(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "accounts")
	cl := &countingLog{}

	rid, err := h.Insert([]byte("balance=100"), cl.log)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil || string(got) != "balance=100" {
		t.Fatalf("Read: %q %v", got, err)
	}
	if err := h.Update(rid, []byte("balance=150"), cl.log); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Read(rid)
	if string(got) != "balance=150" {
		t.Fatalf("after update: %q", got)
	}
	if err := h.Delete(rid, cl.log); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read deleted: %v", err)
	}
	// Log saw insert, set, delete with correct images.
	if len(cl.ups) != 3 {
		t.Fatalf("%d log records", len(cl.ups))
	}
	if cl.ups[0].Op != logrec.OpInsert || string(cl.ups[0].After) != "balance=100" {
		t.Fatalf("insert record: %+v", cl.ups[0])
	}
	if cl.ups[1].Op != logrec.OpSet || string(cl.ups[1].Before) != "balance=100" ||
		string(cl.ups[1].After) != "balance=150" {
		t.Fatalf("set record: %+v", cl.ups[1])
	}
	if cl.ups[2].Op != logrec.OpDelete || string(cl.ups[2].Before) != "balance=150" {
		t.Fatalf("delete record: %+v", cl.ups[2])
	}
}

func TestHeapMutate(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "t")
	cl := &countingLog{}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, 100)
	rid, _ := h.Insert(buf, cl.log)

	err := h.Mutate(rid, cl.log, func(cur []byte) ([]byte, error) {
		v := binary.LittleEndian.Uint64(cur)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, v+23)
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(rid)
	if binary.LittleEndian.Uint64(got) != 123 {
		t.Fatalf("mutate result: %d", binary.LittleEndian.Uint64(got))
	}
	// Mutate with failing fn leaves the record untouched and logs nothing.
	before := len(cl.ups)
	sentinel := errors.New("nope")
	if err := h.Mutate(rid, cl.log, func([]byte) ([]byte, error) {
		return nil, sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	if len(cl.ups) != before {
		t.Fatal("failed mutate logged a record")
	}
}

func TestHeapSpillsAcrossPages(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "big")
	cl := &countingLog{}
	rec := make([]byte, 1000)
	var rids []RID
	for i := 0; i < 50; i++ { // 50KB ≫ one 8KB page
		binary.LittleEndian.PutUint64(rec, uint64(i))
		rid, err := h.Insert(rec, cl.log)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if pages := h.Pages(); len(pages) < 6 {
		t.Fatalf("expected multiple pages, got %d", len(pages))
	}
	for i, rid := range rids {
		got, err := h.Read(rid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(i) {
			t.Fatalf("record %d mangled", i)
		}
	}
}

func TestHeapDeleteMakesSpaceReusable(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "t")
	rec := make([]byte, 2000)
	var rids []RID
	for i := 0; i < 8; i++ {
		rid, err := h.Insert(rec, NopLog)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := len(h.Pages())
	for _, rid := range rids {
		if err := h.Delete(rid, NopLog); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := h.Insert(rec, NopLog); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.Pages()); got != pagesBefore {
		t.Fatalf("deleted space not reused: %d pages -> %d", pagesBefore, got)
	}
}

func TestHeapScan(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "t")
	want := map[string]bool{}
	for i := 0; i < 30; i++ {
		data := []byte(fmt.Sprintf("row-%02d", i))
		if _, err := h.Insert(data, NopLog); err != nil {
			t.Fatal(err)
		}
		want[string(data)] = true
	}
	got := 0
	h.Scan(func(rid RID, data []byte) bool {
		if !want[string(data)] {
			t.Errorf("unexpected row %q", data)
		}
		got++
		return true
	})
	if got != 30 {
		t.Fatalf("scanned %d rows", got)
	}
	// Early stop.
	n := 0
	h.Scan(func(RID, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestHeapConcurrentInserts(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "t")
	cl := &countingLog{}
	const workers = 8
	const perW = 300
	var mu sync.Mutex
	all := make(map[RID][]byte)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				data := make([]byte, 40+(w*17+i)%200)
				binary.LittleEndian.PutUint64(data, uint64(w*perW+i))
				rid, err := h.Insert(data, cl.log)
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mu.Lock()
				all[rid] = data
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(all) != workers*perW {
		t.Fatalf("RID collision: %d unique of %d", len(all), workers*perW)
	}
	for rid, want := range all {
		got, err := h.Read(rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("rid %v mangled: %v", rid, err)
		}
	}
}

func TestStoreDirtyPageTable(t *testing.T) {
	st := NewStore()
	p1 := st.Allocate(1)
	p2 := st.Allocate(1)
	st.MarkDirty(p1.ID(), 100)
	st.MarkDirty(p1.ID(), 200) // recLSN must not move forward
	st.MarkDirty(p2.ID(), 50)
	dpt := st.DirtyPages()
	if len(dpt) != 2 {
		t.Fatalf("DPT size %d", len(dpt))
	}
	if dpt[0].PageID != p1.ID() || dpt[0].RecLSN != 100 {
		t.Fatalf("DPT[0]: %+v", dpt[0])
	}
	if got := st.MinRecLSN(); got != 50 {
		t.Fatalf("MinRecLSN: %v", got)
	}
	st.MarkClean(p2.ID())
	if got := st.MinRecLSN(); got != 100 {
		t.Fatalf("MinRecLSN after clean: %v", got)
	}
	st.MarkClean(p1.ID())
	if got := st.MinRecLSN(); got != lsn.Undefined {
		t.Fatalf("empty DPT MinRecLSN: %v", got)
	}
}

func TestStoreGetOrCreate(t *testing.T) {
	st := NewStore()
	p, err := st.GetOrCreate(500)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 500 {
		t.Fatalf("page id %d", p.ID())
	}
	if q, _ := st.GetOrCreate(500); q != p {
		t.Fatal("GetOrCreate not idempotent")
	}
	// The allocator must now hand out IDs above 500.
	if np := st.Allocate(1); np.ID() <= 500 {
		t.Fatalf("allocator reused ID space: %d", np.ID())
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	st := NewStore()
	h := NewHeapFile(st, 1, "t")
	cl := &countingLog{}
	rid, _ := h.Insert([]byte("archived row"), cl.log)

	arch := NewMemArchive()
	// WAL rule: nothing archived if durability hasn't reached pageLSN.
	if n := st.ArchiveDirtyPages(arch, 0); n != 0 {
		t.Fatalf("archived %d pages below durable horizon", n)
	}
	if n := st.ArchiveDirtyPages(arch, 1<<40); n != 1 {
		t.Fatalf("archived %d pages, want 1", n)
	}
	if len(st.DirtyPages()) != 0 {
		t.Fatal("DPT not cleaned after archive")
	}

	// Restart: fresh store loads the archive and sees the row.
	st2 := NewStore()
	if err := st2.LoadArchive(arch); err != nil {
		t.Fatal(err)
	}
	p, err := st2.Get(rid.Page)
	if err != nil || p == nil {
		t.Fatalf("page missing after restore: %v", err)
	}
	got, err := p.Get(int(rid.Slot))
	if err != nil || string(got) != "archived row" {
		t.Fatalf("restored row: %q %v", got, err)
	}
}

func TestRIDPack(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	if got := UnpackRID(r.Pack()); got != r {
		t.Fatalf("pack round trip: %+v", got)
	}
}
