package storage

import (
	"bytes"
	"testing"
)

// The in-memory archive takes the same batched sweep path as the
// PageFile: one PutBatch installs every image, and later mutation of
// the caller's buffers must not leak into the archive.
func TestMemArchivePutBatch(t *testing.T) {
	a := NewMemArchive()
	img1 := []byte{1, 2, 3}
	img2 := []byte{4, 5, 6}
	if err := a.PutBatch([]PageImage{{PID: 1, Img: img1}, {PID: 2, Img: img2}}); err != nil {
		t.Fatal(err)
	}
	img1[0] = 99 // the archive must hold its own copy
	got, err := a.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Get(1) = %v after caller mutation, want the snapshotted copy", got)
	}
	pids, err := a.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 || pids[0] != 1 || pids[1] != 2 {
		t.Fatalf("Pages = %v, want [1 2]", pids)
	}
	// A batched put overwrites like a plain Put would.
	if err := a.PutBatch([]PageImage{{PID: 2, Img: []byte{7}}}); err != nil {
		t.Fatal(err)
	}
	got, _ = a.Get(2)
	if !bytes.Equal(got, []byte{7}) {
		t.Fatalf("Get(2) = %v after overwrite, want [7]", got)
	}
}
