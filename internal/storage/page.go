// Package storage is the page-based storage engine the workloads run
// on: slotted pages with page LSNs, a sharded page store that doubles
// as a demand-paged buffer pool over an Archive backend (residency,
// pin/unpin, clock eviction with WAL-ordered dirty steal), a dirty-page
// table, heap files with record IDs, and a B+Tree index. Every mutation
// is expressed as a physiological UpdatePayload so the same code path
// serves normal forward processing, transaction rollback and ARIES
// redo.
//
// The paper's experiments use memory-resident datasets ("modern
// transaction processing workloads are largely memory resident", §6.1)
// with the log providing durability; this package plays the role
// Shore-MT's buffer manager and storage structures play there. Without
// a cache budget the store behaves exactly that way — fully resident;
// with Store.SetCachePages it bounds RAM and pages against the
// database file.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// PageSize is the fixed page size (8KiB, Shore-MT's default).
const PageSize = 8192

// Page header layout (little-endian):
//
//	 0  pageID   uint64
//	 8  pageLSN  uint64
//	16  nSlots   uint16
//	18  freeStart uint16 — end of the record heap area
//	20  flags    uint16
//	22  reserved uint16
const (
	hdrSize      = 24
	slotDirEntry = 4      // offset uint16 + length uint16
	deadOffset   = 0xFFFF // slot directory offset marking a dead slot
)

// MaxRecordSize is the largest record a page can hold.
const MaxRecordSize = PageSize - hdrSize - slotDirEntry

// Errors returned by page operations.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrBadSlot      = errors.New("storage: no such slot")
	ErrDeadSlot     = errors.New("storage: slot is dead")
	ErrRecordTooBig = errors.New("storage: record exceeds page capacity")
)

// Page is a slotted page: records grow up from the header, the slot
// directory grows down from the end. The Latch field is the short-term
// physical latch (distinct from logical locks); callers latch before
// touching page contents.
type Page struct {
	// Latch is the short-term physical latch: shared for reads of page
	// contents, exclusive for mutations. It orders pageLSN bumps
	// against the checkpoint sweep's check-and-clean.
	Latch sync.RWMutex

	// pins counts live references handed out by Store.Get/GetOrCreate/
	// Allocate; the buffer pool never evicts a pinned page. Pins are
	// taken under the owning shard's lock, so an evictor holding that
	// lock exclusively and observing pins == 0 knows no reference can
	// appear until it releases the lock.
	pins atomic.Int32
	// ref is the clock algorithm's second-chance bit, set on every
	// Store.Get hit and cleared by one sweep of the clock hand.
	ref atomic.Bool
	// wb is the per-page writeback latch: whoever CASes it false→true
	// owns the exclusive right to write this page's image to the archive
	// backend and (on success) mark it clean. The background cleaner, the
	// demand-steal path and the checkpoint sweep all contend for it, so a
	// page never has two backend writes in flight — the ordering hazard
	// where a slower writer lands a stale image over a fresher one after
	// the page was marked clean cannot arise. It is NOT a mutex: losers
	// skip the page instead of waiting.
	wb atomic.Bool
	// prefetched marks a page installed by the read-ahead pipeline that
	// no demand access has consumed yet; the first Get CASes it off and
	// counts the prefetch hit (prefetch.go).
	prefetched atomic.Bool

	buf [PageSize]byte
}

// Unpin releases one reference taken by Store.Get, Store.GetOrCreate or
// Store.Allocate, making the page evictable again once all pins are
// gone. Every pinned page must be unpinned exactly once.
func (p *Page) Unpin() { p.pins.Add(-1) }

// Pinned reports whether any reference currently pins the page (tests,
// diagnostics; inherently racy for anything else).
func (p *Page) Pinned() bool { return p.pins.Load() > 0 }

// NewPage returns an initialized empty page.
func NewPage(id uint64) *Page {
	p := &Page{}
	binary.LittleEndian.PutUint64(p.buf[0:8], id)
	binary.LittleEndian.PutUint64(p.buf[8:16], uint64(lsn.Zero))
	p.setFreeStart(hdrSize)
	return p
}

// ID returns the page's identifier.
func (p *Page) ID() uint64 { return binary.LittleEndian.Uint64(p.buf[0:8]) }

// LSN returns the page LSN: the LSN of the last record applied.
func (p *Page) LSN() lsn.LSN {
	return lsn.LSN(binary.LittleEndian.Uint64(p.buf[8:16]))
}

// SetLSN stamps the page LSN.
func (p *Page) SetLSN(l lsn.LSN) {
	binary.LittleEndian.PutUint64(p.buf[8:16], uint64(l))
}

// NumSlots returns the size of the slot directory (live and dead slots).
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[16:18]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[16:18], uint16(n))
}

func (p *Page) freeStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[18:20]))
}

func (p *Page) setFreeStart(n int) {
	binary.LittleEndian.PutUint16(p.buf[18:20], uint16(n))
}

// slotEntry returns the directory position of slot i.
func (p *Page) slotEntry(i int) int {
	return PageSize - slotDirEntry*(i+1)
}

func (p *Page) slotOffLen(i int) (off, length int) {
	e := p.slotEntry(i)
	return int(binary.LittleEndian.Uint16(p.buf[e : e+2])),
		int(binary.LittleEndian.Uint16(p.buf[e+2 : e+4]))
}

func (p *Page) setSlot(i, off, length int) {
	e := p.slotEntry(i)
	binary.LittleEndian.PutUint16(p.buf[e:e+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[e+2:e+4], uint16(length))
}

// FreeSpace returns the bytes available for a new record, accounting for
// a possible new slot directory entry but not for reclaimable dead space.
func (p *Page) FreeSpace() int {
	free := PageSize - slotDirEntry*p.NumSlots() - p.freeStart() - slotDirEntry
	if free < 0 {
		return 0
	}
	return free
}

// Get returns a copy of the record in slot i.
func (p *Page) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	off, length := p.slotOffLen(slot)
	if off == deadOffset {
		return nil, ErrDeadSlot
	}
	out := make([]byte, length)
	copy(out, p.buf[off:off+length])
	return out, nil
}

// view returns the record bytes in place (no copy); caller must hold the
// latch for the duration of use.
func (p *Page) view(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	off, length := p.slotOffLen(slot)
	if off == deadOffset {
		return nil, ErrDeadSlot
	}
	return p.buf[off : off+length], nil
}

// FindInsertSlot picks the slot a new record would occupy: the first dead
// slot, or a fresh one. It does not modify the page.
func (p *Page) FindInsertSlot() int {
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		if off, _ := p.slotOffLen(i); off == deadOffset {
			return i
		}
	}
	return n
}

// CanFit reports whether a record of the given size can be placed in the
// given slot (which must be dead or one past the end).
func (p *Page) CanFit(slot, size int) bool {
	if size > MaxRecordSize {
		return false
	}
	needDir := 0
	if slot == p.NumSlots() {
		needDir = slotDirEntry
	}
	avail := PageSize - slotDirEntry*p.NumSlots() - needDir - p.freeStart()
	if avail >= size {
		return true
	}
	// Compaction could reclaim dead space.
	return p.liveBytes()+size+hdrSize+slotDirEntry*p.NumSlots()+needDir <= PageSize
}

// liveBytes sums the sizes of live records.
func (p *Page) liveBytes() int {
	total := 0
	for i := 0; i < p.NumSlots(); i++ {
		if off, length := p.slotOffLen(i); off != deadOffset {
			total += length
		}
	}
	return total
}

// Insert places data into the given slot (dead or new). Callers pick the
// slot with FindInsertSlot so the operation is deterministic and can be
// replayed by redo.
func (p *Page) Insert(slot int, data []byte) error {
	if len(data) > MaxRecordSize {
		return ErrRecordTooBig
	}
	n := p.NumSlots()
	if slot > n || slot < 0 {
		// Redo on a page that had more slots at crash time than the
		// replayed state: grow the directory with dead slots.
		if slot < 0 {
			return ErrBadSlot
		}
		for i := n; i < slot; i++ {
			p.setSlot(i, deadOffset, 0)
		}
		p.setNumSlots(slot)
		n = slot
	}
	if slot < n {
		if off, _ := p.slotOffLen(slot); off != deadOffset {
			return fmt.Errorf("storage: insert into live slot %d: %w", slot, ErrBadSlot)
		}
	}
	needDir := 0
	if slot == n {
		needDir = slotDirEntry
	}
	if PageSize-slotDirEntry*n-needDir-p.freeStart() < len(data) {
		if p.liveBytes()+len(data)+hdrSize+slotDirEntry*n+needDir > PageSize {
			return ErrPageFull
		}
		p.compact()
	}
	off := p.freeStart()
	copy(p.buf[off:], data)
	if slot == n {
		p.setNumSlots(n + 1)
	}
	p.setSlot(slot, off, len(data))
	p.setFreeStart(off + len(data))
	return nil
}

// Set replaces the record in a live slot.
func (p *Page) Set(slot int, data []byte) error {
	if len(data) > MaxRecordSize {
		return ErrRecordTooBig
	}
	if slot < 0 || slot >= p.NumSlots() {
		return ErrBadSlot
	}
	off, length := p.slotOffLen(slot)
	if off == deadOffset {
		return ErrDeadSlot
	}
	if len(data) <= length {
		copy(p.buf[off:], data)
		p.setSlot(slot, off, len(data))
		return nil
	}
	// Grow: abandon the old space (reclaimed by compaction).
	need := len(data)
	if PageSize-slotDirEntry*p.NumSlots()-p.freeStart() < need {
		if p.liveBytes()-length+need+hdrSize+slotDirEntry*p.NumSlots() > PageSize {
			return ErrPageFull
		}
		p.setSlot(slot, deadOffset, 0) // exclude old copy from compaction
		p.compact()
		off = p.freeStart()
		copy(p.buf[off:], data)
		p.setSlot(slot, off, need)
		p.setFreeStart(off + need)
		return nil
	}
	newOff := p.freeStart()
	copy(p.buf[newOff:], data)
	p.setSlot(slot, newOff, need)
	p.setFreeStart(newOff + need)
	return nil
}

// Delete kills the record in a slot. The slot number stays reserved (so
// redo stays deterministic) and becomes reusable by Insert.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.NumSlots() {
		return ErrBadSlot
	}
	if off, _ := p.slotOffLen(slot); off == deadOffset {
		return ErrDeadSlot
	}
	p.setSlot(slot, deadOffset, 0)
	return nil
}

// compact rewrites live records to squeeze out dead space.
func (p *Page) compact() {
	type rec struct {
		slot int
		data []byte
	}
	var live []rec
	for i := 0; i < p.NumSlots(); i++ {
		if off, length := p.slotOffLen(i); off != deadOffset {
			d := make([]byte, length)
			copy(d, p.buf[off:off+length])
			live = append(live, rec{i, d})
		}
	}
	off := hdrSize
	for _, r := range live {
		copy(p.buf[off:], r.data)
		p.setSlot(r.slot, off, len(r.data))
		off += len(r.data)
	}
	p.setFreeStart(off)
}

// Apply performs a physiological update (from a log record) against the
// page and stamps the page LSN. It is the single redo entry point: the
// same function applies forward updates, rollback inverses and recovery
// redo.
func (p *Page) Apply(up logrec.UpdatePayload, at lsn.LSN) error {
	var err error
	switch up.Op {
	case logrec.OpInsert:
		err = p.Insert(int(up.Slot), up.After)
	case logrec.OpSet:
		err = p.Set(int(up.Slot), up.After)
	case logrec.OpDelete:
		err = p.Delete(int(up.Slot))
	default:
		err = fmt.Errorf("storage: unknown update op %v", up.Op)
	}
	if err != nil {
		return err
	}
	p.SetLSN(at)
	return nil
}

// Snapshot returns a copy of the raw page image (for the archive).
func (p *Page) Snapshot() []byte {
	out := make([]byte, PageSize)
	copy(out, p.buf[:])
	return out
}

// LoadSnapshot overwrites the page from a raw image.
func (p *Page) LoadSnapshot(img []byte) error {
	if len(img) != PageSize {
		return fmt.Errorf("storage: snapshot is %d bytes, want %d", len(img), PageSize)
	}
	copy(p.buf[:], img)
	return nil
}
