package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

func TestPageBasics(t *testing.T) {
	p := NewPage(7)
	if p.ID() != 7 || p.LSN() != lsn.Zero || p.NumSlots() != 0 {
		t.Fatalf("fresh page wrong: id=%d lsn=%v slots=%d", p.ID(), p.LSN(), p.NumSlots())
	}
	p.SetLSN(999)
	if p.LSN() != 999 {
		t.Fatal("SetLSN failed")
	}
}

func TestPageInsertGetSetDelete(t *testing.T) {
	p := NewPage(1)
	slot := p.FindInsertSlot()
	if slot != 0 {
		t.Fatalf("first slot %d", slot)
	}
	if err := p.Insert(slot, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(0)
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get: %q %v", got, err)
	}
	if err := p.Set(0, []byte("beta!")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(0)
	if string(got) != "beta!" {
		t.Fatalf("after Set: %q", got)
	}
	// Grow in place.
	if err := p.Set(0, []byte("a much longer record than before")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(0)
	if string(got) != "a much longer record than before" {
		t.Fatalf("after grow: %q", got)
	}
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); !errors.Is(err, ErrDeadSlot) {
		t.Fatalf("Get dead: %v", err)
	}
	// Slot is reusable.
	if s := p.FindInsertSlot(); s != 0 {
		t.Fatalf("dead slot not reused: %d", s)
	}
}

func TestPageErrors(t *testing.T) {
	p := NewPage(1)
	if _, err := p.Get(5); !errors.Is(err, ErrBadSlot) {
		t.Fatal(err)
	}
	if err := p.Set(0, []byte("x")); !errors.Is(err, ErrBadSlot) {
		t.Fatal(err)
	}
	if err := p.Delete(0); !errors.Is(err, ErrBadSlot) {
		t.Fatal(err)
	}
	if err := p.Insert(0, make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatal(err)
	}
	p.Insert(0, []byte("x"))
	if err := p.Insert(0, []byte("y")); err == nil {
		t.Fatal("insert into live slot must fail")
	}
	p.Delete(0)
	if err := p.Delete(0); !errors.Is(err, ErrDeadSlot) {
		t.Fatal(err)
	}
}

func TestPageFillsUp(t *testing.T) {
	p := NewPage(1)
	rec := make([]byte, 100)
	n := 0
	for {
		slot := p.FindInsertSlot()
		if !p.CanFit(slot, len(rec)) {
			break
		}
		if err := p.Insert(slot, rec); err != nil {
			t.Fatalf("insert %d: %v", n, err)
		}
		n++
	}
	// 8KB page, 100B records + 4B slots: expect ~78 records.
	if n < 70 || n > 82 {
		t.Fatalf("page held %d 100B records", n)
	}
	if err := p.Insert(p.NumSlots(), rec); !errors.Is(err, ErrPageFull) {
		t.Fatalf("overfull insert: %v", err)
	}
}

func TestPageCompaction(t *testing.T) {
	p := NewPage(1)
	// Fill, delete every other record, then insert records that only fit
	// after compaction.
	var slots []int
	rec := make([]byte, 200)
	for {
		s := p.FindInsertSlot()
		if !p.CanFit(s, len(rec)) {
			break
		}
		p.Insert(s, rec)
		slots = append(slots, s)
	}
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	// A 300B record does not fit in contiguous free space but fits after
	// compaction (we freed ~half the page).
	big := bytes.Repeat([]byte("z"), 300)
	s := p.FindInsertSlot()
	if !p.CanFit(s, len(big)) {
		t.Fatal("CanFit should see reclaimable space")
	}
	if err := p.Insert(s, big); err != nil {
		t.Fatalf("insert after compaction: %v", err)
	}
	got, err := p.Get(s)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big record mangled: %v", err)
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Get(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("survivor %d mangled: %v", slots[i], err)
		}
	}
}

func TestPageSetGrowWithCompaction(t *testing.T) {
	p := NewPage(1)
	rec := make([]byte, 500)
	var slots []int
	for {
		s := p.FindInsertSlot()
		if !p.CanFit(s, len(rec)) {
			break
		}
		p.Insert(s, rec)
		slots = append(slots, s)
	}
	// Free one record's worth, then grow another into that space.
	p.Delete(slots[0])
	grown := make([]byte, 900)
	for i := range grown {
		grown[i] = 0xAB
	}
	if err := p.Set(slots[1], grown); err != nil {
		t.Fatalf("grow with compaction: %v", err)
	}
	got, _ := p.Get(slots[1])
	if !bytes.Equal(got, grown) {
		t.Fatal("grown record mangled")
	}
}

func TestPageApplyRoundTrip(t *testing.T) {
	p := NewPage(1)
	ins := logrec.UpdatePayload{Op: logrec.OpInsert, Slot: 0, After: []byte("row-v1")}
	if err := p.Apply(ins, 100); err != nil {
		t.Fatal(err)
	}
	if p.LSN() != 100 {
		t.Fatal("pageLSN not stamped")
	}
	set := logrec.UpdatePayload{Op: logrec.OpSet, Slot: 0, Before: []byte("row-v1"), After: []byte("row-v2")}
	if err := p.Apply(set, 200); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(0)
	if string(got) != "row-v2" {
		t.Fatalf("after set: %q", got)
	}
	// Undo via inverse.
	if err := p.Apply(set.Inverse(), 300); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(0)
	if string(got) != "row-v1" || p.LSN() != 300 {
		t.Fatalf("after undo: %q lsn=%v", got, p.LSN())
	}
	del := logrec.UpdatePayload{Op: logrec.OpDelete, Slot: 0, Before: []byte("row-v1")}
	if err := p.Apply(del, 400); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(del.Inverse(), 500); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(0)
	if string(got) != "row-v1" {
		t.Fatalf("after delete undo: %q", got)
	}
}

func TestPageSnapshotRoundTrip(t *testing.T) {
	p := NewPage(42)
	p.Insert(0, []byte("persist me"))
	p.SetLSN(777)
	img := p.Snapshot()

	q := NewPage(0)
	if err := q.LoadSnapshot(img); err != nil {
		t.Fatal(err)
	}
	if q.ID() != 42 || q.LSN() != 777 {
		t.Fatalf("snapshot header: id=%d lsn=%v", q.ID(), q.LSN())
	}
	got, err := q.Get(0)
	if err != nil || string(got) != "persist me" {
		t.Fatalf("snapshot data: %q %v", got, err)
	}
	if err := q.LoadSnapshot([]byte("short")); err == nil {
		t.Fatal("short snapshot must fail")
	}
}

func TestPageInsertGrowsDirectoryForRedo(t *testing.T) {
	// Redo may apply an insert at slot 3 on a fresh page (earlier slots'
	// inserts were not logged because the page was archived after them,
	// then the archive lost... in any case Apply must be tolerant).
	p := NewPage(1)
	if err := p.Insert(3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Fatalf("slots: %d", p.NumSlots())
	}
	got, err := p.Get(3)
	if err != nil || string(got) != "late" {
		t.Fatalf("slot 3: %q %v", got, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Get(i); !errors.Is(err, ErrDeadSlot) {
			t.Fatalf("slot %d should be dead: %v", i, err)
		}
	}
}

// Property: a random sequence of insert/set/delete operations applied to
// a page matches a reference map implementation.
func TestQuickPageMatchesReference(t *testing.T) {
	type op struct {
		Kind byte
		Slot uint8
		Data []byte
	}
	f := func(ops []op) bool {
		p := NewPage(1)
		ref := map[int][]byte{}
		for _, o := range ops {
			if len(o.Data) > 600 {
				o.Data = o.Data[:600]
			}
			switch o.Kind % 3 {
			case 0: // insert at chosen slot
				slot := p.FindInsertSlot()
				if !p.CanFit(slot, len(o.Data)) {
					continue
				}
				if err := p.Insert(slot, o.Data); err != nil {
					return false
				}
				ref[slot] = append([]byte(nil), o.Data...)
			case 1: // set existing
				slot := int(o.Slot)
				if _, ok := ref[slot]; !ok {
					continue
				}
				err := p.Set(slot, o.Data)
				if err != nil {
					if errors.Is(err, ErrPageFull) {
						continue
					}
					return false
				}
				ref[slot] = append([]byte(nil), o.Data...)
			case 2: // delete existing
				slot := int(o.Slot)
				if _, ok := ref[slot]; !ok {
					continue
				}
				if err := p.Delete(slot); err != nil {
					return false
				}
				delete(ref, slot)
			}
		}
		// Compare all live slots.
		for slot, want := range ref {
			got, err := p.Get(slot)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		// And dead/absent slots must not resurrect.
		for i := 0; i < p.NumSlots(); i++ {
			if _, ok := ref[i]; ok {
				continue
			}
			if _, err := p.Get(i); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
