package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/fsutil"
	"aether/internal/vfs"
)

// PageFile is the real database file: a single, page-slotted, checksummed
// file replacing the one-file-per-page FileArchive. Pages live in fixed
// slots addressed by file offset; each slot carries a header (pageID,
// version, checksum) verified on every read. A checkpoint sweep hands the
// whole dirty set to PutBatch, which writes it with O(1) device fsyncs
// regardless of batch size — the double-write journal protocol:
//
//  1. the entire batch (slot headers + images) is written sequentially to
//     a side journal and fsynced once — the batch's atomic commit point;
//  2. the images are written in place, sorted by file offset and coalesced
//     into large contiguous writes, and the pagefile is fsynced once.
//
// A crash between (1) and (2) tears nothing: Open finds a journal with a
// valid batch checksum and replays it (idempotent — it holds the newest
// image of every slot it mentions). A crash during (1) leaves a journal
// that fails its checksum, which Open discards: the in-place writes never
// started, so the pagefile still holds the previous, fully-applied batch.
//
// On-disk layout (little-endian):
//
//	file header (4096 B): magic "AEPF", format version, page size
//	slot i at 4096 + i*(32+PageSize):
//	  0  pageID   uint64
//	  8  version  uint64  (monotonic write sequence, debugging aid)
//	 16  checksum uint32  (CRC-32C over pageID ‖ version ‖ image)
//	 20  flags    uint32  (1 = in use)
//	 24  reserved 8 B
//	 32  page image (PageSize B)
//
// Journal file (path + ".journal"):
//
//	header (32 B): magic "AEPJ", version, entry count, page size,
//	               CRC-32C over the entry region
//	entry: slot uint64, pageID uint64, version uint64, checksum uint32,
//	       pad 4 B, then the page image
//
// # Concurrency
//
// Reads never wait on batch I/O. The single pagefile mutex of earlier
// versions — under which a page fault could stall behind a checkpoint
// sweep or cleaner pass holding it across two fsyncs — is decomposed:
//
//   - dir (RWMutex) protects only the in-memory slot directory
//     (slots/assigned/nextSlot/seq): microsecond map work, never I/O.
//   - wmu serializes batch writers (PutBatch, journal replay): the
//     double-write journal holds exactly one committed batch, so two
//     batches can never interleave their journal phases. Concurrent
//     PutBatch callers (sweep, cleaner, steals) queue here — but
//     readers never touch wmu.
//   - latches is a sharded array of per-slot RWMutexes (slot index mod
//     pfLatchShards). A batch writer holds the shards covering a
//     coalesced run only for the pwrite itself — NOT across fsyncs.
//
// Get is lock-free against writers: directory lookup under dir.RLock,
// then an optimistic pread validated by the slot header (pageID match,
// version ≥ directory version, CRC-32C over identity+image). A reader
// racing an in-place write of the same slot sees a torn image, fails
// validation and retries (ReadRetries counts these); after a few
// optimistic attempts it takes the slot's latch shard — excluding only
// that pwrite, never a fsync — and reads once more. Any image that
// passes validation is safe to serve: in-place bytes change only after
// the batch's journal fsync returned, so even a mid-batch image is a
// committed one.
type PageFile struct {
	fs   vfs.FS
	path string
	f    vfs.File
	jf   vfs.File

	// dir guards the in-memory slot directory below — map work only,
	// never held across I/O.
	dir   sync.RWMutex
	slots map[uint64]pfSlot // pageID → slot (installed pages only)
	// assigned reserves slots handed to batches that later failed: a
	// retried sweep must reuse the same slot, or the page would end up
	// flagged used in two slots and the file would never reopen.
	assigned map[uint64]uint64 // pageID → reserved slot
	nextSlot uint64
	seq      uint64 // version sequence (max seen at open)

	// wmu serializes batch writers; see the concurrency note above. The
	// failpoints and applyFailed below are writer state, touched only
	// under it.
	wmu sync.Mutex
	// latches shards the per-slot write-exclusion latches readers fall
	// back to when optimistic validation keeps failing.
	latches [pfLatchShards]sync.RWMutex

	journalReplayed int // pages restored from the journal at Open

	closed atomic.Bool
	// crashAfterJournal simulates a process kill between the journal
	// fsync and the in-place writes (crash tests).
	crashAfterJournal bool
	// applyFailed is set when a batch failed after its journal committed:
	// the journal on disk is that batch's only intact copy (its in-place
	// writes may be partial and unsynced), so the next PutBatch must
	// re-apply it before overwriting the journal with a new batch.
	applyFailed bool
	// failApply, if non-nil, makes PutBatch return this error after the
	// journal phase without applying — a transient in-place I/O failure
	// the caller will retry (tests the stable-slot-reservation rule).
	failApply error

	syncDelay atomic.Int64 // simulated device sync latency, ns (benchmarks)
	readDelay atomic.Int64 // simulated per-pread device latency, ns (benchmarks)

	fsyncs      atomic.Int64
	batchPuts   atomic.Int64
	pagesPut    atomic.Int64
	slotWrites  atomic.Int64 // coalesced in-place writes issued
	readRetries atomic.Int64 // optimistic reads that failed validation and retried
}

// pfSlot is the in-memory directory entry for one page.
type pfSlot struct {
	slot    uint64
	version uint64
}

const (
	pfMagic      = 0x41455046 // "AEPF"
	pfVersion    = 1
	pfHeaderSize = 4096
	pfSlotHdr    = 32
	pfSlotSize   = pfSlotHdr + PageSize

	pfJournalMagic = 0x4145504A // "AEPJ"
	pfJnlHdrSize   = 32
	pfJnlEntryHdr  = 32
	pfJnlEntrySize = pfJnlEntryHdr + PageSize

	pfFlagUsed = 1

	// pfLatchShards sizes the per-slot latch array (slot index mod
	// pfLatchShards). 64 shards keep false sharing between unrelated
	// slots rare while bounding the array a batch writer may have to
	// sweep for a very long coalesced run.
	pfLatchShards = 64

	// pfOptimisticReads is how many unlatched validated reads Get
	// attempts before falling back to the slot latch. A torn read means
	// a writer is mid-pwrite on this very slot — a microsecond-scale
	// window — so a couple of yields almost always clear it.
	pfOptimisticReads = 3
)

// ErrSimulatedCrash is returned by PutBatch when the crash-after-journal
// failpoint is armed: the journal is durable but no in-place write ran.
var ErrSimulatedCrash = errors.New("storage: simulated crash after journal write")

var pfCRC = crc32.MakeTable(crc32.Castagnoli)

// pfMaxSlot is the largest slot index whose byte range still fits in an
// int64 file offset. Any larger index read from disk (a journal entry,
// a slot header) is a corrupt or hostile value, not a real slot: honoring
// it would overflow the offset arithmetic or balloon the file.
const pfMaxSlot = (1<<63 - 1 - pfHeaderSize - pfSlotSize) / pfSlotSize

// pfSlotValid bounds slot indices taken from on-disk structures before
// they reach pfSlotOff.
func pfSlotValid(slot uint64) bool { return slot <= pfMaxSlot }

// pageChecksum covers the slot's identity and its image, so a misdirected
// or torn write is caught no matter which part it corrupted.
func pageChecksum(pid, version uint64, img []byte) uint32 {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], pid)
	binary.LittleEndian.PutUint64(hdr[8:16], version)
	c := crc32.Update(0, pfCRC, hdr[:])
	return crc32.Update(c, pfCRC, img)
}

// pfSlotOff converts a slot index to its file offset. Callers must
// validate untrusted indices with pfSlotValid first; the panic is the
// backstop for in-memory state, which is always in range.
func pfSlotOff(slot uint64) int64 {
	if !pfSlotValid(slot) {
		panic(fmt.Sprintf("storage: pagefile slot %d out of range", slot))
	}
	return pfHeaderSize + int64(slot)*pfSlotSize
}

// OpenPageFile opens (creating if needed) a paged database file, replaying
// or discarding its double-write journal first, then building the pageID
// directory from the slot headers.
func OpenPageFile(path string) (*PageFile, error) {
	return OpenPageFileFS(vfs.OS{}, path)
}

// OpenPageFileFS is OpenPageFile over an arbitrary filesystem — the
// fault-injection entry point.
func OpenPageFileFS(fs vfs.FS, path string) (*PageFile, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open pagefile: %w", err)
	}
	pf := &PageFile{
		fs:       fs,
		path:     path,
		f:        f,
		slots:    make(map[uint64]pfSlot),
		assigned: make(map[uint64]uint64),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open pagefile: %w", err)
	}
	if st.Size() <= pfHeaderSize {
		// Empty, or a torn initial header write: no slot can exist until
		// the header's fsync has returned (PutBatch only runs after a
		// successful Open), so (re)writing the header is always safe and
		// un-bricks a database whose first-ever Open lost power mid-way.
		if err := pf.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := pf.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	jf, err := fs.OpenFile(path+".journal", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open pagefile journal: %w", err)
	}
	pf.jf = jf
	// Both files themselves must survive a crash, not just their bytes:
	// the double-write guarantee is void if the journal's directory
	// entry can vanish after its data was fsynced.
	if err := fsutil.SyncDirFS(fs, filepath.Dir(path)); err != nil {
		pf.closeFiles()
		return nil, fmt.Errorf("storage: sync pagefile dir: %w", err)
	}
	if err := pf.recoverJournal(); err != nil {
		pf.closeFiles()
		return nil, err
	}
	if err := pf.scanSlots(); err != nil {
		pf.closeFiles()
		return nil, err
	}
	return pf, nil
}

func (pf *PageFile) writeHeader() error {
	hdr := make([]byte, pfHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], pfMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], pfVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], PageSize)
	if _, err := pf.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: pagefile header: %w", err)
	}
	if err := pf.fsync(pf.f); err != nil {
		return fmt.Errorf("storage: pagefile header: %w", err)
	}
	return nil
}

func (pf *PageFile) readHeader() error {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(io.NewSectionReader(pf.f, 0, 12), hdr); err != nil {
		return fmt.Errorf("storage: pagefile header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != pfMagic {
		return fmt.Errorf("storage: %s is not a pagefile (magic %#x)", pf.path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != pfVersion {
		return fmt.Errorf("storage: pagefile format version %d, want %d", v, pfVersion)
	}
	if ps := binary.LittleEndian.Uint32(hdr[8:12]); ps != PageSize {
		return fmt.Errorf("storage: pagefile page size %d, want %d", ps, PageSize)
	}
	return nil
}

// parseJournal validates a journal image and returns its entry region
// and entry count. ok is false for a foreign, short or torn journal —
// the shared gate between the owner's replay (recoverJournal) and the
// read-only inspector (ReadPageFileInfo), so the two can never disagree
// about what counts as a committed batch.
func parseJournal(buf []byte) (body []byte, count int, ok bool) {
	if len(buf) < pfJnlHdrSize ||
		binary.LittleEndian.Uint32(buf[0:4]) != pfJournalMagic ||
		binary.LittleEndian.Uint32(buf[4:8]) != pfVersion ||
		binary.LittleEndian.Uint32(buf[12:16]) != PageSize {
		return nil, 0, false
	}
	count = int(binary.LittleEndian.Uint32(buf[8:12]))
	body = buf[pfJnlHdrSize:]
	if count <= 0 || len(body) < count*pfJnlEntrySize {
		return nil, 0, false
	}
	body = body[:count*pfJnlEntrySize]
	if binary.LittleEndian.Uint32(buf[16:20]) != crc32.Checksum(body, pfCRC) {
		return nil, 0, false
	}
	return body, count, true
}

// jnlEntry is one decoded journal entry's identity.
type jnlEntry struct {
	slot    uint64
	pid     uint64
	version uint64
}

// replayJournal re-applies the on-disk journal if it holds a committed
// batch, fsyncs the pagefile and clears the journal, returning the
// entries it installed. Replay is idempotent: the journal holds the
// newest image of every slot it mentions, so repeating it after a
// second crash is safe. A torn journal is discarded (its batch's fsync
// never returned, so no in-place write started).
func (pf *PageFile) replayJournal() ([]jnlEntry, error) {
	st, err := pf.jf.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: pagefile journal: %w", err)
	}
	if st.Size() == 0 {
		return nil, nil
	}
	buf := make([]byte, st.Size())
	if _, err := io.ReadFull(io.NewSectionReader(pf.jf, 0, st.Size()), buf); err != nil {
		return nil, fmt.Errorf("storage: pagefile journal read: %w", err)
	}
	body, count, ok := parseJournal(buf)
	if !ok {
		return nil, pf.clearJournal()
	}
	// Bound every journaled slot index before any write: a batch only
	// ever appends to the end of the file, so a committed journal's
	// slots all lie below (slots currently in the file) + (entries in
	// the batch). Anything larger — or past the int64 offset range — is
	// a corrupt journal, and honoring it would balloon the pagefile or
	// overflow the offset arithmetic. Fail loudly instead.
	fst, err := pf.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: pagefile journal: %w", err)
	}
	maxSlot := uint64(0)
	if fst.Size() > pfHeaderSize {
		maxSlot = uint64((fst.Size() - pfHeaderSize) / pfSlotSize)
	}
	maxSlot += uint64(count)
	entries := make([]jnlEntry, count)
	for i := 0; i < count; i++ {
		e := body[i*pfJnlEntrySize:]
		ent := jnlEntry{
			slot:    binary.LittleEndian.Uint64(e[0:8]),
			pid:     binary.LittleEndian.Uint64(e[8:16]),
			version: binary.LittleEndian.Uint64(e[16:24]),
		}
		if !pfSlotValid(ent.slot) || ent.slot >= maxSlot {
			return nil, fmt.Errorf("storage: pagefile journal entry %d names absurd slot %d (file holds %d slots, batch %d entries): corrupt journal",
				i, ent.slot, maxSlot-uint64(count), count)
		}
		sum := binary.LittleEndian.Uint32(e[24:28])
		img := e[pfJnlEntryHdr:pfJnlEntrySize]
		if sum != pageChecksum(ent.pid, ent.version, img) {
			return nil, fmt.Errorf("storage: pagefile journal entry %d (page %d) fails its checksum", i, ent.pid)
		}
		if err := pf.writeSlot(ent.slot, ent.pid, ent.version, sum, img); err != nil {
			return nil, fmt.Errorf("storage: pagefile journal replay: %w", err)
		}
		entries[i] = ent
	}
	if err := pf.fsync(pf.f); err != nil {
		return nil, fmt.Errorf("storage: pagefile journal replay: %w", err)
	}
	return entries, pf.clearJournal()
}

// recoverJournal is the Open-time replay (the slot directory is rebuilt
// afterwards by scanSlots, which will see the replayed slots).
func (pf *PageFile) recoverJournal() error {
	entries, err := pf.replayJournal()
	if err != nil {
		return err
	}
	pf.journalReplayed = len(entries)
	return nil
}

// clearJournal empties the journal after it has been applied (or proven
// torn) and makes the truncation durable.
func (pf *PageFile) clearJournal() error {
	if err := pf.jf.Truncate(0); err != nil {
		return fmt.Errorf("storage: pagefile journal clear: %w", err)
	}
	if err := pf.fsync(pf.jf); err != nil {
		return fmt.Errorf("storage: pagefile journal clear: %w", err)
	}
	return nil
}

// writeSlot writes one slot (header + image) in place, excluding
// fallback readers of the slot's latch shard for the pwrite itself.
func (pf *PageFile) writeSlot(slot, pid, version uint64, sum uint32, img []byte) error {
	buf := make([]byte, pfSlotSize)
	putSlotHdr(buf, pid, version, sum)
	copy(buf[pfSlotHdr:], img)
	l := &pf.latches[slot%pfLatchShards]
	l.Lock()
	_, err := pf.f.WriteAt(buf, pfSlotOff(slot))
	l.Unlock()
	return err
}

// runShards returns the latch shard indices covering the contiguous
// slot run [lo, hi], in ascending shard order — the fixed acquisition
// order that keeps concurrent run writers deadlock-free. A run spanning
// every shard collapses to the full ordered set.
func runShards(lo, hi uint64) []int {
	if hi-lo+1 >= pfLatchShards {
		out := make([]int, pfLatchShards)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var mask [pfLatchShards]bool
	for s := lo; s <= hi; s++ {
		mask[s%pfLatchShards] = true
	}
	out := make([]int, 0, hi-lo+1)
	for i, m := range mask {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// lockRun write-locks the latch shards covering slots [lo, hi] and
// returns them for unlockRun. Held only across a single pwrite — never
// across an fsync — so a concurrent reader's fallback latch wait is
// bounded by one in-flight write, not a batch's durability stall.
func (pf *PageFile) lockRun(lo, hi uint64) []int {
	shards := runShards(lo, hi)
	for _, i := range shards {
		pf.latches[i].Lock()
	}
	return shards
}

// unlockRun releases the shards lockRun acquired.
func (pf *PageFile) unlockRun(shards []int) {
	for _, i := range shards {
		pf.latches[i].Unlock()
	}
}

func putSlotHdr(dst []byte, pid, version uint64, sum uint32) {
	binary.LittleEndian.PutUint64(dst[0:8], pid)
	binary.LittleEndian.PutUint64(dst[8:16], version)
	binary.LittleEndian.PutUint32(dst[16:20], sum)
	binary.LittleEndian.PutUint32(dst[20:24], pfFlagUsed)
}

// scanSlotHeaders walks every allocated slot in f (whose size is size)
// and invokes fn for each slot flagged used — the single reader of the
// on-disk slot-header layout, shared by the owner's directory build and
// the read-only inspector.
func scanSlotHeaders(f io.ReaderAt, size int64, fn func(slot, pid, version uint64) error) (nSlots uint64, err error) {
	n := (size - pfHeaderSize) / pfSlotSize
	if n < 0 {
		n = 0
	}
	if n > pfMaxSlot+1 {
		// A size this large cannot be a real pagefile (the offset of the
		// slot past pfMaxSlot would overflow int64); clamp rather than
		// let the loop feed pfSlotOff out-of-range indices.
		n = pfMaxSlot + 1
	}
	hdr := make([]byte, pfSlotHdr)
	for slot := int64(0); slot < n; slot++ {
		if _, err := io.ReadFull(io.NewSectionReader(f, pfSlotOff(uint64(slot)), pfSlotHdr), hdr); err != nil {
			return 0, fmt.Errorf("storage: pagefile scan slot %d: %w", slot, err)
		}
		if binary.LittleEndian.Uint32(hdr[20:24])&pfFlagUsed == 0 {
			continue
		}
		if err := fn(uint64(slot),
			binary.LittleEndian.Uint64(hdr[0:8]),
			binary.LittleEndian.Uint64(hdr[8:16])); err != nil {
			return 0, err
		}
	}
	return uint64(n), nil
}

// scanSlots builds the pageID directory from the slot headers. Image
// checksums are verified lazily on Get, as the read path always does.
func (pf *PageFile) scanSlots() error {
	st, err := pf.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: pagefile scan: %w", err)
	}
	nSlots, err := scanSlotHeaders(pf.f, st.Size(), func(slot, pid, version uint64) error {
		if prev, dup := pf.slots[pid]; dup {
			return fmt.Errorf("storage: pagefile corrupt: page %d in slots %d and %d", pid, prev.slot, slot)
		}
		pf.slots[pid] = pfSlot{slot: slot, version: version}
		if version > pf.seq {
			pf.seq = version
		}
		return nil
	})
	if err != nil {
		return err
	}
	pf.nextSlot = nSlots
	return nil
}

// fsync syncs one file and counts it, modeling the configured device
// latency (the same simulated-device methodology the log devices use).
func (pf *PageFile) fsync(f vfs.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	pf.fsyncs.Add(1)
	if d := time.Duration(pf.syncDelay.Load()); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// SetReadDelay adds a simulated per-read device latency (benchmarks
// use it to model a real disk's page-read cost, the same methodology as
// SetSyncDelay): every Get attempt sleeps d after its pread, with no
// latch held. On tmpfs-backed test runs a pread is sub-microsecond,
// which would make read-pipelining benchmarks measure scheduler noise;
// a few hundred microseconds of modeled latency makes the overlap win
// deterministic.
func (pf *PageFile) SetReadDelay(d time.Duration) {
	pf.readDelay.Store(int64(d))
}

// SetSyncDelay adds a simulated per-fsync device latency (benchmarks
// model flash/disk sync cost deterministically; 0 disables).
func (pf *PageFile) SetSyncDelay(d time.Duration) {
	pf.syncDelay.Store(int64(d))
}

// Fsyncs returns how many device fsyncs the pagefile has issued — the
// counter the O(1)-fsyncs-per-sweep property is asserted against.
func (pf *PageFile) Fsyncs() int64 { return pf.fsyncs.Load() }

// PagesWritten returns how many page images PutBatch has written.
func (pf *PageFile) PagesWritten() int64 { return pf.pagesPut.Load() }

// JournalReplayed returns how many page images the last Open restored
// from the double-write journal (0 for a clean shutdown).
func (pf *PageFile) JournalReplayed() int { return pf.journalReplayed }

// ReadRetries returns how many optimistic reads failed validation
// against a concurrent in-place write and retried — the observable cost
// of the lock-free read path (normally ~0; it rises only when readers
// race writers on the same slot).
func (pf *PageFile) ReadRetries() int64 { return pf.readRetries.Load() }

// Path returns the pagefile's path.
func (pf *PageFile) Path() string { return pf.path }

// SizeBytes returns the pagefile's current size.
func (pf *PageFile) SizeBytes() int64 {
	st, err := pf.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// SlotInfo describes one occupied pagefile slot (logdump, tests).
type SlotInfo struct {
	// Slot is the slot's position in the file (offset = header + slot*slotSize).
	Slot uint64
	// PageID is the page stored in the slot.
	PageID uint64
	// Version is the slot's write version, bumped on every rewrite.
	Version uint64
}

// Slots lists occupied slots in file order.
func (pf *PageFile) Slots() []SlotInfo {
	pf.dir.RLock()
	defer pf.dir.RUnlock()
	out := make([]SlotInfo, 0, len(pf.slots))
	for pid, s := range pf.slots {
		out = append(out, SlotInfo{Slot: s.slot, PageID: pid, Version: s.version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// PutBatch implements ArchiveBatcher: the checkpoint sweep's batched
// writeback. The whole batch becomes durable with exactly two device
// fsyncs (journal, then pagefile) no matter how many pages it holds; a
// failed batch installs nothing the caller may rely on. Concurrent
// batches (sweep, cleaner, steals) serialize on wmu — the double-write
// journal holds one batch at a time — but readers proceed throughout:
// slot latches are taken per coalesced pwrite only, never across the
// fsyncs.
func (pf *PageFile) PutBatch(batch []PageImage) error {
	if len(batch) == 0 {
		return nil
	}
	pf.wmu.Lock()
	defer pf.wmu.Unlock()
	if pf.closed.Load() {
		return errors.New("storage: pagefile closed")
	}
	for _, e := range batch {
		if len(e.Img) != PageSize {
			return fmt.Errorf("storage: pagefile put: image is %d bytes, want %d", len(e.Img), PageSize)
		}
	}
	if pf.applyFailed {
		// A previous batch committed its journal but failed phase 2: the
		// journal is the only intact copy of its pages (their in-place
		// writes may be partial and unsynced). Re-apply it before this
		// batch's journal overwrites it — otherwise a page of that batch
		// absent from this one could persist torn with no journal left
		// to repair it.
		entries, err := pf.replayJournal()
		if err != nil {
			return fmt.Errorf("storage: pagefile re-apply pending journal: %w", err)
		}
		pf.dir.Lock()
		for _, e := range entries {
			pf.slots[e.pid] = pfSlot{slot: e.slot, version: e.version}
			delete(pf.assigned, e.pid)
		}
		pf.dir.Unlock()
		pf.applyFailed = false
	}

	// Assign slots (new pages extend the file) and stamp versions —
	// directory map work only, under dir.Lock, no I/O.
	type write struct {
		slot    uint64
		pid     uint64
		version uint64
		sum     uint32
		img     []byte
	}
	writes := make([]write, len(batch))
	pf.dir.Lock()
	for i, e := range batch {
		var slot uint64
		if s, ok := pf.slots[e.PID]; ok {
			slot = s.slot
		} else if res, ok := pf.assigned[e.PID]; ok {
			slot = res // a failed batch reserved it: reuse, never reassign
		} else {
			slot = pf.nextSlot
			pf.nextSlot++
			// Reserve before any I/O: if this batch fails partway, the
			// page may already be flagged used at this slot on disk, so
			// a retry must come back to it.
			pf.assigned[e.PID] = slot
		}
		pf.seq++
		writes[i] = write{slot: slot, pid: e.PID, version: pf.seq, img: e.Img}
	}
	pf.dir.Unlock()
	for i := range writes {
		writes[i].sum = pageChecksum(writes[i].pid, writes[i].version, writes[i].img)
	}
	// Sort by file offset: the journal replays in place in offset order,
	// and the in-place pass coalesces adjacent slots into single writes.
	sort.Slice(writes, func(i, j int) bool { return writes[i].slot < writes[j].slot })

	// Phase 1: journal the batch, one fsync. This is the commit point.
	jnl := make([]byte, pfJnlHdrSize+len(writes)*pfJnlEntrySize)
	for i, w := range writes {
		e := jnl[pfJnlHdrSize+i*pfJnlEntrySize:]
		binary.LittleEndian.PutUint64(e[0:8], w.slot)
		binary.LittleEndian.PutUint64(e[8:16], w.pid)
		binary.LittleEndian.PutUint64(e[16:24], w.version)
		binary.LittleEndian.PutUint32(e[24:28], w.sum)
		copy(e[pfJnlEntryHdr:], w.img)
	}
	binary.LittleEndian.PutUint32(jnl[0:4], pfJournalMagic)
	binary.LittleEndian.PutUint32(jnl[4:8], pfVersion)
	binary.LittleEndian.PutUint32(jnl[8:12], uint32(len(writes)))
	binary.LittleEndian.PutUint32(jnl[12:16], PageSize)
	binary.LittleEndian.PutUint32(jnl[16:20], crc32.Checksum(jnl[pfJnlHdrSize:], pfCRC))
	if _, err := pf.jf.WriteAt(jnl, 0); err != nil {
		return fmt.Errorf("storage: pagefile journal write: %w", err)
	}
	if err := pf.fsync(pf.jf); err != nil {
		return fmt.Errorf("storage: pagefile journal sync: %w", err)
	}
	if pf.crashAfterJournal {
		// The batch is committed in the journal but never applied — the
		// window the double-write protocol exists for. Drop the handles
		// as a killed process would.
		pf.closed.Store(true)
		pf.closeFiles()
		return ErrSimulatedCrash
	}
	if pf.failApply != nil {
		err := pf.failApply
		pf.failApply = nil
		pf.applyFailed = true
		return err
	}

	// Phase 2: write in place, coalescing contiguous slot runs into
	// large sequential writes, then one pagefile fsync. Each run's
	// pwrite holds only the latch shards its slots cover — a reader
	// faulting any other page proceeds untouched, and even a reader of
	// these very slots waits for one pwrite at most, never the fsync.
	for i := 0; i < len(writes); {
		j := i + 1
		for j < len(writes) && writes[j].slot == writes[j-1].slot+1 {
			j++
		}
		run := make([]byte, (j-i)*pfSlotSize)
		for k := i; k < j; k++ {
			w := writes[k]
			dst := run[(k-i)*pfSlotSize:]
			putSlotHdr(dst, w.pid, w.version, w.sum)
			copy(dst[pfSlotHdr:], w.img)
		}
		shards := pf.lockRun(writes[i].slot, writes[j-1].slot)
		_, err := pf.f.WriteAt(run, pfSlotOff(writes[i].slot))
		pf.unlockRun(shards)
		if err != nil {
			pf.applyFailed = true
			return fmt.Errorf("storage: pagefile write: %w", err)
		}
		pf.slotWrites.Add(1)
		i = j
	}
	if err := pf.fsync(pf.f); err != nil {
		pf.applyFailed = true
		return fmt.Errorf("storage: pagefile sync: %w", err)
	}
	// The journal is now dead weight; empty it without an fsync — if the
	// truncation is lost in a crash, Open just replays the batch it
	// already applied, which is idempotent.
	if err := pf.jf.Truncate(0); err != nil {
		return fmt.Errorf("storage: pagefile journal clear: %w", err)
	}

	pf.dir.Lock()
	for _, w := range writes {
		pf.slots[w.pid] = pfSlot{slot: w.slot, version: w.version}
		delete(pf.assigned, w.pid)
	}
	pf.dir.Unlock()
	pf.batchPuts.Add(1)
	pf.pagesPut.Add(int64(len(writes)))
	return nil
}

// Put implements Archive for single pages (legacy import, tests); sweeps
// go through PutBatch.
func (pf *PageFile) Put(pid uint64, img []byte) error {
	return pf.PutBatch([]PageImage{{PID: pid, Img: img}})
}

// Get implements Archive ((nil, nil) for a page never archived). The
// slot header and checksum are verified on every read.
//
// The read is lock-free against batch writers: an optimistic pread
// validated by the slot header. Validation accepts an image whose
// pageID matches, whose version is at least the directory's floor for
// the slot, and whose CRC-32C (over identity + image) holds — any such
// image is a committed one, because in-place bytes only change after
// the owning batch's journal fsync returned. A reader racing the slot's
// own pwrite sees a torn image, fails the CRC and retries; after
// pfOptimisticReads attempts it read-latches the slot's shard (waiting
// out at most one in-flight pwrite, never a fsync) and reads once more.
// Failing validation even under the latch is real corruption.
func (pf *PageFile) Get(pid uint64) ([]byte, error) {
	if pf.closed.Load() {
		return nil, errors.New("storage: pagefile closed")
	}
	pf.dir.RLock()
	s, ok := pf.slots[pid]
	pf.dir.RUnlock()
	if !ok {
		return nil, nil
	}
	buf := make([]byte, pfSlotSize)
	for attempt := 0; ; attempt++ {
		latched := attempt >= pfOptimisticReads
		var l *sync.RWMutex
		if latched {
			l = &pf.latches[s.slot%pfLatchShards]
			l.RLock()
		}
		_, err := io.ReadFull(io.NewSectionReader(pf.f, pfSlotOff(s.slot), pfSlotSize), buf)
		if latched {
			l.RUnlock()
		}
		if err != nil {
			return nil, fmt.Errorf("storage: pagefile read page %d: %w", pid, err)
		}
		if d := time.Duration(pf.readDelay.Load()); d > 0 {
			time.Sleep(d) // modeled device read time; no latch held
		}
		gotPID := binary.LittleEndian.Uint64(buf[0:8])
		version := binary.LittleEndian.Uint64(buf[8:16])
		sum := binary.LittleEndian.Uint32(buf[16:20])
		img := buf[pfSlotHdr:]
		if gotPID == pid && version >= s.version && sum == pageChecksum(pid, version, img) {
			return img, nil
		}
		if latched {
			// The slot's writer was excluded and the image still fails
			// validation: a misdirected, torn or corrupt write reached
			// disk, not a benign race.
			if gotPID != pid && sum == pageChecksum(gotPID, version, img) {
				return nil, fmt.Errorf("storage: pagefile slot %d holds page %d, want %d (misdirected write)", s.slot, gotPID, pid)
			}
			return nil, fmt.Errorf("storage: pagefile page %d fails its checksum (torn or corrupt slot %d)", pid, s.slot)
		}
		pf.readRetries.Add(1)
		runtime.Gosched()
		// Refresh the directory entry: the version floor (never the
		// slot — a page's slot is stable for life) may have advanced
		// while we raced, and the page may even have been dropped.
		pf.dir.RLock()
		s, ok = pf.slots[pid]
		pf.dir.RUnlock()
		if !ok {
			return nil, nil
		}
	}
}

// Contains implements ArchiveContains: a map lookup against the slot
// directory, no I/O — the buffer pool's cheap miss-path existence probe.
func (pf *PageFile) Contains(pid uint64) bool {
	pf.dir.RLock()
	_, ok := pf.slots[pid]
	pf.dir.RUnlock()
	return ok
}

// Pages implements Archive.
func (pf *PageFile) Pages() ([]uint64, error) {
	pf.dir.RLock()
	defer pf.dir.RUnlock()
	if pf.closed.Load() {
		return nil, errors.New("storage: pagefile closed")
	}
	out := make([]uint64, 0, len(pf.slots))
	for pid := range pf.slots {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// importChunk bounds ImportLegacy's per-PutBatch size (a batch holds
// the images, the journal buffer, and the coalesced run buffers at
// once — ~3× the images' size in peak memory).
const importChunk = 1024

// ImportLegacy performs the one-time migration from a FileArchive
// directory: every page the pagefile does not already hold is batched in
// (in bounded chunks), then the directory is removed. Skipping
// already-present pages makes a crashed import safe to repeat — by the
// time it reruns, the pagefile may hold newer images that must not be
// clobbered with stale ones.
func (pf *PageFile) ImportLegacy(dir string) error {
	fa, err := OpenFileArchiveFS(pf.fs, dir)
	if err != nil {
		return fmt.Errorf("storage: legacy import: %w", err)
	}
	pids, err := fa.Pages()
	if err != nil {
		return fmt.Errorf("storage: legacy import: %w", err)
	}
	batch := make([]PageImage, 0, importChunk)
	for _, pid := range pids {
		pf.dir.RLock()
		_, have := pf.slots[pid]
		pf.dir.RUnlock()
		if have {
			continue
		}
		img, err := fa.Get(pid)
		if err != nil {
			return fmt.Errorf("storage: legacy import: %w", err)
		}
		batch = append(batch, PageImage{PID: pid, Img: img})
		if len(batch) == importChunk {
			if err := pf.PutBatch(batch); err != nil {
				return fmt.Errorf("storage: legacy import: %w", err)
			}
			batch = batch[:0]
		}
	}
	if err := pf.PutBatch(batch); err != nil {
		return fmt.Errorf("storage: legacy import: %w", err)
	}
	if err := pf.fs.RemoveAll(dir); err != nil {
		return fmt.Errorf("storage: legacy import cleanup: %w", err)
	}
	if err := fsutil.SyncDirFS(pf.fs, filepath.Dir(dir)); err != nil {
		return fmt.Errorf("storage: legacy import cleanup: %w", err)
	}
	return nil
}

// PageFileInfo is a read-only summary of a pagefile on disk (logdump).
type PageFileInfo struct {
	// Pages is the number of occupied slots.
	Pages int
	// SizeBytes is the pagefile's size.
	SizeBytes int64
	// Slots lists occupied slots in file order. With a pending journal,
	// slot contents may predate the journaled batch.
	Slots []SlotInfo
	// JournalPending is the page count of a committed-but-unapplied
	// double-write journal (replayed by the owner's next OpenPageFile);
	// 0 when the journal is empty or torn.
	JournalPending int
}

// ReadPageFileInfo inspects a pagefile without modifying anything — no
// journal replay, no truncation — so it is safe to run against a
// database another process has open. (OpenPageFile, by contrast, takes
// ownership: it replays or discards the journal.)
func ReadPageFileInfo(path string) (*PageFileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read pagefile: %w", err)
	}
	defer f.Close()
	pf := &PageFile{path: path, f: f}
	if err := pf.readHeader(); err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: read pagefile: %w", err)
	}
	info := &PageFileInfo{SizeBytes: st.Size()}
	if _, err := scanSlotHeaders(f, st.Size(), func(slot, pid, version uint64) error {
		info.Slots = append(info.Slots, SlotInfo{Slot: slot, PageID: pid, Version: version})
		return nil
	}); err != nil {
		return nil, err
	}
	info.Pages = len(info.Slots)
	if jnl, err := os.ReadFile(path + ".journal"); err == nil {
		if _, count, ok := parseJournal(jnl); ok {
			info.JournalPending = count
		}
	}
	return info, nil
}

func (pf *PageFile) closeFiles() {
	pf.f.Close()
	if pf.jf != nil {
		pf.jf.Close()
	}
}

// Close releases the file handles; safe to call more than once. All
// completed batches are already durable, so Close has nothing to flush.
// Close waits for an in-flight batch (wmu) but not for readers: a Get
// racing Close gets a read error, exactly as it would against a killed
// process.
func (pf *PageFile) Close() error {
	pf.wmu.Lock()
	defer pf.wmu.Unlock()
	if !pf.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := pf.f.Close()
	if cerr := pf.jf.Close(); err == nil {
		err = cerr
	}
	return err
}

var (
	_ Archive         = (*PageFile)(nil)
	_ ArchiveBatcher  = (*PageFile)(nil)
	_ ArchiveContains = (*PageFile)(nil)
)
