package storage

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jnlSpec is one crafted journal entry for the hardening tests.
type jnlSpec struct {
	slot    uint64
	pid     uint64
	version uint64
	badSum  bool // corrupt the per-entry page checksum
}

// buildJournal assembles raw journal bytes. With breakCRC the batch
// checksum is flipped (a torn journal); with lieCount the header claims
// that many entries regardless of the body.
func buildJournal(entries []jnlSpec, breakCRC bool, lieCount int) []byte {
	buf := make([]byte, pfJnlHdrSize+len(entries)*pfJnlEntrySize)
	for i, e := range entries {
		dst := buf[pfJnlHdrSize+i*pfJnlEntrySize:]
		binary.LittleEndian.PutUint64(dst[0:8], e.slot)
		binary.LittleEndian.PutUint64(dst[8:16], e.pid)
		binary.LittleEndian.PutUint64(dst[16:24], e.version)
		img := dst[pfJnlEntryHdr:pfJnlEntrySize]
		sum := pageChecksum(e.pid, e.version, img)
		if e.badSum {
			sum ^= 0xDEADBEEF
		}
		binary.LittleEndian.PutUint32(dst[24:28], sum)
	}
	count := len(entries)
	if lieCount > 0 {
		count = lieCount
	}
	binary.LittleEndian.PutUint32(buf[0:4], pfJournalMagic)
	binary.LittleEndian.PutUint32(buf[4:8], pfVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
	binary.LittleEndian.PutUint32(buf[12:16], PageSize)
	sum := crc32.Checksum(buf[pfJnlHdrSize:], pfCRC)
	if breakCRC {
		sum ^= 1
	}
	binary.LittleEndian.PutUint32(buf[16:20], sum)
	return buf
}

// TestPageFileJournalBounds feeds OpenPageFile corrupted journals and
// headers. Absurd slot indices and lying sizes must fail loudly (an
// error naming the problem — never a panic, never a silently ballooned
// file); torn journals are discarded as the protocol demands.
func TestPageFileJournalBounds(t *testing.T) {
	valid := func(dir string) string {
		path := filepath.Join(dir, "pagefile.db")
		pf := openPF(t, path)
		if err := pf.Put(1, pfTestImage(1, 0x11)); err != nil {
			t.Fatal(err)
		}
		pf.Close()
		return path
	}

	cases := []struct {
		name    string
		journal []byte
		wantErr string // "" = Open must succeed (journal discarded)
		pages   int    // expected page count when Open succeeds
	}{
		{
			name:    "slot-overflows-int64-offset",
			journal: buildJournal([]jnlSpec{{slot: 1 << 62, pid: 9, version: 1}}, false, 0),
			wantErr: "absurd slot",
		},
		{
			name:    "slot-beyond-file-plus-batch",
			journal: buildJournal([]jnlSpec{{slot: 10_000, pid: 9, version: 1}}, false, 0),
			wantErr: "absurd slot",
		},
		{
			name:    "entry-checksum-corrupt",
			journal: buildJournal([]jnlSpec{{slot: 0, pid: 1, version: 2, badSum: true}}, false, 0),
			wantErr: "fails its checksum",
		},
		{
			name:    "torn-batch-crc",
			journal: buildJournal([]jnlSpec{{slot: 0, pid: 1, version: 2}}, true, 0),
			pages:   1, // discarded: previous contents intact
		},
		{
			name:    "count-exceeds-body",
			journal: buildJournal([]jnlSpec{{slot: 0, pid: 1, version: 2}}, false, 50),
			pages:   1, // fails parse → treated as torn, discarded
		},
		{
			name:    "count-zero",
			journal: buildJournal(nil, false, 0),
			pages:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := valid(dir)
			if err := os.WriteFile(path+".journal", tc.journal, 0o644); err != nil {
				t.Fatal(err)
			}
			pf, err := OpenPageFile(path)
			if tc.wantErr != "" {
				if err == nil {
					pf.Close()
					t.Fatalf("Open accepted a journal with %s", tc.name)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer pf.Close()
			pids, err := pf.Pages()
			if err != nil || len(pids) != tc.pages {
				t.Fatalf("pages after open: %d (%v), want %d", len(pids), err, tc.pages)
			}
			if img, err := pf.Get(1); err != nil || len(img) != PageSize {
				t.Fatalf("page 1 unreadable after discard: %v", err)
			}
		})
	}
}

// TestPageFileTruncatedTailSlot documents the torn-write contract: a
// pagefile cut mid-slot opens (the partial tail slot was never committed
// without a journal to repair it) and every whole slot stays readable.
func TestPageFileTruncatedTailSlot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pagefile.db")
	pf := openPF(t, path)
	for pid := uint64(1); pid <= 3; pid++ {
		if err := pf.Put(pid, pfTestImage(pid, byte(pid))); err != nil {
			t.Fatal(err)
		}
	}
	pf.Close()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-100); err != nil {
		t.Fatal(err)
	}
	pf2, err := OpenPageFile(path)
	if err != nil {
		t.Fatalf("truncated pagefile must open, not panic/fail: %v", err)
	}
	defer pf2.Close()
	pids, err := pf2.Pages()
	if err != nil || len(pids) != 2 {
		t.Fatalf("whole slots after truncation: %v (%v), want pages 1,2", pids, err)
	}
	for _, pid := range pids {
		if _, err := pf2.Get(pid); err != nil {
			t.Fatalf("page %d unreadable: %v", pid, err)
		}
	}
}

// TestPageFileHeaderSizeMismatch: a header claiming a different page
// size (or format) must fail loudly at Open.
func TestPageFileHeaderSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pagefile.db")
	pf := openPF(t, path)
	if err := pf.Put(1, pfTestImage(1, 0x01)); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], 4096) // lie about the page size
	if _, err := f.WriteAt(sz[:], 8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenPageFile(path); err == nil || !strings.Contains(err.Error(), "page size") {
		t.Fatalf("mismatched page size must fail loudly, got %v", err)
	}
}
