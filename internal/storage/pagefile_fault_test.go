package storage

import (
	"bytes"
	"errors"
	"testing"

	"aether/internal/vfs"
)

// openPFFault opens a pagefile over fs at /db/pagefile.db, creating
// the directory on first use.
func openPFFault(t *testing.T, fs vfs.FS) *PageFile {
	t.Helper()
	if err := fs.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPageFileFS(fs, "/db/pagefile.db")
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestPageFileJournalTornWrite drives the double-write protocol into
// power cuts on either side of its commit point (the journal fsync)
// with sector tearing, and checks the atomicity contract: a batch is
// all-or-nothing. Cut before the journal syncs — even if torn journal
// bytes persist — and reopen must serve the previous batch with no
// replay; cut after (during the in-place pass) and reopen must replay
// the journal and serve the new batch, however the in-place writes
// tore.
func TestPageFileJournalTornWrite(t *testing.T) {
	cases := []struct {
		name string
		// rule arms the cycle's power cut.
		rule vfs.Rule
		// keep, when non-nil, is the per-512B-sector survival mask for
		// the last unsynced write (nil drops it whole).
		keep       []bool
		wantNew    bool // reopen serves batch B (else batch A)
		wantReplay bool
	}{
		{
			name: "cut on journal write, dropped whole",
			rule: vfs.Rule{Op: vfs.OpWrite, Dir: "/db", Path: "pagefile.db.journal", Cut: true},
		},
		{
			name: "cut on journal write, torn head persists",
			rule: vfs.Rule{Op: vfs.OpWrite, Dir: "/db", Path: "pagefile.db.journal", Cut: true},
			keep: []bool{true}, // first sector of the torn write survives
		},
		{
			name: "cut on journal write, torn tail persists",
			rule: vfs.Rule{Op: vfs.OpWrite, Dir: "/db", Path: "pagefile.db.journal", Cut: true},
			keep: []bool{false, true},
		},
		{
			name: "cut on journal fsync",
			rule: vfs.Rule{Op: vfs.OpSync, Dir: "/db", Path: "pagefile.db.journal", Cut: true},
		},
		{
			name:       "cut on in-place fsync after journal commit",
			rule:       vfs.Rule{Op: vfs.OpSync, Dir: "/db", Path: "pagefile.db", Cut: true},
			wantNew:    true,
			wantReplay: true,
		},
		{
			name:       "cut on in-place fsync, slot write torn",
			rule:       vfs.Rule{Op: vfs.OpSync, Dir: "/db", Path: "pagefile.db", Cut: true},
			keep:       []bool{true, false, true, false, true, false, true, false, true},
			wantNew:    true,
			wantReplay: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := vfs.NewFaultFS(1)
			fs.SetTornWrites(true)
			pf := openPFFault(t, fs)

			// Batch A: fully durable baseline.
			a := []PageImage{
				{PID: 1, Img: pfTestImage(1, 0x11)},
				{PID: 2, Img: pfTestImage(2, 0x22)},
				{PID: 3, Img: pfTestImage(3, 0x33)},
			}
			if err := pf.PutBatch(a); err != nil {
				t.Fatal(err)
			}

			// Batch B hits the armed cut somewhere in the double-write
			// sequence.
			fs.AddRule(tc.rule)
			if tc.keep != nil {
				keep := tc.keep
				fs.SetTearMask(func(path string, sectors int) []bool {
					m := make([]bool, sectors)
					for i := range m {
						m[i] = keep[i%len(keep)]
					}
					return m
				})
			}
			b := []PageImage{
				{PID: 1, Img: pfTestImage(1, 0x44)},
				{PID: 2, Img: pfTestImage(2, 0x55)},
				{PID: 3, Img: pfTestImage(3, 0x66)},
			}
			if err := pf.PutBatch(b); !errors.Is(err, vfs.ErrPowerCut) {
				t.Fatalf("PutBatch under cut: err=%v, want ErrPowerCut", err)
			}
			pf.Close()
			fs.ClearRules()
			fs.SetTearMask(nil)
			fs.Recover()

			pf2, err := OpenPageFileFS(fs, "/db/pagefile.db")
			if err != nil {
				t.Fatalf("reopen after cut: %v", err)
			}
			defer pf2.Close()
			if tc.wantReplay && pf2.JournalReplayed() == 0 {
				t.Error("committed journal was not replayed")
			}
			if !tc.wantReplay && pf2.JournalReplayed() != 0 {
				t.Errorf("uncommitted journal replayed %d pages", pf2.JournalReplayed())
			}
			want := a
			if tc.wantNew {
				want = b
			}
			for _, pi := range want {
				got, err := pf2.Get(pi.PID)
				if err != nil {
					t.Fatalf("Get(%d): %v", pi.PID, err)
				}
				if !bytes.Equal(got, pi.Img) {
					t.Errorf("page %d: wrong image after recovery (new=%v)", pi.PID, tc.wantNew)
				}
			}
		})
	}
}

// TestPageFileJournalTornThenOverwrite: after recovering from a torn
// journal the pagefile must accept new batches and keep them across a
// clean reopen — the half-written journal leaves no residue.
func TestPageFileJournalTornThenOverwrite(t *testing.T) {
	fs := vfs.NewFaultFS(1)
	fs.SetTornWrites(true)
	pf := openPFFault(t, fs)
	if err := pf.PutBatch([]PageImage{{PID: 9, Img: pfTestImage(9, 0x0A)}}); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Dir: "/db", Path: "pagefile.db.journal", Cut: true})
	if err := pf.Put(9, pfTestImage(9, 0x0B)); !errors.Is(err, vfs.ErrPowerCut) {
		t.Fatalf("Put under cut: %v", err)
	}
	pf.Close()
	fs.ClearRules()
	fs.Recover()

	pf2, err := OpenPageFileFS(fs, "/db/pagefile.db")
	if err != nil {
		t.Fatal(err)
	}
	v3 := pfTestImage(9, 0x0C)
	if err := pf2.Put(9, v3); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	pf2.Close()

	pf3, err := OpenPageFileFS(fs, "/db/pagefile.db")
	if err != nil {
		t.Fatal(err)
	}
	defer pf3.Close()
	if got, err := pf3.Get(9); err != nil || !bytes.Equal(got, v3) {
		t.Fatalf("post-recovery batch lost: err=%v", err)
	}
}
