package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aether/internal/lsn"
)

// pfTestImage builds a valid, distinctive page image for pid.
func pfTestImage(pid uint64, fill byte) []byte {
	img := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(img[0:8], pid)
	for i := hdrSize; i < PageSize; i++ {
		img[i] = fill
	}
	return img
}

func openPF(t *testing.T, path string) *PageFile {
	t.Helper()
	pf, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestPageFileRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)

	if img, err := pf.Get(42); img != nil || err != nil {
		t.Fatalf("Get on empty pagefile = %v, %v", img, err)
	}
	batch := []PageImage{
		{PID: 42, Img: pfTestImage(42, 0xAA)},
		{PID: 7, Img: pfTestImage(7, 0xBB)},
		{PID: 99, Img: pfTestImage(99, 0xCC)},
	}
	if err := pf.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Overwrite in a second batch: same slot, new version.
	v2 := pfTestImage(42, 0xAD)
	if err := pf.Put(42, v2); err != nil {
		t.Fatal(err)
	}
	if got, err := pf.Get(42); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("Get(42) after overwrite: err=%v match=%v", err, bytes.Equal(got, v2))
	}
	pages, err := pf.Pages()
	if err != nil || len(pages) != 3 || pages[0] != 7 || pages[1] != 42 || pages[2] != 99 {
		t.Fatalf("Pages = %v (%v), want [7 42 99]", pages, err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Reopen: directory rebuilt from slot headers, images verified on read.
	pf2 := openPF(t, path)
	if pf2.JournalReplayed() != 0 {
		t.Fatalf("clean reopen replayed %d journal pages", pf2.JournalReplayed())
	}
	if got, err := pf2.Get(42); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("reopened Get(42): err=%v match=%v", err, bytes.Equal(got, v2))
	}
	if got, err := pf2.Get(7); err != nil || !bytes.Equal(got, pfTestImage(7, 0xBB)) {
		t.Fatalf("reopened Get(7): err=%v", err)
	}
	// A page written twice keeps one slot: 3 pages, 3 slots.
	if slots := pf2.Slots(); len(slots) != 3 {
		t.Fatalf("slots = %v, want 3 entries", slots)
	}
}

// TestPageFileCrashBetweenJournalAndInPlace is the satellite crash test:
// the process dies after the journal fsync but before any in-place
// write; reopening must replay the journal and restore every image with
// passing checksums.
func TestPageFileCrashBetweenJournalAndInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)
	// An initial durable batch the crash must not disturb.
	if err := pf.Put(1, pfTestImage(1, 0x11)); err != nil {
		t.Fatal(err)
	}
	pf.crashAfterJournal = true
	batch := []PageImage{
		{PID: 1, Img: pfTestImage(1, 0x12)}, // overwrite
		{PID: 2, Img: pfTestImage(2, 0x22)}, // new page
		{PID: 3, Img: pfTestImage(3, 0x33)}, // new page
	}
	if err := pf.PutBatch(batch); err != ErrSimulatedCrash {
		t.Fatalf("PutBatch with crash point = %v, want ErrSimulatedCrash", err)
	}

	pf2 := openPF(t, path)
	if pf2.JournalReplayed() != 3 {
		t.Fatalf("reopen replayed %d pages, want 3", pf2.JournalReplayed())
	}
	want := map[uint64]byte{1: 0x12, 2: 0x22, 3: 0x33}
	for pid, fill := range want {
		got, err := pf2.Get(pid)
		if err != nil {
			t.Fatalf("Get(%d) after replay: %v", pid, err)
		}
		if !bytes.Equal(got, pfTestImage(pid, fill)) {
			t.Fatalf("page %d image wrong after journal replay", pid)
		}
	}
	// A second reopen must not replay again (journal was cleared).
	pf2.Close()
	pf3 := openPF(t, path)
	if pf3.JournalReplayed() != 0 {
		t.Fatalf("journal survived its replay: %d pages replayed again", pf3.JournalReplayed())
	}
}

// TestPageFileTornInitialHeaderRecovered: power loss during the very
// first header write leaves a short/garbage header; since no slot can
// exist before the header fsync returns, Open must rewrite it instead
// of bricking the database.
func TestPageFileTornInitialHeaderRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	if err := os.WriteFile(path, []byte("torn-partial-head"), 0o644); err != nil {
		t.Fatal(err)
	}
	pf := openPF(t, path)
	if err := pf.Put(1, pfTestImage(1, 0x10)); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	pf2 := openPF(t, path)
	if got, err := pf2.Get(1); err != nil || !bytes.Equal(got, pfTestImage(1, 0x10)) {
		t.Fatalf("pagefile unusable after torn-header recovery: %v", err)
	}
}

// TestPageFileTornJournalDiscarded: a crash mid-journal-write (before the
// journal fsync returned) leaves a checksum-invalid journal; Open must
// discard it and keep the previous batch intact.
func TestPageFileTornJournalDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)
	if err := pf.Put(5, pfTestImage(5, 0x55)); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Hand-craft a torn journal: valid header shape, corrupt entry bytes.
	jnl := make([]byte, pfJnlHdrSize+pfJnlEntrySize)
	binary.LittleEndian.PutUint32(jnl[0:4], pfJournalMagic)
	binary.LittleEndian.PutUint32(jnl[4:8], pfVersion)
	binary.LittleEndian.PutUint32(jnl[8:12], 1)
	binary.LittleEndian.PutUint32(jnl[12:16], PageSize)
	binary.LittleEndian.PutUint32(jnl[16:20], 0xDEADBEEF) // wrong batch CRC
	if err := os.WriteFile(path+".journal", jnl, 0o644); err != nil {
		t.Fatal(err)
	}

	pf2 := openPF(t, path)
	if pf2.JournalReplayed() != 0 {
		t.Fatal("torn journal was replayed")
	}
	if got, err := pf2.Get(5); err != nil || !bytes.Equal(got, pfTestImage(5, 0x55)) {
		t.Fatalf("previous batch damaged by torn journal: err=%v", err)
	}
	if st, err := os.Stat(path + ".journal"); err != nil || st.Size() != 0 {
		t.Fatalf("torn journal not cleared: %v, %v", st, err)
	}
}

// TestPageFileRetryAfterFailedBatchReusesSlot: a batch that fails after
// slot assignment (transient I/O error) must not strand its slots — the
// retry has to land the same pages in the same slots, or the file would
// hold one page in two used slots and never reopen.
func TestPageFileRetryAfterFailedBatchReusesSlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)
	if err := pf.Put(1, pfTestImage(1, 0x01)); err != nil {
		t.Fatal(err)
	}
	simErr := errors.New("simulated transient write failure")
	pf.failApply = simErr
	batch := []PageImage{
		{PID: 2, Img: pfTestImage(2, 0x02)},
		{PID: 3, Img: pfTestImage(3, 0x03)},
	}
	if err := pf.PutBatch(batch); err != simErr {
		t.Fatalf("PutBatch = %v, want the injected failure", err)
	}
	// A *different* later batch must first re-apply the stranded journal
	// (the failed batch's only intact copy) instead of overwriting it:
	// pages 2 and 3 have to surface even though no retry included them.
	if err := pf.PutBatch([]PageImage{{PID: 4, Img: pfTestImage(4, 0x04)}}); err != nil {
		t.Fatal(err)
	}
	for pid, fill := range map[uint64]byte{2: 0x02, 3: 0x03, 4: 0x04} {
		if got, err := pf.Get(pid); err != nil || !bytes.Equal(got, pfTestImage(pid, fill)) {
			t.Fatalf("page %d lost after stranded-journal re-apply: %v", pid, err)
		}
	}
	// Re-putting the once-failed pages reuses their reserved slots.
	if err := pf.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	slots := pf.Slots()
	if len(slots) != 4 {
		t.Fatalf("slots after retry = %v, want exactly 4", slots)
	}
	if pf.nextSlot != 4 {
		t.Fatalf("nextSlot = %d after retry, want 4 (no slot leaked)", pf.nextSlot)
	}
	pf.Close()
	// The file must reopen cleanly: no page in two slots.
	pf2 := openPF(t, path)
	if pages, err := pf2.Pages(); err != nil || len(pages) != 4 {
		t.Fatalf("reopen after retried batch: %v, %v", pages, err)
	}
	if got, err := pf2.Get(3); err != nil || !bytes.Equal(got, pfTestImage(3, 0x03)) {
		t.Fatalf("retried page unreadable: %v", err)
	}
}

func TestPageFileChecksumCatchesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)
	if err := pf.Put(9, pfTestImage(9, 0x99)); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Flip a byte in the page body on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, pfHeaderSize+pfSlotHdr+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pf2 := openPF(t, path)
	if _, err := pf2.Get(9); err == nil {
		t.Fatal("corrupted page image passed its checksum")
	}
}

// TestSweepFsyncsO1 is the tentpole's acceptance property: archiving
// N ≥ 1000 dirty pages in one checkpoint sweep costs O(1) device fsyncs
// (two: journal, pagefile) instead of O(N).
func TestSweepFsyncsO1(t *testing.T) {
	const pages = 1200
	st := NewStore()
	for i := 1; i <= pages; i++ {
		p, _ := st.GetOrCreate(MakePageID(1, uint64(i)))
		p.SetLSN(1)
		st.MarkDirty(p.ID(), 1)
		p.Unpin()
	}
	pf := openPF(t, filepath.Join(t.TempDir(), "pagefile.db"))

	before := pf.Fsyncs()
	n := st.ArchiveDirtyPages(pf, lsn.LSN(1))
	if n != pages {
		t.Fatalf("sweep archived %d pages, want %d", n, pages)
	}
	if got := pf.Fsyncs() - before; got > 2 {
		t.Fatalf("sweep of %d pages cost %d fsyncs, want ≤ 2", pages, got)
	}
	if len(st.DirtyPages()) != 0 {
		t.Fatal("sweep left pages dirty")
	}
	// And everything is readable back with passing checksums.
	pids, err := pf.Pages()
	if err != nil || len(pids) != pages {
		t.Fatalf("Pages = %d entries (%v), want %d", len(pids), err, pages)
	}
	for _, pid := range []uint64{pids[0], pids[pages/2], pids[pages-1]} {
		if _, err := pf.Get(pid); err != nil {
			t.Fatalf("Get(%d) after sweep: %v", pid, err)
		}
	}
}

func TestPageFileImportLegacy(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "pages")
	fa, err := OpenFileArchive(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint64(1); pid <= 5; pid++ {
		if err := fa.Put(pid, pfTestImage(pid, byte(pid))); err != nil {
			t.Fatal(err)
		}
	}

	pf := openPF(t, filepath.Join(dir, "pagefile.db"))
	// Page 3 already lives in the pagefile with a NEWER image; a re-run
	// of a crashed import must not clobber it with the stale legacy copy.
	newer := pfTestImage(3, 0xF3)
	if err := pf.Put(3, newer); err != nil {
		t.Fatal(err)
	}
	if err := pf.ImportLegacy(legacy); err != nil {
		t.Fatal(err)
	}
	pids, err := pf.Pages()
	if err != nil || len(pids) != 5 {
		t.Fatalf("after import: Pages = %v (%v), want 5 pages", pids, err)
	}
	if got, _ := pf.Get(3); !bytes.Equal(got, newer) {
		t.Fatal("import clobbered a newer pagefile image with the legacy copy")
	}
	if got, _ := pf.Get(1); !bytes.Equal(got, pfTestImage(1, 1)) {
		t.Fatal("import lost a legacy page")
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy directory survived the import: %v", err)
	}
	// Importing again (directory gone) is a no-op, not an error — the
	// one-time migration leaves nothing behind.
	if err := pf.ImportLegacy(legacy); err != nil {
		t.Fatalf("re-import after cleanup: %v", err)
	}
	_ = os.RemoveAll(legacy)
}

func TestStoreLoadArchiveFromPageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pagefile.db")
	pf := openPF(t, path)

	st := NewStore()
	p, _ := st.GetOrCreate(MakePageID(2, 1))
	defer p.Unpin()
	if err := p.Insert(0, []byte("hello-pagefile")); err != nil {
		t.Fatal(err)
	}
	p.SetLSN(7)
	st.MarkDirty(p.ID(), 7)
	if n := st.ArchiveDirtyPages(pf, lsn.LSN(7)); n != 1 {
		t.Fatalf("sweep archived %d pages, want 1", n)
	}
	pf.Close()

	pf2 := openPF(t, path)
	st2 := NewStore()
	if err := st2.LoadArchive(pf2); err != nil {
		t.Fatal(err)
	}
	p2, err := st2.Get(MakePageID(2, 1))
	if err != nil || p2 == nil {
		t.Fatalf("archived page not restored: %v", err)
	}
	defer p2.Unpin()
	if got, err := p2.Get(0); err != nil || string(got) != "hello-pagefile" {
		t.Fatalf("restored record = %q, %v", got, err)
	}
	if p2.LSN() != 7 {
		t.Fatalf("restored pageLSN = %v, want 7", p2.LSN())
	}
}
