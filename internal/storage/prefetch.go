package storage

import (
	"encoding/binary"

	"aether/internal/lsn"
)

// This file is the buffer pool's read-ahead half (Layer 2 of the
// concurrent-I/O spine): detect sequential fault patterns — table scans,
// RebuildTables' restart walk, recovery redo — and stream the next pages
// in from the backend *before* demand arrives, so a cold scan's faults
// become cache hits riding a pipeline of overlapping preads instead of
// a chain of synchronous round-trips.
//
// Design rules, in order of importance:
//
//  1. Prefetch never harms the working set. Frames are charged against
//     the same CachePages budget as demand faults, but room is made with
//     clean-only eviction (evictCleanOne): a prefetch that would have to
//     steal a dirty page — an fsync on somebody's behalf for a page
//     nobody asked for yet — is dropped instead. Prefetched pages are
//     installed unpinned with the reference bit CLEAR, so an unconsumed
//     prefetch is the clock's first victim, never a squatter.
//  2. Bounded and backpressured. At most PrefetchDepth reads are in
//     flight (prefetchSem); when the pipeline is full, further window
//     issues are dropped, not queued — the demand fault path remains
//     the authority and will simply read the page itself.
//  3. Adaptive. A stream's window starts at 4 pages and doubles with
//     its run length up to PrefetchDepth (the Linux-readahead ramp), so
//     a short burst costs a few reads while a long scan fills the whole
//     pipeline. Prefetch HITS feed back into the tracker exactly like
//     faults, keeping the window open when prefetch succeeds so well
//     that demand misses disappear.
//
// The tracker holds pfStreams concurrent streams, so interleaved scans
// (or a scan racing a random-access writer) don't destroy each other's
// run detection: a non-matching access replaces only the least-recently
// advanced slot.

// pfStreams is how many concurrent sequential streams the read-ahead
// tracker distinguishes.
const pfStreams = 4

// pfMinWindow is the initial read-ahead window of a freshly confirmed
// stream (two sequential accesses).
const pfMinWindow = 4

// pfStream tracks one suspected sequential access stream.
type pfStream struct {
	last  uint64 // last page ID accessed in this stream
	run   int    // consecutive sequential accesses observed
	ahead uint64 // highest page ID already submitted for read-ahead
	tick  uint64 // tracker clock at last advance (replacement policy)
}

// SetPrefetch enables sequential read-ahead with at most depth pages
// ahead of demand (0 disables). The first call must happen at setup,
// before the store is shared between goroutines; re-arming with the
// same depth is a no-op, so Restart's pre-recovery arming and
// NewEngine's idempotent re-wiring don't rewrite fields that recovery-
// spawned prefetch goroutines may still be reading.
func (s *Store) SetPrefetch(depth int) {
	if depth < 0 {
		depth = 0
	}
	if depth == s.prefetchDepth {
		return
	}
	s.prefetchDepth = depth
	if depth > 0 {
		s.prefetchSem = make(chan struct{}, depth)
	} else {
		s.prefetchSem = nil
	}
}

// noteAccess feeds one page access (a demand miss, or a hit on a
// prefetched page) into the stream tracker, and issues the next
// read-ahead window if the access extends a sequential run. Cheap when
// prefetch is off (one comparison); O(pfStreams) map-free work under
// pfMu otherwise.
func (s *Store) noteAccess(pid uint64) {
	if s.prefetchDepth <= 0 || s.backend == nil {
		return
	}
	s.pfMu.Lock()
	s.pfTick++
	var st *pfStream
	for i := range s.streams {
		if s.streams[i].last+1 == pid || s.streams[i].last == pid {
			st = &s.streams[i]
			break
		}
	}
	if st == nil {
		// No stream claims this access: recycle the least-recently
		// advanced slot. run starts at 1 — a single access proves
		// nothing; the window opens on the *next* sequential hit.
		lru := &s.streams[0]
		for i := range s.streams {
			if s.streams[i].tick < lru.tick {
				lru = &s.streams[i]
			}
		}
		*lru = pfStream{last: pid, run: 1, ahead: pid, tick: s.pfTick}
		s.pfMu.Unlock()
		return
	}
	if st.last+1 == pid {
		st.run++
	}
	st.last = pid
	st.tick = s.pfTick
	if st.run < 2 {
		s.pfMu.Unlock()
		return
	}
	// Ramp the window with the run: 4, 8, 16, ... capped at the depth —
	// and at half the frame budget. Read-ahead deeper than the pool can
	// hold is self-defeating: unconsumed prefetched frames are the
	// clock's first victims, so a window wider than the pool evicts its
	// own pages before demand reaches them (and a scan's working set
	// still needs the other half of the frames).
	depth := s.prefetchDepth
	if s.budget > 0 && int64(depth) > s.budget/2 {
		depth = int(s.budget / 2)
	}
	win := pfMinWindow << uint(st.run-2)
	if win <= 0 || win > depth {
		win = depth
	}
	lo := pid + 1
	if st.ahead+1 > lo {
		lo = st.ahead + 1
	}
	hi := pid + uint64(win)
	if hi > st.ahead {
		st.ahead = hi
	}
	s.pfMu.Unlock()
	for q := lo; q <= hi; q++ {
		select {
		case s.prefetchSem <- struct{}{}:
			go s.prefetchOne(q)
		default:
			// Pipeline full: drop the rest of the window. The dropped
			// pages are not re-issued (ahead already covers them) — if
			// demand reaches them first it faults normally, advancing
			// the stream past them.
			return
		}
	}
}

// prefetchOne reads one page from the backend and installs it unpinned,
// reference bit clear, prefetched flag set — or gives up silently: a
// prefetch is a hint, and every failure mode (resident already, absent
// from the backend, no clean frame available, read or validation error)
// is handled by the demand fault that may follow. It applies the same
// WAL-horizon check as the fault path, and the same read-under-shard-
// lock discipline that makes an install atomic against a concurrent
// install → modify → steal → evict cycle of the same page.
func (s *Store) prefetchOne(pid uint64) {
	defer func() { <-s.prefetchSem }()
	sh := s.shard(pid)
	sh.mu.RLock()
	_, resident := sh.pages[pid]
	sh.mu.RUnlock()
	if resident {
		return
	}
	if c, ok := s.backend.(ArchiveContains); ok && !c.Contains(pid) {
		return
	}
	if !s.reservePrefetchFrame() {
		return
	}
	sh.mu.Lock()
	if sh.pages[pid] != nil {
		sh.mu.Unlock()
		s.releaseFrame()
		return
	}
	img, err := s.backend.Get(pid)
	if err != nil || len(img) != PageSize {
		sh.mu.Unlock()
		s.releaseFrame()
		return
	}
	if s.wal != nil {
		if pl := lsn.LSN(binary.LittleEndian.Uint64(img[8:16])); pl > s.wal.Durable() {
			sh.mu.Unlock()
			s.releaseFrame()
			return
		}
	}
	p := NewPage(pid)
	if err := p.LoadSnapshot(img); err != nil {
		sh.mu.Unlock()
		s.releaseFrame()
		return
	}
	p.prefetched.Store(true)
	sh.pages[pid] = p
	sh.mu.Unlock()
	s.noteResident(pid)
	s.prefetchReads.Add(1)
}

// notePrefetchHit consumes a page's prefetched flag on its first demand
// access: counts the hit and feeds the access back into the stream
// tracker (a consumed prefetch extends the run exactly like a miss
// would, keeping the pipeline ahead of a scan that no longer misses).
func (s *Store) notePrefetchHit(p *Page, pid uint64) {
	if p != nil && p.prefetched.CompareAndSwap(true, false) {
		s.prefetchHits.Add(1)
		s.noteAccess(pid)
	}
}

// reservePrefetchFrame counts a prefetched page into the residency
// total, making room with clean-only eviction. False (reservation
// withdrawn) when no clean victim exists: prefetch never steals a dirty
// page and never overshoots the budget — it is the one resident-set
// citizen with no right to push anything out that costs I/O.
func (s *Store) reservePrefetchFrame() bool {
	s.resident.Add(1)
	if s.budget <= 0 {
		return true
	}
	for s.resident.Load() > s.budget {
		if !s.evictCleanOne() {
			s.resident.Add(-1)
			return false
		}
	}
	return true
}

// evictCleanOne reclaims one frame from a clean, cold, unpinned page —
// the only eviction prefetch may perform. Dirty pages are skipped, not
// stolen (no log force, no archive write, no waiting on the cleaner);
// referenced pages lose their second-chance bit exactly as the demand
// clock would age them.
func (s *Store) evictCleanOne() bool {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	limit := 2 * len(s.clock)
	for scanned := 0; scanned <= limit; scanned++ {
		if len(s.clock) == 0 {
			break
		}
		if s.hand >= len(s.clock) {
			s.hand = 0
		}
		pid := s.clock[s.hand]
		sh := s.shard(pid)
		sh.mu.RLock()
		p := sh.pages[pid]
		sh.mu.RUnlock()
		if p == nil {
			s.clockRemoveAtHand()
			continue
		}
		if p.pins.Load() > 0 || p.ref.CompareAndSwap(true, false) || p.wb.Load() || s.isDirty(pid) {
			s.hand++
			continue
		}
		if s.dropClean(pid, p) {
			s.clockRemoveAtHand()
			return true
		}
		s.hand++
	}
	return false
}
