package storage

import (
	"sort"
	"sync"
	"sync/atomic"

	"aether/internal/logrec"
	"aether/internal/lsn"
)

// RID identifies a record: page plus slot.
type RID struct {
	// Page is the owning page's ID.
	Page uint64
	// Slot is the record's index in the page's slot directory.
	Slot uint16
}

// Pack encodes the RID into a uint64 (48-bit page, 16-bit slot) for
// storage in index leaves.
func (r RID) Pack() uint64 { return r.Page<<16 | uint64(r.Slot) }

// UnpackRID reverses Pack.
func UnpackRID(v uint64) RID { return RID{Page: v >> 16, Slot: uint16(v & 0xFFFF)} }

// storeShards is the page-map shard count.
const storeShards = 64

// Store is the page store: a demand-paged buffer pool over an optional
// Archive backend. It owns page lookup/creation/fault-in, residency and
// pinning, the clock eviction policy with WAL-correct dirty steal, the
// background-cleaner machinery that writes dirty pages back ahead of
// demand (cleaner.go), the dirty-page table (DPT) used by checkpoints,
// and page-image archival. Without a backend (SetBackend) it
// degenerates to the original fully memory-resident store; without a
// budget (SetCachePages) nothing is ever evicted.
//
// Page IDs encode their owning space (table) in the top 24 bits:
// pid = space<<40 | seq. Recovery relies on this to reattach redo-created
// pages to the right heap without any catalog pages.
type Store struct {
	shards [storeShards]storeShard

	seqMu sync.Mutex
	seq   map[uint32]*atomic.Uint64 // per-space page sequence

	dirtyMu sync.Mutex
	dirty   map[uint64]lsn.LSN // pageID → recLSN (first LSN that dirtied it)

	// Buffer pool state (bufferpool.go, cleaner.go).
	backend     Archive // home of pages; nil = RAM is the only copy
	wal         WAL     // flush-before-steal + fault verification; may be nil
	budget      int64   // max resident pages; 0 = unbounded
	stealNotify func()  // demand-steal pressure callback; may be nil

	// evictMu serializes victim selection and guards clock+hand. It is
	// deliberately NOT held across steal I/O: a dirty victim is claimed
	// through its per-page writeback latch and written back with the
	// lock released, so concurrent faults proceed while a steal's fsyncs
	// are in flight.
	evictMu sync.Mutex
	clock   []uint64 // resident pids in install order (clock order)
	hand    int      // clock hand position

	// cleanWaitMu guards cleanWaitCh, the broadcast channel writeback
	// passes (cleaner, sweep) close after marking pages clean. Evictors
	// that found only dirty victims wait on it — briefly, with the armed
	// cleaner poked — instead of stealing into an in-flight pass whose
	// clean victims are milliseconds away (bufferpool.go).
	cleanWaitMu sync.Mutex
	cleanWaitCh chan struct{}

	// Sequential read-ahead state (prefetch.go). prefetchDepth and
	// prefetchSem are set once at setup (SetPrefetch); pfMu guards the
	// stream tracker.
	prefetchDepth int
	prefetchSem   chan struct{}
	pfMu          sync.Mutex
	pfTick        uint64
	streams       [pfStreams]pfStream

	resident      atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	steals        atomic.Int64
	cleanerWrites atomic.Int64
	cleanerPasses atomic.Int64
	prefetchReads atomic.Int64
	prefetchHits  atomic.Int64
}

// PageSpace extracts the owning space from a page ID.
func PageSpace(pid uint64) uint32 { return uint32(pid >> 40) }

// pageSeq extracts the per-space sequence number from a page ID.
func pageSeq(pid uint64) uint64 { return pid & ((1 << 40) - 1) }

// MakePageID builds a page ID from space and sequence.
func MakePageID(space uint32, seq uint64) uint64 {
	return uint64(space)<<40 | (seq & ((1 << 40) - 1))
}

type storeShard struct {
	mu    sync.RWMutex
	pages map[uint64]*Page
}

// NewStore returns an empty store. Page sequence numbers start at 1 in
// every space.
func NewStore() *Store {
	s := &Store{
		dirty: make(map[uint64]lsn.LSN),
		seq:   make(map[uint32]*atomic.Uint64),
	}
	for i := range s.shards {
		s.shards[i].pages = make(map[uint64]*Page)
	}
	return s
}

func (s *Store) shard(pid uint64) *storeShard {
	return &s.shards[(pid*0x9E3779B97F4A7C15>>32)%storeShards]
}

func (s *Store) spaceSeq(space uint32) *atomic.Uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	c := s.seq[space]
	if c == nil {
		c = &atomic.Uint64{}
		s.seq[space] = c
	}
	return c
}

// Allocate creates a fresh page in the given space and returns it
// pinned; call Unpin when done. Room is made within the cache budget
// first (best-effort: allocation itself never fails).
func (s *Store) Allocate(space uint32) *Page {
	s.reserveFrame()
	pid := MakePageID(space, s.spaceSeq(space).Add(1))
	p := NewPage(pid)
	p.pins.Store(1)
	p.ref.Store(true)
	sh := s.shard(pid)
	sh.mu.Lock()
	sh.pages[pid] = p
	sh.mu.Unlock()
	s.noteResident(pid)
	return p
}

// Get returns the page with the given ID, pinned — faulting it in from
// the backend on a cache miss — or (nil, nil) if it exists neither in
// RAM nor in the backend. A non-nil error is a failed or rejected fault
// (backend I/O error, checksum failure, image beyond the durable log);
// it must not be treated as "absent". Call Unpin when done.
func (s *Store) Get(pid uint64) (*Page, error) {
	if p := s.getResident(pid); p != nil {
		s.notePrefetchHit(p, pid)
		return p, nil
	}
	if s.backend == nil {
		return nil, nil
	}
	return s.fault(pid, false)
}

// GetOrCreate returns the page pinned, faulting it from the backend or
// creating an empty one if it exists nowhere (redo uses this to rebuild
// pages never archived). Call Unpin when done.
func (s *Store) GetOrCreate(pid uint64) (*Page, error) {
	if p := s.getResident(pid); p != nil {
		s.notePrefetchHit(p, pid)
		return p, nil
	}
	return s.fault(pid, true)
}

// MarkDirty records that pid was modified at recLSN, if it is not
// already dirty. Callers invoke it with the page latch held, right after
// the first Apply since the page was last clean.
func (s *Store) MarkDirty(pid uint64, recLSN lsn.LSN) {
	s.dirtyMu.Lock()
	if _, ok := s.dirty[pid]; !ok {
		s.dirty[pid] = recLSN
	}
	s.dirtyMu.Unlock()
}

// MarkClean removes pid from the DPT (after archiving).
func (s *Store) MarkClean(pid uint64) {
	s.dirtyMu.Lock()
	delete(s.dirty, pid)
	s.dirtyMu.Unlock()
}

// DirtyPages snapshots the DPT, sorted by page ID for determinism.
func (s *Store) DirtyPages() []logrec.DirtyPageEntry {
	s.dirtyMu.Lock()
	out := make([]logrec.DirtyPageEntry, 0, len(s.dirty))
	for pid, rec := range s.dirty {
		out = append(out, logrec.DirtyPageEntry{PageID: pid, RecLSN: rec})
	}
	s.dirtyMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].PageID < out[j].PageID })
	return out
}

// MinRecLSN returns the smallest recLSN in the DPT, or lsn.Undefined if
// the DPT is empty. Redo starts here.
func (s *Store) MinRecLSN() lsn.LSN {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	min := lsn.Undefined
	for _, rec := range s.dirty {
		if rec < min {
			min = rec
		}
	}
	return min
}

// PageIDs returns the IDs of the pages currently resident in RAM
// (sorted). With a backend attached this is the cached subset, not the
// database; use AllPageIDs to enumerate everything.
func (s *Store) PageIDs() []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for pid := range sh.pages {
			out = append(out, pid)
		}
		sh.mu.RUnlock()
	}
	sortPageIDs(out)
	return out
}

// sortPageIDs sorts page IDs ascending.
func sortPageIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Archive is persistent page-image storage (the database file). Writing
// a page to the archive must respect the WAL rule: the caller checks
// pageLSN ≤ durable LSN before archiving.
type Archive interface {
	// Put stores the page image. A failed Put must be reported: the
	// caller keeps the page dirty so the log behind it cannot be
	// truncated away.
	Put(pid uint64, img []byte) error
	// Get returns the archived image (nil, nil for a page that was
	// never archived). An I/O failure must be an error, not a silent
	// miss: a missing-but-listed page is lost committed data.
	Get(pid uint64) ([]byte, error)
	// Pages lists archived page IDs.
	Pages() ([]uint64, error)
}

// MemArchive is an in-memory Archive (a simulated database file that
// survives our simulated crashes).
type MemArchive struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

// NewMemArchive returns an empty archive.
func NewMemArchive() *MemArchive {
	return &MemArchive{pages: make(map[uint64][]byte)}
}

// Put implements Archive.
func (a *MemArchive) Put(pid uint64, img []byte) error {
	cp := make([]byte, len(img))
	copy(cp, img)
	a.mu.Lock()
	a.pages[pid] = cp
	a.mu.Unlock()
	return nil
}

// Get implements Archive.
func (a *MemArchive) Get(pid uint64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pages[pid], nil
}

// Contains implements ArchiveContains (no I/O to save, but it keeps the
// in-memory archive's miss path on par with the pagefile's).
func (a *MemArchive) Contains(pid uint64) bool {
	a.mu.Lock()
	_, ok := a.pages[pid]
	a.mu.Unlock()
	return ok
}

// Pages implements Archive.
func (a *MemArchive) Pages() ([]uint64, error) {
	a.mu.Lock()
	out := make([]uint64, 0, len(a.pages))
	for pid := range a.pages {
		out = append(out, pid)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// PutBatch implements ArchiveBatcher: the whole sweep lands under one
// lock acquisition, so in-memory benchmark runs take the same batched
// path as the PageFile instead of the per-page Put loop. Memory writes
// cannot half-fail, so the batch trivially installs atomically.
func (a *MemArchive) PutBatch(batch []PageImage) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, pi := range batch {
		cp := make([]byte, len(pi.Img))
		copy(cp, pi.Img)
		a.pages[pi.PID] = cp
	}
	return nil
}

var (
	_ Archive         = (*MemArchive)(nil)
	_ ArchiveBatcher  = (*MemArchive)(nil)
	_ ArchiveContains = (*MemArchive)(nil)
)

// ArchiveFlusher is the optional Archive extension for batched
// durability: Put may defer directory-entry durability until Flush.
type ArchiveFlusher interface {
	Flush() error
}

// PageImage is one page bound for the archive.
type PageImage struct {
	// PID is the page's ID.
	PID uint64
	// Img is the page's snapshotted image.
	Img []byte
}

// ArchiveBatcher is the optional Archive extension the checkpoint sweep
// prefers: PutBatch installs many page images with O(1) device fsyncs
// (the PageFile's double-write protocol). A failed PutBatch installs
// nothing the caller may rely on — every page stays dirty.
type ArchiveBatcher interface {
	PutBatch(batch []PageImage) error
}

// FsyncCounter is implemented by archives that count their device fsyncs;
// the checkpointer charges the delta to its sweep-fsync counter.
type FsyncCounter interface {
	Fsyncs() int64
}

// ReadRetrier is implemented by archives whose read path is optimistic
// (lock-free reads validated by checksum, retried on a racing write);
// ReadRetries exposes how often the optimism lost. The PageFile
// implements it; stats surfaces pick it up by type assertion.
type ReadRetrier interface {
	ReadRetries() int64
}

// ArchiveDirtyPages writes every dirty page whose pageLSN is at or below
// durable to the archive and cleans it in the DPT. It returns how many
// pages were written. This is the checkpointer's page-cleaning sweep;
// the durable bound is the write-ahead rule.
//
// Pages are cleaned only after the whole batch is flushed, and only if
// their pageLSN is unchanged since the snapshot: a page re-dirtied
// mid-sweep stays in the DPT (under its old, conservative recLSN) so the
// log that rebuilds its newest updates keeps pinning the truncation
// horizon until the next sweep archives them.
func (s *Store) ArchiveDirtyPages(a Archive, durable lsn.LSN) int {
	if a == nil {
		return 0
	}
	type archived struct {
		pid  uint64
		page *Page
		lsn  lsn.LSN
	}
	batcher, batched := a.(ArchiveBatcher)
	var done []archived
	// Pages stay pinned from snapshot to check-and-clean (a concurrent
	// eviction must not reclaim a frame the sweep is mid-way through
	// archiving) and hold their writeback latch for the same window (so
	// the background cleaner and the steal path never have a second
	// write of the same page in flight).
	defer func() {
		for _, e := range done {
			e.page.wb.Store(false)
			e.page.Unpin()
		}
	}()
	var batch []PageImage // images held only for the batched path
	for _, e := range s.DirtyPages() {
		// Resident-only lookup: a dirty page is always resident (the
		// only way out of RAM is a steal, which cleans it first), so a
		// non-resident entry is stale — faulting it back just to
		// re-archive the image the steal already wrote would waste a
		// read, a cache frame and a write. pinNoRef, not getResident:
		// archiving a page must not make it look hot to the clock.
		p, _ := s.pinNoRef(e.PageID)
		if p == nil {
			if s.isDirty(e.PageID) {
				// Still in the live DPT yet nowhere in RAM or reachable
				// state: a vanished page (legacy stores without a
				// backend). Clean it so it cannot pin the truncation
				// horizon forever.
				s.MarkClean(e.PageID)
			}
			continue
		}
		if !p.wb.CompareAndSwap(false, true) {
			// The cleaner or a steal has this page's writeback in
			// flight; whichever wins cleans it, and if it is re-dirtied
			// the next sweep picks it up.
			p.Unpin()
			continue
		}
		p.Latch.RLock()
		pl := p.LSN()
		var img []byte
		if pl <= durable {
			img = p.Snapshot()
		}
		p.Latch.RUnlock()
		if img == nil {
			p.wb.Store(false)
			p.Unpin()
			continue
		}
		if batched {
			// Collect: the whole sweep lands in one PutBatch below.
			batch = append(batch, PageImage{PID: e.PageID, Img: img})
		} else if err := a.Put(e.PageID, img); err != nil {
			// Keep the page dirty: its recLSN stays in the DPT and
			// pins the truncation horizon, so the log that rebuilds
			// it cannot be recycled until a later sweep succeeds.
			// (Streaming Put also keeps peak memory at one image.)
			p.wb.Store(false)
			p.Unpin()
			continue
		}
		done = append(done, archived{pid: e.PageID, page: p, lsn: pl})
	}
	if len(done) == 0 {
		return 0
	}
	if batched {
		// Batched writeback: O(1) fsyncs for the whole sweep. A failed
		// batch installs nothing — every page stays dirty and the next
		// sweep retries.
		if err := batcher.PutBatch(batch); err != nil {
			return 0
		}
	} else if f, ok := a.(ArchiveFlusher); ok {
		if err := f.Flush(); err != nil {
			// Nothing is cleaned: every page stays dirty and the
			// horizon stays put until a flush succeeds.
			return 0
		}
	}
	written := 0
	for _, e := range done {
		// Check-and-clean under the page latch: writers bump pageLSN
		// and mark dirty under the exclusive latch, so either we see
		// the bump (page stays dirty) or our clean completes first and
		// their MarkDirty re-adds a fresh entry.
		e.page.Latch.RLock()
		if e.page.LSN() == e.lsn {
			s.MarkClean(e.pid)
			written++
		}
		e.page.Latch.RUnlock()
	}
	s.signalCleaned()
	return written
}

// LoadArchive populates the store from an archive eagerly, faulting
// every page into RAM at once. The restart path no longer uses it
// (pages fault in lazily through the backend); it remains for tests and
// tools that want a fully materialized store. Pages load through the
// normal fault path, so a cache budget still bounds residency.
func (s *Store) LoadArchive(a Archive) error {
	pids, err := a.Pages()
	if err != nil {
		return err
	}
	for _, pid := range pids {
		if s.backend == a {
			if p := s.getResident(pid); p != nil {
				// Already resident: fall through to the overwrite path
				// below (LoadArchive's contract is archive-wins).
				p.Unpin()
			} else {
				// GetOrCreate faults the image from this very archive;
				// a separate a.Get here would read it twice.
				p, err := s.GetOrCreate(pid)
				if err != nil {
					return err
				}
				p.Unpin()
				continue
			}
		}
		img, err := a.Get(pid)
		if err != nil {
			return err
		}
		p, err := s.GetOrCreate(pid)
		if err != nil {
			return err
		}
		err = p.LoadSnapshot(img)
		p.Unpin()
		if err != nil {
			return err
		}
	}
	return nil
}
