package txn

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// TestArchiverBackoffSurvivesTransientOutage injects a 5-failure
// cold-store outage and requires the background archiver to ride it
// out with retries: ArchiveRetries must tick, ArchiveGaveUp must not,
// and every sealed segment must land in the archive — none lost, none
// recycled early.
func TestArchiverBackoffSurvivesTransientOutage(t *testing.T) {
	// Shrink the retry schedule so five failures resolve in
	// milliseconds rather than the production ~150ms+.
	oldMin, oldMax, oldRetries := archBackoffMin, archBackoffMax, archMaxRetries
	archBackoffMin, archBackoffMax, archMaxRetries = 200*time.Microsecond, 2*time.Millisecond, 8
	defer func() {
		archBackoffMin, archBackoffMax, archMaxRetries = oldMin, oldMax, oldRetries
	}()

	dev := logdev.NewSegmentedMem(logdev.ProfileMemory, 8<<10)
	marc := logdev.NewMemArchiver()
	dev.SetArchiver(marc)
	// The outage: the next 5 Archive calls fail, then the store heals.
	outage := errors.New("cold store unreachable")
	marc.FailTimes(5, outage)

	pf, err := storage.OpenPageFile(filepath.Join(t.TempDir(), "pagefile.db"))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Log:                  lm,
		Locks:                lockmgr.New(lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true}),
		Store:                storage.NewStore(),
		Archive:              pf,
		CheckpointEveryBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		eng.Close()
		eng.Log().Close()
		pf.Close()
	}()
	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Commit until the log has sealed segments and the archiver —
	// after burning through the outage — has drained them all.
	ag := eng.NewAgent()
	defer ag.Close()
	deadline := time.Now().Add(15 * time.Second)
	var k uint64
	for {
		k++
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, row(k, k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
		s := eng.Stats()
		if s.ArchiveRetries.Load() > 0 && s.SegmentsArchived.Load() > 0 && len(dev.PendingArchive()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outage never resolved: retries=%d archived=%d pending=%d",
				s.ArchiveRetries.Load(), s.SegmentsArchived.Load(), len(dev.PendingArchive()))
		}
	}

	s := eng.Stats()
	if s.ArchiveGaveUp.Load() != 0 {
		t.Fatalf("archiver gave up %d times during a 5-failure outage (max retries %d)",
			s.ArchiveGaveUp.Load(), archMaxRetries)
	}
	if s.ArchiveFailures.Load() == 0 {
		t.Fatal("outage injected but no archive failures recorded")
	}

	// No segment lost: every index the device ever handed to the
	// archiver is retrievable, and nothing is still waiting.
	idxs, err := marc.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(idxs)) != s.SegmentsArchived.Load() {
		t.Fatalf("archive holds %d segments, engine counted %d", len(idxs), s.SegmentsArchived.Load())
	}
	for _, idx := range idxs {
		if _, err := marc.Retrieve(idx); err != nil {
			t.Fatalf("archived segment %d unreadable: %v", idx, err)
		}
	}
}

// TestArchiverBackoffGivesUpOnPermanentFailure: a cold store that
// never heals must not wedge the engine — the pass gives up after
// archMaxRetries, counts it, and leaves the segments parked on disk
// for a later pass.
func TestArchiverBackoffGivesUpOnPermanentFailure(t *testing.T) {
	oldMin, oldMax, oldRetries := archBackoffMin, archBackoffMax, archMaxRetries
	archBackoffMin, archBackoffMax, archMaxRetries = 100*time.Microsecond, 1*time.Millisecond, 3
	defer func() {
		archBackoffMin, archBackoffMax, archMaxRetries = oldMin, oldMax, oldRetries
	}()

	dev := logdev.NewSegmentedMem(logdev.ProfileMemory, 8<<10)
	marc := logdev.NewMemArchiver()
	dev.SetArchiver(marc)
	marc.FailWith(errors.New("cold store gone"))

	pf, err := storage.OpenPageFile(filepath.Join(t.TempDir(), "pagefile.db"))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Log:                  lm,
		Locks:                lockmgr.New(lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true}),
		Store:                storage.NewStore(),
		Archive:              pf,
		CheckpointEveryBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		eng.Close()
		eng.Log().Close()
		pf.Close()
	}()
	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}

	ag := eng.NewAgent()
	defer ag.Close()
	deadline := time.Now().Add(15 * time.Second)
	var k uint64
	for eng.Stats().ArchiveGaveUp.Load() == 0 {
		k++
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, row(k, k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("archiver never gave up: failures=%d retries=%d",
				eng.Stats().ArchiveFailures.Load(), eng.Stats().ArchiveRetries.Load())
		}
	}
	s := eng.Stats()
	// Each abandoned pass burned exactly archMaxRetries retries.
	if s.ArchiveRetries.Load() < int64(archMaxRetries) {
		t.Fatalf("gave up after only %d retries, want ≥ %d", s.ArchiveRetries.Load(), archMaxRetries)
	}
	if s.SegmentsArchived.Load() != 0 {
		t.Fatalf("%d segments archived through a permanent outage", s.SegmentsArchived.Load())
	}
	// The unarchivable segments are parked, not lost or recycled.
	if len(dev.PendingArchive()) == 0 {
		t.Fatal("no segments parked awaiting archive")
	}
}
