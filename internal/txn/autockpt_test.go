package txn

import (
	"path/filepath"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// newAutoHarness builds an engine on a segmented memory log with the
// background incremental checkpointer armed and a real PageFile archive.
func newAutoHarness(t *testing.T, everyBytes int64) (*Engine, *logdev.Segmented, *storage.PageFile) {
	t.Helper()
	dev := logdev.NewSegmentedMem(logdev.ProfileMemory, 16<<10)
	pf, err := storage.OpenPageFile(filepath.Join(t.TempDir(), "pagefile.db"))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 21},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Log:                  lm,
		Locks:                lockmgr.New(lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true}),
		Store:                storage.NewStore(),
		Archive:              pf,
		CheckpointEveryBytes: everyBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		eng.Close()
		eng.Log().Close()
		pf.Close()
	})
	return eng, dev, pf
}

// TestAutoCheckpointAdvancesHorizon: with the background checkpointer
// armed, a sustained commit stream alone — no Checkpoint() calls — must
// produce checkpoints, sweeps and an advancing truncation base.
func TestAutoCheckpointAdvancesHorizon(t *testing.T) {
	eng, dev, _ := newAutoHarness(t, 32<<10)
	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	defer ag.Close()

	deadline := time.Now().Add(10 * time.Second)
	var k uint64
	for dev.Base() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("truncation base never advanced: %d auto checkpoints, base %d",
				eng.Stats().AutoCheckpoints.Load(), dev.Base())
		}
		k++
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, row(k, k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().AutoCheckpoints.Load() == 0 {
		t.Fatal("horizon advanced without an auto checkpoint")
	}
	if eng.Stats().Checkpoints.Load() == 0 {
		t.Fatal("auto checkpoints not counted as checkpoints")
	}
	// The sweep counters observed the page-cleaning work.
	if eng.Stats().SweepPages.Load() == 0 || eng.Stats().SweepFsyncs.Load() == 0 {
		t.Fatalf("sweep counters empty: pages=%d fsyncs=%d",
			eng.Stats().SweepPages.Load(), eng.Stats().SweepFsyncs.Load())
	}
	// Close is idempotent and leaves the engine quiet.
	eng.Close()
	eng.Close()
}

// TestSweepFsyncCounterO1 asserts the acceptance property at the engine
// level: one checkpoint sweeping ≥ 1000 dirty pages charges O(1) fsyncs
// to the sweep-fsync counter.
func TestSweepFsyncCounterO1(t *testing.T) {
	eng, _, _ := newAutoHarness(t, 0) // no background checkpointer: one inline sweep
	const pages = 1000
	st := eng.Store()
	for i := 1; i <= pages; i++ {
		p, _ := st.GetOrCreate(storage.MakePageID(1, uint64(i)))
		p.SetLSN(1)
		st.MarkDirty(p.ID(), 1)
		p.Unpin()
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.SweepPages.Load() != pages {
		t.Fatalf("sweep wrote %d pages, want %d", s.SweepPages.Load(), pages)
	}
	if got := s.SweepFsyncs.Load(); got > 2 {
		t.Fatalf("sweep of %d pages charged %d fsyncs, want ≤ 2 (O(1))", pages, got)
	}
	if s.Sweeps.Load() != 1 || s.SweepDuration.Count() != 1 {
		t.Fatalf("sweep counters: sweeps=%d durations=%d", s.Sweeps.Load(), s.SweepDuration.Count())
	}
}
