package txn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// gatedArchive wraps an Archive so a test can hold the background
// cleaner *inside* a batched writeback: the images are already in the
// archive, the pages are not yet marked clean — the exact window a
// crash must tolerate. Un-gated it is a transparent pass-through.
type gatedArchive struct {
	storage.Archive
	gated   atomic.Bool
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newGatedArchive(a storage.Archive) *gatedArchive {
	return &gatedArchive{Archive: a, entered: make(chan struct{}), release: make(chan struct{})}
}

// PutBatch forwards to the wrapped archive, then (once, when gated)
// parks until released. Only the cleaner and the sweep use PutBatch;
// this test runs no checkpoints, so the parked caller is the cleaner.
func (a *gatedArchive) PutBatch(batch []storage.PageImage) error {
	if err := a.Archive.(storage.ArchiveBatcher).PutBatch(batch); err != nil {
		return err
	}
	if a.gated.Load() {
		a.once.Do(func() {
			close(a.entered)
			<-a.release
		})
	}
	return nil
}

// Contains forwards the buffer pool's cheap existence probe.
func (a *gatedArchive) Contains(pid uint64) bool {
	if c, ok := a.Archive.(storage.ArchiveContains); ok {
		return c.Contains(pid)
	}
	return false
}

func restartCleaned(t *testing.T, dev *logdev.Mem, arch storage.Archive, cachePages int64, cleanerPages int) (*Engine, int) {
	t.Helper()
	eng, res, err := Restart(RestartConfig{
		Device:  dev,
		Archive: arch,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		},
		LockConfig:      lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true},
		CachePages:      cachePages,
		CleanerPages:    cleanerPages,
		CleanerInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() {
		eng.Close()
		eng.Log().Close()
	})
	return eng, res.RedoApplied
}

// TestCleanerCrashBeforeMarkClean crashes in the cleaner's most
// delicate window: a batch of dirty images has reached the database
// file, but the pages were never marked clean (and no checkpoint ever
// recorded any of it). Recovery must treat the newer archived images
// idempotently — redo skips records at or below each image's pageLSN —
// and reproduce every committed row exactly.
func TestCleanerCrashBeforeMarkClean(t *testing.T) {
	const cachePages = 4
	dev := logdev.NewMem(logdev.ProfileMemory)
	mem := storage.NewMemArchive()
	arch := newGatedArchive(mem)
	eng, _ := restartCleaned(t, dev, arch, cachePages, cachePages/2)

	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	const keys = 40
	for k := uint64(1); k <= keys; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, stealRow(k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the gate, then dirty pages until a cleaner batch parks inside
	// the archive write. Every update is committed (durable log) before
	// the crash.
	arch.gated.Store(true)
	updated := make(map[uint64]bool)
	k := uint64(1)
	for parked := false; !parked; k++ {
		if k > keys {
			k = 1
		}
		tx := ag.Begin()
		kk := k
		err := tx.Update(tbl, kk, func(r []byte) ([]byte, error) {
			return append(row(kk, kk*31), make([]byte, 1500)...), nil
		})
		if err != nil {
			t.Fatalf("update %d: %v", kk, err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
		updated[kk] = true
		select {
		case <-arch.entered:
			parked = true
		default:
		}
	}
	ag.Close()
	if s := eng.Stats().Checkpoints.Load(); s != 0 {
		t.Fatalf("test invalid: %d checkpoints ran", s)
	}

	// Power loss NOW: cleaner wrote, never marked clean, never released.
	dev.CrashFreeze()
	close(arch.release) // let the parked goroutine drain so Close returns
	eng.Close()
	eng.Log().Close()
	dev.Remount()

	arch.gated.Store(false)
	eng2, _ := restartCleaned(t, dev, arch, cachePages, cachePages/2)
	tbl2, err := eng2.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for i := uint64(1); i <= keys; i++ {
		got, err := check.Read(tbl2, i)
		if err != nil {
			t.Fatalf("key %d lost after cleaner-window crash: %v", i, err)
		}
		want := i * 7
		if updated[i] {
			want = i * 31
		}
		if rowValue(got) != want {
			t.Fatalf("key %d: value %d, want %d", i, rowValue(got), want)
		}
	}
	if err := check.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCleanerCrashRecoveryIdempotent soaks the cleaner under a steady
// write load and crashes mid-flight (no staging): whatever mix of
// cleaned, half-cleaned and dirty pages the crash caught, recovery must
// reproduce every committed value, within the same cache budget.
func TestCleanerCrashRecoveryIdempotent(t *testing.T) {
	const cachePages = 4
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	eng, _ := restartCleaned(t, dev, arch, cachePages, cachePages/2)

	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	const keys = 60
	for k := uint64(1); k <= keys; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, stealRow(k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Update rounds until the cleaner has demonstrably run.
	val := uint64(7)
	for round := 0; round < 50; round++ {
		val = uint64(100 + round)
		for k := uint64(1); k <= keys; k += 5 {
			tx := ag.Begin()
			kk := k
			err := tx.Update(tbl, kk, func(r []byte) ([]byte, error) {
				return append(row(kk, kk*val), make([]byte, 1500)...), nil
			})
			if err != nil {
				t.Fatalf("update %d: %v", kk, err)
			}
			if err := tx.Commit(CommitSync, nil); err != nil {
				t.Fatal(err)
			}
		}
		if eng.Store().CacheStats().CleanerWrites > 0 && round >= 3 {
			break
		}
	}
	ag.Close()
	if eng.Store().CacheStats().CleanerWrites == 0 {
		t.Skip("cleaner never ran under this scheduler; nothing to crash-test")
	}

	dev.CrashFreeze()
	eng.Close()
	eng.Log().Close()
	dev.Remount()

	eng2, _ := restartCleaned(t, dev, arch, cachePages, 0)
	tbl2, err := eng2.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= keys; k++ {
		got, err := check.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		want := k * 7
		if k%5 == 1 {
			want = k * val
		}
		if rowValue(got) != want {
			t.Fatalf("key %d: value %d, want %d", k, rowValue(got), want)
		}
	}
	if err := check.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
	if r := eng2.Store().CacheStats().Resident; r > cachePages {
		t.Fatalf("post-recovery resident %d exceeds budget %d", r, cachePages)
	}
}
