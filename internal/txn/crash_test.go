package txn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// restartHarness crashes the device and brings the engine back up.
func (h *harness) crashAndRestart(t *testing.T, tables ...string) (*Engine, map[string]*Table) {
	t.Helper()
	h.eng.Log().Close() // stop the daemon; Close may flush already-released bytes
	h.dev.Crash()       // drop everything unsynced

	eng, _, err := Restart(RestartConfig{
		Device:  h.dev,
		Archive: h.arch,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		},
		LockConfig: lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true},
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	out := make(map[string]*Table, len(tables))
	for _, name := range tables {
		tbl, err := eng.CreateTable(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = tbl
	}
	if err := eng.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	h.eng = eng
	t.Cleanup(func() { eng.Log().Close() })
	return eng, out
}

// hardCrashAndRestart drops unsynced bytes WITHOUT closing the log first
// (Close would drain the buffer — a graceful shutdown, not a crash).
func (h *harness) hardCrashAndRestart(t *testing.T, tables ...string) (*Engine, map[string]*Table) {
	t.Helper()
	// Freeze the device at the crash point: the dying daemon's further
	// writes fail instead of extending the durable log.
	h.dev.CrashFreeze()
	h.eng.Log().Close() // may report the injected crash error; that's the point
	h.dev.Remount()

	eng, _, err := Restart(RestartConfig{
		Device:  h.dev,
		Archive: h.arch,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		},
		LockConfig: lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true},
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	out := make(map[string]*Table, len(tables))
	for _, name := range tables {
		tbl, err := eng.CreateTable(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = tbl
	}
	if err := eng.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	h.eng = eng
	t.Cleanup(func() { eng.Log().Close() })
	return eng, out
}

func TestCrashRecoveryCommittedSurvives(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	tx := ag.Begin()
	for k := uint64(1); k <= 25; k++ {
		if err := tx.Insert(tbl, k, row(k, k*7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
	ag.Close()

	eng, tables := h.crashAndRestart(t, "t")
	ag2 := eng.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= 25; k++ {
		got, err := check.Read(tables["t"], k)
		if err != nil {
			t.Fatalf("key %d lost: %v", k, err)
		}
		if rowValue(got) != k*7 {
			t.Fatalf("key %d: value %d", k, rowValue(got))
		}
	}
	check.Commit(CommitSync, nil)
}

func TestCrashRecoveryUncommittedRolledBack(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	committed := ag.Begin()
	committed.Insert(tbl, 1, row(1, 100))
	if err := committed.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}

	// A transaction that updates and inserts, then the system crashes
	// with the commit record unwritten. Force its updates to the durable
	// log (so redo replays them and undo must compensate).
	loser := ag.Begin()
	loser.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 666), nil })
	loser.Insert(tbl, 2, row(2, 200))
	h.eng.Log().Flush()
	time.Sleep(20 * time.Millisecond) // let the daemon sync the updates

	eng, tables := h.hardCrashAndRestart(t, "t")
	ag2 := eng.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	got, err := check.Read(tables["t"], 1)
	if err != nil {
		t.Fatal(err)
	}
	if rowValue(got) != 100 {
		t.Fatalf("loser's update survived: %d", rowValue(got))
	}
	if _, err := check.Read(tables["t"], 2); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("loser's insert survived: %v", err)
	}
	check.Commit(CommitSync, nil)
}

func TestCrashRecoveryAsyncCommitLosesTail(t *testing.T) {
	// The unsafety the paper highlights: async commit reports success
	// before durability, so a crash can lose "committed" work.
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	lm, err := core.New(core.Config{
		Buffer:        logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		Device:        dev,
		FlushInterval: time.Hour, // no timer flush: tail stays volatile
		FlushTxns:     1 << 30,
		FlushBytes:    1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(Config{
		Log:     lm,
		Locks:   lockmgr.New(lockmgr.Config{}),
		Store:   storage.NewStore(),
		Archive: arch,
	})
	tbl, _ := eng.CreateTable("t", nil)
	ag := eng.NewAgent()
	tx := ag.Begin()
	tx.Insert(tbl, 1, row(1, 1))
	acked := false
	if err := tx.Commit(CommitAsync, func(err error) {
		if err == nil {
			acked = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !acked {
		t.Fatal("async commit did not ack immediately")
	}
	// Crash before any flush: the "committed" row is gone.
	dev.Crash()
	h := &harness{dev: dev, arch: arch, eng: eng}
	eng2, tables := h.hardCrashAndRestart(t, "t")
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	if _, err := check.Read(tables["t"], 1); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("async-committed row should be lost, got %v", err)
	}
	check.Commit(CommitSync, nil)
}

func TestCrashRecoveryPipelinedAckIsDurable(t *testing.T) {
	// The safety property flush pipelining preserves: a transaction is
	// acknowledged only after its commit record is durable, so every
	// acked transaction survives any crash.
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	const n = 100
	var mu sync.Mutex
	acked := make(map[uint64]bool)
	var wg sync.WaitGroup
	for k := uint64(1); k <= n; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, row(k, k)); err != nil {
			t.Fatal(err)
		}
		k := k
		wg.Add(1)
		if err := tx.Commit(CommitPipelined, func(err error) {
			if err == nil {
				mu.Lock()
				acked[k] = true
				mu.Unlock()
			}
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait() // all acked — all must survive
	ag.Close()

	eng, tables := h.hardCrashAndRestart(t, "t")
	ag2 := eng.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= n; k++ {
		if !acked[k] {
			continue
		}
		if _, err := check.Read(tables["t"], k); err != nil {
			t.Fatalf("acked transaction %d lost: %v", k, err)
		}
	}
	check.Commit(CommitSync, nil)
}

func TestCrashRecoveryWithCheckpointAndArchive(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	tx := ag.Begin()
	for k := uint64(1); k <= 40; k++ {
		tx.Insert(tbl, k, row(k, k))
	}
	tx.Commit(CommitSync, nil)

	if err := h.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint work: updates that exist only in the log.
	tx = ag.Begin()
	for k := uint64(1); k <= 40; k += 2 {
		tx.Update(tbl, k, func(r []byte) ([]byte, error) { return row(k, k*1000), nil })
	}
	tx.Commit(CommitSync, nil)
	ag.Close()

	eng, tables := h.crashAndRestart(t, "t")
	ag2 := eng.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= 40; k++ {
		got, err := check.Read(tables["t"], k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		want := k
		if k%2 == 1 {
			want = k * 1000
		}
		if rowValue(got) != want {
			t.Fatalf("key %d: got %d want %d", k, rowValue(got), want)
		}
	}
	check.Commit(CommitSync, nil)
}

func TestCrashRecoveryAbortedTxnStaysAborted(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	seed := ag.Begin()
	seed.Insert(tbl, 1, row(1, 100))
	seed.Commit(CommitSync, nil)

	tx := ag.Begin()
	tx.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 999), nil })
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Make sure the abort + CLRs are durable, then crash.
	h.eng.Log().Flush()
	time.Sleep(20 * time.Millisecond)
	ag.Close()

	eng, tables := h.hardCrashAndRestart(t, "t")
	ag2 := eng.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	got, err := check.Read(tables["t"], 1)
	if err != nil || rowValue(got) != 100 {
		t.Fatalf("aborted value resurrected: %d %v", rowValue(got), err)
	}
	check.Commit(CommitSync, nil)
}

func TestDoubleCrashRecovery(t *testing.T) {
	// Recovery must itself be recoverable: crash again right after a
	// recovery pass (its CLRs flushed) and recover once more.
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()

	seed := ag.Begin()
	seed.Insert(tbl, 1, row(1, 100))
	seed.Commit(CommitSync, nil)

	loser := ag.Begin()
	loser.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 666), nil })
	h.eng.Log().Flush()
	time.Sleep(20 * time.Millisecond)

	// First crash + recovery (undo logs CLRs).
	eng, _ := h.hardCrashAndRestart(t, "t")
	h.eng = eng

	// Immediately crash again without any new work.
	eng2, tables := h.hardCrashAndRestart(t, "t")
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	got, err := check.Read(tables["t"], 1)
	if err != nil || rowValue(got) != 100 {
		t.Fatalf("after double crash: %d %v", rowValue(got), err)
	}
	check.Commit(CommitSync, nil)
}

// TestCrashRecoveryRandomized is the property test: random committed and
// in-flight transactions, a crash at a random durability horizon, and
// the recovered state must equal the replay of exactly the transactions
// whose commit records made it to the durable log.
func TestCrashRecoveryRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: 8 randomized crash/recovery rounds; run without -short")
	}
	for round := 0; round < 8; round++ {
		round := round
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(round)*7919 + 13))
			h := newHarness(t)
			tbl, _ := h.eng.CreateTable("t", nil)
			ag := h.eng.NewAgent()

			const keys = 30
			// Seed and checkpoint sometimes (exercises archive path).
			seed := ag.Begin()
			for k := uint64(1); k <= keys; k++ {
				seed.Insert(tbl, k, row(k, 1000))
			}
			if err := seed.Commit(CommitSync, nil); err != nil {
				t.Fatal(err)
			}
			if round%2 == 0 {
				if err := h.eng.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}

			// Model of what the durable state must be: value per key as
			// of each sync-committed txn.
			model := make(map[uint64]uint64)
			for k := uint64(1); k <= keys; k++ {
				model[k] = 1000
			}

			nTxns := 20 + rng.Intn(30)
			for i := 0; i < nTxns; i++ {
				tx := ag.Begin()
				pending := make(map[uint64]uint64)
				nOps := 1 + rng.Intn(4)
				fail := false
				for j := 0; j < nOps; j++ {
					k := uint64(rng.Intn(keys) + 1)
					delta := uint64(rng.Intn(50))
					err := tx.Update(tbl, k, func(r []byte) ([]byte, error) {
						v := rowValue(r) + delta
						pending[k] = v
						return row(k, v), nil
					})
					if err != nil {
						fail = true
						break
					}
				}
				switch {
				case fail || rng.Intn(10) == 0:
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
				case rng.Intn(10) == 0:
					// Leave in flight: crash will roll it back. Later
					// transactions can't touch its keys (locks held), so
					// abandon the agent and use a new one.
					ag = h.eng.NewAgent()
				default:
					if err := tx.Commit(CommitSync, nil); err != nil {
						t.Fatal(err)
					}
					for k, v := range pending {
						model[k] = v
					}
				}
			}

			eng, tables := h.hardCrashAndRestart(t, "t")
			ag2 := eng.NewAgent()
			defer ag2.Close()
			check := ag2.Begin()
			for k := uint64(1); k <= keys; k++ {
				got, err := check.Read(tables["t"], k)
				if err != nil {
					t.Fatalf("key %d: %v", k, err)
				}
				if rowValue(got) != model[k] {
					t.Fatalf("key %d: recovered %d, model %d", k, rowValue(got), model[k])
				}
			}
			check.Commit(CommitSync, nil)
		})
	}
}
